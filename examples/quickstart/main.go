// Quickstart: partition a small virtual network and emulate HTTP background
// traffic on it with all three of the paper's mapping approaches.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Build a virtual network — the paper's campus section: 20 routers,
	//    40 hosts, heterogeneous access links.
	network := repro.Campus()
	fmt.Printf("network: %d routers, %d hosts, %d links\n",
		network.NumRouters(), network.NumHosts(), len(network.Links))

	// 2. Describe the traffic: the paper's HTTP background model
	//    (200 KB requests, 12 s think time, 10 clients per server).
	background := repro.DefaultHTTP(30 /* seconds */, 1 /* seed */)

	// 3. Assemble the scenario: emulate on 3 simulation-engine nodes.
	scenario := &repro.Scenario{
		Name:       "quickstart",
		Network:    network,
		Engines:    3,
		Background: background,
	}

	// 4. Map and emulate with each approach. PROFILE automatically runs a
	//    profiling pass first (NetFlow on every router), then repartitions.
	fmt.Printf("%-8s %10s %12s %12s\n", "approach", "imbalance", "app-time(s)", "replay(s)")
	for _, approach := range repro.Approaches() {
		out, err := scenario.Run(context.Background(), approach)
		if err != nil {
			log.Fatal(err)
		}
		r := out.Result
		fmt.Printf("%-8s %10.3f %12.1f %12.1f\n", approach, r.Imbalance, r.AppTime, r.NetTime)
	}
}
