// The PROFILE pipeline, step by step: run an initial emulation under a TOP
// partition with NetFlow profiling on every router, dump and re-parse the
// flow records (the paper's offline path), cluster the emulation timeline
// into load segments, repartition with multi-constraint multi-objective
// partitioning, and compare the fine-grained imbalance before and after —
// the machinery of §3.3 and Figure 8.
//
//	go run ./examples/campus-profile
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/emu"
	"repro/internal/mapping"
	"repro/internal/netflow"
	"repro/internal/partition"
)

func main() {
	const duration = 60.0
	const engines = 3

	network := repro.Campus()
	routes := network.BuildRoutingTable()

	app := repro.DefaultGridNPB()
	app.Duration = duration
	workloadApp, err := app.Generate(repro.SpreadHosts(network, app.Hosts()), 1)
	if err != nil {
		log.Fatal(err)
	}
	background := repro.DefaultHTTP(duration, 2).Generate(network)
	workload := mergeWorkloads(workloadApp, background)

	// Step 1: initial partition from topology alone (TOP).
	topPart, err := mapping.TopMap(mapping.Input{
		Network: network, Routes: routes, K: engines,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: profiling run — NetFlow accounting on every emulated router.
	profiled, err := emu.Run(emu.Config{
		Network: network, Routes: routes,
		Assignment: topPart, NumEngines: engines,
		Workload: workload, Profile: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiling run: imbalance=%.3f, %d flow records collected\n",
		profiled.Imbalance, len(profiled.NetFlow.Records()))

	// Step 3: dump the records to the NetFlow file format and parse them
	// back — the offline path the paper describes ("the dump files record
	// the average bandwidth and duration of every flow on every router").
	var dump bytes.Buffer
	if err := netflow.WriteDump(&dump, profiled.NetFlow.Records()); err != nil {
		log.Fatal(err)
	}
	dumpBytes := dump.Len()
	records, err := netflow.ReadDump(&dump)
	if err != nil {
		log.Fatal(err)
	}
	summary := netflow.SummarizeRecords(records, network.NumNodes(), duration, 2)
	fmt.Printf("dump: %d bytes, %d records; busiest links: %v\n",
		dumpBytes, len(records), summary.TopLinks(3))

	// Step 4: cluster the timeline at dominating-node changes (§3.3).
	segments := mapping.SegmentTimeline(summary.NodeSeries, 4)
	fmt.Printf("timeline clustered into %d segment(s): %v\n", len(segments), segments)

	// Step 5: repartition with the profile data as balance constraints.
	profPart, err := mapping.ProfileMap(mapping.Input{
		Network: network, Routes: routes, K: engines,
		PartOpts: partition.Options{Seed: 9},
		Summary:  summary, Cluster: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 6: re-emulate and compare, including the 2-second fine-grained
	// imbalance of Figure 8.
	final, err := emu.Run(emu.Config{
		Network: network, Routes: routes,
		Assignment: profPart, NumEngines: engines,
		Workload: workload,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s %10s %12s %10s\n", "partition", "imbalance", "app-time(s)", "mean-2s-imb")
	fmt.Printf("%-10s %10.3f %12.1f %10.3f\n", "TOP", profiled.Imbalance, profiled.AppTime,
		meanPositive(profiled.EngineSeries.ImbalancePerBucket()))
	fmt.Printf("%-10s %10.3f %12.1f %10.3f\n", "PROFILE", final.Imbalance, final.AppTime,
		meanPositive(final.EngineSeries.ImbalancePerBucket()))
}

func mergeWorkloads(ws ...repro.Workload) repro.Workload {
	merged := ws[0]
	for _, w := range ws[1:] {
		for _, f := range w.Flows {
			f.ID = len(merged.Flows)
			merged.Flows = append(merged.Flows, f)
		}
		if w.Duration > merged.Duration {
			merged.Duration = w.Duration
		}
	}
	merged.SortByStart()
	for i := range merged.Flows {
		merged.Flows[i].ID = i
	}
	return merged
}

func meanPositive(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
