// The paper's flagship study: emulate a live ScaLapack run (10 MPI
// processes solving a 3000×3000 system) on the 2003 TeraGrid, with HTTP
// background traffic, across the three mapping approaches — the scenario
// behind Figures 4, 6 and 9.
//
//	go run ./examples/teragrid-scalapack
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/metrics"
)

func main() {
	const duration = 60.0 // virtual seconds (the paper ran ~600)

	network := repro.TeraGrid()

	app := repro.DefaultScaLapack()
	app.Duration = duration
	app.ScaleBytes = 70 * duration / 600 // keep the paper's traffic rate

	scenario := &repro.Scenario{
		Name:       "teragrid-scalapack",
		Network:    network,
		Engines:    5, // Table 1: TeraGrid uses 5 simulation engines
		Background: repro.DefaultHTTP(duration, 7),
		App:        app,
		AppSeed:    1,
		Cluster:    true, // PROFILE may split the timeline into segments
	}

	// The application's injection points: 10 hosts spread across the five
	// TeraGrid sites.
	hosts := repro.SpreadHosts(network, app.Hosts())
	fmt.Print("ScaLapack injection points:")
	for _, h := range hosts {
		fmt.Printf(" %s", network.Nodes[h].Name)
	}
	fmt.Println()

	var baseline float64
	for _, approach := range repro.Approaches() {
		out, err := scenario.Run(context.Background(), approach)
		if err != nil {
			log.Fatal(err)
		}
		r := out.Result
		line := fmt.Sprintf("%-8s imbalance=%.3f app-time=%.1fs replay=%.1fs engines=%v",
			approach, r.Imbalance, r.AppTime, r.NetTime, compact(r.EngineLoads))
		if approach == repro.Top {
			baseline = r.Imbalance
		} else {
			line += fmt.Sprintf("  (imbalance %+.0f%% vs TOP)", -100*metrics.Improvement(baseline, r.Imbalance))
		}
		fmt.Println(line)
	}
}

func compact(loads []float64) []int64 {
	out := make([]int64, len(loads))
	for i, l := range loads {
		out[i] = int64(l)
	}
	return out
}
