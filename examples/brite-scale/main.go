// The scalability study of §4.2.3 (Table 2): generate a BRITE-like network
// with 200 routers and 364 hosts in a single AS, emulate ScaLapack plus
// background traffic over 20 simulation engines, and compare the three
// mapping approaches — plus the paper's §5 memory-requirement prediction for
// the resulting partitions.
//
//	go run ./examples/brite-scale
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/mapping"
)

func main() {
	const duration = 45.0
	const engines = 20

	network, err := repro.Brite(repro.BriteConfig{
		Routers:           200,
		Hosts:             364,
		LinksPerNewRouter: 2,
		Seed:              3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BRITE network: %d routers, %d hosts, %d links (single AS)\n",
		network.NumRouters(), network.NumHosts(), len(network.Links))

	app := repro.DefaultScaLapack()
	app.Duration = duration
	app.ScaleBytes = 70 * duration / 600

	scenario := &repro.Scenario{
		Name:       "brite-scale",
		Network:    network,
		Engines:    engines,
		Background: repro.DefaultHTTP(duration, 4),
		App:        app,
		AppSeed:    2,
	}

	fmt.Printf("\n%-34s %10s %10s %10s\n", "ScaLapack", "TOP", "PLACE", "PROFILE")
	var imb, tim [3]float64
	var parts [3][]int
	for i, approach := range repro.Approaches() {
		out, err := scenario.Run(context.Background(), approach)
		if err != nil {
			log.Fatal(err)
		}
		imb[i] = out.Result.Imbalance
		tim[i] = out.Result.AppTime
		parts[i] = out.Assignment
	}
	fmt.Printf("%-34s %10.3f %10.3f %10.3f\n", "Load Imbalance (Std. Deviation)", imb[0], imb[1], imb[2])
	fmt.Printf("%-34s %10.1f %10.1f %10.1f\n", "Execution Time (second)", tim[0], tim[1], tim[2])

	// §5: the routing-table memory model (m = 10 + x² per router, x = AS
	// router count). With 200 routers in one AS this is the configuration
	// the paper calls out as memory-limited.
	fmt.Println("\npredicted per-engine memory (max/mean ratio; paper §5 memory constraint):")
	for i, approach := range repro.Approaches() {
		mem := mapping.PredictMemory(network, parts[i], engines)
		var max, sum int64
		for _, m := range mem {
			sum += m
			if m > max {
				max = m
			}
		}
		mean := float64(sum) / float64(engines)
		fmt.Printf("  %-8s max=%d mean=%.0f ratio=%.2f\n", approach, max, mean, float64(max)/mean)
	}

	// §5 also flags that MaSSF "currently assumes homogeneous physical
	// resources". With speed-aware mapping (half the engines twice as
	// fast), PROFILE shifts proportionally more virtual nodes onto the
	// fast engines.
	speeds := make([]float64, engines)
	for e := range speeds {
		speeds[e] = 1
		if e < engines/2 {
			speeds[e] = 2
		}
	}
	het := &repro.Scenario{
		Name:         "brite-scale-heterogeneous",
		Network:      network,
		Engines:      engines,
		Background:   repro.DefaultHTTP(duration, 4),
		App:          app,
		AppSeed:      2,
		EngineSpeeds: speeds,
	}
	out, err := het.Run(context.Background(), repro.Profile)
	if err != nil {
		log.Fatal(err)
	}
	var fastLoad, slowLoad float64
	for e, l := range out.Result.EngineLoads {
		if e < engines/2 {
			fastLoad += l
		} else {
			slowLoad += l
		}
	}
	fmt.Printf("\nheterogeneous cluster (half the engines 2x fast): "+
		"fast half carries %.0f%% of kernel events (ideal 67%%)\n",
		100*fastLoad/(fastLoad+slowLoad))
}
