// Dynamic remapping — the paper's §6 closing challenge: "Static partitions
// are fundamentally limited for large emulation if traffic varies widely...
// Dynamic remapping the virtual network during the emulation is the only
// solution."
//
// This example runs the bursty GridNPB workload on the Campus network twice:
// once under the best static partition (PROFILE) and once with the dynamic
// prototype that re-profiles and repartitions every interval, paying a
// migration stall for every virtual node that changes engines.
//
//	go run ./examples/dynamic-remap
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/mapping"
)

func main() {
	const duration = 60.0

	build := func() *repro.Scenario {
		app := repro.DefaultGridNPB()
		app.Duration = duration
		return &repro.Scenario{
			Name:       "dynamic-remap",
			Network:    repro.Campus(),
			Engines:    3,
			Background: repro.DefaultHTTP(duration, 2),
			App:        app,
			AppSeed:    4,
			PartSeed:   11,
		}
	}

	static, err := build().Run(context.Background(), mapping.Profile)
	if err != nil {
		log.Fatal(err)
	}
	staticFine := meanPositive(static.Result.EngineSeries.ImbalancePerBucket())
	fmt.Printf("static PROFILE:   overall imbalance %.3f, mean 2s imbalance %.3f, app-time %.1fs\n",
		static.Result.Imbalance, staticFine, static.Result.AppTime)

	for _, interval := range []float64{20, 10, 5} {
		dyn, err := build().RunDynamic(context.Background(), interval, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dynamic @%4.0fs:    overall imbalance %.3f, mean segment imbalance %.3f, "+
			"app-time %.1fs, %d node migrations\n",
			interval, dyn.Imbalance, dyn.MeanSegmentImbalance, dyn.AppTime, dyn.Migrations)
	}

	// Incremental remapping refines the previous assignment between
	// intervals instead of repartitioning — far fewer migrations.
	inc := build()
	inc.IncrementalRemap = true
	dyn, err := inc.RunDynamic(context.Background(), 10, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental @10s: overall imbalance %.3f, mean segment imbalance %.3f, "+
		"app-time %.1fs, %d node migrations\n",
		dyn.Imbalance, dyn.MeanSegmentImbalance, dyn.AppTime, dyn.Migrations)
	fmt.Println("\nShorter intervals track load shifts more closely but pay more migration stalls —")
	fmt.Println("the tension the paper predicts makes dynamic remapping 'a major challenge'.")
}

func meanPositive(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
