// Engine fault injection and checkpoint/recovery remapping, end to end: a
// Campus-topology emulation of GridNPB plus background HTTP loses one of its
// four simulation engines mid-run. The emulator detects the fail-stop at the
// next window barrier, rolls back to the last barrier checkpoint, asks the
// mapping layer to repartition the dead engine's virtual nodes across the
// survivors, and replays the lost windows deterministically. The same crash
// is then recovered naively — every orphaned node dumped onto one survivor —
// to show why partitioner-based remapping is worth the extra migrations.
//
//	go run ./examples/fault-recovery
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	const duration = 20.0

	schedule, err := repro.ParseFaults([]string{
		"crash:1@8",        // engine 1 fail-stops at t=8s
		"slow:0@2-6x2",     // engine 0 runs half-speed over [2,6)
		"degrade@10-14x10", // cluster interconnect degrades after recovery
	})
	if err != nil {
		log.Fatal(err)
	}

	app := repro.DefaultGridNPB()
	app.Duration = duration
	scenario := func() *repro.Scenario {
		return &repro.Scenario{
			Name:       "campus-fault-recovery",
			Network:    repro.Campus(),
			Engines:    4,
			Background: repro.DefaultHTTP(duration, 3),
			App:        app,
			AppSeed:    1,
			PartSeed:   7,
		}
	}

	fmt.Printf("fault schedule: %s\n\n", schedule)
	fmt.Printf("%-22s %12s %10s %10s %10s %12s\n",
		"recovery policy", "downtime(s)", "replayed", "migrated", "post-imb", "app-time(s)")

	var post [2]float64
	for i, naive := range []bool{false, true} {
		out, err := scenario().RunResilient(context.Background(), repro.FaultOptions{
			Schedule:        schedule,
			CheckpointEvery: 4,
			Naive:           naive,
		})
		if err != nil {
			log.Fatal(err)
		}
		rec := out.Recovery()
		name := "remap (partitioner)"
		if naive {
			name = "naive (dump on one)"
		}
		fmt.Printf("%-22s %12.3f %10d %10d %10.3f %12.1f\n",
			name, rec.Downtime, rec.ReplayedEvents, rec.Migrations,
			rec.PostRecoveryImbalance, out.Result.AppTime)
		post[i] = rec.PostRecoveryImbalance

		if i == 0 {
			alive := 0
			for _, ok := range rec.Alive {
				if ok {
					alive++
				}
			}
			fmt.Printf("  engine %d died at t=8; %d survivors; %d barrier checkpoints; "+
				"pre-failure imbalance %.3f\n",
				rec.DeadEngines[0], alive, rec.Checkpoints, rec.PreFailureImbalance)
		}
	}

	fmt.Printf("\nremapping leaves the survivors %.0f%% better balanced than the naive dump\n",
		100*(post[1]-post[0])/post[1])
}
