package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/mapping"
)

// WriteCSV dumps every regenerated table and figure as plot-ready CSV files
// into dir (created if missing): table1.csv, fig2.csv, fig4.csv … fig10.csv,
// table2.csv, fig8.csv, baselines.csv.
func WriteCSV(dir string, r *Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writers := []struct {
		name string
		rows [][]string
	}{
		{"fig4.csv", suiteCSV(r.ScaLapack, func(c Cell) float64 { return c.Imbalance })},
		{"fig5.csv", suiteCSV(r.GridNPB, func(c Cell) float64 { return c.Imbalance })},
		{"fig6.csv", suiteCSV(r.ScaLapack, func(c Cell) float64 { return c.AppTime })},
		{"fig7.csv", suiteCSV(r.GridNPB, func(c Cell) float64 { return c.AppTime })},
		{"fig9.csv", suiteCSV(r.ScaLapack, func(c Cell) float64 { return c.NetTime })},
		{"fig10.csv", suiteCSV(r.GridNPB, func(c Cell) float64 { return c.NetTime })},
		{"fig2.csv", fig2CSV(r)},
		{"fig8.csv", fig8CSV(r.Fig8)},
		{"table2.csv", table2CSV(r.Table2)},
		{"baselines.csv", baselinesCSV(r.Baselines)},
	}
	for _, w := range writers {
		if w.rows == nil {
			continue
		}
		if err := writeCSVFile(filepath.Join(dir, w.name), w.rows); err != nil {
			return fmt.Errorf("experiments: %s: %w", w.name, err)
		}
	}
	return nil
}

func writeCSVFile(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func suiteCSV(s *Suite, val func(Cell) float64) [][]string {
	if s == nil {
		return nil
	}
	rows := [][]string{{"topology", "approach", "value"}}
	for _, c := range s.Cells {
		rows = append(rows, []string{c.Topology, string(c.Approach), ftoa(val(c))})
	}
	return rows
}

func fig2CSV(r *Report) [][]string {
	if r.Fig2 == nil {
		return nil
	}
	s := r.Fig2
	header := []string{"t"}
	for n := 0; n < s.Nodes(); n++ {
		header = append(header, fmt.Sprintf("engine%d", n))
	}
	rows := [][]string{header}
	for b, row := range s.Loads {
		out := []string{ftoa(float64(b) * s.BucketWidth)}
		for _, v := range row {
			out = append(out, ftoa(v))
		}
		rows = append(rows, out)
	}
	return rows
}

func fig8CSV(f *Fig8Result) [][]string {
	if f == nil {
		return nil
	}
	rows := [][]string{{"t", "top", "profile"}}
	n := len(f.Top)
	if len(f.Profile) < n {
		n = len(f.Profile)
	}
	for i := 0; i < n; i++ {
		rows = append(rows, []string{
			ftoa(float64(i) * f.BucketWidth), ftoa(f.Top[i]), ftoa(f.Profile[i]),
		})
	}
	return rows
}

func table2CSV(rows []Table2Row) [][]string {
	if rows == nil {
		return nil
	}
	out := [][]string{{"approach", "imbalance", "exec_time_s"}}
	for _, r := range rows {
		out = append(out, []string{string(r.Approach), ftoa(r.Imbalance), ftoa(r.AppTime)})
	}
	return out
}

func baselinesCSV(rows []BaselineRow) [][]string {
	if rows == nil {
		return nil
	}
	out := [][]string{{"strategy", "imbalance", "app_time_s", "lookahead_s"}}
	for _, r := range rows {
		out = append(out, []string{string(r.Approach), ftoa(r.Imbalance), ftoa(r.AppTime), ftoa(r.Lookahead)})
	}
	return out
}

// sampleReport builds a tiny synthetic Report for CSV-writer tests.
func sampleReport() *Report {
	suite := func(app string) *Suite {
		s := &Suite{App: app}
		for _, topo := range []string{"Campus"} {
			for i, a := range mapping.Approaches() {
				s.Cells = append(s.Cells, Cell{
					Topology: topo, Approach: a,
					Imbalance: 0.1 * float64(i+1), AppTime: 100, NetTime: 50,
				})
			}
		}
		return s
	}
	return &Report{
		ScaLapack: suite("ScaLapack"),
		GridNPB:   suite("GridNPB"),
		Fig8:      &Fig8Result{BucketWidth: 2, Top: []float64{0.3, 0.2}, Profile: []float64{0.1, 0.1}},
		Table2: []Table2Row{
			{Approach: mapping.Top, Imbalance: 1.0, AppTime: 559},
			{Approach: mapping.Place, Imbalance: 0.7, AppTime: 484},
			{Approach: mapping.Profile, Imbalance: 0.68, AppTime: 460},
		},
		Baselines: []BaselineRow{{Approach: mapping.KCluster, Imbalance: 1.1, AppTime: 500, Lookahead: 5e-4}},
	}
}
