package experiments

import (
	"fmt"
	"strings"

	"repro/internal/mapping"
	"repro/internal/topogen"
)

// Bars renders label/value pairs as a horizontal ASCII bar chart — the
// paper's figures are bar charts, and the terminal deserves the same view.
func Bars(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	labelW := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%-*s %s %.3g\n", labelW, labels[i], strings.Repeat("█", n), v)
	}
	return b.String()
}

// SuiteBars renders one suite metric as grouped bars (one group per
// topology, one bar per approach) — the shape of Figures 4-7 and 9-10.
func SuiteBars(s *Suite, title string, val func(Cell) float64) string {
	var labels []string
	var values []float64
	for _, topo := range []string{"Campus", "TeraGrid", "Brite"} {
		for _, a := range mapping.Approaches() {
			if c, ok := s.Get(topo, a); ok {
				labels = append(labels, fmt.Sprintf("%s/%s", topo, a))
				values = append(values, val(c))
			}
		}
	}
	return Bars(title, labels, values, 40)
}

// Fig3 renders the TeraGrid site architecture of the paper's Figure 3 as a
// structural summary: sites, their router/host counts, and the backbone
// attachment.
func Fig3() string {
	nw := topogen.TeraGrid()
	type site struct {
		routers, hosts int
		hub            string
	}
	sites := map[string]*site{}
	var order []string
	for _, n := range nw.Nodes {
		if n.Site == "" || n.Site == "backbone" {
			continue
		}
		s, ok := sites[n.Site]
		if !ok {
			s = &site{}
			sites[n.Site] = s
			order = append(order, n.Site)
		}
		if n.Kind == 0 { // router
			s.routers++
		} else {
			s.hosts++
		}
	}
	// Hub attachment: the border router's backbone neighbor.
	for _, l := range nw.Links {
		a, b := nw.Nodes[l.A], nw.Nodes[l.B]
		if a.Site == "backbone" && b.Site != "backbone" && b.Site != "" {
			if s := sites[b.Site]; s != nil {
				s.hub = a.Name
			}
		}
		if b.Site == "backbone" && a.Site != "backbone" && a.Site != "" {
			if s := sites[a.Site]; s != nil {
				s.hub = b.Name
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("TeraGrid site architecture (Figure 3): 40 Gb/s backbone, two hubs\n")
	for _, name := range order {
		s := sites[name]
		fmt.Fprintf(&sb, "  %-6s %d routers, %3d hosts  --40Gbps--> %s\n", name, s.routers, s.hosts, s.hub)
	}
	return sb.String()
}
