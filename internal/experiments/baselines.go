package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/emu"
	"repro/internal/mapping"
)

// BaselineRow is one partitioning strategy's outcome in the baseline
// comparison.
type BaselineRow struct {
	Approach  mapping.Approach
	Imbalance float64
	AppTime   float64
	Lookahead float64
}

// Baselines runs the §5 discussion as an experiment: the paper argues that
// the pre-existing strategies — manual/simple hierarchical partitioning and
// the randomized greedy k-cluster algorithm — "have not been demonstrated to
// give broadly robust results", and that its traffic-informed approaches
// beat them. This driver measures HIER, KCLUSTER, TOP, PLACE and PROFILE on
// the same TeraGrid + ScaLapack workload.
func Baselines(cfg Config) ([]BaselineRow, error) {
	cfg = cfg.withDefaults()
	sc, err := cfg.scenario("TeraGrid", "ScaLapack")
	if err != nil {
		return nil, err
	}
	w, err := sc.Workload()
	if err != nil {
		return nil, err
	}

	routes, err := sc.Routes()
	if err != nil {
		return nil, err
	}

	var rows []BaselineRow
	evaluate := func(a mapping.Approach, assignment []int) error {
		res, err := emu.Run(emu.Config{
			Network:    sc.Network,
			Routes:     routes,
			Assignment: assignment,
			NumEngines: sc.Engines,
			Workload:   w,
			Sequential: cfg.Sequential,
		})
		if err != nil {
			return err
		}
		rows = append(rows, BaselineRow{
			Approach:  a,
			Imbalance: res.Imbalance,
			AppTime:   res.AppTime,
			Lookahead: res.Lookahead,
		})
		return nil
	}

	// Baselines first (traffic-blind), then the paper's approaches.
	for _, a := range mapping.BaselineApproaches() {
		in, err := sc.MappingInput()
		if err != nil {
			return nil, fmt.Errorf("baseline %s: %w", a, err)
		}
		part, err := mapping.MapAny(a, in)
		if err != nil {
			return nil, fmt.Errorf("baseline %s: %w", a, err)
		}
		if err := evaluate(a, part); err != nil {
			return nil, fmt.Errorf("baseline %s: %w", a, err)
		}
	}
	for _, a := range mapping.Approaches() {
		part, _, err := sc.Partition(context.Background(), a)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a, err)
		}
		if err := evaluate(a, part); err != nil {
			return nil, fmt.Errorf("%s: %w", a, err)
		}
	}
	return rows, nil
}

// RenderBaselines formats the comparison table.
func RenderBaselines(rows []BaselineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %12s %10s\n", "strategy", "imbalance", "app-time(s)", "lookahead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10.3f %12.1f %9.2gms\n", r.Approach, r.Imbalance, r.AppTime, r.Lookahead*1e3)
	}
	return b.String()
}
