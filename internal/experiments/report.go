package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/mapping"
	"repro/internal/metrics"
)

// Report bundles every regenerated table and figure.
type Report struct {
	Config    Config
	Table1    string
	Fig2      *metrics.Series
	ScaLapack *Suite // figures 4, 6, 9
	GridNPB   *Suite // figures 5, 7, 10
	Fig8      *Fig8Result
	Table2    []Table2Row
	// Baselines is the §5 comparison against the pre-existing traffic-blind
	// strategies (greedy k-cluster, simple hierarchical).
	Baselines []BaselineRow
	// Dynamic is the remap-policy comparison (PROFILE / incremental / game /
	// diffusion) on the bursty GridNPB Campus run.
	Dynamic []DynamicRow
	Elapsed time.Duration
}

// All runs the complete evaluation: every table and figure of §4.
func All(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	r := &Report{Config: cfg}
	var err error
	if r.Table1, err = Table1(cfg); err != nil {
		return nil, fmt.Errorf("table 1: %w", err)
	}
	if r.Fig2, err = Fig2(cfg); err != nil {
		return nil, fmt.Errorf("figure 2: %w", err)
	}
	if r.ScaLapack, err = RunSuite("ScaLapack", cfg); err != nil {
		return nil, fmt.Errorf("scalapack suite: %w", err)
	}
	if r.GridNPB, err = RunSuite("GridNPB", cfg); err != nil {
		return nil, fmt.Errorf("gridnpb suite: %w", err)
	}
	if r.Fig8, err = Fig8(r.GridNPB); err != nil {
		return nil, fmt.Errorf("figure 8: %w", err)
	}
	if r.Table2, err = Table2(cfg); err != nil {
		return nil, fmt.Errorf("table 2: %w", err)
	}
	if r.Baselines, err = Baselines(cfg); err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	if r.Dynamic, err = DynamicStudy(cfg); err != nil {
		return nil, fmt.Errorf("dynamic study: %w", err)
	}
	r.Elapsed = time.Since(start)
	return r, nil
}

// improvement formats the relative improvement of b over a as a percentage.
func improvement(a, b float64) string {
	return fmt.Sprintf("%.0f%%", 100*metrics.Improvement(a, b))
}

// Markdown renders the full report as the EXPERIMENTS.md document: every
// table/figure with measured values next to the paper's qualitative claims.
func (r *Report) Markdown() string {
	var b strings.Builder
	b.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	fmt.Fprintf(&b, "Configuration: duration=%.0fs (full=%v), seed=%d. ", r.Config.Duration, r.Config.Full, r.Config.Seed)
	b.WriteString("Absolute times come from the Pentium-II cluster cost model, not 2003 hardware; ")
	b.WriteString("the comparisons to the paper are therefore about *shape* — orderings, rough factors, ")
	b.WriteString("and where crossovers fall — not absolute values.\n\n")

	b.WriteString("## Table 1 — Network Topology Setup\n\n")
	b.WriteString("Paper: Campus 20r/40h/3 engines, TeraGrid 27r/150h/5, Brite 160r/132h/8.\n")
	b.WriteString("Generated (verified equal):\n\n```\n" + r.Table1 + "```\n\n")

	b.WriteString("## Figure 2 — Load Variation Over the Lifetime of an Emulation\n\n")
	b.WriteString("Paper: per-node load varies across emulation stages; different nodes dominate at different stages.\n")
	b.WriteString("Measured (GridNPB on Campus, TOP partition, per-engine kernel events per 2s bucket):\n\n")
	b.WriteString("```\n" + fig2Summary(r) + "```\n\n")

	writeSuite := func(s *Suite, figImb, figTime, figNet string, paperImb, paperTime, paperNet string) {
		fmt.Fprintf(&b, "## Figure %s — Load Imbalance (%s)\n\n", figImb, s.App)
		b.WriteString("Paper: " + paperImb + "\n\nMeasured:\n\n```\n" + FigImbalance(s) + "```\n\n")
		b.WriteString(suiteImbalanceCommentary(s))
		fmt.Fprintf(&b, "\n## Figure %s — Application Emulation Time (%s)\n\n", figTime, s.App)
		b.WriteString("Paper: " + paperTime + "\n\nMeasured:\n\n```\n" + FigAppTime(s) + "```\n\n")
		fmt.Fprintf(&b, "## Figure %s — Isolated Network Emulation (%s)\n\n", figNet, s.App)
		b.WriteString("Paper: " + paperNet + "\n\nMeasured:\n\n```\n" + FigNetTime(s) + "```\n\n")
	}

	writeSuite(r.ScaLapack, "4", "6", "9",
		"PLACE improves significantly on TOP; PROFILE improves imbalance up to 66%; imbalance grows with engine count (3→5→8).",
		"PLACE reduces emulation time ~40%, PROFILE up to 50%.",
		"replay time improves significantly, consistent with Figure 6.")
	writeSuite(r.GridNPB, "5", "7", "10",
		"same ordering; PROFILE improves imbalance up to 48%; irregular traffic leaves PLACE less accurate than for ScaLapack.",
		"improvement much smaller (~17%) because GridNPB is computation-bound.",
		"network emulation time still improves ~30% even though total app time barely moves.")

	b.WriteString("## Figure 8 — Fine-Grained Load Imbalance (GridNPB on Campus)\n\n")
	b.WriteString("Paper: at 2-second granularity PROFILE's imbalance is clearly below TOP's even when total runtime barely improves.\n")
	fmt.Fprintf(&b, "Measured mean per-interval imbalance: TOP %.3f vs PROFILE %.3f.\n\n",
		meanActive(r.Fig8.Top), meanActive(r.Fig8.Profile))

	b.WriteString("## Table 2 — ScaLapack on Larger Network (200 routers / 364 hosts / 20 engines)\n\n")
	b.WriteString("Paper: imbalance 1.019 / 0.722 / 0.688; execution time 559.3 / 484.6 / 460.5 s — PROFILE best on both.\n\nMeasured:\n\n")
	b.WriteString("```\n" + RenderTable2(r.Table2) + "```\n\n")
	if len(r.Table2) == 3 {
		fmt.Fprintf(&b, "Imbalance improvement TOP→PROFILE: %s (paper: 32%%); time improvement: %s (paper: 18%%). Ordering preserved.\n\n",
			improvement(r.Table2[0].Imbalance, r.Table2[2].Imbalance),
			improvement(r.Table2[0].AppTime, r.Table2[2].AppTime))
	}

	b.WriteString("## Kernel observability — runtime counters per run\n\n")
	b.WriteString("Per-run aggregates from the kernel's observability stream: total kernel events, ")
	b.WriteString("executed synchronization windows, cross-engine event messages, the deepest pending-event ")
	b.WriteString("queue at any barrier (memory high-water mark), and total wall-clock barrier wait ")
	b.WriteString("(zero in sequential runs).\n\n")
	b.WriteString("```\n" + RenderObservability(r.ScaLapack, r.GridNPB) + "```\n\n")

	b.WriteString("## Traffic-plane telemetry — cross-engine traffic and per-window timeline\n\n")
	b.WriteString("Measured from the live telemetry plane (the traffic matrix each run publishes at ")
	b.WriteString("its sync-window barriers): the fraction of transmitted bytes that crossed engines — ")
	b.WriteString("the cut the PLACE/PROFILE mappings trade against balance — and the per-window ")
	b.WriteString("imbalance/cross-traffic history for GridNPB on Campus.\n\n")
	b.WriteString("```\n" + FigCrossTraffic(r.ScaLapack) + "```\n\n```\n" + FigCrossTraffic(r.GridNPB) + "```\n\n")
	if tl, err := FigTrafficTimeline(r.GridNPB, "Campus"); err == nil {
		b.WriteString("```\n" + tl + "```\n\n")
	}

	if len(r.Baselines) > 0 {
		b.WriteString("## Beyond the paper's figures — §5 baseline comparison\n\n")
		b.WriteString("The paper argues pre-existing strategies (manual/simple hierarchical partitioning, ")
		b.WriteString("greedy k-cluster) were not robust. Measured on TeraGrid + ScaLapack:\n\n")
		b.WriteString("```\n" + RenderBaselines(r.Baselines) + "```\n\n")
	}

	if len(r.Dynamic) > 0 {
		b.WriteString("## Beyond the paper's figures — dynamic remap policies\n\n")
		b.WriteString("The same bursty GridNPB Campus run under each remap policy: from-scratch ")
		b.WriteString("PROFILE, incremental refinement, the game-theoretic best-response policy, ")
		b.WriteString("and a traffic-blind diffusion baseline. The game policy's claim: cross-engine ")
		b.WriteString("traffic no worse than PROFILE's with strictly fewer migrations.\n\n")
		b.WriteString("```\n" + RenderDynamicStudy(r.Dynamic) + "```\n\n")
	}

	fmt.Fprintf(&b, "---\nGenerated in %s.\n", r.Elapsed.Round(time.Millisecond))
	return b.String()
}

// RenderObservability tabulates the kernel-observability counters collected
// for every (topology, approach) run of the given suites.
func RenderObservability(suites ...*Suite) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-10s %-8s %12s %9s %10s %10s %12s\n",
		"app", "topology", "approach", "events", "windows", "remote-ev", "max-queue", "barrier-wait")
	for _, s := range suites {
		if s == nil {
			continue
		}
		for _, c := range s.Cells {
			fmt.Fprintf(&b, "%-10s %-10s %-8s %12d %9d %10d %10d %11.3fs\n",
				s.App, c.Topology, c.Approach, c.Events, c.Windows, c.Remote, c.MaxQueue, c.BarrierWait)
		}
	}
	return b.String()
}

func fig2Summary(r *Report) string {
	s := r.Fig2
	var b strings.Builder
	dom := s.DominatingNode()
	totals := s.TotalPerBucket()
	fmt.Fprintf(&b, "%8s %12s %16s\n", "t(s)", "total load", "dominating node")
	step := len(totals) / 15
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(totals); i += step {
		fmt.Fprintf(&b, "%8.0f %12.0f %16d\n", float64(i)*s.BucketWidth, totals[i], dom[i])
	}
	changes := 0
	for i := 1; i < len(dom); i++ {
		if dom[i] != dom[i-1] && totals[i] > 0 {
			changes++
		}
	}
	fmt.Fprintf(&b, "dominating-engine changes over the run: %d (the paper's premise for timeline clustering)\n", changes)
	return b.String()
}

func suiteImbalanceCommentary(s *Suite) string {
	var b strings.Builder
	for _, t := range []string{"Campus", "TeraGrid", "Brite"} {
		top, ok1 := s.Get(t, mapping.Top)
		place, ok2 := s.Get(t, mapping.Place)
		prof, ok3 := s.Get(t, mapping.Profile)
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		fmt.Fprintf(&b, "- %s: TOP→PLACE %s, TOP→PROFILE %s\n", t,
			improvement(top.Imbalance, place.Imbalance),
			improvement(top.Imbalance, prof.Imbalance))
	}
	return b.String()
}
