// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): the topology setup (Table 1), load variation over an
// emulation's lifetime (Figure 2), load imbalance for ScaLapack and GridNPB
// across Campus/TeraGrid/Brite × TOP/PLACE/PROFILE (Figures 4, 5),
// application emulation times (Figures 6, 7), fine-grained imbalance
// (Figure 8), the large-network scalability study (Table 2), and isolated
// network-emulation replay times (Figures 9, 10).
//
// Experiments run a time-compressed configuration by default (120 virtual
// seconds instead of the paper's ~600/900 s application runs) with traffic
// intensity scaled to preserve engine utilization; Config.Full restores the
// paper's durations.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/topogen"
	"repro/internal/traffic"
)

// Config tunes the experiment harness.
type Config struct {
	// Duration is the virtual length of each emulation in seconds
	// (default 120; Full overrides to the paper's application runtimes).
	Duration float64
	// Full runs the paper's durations (ScaLapack 600 s, GridNPB 900 s).
	Full bool
	// Seed drives all generators and the partitioner.
	Seed int64
	// Sequential forces single-threaded kernel execution.
	Sequential bool
	// SerialSuite runs RunSuite's topology cells one at a time instead of
	// fanning them out over the worker pool — the reference execution the
	// parallel-determinism regression tests compare against.
	SerialSuite bool
	// CellRecorder, when non-nil, supplies an observability recorder per
	// suite cell (keyed by topology name). Attaching a recorder also makes
	// that cell's three approaches run serially, so each per-cell trace is
	// byte-identical whether the suite itself ran fanned-out or serial.
	CellRecorder func(topology string) obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 120
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

func (c Config) durationFor(app string) float64 {
	if !c.Full {
		return c.Duration
	}
	if app == "GridNPB" {
		return 900
	}
	return 600
}

// scalapack builds the paper's foreground solver with traffic intensity
// matched to the experiment duration (the 10-minute run compressed into
// Duration keeps per-second load comparable by scaling transfer volume).
func (c Config) scalapack(duration float64) apps.ScaLapack {
	s := apps.DefaultScaLapack()
	s.Duration = duration
	// Hold the communication rate constant across durations at the level
	// that loads the modeled Pentium-II engines the way the paper's live
	// runs did (§4.1.2): the engines must saturate under a poor mapping for
	// the emulation-time effects of Figures 6/7 to be visible.
	s.ScaleBytes = 70 * duration / 600
	if s.ScaleBytes < 1 {
		s.ScaleBytes = 1
	}
	return s
}

func (c Config) gridnpb(duration float64) apps.GridNPB {
	g := apps.DefaultGridNPB()
	g.Duration = duration
	g.ScaleBytes = 1
	return g
}

// background is the paper's §4.1.4 HTTP table ("moderate background
// traffic") over the experiment duration.
func (c Config) background(duration float64) traffic.HTTPSpec {
	bg := traffic.DefaultHTTP(duration, c.Seed+101)
	bg.Servers = 30
	return bg
}

// scenario assembles one topology × application study.
func (c Config) scenario(topology, app string) (*core.Scenario, error) {
	nw, err := topogen.ByName(topology, c.Seed)
	if err != nil {
		return nil, err
	}
	engines := 0
	for _, s := range append(topogen.Table1(), topogen.Table2Spec()) {
		if s.Name == topology {
			engines = s.Engines
		}
	}
	if engines == 0 {
		return nil, fmt.Errorf("experiments: no engine count for topology %q", topology)
	}
	duration := c.durationFor(app)
	sc := &core.Scenario{
		Name:       fmt.Sprintf("%s/%s", topology, app),
		Network:    nw,
		Engines:    engines,
		Background: c.background(duration),
		AppSeed:    c.Seed + 5,
		PartSeed:   c.Seed + 3,
		Cluster:    true,
		Sequential: c.Sequential,
		// The report's kernel-observability section reads each run's
		// aggregated counters from Result.Obs.
		CollectStats: true,
		// The traffic-plane section reads each run's measured traffic matrix
		// and per-window timeline from Result.Telemetry. Fresh per-run
		// collectors, so the suite's cell fan-out stays parallel.
		CollectTelemetry: true,
	}
	switch app {
	case "ScaLapack":
		sc.App = c.scalapack(duration)
	case "GridNPB":
		sc.App = c.gridnpb(duration)
	default:
		return nil, fmt.Errorf("experiments: unknown app %q", app)
	}
	return sc, nil
}

// ScenarioFor exposes the harness's scenario construction (topology name
// from Table 1 or "Brite-large", app "ScaLapack" or "GridNPB") so the CLI
// tools and examples run exactly the evaluation's configurations.
func ScenarioFor(cfg Config, topology, app string) (*core.Scenario, error) {
	return cfg.withDefaults().scenario(topology, app)
}

// Cell is one (topology, approach) measurement.
type Cell struct {
	Topology  string
	Engines   int
	Approach  mapping.Approach
	Imbalance float64
	AppTime   float64
	NetTime   float64
	Lookahead float64
	Windows   int64
	Remote    int64

	// Kernel observability counters (from the run's obs.RunStats).
	Events int64 // total kernel events processed
	// MaxQueue is the deepest per-engine pending-event queue seen at any
	// window barrier — the kernel's memory high-water mark.
	MaxQueue int64
	// BarrierWait is the total wall-clock time engines spent waiting at
	// window barriers (parallel kernel only; ~0 when Sequential).
	BarrierWait float64

	// Traffic-plane telemetry (from the run's telemetry.Snapshot).
	// CrossEngineBytes is the volume carried between distinct engines — the
	// quantity the PLACE/PROFILE mappings minimize alongside imbalance.
	CrossEngineBytes int64
	// TotalBytes is the total transmitted volume, the denominator for the
	// cross-engine fraction.
	TotalBytes int64
}

// CrossFraction is the share of transmitted bytes that crossed engines.
func (c Cell) CrossFraction() float64 {
	if c.TotalBytes == 0 {
		return 0
	}
	return float64(c.CrossEngineBytes) / float64(c.TotalBytes)
}

// Suite is the full 3-topology × 3-approach grid for one application —
// the data behind Figures 4/6/9 (ScaLapack) and 5/7/10 (GridNPB).
type Suite struct {
	App   string
	Cells []Cell
	// EngineSeries keeps each run's bucketed engine loads for Figure 8.
	EngineSeries map[string]*metrics.Series // key: topology + "/" + approach
	// Timelines keeps each run's per-measurement-window imbalance /
	// cross-engine-traffic history from the telemetry plane (same keying).
	Timelines map[string][]telemetry.TrafficPoint
}

// RunSuite executes one application across the three Table 1 topologies and
// all three mapping approaches on the shared workload. The topology cells
// are independent scenarios, so they run concurrently on a bounded worker
// pool (serially under Config.SerialSuite); cells are assembled in the
// Table 1 topology × approach order regardless of completion order, and
// every cell's results are identical to a serial execution's.
func RunSuite(app string, cfg Config) (*Suite, error) {
	cfg = cfg.withDefaults()
	specs := topogen.Table1()
	cellOuts := make([][]*core.Outcome, len(specs))
	workers := 0
	if cfg.SerialSuite {
		workers = 1
	}
	err := parallel.ForEachErr(len(specs), workers, func(i int) error {
		sc, err := cfg.scenario(specs[i].Name, app)
		if err != nil {
			return err
		}
		if cfg.CellRecorder != nil {
			sc.Recorder = cfg.CellRecorder(specs[i].Name)
		}
		cellOuts[i], err = sc.RunAll(context.Background())
		return err
	})
	if err != nil {
		return nil, err
	}
	suite := &Suite{
		App:          app,
		EngineSeries: make(map[string]*metrics.Series),
		Timelines:    make(map[string][]telemetry.TrafficPoint),
	}
	for i, spec := range specs {
		for _, o := range cellOuts[i] {
			cell := Cell{
				Topology:  spec.Name,
				Engines:   spec.Engines,
				Approach:  o.Approach,
				Imbalance: o.Result.Imbalance,
				AppTime:   o.Result.AppTime,
				NetTime:   o.Result.NetTime,
				Lookahead: o.Result.Lookahead,
				Windows:   o.Result.Kernel.Windows,
				Remote:    o.Result.RemoteEvents,
			}
			if st := o.Obs(); st != nil {
				cell.Events = st.TotalEvents()
				for _, q := range st.MaxQueue {
					if q > cell.MaxQueue {
						cell.MaxQueue = q
					}
				}
				cell.BarrierWait = st.TotalBarrierWait()
			}
			key := spec.Name + "/" + string(o.Approach)
			if ts := o.Telemetry(); ts != nil {
				cell.CrossEngineBytes = ts.CrossEngineBytes
				cell.TotalBytes = ts.TotalBytes
				suite.Timelines[key] = ts.Timeline
			}
			suite.Cells = append(suite.Cells, cell)
			suite.EngineSeries[key] = o.Result.EngineSeries
		}
	}
	return suite, nil
}

// Get returns the cell for a topology and approach.
func (s *Suite) Get(topology string, a mapping.Approach) (Cell, bool) {
	for _, c := range s.Cells {
		if c.Topology == topology && c.Approach == a {
			return c, true
		}
	}
	return Cell{}, false
}

// ---- Table 1 ----

// Table1 renders the paper's Table 1, verifying the generators against it.
func Table1(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %6s %22s\n", "Topology", "Router", "Host", "Emulation Engine Node")
	for _, spec := range topogen.Table1() {
		nw, err := topogen.ByName(spec.Name, cfg.Seed)
		if err != nil {
			return "", err
		}
		if nw.NumRouters() != spec.Routers || nw.NumHosts() != spec.Hosts {
			return "", fmt.Errorf("experiments: %s generated %d/%d, Table 1 says %d/%d",
				spec.Name, nw.NumRouters(), nw.NumHosts(), spec.Routers, spec.Hosts)
		}
		fmt.Fprintf(&b, "%-10s %8d %6d %22d\n", spec.Name, spec.Routers, spec.Hosts, spec.Engines)
	}
	return b.String(), nil
}

// ---- Figure 2 ----

// Fig2 reproduces "Load Variation Over the Lifetime of an Emulation": the
// per-engine load curve of a profiling run (GridNPB on Campus under the TOP
// partition).
func Fig2(cfg Config) (*metrics.Series, error) {
	cfg = cfg.withDefaults()
	sc, err := cfg.scenario("Campus", "GridNPB")
	if err != nil {
		return nil, err
	}
	o, err := sc.Run(context.Background(), mapping.Top)
	if err != nil {
		return nil, err
	}
	return o.Result.EngineSeries, nil
}

// ---- Figures 4-7, 9-10 ----

// FigImbalance renders the Figure 4/5 bar data: normalized load imbalance
// per topology and approach.
func FigImbalance(s *Suite) string {
	return renderGrid(s, "Load Imbalance (normalized std dev)", func(c Cell) float64 { return c.Imbalance }, "%.3f")
}

// FigAppTime renders the Figure 6/7 data: application emulation time.
func FigAppTime(s *Suite) string {
	return renderGrid(s, "Application Emulation Time (s)", func(c Cell) float64 { return c.AppTime }, "%.1f")
}

// FigNetTime renders the Figure 9/10 data: isolated network emulation
// (replay) time.
func FigNetTime(s *Suite) string {
	return renderGrid(s, "Isolated Network Emulation Time (s)", func(c Cell) float64 { return c.NetTime }, "%.1f")
}

// FigCrossTraffic renders the telemetry plane's cross-engine traffic share
// per topology and approach — the cut quality the mapping strategies trade
// against balance (beyond the paper's figures; measured, not modeled).
func FigCrossTraffic(s *Suite) string {
	return renderGrid(s, "Cross-Engine Traffic (fraction of bytes)", func(c Cell) float64 { return c.CrossFraction() }, "%.3f")
}

func renderGrid(s *Suite, title string, val func(Cell) float64, format string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", title, s.App)
	fmt.Fprintf(&b, "%-10s", "Topology")
	for _, a := range mapping.Approaches() {
		fmt.Fprintf(&b, " %10s", a)
	}
	b.WriteString("\n")
	var tops []string
	seen := map[string]bool{}
	for _, c := range s.Cells {
		if !seen[c.Topology] {
			seen[c.Topology] = true
			tops = append(tops, c.Topology)
		}
	}
	sort.SliceStable(tops, func(i, j int) bool { return false }) // keep insertion order
	for _, t := range tops {
		fmt.Fprintf(&b, "%-10s", t)
		for _, a := range mapping.Approaches() {
			c, _ := s.Get(t, a)
			fmt.Fprintf(&b, " %10s", fmt.Sprintf(format, val(c)))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---- Figure 8 ----

// Fig8Result holds the fine-grained (2-second interval) imbalance curves of
// the Campus GridNPB emulation under TOP and PROFILE.
type Fig8Result struct {
	BucketWidth float64
	Top         []float64
	Profile     []float64
}

// Fig8 computes the fine-grained load imbalance comparison of Figure 8 from
// a GridNPB suite (reusing its Campus runs).
func Fig8(s *Suite) (*Fig8Result, error) {
	top, ok := s.EngineSeries["Campus/TOP"]
	if !ok {
		return nil, fmt.Errorf("experiments: suite has no Campus/TOP series")
	}
	prof, ok := s.EngineSeries["Campus/PROFILE"]
	if !ok {
		return nil, fmt.Errorf("experiments: suite has no Campus/PROFILE series")
	}
	return &Fig8Result{
		BucketWidth: top.BucketWidth,
		Top:         top.ImbalancePerBucket(),
		Profile:     prof.ImbalancePerBucket(),
	}, nil
}

// Render prints the two curves side by side.
func (f *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Fine-Grained Load Imbalance (GridNPB on Campus, 2s intervals)\n")
	fmt.Fprintf(&b, "%8s %10s %10s\n", "t(s)", "TOP", "PROFILE")
	n := len(f.Top)
	if len(f.Profile) < n {
		n = len(f.Profile)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%8.0f %10.3f %10.3f\n", float64(i)*f.BucketWidth, f.Top[i], f.Profile[i])
	}
	fmt.Fprintf(&b, "%8s %10.3f %10.3f  (mean over active buckets)\n", "mean",
		meanActive(f.Top), meanActive(f.Profile))
	return b.String()
}

// FigTrafficTimeline renders the per-window traffic-plane history of one
// topology's runs under TOP and PROFILE side by side: measured load imbalance
// and cross-engine bytes per measurement window. This is the live-telemetry
// analogue of Figure 8 — it shows *why* PROFILE wins (smaller imbalance at
// comparable or lower cross-engine volume), window by window.
func FigTrafficTimeline(s *Suite, topology string) (string, error) {
	top, ok := s.Timelines[topology+"/TOP"]
	if !ok {
		return "", fmt.Errorf("experiments: suite has no %s/TOP timeline", topology)
	}
	prof, ok := s.Timelines[topology+"/PROFILE"]
	if !ok {
		return "", fmt.Errorf("experiments: suite has no %s/PROFILE timeline", topology)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Traffic-plane timeline (%s on %s, per measurement window)\n", s.App, topology)
	fmt.Fprintf(&b, "%8s %12s %14s %12s %14s\n", "t(s)", "TOP imbal", "TOP xMB", "PROF imbal", "PROF xMB")
	n := len(top)
	if len(prof) > n {
		n = len(prof)
	}
	step := n/15 + 1
	for i := 0; i < n; i += step {
		var tt, pt telemetry.TrafficPoint
		if i < len(top) {
			tt = top[i]
		}
		if i < len(prof) {
			pt = prof[i]
		}
		t := tt.Time
		if t == 0 {
			t = pt.Time
		}
		fmt.Fprintf(&b, "%8.0f %12.3f %14.2f %12.3f %14.2f\n", t,
			tt.Imbalance, float64(tt.CrossEngineBytes)/1e6,
			pt.Imbalance, float64(pt.CrossEngineBytes)/1e6)
	}
	return b.String(), nil
}

func meanActive(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ---- Table 2 ----

// Table2Row is one approach's measurement on the large Brite network.
type Table2Row struct {
	Approach  mapping.Approach
	Imbalance float64
	AppTime   float64
}

// Table2 runs the scalability study of §4.2.3: ScaLapack on the 200-router /
// 364-host Brite network over 20 simulation engines.
func Table2(cfg Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	sc, err := cfg.scenario("Brite-large", "ScaLapack")
	if err != nil {
		return nil, err
	}
	outs, err := sc.RunAll(context.Background())
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, len(outs))
	for i, o := range outs {
		rows[i] = Table2Row{
			Approach:  o.Approach,
			Imbalance: o.Result.Imbalance,
			AppTime:   o.Result.AppTime,
		}
	}
	return rows, nil
}

// RenderTable2 formats the Table 2 rows the way the paper lays them out.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s", "ScaLapack")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10s", r.Approach)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-34s", "Load Imbalance (Std. Deviation)")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10.3f", r.Imbalance)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-34s", "Execution Time (second)")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10.1f", r.AppTime)
	}
	b.WriteString("\n")
	return b.String()
}
