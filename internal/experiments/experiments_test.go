package experiments

import (
	"bytes"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/mapping"
	"repro/internal/obs"
)

// testCfg uses the calibrated default duration (120 virtual seconds).
func testCfg() Config { return Config{Duration: 120, Seed: 42} }

// Suites are expensive; share them across shape tests.
var (
	suiteOnce sync.Once
	scaSuite  *Suite
	npbSuite  *Suite
	suiteErr  error
)

func suites(t *testing.T) (*Suite, *Suite) {
	t.Helper()
	suiteOnce.Do(func() {
		scaSuite, suiteErr = RunSuite("ScaLapack", testCfg())
		if suiteErr != nil {
			return
		}
		npbSuite, suiteErr = RunSuite("GridNPB", testCfg())
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return scaSuite, npbSuite
}

func TestTable1MatchesPaper(t *testing.T) {
	out, err := Table1(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Campus", "TeraGrid", "Brite", "20", "27", "160", "150", "364"} {
		if want == "364" {
			continue // Table 2 config, not in Table 1
		}
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestSuiteComplete(t *testing.T) {
	sca, npb := suites(t)
	for _, s := range []*Suite{sca, npb} {
		if len(s.Cells) != 9 {
			t.Fatalf("%s suite has %d cells, want 9", s.App, len(s.Cells))
		}
		for _, topo := range []string{"Campus", "TeraGrid", "Brite"} {
			for _, a := range mapping.Approaches() {
				if _, ok := s.Get(topo, a); !ok {
					t.Errorf("%s: missing cell %s/%s", s.App, topo, a)
				}
			}
		}
	}
}

// TestFig4Fig5Shape asserts the paper's headline imbalance ordering on every
// topology for both applications: PROFILE < TOP and PLACE < TOP, with
// PROFILE the overall best, and a substantial (>=40%) PROFILE improvement.
func TestFig4Fig5Shape(t *testing.T) {
	sca, npb := suites(t)
	for _, s := range []*Suite{sca, npb} {
		for _, topo := range []string{"Campus", "TeraGrid", "Brite"} {
			top, _ := s.Get(topo, mapping.Top)
			place, _ := s.Get(topo, mapping.Place)
			prof, _ := s.Get(topo, mapping.Profile)
			if prof.Imbalance >= top.Imbalance {
				t.Errorf("%s/%s: PROFILE %.3f >= TOP %.3f", s.App, topo, prof.Imbalance, top.Imbalance)
			}
			// PLACE should not be meaningfully worse than TOP. On Campus —
			// only 3 engines and 60 nodes — the TOP-vs-PLACE difference is
			// within seed noise, so the band is wider there.
			placeTol := 1.10
			if topo == "Campus" {
				placeTol = 1.30
			}
			if place.Imbalance >= top.Imbalance*placeTol {
				t.Errorf("%s/%s: PLACE %.3f much worse than TOP %.3f", s.App, topo, place.Imbalance, top.Imbalance)
			}
			if prof.Imbalance > place.Imbalance*1.25 {
				t.Errorf("%s/%s: PROFILE %.3f clearly worse than PLACE %.3f", s.App, topo, prof.Imbalance, place.Imbalance)
			}
			if imp := 1 - prof.Imbalance/top.Imbalance; imp < 0.40 {
				t.Errorf("%s/%s: PROFILE improvement only %.0f%%, want >= 40%%", s.App, topo, imp*100)
			}
		}
	}
}

// TestImbalanceGrowsWithScale asserts §4.2.1's scaling observation: TOP's
// imbalance increases with the engine count (Campus 3 < TeraGrid 5 < Brite 8).
func TestImbalanceGrowsWithScale(t *testing.T) {
	sca, _ := suites(t)
	campus, _ := sca.Get("Campus", mapping.Top)
	tera, _ := sca.Get("TeraGrid", mapping.Top)
	brite, _ := sca.Get("Brite", mapping.Top)
	if !(campus.Imbalance < tera.Imbalance && tera.Imbalance < brite.Imbalance) {
		t.Errorf("TOP imbalance not increasing with scale: %.3f, %.3f, %.3f",
			campus.Imbalance, tera.Imbalance, brite.Imbalance)
	}
}

// TestFig6Fig7Shape asserts the emulation-time claims: PROFILE never slower
// than TOP beyond noise, with a real improvement on the large irregular
// topology; GridNPB's app-time gain smaller than its replay gain
// (computation-bound, §4.2.2).
func TestFig6Fig7Shape(t *testing.T) {
	sca, npb := suites(t)
	for _, s := range []*Suite{sca, npb} {
		for _, topo := range []string{"Campus", "TeraGrid", "Brite"} {
			top, _ := s.Get(topo, mapping.Top)
			prof, _ := s.Get(topo, mapping.Profile)
			if prof.AppTime > top.AppTime*1.05 {
				t.Errorf("%s/%s: PROFILE app time %.1f worse than TOP %.1f", s.App, topo, prof.AppTime, top.AppTime)
			}
		}
		top, _ := s.Get("Brite", mapping.Top)
		prof, _ := s.Get("Brite", mapping.Profile)
		// The paper's app-time gains are large for ScaLapack (§4.2.2,
		// up to 50%) but small for the computation-bound GridNPB (~17%);
		// require correspondingly different floors.
		want := 0.10
		if s.App == "GridNPB" {
			want = 0.03
		}
		if imp := 1 - prof.AppTime/top.AppTime; imp < want {
			t.Errorf("%s/Brite: app-time improvement only %.0f%%, want >= %.0f%%", s.App, imp*100, want*100)
		}
	}
	// GridNPB: relative replay improvement exceeds relative app-time
	// improvement on Campus (compute-bound app, Figure 7 vs Figure 10).
	top, _ := npb.Get("Campus", mapping.Top)
	prof, _ := npb.Get("Campus", mapping.Profile)
	appImp := 1 - prof.AppTime/top.AppTime
	netImp := 1 - prof.NetTime/top.NetTime
	if netImp < appImp-0.02 {
		t.Errorf("GridNPB/Campus: replay improvement %.0f%% < app improvement %.0f%%", netImp*100, appImp*100)
	}
}

// TestFig9Fig10Shape asserts replay (isolated network emulation) improves
// with PROFILE on every topology.
func TestFig9Fig10Shape(t *testing.T) {
	sca, npb := suites(t)
	for _, s := range []*Suite{sca, npb} {
		for _, topo := range []string{"Campus", "TeraGrid", "Brite"} {
			top, _ := s.Get(topo, mapping.Top)
			prof, _ := s.Get(topo, mapping.Profile)
			if prof.NetTime > top.NetTime*1.02 {
				t.Errorf("%s/%s: PROFILE replay %.1f not better than TOP %.1f", s.App, topo, prof.NetTime, top.NetTime)
			}
		}
	}
}

func TestFig8Shape(t *testing.T) {
	_, npb := suites(t)
	f, err := Fig8(npb)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Top) == 0 || len(f.Profile) == 0 {
		t.Fatal("empty fine-grained series")
	}
	// Paper: PROFILE's fine-grained imbalance is clearly below TOP's.
	mt, mp := meanActive(f.Top), meanActive(f.Profile)
	if mp >= mt {
		t.Errorf("fine-grained mean imbalance: PROFILE %.3f >= TOP %.3f", mp, mt)
	}
	if f.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig2HasVariation(t *testing.T) {
	s, err := Fig2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	totals := s.TotalPerBucket()
	// The load curve must actually vary (bursty workflow application).
	var mn, mx float64
	first := true
	for _, v := range totals {
		if v == 0 {
			continue
		}
		if first || v < mn {
			mn = v
		}
		if first || v > mx {
			mx = v
		}
		first = false
	}
	if first || mx < 2*mn {
		t.Errorf("load variation too flat: min %.0f max %.0f", mn, mx)
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Paper's ordering: TOP worst on both metrics, PROFILE best imbalance.
	if !(rows[0].Imbalance > rows[1].Imbalance && rows[1].Imbalance > rows[2].Imbalance) {
		t.Errorf("Table 2 imbalance ordering violated: %.3f / %.3f / %.3f",
			rows[0].Imbalance, rows[1].Imbalance, rows[2].Imbalance)
	}
	if rows[2].AppTime > rows[0].AppTime {
		t.Errorf("Table 2: PROFILE time %.1f worse than TOP %.1f", rows[2].AppTime, rows[0].AppTime)
	}
	if out := RenderTable2(rows); !strings.Contains(out, "ScaLapack") {
		t.Error("Table 2 render missing header")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Duration != 120 || c.Seed == 0 {
		t.Errorf("defaults wrong: %+v", c)
	}
	full := Config{Full: true}.withDefaults()
	if full.durationFor("ScaLapack") != 600 || full.durationFor("GridNPB") != 900 {
		t.Error("full durations wrong")
	}
}

func TestBaselinesShape(t *testing.T) {
	rows, err := Baselines(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	get := func(a mapping.Approach) float64 {
		for _, r := range rows {
			if r.Approach == a {
				return r.Imbalance
			}
		}
		t.Fatalf("missing %s", a)
		return 0
	}
	// The paper's §5 claim: the traffic-informed approaches beat the
	// traffic-blind baselines; PROFILE beats everything.
	prof := get(mapping.Profile)
	for _, a := range mapping.BaselineApproaches() {
		if prof >= get(a) {
			t.Errorf("PROFILE %.3f not better than baseline %s %.3f", prof, a, get(a))
		}
	}
	if out := RenderBaselines(rows); out == "" {
		t.Error("empty render")
	}
}

func TestAllAndMarkdown(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in short mode")
	}
	report, err := All(Config{Duration: 30, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	md := report.Markdown()
	for _, want := range []string{
		"# EXPERIMENTS",
		"Table 1", "Figure 2", "Figure 4", "Figure 5", "Figure 6",
		"Figure 7", "Figure 8", "Figure 9", "Figure 10", "Table 2",
		"baseline comparison",
		"Traffic-plane telemetry", "Cross-Engine Traffic",
		"TOP", "PLACE", "PROFILE", "KCLUSTER", "HIER",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	if report.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestRenderers(t *testing.T) {
	sca, _ := suites(t)
	for _, out := range []string{FigImbalance(sca), FigAppTime(sca), FigNetTime(sca)} {
		if !strings.Contains(out, "Campus") || !strings.Contains(out, "PROFILE") {
			t.Errorf("renderer output incomplete:\n%s", out)
		}
	}
}

// TestSuiteTrafficTelemetry: every suite cell carries the traffic plane's
// measured volumes and per-window timeline, and the renders include them.
func TestSuiteTrafficTelemetry(t *testing.T) {
	sca, npb := suites(t)
	for _, s := range []*Suite{sca, npb} {
		for _, c := range s.Cells {
			if c.TotalBytes <= 0 {
				t.Errorf("%s/%s/%s: no transmitted bytes measured", s.App, c.Topology, c.Approach)
			}
			if c.CrossEngineBytes <= 0 {
				t.Errorf("%s/%s/%s: no cross-engine bytes measured", s.App, c.Topology, c.Approach)
			}
			if f := c.CrossFraction(); f <= 0 || f >= 1 {
				t.Errorf("%s/%s/%s: cross fraction %.3f outside (0,1)", s.App, c.Topology, c.Approach, f)
			}
			key := c.Topology + "/" + string(c.Approach)
			if len(s.Timelines[key]) == 0 {
				t.Errorf("%s/%s: no traffic timeline", s.App, key)
			}
		}
	}
	if out := FigCrossTraffic(sca); !strings.Contains(out, "Cross-Engine Traffic") ||
		!strings.Contains(out, "Campus") {
		t.Errorf("FigCrossTraffic incomplete:\n%s", out)
	}
	tl, err := FigTrafficTimeline(npb, "Campus")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tl, "PROF imbal") || !strings.Contains(tl, "TOP xMB") {
		t.Errorf("FigTrafficTimeline incomplete:\n%s", tl)
	}
	if _, err := FigTrafficTimeline(&Suite{App: "x"}, "Campus"); err == nil {
		t.Error("timeline render of an empty suite did not fail")
	}
}

func TestScenarioForErrors(t *testing.T) {
	if _, err := ScenarioFor(testCfg(), "Atlantis", "ScaLapack"); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := ScenarioFor(testCfg(), "Campus", "Doom"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCSV(dir, sampleReport()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig4.csv", "fig5.csv", "fig6.csv", "fig7.csv",
		"fig8.csv", "fig9.csv", "fig10.csv", "table2.csv", "baselines.csv"} {
		data, err := os.ReadFile(dir + "/" + name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s empty", name)
		}
	}
	// fig2.csv intentionally absent (nil in the sample report).
	if _, err := os.Stat(dir + "/fig2.csv"); err == nil {
		t.Error("fig2.csv written despite nil series")
	}
	// Spot-check content.
	data, _ := os.ReadFile(dir + "/table2.csv")
	if !strings.Contains(string(data), "PROFILE") || !strings.Contains(string(data), "460") {
		t.Errorf("table2.csv content wrong:\n%s", data)
	}
}

func TestBars(t *testing.T) {
	out := Bars("demo", []string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "bb") {
		t.Errorf("bars output:\n%s", out)
	}
	// The max value gets the full width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.Contains(lines[2], strings.Repeat("█", 10)) {
		t.Errorf("max bar not full width:\n%s", out)
	}
	// Zero values and empty title are fine.
	if Bars("", []string{"x"}, []float64{0}, 0) == "" {
		t.Error("empty render")
	}
}

func TestSuiteBars(t *testing.T) {
	sca, _ := suites(t)
	out := SuiteBars(sca, "Figure 4", func(c Cell) float64 { return c.Imbalance })
	for _, want := range []string{"Figure 4", "Campus/TOP", "Brite/PROFILE"} {
		if !strings.Contains(out, want) {
			t.Errorf("SuiteBars missing %q:\n%s", want, out)
		}
	}
}

func TestFig3(t *testing.T) {
	out := Fig3()
	for _, want := range []string{"SDSC", "NCSA", "ANL", "CIT", "PSC", "40 Gb/s", "hub"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 missing %q:\n%s", want, out)
		}
	}
}

// TestRunSuiteParallelTraceMatchesSerial is the determinism regression for
// the suite-level fan-out: a RunSuite executed with concurrent topology
// cells must produce, for every cell, an obs JSONL trace byte-identical to
// the serial run's — and identical headline cells. GOMAXPROCS is raised so
// the fan-out really runs concurrently even on single-CPU machines.
func TestRunSuiteParallelTraceMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	run := func(serial bool) (*Suite, map[string]string) {
		var mu sync.Mutex
		bufs := make(map[string]*bytes.Buffer)
		traces := make(map[string]*obs.Trace)
		cfg := Config{Duration: 20, Seed: 42, SerialSuite: serial}
		cfg.CellRecorder = func(topology string) obs.Recorder {
			mu.Lock()
			defer mu.Unlock()
			b := &bytes.Buffer{}
			tr := obs.NewTrace(b)
			bufs[topology] = b
			traces[topology] = tr
			return tr
		}
		s, err := RunSuite("ScaLapack", cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string, len(bufs))
		for topo, tr := range traces {
			if err := tr.Flush(); err != nil {
				t.Fatal(err)
			}
			out[topo] = bufs[topo].String()
		}
		return s, out
	}
	parSuite, parTraces := run(false)
	serSuite, serTraces := run(true)
	if len(parTraces) != 3 || len(serTraces) != 3 {
		t.Fatalf("got %d parallel / %d serial cell traces, want 3 each", len(parTraces), len(serTraces))
	}
	for topo, ser := range serTraces {
		if ser == "" {
			t.Fatalf("%s: empty serial trace", topo)
		}
		if parTraces[topo] != ser {
			t.Errorf("%s: parallel fan-out trace differs from serial run", topo)
		}
	}
	if len(parSuite.Cells) != len(serSuite.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(parSuite.Cells), len(serSuite.Cells))
	}
	for i := range serSuite.Cells {
		// BarrierWait is wall-clock time spent at window barriers — the one
		// legitimately nondeterministic cell field; everything else must be
		// bit-equal.
		p, s := parSuite.Cells[i], serSuite.Cells[i]
		p.BarrierWait, s.BarrierWait = 0, 0
		if p != s {
			t.Errorf("cell %d differs under parallel fan-out:\n  parallel: %+v\n  serial:   %+v", i, p, s)
		}
	}
}

// TestCrossFractionZeroTraffic: a cell that moved no bytes (an idle or
// truncated run) must report a 0 cross-engine fraction, not NaN — NaN here
// poisons grid renders and any mean over cells.
func TestCrossFractionZeroTraffic(t *testing.T) {
	c := Cell{CrossEngineBytes: 0, TotalBytes: 0}
	f := c.CrossFraction()
	if math.IsNaN(f) {
		t.Fatal("zero-traffic cell produced NaN")
	}
	if f != 0 {
		t.Fatalf("zero-traffic CrossFraction = %g, want 0", f)
	}
	// Sanity on the normal path.
	c = Cell{CrossEngineBytes: 25, TotalBytes: 100}
	if got := c.CrossFraction(); got != 0.25 {
		t.Fatalf("CrossFraction = %g, want 0.25", got)
	}
}
