package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
)

// DynamicRow is one remap policy's outcome on the bursty dynamic-remapping
// comparison.
type DynamicRow struct {
	Policy               core.RemapPolicy
	Imbalance            float64
	MeanSegmentImbalance float64
	CrossEngineBytes     int64
	Migrations           int
	AppTime              float64
	// Rounds, MovesTaken and Converged aggregate the per-segment game
	// convergence stats; zero/false for the non-game policies.
	Rounds     int
	MovesTaken int
	Converged  bool
}

// DynamicStudy compares the dynamic remap policies — from-scratch PROFILE,
// incremental refinement, the game-theoretic best-response policy, and the
// traffic-blind diffusion baseline — on the bursty GridNPB workload the
// paper's Table-1 Campus configuration runs. Every policy sees the same
// scenario, interval grid and seeds; the rows differ only in how each
// interval's telemetry is turned into the next assignment.
func DynamicStudy(cfg Config) ([]DynamicRow, error) {
	cfg = cfg.withDefaults()
	// Five remap opportunities over the run: enough bursts of GridNPB's
	// irregular traffic for the policies to diverge, short enough to keep
	// the study inside the quick-mode budget.
	interval := cfg.Duration / 5

	policies := []core.RemapPolicy{
		core.RemapProfile,
		core.RemapIncremental,
		core.RemapGame,
		core.RemapDiffusion,
	}
	rows := make([]DynamicRow, 0, len(policies))
	for _, p := range policies {
		sc, err := cfg.scenario("Campus", "GridNPB")
		if err != nil {
			return nil, err
		}
		sc.Remap = p
		res, err := sc.RunDynamic(context.Background(), interval, 0)
		if err != nil {
			return nil, fmt.Errorf("dynamic study %s: %w", p, err)
		}
		row := DynamicRow{
			Policy:               p,
			Imbalance:            res.Imbalance,
			MeanSegmentImbalance: res.MeanSegmentImbalance,
			CrossEngineBytes:     res.CrossEngineBytes,
			Migrations:           res.Migrations,
			AppTime:              res.AppTime,
			Converged:            true,
		}
		for _, s := range res.Segments {
			if s.Remap == nil {
				continue
			}
			row.Rounds += s.Remap.Rounds
			row.MovesTaken += s.Remap.MovesTaken
			if p == core.RemapGame && !s.Remap.Converged {
				row.Converged = false
			}
		}
		if p != core.RemapGame {
			row.Converged = false
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderDynamicStudy formats the policy comparison as a fixed-width table.
func RenderDynamicStudy(rows []DynamicRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %9s %10s %10s %9s %7s %6s %9s\n",
		"policy", "imbalance", "mean-imb", "cross-MB", "migrations", "app(s)", "rounds", "moves", "converged")
	for _, r := range rows {
		conv := "-"
		if r.Policy == core.RemapGame {
			conv = fmt.Sprintf("%v", r.Converged)
		}
		fmt.Fprintf(&b, "%-12s %9.3f %9.3f %10.1f %10d %9.1f %7d %6d %9s\n",
			r.Policy, r.Imbalance, r.MeanSegmentImbalance,
			float64(r.CrossEngineBytes)/1e6, r.Migrations, r.AppTime,
			r.Rounds, r.MovesTaken, conv)
	}
	return b.String()
}
