package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestDynamicStudy(t *testing.T) {
	rows, err := DynamicStudy(Config{Duration: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 policies", len(rows))
	}
	byPolicy := map[core.RemapPolicy]DynamicRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
		if r.Imbalance <= 0 || r.AppTime <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Policy, r)
		}
	}
	game, ok := byPolicy[core.RemapGame]
	if !ok {
		t.Fatal("game policy missing from the study")
	}
	profile := byPolicy[core.RemapProfile]
	if !game.Converged {
		t.Error("game policy did not converge on the study workload")
	}
	if game.Rounds == 0 {
		t.Error("game policy recorded zero best-response rounds")
	}
	// The headline tradeoff (strict inequality is asserted by the core
	// acceptance test on the full workload; here we only require the study
	// not to contradict it).
	if game.Migrations > profile.Migrations {
		t.Errorf("game migrated %d nodes, PROFILE %d — game should not migrate more",
			game.Migrations, profile.Migrations)
	}

	out := RenderDynamicStudy(rows)
	for _, p := range []string{"profile", "incremental", "game", "diffusion"} {
		if !strings.Contains(out, p) {
			t.Errorf("rendered study missing policy %q:\n%s", p, out)
		}
	}
}
