// Package parallel is the small bounded worker-pool utility the
// precomputation pipeline shares: all-pairs routing fans its Dijkstra sources
// out with ForEachWorker, route discovery and the experiment harness fan
// independent cells out with ForEachErr.
//
// The contract every helper keeps is determinism by construction: indices are
// claimed atomically but results must be written to per-index state, so the
// outcome of a parallel run is identical to the sequential one regardless of
// scheduling. One worker (or one item) degenerates to an inline loop on the
// caller's goroutine — the exact sequential execution the equivalence tests
// compare against.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: non-positive means GOMAXPROCS,
// and the result never exceeds n (no point parking idle goroutines) nor drops
// below 1.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach calls fn(i) exactly once for every i in [0, n), using at most
// `workers` goroutines (GOMAXPROCS when workers <= 0), and returns when all
// calls have finished. With one effective worker the calls run inline, in
// index order, on the caller's goroutine. fn must be safe to call
// concurrently for distinct indices and must confine its writes to per-index
// state.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach for callers that keep per-worker scratch state:
// fn additionally receives the executing worker's index in
// [0, Workers(workers, n)), stable for the lifetime of the call.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
}

// ForEachErr runs fn(i) for every i in [0, n) like ForEach and returns the
// error of the lowest failing index — deterministic regardless of
// scheduling. All indices are visited even when some fail (items are
// independent; there is no early cancellation).
func ForEachErr(n, workers int, fn func(i int) error) error {
	var mu sync.Mutex
	firstIdx := -1
	var firstErr error
	ForEach(n, workers, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if firstIdx < 0 || i < firstIdx {
				firstIdx, firstErr = i, err
			}
			mu.Unlock()
		}
	})
	return firstErr
}
