package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4, 100); got != 4 {
		t.Errorf("Workers(4, 100) = %d, want 4", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3 (capped at n)", got)
	}
	if got := Workers(0, 16); got < 1 {
		t.Errorf("Workers(0, 16) = %d, want >= 1", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Errorf("Workers(-1, 0) = %d, want 1", got)
	}
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 500
			counts := make([]atomic.Int32, n)
			ForEach(n, workers, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("index %d visited %d times, want 1", i, c)
				}
			}
		})
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	called := 0
	ForEach(0, 4, func(int) { called++ })
	if called != 0 {
		t.Errorf("ForEach(0, ...) made %d calls, want 0", called)
	}
	// A single worker runs inline and in order: a plain int counter is safe.
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order = %v, want ascending", order)
		}
	}
}

func TestForEachWorkerIDsInRange(t *testing.T) {
	const n, workers = 200, 4
	var bad atomic.Int32
	ForEachWorker(n, workers, func(worker, i int) {
		if worker < 0 || worker >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d calls saw a worker index outside [0, %d)", bad.Load(), workers)
	}
}

func TestForEachErrLowestIndexWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		err := ForEachErr(100, workers, func(i int) error {
			switch i {
			case 17:
				return errLow
			case 80:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: err = %v, want the lowest failing index's error", workers, err)
		}
	}
	if err := ForEachErr(50, 4, func(int) error { return nil }); err != nil {
		t.Errorf("all-nil ForEachErr returned %v", err)
	}
}

func TestForEachErrVisitsAllDespiteFailures(t *testing.T) {
	const n = 64
	var visited atomic.Int32
	err := ForEachErr(n, 8, func(i int) error {
		visited.Add(1)
		if i%2 == 0 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := visited.Load(); got != n {
		t.Errorf("visited %d indices, want %d (no early cancellation)", got, n)
	}
}
