package mapping

import (
	"errors"
	"testing"

	"repro/internal/partition"
	"repro/internal/topogen"
)

func TestSentinelErrBadInput(t *testing.T) {
	nw := topogen.Campus()
	cases := []struct {
		name string
		err  func() error
	}{
		{"no-network", func() error { _, err := TopMap(Input{K: 2}); return err }},
		{"bad-k", func() error { _, err := TopMap(Input{Network: nw}); return err }},
		{"unknown-approach", func() error { _, err := Map("NOPE", Input{Network: nw, K: 2}); return err }},
		{"profile-no-summary", func() error { _, err := ProfileMap(Input{Network: nw, K: 2}); return err }},
		{"remap-bad-assignment", func() error {
			_, _, err := RemapSurvivors(Input{Network: nw, K: 2}, []int{0}, []int{0}, nil)
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.err()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrBadInput) {
			t.Errorf("%s: error %v does not wrap ErrBadInput", tc.name, err)
		}
	}
}

func TestSentinelErrInfeasible(t *testing.T) {
	nw := topogen.Campus()
	prev := make([]int, nw.NumNodes())
	opts := partition.Options{Seed: 1}
	cases := []struct {
		name string
		err  func() error
	}{
		{"kcluster-too-many", func() error {
			_, err := KClusterMap(Input{Network: nw, K: nw.NumNodes() + 1, PartOpts: opts})
			return err
		}},
		{"hier-too-many", func() error {
			_, err := HierMap(Input{Network: nw, K: nw.NumNodes() + 1, PartOpts: opts})
			return err
		}},
		{"remap-no-survivors", func() error {
			_, _, err := RemapSurvivors(Input{Network: nw, K: 2}, prev, nil, nil)
			return err
		}},
		{"guard-bad-capacity", func() error {
			_, err := MapWithMemoryGuard(Top, Input{Network: nw, K: 2}, 0, 1)
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.err()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrInfeasible) {
			t.Errorf("%s: error %v does not wrap ErrInfeasible", tc.name, err)
		}
		if errors.Is(err, ErrBadInput) {
			t.Errorf("%s: infeasible error must not also wrap ErrBadInput: %v", tc.name, err)
		}
	}
}
