package mapping

import (
	"fmt"
	"math"

	"repro/internal/partition"
)

// Dynamic remapping policies beyond ProfileImprove: the game-theoretic
// iterative repartitioner (the ROADMAP's Kurve et al. item) and the classic
// traffic-blind load-diffusion baseline it is measured against.

// GameRemap is the game-theoretic sibling of ProfileImprove: instead of
// re-running the multilevel partitioner over the measured profile, it lets
// every virtual node play selfish best responses — trading its computational
// load, its share of the cross-engine traffic, and the modeled migration
// cost — until a Nash-style fixed point (see partition.GameImprove). The
// measured traffic edge weights are the payoff's traffic objective. Returns
// the refined assignment (a fresh slice), the number of nodes that changed
// engines, and the convergence stats.
func GameRemap(in Input, previous []int, gopts partition.GameOptions) ([]int, int, *partition.GameStats, error) {
	// The game balances the interval's total measured load; the whole-run
	// timeline clustering of §3.3 does not apply to one interval's profile.
	in.Cluster = false
	if err := in.defaults(); err != nil {
		return nil, 0, nil, err
	}
	g, _, bw, err := profileGraph(&in)
	if err != nil {
		return nil, 0, nil, err
	}
	if gopts.Seed == 0 {
		// Decorrelate the tie-break stream from the partitioner's restart
		// streams while keeping it a pure function of the scenario seed.
		gopts.Seed = in.PartOpts.Seed + 0x6761
	}
	next := append([]int(nil), previous...)
	moved, stats, err := partition.GameImprove(g.WithWeights(bw), next, in.K, gopts)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("mapping: game remap: %w", err)
	}
	return next, moved, stats, nil
}

// DiffusionRemap is the traffic-blind baseline the dynamic-policy comparison
// measures GameRemap against: classic load diffusion, repeatedly shifting a
// node from the most- to the least-loaded engine until the heaviest engine
// is within the balance tolerance. It sees only the measured per-node loads,
// never the traffic matrix, so whatever cross-engine traffic it produces is
// incidental. Returns the new assignment (a fresh slice) and the number of
// nodes that changed engines.
func DiffusionRemap(in Input, previous []int) ([]int, int, error) {
	in.Cluster = false
	if err := in.defaults(); err != nil {
		return nil, 0, err
	}
	if in.Summary == nil {
		return nil, 0, fmt.Errorf("%w: diffusion remap requires a traffic summary", ErrBadInput)
	}
	n := in.Network.NumNodes()
	if len(in.Summary.NodePackets) != n {
		return nil, 0, fmt.Errorf("%w: summary covers %d nodes, network has %d",
			ErrBadInput, len(in.Summary.NodePackets), n)
	}
	if len(previous) != n {
		return nil, 0, fmt.Errorf("%w: assignment covers %d nodes, network has %d",
			ErrBadInput, len(previous), n)
	}
	next := append([]int(nil), previous...)

	nodeLoad := make([]float64, n)
	var total float64
	for v := range nodeLoad {
		w := in.Summary.NodePackets[v]
		if w < 1 {
			w = 1 // idle nodes still cost an engine slot, as in profileGraph
		}
		nodeLoad[v] = float64(w)
		total += nodeLoad[v]
	}
	load := make([]float64, in.K)
	count := make([]int, in.K)
	for v, p := range next {
		if p < 0 || p >= in.K {
			return nil, 0, fmt.Errorf("%w: node %d assigned to engine %d, want [0,%d)",
				ErrBadInput, v, p, in.K)
		}
		load[p] += nodeLoad[v]
		count[p]++
	}
	avg := total / float64(in.K)
	tol := in.PartOpts.Imbalance

	// Each accepted shift moves weight 0 < w < gap, strictly decreasing
	// Σ load², so the loop terminates; the iteration cap is a safety net.
	for iter := 0; iter < 8*n; iter++ {
		src, dst := 0, 0
		for e := 1; e < in.K; e++ {
			if load[e] > load[src] {
				src = e
			}
			if load[e] < load[dst] {
				dst = e
			}
		}
		gap := load[src] - load[dst]
		if load[src] <= avg*(1+tol) || gap <= 0 || count[src] <= 1 {
			break
		}
		// Greedy halving: the movable node closest to half the gap.
		bestV, bestD := -1, math.Inf(1)
		for v := range next {
			if next[v] != src {
				continue
			}
			w := nodeLoad[v]
			if w >= gap {
				continue
			}
			if d := math.Abs(w - gap/2); d < bestD {
				bestV, bestD = v, d
			}
		}
		if bestV < 0 {
			break
		}
		load[src] -= nodeLoad[bestV]
		load[dst] += nodeLoad[bestV]
		count[src]--
		count[dst]++
		next[bestV] = dst
	}

	moved := 0
	for v := range next {
		if next[v] != previous[v] {
			moved++
		}
	}
	return next, moved, nil
}
