package mapping

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/topogen"
)

func TestMapWithMemoryGuardFits(t *testing.T) {
	nw := topogen.Campus() // total memory 8600; 3 engines -> avg ~2867
	in := Input{Network: nw, K: 3, PartOpts: partition.Options{Seed: 1}}
	res, err := MapWithMemoryGuard(Top, in, 4000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fits {
		t.Fatalf("capacity 4000 not satisfiable: memory %v", res.Memory)
	}
	for e, m := range res.Memory {
		if m > 4000 {
			t.Errorf("engine %d memory %d exceeds capacity", e, m)
		}
	}
	if err := validPartition(nw.NumNodes(), res.Assignment, 3); err != nil {
		t.Fatal(err)
	}
}

func TestMapWithMemoryGuardTightens(t *testing.T) {
	// A capacity just above the per-engine average forces the guard to
	// tighten; it either fits (possibly after retries) or reports its best.
	nw := topogen.Campus()
	in := Input{Network: nw, K: 3, PartOpts: partition.Options{Seed: 1, Imbalance: 0.4}}
	res, err := MapWithMemoryGuard(Top, in, 3100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts < 1 {
		t.Error("no attempts recorded")
	}
	peak := int64(0)
	for _, m := range res.Memory {
		if m > peak {
			peak = m
		}
	}
	if res.Fits && peak > 3100 {
		t.Errorf("claims fit but peak %d > 3100", peak)
	}
}

func TestMapWithMemoryGuardImpossible(t *testing.T) {
	// Capacity below total/k can never fit; the guard must report Fits=false
	// with its best effort, not loop forever.
	nw := topogen.Campus()
	in := Input{Network: nw, K: 3, PartOpts: partition.Options{Seed: 1}}
	res, err := MapWithMemoryGuard(Top, in, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fits {
		t.Error("impossible capacity reported as fitting")
	}
	if res.Assignment == nil {
		t.Error("no best-effort assignment returned")
	}
}

func TestMapWithMemoryGuardValidation(t *testing.T) {
	nw := topogen.Campus()
	if _, err := MapWithMemoryGuard(Top, Input{Network: nw, K: 3}, 0, 3); err == nil {
		t.Error("zero capacity accepted")
	}
}
