package mapping

import "errors"

// Sentinel errors wrapped (via %w) by the mapping strategies, so callers can
// branch with errors.Is instead of matching message text.
var (
	// ErrBadInput marks a malformed Input: missing network, invalid k,
	// mismatched summary or assignment sizes, unknown approach names.
	ErrBadInput = errors.New("mapping: invalid input")
	// ErrInfeasible marks a well-formed problem with no admissible
	// solution: more engines than placeable nodes, no surviving engines to
	// remap onto, a memory guard with non-positive capacity.
	ErrInfeasible = errors.New("mapping: infeasible problem")
)
