package mapping

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/topogen"
)

func TestKClusterMapValid(t *testing.T) {
	nw := topogen.Campus()
	part, err := KClusterMap(Input{Network: nw, K: 3, PartOpts: partition.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := validPartition(nw.NumNodes(), part, 3); err != nil {
		t.Fatal(err)
	}
}

func TestKClusterMapClustersConnected(t *testing.T) {
	// Each cluster grown by the greedy algorithm must be connected on a
	// connected input graph.
	nw := topogen.TeraGrid()
	const k = 5
	part, err := KClusterMap(Input{Network: nw, K: k, PartOpts: partition.Options{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < k; c++ {
		if !clusterConnected(nw, part, c) {
			t.Errorf("cluster %d is not connected", c)
		}
	}
}

func clusterConnected(nw interface {
	NumNodes() int
	Neighbors(int) []int
}, part []int, c int) bool {
	var start = -1
	count := 0
	for v, p := range part {
		if p == c {
			count++
			if start == -1 {
				start = v
			}
		}
	}
	if count == 0 {
		return false
	}
	seen := map[int]bool{start: true}
	stack := []int{start}
	reached := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range nw.Neighbors(v) {
			if part[nb] == c && !seen[nb] {
				seen[nb] = true
				reached++
				stack = append(stack, nb)
			}
		}
	}
	return reached == count
}

func TestKClusterMapErrors(t *testing.T) {
	nw := topogen.Campus()
	if _, err := KClusterMap(Input{Network: nw, K: nw.NumNodes() + 1}); err == nil {
		t.Error("k > n accepted")
	}
}

func TestHierMapValid(t *testing.T) {
	nw := topogen.Campus()
	part, err := HierMap(Input{Network: nw, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := validPartition(nw.NumNodes(), part, 3); err != nil {
		t.Fatal(err)
	}
	// Chunks are near-equal in node count.
	counts := make([]int, 3)
	for _, p := range part {
		counts[p]++
	}
	for _, c := range counts {
		if c < nw.NumNodes()/3-1 || c > nw.NumNodes()/3+2 {
			t.Errorf("HIER chunk sizes uneven: %v", counts)
		}
	}
}

func TestHierMapErrors(t *testing.T) {
	nw := topogen.Campus()
	if _, err := HierMap(Input{Network: nw, K: nw.NumNodes() + 1}); err == nil {
		t.Error("k > n accepted")
	}
}

func TestMapAnyDispatch(t *testing.T) {
	nw := topogen.Campus()
	in := Input{Network: nw, K: 3, PartOpts: partition.Options{Seed: 3}}
	for _, a := range append(BaselineApproaches(), Top) {
		part, err := MapAny(a, in)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if err := validPartition(nw.NumNodes(), part, 3); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
	}
	if _, err := MapAny("NOPE", in); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestBaselinesIgnoreTrafficButPaperApproachesBeatThem(t *testing.T) {
	// The DESIGN.md promise: the paper's informed approaches should not be
	// worse-balanced than the traffic-blind baselines under a skewed
	// traffic pattern. Use realized vertex-count balance as a weak proxy
	// here (full traffic comparison lives in the benches).
	nw := topogen.TeraGrid()
	in := Input{Network: nw, K: 5, PartOpts: partition.Options{Seed: 1}}
	top, err := TopMap(in)
	if err != nil {
		t.Fatal(err)
	}
	kc, err := KClusterMap(in)
	if err != nil {
		t.Fatal(err)
	}
	// KCluster can produce arbitrarily skewed node counts; TOP is balance
	// constrained. Compare max part size.
	maxOf := func(part []int) int {
		counts := make(map[int]int)
		for _, p := range part {
			counts[p]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return max
	}
	if maxOf(top) > maxOf(kc)*2 {
		t.Errorf("TOP max part %d far above KCLUSTER %d", maxOf(top), maxOf(kc))
	}
}
