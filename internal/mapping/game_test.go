package mapping

import (
	"reflect"
	"testing"

	"repro/internal/emu"
	"repro/internal/metrics"
	"repro/internal/netflow"
	"repro/internal/partition"
	"repro/internal/topogen"
	"repro/internal/traffic"
)

// gameFixture profiles a short Campus run under TOP and returns the mapping
// input plus the TOP assignment the remap policies start from.
func gameFixture(t *testing.T) (Input, []int) {
	t.Helper()
	nw := topogen.Campus()
	const k = 3
	in := Input{Network: nw, K: k, PartOpts: partition.Options{Seed: 1}}
	top, err := TopMap(in)
	if err != nil {
		t.Fatal(err)
	}
	w := traffic.DefaultHTTP(30, 4).Generate(nw)
	prof, err := emu.Run(emu.Config{
		Network: nw, Assignment: top, NumEngines: k, Workload: w, Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	in.Summary = prof.NetFlow.Summarize()
	return in, top
}

func TestGameRemapConvergesDeterministically(t *testing.T) {
	in, top := gameFixture(t)
	next, moved, stats, err := GameRemap(in, top, partition.GameOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := validPartition(in.Network.NumNodes(), next, in.K); err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatalf("game did not converge in %d rounds", stats.Rounds)
	}
	for i := 1; i < len(stats.Payoffs); i++ {
		if stats.Payoffs[i] > stats.Payoffs[i-1]+1e-9 {
			t.Fatalf("payoff increased at round %d", i)
		}
	}
	again, movedAgain, statsAgain, err := GameRemap(in, top, partition.GameOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(next, again) || moved != movedAgain || !reflect.DeepEqual(stats, statsAgain) {
		t.Fatal("two identical GameRemap calls diverged")
	}
	// The input assignment must be untouched (a fresh slice is returned).
	if moved > 0 && reflect.DeepEqual(next, top) {
		t.Fatal("moved > 0 but assignment unchanged")
	}
}

func TestGameRemapFewerMigrationsThanFromScratch(t *testing.T) {
	in, top := gameFixture(t)
	_, movedGame, _, err := GameRemap(in, top, partition.GameOptions{
		MigrationCost: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := ProfileMap(in)
	if err != nil {
		t.Fatal(err)
	}
	movedScratch := 0
	for v := range fresh {
		if fresh[v] != top[v] {
			movedScratch++
		}
	}
	if movedGame >= movedScratch {
		t.Fatalf("game moved %d nodes, from-scratch PROFILE moved %d — incremental moves should migrate less",
			movedGame, movedScratch)
	}
}

func TestGameRemapRejectsBadInput(t *testing.T) {
	in, top := gameFixture(t)
	in.Summary = nil
	if _, _, _, err := GameRemap(in, top, partition.GameOptions{}); err == nil {
		t.Fatal("missing summary accepted")
	}
	in, _ = gameFixture(t)
	if _, _, _, err := GameRemap(in, []int{0, 1, 2}, partition.GameOptions{}); err == nil {
		t.Fatal("short assignment accepted")
	}
}

func TestDiffusionRemapBalancesLoad(t *testing.T) {
	nw := topogen.Campus()
	n := nw.NumNodes()
	const k = 3
	// Skewed profile, everything piled on engine 0's nodes.
	sum := &netflow.Summary{NodePackets: make([]int64, n), LinkPackets: map[int]int64{}}
	prev := make([]int, n)
	for v := 0; v < n; v++ {
		prev[v] = v % k
		if v%k == 0 {
			sum.NodePackets[v] = 1000
		} else {
			sum.NodePackets[v] = 10
		}
	}
	in := Input{Network: nw, K: k, Summary: sum, PartOpts: partition.Options{Seed: 1}}
	engineLoads := func(part []int) []float64 {
		loads := make([]float64, k)
		for v, e := range part {
			loads[e] += float64(sum.NodePackets[v])
		}
		return loads
	}
	before := metrics.Imbalance(engineLoads(prev))
	next, moved, err := DiffusionRemap(in, prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := validPartition(n, next, k); err != nil {
		t.Fatal(err)
	}
	after := metrics.Imbalance(engineLoads(next))
	if moved == 0 || after >= before {
		t.Fatalf("diffusion did not balance: moved %d, imbalance %.3f -> %.3f", moved, before, after)
	}
	// Determinism.
	again, movedAgain, err := DiffusionRemap(in, prev)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(next, again) || moved != movedAgain {
		t.Fatal("two identical DiffusionRemap calls diverged")
	}
}
