package mapping

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/topogen"
)

func TestRemapSurvivorsBasics(t *testing.T) {
	nw := topogen.Campus()
	in := Input{Network: nw, K: 4, PartOpts: partition.Options{Seed: 1}}
	prev, err := TopMap(in)
	if err != nil {
		t.Fatal(err)
	}

	survivors := []int{0, 1, 3} // engine 2 died
	next, moved, err := RemapSurvivors(in, prev, survivors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != nw.NumNodes() {
		t.Fatalf("assignment covers %d nodes, want %d", len(next), nw.NumNodes())
	}
	onSurvivor := map[int]bool{0: true, 1: true, 3: true}
	counts := map[int]int{}
	for v, e := range next {
		if !onSurvivor[e] {
			t.Fatalf("node %d mapped to non-survivor engine %d", v, e)
		}
		counts[e]++
	}
	for _, s := range survivors {
		if counts[s] == 0 {
			t.Errorf("survivor %d received no nodes", s)
		}
	}
	// At minimum the dead engine's nodes moved.
	dead := 0
	for _, e := range prev {
		if e == 2 {
			dead++
		}
	}
	if dead == 0 {
		t.Fatal("test premise broken: engine 2 owned nothing")
	}
	if moved < dead {
		t.Errorf("moved = %d, want >= %d (the dead engine's nodes)", moved, dead)
	}
}

func TestRemapSurvivorsBeatsNaiveDump(t *testing.T) {
	// Remapping must spread the dead engine's weight instead of piling it on
	// one survivor: compare bandwidth-weight imbalance against the naive
	// dump-on-one-survivor fallback.
	nw := topogen.Campus()
	in := Input{Network: nw, K: 4, PartOpts: partition.Options{Seed: 1}}
	prev, err := TopMap(in)
	if err != nil {
		t.Fatal(err)
	}
	survivors := []int{0, 1, 3}
	next, _, err := RemapSurvivors(in, prev, survivors, nil)
	if err != nil {
		t.Fatal(err)
	}

	naive := append([]int(nil), prev...)
	for v, e := range naive {
		if e == 2 {
			naive[v] = 0
		}
	}
	weight := func(assign []int) []float64 {
		loads := make([]float64, 3)
		slot := map[int]int{0: 0, 1: 1, 3: 2}
		for v, e := range assign {
			loads[slot[e]] += nw.TotalBandwidth(v)
		}
		return loads
	}
	remapImb := metrics.Imbalance(weight(next))
	naiveImb := metrics.Imbalance(weight(naive))
	if remapImb >= naiveImb {
		t.Errorf("remap imbalance %.3f not below naive dump %.3f", remapImb, naiveImb)
	}
}

func TestRemapSurvivorsSingleSurvivor(t *testing.T) {
	nw := topogen.Campus()
	in := Input{Network: nw, K: 3, PartOpts: partition.Options{Seed: 2}}
	prev, err := TopMap(in)
	if err != nil {
		t.Fatal(err)
	}
	next, moved, err := RemapSurvivors(in, prev, []int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, e := range next {
		if e != 1 {
			t.Fatalf("node %d on engine %d, want lone survivor 1", v, e)
		}
	}
	want := 0
	for _, e := range prev {
		if e != 1 {
			want++
		}
	}
	if moved != want {
		t.Errorf("moved = %d, want %d", moved, want)
	}
}

func TestRemapSurvivorsValidation(t *testing.T) {
	nw := topogen.Campus()
	in := Input{Network: nw, K: 3}
	prev := make([]int, nw.NumNodes())
	if _, _, err := RemapSurvivors(in, prev[:3], []int{0}, nil); err == nil {
		t.Error("short previous assignment accepted")
	}
	if _, _, err := RemapSurvivors(in, prev, nil, nil); err == nil {
		t.Error("empty survivor set accepted")
	}
}

func TestRemapSurvivorsDeterministic(t *testing.T) {
	nw := topogen.Campus()
	in := Input{Network: nw, K: 4, PartOpts: partition.Options{Seed: 5}}
	prev, err := TopMap(in)
	if err != nil {
		t.Fatal(err)
	}
	loads := []float64{100, 200, 50, 300}
	a, am, err := RemapSurvivors(in, prev, []int{0, 1, 3}, loads)
	if err != nil {
		t.Fatal(err)
	}
	b, bm, err := RemapSurvivors(in, prev, []int{0, 1, 3}, loads)
	if err != nil {
		t.Fatal(err)
	}
	if am != bm {
		t.Fatalf("moved differs: %d vs %d", am, bm)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("assignment differs at node %d", v)
		}
	}
}

func TestRemapOntoGrow(t *testing.T) {
	// Elastic join: the target set is larger than the set that computed the
	// previous assignment. Every target — including the fresh engines — must
	// receive nodes, and the remap must improve the bandwidth-weight balance
	// over leaving the newcomers idle.
	nw := topogen.Campus()
	in := Input{Network: nw, K: 4, PartOpts: partition.Options{Seed: 1}}
	prev, err := TopMap(Input{Network: nw, K: 2, PartOpts: partition.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	targets := []int{0, 1, 2, 3} // engines 2 and 3 just joined
	next, moved, err := RemapOnto(in, prev, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for v, e := range next {
		if e < 0 || e > 3 {
			t.Fatalf("node %d mapped to engine %d outside the target set", v, e)
		}
		counts[e]++
	}
	for _, e := range targets {
		if counts[e] == 0 {
			t.Errorf("target engine %d received no nodes after the grow remap", e)
		}
	}
	if moved == 0 {
		t.Fatal("a grow remap that moves nothing left the new engines idle")
	}
	weight := func(assign []int, m int) float64 {
		loads := make([]float64, m)
		for v, e := range assign {
			loads[e] += nw.TotalBandwidth(v)
		}
		return metrics.Imbalance(loads)
	}
	if got, was := weight(next, 4), weight(prev, 4); got >= was {
		t.Errorf("grow remap imbalance %.3f did not improve on pre-join %.3f", got, was)
	}
}

func TestRemapOntoShrinkMatchesSurvivors(t *testing.T) {
	// RemapSurvivors is a thin wrapper: the two entry points must agree
	// exactly on the shrink direction.
	nw := topogen.Campus()
	in := Input{Network: nw, K: 4, PartOpts: partition.Options{Seed: 1}}
	prev, err := TopMap(in)
	if err != nil {
		t.Fatal(err)
	}
	loads := []float64{10, 20, 30, 40}
	a, am, err := RemapSurvivors(in, prev, []int{0, 3}, loads)
	if err != nil {
		t.Fatal(err)
	}
	b, bm, err := RemapOnto(in, prev, []int{0, 3}, loads)
	if err != nil {
		t.Fatal(err)
	}
	if am != bm {
		t.Fatalf("moved: RemapSurvivors %d vs RemapOnto %d", am, bm)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d: RemapSurvivors -> %d, RemapOnto -> %d", v, a[v], b[v])
		}
	}
}
