package mapping_test

import (
	"fmt"

	"repro/internal/mapping"
	"repro/internal/partition"
	"repro/internal/topogen"
)

// Example maps the Campus network onto three simulation engines with the
// topology-only approach and inspects the result.
func ExampleTopMap() {
	nw := topogen.Campus()
	part, err := mapping.TopMap(mapping.Input{
		Network:  nw,
		K:        3,
		PartOpts: partition.Options{Seed: 1},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("nodes assigned:", len(part))
	fmt.Println("valid:", mapping.Verify(nw, part, 3) == nil)
	// Output:
	// nodes assigned: 60
	// valid: true
}
