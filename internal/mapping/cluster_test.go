package mapping

import (
	"testing"

	"repro/internal/metrics"
)

// seriesWith builds a series where node dominance follows the given plan:
// plan[b] = dominating node for bucket b (-1 = idle bucket).
func seriesWith(plan []int, nodes int) *metrics.Series {
	s := metrics.NewSeries(2, nodes, len(plan))
	for b, d := range plan {
		if d < 0 {
			continue
		}
		for n := 0; n < nodes; n++ {
			s.Loads[b][n] = 10
		}
		s.Loads[b][d] = 100
	}
	return s
}

func TestSegmentTimelineEmpty(t *testing.T) {
	if got := SegmentTimeline(metrics.NewSeries(2, 3, 0), 4); got != nil {
		t.Errorf("empty series -> %v, want nil", got)
	}
	// All-idle series: one covering segment.
	got := SegmentTimeline(metrics.NewSeries(2, 3, 5), 4)
	if len(got) != 1 || got[0] != [2]int{0, 4} {
		t.Errorf("idle series -> %v, want one covering segment", got)
	}
}

func TestSegmentTimelineSingleDominator(t *testing.T) {
	plan := make([]int, 20)
	for b := range plan {
		plan[b] = 1
	}
	got := SegmentTimeline(seriesWith(plan, 3), 4)
	if len(got) != 1 {
		t.Errorf("constant dominator -> %d segments, want 1: %v", len(got), got)
	}
}

func TestSegmentTimelineSplitsOnDominatorChange(t *testing.T) {
	// Node 0 dominates buckets 0-9, node 2 dominates 10-19.
	plan := make([]int, 20)
	for b := 10; b < 20; b++ {
		plan[b] = 2
	}
	got := SegmentTimeline(seriesWith(plan, 3), 4)
	if len(got) != 2 {
		t.Fatalf("got %d segments (%v), want 2", len(got), got)
	}
	// The split point should be near bucket 10 (smoothing may shift it
	// slightly).
	if got[0][1] < 7 || got[0][1] > 12 {
		t.Errorf("split at %d, want near 10", got[0][1])
	}
}

func TestSegmentTimelineDropsLowTraffic(t *testing.T) {
	// Busy start, long idle middle, busy end with a different dominator.
	plan := make([]int, 30)
	for b := 0; b < 10; b++ {
		plan[b] = 0
	}
	for b := 10; b < 20; b++ {
		plan[b] = -1 // idle
	}
	for b := 20; b < 30; b++ {
		plan[b] = 1
	}
	got := SegmentTimeline(seriesWith(plan, 2), 4)
	if len(got) != 2 {
		t.Fatalf("got %v, want 2 segments around the idle gap", got)
	}
}

func TestSegmentTimelineMergesSlivers(t *testing.T) {
	// A 1-bucket blip of node 1 inside node 0's reign must not survive as
	// its own segment.
	plan := make([]int, 20)
	plan[10] = 1
	got := SegmentTimeline(seriesWith(plan, 2), 4)
	for _, seg := range got {
		if seg[1]-seg[0]+1 < 3 && len(got) > 1 {
			t.Errorf("sliver segment survived: %v", got)
		}
	}
}

func TestSegmentTimelineCap(t *testing.T) {
	// Dominator alternates every 4 buckets among 6 nodes -> many segments;
	// cap at 3.
	plan := make([]int, 48)
	for b := range plan {
		plan[b] = (b / 4) % 6
	}
	got := SegmentTimeline(seriesWith(plan, 6), 3)
	if len(got) > 3 {
		t.Errorf("cap violated: %d segments", len(got))
	}
	// Segments must be ordered and non-overlapping.
	for i := 1; i < len(got); i++ {
		if got[i][0] <= got[i-1][1] {
			t.Errorf("segments overlap or disordered: %v", got)
		}
	}
}

func TestSegmentTimelineDefaultCap(t *testing.T) {
	plan := make([]int, 40)
	for b := range plan {
		plan[b] = (b / 5) % 4
	}
	got := SegmentTimeline(seriesWith(plan, 4), 0) // 0 -> default 4
	if len(got) > 4 {
		t.Errorf("default cap violated: %d segments", len(got))
	}
}
