package mapping

import (
	"fmt"
	"strings"

	"repro/internal/emu"
	"repro/internal/netgraph"
	"repro/internal/partition"
)

// Quality reports why a mapping is good or bad in the paper's terms: the
// balance of each constraint, the two objectives' cuts, and the conservative
// lookahead the assignment yields.
type Quality struct {
	// NodesPerEngine counts virtual nodes per engine.
	NodesPerEngine []int
	// MemoryPerEngine is the predicted routing-table memory per engine.
	MemoryPerEngine []int64
	// Lookahead is the minimum latency cut by the assignment (the DES
	// window width, §2.2.3 objective one).
	Lookahead float64
	// CutLinks is the number of network links crossing engines; CutTraffic
	// is only meaningful when measured traffic was supplied (packets over
	// cut links — objective two).
	CutLinks   int
	CutTraffic int64
}

// Assess computes the Quality of an assignment. summaryLinkPackets may be
// nil when no profile is available (CutTraffic stays 0).
func Assess(nw *netgraph.Network, assignment []int, k int, summaryLinkPackets map[int]int64) Quality {
	q := Quality{
		NodesPerEngine:  make([]int, k),
		MemoryPerEngine: PredictMemory(nw, assignment, k),
		Lookahead:       emu.Lookahead(nw, assignment, 0),
	}
	for _, e := range assignment {
		q.NodesPerEngine[e]++
	}
	for _, l := range nw.Links {
		if assignment[l.A] != assignment[l.B] {
			q.CutLinks++
			q.CutTraffic += summaryLinkPackets[l.ID]
		}
	}
	return q
}

// String renders the quality report.
func (q Quality) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes/engine: %v\n", q.NodesPerEngine)
	fmt.Fprintf(&b, "memory/engine: %v\n", q.MemoryPerEngine)
	fmt.Fprintf(&b, "lookahead: %.3gms   cut links: %d", q.Lookahead*1e3, q.CutLinks)
	if q.CutTraffic > 0 {
		fmt.Fprintf(&b, "   cut traffic: %d packets", q.CutTraffic)
	}
	b.WriteString("\n")
	return b.String()
}

// Verify checks an assignment is structurally valid for the network: every
// node assigned to [0,k) with no engine left empty.
func Verify(nw *netgraph.Network, assignment []int, k int) error {
	g := partition.NewGraph(nw.NumNodes(), 1)
	return partition.Verify(g, assignment, k)
}
