package mapping

import (
	"fmt"
	"math/rand"

	"repro/internal/netgraph"
)

// Baseline mapping strategies the paper discusses in §1/§5 as what existing
// emulators did before systematic load balance:
//
//   - KCluster: the randomized greedy k-cluster algorithm used by
//     ModelNet-class emulators ("for k nodes in the core set, randomly
//     selects k nodes in the virtual topology and greedily selects links
//     from the current connected component in a round-robin fashion").
//   - Hier: a simple hierarchical partitioner that orders the network by
//     breadth-first traversal and slices it into k equal-node chunks — the
//     "simple hierarchical graph partitioners" several projects rely on.
//
// Both ignore traffic entirely; they exist as comparators so the benches can
// show what TOP/PLACE/PROFILE buy over them.
const (
	KCluster Approach = "KCLUSTER"
	Hier     Approach = "HIER"
)

// BaselineApproaches lists the non-paper comparator strategies.
func BaselineApproaches() []Approach { return []Approach{KCluster, Hier} }

// MapAny dispatches across the paper's approaches and the baselines.
func MapAny(a Approach, in Input) ([]int, error) {
	switch a {
	case KCluster:
		return KClusterMap(in)
	case Hier:
		return HierMap(in)
	default:
		return Map(a, in)
	}
}

// KClusterMap implements the greedy k-cluster baseline. Seeds are chosen at
// random; clusters then claim adjacent unassigned nodes in round-robin
// order, each cluster greedily following a link out of its current connected
// component. Nodes unreachable from any seed (disconnected graphs) are
// assigned to the smallest cluster.
func KClusterMap(in Input) ([]int, error) {
	if err := in.defaults(); err != nil {
		return nil, err
	}
	nw := in.Network
	n := nw.NumNodes()
	if in.K > n {
		return nil, fmt.Errorf("%w: KCLUSTER: k = %d exceeds %d nodes", ErrInfeasible, in.K, n)
	}
	rng := rand.New(rand.NewSource(in.PartOpts.Seed))

	part := make([]int, n)
	for v := range part {
		part[v] = -1
	}
	// Random distinct seeds.
	perm := rng.Perm(n)
	frontiers := make([][]int, in.K)
	counts := make([]int, in.K)
	for c := 0; c < in.K; c++ {
		seed := perm[c]
		part[seed] = c
		counts[c]++
		frontiers[c] = append(frontiers[c], seed)
	}

	assigned := in.K
	for assigned < n {
		progress := false
		for c := 0; c < in.K && assigned < n; c++ {
			// Greedily select one link leaving cluster c's component.
			v, ok := popFrontierNeighbor(nw, part, frontiers, c)
			if !ok {
				continue
			}
			part[v] = c
			counts[c]++
			frontiers[c] = append(frontiers[c], v)
			assigned++
			progress = true
		}
		if !progress {
			break // remaining nodes unreachable from every cluster
		}
	}
	// Disconnected leftovers: give them to the smallest cluster.
	for v := range part {
		if part[v] == -1 {
			smallest := 0
			for c := 1; c < in.K; c++ {
				if counts[c] < counts[smallest] {
					smallest = c
				}
			}
			part[v] = smallest
			counts[smallest]++
		}
	}
	return part, nil
}

// popFrontierNeighbor finds an unassigned neighbor of cluster c's frontier,
// pruning exhausted frontier nodes as it goes.
func popFrontierNeighbor(nw *netgraph.Network, part []int, frontiers [][]int, c int) (int, bool) {
	for len(frontiers[c]) > 0 {
		f := frontiers[c][0]
		for _, nb := range nw.Neighbors(f) {
			if part[nb] == -1 {
				return nb, true
			}
		}
		frontiers[c] = frontiers[c][1:]
	}
	return -1, false
}

// HierMap implements the trivial hierarchical baseline: breadth-first order
// from node 0, sliced into k chunks of equal node count.
func HierMap(in Input) ([]int, error) {
	if err := in.defaults(); err != nil {
		return nil, err
	}
	nw := in.Network
	n := nw.NumNodes()
	if in.K > n {
		return nil, fmt.Errorf("%w: HIER: k = %d exceeds %d nodes", ErrInfeasible, in.K, n)
	}

	order := make([]int, 0, n)
	seen := make([]bool, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, nb := range nw.Neighbors(v) {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}

	part := make([]int, n)
	for i, v := range order {
		p := i * in.K / n
		if p >= in.K {
			p = in.K - 1
		}
		part[v] = p
	}
	return part, nil
}
