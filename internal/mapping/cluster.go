package mapping

import "repro/internal/metrics"

// SegmentTimeline implements the paper's §3.3 clustering algorithm: it
// splits an emulation's per-node load timeline into segments whose loads
// become separate balance constraints of the multi-constraint partitioner.
//
// Steps, as described in the paper:
//
//  1. remove buckets that carry little traffic (they cannot contribute load
//     imbalance worth balancing),
//  2. smooth each node's load curve with a moving average,
//  3. find the dominating (maximum-load) node of every bucket,
//  4. split the timeline where the dominating node changes — those points
//     mark major load-pattern shifts,
//  5. merge slivers and cap the segment count (each segment costs one
//     constraint in the partitioner).
//
// The result is a list of [first,last] bucket ranges (inclusive), in time
// order, covering the retained buckets. A timeline with fewer than two
// meaningful segments yields a single all-covering segment.
func SegmentTimeline(series *metrics.Series, maxSegments int) [][2]int {
	nb := series.Buckets()
	if nb == 0 {
		return nil
	}
	if maxSegments < 1 {
		maxSegments = 4
	}

	// Step 1: identify low-traffic buckets. Threshold: 10% of the mean load
	// of non-empty buckets.
	totals := series.TotalPerBucket()
	var sum float64
	busyCount := 0
	for _, t := range totals {
		if t > 0 {
			sum += t
			busyCount++
		}
	}
	if busyCount == 0 {
		return [][2]int{{0, nb - 1}}
	}
	threshold := 0.10 * sum / float64(busyCount)
	keep := make([]bool, nb)
	for b, t := range totals {
		keep[b] = t >= threshold
	}

	// Step 2: smooth ("a smooth load curve ... by calculating the average
	// load of each node over a larger period of time").
	smoothed := series.Smooth(5)

	// Step 3: dominating node per kept bucket.
	dom := smoothed.DominatingNode()

	// Step 4: split where the dominating node changes, skipping dropped
	// buckets entirely (they belong to no segment's constraint, but segment
	// ranges still cover them for contiguity).
	type seg struct {
		first, last int
		node        int
		load        float64
	}
	var segs []seg
	for b := 0; b < nb; b++ {
		if !keep[b] {
			continue
		}
		if len(segs) > 0 && segs[len(segs)-1].node == dom[b] {
			segs[len(segs)-1].last = b
			segs[len(segs)-1].load += totals[b]
			continue
		}
		segs = append(segs, seg{first: b, last: b, node: dom[b], load: totals[b]})
	}
	if len(segs) == 0 {
		return [][2]int{{0, nb - 1}}
	}

	// Step 5a: merge slivers (shorter than 3 buckets) into the
	// lighter-loaded neighbor.
	const minLen = 3
	for i := 0; i < len(segs); {
		if segs[i].last-segs[i].first+1 >= minLen || len(segs) == 1 {
			i++
			continue
		}
		if i == 0 {
			segs[1].first = segs[0].first
			segs[1].load += segs[0].load
			segs = segs[1:]
			continue
		}
		if i == len(segs)-1 || segs[i-1].load <= segs[i+1].load {
			segs[i-1].last = segs[i].last
			segs[i-1].load += segs[i].load
			segs = append(segs[:i], segs[i+1:]...)
			i--
			continue
		}
		segs[i+1].first = segs[i].first
		segs[i+1].load += segs[i].load
		segs = append(segs[:i], segs[i+1:]...)
	}

	// Step 5b: cap the count by merging the adjacent pair with the smallest
	// combined load until within budget.
	for len(segs) > maxSegments {
		best := 0
		bestLoad := segs[0].load + segs[1].load
		for i := 1; i < len(segs)-1; i++ {
			if l := segs[i].load + segs[i+1].load; l < bestLoad {
				best, bestLoad = i, l
			}
		}
		segs[best].last = segs[best+1].last
		segs[best].load += segs[best+1].load
		segs = append(segs[:best+1], segs[best+2:]...)
	}

	out := make([][2]int, len(segs))
	for i, s := range segs {
		out[i] = [2]int{s.first, s.last}
	}
	return out
}
