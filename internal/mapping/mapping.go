// Package mapping implements the paper's three network-mapping approaches —
// the heart of its contribution (§3):
//
//   - TOP (§3.1): topology only. Vertex weight is the total bandwidth in and
//     out of the node; the single objective maximizes link latency across
//     partitions (encoded as minimizing a cut whose edge weights fall with
//     latency).
//   - PLACE (§3.2): topology plus application placement. Background traffic
//     is predicted from the generators' own specifications, foreground
//     traffic from the application's injection points assuming full access-
//     link utilization spread evenly over all peers; routes come from the
//     emulated traceroute. Enables the second objective (minimize traffic
//     across partitions) via multi-objective combination.
//   - PROFILE (§3.3): NetFlow profile data from a prior run supplies exact
//     per-link and per-node loads; optionally the emulation timeline is
//     clustered into segments at dominating-node changes and each segment
//     becomes an extra balance constraint (multi-constraint partitioning).
//
// All three reduce to inputs for the multilevel partitioner in
// internal/partition.
package mapping

import (
	"fmt"
	"math"

	"repro/internal/netflow"
	"repro/internal/netgraph"
	"repro/internal/partition"
	"repro/internal/traffic"
)

// Approach names one of the paper's three mapping strategies.
type Approach string

// The three approaches evaluated in the paper.
const (
	Top     Approach = "TOP"
	Place   Approach = "PLACE"
	Profile Approach = "PROFILE"
)

// Approaches lists all three in the paper's presentation order.
func Approaches() []Approach { return []Approach{Top, Place, Profile} }

// DefaultLatencyPriority is the paper's default latency:traffic priority
// ratio of 6:4 (§5: "the default latency/traffic priority ratio is 6:4").
const DefaultLatencyPriority = 0.6

// Input carries everything a mapping approach may need. TOP uses only the
// network; PLACE additionally uses Background and AppHosts; PROFILE uses
// Summary (and Cluster).
type Input struct {
	// Network is the virtual topology. Required.
	Network *netgraph.Network
	// Routes is the routing table. Leaving it nil triggers a full O(n²)
	// all-pairs rebuild via Network.SharedRoutingTable() — memoized per
	// network, but still a cost pipelines should not pay implicitly: core-
	// driven runs always thread core.Scenario.Routes() through here (the
	// "built exactly once per scenario" tests enforce it), so the fallback
	// exists only for callers invoking an approach standalone.
	Routes netgraph.Routing
	// K is the number of simulation-engine nodes. Required.
	K int
	// PartOpts tunes the underlying partitioner (seed, imbalance, ...).
	PartOpts partition.Options
	// LatencyPriority is the multi-objective weight p of the latency
	// objective; defaults to DefaultLatencyPriority.
	LatencyPriority float64
	// MTUBytes converts predicted byte rates into packet rates; default 1500.
	MTUBytes float64
	// InjectionCapBps caps PLACE's assumed per-injection-point bandwidth
	// ("the application fully utilizes the network link at each injection
	// point"): a 2003-era node drives at most Fast-Ethernet rates no matter
	// how fat its access link is. Default 100 Mb/s.
	InjectionCapBps float64

	// Background is the predicted background traffic (PLACE), typically
	// HTTPSpec.Predict output.
	Background []traffic.PairRate
	// AppHosts are the foreground application's injection points (PLACE).
	AppHosts []int
	// DiscoveredRoutes optionally supplies traceroute-discovered link paths
	// per ordered endpoint pair (emu.DiscoverRoutes output). When a pair is
	// present PLACE aggregates its predicted traffic over these links; pairs
	// not covered fall back to the routing table (identical paths under
	// static routing, but discovery exercises the paper's actual ICMP
	// mechanism and costs emulation load).
	DiscoveredRoutes map[[2]int][]int

	// Summary is the measured per-node / per-link traffic driving PROFILE:
	// either the NetFlow aggregation of an offline profiling run
	// (netflow.Collector.Summarize) or the live telemetry plane's
	// measurement of the current run (telemetry.Collector.ToProfile) — the
	// two are numerically identical, so the closed remapping loop and the
	// paper's §3.3 offline pipeline produce the same partitions.
	Summary *netflow.Summary
	// Cluster enables the §3.3 timeline clustering, turning emulation
	// stages into extra balance constraints (PROFILE).
	Cluster bool
	// MaxSegments caps the clustering constraints; default 4.
	MaxSegments int
	// EngineFractions optionally targets heterogeneous engine capacities:
	// engine p should receive EngineFractions[p] of the load (normalized
	// internally). Copied into the partitioner's PartFractions. This is the
	// §5 gap ("currently assumes homogeneous physical resources") closed.
	EngineFractions []float64
}

func (in *Input) defaults() error {
	if in.Network == nil {
		return fmt.Errorf("%w: Network is required", ErrBadInput)
	}
	if in.K < 1 {
		return fmt.Errorf("%w: K = %d, must be >= 1", ErrBadInput, in.K)
	}
	if in.Routes == nil {
		// The automatic backend keeps a huge topology off the O(n²) flat
		// table; the paper-scale topologies still get the exact flat table
		// from the same shared cache.
		in.Routes = in.Network.AutoRouting()
	}
	if in.LatencyPriority <= 0 || in.LatencyPriority >= 1 {
		in.LatencyPriority = DefaultLatencyPriority
	}
	if in.MTUBytes <= 0 {
		in.MTUBytes = 1500
	}
	if in.InjectionCapBps <= 0 {
		in.InjectionCapBps = 100e6
	}
	if in.MaxSegments <= 0 {
		in.MaxSegments = 4
	}
	// Mapping quality matters more than mapping speed here (the paper's
	// partitions are computed offline); spend more partitioner effort than
	// the library defaults. Beyond largeGraphNodes that budget would take
	// the multilevel partitioner from seconds to hours, so huge topologies
	// drop to a lean effort profile instead.
	large := in.Network.NumNodes() >= largeGraphNodes
	if in.PartOpts.Restarts == 0 {
		if large {
			in.PartOpts.Restarts = 2
		} else {
			in.PartOpts.Restarts = 20
		}
	}
	if in.PartOpts.RefinePasses == 0 {
		if large {
			in.PartOpts.RefinePasses = 4
		} else {
			in.PartOpts.RefinePasses = 16
		}
	}
	if len(in.EngineFractions) == in.K && in.PartOpts.PartFractions == nil {
		var sum float64
		for _, f := range in.EngineFractions {
			sum += f
		}
		if sum > 0 {
			frac := make([]float64, in.K)
			for p, f := range in.EngineFractions {
				frac[p] = f / sum
			}
			in.PartOpts.PartFractions = frac
		}
	}
	// A slightly loose ceiling lands better final balance than a tight one:
	// with ε=0.05 the refiner rejects moves into near-full parts and wedges
	// early; ε=0.10 lets load flow and converges closer to even.
	if in.PartOpts.Imbalance == 0 {
		in.PartOpts.Imbalance = 0.10
	}
	return nil
}

// Map dispatches to the named approach.
func Map(a Approach, in Input) ([]int, error) {
	switch a {
	case Top:
		return TopMap(in)
	case Place:
		return PlaceMap(in)
	case Profile:
		return ProfileMap(in)
	default:
		return nil, fmt.Errorf("%w: unknown approach %q", ErrBadInput, a)
	}
}

// baseGraph builds the partition graph skeleton: one vertex per network
// node, one edge per link (parallel links merge), ncon constraints with all
// weights zeroed for the caller to fill.
func baseGraph(nw *netgraph.Network, ncon int) *partition.Graph {
	g := partition.NewGraph(nw.NumNodes(), ncon)
	for v := 0; v < nw.NumNodes(); v++ {
		for c := 0; c < ncon; c++ {
			g.VWgt[v][c] = 0
		}
	}
	for _, l := range nw.Links {
		g.AddEdge(l.A, l.B, 0)
	}
	return g
}

// latencyWeights encodes "maximize cut latency" as a minimization: an edge's
// weight is inversely proportional to its (merged) minimum latency, so the
// partitioner prefers cutting long-haul links and keeps low-latency LAN
// links together — the DaSSF/MaSSF convention.
func latencyWeights(nw *netgraph.Network, g *partition.Graph) partition.EdgeWeightSet {
	// Minimum latency per merged edge.
	minLat := make(map[[2]int]float64)
	for _, l := range nw.Links {
		k := edgeKey(l.A, l.B)
		if cur, ok := minLat[k]; !ok || l.Latency < cur {
			minLat[k] = l.Latency
		}
	}
	ws := partition.NewEdgeWeightSet(g)
	const scale = 10e-3 // a 10 ms link weighs 1; a 0.1 ms link weighs 100
	for k, lat := range minLat {
		w := int64(1)
		if lat > 0 {
			w = int64(math.Round(scale / lat))
			if w < 1 {
				w = 1
			}
		} else {
			w = 1000 // zero-latency: never cut if avoidable
		}
		ws.SetSymmetric(g, k[0], k[1], w)
	}
	return ws
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// memoryWeights fills the given constraint with the paper's memory model:
// routers cost 10 + x² (x = AS router count), hosts 10.
func memoryWeights(nw *netgraph.Network, g *partition.Graph, con int) {
	asr := nw.ASRouterCount()
	for v := 0; v < nw.NumNodes(); v++ {
		g.VWgt[v][con] = nw.MemoryWeight(v, asr)
	}
}

// mappingTrials is the number of independently seeded partitioner runs each
// approach performs, keeping the candidate with the best balance on its own
// weights (then lowest cut). This mirrors METIS's internal multi-restart
// behavior; crucially, every approach scores candidates only with the
// information it legitimately has — TOP with bandwidth weights, PLACE with
// predicted load, PROFILE with measured load.
const mappingTrials = 5

// largeGraphNodes is the node count beyond which the mapping pipeline
// switches to its lean effort profile (fewer partitioner restarts and
// refinement passes, a single mapping trial): at 10⁵+ nodes the default
// budget multiplies a seconds-long multilevel run by ~100×.
const largeGraphNodes = 20000

// selectBest runs the partition function for mappingTrials seeds (one seed
// on very large graphs) and keeps the candidate with the smallest max-norm
// balance violation on g's constraints, breaking ties toward the lower cut
// under cutWeights.
func selectBest(g *partition.Graph, cutWeights partition.EdgeWeightSet, k int, opts partition.Options,
	run func(partition.Options) ([]int, error)) ([]int, error) {

	trials := mappingTrials
	if g.NumVertices() >= largeGraphNodes {
		trials = 1
	}
	var best []int
	var bestBal float64
	var bestCut int64
	for trial := 0; trial < trials; trial++ {
		o := opts
		o.Seed = opts.Seed + int64(trial)*7919
		part, err := run(o)
		if err != nil {
			return nil, err
		}
		bal := 0.0
		for _, b := range partition.Balance(g, part, k) {
			if b > bal {
				bal = b
			}
		}
		cut := partition.CutWeightOf(g, cutWeights, part)
		if best == nil || bal < bestBal-1e-9 || (math.Abs(bal-bestBal) <= 1e-9 && cut < bestCut) {
			best, bestBal, bestCut = part, bal, cut
		}
	}
	return best, nil
}

// TopMap implements the topology-based approach (§3.1).
func TopMap(in Input) ([]int, error) {
	if err := in.defaults(); err != nil {
		return nil, err
	}
	nw := in.Network
	g := baseGraph(nw, 2)
	// Constraint 0: total bandwidth in/out of the node, in Mb/s.
	for v := 0; v < nw.NumNodes(); v++ {
		w := int64(math.Round(nw.TotalBandwidth(v) / 1e6))
		if w < 1 {
			w = 1
		}
		g.VWgt[v][0] = w
	}
	memoryWeights(nw, g, 1)
	lat := latencyWeights(nw, g)
	gl := g.WithWeights(lat)
	part, err := selectBest(g, lat, in.K, in.PartOpts, func(o partition.Options) ([]int, error) {
		return partition.Partition(gl, in.K, o)
	})
	if err != nil {
		return nil, fmt.Errorf("mapping: TOP: %w", err)
	}
	return part, nil
}

// predictedLinkLoad accumulates PLACE's traffic estimate per link, in
// packets per second: the background pair rates plus the foreground
// injection-point model, both routed with the emulated traceroute-discovered
// paths (which, for static routing, equal the routing-table paths).
func predictedLinkLoad(in *Input) map[int]float64 {
	nw := in.Network
	load := make(map[int]float64)
	addPair := func(src, dst int, bytesPerSec float64) {
		// Route discovery via the ICMP/traceroute emulation (§3.2) when its
		// results were provided; otherwise the routing-table walk (equal
		// paths under static routing).
		links, ok := in.DiscoveredRoutes[[2]int{src, dst}]
		if !ok {
			links = nw.RouteLinks(in.Routes, src, dst)
		}
		for _, lid := range links {
			load[lid] += bytesPerSec / in.MTUBytes
		}
	}
	for _, p := range in.Background {
		addPair(p.Src, p.Dst, p.BytesPerSecond)
	}
	// Foreground: "the application fully utilizes the network link at each
	// injection point and every node talks to all other nodes with evenly
	// distributed bandwidth" (§3.2). Every injection point is modeled at the
	// same NIC-rate utilization (InjectionCapBps): the application pushes
	// its communication volume regardless of how slow the access link is —
	// a slower link only stretches the transfer, not the packet count the
	// engine must process.
	n := len(in.AppHosts)
	if n > 1 {
		perPeer := in.InjectionCapBps / 8 / float64(n-1)
		for _, src := range in.AppHosts {
			for _, dst := range in.AppHosts {
				if dst != src {
					addPair(src, dst, perPeer)
				}
			}
		}
	}
	return load
}

// trafficEdgeWeights converts per-link loads (packets/s or packets) into the
// bandwidth objective's edge weights.
func trafficEdgeWeights(nw *netgraph.Network, g *partition.Graph, load map[int]float64) partition.EdgeWeightSet {
	// Merge parallel links.
	merged := make(map[[2]int]float64)
	for _, l := range nw.Links {
		merged[edgeKey(l.A, l.B)] += load[l.ID]
	}
	ws := partition.NewEdgeWeightSet(g)
	for k, v := range merged {
		ws.SetSymmetric(g, k[0], k[1], int64(math.Round(v)))
	}
	return ws
}

// nodeThroughLoad estimates the compute weight of each node from per-link
// loads: the paper's "maximal bipartition flow of all traffic flowing
// through a network node" is approximated by half the total traffic on the
// node's incident links (exact for pure transit nodes).
func nodeThroughLoad(nw *netgraph.Network, load map[int]float64) []float64 {
	out := make([]float64, nw.NumNodes())
	for _, l := range nw.Links {
		out[l.A] += load[l.ID] / 2
		out[l.B] += load[l.ID] / 2
	}
	return out
}

// PlaceMap implements the application-placement approach (§3.2).
func PlaceMap(in Input) ([]int, error) {
	if err := in.defaults(); err != nil {
		return nil, err
	}
	nw := in.Network
	load := predictedLinkLoad(&in)

	g := baseGraph(nw, 2)
	through := nodeThroughLoad(nw, load)
	for v := 0; v < nw.NumNodes(); v++ {
		w := int64(math.Round(through[v]))
		if w < 1 {
			w = 1
		}
		g.VWgt[v][0] = w
	}
	memoryWeights(nw, g, 1)

	lat := latencyWeights(nw, g)
	bw := trafficEdgeWeights(nw, g, load)
	part, err := selectBest(g, bw, in.K, in.PartOpts, func(o partition.Options) ([]int, error) {
		p, _, err := partition.MultiObjective(
			g,
			[]partition.EdgeWeightSet{lat, bw},
			[]float64{in.LatencyPriority, 1 - in.LatencyPriority},
			in.K, o,
		)
		return p, err
	})
	if err != nil {
		return nil, fmt.Errorf("mapping: PLACE: %w", err)
	}
	return part, nil
}

// profileGraph builds the PROFILE partitioning instance: the graph with
// measured load (or clustered per-segment) constraints plus memory, and the
// latency/traffic edge-weight objectives. Shared by ProfileMap and
// ProfileImprove.
func profileGraph(in *Input) (*partition.Graph, partition.EdgeWeightSet, partition.EdgeWeightSet, error) {
	if in.Summary == nil {
		return nil, nil, nil, fmt.Errorf("%w: PROFILE requires a NetFlow summary", ErrBadInput)
	}
	nw := in.Network
	if len(in.Summary.NodePackets) != nw.NumNodes() {
		return nil, nil, nil, fmt.Errorf("%w: summary covers %d nodes, network has %d",
			ErrBadInput, len(in.Summary.NodePackets), nw.NumNodes())
	}

	// Measured per-link load (packets over the profiled run).
	load := make(map[int]float64, len(in.Summary.LinkPackets))
	for l, p := range in.Summary.LinkPackets {
		load[l] = float64(p)
	}

	// Balance constraints: either the measured total load per node, or one
	// constraint per clustered emulation segment — plus memory, always last.
	var segments [][2]int
	if in.Cluster && in.Summary.NodeSeries != nil {
		segments = SegmentTimeline(in.Summary.NodeSeries, in.MaxSegments)
	}
	ncon := 1 + 1 // total load + memory
	if len(segments) > 1 {
		ncon = len(segments) + 1
	}
	g := baseGraph(nw, ncon)

	if len(segments) > 1 {
		series := in.Summary.NodeSeries
		for s, seg := range segments {
			for b := seg[0]; b <= seg[1]; b++ {
				for v := 0; v < nw.NumNodes(); v++ {
					g.VWgt[v][s] += int64(math.Round(series.Loads[b][v]))
				}
			}
		}
		// Guarantee a connected positive weight so empty segments don't
		// destabilize balance bookkeeping.
		for v := 0; v < nw.NumNodes(); v++ {
			for s := 0; s < len(segments); s++ {
				if g.VWgt[v][s] < 0 {
					g.VWgt[v][s] = 0
				}
			}
		}
	} else {
		for v := 0; v < nw.NumNodes(); v++ {
			w := in.Summary.NodePackets[v]
			if w < 1 {
				w = 1
			}
			g.VWgt[v][0] = w
		}
	}
	memoryWeights(nw, g, ncon-1)

	lat := latencyWeights(nw, g)
	bw := trafficEdgeWeights(nw, g, load)
	return g, lat, bw, nil
}

// ProfileMap implements the profile-based approach (§3.3).
func ProfileMap(in Input) ([]int, error) {
	if err := in.defaults(); err != nil {
		return nil, err
	}
	g, lat, bw, err := profileGraph(&in)
	if err != nil {
		return nil, err
	}
	part, err := selectBest(g, bw, in.K, in.PartOpts, func(o partition.Options) ([]int, error) {
		p, _, err := partition.MultiObjective(
			g,
			[]partition.EdgeWeightSet{lat, bw},
			[]float64{in.LatencyPriority, 1 - in.LatencyPriority},
			in.K, o,
		)
		return p, err
	})
	if err != nil {
		return nil, fmt.Errorf("mapping: PROFILE: %w", err)
	}
	return part, nil
}

// ProfileImprove is the incremental variant of ProfileMap for dynamic
// remapping: instead of repartitioning from scratch — which reassigns many
// nodes and therefore costs many migrations — it refines the previous
// assignment under the new profile's weights. Returns the improved
// assignment (a fresh slice) and the number of nodes that changed engines.
func ProfileImprove(in Input, previous []int) ([]int, int, error) {
	if err := in.defaults(); err != nil {
		return nil, 0, err
	}
	g, lat, bw, err := profileGraph(&in)
	if err != nil {
		return nil, 0, err
	}
	combined, _, err := partition.CombineObjectives(
		g,
		[]partition.EdgeWeightSet{lat, bw},
		[]float64{in.LatencyPriority, 1 - in.LatencyPriority},
		in.K, in.PartOpts,
	)
	if err != nil {
		return nil, 0, fmt.Errorf("mapping: PROFILE improve: %w", err)
	}
	part := append([]int(nil), previous...)
	moved, err := partition.Improve(g.WithWeights(combined), part, in.K, in.PartOpts)
	if err != nil {
		return nil, 0, fmt.Errorf("mapping: PROFILE improve: %w", err)
	}
	return part, moved, nil
}

// PredictMemory returns the per-engine memory requirement of an assignment
// under the paper's model — the quantity its §5 future-work loop would
// monitor before deciding to repartition with a heavier memory weight.
func PredictMemory(nw *netgraph.Network, assignment []int, k int) []int64 {
	asr := nw.ASRouterCount()
	out := make([]int64, k)
	for v, e := range assignment {
		out[e] += nw.MemoryWeight(v, asr)
	}
	return out
}
