package mapping

import (
	"fmt"
	"math"

	"repro/internal/partition"
)

// RemapSurvivors redistributes the virtual network across the engines that
// survive a crash. It is the recovery-path analogue of ProfileImprove: the
// TOP partitioning instance (bandwidth + memory constraints, latency
// objective) is rebuilt with reduced k — one part per surviving engine — the
// previous assignment is relabeled onto the survivor index space (nodes
// stranded on dead engines are seeded greedily onto the least-loaded
// survivors), and partition.Improve refines from there, so surviving nodes
// move only when the balance gain pays for the migration. engineLoads, when
// provided, orders the greedy seeding by the survivors' measured load;
// otherwise seeded bandwidth weight is used alone.
//
// The returned assignment is in engine-ID space (values drawn from
// survivors) together with the number of nodes that changed engines.
func RemapSurvivors(in Input, previous []int, survivors []int, engineLoads []float64) ([]int, int, error) {
	return RemapOnto(in, previous, survivors, engineLoads)
}

// RemapOnto redistributes the virtual network onto an arbitrary target engine
// set — the general membership-change remap. It covers both directions:
// shrink (crash or graceful drain: the target set omits departed engines, so
// their nodes strand and are re-seeded) and grow (elastic join: the target set
// includes fresh engines that start with empty parts and are filled from the
// biggest donors before refinement). Nodes already on a target engine keep it
// in the seed, so partition.Improve moves state only when the balance gain
// pays for the migration. engineLoads, when provided, orders the greedy
// seeding by measured engine load.
//
// The returned assignment is in engine-ID space (values drawn from engines)
// together with the number of nodes that changed engines.
func RemapOnto(in Input, previous []int, engines []int, engineLoads []float64) ([]int, int, error) {
	if err := in.defaults(); err != nil {
		return nil, 0, err
	}
	nw := in.Network
	if len(previous) != nw.NumNodes() {
		return nil, 0, fmt.Errorf("%w: remap: previous assignment covers %d nodes, network has %d",
			ErrBadInput, len(previous), nw.NumNodes())
	}
	if len(engines) == 0 {
		return nil, 0, fmt.Errorf("%w: remap: no target engines", ErrInfeasible)
	}

	slotOf := make(map[int]int, len(engines))
	for slot, eng := range engines {
		slotOf[eng] = slot
	}
	m := len(engines)

	if m == 1 {
		// Nothing to balance: everything lands on the lone target.
		next := make([]int, len(previous))
		moved := 0
		for v := range next {
			next[v] = engines[0]
			if previous[v] != engines[0] {
				moved++
			}
		}
		return next, moved, nil
	}

	// The TOP instance: bandwidth + memory constraints, latency objective —
	// the information still available when the profiling of the current run
	// was lost with the crash.
	g := baseGraph(nw, 2)
	for v := 0; v < nw.NumNodes(); v++ {
		w := int64(math.Round(nw.TotalBandwidth(v) / 1e6))
		if w < 1 {
			w = 1
		}
		g.VWgt[v][0] = w
	}
	memoryWeights(nw, g, 1)
	lat := latencyWeights(nw, g)

	// Seed: nodes already on a target engine keep it; stranded nodes go to
	// the least-loaded target one by one (deterministic ID order), tracking
	// the running bandwidth-weight tally so a big departed engine spreads
	// over several targets instead of piling onto one.
	tally := make([]float64, m)
	if len(engineLoads) > 0 {
		for slot, eng := range engines {
			if eng < len(engineLoads) {
				tally[slot] = engineLoads[eng]
			}
		}
		// Normalize measured load into the same order of magnitude as the
		// bandwidth weights so both regimes mix sensibly.
		var maxLoad, maxW float64
		for _, t := range tally {
			if t > maxLoad {
				maxLoad = t
			}
		}
		for v := 0; v < nw.NumNodes(); v++ {
			maxW += float64(g.VWgt[v][0])
		}
		if maxLoad > 0 {
			for slot := range tally {
				tally[slot] = tally[slot] / maxLoad * maxW / float64(m)
			}
		}
	}
	part := make([]int, len(previous))
	for v, eng := range previous {
		if slot, ok := slotOf[eng]; ok {
			part[v] = slot
			tally[slot] += float64(g.VWgt[v][0])
		} else {
			part[v] = -1
		}
	}
	for v, slot := range part {
		if slot >= 0 {
			continue
		}
		best := 0
		for s := 1; s < m; s++ {
			if tally[s] < tally[best] {
				best = s
			}
		}
		part[v] = best
		tally[best] += float64(g.VWgt[v][0])
	}

	// partition.Improve refuses empty parts; a target can end up empty if it
	// owned no nodes before (a crash survivor that hosted nothing, or a
	// freshly joined engine) and no stranded node reached it.
	counts := make([]int, m)
	for _, slot := range part {
		counts[slot]++
	}
	for slot := 0; slot < m; slot++ {
		if counts[slot] > 0 {
			continue
		}
		donor := 0
		for s := 1; s < m; s++ {
			if counts[s] > counts[donor] {
				donor = s
			}
		}
		for v := len(part) - 1; v >= 0; v-- {
			if part[v] == donor {
				part[v] = slot
				counts[donor]--
				counts[slot]++
				break
			}
		}
	}

	if _, err := partition.Improve(g.WithWeights(lat), part, m, in.PartOpts); err != nil {
		return nil, 0, fmt.Errorf("mapping: remap: %w", err)
	}

	next := make([]int, len(part))
	moved := 0
	for v, slot := range part {
		next[v] = engines[slot]
		if next[v] != previous[v] {
			moved++
		}
	}
	return next, moved, nil
}
