package mapping

import (
	"fmt"
)

// GuardedResult reports a memory-guarded mapping.
type GuardedResult struct {
	// Assignment is the accepted partition.
	Assignment []int
	// Memory is the predicted per-engine memory under the paper's model.
	Memory []int64
	// Attempts is how many partition rounds were needed.
	Attempts int
	// Fits reports whether the final partition respects the capacity; when
	// false the best-effort assignment with the lowest peak memory is
	// returned anyway.
	Fits bool
}

// MapWithMemoryGuard implements the automatic adjustment loop the paper
// sketches as future work in §5: "given a partition, MaSSF can predict more
// accurate memory requirements on every simulation engine node. If the
// memory imbalance will hurt performance or correctness, then it can adjust
// the memory weight and repartition automatically."
//
// Each engine has capacity memory units (the paper's model: hosts cost 10,
// routers 10 + x² with x the AS router count). After mapping, the predicted
// per-engine memory is checked; on overflow the partitioner re-runs with a
// progressively tighter balance tolerance — the practical effect of raising
// the memory constraint's priority — until the partition fits or the
// tolerance bottoms out.
func MapWithMemoryGuard(a Approach, in Input, capacity int64, maxAttempts int) (*GuardedResult, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: memory guard: capacity must be positive", ErrInfeasible)
	}
	if maxAttempts <= 0 {
		maxAttempts = 4
	}
	if err := in.defaults(); err != nil {
		return nil, err
	}

	best := &GuardedResult{}
	var bestPeak int64 = -1
	tol := in.PartOpts.Imbalance
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		in.PartOpts.Imbalance = tol
		part, err := MapAny(a, in)
		if err != nil {
			return nil, err
		}
		mem := PredictMemory(in.Network, part, in.K)
		peak := int64(0)
		for _, m := range mem {
			if m > peak {
				peak = m
			}
		}
		if bestPeak < 0 || peak < bestPeak {
			best = &GuardedResult{Assignment: part, Memory: mem, Attempts: attempt}
			bestPeak = peak
		}
		if peak <= capacity {
			best.Fits = true
			best.Attempts = attempt
			best.Assignment = part
			best.Memory = mem
			return best, nil
		}
		// Tighten: halve the tolerance (floor 1%) and try again.
		tol /= 2
		if tol < 0.01 {
			tol = 0.01
		}
		// Vary the seed so a stuck local minimum is not replayed verbatim.
		in.PartOpts.Seed += 104729
	}
	best.Fits = false
	return best, nil
}
