package mapping

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/netflow"
	"repro/internal/partition"
	"repro/internal/topogen"
	"repro/internal/traffic"
)

func TestMapDispatch(t *testing.T) {
	nw := topogen.Campus()
	in := Input{Network: nw, K: 3}
	for _, a := range Approaches() {
		if a == Profile {
			continue // needs a summary, covered below
		}
		part, err := Map(a, in)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if err := validPartition(nw.NumNodes(), part, 3); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
	}
	if _, err := Map("BOGUS", in); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := TopMap(Input{K: 3}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := TopMap(Input{Network: topogen.Campus(), K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ProfileMap(Input{Network: topogen.Campus(), K: 3}); err == nil {
		t.Error("PROFILE without summary accepted")
	}
}

func TestTopMapDeterministic(t *testing.T) {
	nw := topogen.TeraGrid()
	in := Input{Network: nw, K: 5, PartOpts: partition.Options{Seed: 3}}
	a, err := TopMap(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TopMap(in)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("TOP not deterministic")
		}
	}
}

func TestTopMapKeepsLANsTogether(t *testing.T) {
	// TOP maximizes cut latency: the TeraGrid backbone (3-10 ms) should be
	// cut rather than intra-site LAN links (0.1-0.5 ms). Count cut links by
	// class.
	nw := topogen.TeraGrid()
	part, err := TopMap(Input{Network: nw, K: 5, PartOpts: partition.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var lanCut, wanCut, lanTotal, wanTotal int
	for _, l := range nw.Links {
		wan := l.Latency >= 3e-3
		cut := part[l.A] != part[l.B]
		if wan {
			wanTotal++
			if cut {
				wanCut++
			}
		} else {
			lanTotal++
			if cut {
				lanCut++
			}
		}
	}
	lanFrac := float64(lanCut) / float64(lanTotal)
	if lanFrac > 0.25 {
		t.Errorf("TOP cut %.0f%% of LAN links (%d/%d); should prefer cutting WAN links",
			lanFrac*100, lanCut, lanTotal)
	}
}

func TestPlaceMapUsesBackgroundAndApp(t *testing.T) {
	nw := topogen.Campus()
	spec := traffic.DefaultHTTP(60, 2)
	hosts := nw.Hosts()[:10]
	part, err := PlaceMap(Input{
		Network:    nw,
		K:          3,
		PartOpts:   partition.Options{Seed: 2},
		Background: spec.Predict(nw),
		AppHosts:   hosts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := validPartition(nw.NumNodes(), part, 3); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceMapWorksWithoutTraffic(t *testing.T) {
	// Degenerate PLACE (no background, no app) must still partition.
	nw := topogen.Campus()
	part, err := PlaceMap(Input{Network: nw, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := validPartition(nw.NumNodes(), part, 3); err != nil {
		t.Fatal(err)
	}
}

func TestProfileMapFromRealProfile(t *testing.T) {
	nw := topogen.Campus()
	const k = 3
	top, err := TopMap(Input{Network: nw, K: k, PartOpts: partition.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	w := traffic.DefaultHTTP(30, 4).Generate(nw)
	prof, err := emu.Run(emu.Config{
		Network: nw, Assignment: top, NumEngines: k, Workload: w, Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := prof.NetFlow.Summarize()

	for _, cluster := range []bool{false, true} {
		part, err := ProfileMap(Input{
			Network:  nw,
			K:        k,
			PartOpts: partition.Options{Seed: 5},
			Summary:  sum,
			Cluster:  cluster,
		})
		if err != nil {
			t.Fatalf("cluster=%v: %v", cluster, err)
		}
		if err := validPartition(nw.NumNodes(), part, k); err != nil {
			t.Fatalf("cluster=%v: %v", cluster, err)
		}
		// Re-run with the PROFILE partition: imbalance should not be worse
		// than TOP's (the paper's central claim, here as a weak sanity
		// bound: allow small noise).
		res, err := emu.Run(emu.Config{
			Network: nw, Assignment: part, NumEngines: k, Workload: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Imbalance > prof.Imbalance*1.15 {
			t.Errorf("cluster=%v: PROFILE imbalance %.3f much worse than TOP %.3f",
				cluster, res.Imbalance, prof.Imbalance)
		}
	}
}

func TestProfileMapRejectsWrongSummarySize(t *testing.T) {
	nw := topogen.Campus()
	_, err := ProfileMap(Input{
		Network: nw, K: 3,
		Summary: &netflow.Summary{NodePackets: make([]int64, 3)}, // wrong size
	})
	if err == nil {
		t.Error("mismatched summary accepted")
	}
}

func TestPredictMemory(t *testing.T) {
	nw := topogen.Campus()
	part := make([]int, nw.NumNodes())
	for v := range part {
		part[v] = v % 2
	}
	mem := PredictMemory(nw, part, 2)
	var total int64
	for _, m := range mem {
		total += m
	}
	// 20 routers in one 20-router AS: 20*(10+400) = 8200; 40 hosts: 400.
	if total != 8600 {
		t.Errorf("total memory = %d, want 8600", total)
	}
}

func validPartition(n int, part []int, k int) error {
	g := partition.NewGraph(n, 1)
	return partition.Verify(g, part, k)
}

func TestAssessQuality(t *testing.T) {
	nw := topogen.Campus()
	part, err := TopMap(Input{Network: nw, K: 3, PartOpts: partition.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	q := Assess(nw, part, 3, map[int]int64{0: 100})
	total := 0
	for _, n := range q.NodesPerEngine {
		total += n
	}
	if total != nw.NumNodes() {
		t.Errorf("NodesPerEngine sums to %d, want %d", total, nw.NumNodes())
	}
	if q.Lookahead <= 0 {
		t.Error("no lookahead")
	}
	if q.CutLinks <= 0 {
		t.Error("no cut links on a 3-way split")
	}
	if q.String() == "" {
		t.Error("empty report")
	}
	if err := Verify(nw, part, 3); err != nil {
		t.Errorf("Verify rejected a valid mapping: %v", err)
	}
	if err := Verify(nw, part, 99); err == nil {
		t.Error("Verify accepted wrong k")
	}
}

// TestNilRoutesFallbackMemoized documents Input.Routes' contract: a nil
// Routes triggers the full O(n²) all-pairs rebuild, but through the
// network's shared cache — so repeated standalone approach calls on the same
// network still build the table exactly once.
func TestNilRoutesFallbackMemoized(t *testing.T) {
	nw := topogen.Campus()
	if got := nw.RoutingBuilds(); got != 0 {
		t.Fatalf("fresh network reports %d routing builds", got)
	}
	if _, err := TopMap(Input{Network: nw, K: 3}); err != nil {
		t.Fatal(err)
	}
	if got := nw.RoutingBuilds(); got != 1 {
		t.Errorf("nil Routes did not trigger the rebuild: %d builds, want 1", got)
	}
	if _, err := PlaceMap(Input{Network: nw, K: 3}); err != nil {
		t.Fatal(err)
	}
	if got := nw.RoutingBuilds(); got != 1 {
		t.Errorf("second nil-Routes call rebuilt the table: %d builds, want 1 (shared cache)", got)
	}
	// An explicitly threaded Routing suppresses the fallback entirely.
	nw2 := topogen.Campus()
	rt := nw2.BuildRoutingTable()
	if _, err := TopMap(Input{Network: nw2, Routes: rt, K: 3}); err != nil {
		t.Fatal(err)
	}
	if got := nw2.RoutingBuilds(); got != 1 {
		t.Errorf("explicit Routes still rebuilt: %d builds, want 1", got)
	}
}
