package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// Registry is a minimal Prometheus-style metric registry: counter, gauge and
// histogram families with optional labels, rendered in the Prometheus text
// exposition format (version 0.0.4) by WriteExposition. It is stdlib-only and
// deterministic — families sort by name, series by their rendered label set,
// and floats format with strconv's shortest 'g' form — so two identical runs
// expose byte-identical /metrics bodies (the same contract as obs.Trace).
//
// Handles (Value, HistValue) are cheap and concurrency-safe; the collector
// updates them only at publication points, never on the per-packet path.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

type family struct {
	name, help string
	kind       metricKind
	series     map[string]*seriesVal
}

type seriesVal struct {
	labels string // rendered `{k="v",...}`, or "" for unlabelled
	val    float64
	hist   *metrics.Histogram
}

// Label is one key="value" pair attached to a metric series.
type Label struct{ Key, Value string }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// ResetRegistry drops every family (for reusing one registry across runs).
func (r *Registry) ResetRegistry() {
	r.mu.Lock()
	r.fams = make(map[string]*family)
	r.mu.Unlock()
}

// ZeroAll resets every registered series to its freshly-registered state —
// value zero, histogram empty — without dropping the families, so existing
// handles stay valid. Renders byte-identically to a rebuilt registry; used
// when a collector is reused across runs of the same dimensions.
func (r *Registry) ZeroAll() {
	r.mu.Lock()
	for _, f := range r.fams {
		for _, sv := range f.series {
			sv.val = 0
			sv.hist = nil
		}
	}
	r.mu.Unlock()
}

// Value is a handle on one counter or gauge series.
type Value struct {
	r  *Registry
	sv *seriesVal
}

// Set replaces the series value. For counter series the collector only ever
// sets monotonically increasing totals.
func (v Value) Set(x float64) {
	v.r.mu.Lock()
	v.sv.val = x
	v.r.mu.Unlock()
}

// Add increments the series value.
func (v Value) Add(d float64) {
	v.r.mu.Lock()
	v.sv.val += d
	v.r.mu.Unlock()
}

// Get returns the current value (mainly for tests).
func (v Value) Get() float64 {
	v.r.mu.RLock()
	defer v.r.mu.RUnlock()
	return v.sv.val
}

// HistValue is a handle on one histogram series.
type HistValue struct {
	r  *Registry
	sv *seriesVal
}

// Set replaces the exposed histogram with a copy of h.
func (v HistValue) Set(h *metrics.Histogram) {
	cp := h.CloneHistogram()
	v.r.mu.Lock()
	v.sv.hist = cp
	v.r.mu.Unlock()
}

// Counter registers (or finds) a counter series and returns its handle.
func (r *Registry) Counter(name, help string, labels ...Label) Value {
	return Value{r, r.lookup(name, help, counterKind, labels)}
}

// Gauge registers (or finds) a gauge series and returns its handle.
func (r *Registry) Gauge(name, help string, labels ...Label) Value {
	return Value{r, r.lookup(name, help, gaugeKind, labels)}
}

// Histogram registers (or finds) a histogram series and returns its handle.
func (r *Registry) Histogram(name, help string, labels ...Label) HistValue {
	return HistValue{r, r.lookup(name, help, histogramKind, labels)}
}

func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *seriesVal {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*seriesVal)}
		r.fams[name] = f
	}
	sv, ok := f.series[key]
	if !ok {
		sv = &seriesVal{labels: key}
		f.series[key] = sv
	}
	return sv
}

// renderLabels renders a deterministic `{k="v",...}` suffix (keys sorted).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WriteExposition renders every family in the Prometheus text format,
// deterministically ordered.
func (r *Registry) WriteExposition(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.fams[n]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sv := f.series[k]
			var err error
			if f.kind == histogramKind {
				err = writeHistogram(w, f.name, sv)
			} else {
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, sv.labels, fmtFloat(sv.val))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram series as cumulative le buckets plus
// _sum and _count, following the Prometheus histogram convention.
func writeHistogram(w io.Writer, name string, sv *seriesVal) error {
	h := sv.hist
	var cum int64
	if h != nil {
		for i, c := range h.Counts {
			cum += c
			if c == 0 && i != len(h.Counts)-1 {
				continue // keep output compact: only buckets that grow the count
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				name, withLE(sv.labels, fmtFloat(h.UpperBound(i))), cum); err != nil {
				return err
			}
		}
	}
	var sum float64
	var count int64
	if h != nil {
		sum, count = h.Sum, h.Count
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(sv.labels, "+Inf"), count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
		name, sv.labels, fmtFloat(sum), name, sv.labels, count); err != nil {
		return err
	}
	// NaN observations live outside the buckets (they have no magnitude);
	// surface them as their own counter series only when any occurred, so
	// healthy runs keep a byte-stable exposition.
	if h != nil && h.NaNCount > 0 {
		if _, err := fmt.Fprintf(w, "%s_nan_count%s %d\n", name, sv.labels, h.NaNCount); err != nil {
			return err
		}
	}
	return nil
}

// withLE splices an le label into a rendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---- The collector's instrument set ----

// instruments holds the handles the collector refreshes at publication
// points. Engine-dimensioned families are (re)built by reset once the run's
// dimensions are known.
type instruments struct {
	reg *Registry

	virtualTime Value
	windows     Value
	imbalance   Value
	crossBytes  Value
	totalBytes  Value
	flowsDone   Value
	drops       Value
	linkBytes   Value
	linkPackets Value

	engineCharges []Value
	matrixBytes   []Value // engines×engines, row-major
	matrixPackets []Value

	queueDelay HistValue
	fct        HistValue

	// loads is publishWindow's scratch for the imbalance computation,
	// persistent so publication adds no per-call allocations.
	loads []float64
	// engines is the dimension the handle slices were built for; a reset to
	// the same dimension zeroes values in place instead of rebuilding.
	engines int
}

func newInstruments(reg *Registry) *instruments {
	return &instruments{reg: reg, engines: -1}
}

func (in *instruments) reset(d Dims) {
	if d.Engines == in.engines {
		in.reg.ZeroAll()
		return
	}
	in.engines = d.Engines
	in.reg.ResetRegistry()
	in.virtualTime = in.reg.Gauge("massf_virtual_time_seconds",
		"Virtual time of the last published synchronization window barrier.")
	in.windows = in.reg.Counter("massf_windows_total",
		"Synchronization windows executed.")
	in.imbalance = in.reg.Gauge("massf_load_imbalance",
		"Normalized standard deviation of cumulative per-engine kernel-event load.")
	in.crossBytes = in.reg.Counter("massf_cross_engine_bytes_total",
		"Bytes forwarded between distinct engines.")
	in.totalBytes = in.reg.Counter("massf_forwarded_bytes_total",
		"Bytes forwarded over all links (both intra- and cross-engine).")
	in.flowsDone = in.reg.Counter("massf_flows_completed_total",
		"Flows fully delivered to their destination host.")
	in.drops = in.reg.Counter("massf_dropped_packets_total",
		"Packets tail-dropped at full link buffers.")
	in.linkBytes = in.reg.Counter("massf_link_tx_bytes_total",
		"Bytes transmitted over all virtual links.")
	in.linkPackets = in.reg.Counter("massf_link_tx_packets_total",
		"Packets transmitted over all virtual links.")

	in.engineCharges = make([]Value, d.Engines)
	in.matrixBytes = make([]Value, d.Engines*d.Engines)
	in.matrixPackets = make([]Value, d.Engines*d.Engines)
	for e := 0; e < d.Engines; e++ {
		el := Label{"engine", strconv.Itoa(e)}
		in.engineCharges[e] = in.reg.Counter("massf_engine_charges_total",
			"Cumulative kernel-event load per engine.", el)
		for dst := 0; dst < d.Engines; dst++ {
			ls := []Label{{"src", strconv.Itoa(e)}, {"dst", strconv.Itoa(dst)}}
			in.matrixBytes[e*d.Engines+dst] = in.reg.Counter("massf_traffic_matrix_bytes_total",
				"Bytes handed from engine src to engine dst.", ls...)
			in.matrixPackets[e*d.Engines+dst] = in.reg.Counter("massf_traffic_matrix_packets_total",
				"Packets handed from engine src to engine dst.", ls...)
		}
	}
	in.queueDelay = in.reg.Histogram("massf_queue_delay_seconds",
		"Per-hop transmitter queueing delay (all engines merged).")
	in.fct = in.reg.Histogram("massf_flow_completion_seconds",
		"Flow completion times (all engines merged).")
}

// publishWindow refreshes the scalar, per-engine and matrix values. Called
// from Commit (measurement-window crossings only) and Finish with c.mu held
// (engines quiesced at the barrier).
func (in *instruments) publishWindow(c *Collector) {
	p := &c.pub
	in.virtualTime.Set(p.virtualTime)
	in.windows.Set(float64(p.windows))
	in.loads = in.loads[:0]
	for i, ch := range p.engineCharges {
		in.engineCharges[i].Set(float64(ch))
		in.loads = append(in.loads, float64(ch))
	}
	in.imbalance.Set(metrics.Imbalance(in.loads))
	var cross, total int64
	e := c.dims.Engines
	for s := 0; s < e; s++ {
		for d := 0; d < e; d++ {
			v := p.matrixBytes[s*e+d]
			in.matrixBytes[s*e+d].Set(float64(v))
			in.matrixPackets[s*e+d].Set(float64(p.matrixPackets[s*e+d]))
			total += v
			if s != d {
				cross += v
			}
		}
	}
	in.crossBytes.Set(float64(cross))
	in.totalBytes.Set(float64(total))
}

// publishSlow refreshes the measurement-window-cadence values. Called from
// publishSlowLocked with c.mu held.
func (in *instruments) publishSlow(c *Collector) {
	p := &c.pub
	in.flowsDone.Set(float64(p.flowsDone))
	in.drops.Set(float64(p.drops))
	var bytes, packets int64
	for _, v := range p.linkTxBytes {
		bytes += v
	}
	for _, v := range p.linkTxPackets {
		packets += v
	}
	in.linkBytes.Set(float64(bytes))
	in.linkPackets.Set(float64(packets))
	in.queueDelay.Set(p.queueDelay)
	in.fct.Set(p.fct)
}
