package telemetry

import (
	"fmt"

	"repro/internal/metrics"
)

// Distributed telemetry merge. Under the dist runtime each worker process
// owns a disjoint set of engines and, by the collector's single-writer
// discipline, a disjoint set of hot slots: matrix rows of its engines, tx/rx
// slots of links whose transmitting/receiving endpoint it hosts, node slots
// and series columns of its nodes, and the per-engine histograms/counters of
// its engines. Every non-owned slot stays zero for the whole run, so the
// coordinator reconstructs the exact in-process hot state by copying each
// worker's matrix rows and per-engine instruments and summing the full
// link/node arrays elementwise. The coordinator then drives Commit/Finish
// itself (replaying the window observer), so the published snapshots,
// timeline and /metrics exposition are byte-identical to an in-process run.

// Partial is one worker's share of the hot telemetry state, exported at a
// window barrier with its engines quiesced. All fields are value data —
// safe to encode onto a wire.
type Partial struct {
	// Engines lists the engines this worker owns, ascending.
	Engines []int
	// MatrixBytes/MatrixPackets hold one cumulative row per owned engine
	// (len(Engines)×Engines, row-major, same order as Engines).
	MatrixBytes   []int64
	MatrixPackets []int64

	// HasSlow marks that the slow-cadence state below is populated; workers
	// ship it only at measurement-window crossings and at the end of the run.
	HasSlow bool
	// LinkTxBytes/LinkTxPackets/LinkRxPackets are the full 2×links arrays
	// (non-owned slots zero); NodePackets and SeriesLoads likewise cover all
	// nodes.
	LinkTxBytes   []int64
	LinkTxPackets []int64
	LinkRxPackets []int64
	NodePackets   []int64
	SeriesLoads   [][]float64
	// QueueDelay and FCT are the owned engines' histograms (same order as
	// Engines); FlowsDone and Drops their counters.
	QueueDelay []*metrics.Histogram
	FCT        []*metrics.Histogram
	FlowsDone  []int64
	Drops      []int64
}

// NewRunHistogram returns an empty histogram with the run layout (the one
// every per-engine instrument uses) — the wire codec rebuilds received
// histograms onto it.
func NewRunHistogram() *metrics.Histogram {
	return metrics.MustLogHistogram(histLo, histHi, histPerDecade)
}

// ExportPartial captures this collector's share of the hot state for the
// given owned engines. Call it at a window barrier with the engines
// quiesced. slow selects whether the slow-cadence state rides along.
func (c *Collector) ExportPartial(engines []int, slow bool) *Partial {
	if c == nil {
		return nil
	}
	e := c.dims.Engines
	p := &Partial{
		Engines:       append([]int(nil), engines...),
		MatrixBytes:   make([]int64, 0, len(engines)*e),
		MatrixPackets: make([]int64, 0, len(engines)*e),
	}
	for _, eng := range engines {
		p.MatrixBytes = append(p.MatrixBytes, c.matrixBytes[eng*e:(eng+1)*e]...)
		p.MatrixPackets = append(p.MatrixPackets, c.matrixPackets[eng*e:(eng+1)*e]...)
	}
	if !slow {
		return p
	}
	p.HasSlow = true
	p.LinkTxBytes = append([]int64(nil), c.linkTxBytes...)
	p.LinkTxPackets = append([]int64(nil), c.linkTxPackets...)
	p.LinkRxPackets = append([]int64(nil), c.linkRxPackets...)
	p.NodePackets = append([]int64(nil), c.nodePackets...)
	p.SeriesLoads = c.series.Clone().Loads
	for _, eng := range engines {
		p.QueueDelay = append(p.QueueDelay, c.queueDelay[eng].CloneHistogram())
		p.FCT = append(p.FCT, c.fct[eng].CloneHistogram())
		p.FlowsDone = append(p.FlowsDone, c.flowsDone[eng])
		p.Drops = append(p.Drops, c.drops[eng])
	}
	return p
}

// InstallPartials overwrites the collector's hot state from the workers'
// latest partials (one per worker; together they must cover every engine
// exactly once). Matrix rows install every call; the slow-cadence arrays are
// rebuilt only when the partials carry them. The caller is the coordinator
// at a barrier — no engine goroutines are running — and must follow up with
// Commit (or Finish) to republish, exactly as the in-process observer would.
func (c *Collector) InstallPartials(ps []*Partial) error {
	if c == nil {
		return nil
	}
	e := c.dims.Engines
	slow := false
	for _, p := range ps {
		if p == nil {
			continue
		}
		if len(p.MatrixBytes) != len(p.Engines)*e || len(p.MatrixPackets) != len(p.Engines)*e {
			return fmt.Errorf("telemetry: partial matrix rows %d for %d engines (want %d cols)",
				len(p.MatrixBytes), len(p.Engines), e)
		}
		for i, eng := range p.Engines {
			if eng < 0 || eng >= e {
				return fmt.Errorf("telemetry: partial owns invalid engine %d", eng)
			}
			copy(c.matrixBytes[eng*e:(eng+1)*e], p.MatrixBytes[i*e:(i+1)*e])
			copy(c.matrixPackets[eng*e:(eng+1)*e], p.MatrixPackets[i*e:(i+1)*e])
		}
		if p.HasSlow {
			slow = true
		}
	}
	if !slow {
		return nil
	}
	zero64(c.linkTxBytes)
	zero64(c.linkTxPackets)
	zero64(c.linkRxPackets)
	zero64(c.nodePackets)
	for _, row := range c.series.Loads {
		for i := range row {
			row[i] = 0
		}
	}
	for _, p := range ps {
		if p == nil || !p.HasSlow {
			continue
		}
		if len(p.LinkTxBytes) != len(c.linkTxBytes) || len(p.NodePackets) != len(c.nodePackets) ||
			len(p.SeriesLoads) != len(c.series.Loads) {
			return fmt.Errorf("telemetry: partial slow-state dims do not match the run")
		}
		add64(c.linkTxBytes, p.LinkTxBytes)
		add64(c.linkTxPackets, p.LinkTxPackets)
		add64(c.linkRxPackets, p.LinkRxPackets)
		add64(c.nodePackets, p.NodePackets)
		for b, row := range p.SeriesLoads {
			dst := c.series.Loads[b]
			for i, v := range row {
				dst[i] += v
			}
		}
		if len(p.QueueDelay) != len(p.Engines) || len(p.FCT) != len(p.Engines) ||
			len(p.FlowsDone) != len(p.Engines) || len(p.Drops) != len(p.Engines) {
			return fmt.Errorf("telemetry: partial instruments do not match its engine set")
		}
		for i, eng := range p.Engines {
			c.queueDelay[eng] = p.QueueDelay[i].CloneHistogram()
			c.fct[eng] = p.FCT[i].CloneHistogram()
			c.flowsDone[eng] = p.FlowsDone[i]
			c.drops[eng] = p.Drops[i]
		}
	}
	return nil
}

func zero64(xs []int64) {
	for i := range xs {
		xs[i] = 0
	}
}

func add64(dst, src []int64) {
	for i, v := range src {
		dst[i] += v
	}
}
