// Package telemetry is the traffic-plane observability layer, the companion
// of internal/obs (which watches the kernel plane). Where obs counts kernel
// events and barrier waits, telemetry watches the *traffic* the paper's §3.3
// PROFILE strategy is built on: who sends how much to whom, over which links,
// between which engines — continuously, while the emulation runs.
//
// The Collector is threaded through the emulator's per-packet-group path and
// maintains:
//
//   - a live src-engine × dst-engine byte/packet matrix, republished at every
//     synchronization window barrier,
//   - per-link, per-direction transmitted bytes/packets and received packets,
//   - per-engine queue-delay and flow-completion-time histograms,
//   - the per-node packet load and bucketed load series the PROFILE mapping
//     consumes (ToProfile produces a netflow.Summary numerically identical to
//     the NetFlow side-channel's, closing the feedback loop without it),
//   - a measurement-window timeline of load imbalance and cross-engine
//     traffic.
//
// Design constraints, matching the obs contract:
//
//   - Zero cost when disabled: a nil *Collector adds no allocations and no
//     measurable work to the per-packet path — every instrumentation site
//     guards on the nil pointer (AllocsPerRun-enforced in emu).
//   - Single-writer hot state: every hot slot is written by exactly one
//     engine goroutine — matrix row e by engine e, a link direction's tx
//     slots by the transmitting endpoint's engine, its rx slot by the
//     receiving endpoint's engine, a node's slots by its owning engine — so
//     the per-packet path takes no locks.
//   - Deterministic snapshots derived from virtual time only. Publication
//     happens at window barriers on the coordinating goroutine (engines
//     quiesced), so live HTTP readers only ever see a consistent
//     barrier-time copy; two identical runs publish byte-identical final
//     snapshots.
package telemetry

import (
	"repro/internal/metrics"
	"repro/internal/netflow"
	"sync"
)

// Histogram layout shared by the queue-delay and FCT instruments: 1 µs to
// 100 s at 5 log buckets per decade (40 buckets). Sub-microsecond delays
// (including the common zero: an idle transmitter) clamp into bucket 0.
const (
	histLo        = 1e-6
	histHi        = 100
	histPerDecade = 5
)

// Dims sizes a Collector for one emulation run.
type Dims struct {
	// Engines is the number of simulation-engine nodes.
	Engines int
	// Nodes and Links size the virtual topology.
	Nodes, Links int
	// Duration is the run's virtual length in seconds.
	Duration float64
	// BucketWidth is the measurement-window granularity in virtual seconds
	// (the paper's fine-grained 2 s interval by default) — the cadence of
	// full publication and of timeline points.
	BucketWidth float64
}

// TrafficPoint is one measurement window of the traffic timeline.
type TrafficPoint struct {
	// Time is the window's end in virtual seconds.
	Time float64 `json:"t"`
	// Imbalance is the normalized standard deviation of the per-engine
	// kernel-event load accrued during this window.
	Imbalance float64 `json:"imbalance"`
	// CrossEngineBytes is the traffic handed between distinct engines during
	// this window; TotalBytes includes intra-engine forwards.
	CrossEngineBytes int64 `json:"crossBytes"`
	TotalBytes       int64 `json:"totalBytes"`
}

// Collector accumulates traffic-plane telemetry during an emulation run.
// Create one with New, hand it to emu.Run via emu.WithTelemetry, and read it
// live (Snapshot, Metrics) or after the run (Snapshot, ToProfile). A nil
// *Collector is a valid "disabled" collector for every method the emulator
// calls.
type Collector struct {
	mu   sync.RWMutex // guards pub and reg value updates against HTTP readers
	pub  published
	reg  *Registry
	inst *instruments

	dims    Dims
	buckets int

	// Hot state: written by engine goroutines with no synchronization under
	// the single-writer ownership discipline documented in the package
	// comment. Read only at window barriers (engines quiesced) or after the
	// run.
	matrixBytes   []int64 // engines×engines, row-major [src*engines+dst]
	matrixPackets []int64
	linkTxBytes   []int64 // 2×links, [2*link+dir]: transmitted (post-drop)
	linkTxPackets []int64
	linkRxPackets []int64 // 2×links: received at the far end (NetFlow's view)
	nodePackets   []int64
	series        *metrics.Series // bucketed per-node load (PROFILE input)
	queueDelay    []*metrics.Histogram
	fct           []*metrics.Histogram
	flowsDone     []int64 // per engine (destination side)
	drops         []int64 // per engine (transmitting side)

	// Barrier-time accumulators, written only by Commit on the coordinating
	// goroutine.
	windows       int64
	virtualTime   float64
	engineCharges []int64
	bucketCharges []float64
	lastBucket    int
	timeline      []TrafficPoint
	prevCross     int64
	prevTotal     int64
}

// published is the barrier-time copy of the hot state the HTTP endpoints
// serve. The matrix and scalars refresh every synchronization window; link
// counters, histograms and the timeline refresh at measurement-window
// boundaries and at Finish.
type published struct {
	sized       bool
	virtualTime float64
	windows     int64

	matrixBytes   []int64
	matrixPackets []int64
	linkTxBytes   []int64
	linkTxPackets []int64
	engineCharges []int64
	queueDelay    *metrics.Histogram
	fct           *metrics.Histogram
	flowsDone     int64
	drops         int64
	timeline      []TrafficPoint
}

// New returns an empty, unsized Collector. The emulator sizes it (Reset) at
// run start; until then snapshots are empty. The registry exists from the
// outset so HTTP endpoints can be mounted before the run begins.
func New() *Collector {
	c := &Collector{reg: NewRegistry()}
	c.inst = newInstruments(c.reg)
	return c
}

// Enabled reports whether the collector is non-nil — the emulator's hot-path
// guard reads (telemetry on at all?), kept as a method for symmetry.
func (c *Collector) Enabled() bool { return c != nil }

// Metrics returns the collector's Prometheus-style registry. Values update at
// measurement-window (BucketWidth) boundaries and at Finish — not every
// synchronization window; Snapshot serves the faster per-window view.
func (c *Collector) Metrics() *Registry { return c.reg }

// Reset sizes the collector for a run and zeroes all state. The emulator
// calls it once at run start; callers reusing one collector across runs (the
// live massf endpoint) get per-run values.
func (c *Collector) Reset(d Dims) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d.BucketWidth <= 0 {
		d.BucketWidth = 2
	}
	if d.Duration <= 0 {
		d.Duration = 1
	}
	// Same dimensions as the previous run (the live endpoint reuses one
	// collector across runs): zero every structure in place instead of
	// reallocating — the hot arrays, histograms, series and registry handles
	// all survive, so a collector reused run-over-run settles into a
	// fixed-allocation regime.
	if c.pub.sized && c.dims == d {
		zeroI64(c.matrixBytes)
		zeroI64(c.matrixPackets)
		zeroI64(c.linkTxBytes)
		zeroI64(c.linkTxPackets)
		zeroI64(c.linkRxPackets)
		zeroI64(c.nodePackets)
		for _, row := range c.series.Loads {
			zeroF64(row)
		}
		for i := range c.queueDelay {
			c.queueDelay[i].ResetHistogram()
			c.fct[i].ResetHistogram()
		}
		zeroI64(c.flowsDone)
		zeroI64(c.drops)
		c.windows = 0
		c.virtualTime = 0
		zeroI64(c.engineCharges)
		zeroF64(c.bucketCharges)
		c.lastBucket = 0
		c.timeline = c.timeline[:0]
		c.prevCross = 0
		c.prevTotal = 0
		c.pub.virtualTime = 0
		c.pub.windows = 0
		zeroI64(c.pub.matrixBytes)
		zeroI64(c.pub.matrixPackets)
		zeroI64(c.pub.linkTxBytes)
		zeroI64(c.pub.linkTxPackets)
		zeroI64(c.pub.engineCharges)
		c.pub.queueDelay.ResetHistogram()
		c.pub.fct.ResetHistogram()
		c.pub.flowsDone = 0
		c.pub.drops = 0
		c.pub.timeline = c.pub.timeline[:0]
		c.inst.reset(d)
		return
	}

	c.dims = d
	c.buckets = int(d.Duration/d.BucketWidth) + 1

	e2 := d.Engines * d.Engines
	c.matrixBytes = make([]int64, e2)
	c.matrixPackets = make([]int64, e2)
	c.linkTxBytes = make([]int64, 2*d.Links)
	c.linkTxPackets = make([]int64, 2*d.Links)
	c.linkRxPackets = make([]int64, 2*d.Links)
	c.nodePackets = make([]int64, d.Nodes)
	c.series = metrics.NewSeries(d.BucketWidth, d.Nodes, c.buckets)
	c.queueDelay = make([]*metrics.Histogram, d.Engines)
	c.fct = make([]*metrics.Histogram, d.Engines)
	for i := 0; i < d.Engines; i++ {
		c.queueDelay[i] = metrics.MustLogHistogram(histLo, histHi, histPerDecade)
		c.fct[i] = metrics.MustLogHistogram(histLo, histHi, histPerDecade)
	}
	c.flowsDone = make([]int64, d.Engines)
	c.drops = make([]int64, d.Engines)

	c.windows = 0
	c.virtualTime = 0
	c.engineCharges = make([]int64, d.Engines)
	c.bucketCharges = make([]float64, d.Engines)
	c.lastBucket = 0
	c.timeline = nil
	c.prevCross = 0
	c.prevTotal = 0

	c.pub = published{
		sized:         true,
		matrixBytes:   make([]int64, e2),
		matrixPackets: make([]int64, e2),
		linkTxBytes:   make([]int64, 2*d.Links),
		linkTxPackets: make([]int64, 2*d.Links),
		engineCharges: make([]int64, d.Engines),
		queueDelay:    metrics.MustLogHistogram(histLo, histHi, histPerDecade),
		fct:           metrics.MustLogHistogram(histLo, histHi, histPerDecade),
	}
	c.inst.reset(d)
}

// ---- Hot-path observation (engine goroutines, no locks, no allocations) ----

// ObserveNode accounts one packet group processed at a node, arriving over
// link inLink in direction inDir (inLink -1 at the flow source). The caller
// is the engine owning the node, so the node and rx slots are single-writer.
func (c *Collector) ObserveNode(node, inLink, inDir int, packets int64, t float64) {
	c.nodePackets[node] += packets
	if inLink >= 0 {
		c.linkRxPackets[2*inLink+inDir] += packets
	}
	c.series.Add(t, node, float64(packets))
}

// ObserveForward accounts one packet group leaving srcEngine for dstEngine
// over link/dir, having waited queueDelay seconds behind the transmitter's
// backlog. The caller is the engine owning the transmitting endpoint.
func (c *Collector) ObserveForward(srcEngine, dstEngine, link, dir int, bytes, packets int64, queueDelay float64) {
	i := srcEngine*c.dims.Engines + dstEngine
	c.matrixBytes[i] += bytes
	c.matrixPackets[i] += packets
	c.linkTxBytes[2*link+dir] += bytes
	c.linkTxPackets[2*link+dir] += packets
	c.queueDelay[srcEngine].Observe(queueDelay)
}

// ObserveDrop accounts packets tail-dropped at a full link buffer on the
// given engine.
func (c *Collector) ObserveDrop(engine int, packets int64) {
	c.drops[engine] += packets
}

// ObserveFlowComplete records one finished flow's completion time at its
// destination engine.
func (c *Collector) ObserveFlowComplete(engine int, fct float64) {
	c.flowsDone[engine]++
	c.fct[engine].Observe(fct)
}

// ---- Barrier-time publication (coordinating goroutine) ----

// Commit folds one executed synchronization window into the collector:
// charges[lp] is the kernel-event load of engine lp during [start, end). The
// published snapshot (matrix and scalars) refreshes every window; the
// Prometheus registry, link counters, histograms and the timeline refresh
// only when the window crosses a measurement-window (BucketWidth) boundary —
// sync windows are microseconds of virtual time apart and re-rendering ~2e²
// registry series at that cadence was the dominant telemetry-on cost, while
// BucketWidth is the paper's own observation granularity. Called by the
// emulator's window observer with the engines quiesced at the barrier.
func (c *Collector) Commit(start, end float64, charges []int64) {
	if c == nil || !c.pub.sized {
		return
	}
	for lp, ch := range charges {
		if lp >= len(c.engineCharges) {
			break
		}
		c.engineCharges[lp] += ch
		c.bucketCharges[lp] += float64(ch)
	}
	c.windows++
	c.virtualTime = end

	crossed := int(end/c.dims.BucketWidth) > c.lastBucket
	if crossed {
		c.recordTimeline(end)
	}

	c.mu.Lock()
	c.pub.windows = c.windows
	c.pub.virtualTime = end
	copy(c.pub.matrixBytes, c.matrixBytes)
	copy(c.pub.matrixPackets, c.matrixPackets)
	copy(c.pub.engineCharges, c.engineCharges)
	if crossed {
		c.publishSlowLocked()
		c.inst.publishWindow(c)
	}
	c.mu.Unlock()
}

// recordTimeline closes every measurement window up to end, emitting one
// timeline point per window (so idle windows still appear, at zero load).
func (c *Collector) recordTimeline(end float64) {
	cross, total := c.crossTotal()
	for b := c.lastBucket; b < int(end/c.dims.BucketWidth); b++ {
		t := float64(b+1) * c.dims.BucketWidth
		c.timeline = append(c.timeline, TrafficPoint{
			Time:             t,
			Imbalance:        metrics.Imbalance(c.bucketCharges),
			CrossEngineBytes: cross - c.prevCross,
			TotalBytes:       total - c.prevTotal,
		})
		// Only the first closed window carries the accumulated deltas; any
		// further windows skipped in one jump were idle.
		c.prevCross, c.prevTotal = cross, total
		for i := range c.bucketCharges {
			c.bucketCharges[i] = 0
		}
	}
	c.lastBucket = int(end / c.dims.BucketWidth)
}

// crossTotal sums the matrix into cross-engine and total bytes.
func (c *Collector) crossTotal() (cross, total int64) {
	e := c.dims.Engines
	for s := 0; s < e; s++ {
		for d := 0; d < e; d++ {
			v := c.matrixBytes[s*e+d]
			total += v
			if s != d {
				cross += v
			}
		}
	}
	return cross, total
}

// publishSlowLocked refreshes the slow-cadence published state (links,
// histograms, counters, timeline). Caller holds mu with engines quiesced.
func (c *Collector) publishSlowLocked() {
	copy(c.pub.linkTxBytes, c.linkTxBytes)
	copy(c.pub.linkTxPackets, c.linkTxPackets)
	c.pub.queueDelay.ResetHistogram()
	c.pub.fct.ResetHistogram()
	c.pub.flowsDone = 0
	c.pub.drops = 0
	for i := range c.queueDelay {
		_ = c.pub.queueDelay.Merge(c.queueDelay[i])
		_ = c.pub.fct.Merge(c.fct[i])
		c.pub.flowsDone += c.flowsDone[i]
		c.pub.drops += c.drops[i]
	}
	c.pub.timeline = append(c.pub.timeline[:0], c.timeline...)
	c.inst.publishSlow(c)
}

// Finish publishes the final state of the run — the emulator calls it once
// after the kernel completes, so Snapshot and the HTTP endpoints serve the
// exact end-of-run picture (and so identical runs publish byte-identical
// snapshots regardless of window/bucket alignment).
func (c *Collector) Finish(end float64) {
	if c == nil || !c.pub.sized {
		return
	}
	if end > c.virtualTime {
		c.virtualTime = end
	}
	// Close any open measurement window, so every observed byte and charge
	// appears in the timeline exactly once.
	cross, total := c.crossTotal()
	if sumFloats(c.bucketCharges) > 0 || cross != c.prevCross || total != c.prevTotal {
		c.recordTimeline(float64(c.lastBucket+1) * c.dims.BucketWidth)
	}
	c.mu.Lock()
	c.pub.windows = c.windows
	c.pub.virtualTime = c.virtualTime
	copy(c.pub.matrixBytes, c.matrixBytes)
	copy(c.pub.matrixPackets, c.matrixPackets)
	copy(c.pub.engineCharges, c.engineCharges)
	c.publishSlowLocked()
	c.inst.publishWindow(c)
	c.mu.Unlock()
}

func zeroI64(xs []int64) {
	for i := range xs {
		xs[i] = 0
	}
}

func zeroF64(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

func sumFloats(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// ---- Checkpoint / rollback (crash recovery) ----

// Checkpoint captures the hot state at a barrier so a crash recovery can roll
// telemetry back together with the rest of the emulation, avoiding double
// counting of replayed windows.
type Checkpoint struct {
	matrixBytes, matrixPackets      []int64
	linkTxBytes, linkTxPackets      []int64
	linkRxPackets, nodePackets      []int64
	series                          *metrics.Series
	queueDelay, fct                 []*metrics.Histogram
	flowsDone, drops, engineCharges []int64
	bucketCharges                   []float64
	windows                         int64
	virtualTime                     float64
	lastBucket                      int
	timeline                        []TrafficPoint
	prevCross, prevTotal            int64
}

// Snapshot-for-recovery: called at barrier checkpoints (engines quiesced).
func (c *Collector) Checkpoint() *Checkpoint {
	if c == nil {
		return nil
	}
	cp := &Checkpoint{
		matrixBytes:   append([]int64(nil), c.matrixBytes...),
		matrixPackets: append([]int64(nil), c.matrixPackets...),
		linkTxBytes:   append([]int64(nil), c.linkTxBytes...),
		linkTxPackets: append([]int64(nil), c.linkTxPackets...),
		linkRxPackets: append([]int64(nil), c.linkRxPackets...),
		nodePackets:   append([]int64(nil), c.nodePackets...),
		series:        c.series.Clone(),
		flowsDone:     append([]int64(nil), c.flowsDone...),
		drops:         append([]int64(nil), c.drops...),
		engineCharges: append([]int64(nil), c.engineCharges...),
		bucketCharges: append([]float64(nil), c.bucketCharges...),
		windows:       c.windows,
		virtualTime:   c.virtualTime,
		lastBucket:    c.lastBucket,
		timeline:      append([]TrafficPoint(nil), c.timeline...),
		prevCross:     c.prevCross,
		prevTotal:     c.prevTotal,
	}
	cp.queueDelay = cloneHists(c.queueDelay)
	cp.fct = cloneHists(c.fct)
	return cp
}

// Restore rolls the hot state back to a checkpoint. The checkpoint stays
// pristine (a later crash may roll back to it again).
func (c *Collector) Restore(cp *Checkpoint) {
	if c == nil || cp == nil {
		return
	}
	copy(c.matrixBytes, cp.matrixBytes)
	copy(c.matrixPackets, cp.matrixPackets)
	copy(c.linkTxBytes, cp.linkTxBytes)
	copy(c.linkTxPackets, cp.linkTxPackets)
	copy(c.linkRxPackets, cp.linkRxPackets)
	copy(c.nodePackets, cp.nodePackets)
	c.series = cp.series.Clone()
	c.queueDelay = cloneHists(cp.queueDelay)
	c.fct = cloneHists(cp.fct)
	copy(c.flowsDone, cp.flowsDone)
	copy(c.drops, cp.drops)
	copy(c.engineCharges, cp.engineCharges)
	copy(c.bucketCharges, cp.bucketCharges)
	c.windows = cp.windows
	c.virtualTime = cp.virtualTime
	c.lastBucket = cp.lastBucket
	c.timeline = append(c.timeline[:0], cp.timeline...)
	c.prevCross = cp.prevCross
	c.prevTotal = cp.prevTotal
}

func cloneHists(hs []*metrics.Histogram) []*metrics.Histogram {
	out := make([]*metrics.Histogram, len(hs))
	for i, h := range hs {
		out[i] = h.CloneHistogram()
	}
	return out
}

// ---- Snapshots and the PROFILE feedback loop ----

// Snapshot is a consistent barrier-time view of the traffic plane — what the
// /trafficmatrix endpoint serializes and emu.Result.Telemetry carries.
type Snapshot struct {
	// Engines is the matrix dimension.
	Engines int `json:"engines"`
	// VirtualTime is the virtual time of the snapshot's barrier.
	VirtualTime float64 `json:"virtualTime"`
	// Windows is the number of synchronization windows executed so far.
	Windows int64 `json:"windows"`
	// MatrixBytes[s][d] is the bytes handed from engine s to engine d
	// (diagonal = intra-engine forwards); MatrixPackets likewise.
	MatrixBytes   [][]int64 `json:"matrixBytes"`
	MatrixPackets [][]int64 `json:"matrixPackets"`
	// CrossEngineBytes sums the off-diagonal matrix; TotalBytes the whole.
	CrossEngineBytes int64 `json:"crossEngineBytes"`
	TotalBytes       int64 `json:"totalBytes"`
	// EngineCharges is the cumulative kernel-event load per engine.
	EngineCharges []int64 `json:"engineCharges"`
	// Imbalance is the normalized standard deviation of EngineCharges.
	Imbalance float64 `json:"imbalance"`
	// LinkTxBytes[l] / LinkTxPackets[l] total both directions of link l.
	LinkTxBytes   []int64 `json:"linkTxBytes"`
	LinkTxPackets []int64 `json:"linkTxPackets"`
	// FlowsCompleted and DroppedPackets total all engines.
	FlowsCompleted int64 `json:"flowsCompleted"`
	DroppedPackets int64 `json:"droppedPackets"`
	// QueueDelay and FCT are the merged per-engine histograms.
	QueueDelay *metrics.Histogram `json:"-"`
	FCT        *metrics.Histogram `json:"-"`
	// QueueDelayP50/P99 and FCTP50/P99 surface the histogram quantiles in
	// the JSON form (seconds).
	QueueDelayP50 float64 `json:"queueDelayP50"`
	QueueDelayP99 float64 `json:"queueDelayP99"`
	FCTP50        float64 `json:"fctP50"`
	FCTP99        float64 `json:"fctP99"`
	// Timeline is the measurement-window traffic history.
	Timeline []TrafficPoint `json:"timeline"`
}

// Snapshot returns the latest published view. Safe to call concurrently with
// a live run; nil-safe (returns an empty snapshot).
func (c *Collector) Snapshot() *Snapshot {
	if c == nil {
		return &Snapshot{}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	p := &c.pub
	e := c.dims.Engines
	s := &Snapshot{
		Engines:        e,
		VirtualTime:    p.virtualTime,
		Windows:        p.windows,
		MatrixBytes:    make([][]int64, e),
		MatrixPackets:  make([][]int64, e),
		EngineCharges:  append([]int64(nil), p.engineCharges...),
		LinkTxBytes:    make([]int64, len(p.linkTxBytes)/2),
		LinkTxPackets:  make([]int64, len(p.linkTxPackets)/2),
		FlowsCompleted: p.flowsDone,
		DroppedPackets: p.drops,
		QueueDelay:     p.queueDelay.CloneHistogram(),
		FCT:            p.fct.CloneHistogram(),
		Timeline:       append([]TrafficPoint(nil), p.timeline...),
	}
	for row := 0; row < e; row++ {
		s.MatrixBytes[row] = append([]int64(nil), p.matrixBytes[row*e:(row+1)*e]...)
		s.MatrixPackets[row] = append([]int64(nil), p.matrixPackets[row*e:(row+1)*e]...)
		for col, v := range s.MatrixBytes[row] {
			s.TotalBytes += v
			if col != row {
				s.CrossEngineBytes += v
			}
		}
	}
	for l := range s.LinkTxBytes {
		s.LinkTxBytes[l] = p.linkTxBytes[2*l] + p.linkTxBytes[2*l+1]
		s.LinkTxPackets[l] = p.linkTxPackets[2*l] + p.linkTxPackets[2*l+1]
	}
	loads := make([]float64, e)
	for i, ch := range s.EngineCharges {
		loads[i] = float64(ch)
	}
	s.Imbalance = metrics.Imbalance(loads)
	if s.QueueDelay != nil {
		s.QueueDelayP50 = s.QueueDelay.Quantile(50)
		s.QueueDelayP99 = s.QueueDelay.Quantile(99)
	}
	if s.FCT != nil {
		s.FCTP50 = s.FCT.Quantile(50)
		s.FCTP99 = s.FCT.Quantile(99)
	}
	return s
}

// ToProfile converts the measured traffic into the traffic-profile form the
// PROFILE mapping consumes — the same netflow.Summary the §3.3 side-channel
// produces, with numerically identical per-node loads, per-link packets and
// load series (both observe the identical packet-group stream at the same
// hot-path site), so a partition computed from telemetry matches one computed
// from a NetFlow dump of the same run. Call it after the run (or at a
// remapping interval boundary); it reads the hot state directly.
func (c *Collector) ToProfile() *netflow.Summary {
	if c == nil {
		return nil
	}
	s := &netflow.Summary{
		LinkPackets: make(map[int]int64),
		NodePackets: append([]int64(nil), c.nodePackets...),
		NodeSeries:  c.series.Clone(),
	}
	for l := 0; l < c.dims.Links; l++ {
		if p := c.linkRxPackets[2*l] + c.linkRxPackets[2*l+1]; p > 0 {
			s.LinkPackets[l] = p
		}
	}
	return s
}

// ToProfileInto is the storage-reusing form of ToProfile for the dynamic
// remapping loop, which re-exports the measured profile at every interval
// boundary: passing the previous interval's summary back in reuses its node
// slice, series rows and link map, so a steady-state remap loop allocates
// nothing here. Pass nil for the first interval. The returned summary is
// valid until the next call with the same argument.
func (c *Collector) ToProfileInto(s *netflow.Summary) *netflow.Summary {
	if c == nil {
		return nil
	}
	if s == nil {
		s = &netflow.Summary{}
	}
	if s.LinkPackets == nil {
		s.LinkPackets = make(map[int]int64, c.dims.Links)
	} else {
		for l := range s.LinkPackets {
			delete(s.LinkPackets, l)
		}
	}
	s.NodePackets = append(s.NodePackets[:0], c.nodePackets...)
	s.NodeSeries = c.series.CloneInto(s.NodeSeries)
	for l := 0; l < c.dims.Links; l++ {
		if p := c.linkRxPackets[2*l] + c.linkRxPackets[2*l+1]; p > 0 {
			s.LinkPackets[l] = p
		}
	}
	return s
}

// NodePacketTotals copies the measured per-node packet loads into dst
// (grown only if too small) and returns it — the per-node load vector of
// the game payoff's computational term, read from the hot array without a
// snapshot allocation. Valid at window barriers and after the run, like
// ToProfile.
func (c *Collector) NodePacketTotals(dst []int64) []int64 {
	if c == nil {
		return dst[:0]
	}
	return append(dst[:0], c.nodePackets...)
}

// EngineTrafficVector fills dst with the bytes engine `engine` exchanged
// with every engine (both directions summed; dst[engine] is its intra-engine
// volume) and returns it, growing dst only if too small — the per-engine
// traffic vector a payoff evaluation reads without allocating. Valid at
// window barriers and after the run, like ToProfile.
func (c *Collector) EngineTrafficVector(engine int, dst []int64) []int64 {
	if c == nil || engine < 0 || engine >= c.dims.Engines {
		return dst[:0]
	}
	k := c.dims.Engines
	if cap(dst) < k {
		dst = make([]int64, k)
	} else {
		dst = dst[:k]
	}
	for e := 0; e < k; e++ {
		v := c.matrixBytes[engine*k+e]
		if e != engine {
			v += c.matrixBytes[e*k+engine]
		}
		dst[e] = v
	}
	return dst
}
