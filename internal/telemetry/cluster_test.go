package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func clusterFixture() *ClusterHealth {
	h := NewClusterHealth()
	h.SetWorkers(3)
	h.ObserveWindow(1, 0.5)
	h.ObserveWindow(1, 0.25)
	h.ObserveWindow(0, 0)
	h.ObserveWindow(-1, 0) // all-idle window: counts, attributes nobody
	h.SetAttribution([]obs.WorkerHealth{
		{Worker: 0, GatedWindows: 1, CriticalPath: 2, Share: 0.25},
		{Worker: 1, GatedWindows: 2, CriticalPath: 6, Share: 0.75},
	})
	h.ObserveRTT(2, 1500*time.Microsecond)
	return h
}

func TestClusterHealthExposition(t *testing.T) {
	var b strings.Builder
	if err := clusterFixture().WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`massf_cluster_workers 3`,
		`massf_cluster_windows_total 4`,
		`massf_worker_gated_windows_total{worker="0"} 1`,
		`massf_worker_gated_windows_total{worker="1"} 2`,
		`massf_worker_critical_path_share{worker="1"} 0.75`,
		`massf_worker_heartbeat_rtt_seconds{worker="2"} 0.0015`,
		`massf_window_lag_seconds_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestClusterHealthHealthz(t *testing.T) {
	var b strings.Builder
	if err := clusterFixture().WriteHealthz(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
		Windows int64  `json:"windows"`
		Detail  []struct {
			Worker int     `json:"worker"`
			Gated  int64   `json:"gated_windows"`
			Share  float64 `json:"critical_path_share"`
			RTT    float64 `json:"heartbeat_rtt_seconds"`
		} `json:"worker_detail"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("healthz is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.Status != "ok" || doc.Workers != 3 || doc.Windows != 4 {
		t.Errorf("healthz summary = %+v, want ok/3 workers/4 windows", doc)
	}
	if len(doc.Detail) != 3 {
		t.Fatalf("worker_detail rows = %d, want 3 (two gating + one with RTT)", len(doc.Detail))
	}
	if d := doc.Detail[1]; d.Worker != 1 || d.Gated != 2 || d.Share != 0.75 {
		t.Errorf("worker 1 detail = %+v", d)
	}
	if d := doc.Detail[2]; d.Worker != 2 || d.RTT != 0.0015 {
		t.Errorf("worker 2 detail = %+v, want RTT 0.0015", d)
	}
}

// TestMountClusterEndpoints covers the coordinator-only deployment: no
// traffic-plane collector, health mounted on /metrics and /healthz.
func TestMountClusterEndpoints(t *testing.T) {
	mux := http.NewServeMux()
	MountCluster(nil, clusterFixture())(mux)
	get := func(path string) string {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
		return rec.Body.String()
	}
	if body := get("/metrics"); !strings.Contains(body, `massf_worker_critical_path_share{worker="1"} 0.75`) {
		t.Errorf("/metrics missing health families:\n%s", body)
	}
	if body := get("/healthz"); !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("/healthz body = %s", body)
	}
	if body := get("/trafficmatrix"); body != "{}\n" {
		t.Errorf("nil-collector /trafficmatrix = %q, want {}", body)
	}
}
