package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
)

// Mount returns a mux-mounting function for obs.ServeDebug that exposes the
// collector's traffic plane over HTTP:
//
//	/metrics        Prometheus text exposition of the registry
//	/trafficmatrix  JSON Snapshot (matrix, link totals, quantiles, timeline)
//
// Both endpoints serve the latest published barrier-time state; they are safe
// to hit while a run is live and return byte-identical bodies for identical
// completed runs. telemetry does not import obs (callers compose the two):
//
//	srv, addr, err := obs.ServeDebug(addr, telemetry.Mount(col))
func Mount(c *Collector) func(*http.ServeMux) {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if c == nil {
				return
			}
			_ = c.Metrics().WriteExposition(w)
		})
		mux.HandleFunc("/trafficmatrix", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteMatrixJSON(w, c.Snapshot())
		})
	}
}

// WriteMatrixJSON serializes a snapshot as indented JSON — the exact bytes
// the /trafficmatrix endpoint serves, factored out so cmd/massf's
// -matrix-out flag and the golden tests produce the same form. The Snapshot
// struct contains no maps, so encoding is deterministic.
func WriteMatrixJSON(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
