package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
)

// Mount returns a mux-mounting function for obs.ServeDebug that exposes the
// collector's traffic plane over HTTP:
//
//	/metrics        Prometheus text exposition of the registry
//	/trafficmatrix  JSON Snapshot (matrix, link totals, quantiles, timeline)
//
// Both endpoints serve the latest published barrier-time state; they are safe
// to hit while a run is live and return byte-identical bodies for identical
// completed runs. telemetry does not import obs (callers compose the two):
//
//	srv, addr, err := obs.ServeDebug(addr, telemetry.Mount(col))
func Mount(c *Collector) func(*http.ServeMux) {
	return MountCluster(c, nil)
}

// MountCluster is Mount plus the coordinator's cluster-health plane:
//
//	/metrics  traffic exposition followed by the ClusterHealth families
//	/healthz  machine-readable worker/straggler summary (JSON)
//
// Either argument may be nil — a nil collector serves an empty traffic plane
// (the coordinator-only deployment), a nil health drops /healthz and the
// extra /metrics families. The two registries render back-to-back in one
// body because a ServeMux allows only one /metrics handler.
func MountCluster(c *Collector, h *ClusterHealth) func(*http.ServeMux) {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if c != nil {
				_ = c.Metrics().WriteExposition(w)
			}
			if h != nil {
				_ = h.WriteExposition(w)
			}
		})
		mux.HandleFunc("/trafficmatrix", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if c == nil {
				_, _ = io.WriteString(w, "{}\n")
				return
			}
			_ = WriteMatrixJSON(w, c.Snapshot())
		})
		if h != nil {
			mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				_ = h.WriteHealthz(w)
			})
		}
	}
}

// WriteMatrixJSON serializes a snapshot as indented JSON — the exact bytes
// the /trafficmatrix endpoint serves, factored out so cmd/massf's
// -matrix-out flag and the golden tests produce the same form. The Snapshot
// struct contains no maps, so encoding is deterministic.
func WriteMatrixJSON(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
