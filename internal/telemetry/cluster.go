package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// ClusterHealth is the coordinator's live cluster-health signal: worker
// count, per-worker straggler attribution (gated-window counts and
// critical-path share from the tracing timeline), the window-lag histogram,
// and measured heartbeat round trips. It owns its own Registry — separate
// from the traffic-plane Collector's, whose instrument set is rebuilt per
// run — so MountCluster can append its exposition to /metrics and serve a
// machine-readable /healthz.
//
// Everything except the RTT gauges derives from the deterministic modeled
// timeline; RTTs are wall-clock by nature and only exist while heartbeat
// probing is active.
type ClusterHealth struct {
	mu  sync.Mutex
	reg *Registry

	workers Value
	windows Value
	lagHist HistValue
	lag     *metrics.Histogram

	gated map[int]Value
	share map[int]Value
	rtt   map[int]Value

	// summary mirrors the gauge state for Healthz.
	nWorkers int
	nWindows int64
	gatedN   map[int]int64
	shareV   map[int]float64
	rttV     map[int]float64
}

// NewClusterHealth returns an empty cluster-health registry.
func NewClusterHealth() *ClusterHealth {
	h := &ClusterHealth{
		reg:    NewRegistry(),
		gated:  make(map[int]Value),
		share:  make(map[int]Value),
		rtt:    make(map[int]Value),
		gatedN: make(map[int]int64),
		shareV: make(map[int]float64),
		rttV:   make(map[int]float64),
	}
	h.workers = h.reg.Gauge("massf_cluster_workers",
		"Workers currently active in the distributed run.")
	h.windows = h.reg.Counter("massf_cluster_windows_total",
		"Synchronization windows committed by the coordinator.")
	h.lagHist = h.reg.Histogram("massf_window_lag_seconds",
		"Per-window modeled gap between the gating worker and the runner-up.")
	h.lag = metrics.MustLogHistogram(1e-9, 1e3, 4)
	return h
}

// Registry exposes the underlying registry (rendered by WriteExposition).
func (h *ClusterHealth) Registry() *Registry { return h.reg }

// WriteExposition renders the cluster families in the Prometheus text
// format.
func (h *ClusterHealth) WriteExposition(w io.Writer) error {
	return h.reg.WriteExposition(w)
}

// SetWorkers records the active worker count.
func (h *ClusterHealth) SetWorkers(n int) {
	h.mu.Lock()
	h.nWorkers = n
	h.mu.Unlock()
	h.workers.Set(float64(n))
}

func workerLabel(w int) Label { return Label{"worker", strconv.Itoa(w)} }

// ObserveWindow accounts one committed window: the gating worker's
// gated-window counter bumps and the lag histogram absorbs the gap to the
// runner-up. worker < 0 (an all-idle window) only counts the window.
func (h *ClusterHealth) ObserveWindow(worker int, lag float64) {
	h.mu.Lock()
	h.nWindows++
	var gv Value
	haveG := false
	if worker >= 0 {
		h.gatedN[worker]++
		var ok bool
		if gv, ok = h.gated[worker]; !ok {
			gv = h.reg.Counter("massf_worker_gated_windows_total",
				"Windows this worker's engines gated (held the critical path).",
				workerLabel(worker))
			h.gated[worker] = gv
		}
		haveG = true
		h.lag.Observe(lag)
	}
	h.mu.Unlock()

	h.windows.Add(1)
	if haveG {
		gv.Add(1)
		h.lagHist.Set(h.lag)
	}
}

// SetAttribution replaces the per-worker critical-path share gauges with the
// timeline's current attribution.
func (h *ClusterHealth) SetAttribution(health []obs.WorkerHealth) {
	h.mu.Lock()
	type upd struct {
		v Value
		x float64
	}
	ups := make([]upd, 0, len(health))
	for _, wh := range health {
		v, ok := h.share[wh.Worker]
		if !ok {
			v = h.reg.Gauge("massf_worker_critical_path_share",
				"Fraction of the run's modeled critical path attributed to this worker.",
				workerLabel(wh.Worker))
			h.share[wh.Worker] = v
		}
		h.shareV[wh.Worker] = wh.Share
		ups = append(ups, upd{v, wh.Share})
	}
	h.mu.Unlock()
	for _, u := range ups {
		u.v.Set(u.x)
	}
}

// ObserveRTT records a measured heartbeat PING→PONG round trip for a worker.
func (h *ClusterHealth) ObserveRTT(worker int, rtt time.Duration) {
	s := rtt.Seconds()
	h.mu.Lock()
	v, ok := h.rtt[worker]
	if !ok {
		v = h.reg.Gauge("massf_worker_heartbeat_rtt_seconds",
			"Last measured heartbeat round-trip time to this worker.",
			workerLabel(worker))
		h.rtt[worker] = v
	}
	h.rttV[worker] = s
	h.mu.Unlock()
	v.Set(s)
}

// healthzWorker is one worker's row in the /healthz document.
type healthzWorker struct {
	Worker            int     `json:"worker"`
	GatedWindows      int64   `json:"gated_windows"`
	CriticalPathShare float64 `json:"critical_path_share"`
	HeartbeatRTT      float64 `json:"heartbeat_rtt_seconds,omitempty"`
}

// healthzDoc is the /healthz body.
type healthzDoc struct {
	Status  string          `json:"status"`
	Workers int             `json:"workers"`
	Windows int64           `json:"windows"`
	Detail  []healthzWorker `json:"worker_detail,omitempty"`
}

// WriteHealthz renders a machine-readable health summary: active worker
// count, committed windows, and the per-worker attribution rows sorted by
// worker id.
func (h *ClusterHealth) WriteHealthz(w io.Writer) error {
	h.mu.Lock()
	doc := healthzDoc{Status: "ok", Workers: h.nWorkers, Windows: h.nWindows}
	ids := make([]int, 0, len(h.gatedN)+len(h.rttV))
	seen := make(map[int]bool)
	for id := range h.gatedN {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	for id := range h.rttV {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		doc.Detail = append(doc.Detail, healthzWorker{
			Worker:            id,
			GatedWindows:      h.gatedN[id],
			CriticalPathShare: h.shareV[id],
			HeartbeatRTT:      h.rttV[id],
		})
	}
	h.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}
