package telemetry

import (
	"reflect"
	"testing"
)

func observeSome(c *Collector) {
	c.ObserveNode(0, -1, 0, 5, 0.1)
	c.ObserveNode(1, 0, 0, 5, 0.2)
	c.ObserveNode(2, 1, 1, 7, 0.3)
	c.ObserveNode(3, 2, 0, 2, 4.5)
	c.ObserveForward(0, 1, 0, 0, 3000, 3, 0.5e-3)
	c.ObserveForward(1, 0, 1, 1, 500, 1, 0)
	c.ObserveForward(1, 1, 2, 0, 800, 2, 0)
}

func TestToProfileIntoMatchesToProfile(t *testing.T) {
	c := sizedCollector()
	observeSome(c)
	want := c.ToProfile()
	got := c.ToProfileInto(nil)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("ToProfileInto(nil) = %+v, ToProfile = %+v", got, want)
	}
	// Reuse after new observations must fully overwrite the old contents,
	// including stale link entries.
	c.ObserveNode(1, 0, 0, 100, 1.0)
	got = c.ToProfileInto(got)
	want = c.ToProfile()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reused ToProfileInto = %+v, ToProfile = %+v", got, want)
	}
}

func TestToProfileIntoSteadyStateAllocFree(t *testing.T) {
	c := sizedCollector()
	observeSome(c)
	s := c.ToProfileInto(nil)
	allocs := testing.AllocsPerRun(100, func() {
		s = c.ToProfileInto(s)
	})
	if allocs > 0 {
		t.Fatalf("steady-state ToProfileInto allocates %.1f per call", allocs)
	}
	var nil2 *Collector
	if nil2.ToProfileInto(s) != nil {
		t.Fatal("nil collector should export a nil profile")
	}
}

func TestNodePacketTotalsAndEngineTrafficVector(t *testing.T) {
	c := sizedCollector()
	observeSome(c)
	nodes := c.NodePacketTotals(nil)
	if want := []int64{5, 5, 7, 2}; !reflect.DeepEqual(nodes, want) {
		t.Fatalf("NodePacketTotals = %v, want %v", nodes, want)
	}
	// Row 0 exchanged 3000 with engine 1 (outbound) plus 500 inbound from
	// engine 1; intra-engine volume is the diagonal only.
	row0 := c.EngineTrafficVector(0, nil)
	if want := []int64{0, 3500}; !reflect.DeepEqual(row0, want) {
		t.Fatalf("EngineTrafficVector(0) = %v, want %v", row0, want)
	}
	row1 := c.EngineTrafficVector(1, nil)
	if want := []int64{3500, 800}; !reflect.DeepEqual(row1, want) {
		t.Fatalf("EngineTrafficVector(1) = %v, want %v", row1, want)
	}
	allocs := testing.AllocsPerRun(100, func() {
		nodes = c.NodePacketTotals(nodes)
		row0 = c.EngineTrafficVector(0, row0)
	})
	if allocs > 0 {
		t.Fatalf("steady-state accessors allocate %.1f per call", allocs)
	}
	if got := c.EngineTrafficVector(5, row0); len(got) != 0 {
		t.Fatalf("out-of-range engine returned %v", got)
	}
}
