package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sizedCollector() *Collector {
	c := New()
	c.Reset(Dims{Engines: 2, Nodes: 4, Links: 3, Duration: 8, BucketWidth: 2})
	return c
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	c.Commit(0, 1, []int64{1, 2})
	c.Finish(1)
	c.Restore(nil)
	if cp := c.Checkpoint(); cp != nil {
		t.Fatal("nil checkpoint not nil")
	}
	if s := c.Snapshot(); s == nil || s.Engines != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if p := c.ToProfile(); p != nil {
		t.Fatal("nil profile not nil")
	}
}

func TestUnsizedCommitIgnored(t *testing.T) {
	c := New()
	c.Commit(0, 1, []int64{5})
	c.Finish(1)
	if s := c.Snapshot(); s.Windows != 0 {
		t.Fatalf("unsized collector committed windows: %+v", s)
	}
}

func TestMatrixAndSnapshot(t *testing.T) {
	c := sizedCollector()
	// Engine 0 sends 3 packets / 3000 bytes to engine 1 over link 0 dir 0,
	// and 1 packet / 500 bytes to itself over link 1 dir 1.
	c.ObserveForward(0, 1, 0, 0, 3000, 3, 0.5e-3)
	c.ObserveForward(0, 0, 1, 1, 500, 1, 0)
	c.ObserveFlowComplete(1, 0.25)
	c.ObserveDrop(0, 2)
	c.Commit(0, 1, []int64{10, 30})
	c.Finish(8)

	s := c.Snapshot()
	if s.MatrixBytes[0][1] != 3000 || s.MatrixBytes[0][0] != 500 {
		t.Fatalf("matrix bytes = %v", s.MatrixBytes)
	}
	if s.MatrixPackets[0][1] != 3 {
		t.Fatalf("matrix packets = %v", s.MatrixPackets)
	}
	if s.CrossEngineBytes != 3000 || s.TotalBytes != 3500 {
		t.Fatalf("cross=%d total=%d", s.CrossEngineBytes, s.TotalBytes)
	}
	if s.LinkTxBytes[0] != 3000 || s.LinkTxBytes[1] != 500 || s.LinkTxBytes[2] != 0 {
		t.Fatalf("link tx bytes = %v", s.LinkTxBytes)
	}
	if s.FlowsCompleted != 1 || s.DroppedPackets != 2 {
		t.Fatalf("flows=%d drops=%d", s.FlowsCompleted, s.DroppedPackets)
	}
	if s.EngineCharges[0] != 10 || s.EngineCharges[1] != 30 {
		t.Fatalf("charges = %v", s.EngineCharges)
	}
	if s.Imbalance <= 0 {
		t.Fatalf("imbalance = %g, want > 0 for uneven charges", s.Imbalance)
	}
	if s.FCTP50 <= 0 {
		t.Fatalf("fct p50 = %g", s.FCTP50)
	}
	if s.VirtualTime != 8 || s.Windows != 1 {
		t.Fatalf("vt=%g windows=%d", s.VirtualTime, s.Windows)
	}
}

func TestSnapshotIsolatedFromLiveState(t *testing.T) {
	c := sizedCollector()
	c.ObserveForward(0, 1, 0, 0, 100, 1, 0)
	c.Commit(0, 1, []int64{1, 1})
	s := c.Snapshot()
	// Mutating hot state after the snapshot must not leak into it.
	c.ObserveForward(0, 1, 0, 0, 900, 9, 0)
	if s.MatrixBytes[0][1] != 100 {
		t.Fatalf("snapshot aliased live state: %v", s.MatrixBytes)
	}
	// And a snapshot without a new Commit still serves barrier-time data.
	if got := c.Snapshot().MatrixBytes[0][1]; got != 100 {
		t.Fatalf("unpublished data leaked: %d", got)
	}
}

func TestTimelineWindows(t *testing.T) {
	c := sizedCollector() // BucketWidth 2, Duration 8
	c.ObserveForward(0, 1, 0, 0, 1000, 1, 0)
	c.Commit(0, 1, []int64{4, 4})
	c.Commit(1, 2.5, []int64{4, 4}) // crosses the 2s boundary
	c.ObserveForward(1, 0, 0, 1, 500, 1, 0)
	c.Commit(2.5, 5, []int64{2, 6}) // crosses 4s
	c.Finish(8)

	s := c.Snapshot()
	if len(s.Timeline) != 2 {
		t.Fatalf("timeline = %+v, want exactly the 2 non-idle windows", s.Timeline)
	}
	if s.Timeline[0].Time != 2 || s.Timeline[0].CrossEngineBytes != 1000 {
		t.Fatalf("window 0 = %+v", s.Timeline[0])
	}
	if s.Timeline[0].Imbalance != 0 {
		t.Fatalf("balanced window imbalance = %g", s.Timeline[0].Imbalance)
	}
	if s.Timeline[1].Time != 4 || s.Timeline[1].CrossEngineBytes != 500 {
		t.Fatalf("window 1 = %+v", s.Timeline[1])
	}
	if s.Timeline[1].Imbalance <= 0 {
		t.Fatalf("uneven window imbalance = %g", s.Timeline[1].Imbalance)
	}
	// Total across the timeline covers all traffic exactly once.
	var cross int64
	for _, p := range s.Timeline {
		cross += p.CrossEngineBytes
	}
	if cross != 1500 {
		t.Fatalf("timeline cross bytes sum = %d, want 1500", cross)
	}
}

func TestToProfileShape(t *testing.T) {
	c := sizedCollector()
	c.ObserveNode(0, -1, 0, 5, 0.1) // source host: no rx link
	c.ObserveNode(1, 0, 0, 5, 0.2)  // router receives over link 0 dir 0
	c.ObserveNode(2, 1, 1, 5, 0.3)  // next hop over link 1 dir 1
	sum := c.ToProfile()
	if sum.NodePackets[0] != 5 || sum.NodePackets[1] != 5 || sum.NodePackets[2] != 5 {
		t.Fatalf("node packets = %v", sum.NodePackets)
	}
	if sum.LinkPackets[0] != 5 || sum.LinkPackets[1] != 5 {
		t.Fatalf("link packets = %v", sum.LinkPackets)
	}
	if _, ok := sum.LinkPackets[2]; ok {
		t.Fatal("idle link present in profile")
	}
	if sum.NodeSeries.Buckets() != 5 || sum.NodeSeries.Nodes() != 4 {
		t.Fatalf("series %dx%d", sum.NodeSeries.Buckets(), sum.NodeSeries.Nodes())
	}
	if sum.NodeSeries.Loads[0][1] != 5 {
		t.Fatalf("series bucket 0 = %v", sum.NodeSeries.Loads[0])
	}
	// The profile must be detached from the live series.
	c.ObserveNode(1, 0, 0, 100, 0.2)
	if sum.NodeSeries.Loads[0][1] != 5 {
		t.Fatal("profile aliases live series")
	}
}

func TestCheckpointRestore(t *testing.T) {
	c := sizedCollector()
	c.ObserveNode(1, 0, 0, 7, 0.5)
	c.ObserveForward(0, 1, 0, 0, 700, 7, 1e-3)
	c.Commit(0, 1, []int64{3, 3})
	cp := c.Checkpoint()

	// Diverge: traffic that a crash will force us to replay.
	c.ObserveNode(1, 0, 0, 9, 1.5)
	c.ObserveForward(0, 1, 0, 0, 900, 9, 2e-3)
	c.ObserveFlowComplete(1, 0.5)
	c.ObserveDrop(0, 1)
	c.Commit(1, 3, []int64{5, 5})

	c.Restore(cp)
	c.Finish(8)
	s := c.Snapshot()
	if s.MatrixBytes[0][1] != 700 || s.MatrixPackets[0][1] != 7 {
		t.Fatalf("restore left matrix %v / %v", s.MatrixBytes, s.MatrixPackets)
	}
	if s.FlowsCompleted != 0 || s.DroppedPackets != 0 {
		t.Fatalf("restore left flows=%d drops=%d", s.FlowsCompleted, s.DroppedPackets)
	}
	if s.EngineCharges[0] != 3 {
		t.Fatalf("restore left charges %v", s.EngineCharges)
	}
	p := c.ToProfile()
	if p.NodePackets[1] != 7 || p.LinkPackets[0] != 7 {
		t.Fatalf("restore left profile node=%v link=%v", p.NodePackets, p.LinkPackets)
	}
	// The checkpoint must survive a second restore (rollback twice).
	c.ObserveNode(1, 0, 0, 11, 1.5)
	c.Restore(cp)
	if c.ToProfile().NodePackets[1] != 7 {
		t.Fatal("checkpoint mutated by restore")
	}
}

func TestHotPathNoAllocs(t *testing.T) {
	c := sizedCollector()
	allocs := testing.AllocsPerRun(200, func() {
		c.ObserveNode(1, 0, 0, 3, 0.5)
		c.ObserveForward(0, 1, 0, 0, 300, 3, 1e-4)
		c.ObserveFlowComplete(1, 0.1)
		c.ObserveDrop(0, 1)
	})
	if allocs > 0 {
		t.Fatalf("hot path allocated %.1f/run, want 0", allocs)
	}
}

func TestRegistryExposition(t *testing.T) {
	c := sizedCollector()
	c.ObserveForward(0, 1, 0, 0, 1000, 2, 0.5e-3)
	c.ObserveFlowComplete(1, 0.25)
	c.Commit(0, 2.5, []int64{8, 4})
	c.Finish(8)

	var b strings.Builder
	if err := c.Metrics().WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE massf_traffic_matrix_bytes_total counter",
		`massf_traffic_matrix_bytes_total{dst="1",src="0"} 1000`,
		"massf_cross_engine_bytes_total 1000",
		"massf_virtual_time_seconds 8",
		"massf_windows_total 1",
		`massf_engine_charges_total{engine="0"} 8`,
		"# TYPE massf_flow_completion_seconds histogram",
		"massf_flow_completion_seconds_count 1",
		`massf_flow_completion_seconds_bucket{le="+Inf"} 1`,
		"massf_queue_delay_seconds_sum 0.0005",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n----\n%s", want, out)
		}
	}

	// Deterministic: a second render is byte-identical.
	var b2 strings.Builder
	if err := c.Metrics().WriteExposition(&b2); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Error("two renders of the same registry differ")
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "h", Label{"k", `a"b\c` + "\n"}).Set(1)
	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	want := `g{k="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped label missing %q in %q", want, b.String())
	}
}

func TestRegistryReuseSameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h", Label{"x", "1"})
	b := r.Counter("c", "h", Label{"x", "1"})
	a.Add(2)
	b.Add(3)
	if got := a.Get(); got != 5 {
		t.Fatalf("re-registered handle diverged: %g", got)
	}
}

func TestExpositionReportsNaNObservations(t *testing.T) {
	c := sizedCollector()
	c.ObserveFlowComplete(1, math.NaN())
	c.ObserveFlowComplete(1, 0.25)
	c.Commit(0, 2.5, []int64{8, 4})
	c.Finish(8)

	var b strings.Builder
	if err := c.Metrics().WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The NaN is quarantined — surfaced as its own series, excluded from the
	// real count so the mean/quantiles stay honest.
	for _, want := range []string{
		"massf_flow_completion_seconds_nan_count 1",
		"massf_flow_completion_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n----\n%s", want, out)
		}
	}
	if strings.Contains(out, "massf_queue_delay_seconds_nan_count") {
		t.Error("_nan_count emitted for a histogram that never saw NaN")
	}

	// Golden stability: a clean collector must not grow _nan_count lines.
	clean := sizedCollector()
	clean.ObserveFlowComplete(1, 0.25)
	clean.Commit(0, 2.5, []int64{8, 4})
	clean.Finish(8)
	var cb strings.Builder
	if err := clean.Metrics().WriteExposition(&cb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cb.String(), "_nan_count") {
		t.Error("NaN-free run emitted _nan_count series")
	}
}

// TestPartialExportInstallEquivalence is the distributed-telemetry contract:
// two workers with disjoint engines, merged via ExportPartial/InstallPartials
// on a coordinator, must publish the identical snapshot and exposition as one
// collector that saw every observation locally.
func TestPartialExportInstallEquivalence(t *testing.T) {
	observeEngine0 := func(c *Collector) {
		c.ObserveForward(0, 1, 0, 0, 1000, 2, 0.5e-3) // engine 0's matrix row + link 0 tx
		c.ObserveNode(0, 0, 1, 2, 0.5)
		c.ObserveFlowComplete(0, 0.125)
		c.ObserveDrop(0, 1)
	}
	observeEngine1 := func(c *Collector) {
		c.ObserveForward(1, 0, 1, 1, 500, 1, 0.25e-3)
		c.ObserveNode(2, 1, 0, 1, 1.5)
		c.ObserveFlowComplete(1, 0.5)
	}
	charges := []int64{8, 4}

	// Reference: one collector sees everything.
	ref := sizedCollector()
	observeEngine0(ref)
	observeEngine1(ref)
	ref.Commit(0, 2.5, charges)
	ref.Finish(8)

	// Distributed: each worker only its own engines, never committing.
	w0 := sizedCollector()
	observeEngine0(w0)
	w1 := sizedCollector()
	observeEngine1(w1)
	coord := sizedCollector()
	if err := coord.InstallPartials([]*Partial{
		w0.ExportPartial([]int{0}, true),
		w1.ExportPartial([]int{1}, true),
	}); err != nil {
		t.Fatal(err)
	}
	coord.Commit(0, 2.5, charges)
	coord.Finish(8)

	wantSnap, err := json.Marshal(ref.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	gotSnap, err := json.Marshal(coord.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantSnap, gotSnap) {
		t.Fatalf("merged snapshot diverges:\nwant %s\n got %s", wantSnap, gotSnap)
	}

	var wantExp, gotExp strings.Builder
	if err := ref.Metrics().WriteExposition(&wantExp); err != nil {
		t.Fatal(err)
	}
	if err := coord.Metrics().WriteExposition(&gotExp); err != nil {
		t.Fatal(err)
	}
	if wantExp.String() != gotExp.String() {
		t.Fatal("merged exposition diverges from the single-collector run")
	}
}

func TestInstallPartialsRejectsBadShapes(t *testing.T) {
	c := sizedCollector()
	if err := c.InstallPartials([]*Partial{{Engines: []int{5}, MatrixBytes: make([]int64, 2), MatrixPackets: make([]int64, 2)}}); err == nil {
		t.Fatal("out-of-range engine must be rejected")
	}
	if err := c.InstallPartials([]*Partial{{Engines: []int{0}, MatrixBytes: make([]int64, 1), MatrixPackets: make([]int64, 1)}}); err == nil {
		t.Fatal("short matrix row must be rejected")
	}
	if err := c.InstallPartials([]*Partial{nil}); err != nil {
		t.Fatalf("nil partial must be skipped, got %v", err)
	}
}
