package telemetry_test

// Golden-file tests for the two HTTP surfaces: the Prometheus text
// exposition and the /trafficmatrix JSON. An external test package so a real
// emulation (internal/emu) can drive the collector without an import cycle.
//
// The rendered bytes are part of the determinism contract — identical runs
// must publish byte-identical documents, and the documents themselves are
// pinned against testdata/*.golden. Regenerate with
//
//	go test ./internal/telemetry -run Golden -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/emu"
	"repro/internal/netgraph"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenRun drives a fixed two-engine emulation: a 4-node line network with
// staggered flows in both directions, long enough to exercise drops, several
// measurement windows, and off-diagonal matrix entries.
func goldenRun(t *testing.T) *telemetry.Collector {
	t.Helper()
	nw := netgraph.New("golden-line")
	h0 := nw.AddHost("h0", 1)
	r0 := nw.AddRouter("r0", 1)
	r1 := nw.AddRouter("r1", 1)
	h1 := nw.AddHost("h1", 1)
	nw.AddLink(h0, r0, 100e6, 1e-3)
	nw.AddLink(r0, r1, 1e9, 1e-3)
	nw.AddLink(r1, h1, 100e6, 1e-3)

	w := traffic.Workload{Duration: 8}
	for i := 0; i < 6; i++ {
		src, dst := 0, 3
		if i%2 == 1 {
			src, dst = 3, 0
		}
		w.Flows = append(w.Flows, traffic.Flow{
			ID: i, Src: src, Dst: dst, Start: 0.5 * float64(i), Bytes: 50 << 10, Tag: "g",
		})
	}

	tel := telemetry.New()
	if _, err := emu.Run(emu.Config{
		Network:    nw,
		Assignment: []int{0, 0, 1, 1},
		NumEngines: 2,
		Workload:   w,
		Sequential: true,
	}, emu.WithTelemetry(tel)); err != nil {
		t.Fatal(err)
	}
	return tel
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file (rerun with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenExposition(t *testing.T) {
	render := func() []byte {
		var b bytes.Buffer
		if err := goldenRun(t).Metrics().WriteExposition(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	first := render()
	if !bytes.Equal(first, render()) {
		t.Fatal("identical runs rendered different expositions")
	}
	checkGolden(t, "metrics.golden", first)
}

func TestGoldenTrafficMatrixJSON(t *testing.T) {
	render := func() []byte {
		var b bytes.Buffer
		if err := telemetry.WriteMatrixJSON(&b, goldenRun(t).Snapshot()); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	first := render()
	if !bytes.Equal(first, render()) {
		t.Fatal("identical runs rendered different matrix JSON")
	}
	checkGolden(t, "trafficmatrix.golden", first)
}
