package core

import (
	"context"
	"reflect"
	"testing"
)

func dynamicPolicyScenario(p RemapPolicy) *Scenario {
	sc := dynamicScenario()
	sc.Remap = p
	return sc
}

// The tentpole acceptance: on the bursty GridNPB workload the game policy
// converges (non-increasing payoff per round, fixed point or round cap) and
// lands cross-engine traffic no worse than from-scratch PROFILE remapping
// while migrating strictly fewer nodes.
func TestRunDynamicGameConvergesAndBeatsProfileOnMigrations(t *testing.T) {
	game, err := dynamicPolicyScenario(RemapGame).RunDynamic(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := dynamicPolicyScenario(RemapProfile).RunDynamic(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}

	sawRemap := false
	for i, s := range game.Segments {
		if s.Remap == nil {
			continue
		}
		sawRemap = true
		if s.Remap.Policy != RemapGame {
			t.Fatalf("segment %d ran policy %q", i, s.Remap.Policy)
		}
		if s.Remap.Rounds == 0 || len(s.Remap.Payoffs) != s.Remap.Rounds+1 {
			t.Fatalf("segment %d: rounds %d with %d payoff entries", i, s.Remap.Rounds, len(s.Remap.Payoffs))
		}
		if !s.Remap.Converged && s.Remap.Rounds < 64 {
			t.Fatalf("segment %d stopped at round %d without converging", i, s.Remap.Rounds)
		}
		for r := 1; r < len(s.Remap.Payoffs); r++ {
			if s.Remap.Payoffs[r] > s.Remap.Payoffs[r-1]+1e-9 {
				t.Fatalf("segment %d: payoff increased at round %d: %g -> %g",
					i, r, s.Remap.Payoffs[r-1], s.Remap.Payoffs[r])
			}
		}
	}
	if !sawRemap {
		t.Fatal("no segment recorded game remap stats")
	}

	if game.Migrations >= profile.Migrations {
		t.Fatalf("game migrated %d nodes, from-scratch PROFILE %d — want strictly fewer",
			game.Migrations, profile.Migrations)
	}
	if game.CrossEngineBytes > profile.CrossEngineBytes {
		t.Fatalf("game cross-engine bytes %d exceed PROFILE remap's %d",
			game.CrossEngineBytes, profile.CrossEngineBytes)
	}
}

// Determinism gate: the same scenario and seed must reproduce the assignment
// sequence exactly, segment by segment.
func TestRunDynamicGameDeterministic(t *testing.T) {
	a, err := dynamicPolicyScenario(RemapGame).RunDynamic(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dynamicPolicyScenario(RemapGame).RunDynamic(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Segments) != len(b.Segments) {
		t.Fatalf("segment counts diverged: %d vs %d", len(a.Segments), len(b.Segments))
	}
	for i := range a.Segments {
		if !reflect.DeepEqual(a.Segments[i].Assignment, b.Segments[i].Assignment) {
			t.Fatalf("segment %d assignments diverged across identical runs", i)
		}
		if !reflect.DeepEqual(a.Segments[i].Remap, b.Segments[i].Remap) {
			t.Fatalf("segment %d remap stats diverged across identical runs", i)
		}
	}
	if a.Migrations != b.Migrations || a.Imbalance != b.Imbalance {
		t.Fatal("totals diverged across identical runs")
	}
}

func TestRunDynamicDiffusionPolicyRuns(t *testing.T) {
	res, err := dynamicPolicyScenario(RemapDiffusion).RunDynamic(context.Background(), 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Segments {
		if s.Remap != nil && s.Remap.Policy != RemapDiffusion {
			t.Fatalf("segment %d ran policy %q", i, s.Remap.Policy)
		}
	}
}

func TestRemapPolicyResolution(t *testing.T) {
	if _, err := ParseRemapPolicy("nope"); err == nil {
		t.Error("bad policy accepted")
	}
	for _, p := range RemapPolicies() {
		got, err := ParseRemapPolicy(string(p))
		if err != nil || got != p {
			t.Errorf("ParseRemapPolicy(%q) = %q, %v", p, got, err)
		}
	}
	sc := &Scenario{}
	if p, _ := sc.remapPolicy(); p != RemapProfile {
		t.Errorf("default policy = %q", p)
	}
	sc.IncrementalRemap = true
	if p, _ := sc.remapPolicy(); p != RemapIncremental {
		t.Errorf("legacy IncrementalRemap resolved to %q", p)
	}
	sc.Remap = RemapGame
	if p, _ := sc.remapPolicy(); p != RemapGame {
		t.Errorf("explicit policy resolved to %q", p)
	}
	sc.Remap = "bogus"
	if _, err := sc.remapPolicy(); err == nil {
		t.Error("bogus scenario policy accepted")
	}
	bad := dynamicScenario()
	bad.Remap = "bogus"
	if _, err := bad.RunDynamic(context.Background(), 10, 0); err == nil {
		t.Error("RunDynamic accepted a bogus policy")
	}
}
