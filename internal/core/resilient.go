package core

import (
	"context"
	"fmt"

	"repro/internal/emu"
	"repro/internal/faults"
	"repro/internal/mapping"
)

// Fault-tolerant execution — the robustness counterpart of the paper's §6
// remapping conclusion: a real 24-node cluster loses and degrades engine
// nodes mid-run, and a partition that was balanced for k engines is neither
// valid nor balanced for the k-1 that survive a crash. RunResilient drives
// the emulator with a deterministic fault schedule; when an engine dies, the
// emulator rolls back to its last barrier checkpoint and asks this layer for
// a recovery assignment, which reuses the same mapping/partition machinery
// as dynamic remapping — with reduced k and the dynamic-remap migration-cost
// model pricing every node that changes engines.

// FaultOptions configures a resilient run.
type FaultOptions struct {
	// Schedule is the deterministic fault schedule. Required (it may be
	// crash-free: stragglers and degradations alone need no recovery).
	Schedule *faults.Schedule
	// CheckpointEvery is the barrier-checkpoint interval in virtual seconds
	// (default emu.DefaultCheckpointEvery).
	CheckpointEvery float64
	// MigrationCost is the modeled stall per migrated node (default
	// DefaultMigrationCost, shared with RunDynamic).
	MigrationCost float64
	// Approach selects the initial mapping (default TOP; PROFILE runs its
	// profiling pre-run as usual).
	Approach mapping.Approach
	// Naive disables partitioner-based recovery: the dead engine's nodes
	// are dumped onto the least-loaded survivor wholesale. It exists as the
	// baseline that remapping must beat.
	Naive bool
}

// ResilientOutcome reports a resilient run.
type ResilientOutcome struct {
	Approach mapping.Approach
	// InitialAssignment is the pre-failure mapping.
	InitialAssignment []int
	// FinalAssignment is the mapping after the last recovery (equal to
	// InitialAssignment if nothing crashed).
	FinalAssignment []int
	// Result is the emulation result; Result.Recovery carries downtime,
	// re-emulated events, migrations, and pre/post-failure imbalance.
	Result *emu.Result
	// ProfileRun is the profiling pre-run (PROFILE approach only).
	ProfileRun *emu.Result
}

// Recovery returns the fault-handling summary (nil for crash-free runs).
func (o *ResilientOutcome) Recovery() *emu.Recovery { return o.Result.Recovery }

// NaiveRecovery dumps every node of the dead engine onto the least-loaded
// survivor — the fallback RunResilient's remapping is measured against.
func NaiveRecovery(f emu.EngineFailure) []int {
	target := -1
	for e, ok := range f.Alive {
		if !ok {
			continue
		}
		if target < 0 || f.Loads[e] < f.Loads[target] ||
			(f.Loads[e] == f.Loads[target] && e < target) {
			target = e
		}
	}
	next := append([]int(nil), f.Assignment...)
	for v, e := range next {
		if e == f.Engine {
			next[v] = target
		}
	}
	return next
}

// RunResilient executes the scenario under a fault schedule: partition with
// the chosen approach, emulate with fault injection, and on each engine
// crash recover by remapping the dead engine's virtual nodes across the
// survivors (or naively, when opts.Naive). Cancellation of ctx is observed
// at window barriers.
func (sc *Scenario) RunResilient(ctx context.Context, opts FaultOptions) (*ResilientOutcome, error) {
	if opts.Schedule == nil {
		return nil, fmt.Errorf("core: RunResilient needs a fault schedule (use Run for fault-free execution)")
	}
	approach := opts.Approach
	if approach == "" {
		approach = mapping.Top
	}
	part, profRun, err := sc.Partition(ctx, approach)
	if err != nil {
		return nil, err
	}
	w, err := sc.Workload()
	if err != nil {
		return nil, err
	}

	onCrash := func(f emu.EngineFailure) ([]int, error) {
		if opts.Naive {
			return NaiveRecovery(f), nil
		}
		var survivors []int
		for e, ok := range f.Alive {
			if ok {
				survivors = append(survivors, e)
			}
		}
		in, err := sc.mappingInput()
		if err != nil {
			return nil, err
		}
		next, _, err := mapping.RemapSurvivors(in, f.Assignment, survivors, f.Loads)
		return next, err
	}

	runOpts := sc.runOptions(ctx)
	if tel := sc.newTelemetry(); tel != nil {
		runOpts = append(runOpts, emu.WithTelemetry(tel))
	}
	routes, err := sc.Routes()
	if err != nil {
		return nil, err
	}
	res, err := emu.Run(emu.Config{
		Network:         sc.Network,
		Routes:          routes,
		Assignment:      part,
		NumEngines:      sc.Engines,
		Workload:        w,
		Cost:            sc.Cost,
		EndTime:         sc.EndTime,
		Transport:       sc.Transport,
		EngineSpeeds:    sc.EngineSpeeds,
		Sequential:      sc.Sequential,
		Faults:          opts.Schedule,
		CheckpointEvery: opts.CheckpointEvery,
		MigrationCost:   opts.MigrationCost,
		OnCrash:         onCrash,
	}, runOpts...)
	if err != nil {
		return nil, fmt.Errorf("core: resilient %s on %s: %w", approach, sc.Name, err)
	}
	return &ResilientOutcome{
		Approach:          approach,
		InitialAssignment: part,
		FinalAssignment:   res.FinalAssignment,
		Result:            res,
		ProfileRun:        profRun,
	}, nil
}
