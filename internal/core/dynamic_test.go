package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/mapping"
	"repro/internal/topogen"
	"repro/internal/traffic"
)

// dynamicScenario uses GridNPB — bursty, phase-shifting traffic, the case
// the paper's §6 says static partitions fundamentally cannot handle.
func dynamicScenario() *Scenario {
	return &Scenario{
		Name:       "dynamic-test",
		Network:    topogen.Campus(),
		Engines:    3,
		Background: traffic.DefaultHTTP(40, 3),
		App:        apps.GridNPB{NumHosts: 10, Duration: 40},
		AppSeed:    2,
		PartSeed:   5,
	}
}

func TestRunDynamicValidation(t *testing.T) {
	sc := dynamicScenario()
	if _, err := sc.RunDynamic(context.Background(), 0, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestRunDynamicSegments(t *testing.T) {
	sc := dynamicScenario()
	res, err := sc.RunDynamic(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 4 {
		t.Fatalf("segments = %d, want 4", len(res.Segments))
	}
	if res.Segments[0].Migrations != 0 {
		t.Error("first segment cannot have migrations")
	}
	var flows int
	for _, s := range res.Segments {
		flows += s.Flows
	}
	w, _ := sc.Workload()
	if flows != len(w.Flows) {
		t.Errorf("segments carry %d flows, workload has %d", flows, len(w.Flows))
	}
	if res.AppTime <= 0 || res.NetTime <= 0 {
		t.Error("times not accumulated")
	}
}

func TestRunDynamicRemapsAndCharges(t *testing.T) {
	sc := dynamicScenario()
	free, err := sc.RunDynamic(context.Background(), 10, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	costly, err := dynamicScenario().RunDynamic(context.Background(), 10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if free.Migrations != costly.Migrations {
		t.Fatalf("migration counts differ: %d vs %d", free.Migrations, costly.Migrations)
	}
	if free.Migrations > 0 {
		wantExtra := float64(free.Migrations) * 1.0
		got := costly.AppTime - free.AppTime
		if got < wantExtra*0.9 {
			t.Errorf("migration cost not charged: extra %.2f, want ~%.2f", got, wantExtra)
		}
	}
}

func TestRunDynamicBeatsStaticPerSegment(t *testing.T) {
	// The point of dynamic remapping: per-interval imbalance should not be
	// worse than a static TOP partition's per-interval imbalance.
	sc := dynamicScenario()
	dyn, err := sc.RunDynamic(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	static, err := dynamicScenario().Run(context.Background(), mapping.Top)
	if err != nil {
		t.Fatal(err)
	}
	staticFine := static.Result.EngineSeries.ImbalancePerBucket()
	var staticMean float64
	n := 0
	for _, x := range staticFine {
		if x > 0 {
			staticMean += x
			n++
		}
	}
	if n > 0 {
		staticMean /= float64(n)
	}
	if dyn.MeanSegmentImbalance > staticMean*1.25 {
		t.Errorf("dynamic per-segment imbalance %.3f much worse than static %.3f",
			dyn.MeanSegmentImbalance, staticMean)
	}
}

// TestRunDynamicTelemetryFeedMatchesNetFlow is the closed-loop acceptance
// criterion: repartitioning from the live telemetry plane (the default) must
// produce exactly the interval partitions the offline NetFlow-profile pipeline
// produces, because both feeds measure the identical packet stream.
func TestRunDynamicTelemetryFeedMatchesNetFlow(t *testing.T) {
	telFed, err := dynamicScenario().RunDynamic(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	nf := dynamicScenario()
	nf.NetFlowRemap = true
	nfFed, err := nf.RunDynamic(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(telFed.Segments) != len(nfFed.Segments) {
		t.Fatalf("segment counts differ: %d vs %d", len(telFed.Segments), len(nfFed.Segments))
	}
	for i := range telFed.Segments {
		if !reflect.DeepEqual(telFed.Segments[i].Assignment, nfFed.Segments[i].Assignment) {
			t.Errorf("segment %d partitions diverge:\n tel %v\n nf  %v",
				i, telFed.Segments[i].Assignment, nfFed.Segments[i].Assignment)
		}
	}
	if telFed.Migrations != nfFed.Migrations {
		t.Errorf("migrations differ: tel %d, netflow %d", telFed.Migrations, nfFed.Migrations)
	}
	// The telemetry-fed run also carries the traffic-plane extras.
	if telFed.CrossEngineBytes == 0 {
		t.Error("telemetry-fed run reports no cross-engine bytes")
	}
	if len(telFed.Timeline()) == 0 {
		t.Error("telemetry-fed run has an empty traffic timeline")
	}
	// Each segment's windows are strictly increasing in time. (Adjacent
	// segments may overlap in absolute time: flows drain past the interval
	// boundary, so a segment's measurement can extend beyond its nominal end.)
	for _, s := range telFed.Segments {
		for i := 1; i < len(s.Timeline); i++ {
			if s.Timeline[i].Time <= s.Timeline[i-1].Time {
				t.Fatalf("segment at %g: timeline not strictly increasing at %d: %v",
					s.Start, i, s.Timeline[i])
			}
		}
	}
	// The NetFlow-fed run, without a telemetry plane, leaves the extras zero.
	if nfFed.CrossEngineBytes != 0 || len(nfFed.Timeline()) != 0 {
		t.Error("NetFlowRemap run unexpectedly carries telemetry data")
	}
}

func TestRunDynamicIncrementalFewerMigrations(t *testing.T) {
	full := dynamicScenario()
	fullRes, err := full.RunDynamic(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	inc := dynamicScenario()
	inc.IncrementalRemap = true
	incRes, err := inc.RunDynamic(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fullRes.Migrations > 0 && incRes.Migrations >= fullRes.Migrations {
		t.Errorf("incremental migrations %d >= full repartition %d",
			incRes.Migrations, fullRes.Migrations)
	}
	// Incremental balance may be looser but must stay in the same class.
	if incRes.MeanSegmentImbalance > fullRes.MeanSegmentImbalance*2+0.1 {
		t.Errorf("incremental segment imbalance %.3f far above full %.3f",
			incRes.MeanSegmentImbalance, fullRes.MeanSegmentImbalance)
	}
}
