package core

import (
	"context"
	"testing"

	"repro/internal/apps"
	"repro/internal/mapping"
	"repro/internal/topogen"
	"repro/internal/traffic"
)

// dynamicScenario uses GridNPB — bursty, phase-shifting traffic, the case
// the paper's §6 says static partitions fundamentally cannot handle.
func dynamicScenario() *Scenario {
	return &Scenario{
		Name:       "dynamic-test",
		Network:    topogen.Campus(),
		Engines:    3,
		Background: traffic.DefaultHTTP(40, 3),
		App:        apps.GridNPB{NumHosts: 10, Duration: 40},
		AppSeed:    2,
		PartSeed:   5,
	}
}

func TestRunDynamicValidation(t *testing.T) {
	sc := dynamicScenario()
	if _, err := sc.RunDynamic(context.Background(), 0, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestRunDynamicSegments(t *testing.T) {
	sc := dynamicScenario()
	res, err := sc.RunDynamic(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 4 {
		t.Fatalf("segments = %d, want 4", len(res.Segments))
	}
	if res.Segments[0].Migrations != 0 {
		t.Error("first segment cannot have migrations")
	}
	var flows int
	for _, s := range res.Segments {
		flows += s.Flows
	}
	w, _ := sc.Workload()
	if flows != len(w.Flows) {
		t.Errorf("segments carry %d flows, workload has %d", flows, len(w.Flows))
	}
	if res.AppTime <= 0 || res.NetTime <= 0 {
		t.Error("times not accumulated")
	}
}

func TestRunDynamicRemapsAndCharges(t *testing.T) {
	sc := dynamicScenario()
	free, err := sc.RunDynamic(context.Background(), 10, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	costly, err := dynamicScenario().RunDynamic(context.Background(), 10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if free.Migrations != costly.Migrations {
		t.Fatalf("migration counts differ: %d vs %d", free.Migrations, costly.Migrations)
	}
	if free.Migrations > 0 {
		wantExtra := float64(free.Migrations) * 1.0
		got := costly.AppTime - free.AppTime
		if got < wantExtra*0.9 {
			t.Errorf("migration cost not charged: extra %.2f, want ~%.2f", got, wantExtra)
		}
	}
}

func TestRunDynamicBeatsStaticPerSegment(t *testing.T) {
	// The point of dynamic remapping: per-interval imbalance should not be
	// worse than a static TOP partition's per-interval imbalance.
	sc := dynamicScenario()
	dyn, err := sc.RunDynamic(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	static, err := dynamicScenario().Run(context.Background(), mapping.Top)
	if err != nil {
		t.Fatal(err)
	}
	staticFine := static.Result.EngineSeries.ImbalancePerBucket()
	var staticMean float64
	n := 0
	for _, x := range staticFine {
		if x > 0 {
			staticMean += x
			n++
		}
	}
	if n > 0 {
		staticMean /= float64(n)
	}
	if dyn.MeanSegmentImbalance > staticMean*1.25 {
		t.Errorf("dynamic per-segment imbalance %.3f much worse than static %.3f",
			dyn.MeanSegmentImbalance, staticMean)
	}
}

func TestRunDynamicIncrementalFewerMigrations(t *testing.T) {
	full := dynamicScenario()
	fullRes, err := full.RunDynamic(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	inc := dynamicScenario()
	inc.IncrementalRemap = true
	incRes, err := inc.RunDynamic(context.Background(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fullRes.Migrations > 0 && incRes.Migrations >= fullRes.Migrations {
		t.Errorf("incremental migrations %d >= full repartition %d",
			incRes.Migrations, fullRes.Migrations)
	}
	// Incremental balance may be looser but must stay in the same class.
	if incRes.MeanSegmentImbalance > fullRes.MeanSegmentImbalance*2+0.1 {
		t.Errorf("incremental segment imbalance %.3f far above full %.3f",
			incRes.MeanSegmentImbalance, fullRes.MeanSegmentImbalance)
	}
}
