package core

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/emu"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/topogen"
	"repro/internal/traffic"
)

// campusScenario is a small, fast scenario with background + foreground.
func campusScenario(cluster bool) *Scenario {
	return &Scenario{
		Name:       "campus-test",
		Network:    topogen.Campus(),
		Engines:    3,
		Background: traffic.DefaultHTTP(20, 3),
		App:        apps.ScaLapack{N: 600, NB: 100, PRows: 2, PCols: 5, Duration: 20},
		AppSeed:    1,
		PartSeed:   7,
		Cluster:    cluster,
	}
}

func TestSpreadHosts(t *testing.T) {
	nw := topogen.Campus() // 40 hosts
	got := SpreadHosts(nw, 10)
	if len(got) != 10 {
		t.Fatalf("got %d hosts, want 10", len(got))
	}
	seen := map[int]bool{}
	for _, h := range got {
		if seen[h] {
			t.Fatal("duplicate injection point")
		}
		seen[h] = true
	}
	// Requesting more hosts than exist returns all of them.
	if len(SpreadHosts(nw, 999)) != 40 {
		t.Error("overlarge request should return all hosts")
	}
}

func TestWorkloadMergedAndCached(t *testing.T) {
	sc := campusScenario(false)
	w1, err := sc.Workload()
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Flows) == 0 {
		t.Fatal("empty workload")
	}
	// Contains both tags.
	var hasHTTP, hasApp bool
	for _, f := range w1.Flows {
		switch f.Tag {
		case "http":
			hasHTTP = true
		case "scalapack":
			hasApp = true
		}
	}
	if !hasHTTP || !hasApp {
		t.Errorf("workload missing components: http=%v app=%v", hasHTTP, hasApp)
	}
	w2, _ := sc.Workload()
	if len(w1.Flows) != len(w2.Flows) {
		t.Error("workload not cached/deterministic")
	}
}

func TestRunTopAndPlace(t *testing.T) {
	sc := campusScenario(false)
	for _, a := range []mapping.Approach{mapping.Top, mapping.Place} {
		o, err := sc.Run(context.Background(), a)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if o.Approach != a {
			t.Errorf("approach = %s", o.Approach)
		}
		if o.Result == nil || o.Result.Kernel.TotalCharges() == 0 {
			t.Errorf("%s: empty result", a)
		}
		if o.ProfileRun != nil {
			t.Errorf("%s: unexpected profiling run", a)
		}
	}
}

func TestRunProfileHasPreRun(t *testing.T) {
	sc := campusScenario(true)
	o, err := sc.Run(context.Background(), mapping.Profile)
	if err != nil {
		t.Fatal(err)
	}
	if o.ProfileRun == nil {
		t.Fatal("PROFILE without profiling run")
	}
	if o.ProfileRun.NetFlow == nil {
		t.Error("profiling run did not collect NetFlow")
	}
	if o.Result.Kernel.TotalCharges() != o.ProfileRun.Kernel.TotalCharges() {
		t.Error("profile and final runs saw different workloads")
	}
}

func TestRunAllOrder(t *testing.T) {
	sc := campusScenario(false)
	outs, err := sc.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	want := []mapping.Approach{mapping.Top, mapping.Place, mapping.Profile}
	for i, o := range outs {
		if o.Approach != want[i] {
			t.Errorf("outcome %d = %s, want %s", i, o.Approach, want[i])
		}
	}
	// All approaches saw identical total work.
	for _, o := range outs[1:] {
		if o.Result.Kernel.TotalCharges() != outs[0].Result.Kernel.TotalCharges() {
			t.Error("approaches saw different workloads")
		}
	}
}

func TestRunUnknownApproach(t *testing.T) {
	sc := campusScenario(false)
	if _, err := sc.Run(context.Background(), "NOPE"); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestScenarioWithoutApp(t *testing.T) {
	sc := &Scenario{
		Name:       "bg-only",
		Network:    topogen.Campus(),
		Engines:    3,
		Background: traffic.DefaultHTTP(10, 1),
	}
	if sc.AppPlacement() != nil {
		t.Error("placement for nil app")
	}
	o, err := sc.Run(context.Background(), mapping.Place)
	if err != nil {
		t.Fatal(err)
	}
	if o.Result.Kernel.TotalCharges() == 0 {
		t.Error("no charges")
	}
}

func TestScenarioDeterministicAcrossRuns(t *testing.T) {
	a, err := campusScenario(false).Run(context.Background(), mapping.Top)
	if err != nil {
		t.Fatal(err)
	}
	b, err := campusScenario(false).Run(context.Background(), mapping.Top)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Imbalance != b.Result.Imbalance {
		t.Errorf("imbalance differs: %v vs %v", a.Result.Imbalance, b.Result.Imbalance)
	}
	if a.Result.AppTime != b.Result.AppTime {
		t.Errorf("AppTime differs: %v vs %v", a.Result.AppTime, b.Result.AppTime)
	}
}

func TestPlaceWithEmulatedTraceroute(t *testing.T) {
	// PLACE via real in-DES traceroute discovery must produce the same
	// partition quality class as the routing-table walk (identical paths
	// under static routing).
	scTable := campusScenario(false)
	scProbe := campusScenario(false)
	scProbe.EmulatedTraceroute = true

	a, err := scTable.Run(context.Background(), mapping.Place)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scProbe.Run(context.Background(), mapping.Place)
	if err != nil {
		t.Fatal(err)
	}
	// Same engine count, same workload; imbalance must be comparable.
	if b.Result.Imbalance > a.Result.Imbalance*2+0.05 {
		t.Errorf("traceroute-discovered PLACE imbalance %.3f vs table %.3f",
			b.Result.Imbalance, a.Result.Imbalance)
	}
}

func TestHierarchicalRoutingScenario(t *testing.T) {
	// A multi-AS topology emulated under hierarchical routing must complete
	// with comparable total load (paths may be slightly longer than flat).
	flat := campusScenario(false)
	hier := campusScenario(false)
	hier.HierarchicalRouting = true
	a, err := flat.Run(context.Background(), mapping.Top)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hier.Run(context.Background(), mapping.Top)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := a.Result.Kernel.TotalCharges(), b.Result.Kernel.TotalCharges()
	if cb < ca || float64(cb) > 1.5*float64(ca) {
		t.Errorf("hierarchical charges %d vs flat %d: expected equal or mildly inflated", cb, ca)
	}
}

func TestTCPTransportScenario(t *testing.T) {
	blast := campusScenario(false)
	tcp := campusScenario(false)
	tcp.Transport = emu.TCPSlowStart
	a, err := blast.Run(context.Background(), mapping.Top)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tcp.Run(context.Background(), mapping.Top)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Kernel.TotalCharges() != b.Result.Kernel.TotalCharges() {
		t.Errorf("transport changed total load: %d vs %d",
			a.Result.Kernel.TotalCharges(), b.Result.Kernel.TotalCharges())
	}
}

// TestBackgroundPredictabilitySpectrum runs PLACE against backgrounds at the
// two ends of the predictability spectrum. For CBR — whose prediction is
// exact by construction — PLACE must track PROFILE closely; for bursty
// on/off traffic the average-rate prediction hides the variance and PLACE's
// edge over TOP shrinks. This is the paper's §3.2/§4.2.1 causal story
// (prediction accuracy drives PLACE quality) made executable.
func TestBackgroundPredictabilitySpectrum(t *testing.T) {
	run := func(bg traffic.Background) (top, place, profile float64) {
		sc := &Scenario{
			Name:       "spectrum",
			Network:    topogen.TeraGrid(),
			Engines:    5,
			Background: bg,
			PartSeed:   3,
		}
		outs, err := sc.RunAll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return outs[0].Result.Imbalance, outs[1].Result.Imbalance, outs[2].Result.Imbalance
	}

	cbrSpec := traffic.DefaultCBR(40, 6)
	cbrTop, cbrPlace, cbrProfile := run(cbrSpec)
	if cbrPlace > cbrProfile*2+0.05 {
		t.Errorf("CBR: PLACE %.3f far from PROFILE %.3f despite exact prediction",
			cbrPlace, cbrProfile)
	}
	if cbrPlace >= cbrTop*1.1 {
		t.Errorf("CBR: PLACE %.3f not better than TOP %.3f", cbrPlace, cbrTop)
	}

	onoffTop, onoffPlace, onoffProfile := run(traffic.DefaultOnOff(40, 6))
	_ = onoffTop
	// PROFILE still wins on the bursty condition.
	if onoffProfile >= onoffPlace*1.2+0.02 {
		t.Errorf("on/off: PROFILE %.3f worse than PLACE %.3f", onoffProfile, onoffPlace)
	}
}

// TestHeterogeneousEngines closes the paper's §5 homogeneity gap: on a
// cluster where engine 0 is twice as fast, capacity-aware mapping
// (EngineSpeeds) must yield lower busy-time imbalance than pretending the
// cluster is uniform.
func TestHeterogeneousEngines(t *testing.T) {
	speeds := []float64{2, 1, 1}
	build := func(aware bool) *Scenario {
		sc := campusScenario(false)
		if aware {
			sc.EngineSpeeds = speeds
		}
		return sc
	}
	busyImbalance := func(sc *Scenario) float64 {
		o, err := sc.Run(context.Background(), mapping.Profile)
		if err != nil {
			t.Fatal(err)
		}
		// Evaluate busy time under the heterogeneous hardware either way:
		// the unaware scenario still runs on the same fast/slow engines.
		w, _ := sc.Workload()
		routes, err := sc.Routes()
		if err != nil {
			t.Fatal(err)
		}
		res, err := emu.Run(emu.Config{
			Network: sc.Network, Routes: routes, Assignment: o.Assignment,
			NumEngines: sc.Engines, Workload: w, EngineSpeeds: speeds,
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Imbalance(res.EngineBusy)
	}
	aware := busyImbalance(build(true))
	blind := busyImbalance(build(false))
	if aware >= blind {
		t.Errorf("capacity-aware busy imbalance %.3f >= capacity-blind %.3f", aware, blind)
	}
}

// TestRoutingBuiltOncePerScenario is the satellite regression for the shared
// route cache: a core-driven pipeline — partitioning, emulation, and even
// the emulated-traceroute discovery — must build its routing exactly once,
// never falling back to mapping.Input's nil-Routes rebuild.
func TestRoutingBuiltOncePerScenario(t *testing.T) {
	sc := campusScenario(false)
	if _, err := sc.RunAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := sc.Network.RoutingBuilds(); got != 1 {
		t.Errorf("RunAll built the routing table %d times, want exactly 1", got)
	}

	// The PLACE traceroute-discovery path threads the same cached table.
	scProbe := campusScenario(false)
	scProbe.EmulatedTraceroute = true
	if _, err := scProbe.Run(context.Background(), mapping.Place); err != nil {
		t.Fatal(err)
	}
	if got := scProbe.Network.RoutingBuilds(); got != 1 {
		t.Errorf("traceroute discovery built the routing table %d times, want exactly 1", got)
	}

	// Hierarchical scenarios build the two-level table once and nothing else.
	scHier := campusScenario(false)
	scHier.HierarchicalRouting = true
	if _, err := scHier.Run(context.Background(), mapping.Top); err != nil {
		t.Fatal(err)
	}
	if got := scHier.Network.RoutingBuilds(); got != 1 {
		t.Errorf("hierarchical scenario performed %d routing builds, want exactly 1", got)
	}
}

// TestRunAllParallelMatchesSerial checks the fan-out's determinism contract:
// RunAll (concurrent approaches) returns outcomes identical to running each
// approach alone, in approach order. GOMAXPROCS is raised so the concurrent
// path really executes even on single-CPU machines.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	par, err := campusScenario(false).RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(mapping.Approaches()) {
		t.Fatalf("RunAll returned %d outcomes, want %d", len(par), len(mapping.Approaches()))
	}
	for i, a := range mapping.Approaches() {
		if par[i].Approach != a {
			t.Fatalf("outcome %d is %s, want %s (deterministic ordering)", i, par[i].Approach, a)
		}
		solo, err := campusScenario(false).Run(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		if len(par[i].Assignment) != len(solo.Assignment) {
			t.Fatalf("%s: assignment lengths differ", a)
		}
		for v := range solo.Assignment {
			if par[i].Assignment[v] != solo.Assignment[v] {
				t.Fatalf("%s: assignment differs at node %d under parallel RunAll", a, v)
			}
		}
		if par[i].Result.Imbalance != solo.Result.Imbalance || par[i].Result.AppTime != solo.Result.AppTime {
			t.Errorf("%s: metrics differ: parallel (%v, %v) vs solo (%v, %v)", a,
				par[i].Result.Imbalance, par[i].Result.AppTime,
				solo.Result.Imbalance, solo.Result.AppTime)
		}
	}
}
