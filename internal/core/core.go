// Package core orchestrates the paper's full network-mapping pipeline
// (Figure 1): take a virtual network plus traffic information, build the
// partitioning problem for the chosen approach, run the multilevel
// partitioner, and execute the distributed emulation on the resulting
// assignment — including the PROFILE approach's two-phase flow, where an
// initial TOP-partitioned profiling run collects NetFlow data that drives a
// repartition.
//
// It is the public face the command-line tools, examples, and the experiment
// harness share.
package core

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/emu"
	"repro/internal/faults"
	"repro/internal/mapping"
	"repro/internal/netgraph"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// Scenario is one emulation study: a topology, an engine count, a background
// traffic condition, and an optional foreground application.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Network is the virtual topology. Required.
	Network *netgraph.Network
	// Engines is the number of simulation-engine nodes. Required.
	Engines int

	// Background, when non-nil, adds background traffic (the paper's HTTP
	// model or any other traffic.Background such as CBR or on/off).
	Background traffic.Background

	// App, when non-nil, adds a foreground application on AppHosts (chosen
	// automatically when empty: hosts spread evenly across the network).
	App apps.App
	// AppSeed drives the application's traffic generation.
	AppSeed int64
	// AppHosts overrides the automatic injection-point choice.
	AppHosts []int

	// PartSeed seeds the partitioner.
	PartSeed int64
	// LatencyPriority is the multi-objective p (default 6:4).
	LatencyPriority float64
	// Cluster enables §3.3 timeline clustering in the PROFILE approach.
	Cluster bool
	// EmulatedTraceroute makes PLACE discover its routes by running real
	// ICMP traceroutes inside the emulator (between sub-network
	// representatives, the paper's optimization) instead of walking the
	// routing table. Paths are identical under static routing; the switch
	// exercises the §3.2 mechanism end to end.
	EmulatedTraceroute bool
	// HierarchicalRouting routes with the two-level per-AS tables instead
	// of flat network-wide shortest paths — the table-size regime behind
	// the paper's 10 + x² router memory model. Legacy knob: it folds into
	// Routing as the Hier backend when Routing is left automatic.
	HierarchicalRouting bool
	// Routing selects the route-oracle backend and its parameters (see
	// netgraph.RoutingOptions). The zero value is the automatic policy:
	// flat tables up to netgraph.AutoFlatMaxNodes nodes, the lazy
	// sub-quadratic oracle beyond. Set explicitly (or via WithRouting) to
	// force flat, lazy, or hierarchical/clustered routing.
	Routing netgraph.RoutingOptions
	// Transport selects the flow release model (Blast or TCPSlowStart).
	Transport emu.TransportMode
	// EngineSpeeds optionally models a heterogeneous cluster: relative
	// speeds per engine. Mapping approaches target load proportional to
	// speed; the emulator divides per-event cost by the engine's speed.
	EngineSpeeds []float64
	// IncrementalRemap makes RunDynamic refine the previous assignment
	// between intervals (partition.Improve) instead of repartitioning from
	// scratch, trading some balance for far fewer migrations. Subsumed by
	// Remap (it selects RemapIncremental when Remap is unset); kept for
	// callers predating the policy knob.
	IncrementalRemap bool
	// Remap selects RunDynamic's between-interval repartitioning policy:
	// RemapProfile (from scratch, the default), RemapIncremental, RemapGame
	// or RemapDiffusion. Empty falls back to IncrementalRemap's choice.
	Remap RemapPolicy
	// Cost overrides the engine cost model (zero = PentiumIICluster).
	Cost emu.CostModel
	// EndTime optionally truncates the emulation.
	EndTime float64
	// Sequential forces single-threaded kernel execution.
	Sequential bool

	// Recorder, when non-nil, receives kernel observability from every
	// emulation the scenario runs (profiling pre-runs and dynamic-remap
	// segments included) — e.g. an obs.Trace writing JSONL.
	Recorder obs.Recorder
	// CollectStats attaches an aggregated obs.RunStats to each emulation
	// result (Result.Obs) without requiring an external recorder.
	CollectStats bool
	// CollectTelemetry attaches a fresh traffic-plane telemetry collector
	// (internal/telemetry) to each emulation, surfacing the engine traffic
	// matrix, link totals, latency histograms and per-window timeline on
	// Result.Telemetry. Each emulation gets its own collector, so approaches
	// may still run concurrently.
	CollectTelemetry bool
	// TelemetryCollector, when non-nil, is the single live collector every
	// emulation feeds — the one a debug endpoint mounts (telemetry.Mount).
	// It implies CollectTelemetry; because the collector is re-sized per run,
	// RunAll serializes approaches when it is set (like Recorder) and the
	// live view always shows the most recent emulation.
	TelemetryCollector *telemetry.Collector
	// Trace, when non-nil, collects the run's window timeline (per-engine
	// compute spans, barrier-wait attribution) into an obs.Timeline — the
	// source for Chrome trace_event export and straggler attribution. It
	// applies to Run, RunDistributed and RunElastic main runs; PROFILE
	// pre-runs and dynamic-remap segments are excluded so the timeline
	// describes exactly one emulation.
	Trace *obs.Timeline
	// ClusterHealth, when non-nil, receives the coordinator's live
	// cluster-health signal during RunDistributed/RunElastic — worker count,
	// per-worker gated windows and critical-path share, the window-lag
	// histogram, heartbeat RTTs. Mount it with telemetry.MountCluster.
	// Attribution needs Trace set too; in-process runs leave it untouched.
	ClusterHealth *telemetry.ClusterHealth
	// Faults, when non-nil, is a straggler/degradation schedule applied to
	// Run, RunDistributed, RunElastic and their replays — the cost model
	// slows the scheduled engines, and the tracing/attribution plane (Trace,
	// ClusterHealth) reports who gates the windows. Straggler and
	// degradation schedules ship to distributed workers; crash schedules do
	// not (use RunResilient, which takes its own schedule and ignores this
	// field). RunDynamic segments rebase virtual time per interval and skip
	// it.
	Faults *faults.Schedule
	// NetFlowRemap makes RunDynamic repartition intervals from the NetFlow
	// side-channel dump (the paper's offline §3.3 pipeline) instead of the
	// default measured-telemetry feedback. The two produce identical
	// partitions (regression-tested); the knob exists to A/B them and to run
	// without the telemetry plane.
	NetFlowRemap bool

	routes    netgraph.Routing
	routesErr error
	workload  *traffic.Workload
	appHosts  []int
}

// ScenarioOption mutates a Scenario at construction time — the functional
// options the facade exposes alongside direct field access.
type ScenarioOption func(*Scenario)

// WithRouting selects the scenario's route-oracle backend.
func WithRouting(o netgraph.RoutingOptions) ScenarioOption {
	return func(sc *Scenario) { sc.Routing = o }
}

// Configure applies options to the scenario and returns it, so callers can
// chain construction: (&Scenario{...}).Configure(WithRouting(...)).
func (sc *Scenario) Configure(opts ...ScenarioOption) *Scenario {
	for _, o := range opts {
		if o != nil {
			o(sc)
		}
	}
	return sc
}

// Outcome is the result of running one mapping approach on a scenario.
type Outcome struct {
	Approach   mapping.Approach
	Assignment []int
	Result     *emu.Result
	// ProfileRun is the initial profiling run's result (PROFILE only).
	ProfileRun *emu.Result
}

// Obs returns the main run's aggregated observability summary, or nil when
// the scenario collected none (see Scenario.CollectStats / Recorder).
func (o *Outcome) Obs() *obs.RunStats { return o.Result.Obs }

// Telemetry returns the main run's final traffic-plane snapshot, or nil when
// the scenario collected none (see Scenario.CollectTelemetry).
func (o *Outcome) Telemetry() *telemetry.Snapshot { return o.Result.Telemetry }

// routingOptions resolves the scenario's routing selection, folding the
// legacy HierarchicalRouting flag into the Hier backend when Routing is left
// automatic.
func (sc *Scenario) routingOptions() netgraph.RoutingOptions {
	o := sc.Routing
	if sc.HierarchicalRouting && o.Backend == netgraph.Auto {
		o.Backend = netgraph.Hier
	}
	return o
}

// Routes returns (building once) the scenario's route oracle per the Routing
// options — the automatic policy by default, two-level tables when
// HierarchicalRouting (or the Hier backend) is set. It is the single
// memoized source every downstream consumer (mapping, emulation, route
// discovery) reuses; the oracle additionally lives in the network's own
// shared cache, so a scenario never builds the same backend twice.
// Infeasible options surface as an error wrapping netgraph.ErrRoutingConfig.
func (sc *Scenario) Routes() (netgraph.Routing, error) {
	if sc.routes == nil && sc.routesErr == nil {
		sc.routes, sc.routesErr = sc.Network.SharedRouting(sc.routingOptions())
	}
	return sc.routes, sc.routesErr
}

// SpreadHosts picks n injection points spread evenly over the network's
// hosts in ID order — the deterministic default placement.
func SpreadHosts(nw *netgraph.Network, n int) []int {
	hosts := nw.Hosts()
	if n >= len(hosts) {
		return hosts
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = hosts[i*len(hosts)/n]
	}
	return out
}

// AppPlacement returns the scenario's injection points (resolving the
// automatic choice on first use). Nil when there is no foreground app.
func (sc *Scenario) AppPlacement() []int {
	if sc.App == nil {
		return nil
	}
	if sc.appHosts == nil {
		if len(sc.AppHosts) > 0 {
			sc.appHosts = sc.AppHosts
		} else {
			sc.appHosts = SpreadHosts(sc.Network, sc.App.Hosts())
		}
	}
	return sc.appHosts
}

// SetWorkload installs a pre-built workload (e.g. a recorded trace being
// replayed), overriding traffic generation. It must validate against the
// scenario's network.
func (sc *Scenario) SetWorkload(w traffic.Workload) {
	sc.workload = &w
}

// Workload returns (generating once) the merged background + foreground
// traffic. All approaches are evaluated against this same workload, as the
// paper does.
func (sc *Scenario) Workload() (traffic.Workload, error) {
	if sc.workload != nil {
		return *sc.workload, nil
	}
	var parts []traffic.Workload
	if sc.Background != nil {
		parts = append(parts, sc.Background.Generate(sc.Network))
	}
	if sc.App != nil {
		hosts := sc.AppPlacement()
		if len(hosts) != sc.App.Hosts() {
			return traffic.Workload{}, fmt.Errorf(
				"core: app %s needs %d hosts, network offers %d",
				sc.App.Name(), sc.App.Hosts(), len(hosts))
		}
		app, err := sc.App.Generate(hosts, sc.AppSeed)
		if err != nil {
			return traffic.Workload{}, err
		}
		parts = append(parts, app)
	}
	w := traffic.Merge(parts...)
	if err := w.Validate(sc.Network); err != nil {
		return traffic.Workload{}, err
	}
	sc.workload = &w
	return w, nil
}

// MappingInput exposes the approach-independent mapping parameters, for
// callers driving mapping strategies (e.g. baselines) outside Run.
func (sc *Scenario) MappingInput() (mapping.Input, error) { return sc.mappingInput() }

// mappingInput assembles the approach-independent mapping parameters.
func (sc *Scenario) mappingInput() (mapping.Input, error) {
	routes, err := sc.Routes()
	if err != nil {
		return mapping.Input{}, err
	}
	return mapping.Input{
		Network:         sc.Network,
		Routes:          routes,
		K:               sc.Engines,
		PartOpts:        partition.Options{Seed: sc.PartSeed},
		LatencyPriority: sc.LatencyPriority,
		Cluster:         sc.Cluster,
		EngineFractions: sc.EngineSpeeds,
	}, nil
}

// Partition computes the assignment for one approach without emulating.
// For PROFILE this includes the profiling pre-run, which observes ctx.
func (sc *Scenario) Partition(ctx context.Context, a mapping.Approach) ([]int, *emu.Result, error) {
	in, err := sc.mappingInput()
	if err != nil {
		return nil, nil, err
	}
	switch a {
	case mapping.Top:
		part, err := mapping.TopMap(in)
		return part, nil, err
	case mapping.Place:
		if sc.Background != nil {
			in.Background = sc.Background.Predict(sc.Network)
		}
		in.AppHosts = sc.AppPlacement()
		if sc.EmulatedTraceroute {
			routes, err := sc.discoverRoutes(in.Background, in.AppHosts)
			if err != nil {
				return nil, nil, fmt.Errorf("core: PLACE route discovery: %w", err)
			}
			in.DiscoveredRoutes = routes
		}
		part, err := mapping.PlaceMap(in)
		return part, nil, err
	case mapping.Profile:
		// Phase 1: profiling run under the initial (TOP) partition.
		topPart, err := mapping.TopMap(in)
		if err != nil {
			return nil, nil, fmt.Errorf("core: PROFILE initial partition: %w", err)
		}
		profRes, err := sc.emulate(ctx, topPart, true)
		if err != nil {
			return nil, nil, fmt.Errorf("core: PROFILE profiling run: %w", err)
		}
		// Phase 2: repartition from the NetFlow summary.
		in.Summary = profRes.NetFlow.Summarize()
		part, err := mapping.ProfileMap(in)
		return part, profRes, err
	default:
		return nil, nil, fmt.Errorf("core: unknown approach %q", a)
	}
}

// Run executes one approach end to end: partition (profiling first if
// PROFILE), then emulate the shared workload on the resulting assignment.
// Cancellation of ctx is observed at window barriers; pass
// context.Background() (or nil) to run to completion.
func (sc *Scenario) Run(ctx context.Context, a mapping.Approach) (*Outcome, error) {
	part, profRun, err := sc.Partition(ctx, a)
	if err != nil {
		return nil, err
	}
	res, err := sc.emulate(ctx, part, false)
	if err != nil {
		return nil, err
	}
	return &Outcome{Approach: a, Assignment: part, Result: res, ProfileRun: profRun}, nil
}

// RunAll evaluates all three approaches on the same workload, reported in
// the paper's order. The approaches are independent given the scenario's
// shared (memoized) routing and workload, so they run concurrently on a
// bounded worker pool; outcomes are returned in approach order regardless of
// completion order, and every approach remains individually deterministic.
// When a Recorder is attached the approaches run serially instead, keeping
// the shared trace's record order deterministic.
func (sc *Scenario) RunAll(ctx context.Context) ([]*Outcome, error) {
	// Materialize the lazily-memoized shared state before fanning out: the
	// memoization writes (routes, workload, app placement) are unsynchronized
	// by design — after this point every approach only reads them.
	if _, err := sc.Workload(); err != nil {
		return nil, fmt.Errorf("core: %s: %w", sc.Name, err)
	}
	if _, err := sc.Routes(); err != nil {
		return nil, fmt.Errorf("core: %s: %w", sc.Name, err)
	}
	sc.AppPlacement()

	as := mapping.Approaches()
	workers := 0
	if sc.Recorder != nil || sc.TelemetryCollector != nil {
		// A shared trace must keep record order deterministic; a shared live
		// telemetry collector is re-sized per run and can only feed one
		// emulation at a time.
		workers = 1
	}
	out := make([]*Outcome, len(as))
	err := parallel.ForEachErr(len(as), workers, func(i int) error {
		o, err := sc.Run(ctx, as[i])
		if err != nil {
			return fmt.Errorf("core: %s on %s: %w", as[i], sc.Name, err)
		}
		out[i] = o
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// discoverRoutes runs the §3.2 emulated-traceroute discovery over every
// endpoint PLACE will predict traffic for, using an interim TOP partition to
// host the probes (route discovery precedes the final mapping, so some
// initial placement must carry it — as in the paper's workflow).
func (sc *Scenario) discoverRoutes(background []traffic.PairRate, appHosts []int) (map[[2]int][]int, error) {
	seen := make(map[int]bool)
	var endpoints []int
	add := func(n int) {
		if !seen[n] {
			seen[n] = true
			endpoints = append(endpoints, n)
		}
	}
	for _, p := range background {
		add(p.Src)
		add(p.Dst)
	}
	for _, h := range appHosts {
		add(h)
	}
	in, err := sc.mappingInput()
	if err != nil {
		return nil, err
	}
	interim, err := mapping.TopMap(in)
	if err != nil {
		return nil, err
	}
	routes, err := sc.Routes()
	if err != nil {
		return nil, err
	}
	return emu.DiscoverRoutes(sc.Network, routes, interim, sc.Engines, endpoints, true)
}

// runOptions translates the scenario's observability and cancellation
// settings into emu options, shared by every emulation the scenario starts.
func (sc *Scenario) runOptions(ctx context.Context) []emu.Option {
	var opts []emu.Option
	if ctx != nil {
		opts = append(opts, emu.WithContext(ctx))
	}
	if sc.Recorder != nil {
		opts = append(opts, emu.WithRecorder(sc.Recorder))
	}
	if sc.CollectStats {
		opts = append(opts, emu.WithStats())
	}
	return opts
}

// newTelemetry resolves the collector for one emulation: the scenario's
// shared live collector when set, a fresh one per run under
// CollectTelemetry, nil otherwise.
func (sc *Scenario) newTelemetry() *telemetry.Collector {
	if sc.TelemetryCollector != nil {
		return sc.TelemetryCollector
	}
	if sc.CollectTelemetry {
		return telemetry.New()
	}
	return nil
}

// emulate runs the emulator on an assignment.
func (sc *Scenario) emulate(ctx context.Context, assignment []int, profile bool) (*emu.Result, error) {
	w, err := sc.Workload()
	if err != nil {
		return nil, err
	}
	routes, err := sc.Routes()
	if err != nil {
		return nil, err
	}
	opts := sc.runOptions(ctx)
	if tel := sc.newTelemetry(); tel != nil {
		opts = append(opts, emu.WithTelemetry(tel))
	}
	if sc.Trace != nil && !profile {
		opts = append(opts, emu.WithTrace(sc.Trace))
	}
	return emu.Run(emu.Config{
		Network:      sc.Network,
		Routes:       routes,
		Assignment:   assignment,
		NumEngines:   sc.Engines,
		Workload:     w,
		Cost:         sc.Cost,
		Profile:      profile,
		EndTime:      sc.EndTime,
		Transport:    sc.Transport,
		EngineSpeeds: sc.EngineSpeeds,
		Sequential:   sc.Sequential,
		Faults:       sc.Faults,
	}, opts...)
}
