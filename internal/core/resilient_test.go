package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/emu"
	"repro/internal/faults"
	"repro/internal/topogen"
	"repro/internal/traffic"
)

// faultScenario is a Campus run long enough for a mid-run crash: background
// HTTP plus a compressed GridNPB foreground over 4 engines.
func faultScenario() *Scenario {
	app := apps.DefaultGridNPB()
	app.Duration = 20
	return &Scenario{
		Name:       "campus-faults",
		Network:    topogen.Campus(),
		Engines:    4,
		Background: traffic.DefaultHTTP(20, 3),
		App:        app,
		AppSeed:    1,
		PartSeed:   7,
	}
}

func midRunCrash() *faults.Schedule {
	return &faults.Schedule{Crashes: []faults.Crash{{Engine: 1, At: 8}}}
}

func TestRunResilientNeedsSchedule(t *testing.T) {
	if _, err := faultScenario().RunResilient(context.Background(), FaultOptions{}); err == nil {
		t.Error("nil schedule accepted")
	}
}

// TestCrashRecoveryAcceptance is the ISSUE's acceptance scenario: a Campus
// run with one engine crash mid-run recovers onto the survivors, reports
// recovery metrics, and partitioner-based remapping leaves the post-recovery
// load strictly better balanced than the naive dump-on-one-survivor fallback.
func TestCrashRecoveryAcceptance(t *testing.T) {
	remap, err := faultScenario().RunResilient(context.Background(), FaultOptions{
		Schedule:        midRunCrash(),
		CheckpointEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := faultScenario().RunResilient(context.Background(), FaultOptions{
		Schedule:        midRunCrash(),
		CheckpointEvery: 4,
		Naive:           true,
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, o := range []*ResilientOutcome{remap, naive} {
		rec := o.Recovery()
		if rec == nil {
			t.Fatal("no recovery report")
		}
		if rec.Failures != 1 || len(rec.DeadEngines) != 1 || rec.DeadEngines[0] != 1 {
			t.Fatalf("recovery = %+v, want one crash of engine 1", rec)
		}
		if rec.Downtime <= 0 || rec.ReplayedEvents <= 0 || rec.Migrations <= 0 {
			t.Errorf("recovery metrics not populated: %+v", rec)
		}
		for v, e := range o.FinalAssignment {
			if e == 1 {
				t.Fatalf("node %d still on dead engine 1", v)
			}
		}
		// Survivors did real post-recovery work.
		if rec.PostRecoveryImbalance < 0 {
			t.Errorf("PostRecoveryImbalance = %v", rec.PostRecoveryImbalance)
		}
	}

	ri := remap.Recovery().PostRecoveryImbalance
	ni := naive.Recovery().PostRecoveryImbalance
	if ri >= ni {
		t.Errorf("remap post-recovery imbalance %.3f not strictly below naive %.3f", ri, ni)
	}
	// The naive dump concentrates everything on one survivor; remapping
	// spreads it, so it must also move at least as many nodes as the dead
	// engine owned (both did) while balancing better.
	t.Logf("post-recovery imbalance: remap=%.3f naive=%.3f (downtime %.3fs vs %.3fs, migrations %d vs %d)",
		ri, ni,
		remap.Recovery().Downtime, naive.Recovery().Downtime,
		remap.Recovery().Migrations, naive.Recovery().Migrations)
}

func TestResilientDeterminism(t *testing.T) {
	// Same seeds and config give byte-identical results across runs — both
	// fault-free (crash-free schedule) and with a crash recovery in the
	// middle.
	run := func(sched *faults.Schedule) *ResilientOutcome {
		out, err := faultScenario().RunResilient(context.Background(), FaultOptions{
			Schedule:        sched,
			CheckpointEvery: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	check := func(label string, a, b *ResilientOutcome) {
		t.Helper()
		if !reflect.DeepEqual(a.InitialAssignment, b.InitialAssignment) {
			t.Errorf("%s: initial assignments differ", label)
		}
		if !reflect.DeepEqual(a.FinalAssignment, b.FinalAssignment) {
			t.Errorf("%s: final assignments differ", label)
		}
		ra, rb := a.Result, b.Result
		if !reflect.DeepEqual(ra.EngineLoads, rb.EngineLoads) {
			t.Errorf("%s: engine loads differ: %v vs %v", label, ra.EngineLoads, rb.EngineLoads)
		}
		if ra.Imbalance != rb.Imbalance || ra.AppTime != rb.AppTime || ra.NetTime != rb.NetTime {
			t.Errorf("%s: metrics differ: imb %v/%v app %v/%v net %v/%v", label,
				ra.Imbalance, rb.Imbalance, ra.AppTime, rb.AppTime, ra.NetTime, rb.NetTime)
		}
		if !reflect.DeepEqual(ra.FlowFCTs, rb.FlowFCTs) {
			t.Errorf("%s: FCTs differ", label)
		}
		if !reflect.DeepEqual(ra.Recovery, rb.Recovery) {
			t.Errorf("%s: recovery reports differ: %+v vs %+v", label, ra.Recovery, rb.Recovery)
		}
	}

	// Fault-free: a schedule with only a straggler (no crashes, no recovery).
	calm := &faults.Schedule{
		Stragglers: []faults.Straggler{{Engine: 0, From: 2, To: 6, Factor: 3}},
	}
	check("fault-free", run(calm), run(calm))
	check("crash", run(midRunCrash()), run(midRunCrash()))
}

func TestNaiveRecoveryPicksLeastLoaded(t *testing.T) {
	f := emu.EngineFailure{
		Engine:     1,
		Assignment: []int{0, 1, 1, 2, 3},
		Alive:      []bool{true, false, true, true},
		Loads:      []float64{50, 0, 10, 30},
	}
	next := NaiveRecovery(f)
	for v, e := range f.Assignment {
		if e == f.Engine {
			if next[v] != 2 {
				t.Errorf("node %d moved to %d, want least-loaded survivor 2", v, next[v])
			}
		} else if next[v] != e {
			t.Errorf("node %d moved without reason: %d -> %d", v, e, next[v])
		}
	}
}

func TestDefaultMigrationCostShared(t *testing.T) {
	// The recovery and dynamic-remap paths must price migrations identically.
	if DefaultMigrationCost != 50e-3 {
		t.Errorf("DefaultMigrationCost = %v, want 50e-3", DefaultMigrationCost)
	}
}
