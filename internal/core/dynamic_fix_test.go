package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/emu"
	"repro/internal/mapping"
	"repro/internal/telemetry"
	"repro/internal/topogen"
	"repro/internal/traffic"
)

// syntheticScenario builds a Campus scenario running an explicit flow list —
// the controllable workload the interval-loop regressions need.
func syntheticScenario(t *testing.T, flows []traffic.Flow, duration float64) *Scenario {
	t.Helper()
	sc := &Scenario{
		Name:     "synthetic",
		Network:  topogen.Campus(),
		Engines:  3,
		PartSeed: 5,
	}
	hosts := sc.Network.Hosts()
	if len(hosts) < 4 {
		t.Fatal("campus too small")
	}
	for i := range flows {
		flows[i].ID = i
		flows[i].Src = hosts[(2*i)%len(hosts)]
		flows[i].Dst = hosts[(2*i+1)%len(hosts)]
		if flows[i].Bytes == 0 {
			flows[i].Bytes = 100e3
		}
	}
	sc.SetWorkload(traffic.Workload{Flows: flows, Duration: duration})
	return sc
}

// Regression for the float-drift hazard: accumulating start += interval
// drifts, so with duration 1.0 / interval 0.1 the old loop left
// start = 0.9999999999999999 < 1.0 after ten segments and ran a spurious
// eleventh segment re-emulating the tail's flows.
func TestRunDynamicNonDivisibleIntervalNoDrift(t *testing.T) {
	var flows []traffic.Flow
	for i := 0; i < 20; i++ {
		flows = append(flows, traffic.Flow{Start: 0.025 + 0.05*float64(i)})
	}
	sc := syntheticScenario(t, flows, 1.0)
	res, err := sc.RunDynamic(context.Background(), 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 10 {
		t.Fatalf("segments = %d, want 10 (duration 1.0 / interval 0.1)", len(res.Segments))
	}
	total := 0
	for _, s := range res.Segments {
		total += s.Flows
		if s.Start >= 1.0 {
			t.Fatalf("segment starts at %v, past the duration", s.Start)
		}
	}
	if total != len(flows) {
		t.Fatalf("segments carry %d flows, workload has %d — trailing flows double-counted or lost",
			total, len(flows))
	}
}

func TestSliceWorkloadBoundaries(t *testing.T) {
	w := traffic.Workload{
		Duration: 2,
		AppHosts: []int{7},
		Flows: []traffic.Flow{
			{ID: 0, Src: 1, Dst: 2, Start: 0, Bytes: 10},    // exactly at slice start
			{ID: 1, Src: 3, Dst: 4, Start: 0.5, Bytes: 20},  // interior
			{ID: 2, Src: 5, Dst: 6, Start: 1.0, Bytes: 30},  // exactly at slice end → next slice
			{ID: 3, Src: 7, Dst: 8, Start: 1.5, Bytes: 40},  // interior of next slice
			{ID: 4, Src: 9, Dst: 10, Start: 2.5, Bytes: 50}, // past both
		},
	}
	first := sliceWorkload(w, 0, 1)
	second := sliceWorkload(w, 1, 2)

	if got := len(first.Flows); got != 2 {
		t.Fatalf("first slice has %d flows, want 2 (start boundary inclusive, end exclusive)", got)
	}
	if got := len(second.Flows); got != 2 {
		t.Fatalf("second slice has %d flows, want 2", got)
	}
	if second.Flows[0].Bytes != 30 {
		t.Fatal("flow starting exactly at the boundary must open the next slice")
	}
	// Rebasing: starts relative to the slice, IDs dense from zero in each
	// slice — the uniqueness NetFlow/telemetry attribution relies on within
	// one segment run.
	for _, sl := range []traffic.Workload{first, second} {
		seen := map[int]bool{}
		for i, f := range sl.Flows {
			if f.ID != i {
				t.Fatalf("slice IDs not dense: flow %d has ID %d", i, f.ID)
			}
			if seen[f.ID] {
				t.Fatalf("duplicate flow ID %d within a slice", f.ID)
			}
			seen[f.ID] = true
			if f.Start < 0 || f.Start >= 1 {
				t.Fatalf("rebased start %v outside [0,1)", f.Start)
			}
		}
		if !reflect.DeepEqual(sl.AppHosts, w.AppHosts) {
			t.Fatal("slice lost AppHosts")
		}
	}
	if second.Flows[0].Start != 0 {
		t.Fatalf("boundary flow rebased to %v, want 0", second.Flows[0].Start)
	}
	// The tail form absorbs everything else.
	tail := sliceWorkload(w, 2, math.Inf(1))
	if len(tail.Flows) != 1 || tail.Flows[0].Bytes != 50 {
		t.Fatalf("tail slice = %+v, want the one trailing flow", tail.Flows)
	}
}

// Regression for collector state leaking across segments: the remap entering
// interval i+1 must be computed from interval i's traffic alone, exactly as
// a fresh collector observing only that interval would produce.
func TestRunDynamicSecondIntervalProfileFresh(t *testing.T) {
	sc := dynamicScenario()
	const interval = 10.0
	res, err := sc.RunDynamic(context.Background(), interval, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(res.Segments))
	}

	// Replay segment 1 (the second interval, whose flow set is disjoint from
	// the first's) on a fresh collector under the same assignment, and remap
	// the way RunDynamic does.
	sc2 := dynamicScenario()
	w, err := sc2.Workload()
	if err != nil {
		t.Fatal(err)
	}
	routes, err := sc2.Routes()
	if err != nil {
		t.Fatal(err)
	}
	seg := sliceWorkload(w, interval, 2*interval)
	tel := telemetry.New()
	_, err = emu.Run(emu.Config{
		Network:    sc2.Network,
		Routes:     routes,
		Assignment: res.Segments[1].Assignment,
		NumEngines: sc2.Engines,
		Workload:   seg,
	}, emu.WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	in, err := sc2.mappingInput()
	if err != nil {
		t.Fatal(err)
	}
	in.Summary = tel.ToProfile()
	want, err := mapping.ProfileMap(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, res.Segments[2].Assignment) {
		t.Fatal("second-interval remap differs from a fresh collector's — cumulative telemetry leaked across segments")
	}
}

// Mid-run traffic gap: the empty interval skips its remap and carries the
// assignment, migrations are charged exactly once against the segment they
// enter, and the stall charge scales with the migration cost.
func TestRunDynamicZeroFlowGapAccounting(t *testing.T) {
	var flows []traffic.Flow
	for i := 0; i < 30; i++ {
		start := 0.2 * float64(i%25)
		if i >= 25 {
			start = 20.5 + 0.2*float64(i-25) // resumes after the [5,20) gap
		}
		flows = append(flows, traffic.Flow{Start: start, Bytes: 400e3})
	}
	run := func(cost float64) *DynamicResult {
		sc := syntheticScenario(t, append([]traffic.Flow(nil), flows...), 25)
		res, err := sc.RunDynamic(context.Background(), 5, cost)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(1e-9)
	if len(res.Segments) != 5 {
		t.Fatalf("segments = %d, want 5", len(res.Segments))
	}
	for i := 1; i <= 3; i++ {
		if res.Segments[i].Flows != 0 {
			t.Fatalf("segment %d should be inside the traffic gap, has %d flows", i, res.Segments[i].Flows)
		}
	}

	// The only remap runs after segment 0; its migrations are charged to
	// segment 1 and to nothing else. The gap segments carry the assignment
	// unchanged into the resumed traffic.
	if res.Segments[1].Remap == nil {
		t.Fatal("segment 1 should record the remap that produced it")
	}
	m := res.Segments[1].Migrations
	if m == 0 {
		t.Fatal("expected the post-burst remap to migrate nodes")
	}
	for i := 2; i < 5; i++ {
		if res.Segments[i].Migrations != 0 {
			t.Fatalf("segment %d charges %d migrations — empty intervals must not remap", i, res.Segments[i].Migrations)
		}
		if res.Segments[i].Remap != nil {
			t.Fatalf("segment %d records a remap after an empty interval", i)
		}
		if !reflect.DeepEqual(res.Segments[i].Assignment, res.Segments[1].Assignment) {
			t.Fatalf("segment %d changed assignment without a remap", i)
		}
	}
	if res.Migrations != m {
		t.Fatalf("total migrations %d, want the single remap's %d", res.Migrations, m)
	}

	// Stall charge: AppTime grows by exactly migrations × Δcost.
	pricey := run(1.0)
	if pricey.Migrations != m {
		t.Fatalf("migration count changed with the cost: %d vs %d", pricey.Migrations, m)
	}
	wantDelta := float64(m) * (1.0 - 1e-9)
	gotDelta := pricey.AppTime - res.AppTime
	if math.Abs(gotDelta-wantDelta) > 1e-6*wantDelta+1e-9 {
		t.Fatalf("AppTime stall delta = %g, want %g (migrations charged once)", gotDelta, wantDelta)
	}
}
