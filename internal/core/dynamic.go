package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/emu"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/netflow"
	"repro/internal/partition"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// Dynamic remapping — the paper's §6 conclusion: "Static partitions are
// fundamentally limited for large emulation if traffic varies widely...
// Dynamic remapping the virtual network during the emulation is the only
// solution. Such dynamic remapping is a major challenge for distributed
// emulators like MaSSF."
//
// This prototype divides the emulation into fixed intervals. The first
// interval runs under the TOP partition; every subsequent interval is
// repartitioned from the previous interval's measured traffic and charged a
// migration cost per virtual node that changes engines (state transfer over
// the cluster network). Flows are emulated within the interval they start in
// — transfers spanning a boundary restart their queueing state, an
// approximation this prototype accepts and the real MaSSF would have to
// engineer away.
//
// The remapping signal is, by default, the live telemetry plane: the
// collector threaded through the emulator converts its measured per-node /
// per-link traffic into the PROFILE form (telemetry.Collector.ToProfile), so
// the loop is closed without the NetFlow dump side-channel. Scenario.
// NetFlowRemap switches back to the §3.3 offline pipeline; the two feeds
// produce identical interval partitions (regression-tested), because both
// observe the identical packet stream at the identical hot-path site.

// RemapPolicy selects how RunDynamic recomputes the partition between
// intervals.
type RemapPolicy string

const (
	// RemapProfile repartitions each interval from scratch with the full
	// PROFILE pipeline — the best partition money can buy, paid for in
	// migrations.
	RemapProfile RemapPolicy = "profile"
	// RemapIncremental refines the previous assignment with the multilevel
	// partitioner's boundary refinement (mapping.ProfileImprove).
	RemapIncremental RemapPolicy = "incremental"
	// RemapGame plays the game-theoretic iterative repartitioner: every
	// virtual node selfishly trades load, cross-engine traffic and the
	// modeled migration cost until a Nash-style fixed point
	// (mapping.GameRemap).
	RemapGame RemapPolicy = "game"
	// RemapDiffusion is the traffic-blind load-diffusion baseline
	// (mapping.DiffusionRemap).
	RemapDiffusion RemapPolicy = "diffusion"
)

// RemapPolicies lists the valid policies in presentation order.
func RemapPolicies() []RemapPolicy {
	return []RemapPolicy{RemapProfile, RemapIncremental, RemapGame, RemapDiffusion}
}

// ParseRemapPolicy validates a policy name from a flag or config file.
func ParseRemapPolicy(s string) (RemapPolicy, error) {
	switch p := RemapPolicy(s); p {
	case RemapProfile, RemapIncremental, RemapGame, RemapDiffusion:
		return p, nil
	}
	return "", fmt.Errorf("core: unknown remap policy %q (want profile, incremental, game or diffusion)", s)
}

// remapPolicy resolves the scenario's effective policy, folding in the older
// IncrementalRemap boolean when Remap is unset.
func (sc *Scenario) remapPolicy() (RemapPolicy, error) {
	if sc.Remap == "" {
		if sc.IncrementalRemap {
			return RemapIncremental, nil
		}
		return RemapProfile, nil
	}
	return ParseRemapPolicy(string(sc.Remap))
}

// RemapStats reports the remapping step that produced a segment's
// assignment.
type RemapStats struct {
	// Policy is the remap policy that ran.
	Policy RemapPolicy
	// Rounds, MovesEvaluated, Converged and Payoffs describe the game
	// policy's convergence (zero/nil for the other policies): best-response
	// rounds played, candidate moves costed, whether a fixed point was
	// certified before the round cap, and the non-increasing potential
	// trajectory (one entry before the first round, one after each round).
	Rounds         int
	MovesEvaluated int
	Converged      bool
	Payoffs        []float64
	// MovesTaken counts the remap's accepted moves. For the game policy a
	// node may move more than once on its way to the fixed point, so this
	// can exceed the segment's Migrations field, which counts distinct
	// nodes that changed engines.
	MovesTaken int
}

// DynamicSegment reports one remapping interval.
type DynamicSegment struct {
	// Start is the interval's beginning in virtual seconds.
	Start float64
	// Imbalance is the interval's realized load imbalance.
	Imbalance float64
	// Migrations is the number of nodes that changed engines entering this
	// interval.
	Migrations int
	// Flows is the number of flows injected during this interval.
	Flows int
	// Assignment is the node→engine assignment the interval ran under.
	Assignment []int
	// CrossEngineBytes is the interval's engine-to-engine traffic volume
	// (zero when the run had no telemetry plane, i.e. NetFlowRemap without
	// CollectTelemetry).
	CrossEngineBytes int64
	// Timeline is the interval's per-measurement-window imbalance and
	// cross-engine-traffic history (times relative to the interval start);
	// nil without a telemetry plane.
	Timeline []telemetry.TrafficPoint
	// Remap describes the remapping step that produced this segment's
	// assignment; nil for the first segment (which runs under TOP) and for
	// segments entered without a remap (the previous interval was empty).
	Remap *RemapStats
}

// DynamicResult reports a dynamically remapped emulation.
type DynamicResult struct {
	Segments []DynamicSegment
	// Imbalance is the load imbalance of the total per-engine loads across
	// the whole run.
	Imbalance float64
	// MeanSegmentImbalance averages the per-interval imbalances (the
	// quantity remapping actually optimizes — it tracks load shifts).
	MeanSegmentImbalance float64
	// AppTime and NetTime are summed over intervals, including migration
	// stalls in AppTime.
	AppTime float64
	NetTime float64
	// Migrations is the total node-engine changes.
	Migrations int
	// CrossEngineBytes totals the engine-to-engine traffic over all
	// intervals (zero without a telemetry plane).
	CrossEngineBytes int64
}

// Timeline concatenates the segments' per-window traffic histories into one
// absolute-time curve — the per-window imbalance / cross-engine-traffic
// timeline the experiment reports render.
func (r *DynamicResult) Timeline() []telemetry.TrafficPoint {
	var out []telemetry.TrafficPoint
	for _, s := range r.Segments {
		for _, p := range s.Timeline {
			p.Time += s.Start
			out = append(out, p)
		}
	}
	return out
}

// DefaultMigrationCost is the modeled stall per migrated node: shipping a
// router's state (routing table, queues) across 100 Mb/s Ethernet. Shared
// with crash recovery (emu.DefaultMigrationCost) so both remapping paths
// price migrations identically.
const DefaultMigrationCost = emu.DefaultMigrationCost

// RunDynamic emulates the scenario in intervals of the given width,
// remapping between intervals from each interval's NetFlow profile.
// migrationCost is the AppTime stall charged per migrated node
// (DefaultMigrationCost when <= 0). Cancellation of ctx is observed at
// window barriers within each segment.
func (sc *Scenario) RunDynamic(ctx context.Context, interval, migrationCost float64) (*DynamicResult, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("core: dynamic remapping needs a positive interval")
	}
	if migrationCost <= 0 {
		migrationCost = DefaultMigrationCost
	}
	w, err := sc.Workload()
	if err != nil {
		return nil, err
	}
	duration := w.Duration
	if duration <= 0 {
		return nil, fmt.Errorf("core: dynamic remapping needs a workload with a duration")
	}

	in, err := sc.mappingInput()
	if err != nil {
		return nil, err
	}
	assignment, err := mapping.TopMap(in)
	if err != nil {
		return nil, fmt.Errorf("core: dynamic initial partition: %w", err)
	}
	routes, err := sc.Routes()
	if err != nil {
		return nil, err
	}

	// The remap feed: measured telemetry by default, the NetFlow side-channel
	// under NetFlowRemap. One collector serves all segments (re-sized per
	// segment), so a live mount watches the current interval.
	tel := sc.newTelemetry()
	if tel == nil && !sc.NetFlowRemap {
		tel = telemetry.New()
	}

	policy, err := sc.remapPolicy()
	if err != nil {
		return nil, err
	}

	res := &DynamicResult{}
	engineTotals := make([]float64, sc.Engines)
	incomingMigrations := 0
	var incomingRemap *RemapStats
	var profScratch *netflow.Summary
	// Segments are indexed by integer, never by accumulating start +=
	// interval: the accumulated float error can leave start < duration after
	// the tail segment already ran with end = +Inf, and the resulting
	// spurious extra segment would re-emulate (and re-count) trailing flows.
	for i := 0; ; i++ {
		start := float64(i) * interval
		if start >= duration {
			break
		}
		end := float64(i+1) * interval
		tail := end >= duration
		if tail {
			// Applications may emit trailing flows slightly past the
			// nominal duration; the last interval absorbs them.
			end = math.Inf(1)
		}
		seg := sliceWorkload(w, start, end)
		if tail {
			seg.Duration = duration - start
		}
		opts := sc.runOptions(ctx)
		if tel != nil {
			opts = append(opts, emu.WithTelemetry(tel))
		}
		segResult, err := emu.Run(emu.Config{
			Network:    sc.Network,
			Routes:     routes,
			Assignment: assignment,
			NumEngines: sc.Engines,
			Workload:   seg,
			Cost:       sc.Cost,
			Profile:    sc.NetFlowRemap,
			Transport:  sc.Transport,
			Sequential: sc.Sequential,
		}, opts...)
		if err != nil {
			return nil, fmt.Errorf("core: dynamic segment at %gs: %w", start, err)
		}
		segOut := DynamicSegment{
			Start:      start,
			Imbalance:  segResult.Imbalance,
			Migrations: incomingMigrations,
			Flows:      len(seg.Flows),
			Assignment: append([]int(nil), assignment...),
			Remap:      incomingRemap,
		}
		if segResult.Telemetry != nil {
			segOut.CrossEngineBytes = segResult.Telemetry.CrossEngineBytes
			segOut.Timeline = segResult.Telemetry.Timeline
			res.CrossEngineBytes += segResult.Telemetry.CrossEngineBytes
		}
		res.Segments = append(res.Segments, segOut)
		res.AppTime += segResult.AppTime + float64(incomingMigrations)*migrationCost
		res.NetTime += segResult.NetTime
		res.Migrations += incomingMigrations
		for e, l := range segResult.EngineLoads {
			engineTotals[e] += l
		}

		incomingMigrations = 0
		incomingRemap = nil
		if tail {
			// The tail segment absorbed every remaining flow; stop here —
			// running another iteration would be pure float-drift fallout.
			break
		}
		// Remap for the next interval from this interval's measured traffic,
		// under the selected policy. An empty interval measured nothing, so
		// its remap is skipped and the assignment carries over.
		if len(seg.Flows) > 0 {
			in, err := sc.mappingInput()
			if err != nil {
				return nil, err
			}
			in.Summary = sc.segProfile(tel, segResult, &profScratch)
			next, moved, stats, err := sc.remapStep(policy, in, assignment, interval, migrationCost)
			if err != nil {
				return nil, fmt.Errorf("core: dynamic %s remap at %gs: %w", policy, end, err)
			}
			incomingMigrations = moved
			incomingRemap = stats
			assignment = next
		}
	}

	res.Imbalance = metrics.Imbalance(engineTotals)
	var sum float64
	active := 0
	for _, s := range res.Segments {
		if s.Flows > 0 {
			sum += s.Imbalance
			active++
		}
	}
	if active > 0 {
		res.MeanSegmentImbalance = sum / float64(active)
	}
	return res, nil
}

// remapStep recomputes the assignment from the interval's measured profile
// under the selected policy, returning the next assignment (a fresh slice),
// the number of nodes that changed engines, and the step's stats.
func (sc *Scenario) remapStep(policy RemapPolicy, in mapping.Input, assignment []int, interval, migrationCost float64) ([]int, int, *RemapStats, error) {
	st := &RemapStats{Policy: policy}
	switch policy {
	case RemapIncremental:
		next, moved, err := mapping.ProfileImprove(in, assignment)
		if err != nil {
			return nil, 0, nil, err
		}
		st.MovesTaken = moved
		return next, moved, st, nil
	case RemapGame:
		// The migration penalty enters the payoff in the game's normalized
		// units: the fraction of the interval one migration stalls. The
		// tie-break seed derives from PartSeed inside GameRemap.
		gopts := partition.GameOptions{
			MigrationCost: emu.NormalizedMigrationCost(migrationCost, interval),
		}
		next, moved, gs, err := mapping.GameRemap(in, assignment, gopts)
		if err != nil {
			return nil, 0, nil, err
		}
		st.Rounds = gs.Rounds
		st.MovesEvaluated = gs.MovesEvaluated
		st.MovesTaken = gs.MovesTaken
		st.Converged = gs.Converged
		st.Payoffs = gs.Payoffs
		return next, moved, st, nil
	case RemapDiffusion:
		next, moved, err := mapping.DiffusionRemap(in, assignment)
		if err != nil {
			return nil, 0, nil, err
		}
		st.MovesTaken = moved
		return next, moved, st, nil
	default: // RemapProfile
		next, err := mapping.ProfileMap(in)
		if err != nil {
			return nil, 0, nil, err
		}
		moved := 0
		for v := range next {
			if next[v] != assignment[v] {
				moved++
			}
		}
		st.MovesTaken = moved
		return next, moved, st, nil
	}
}

// segProfile picks the interval's remap feed: the NetFlow dump under
// NetFlowRemap, the telemetry plane's measured traffic otherwise. The two are
// numerically identical (see emu's TestTelemetryMatchesNetFlowProfile), so
// flipping the knob never changes the produced partitions. The telemetry
// path exports into *scratch, reusing the previous interval's summary
// storage instead of reallocating it every boundary.
func (sc *Scenario) segProfile(tel *telemetry.Collector, segResult *emu.Result, scratch **netflow.Summary) *netflow.Summary {
	if sc.NetFlowRemap {
		return segResult.NetFlow.Summarize()
	}
	*scratch = tel.ToProfileInto(*scratch)
	return *scratch
}

// sliceWorkload keeps the flows starting in [start, end), rebased so the
// segment emulation begins at virtual time 0.
func sliceWorkload(w traffic.Workload, start, end float64) traffic.Workload {
	out := traffic.Workload{Duration: end - start, AppHosts: w.AppHosts}
	for _, f := range w.Flows {
		if f.Start >= start && f.Start < end {
			f.Start -= start
			f.ID = len(out.Flows)
			out.Flows = append(out.Flows, f)
		}
	}
	return out
}
