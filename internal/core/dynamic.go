package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/emu"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/netflow"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// Dynamic remapping — the paper's §6 conclusion: "Static partitions are
// fundamentally limited for large emulation if traffic varies widely...
// Dynamic remapping the virtual network during the emulation is the only
// solution. Such dynamic remapping is a major challenge for distributed
// emulators like MaSSF."
//
// This prototype divides the emulation into fixed intervals. The first
// interval runs under the TOP partition; every subsequent interval is
// repartitioned from the previous interval's measured traffic and charged a
// migration cost per virtual node that changes engines (state transfer over
// the cluster network). Flows are emulated within the interval they start in
// — transfers spanning a boundary restart their queueing state, an
// approximation this prototype accepts and the real MaSSF would have to
// engineer away.
//
// The remapping signal is, by default, the live telemetry plane: the
// collector threaded through the emulator converts its measured per-node /
// per-link traffic into the PROFILE form (telemetry.Collector.ToProfile), so
// the loop is closed without the NetFlow dump side-channel. Scenario.
// NetFlowRemap switches back to the §3.3 offline pipeline; the two feeds
// produce identical interval partitions (regression-tested), because both
// observe the identical packet stream at the identical hot-path site.

// DynamicSegment reports one remapping interval.
type DynamicSegment struct {
	// Start is the interval's beginning in virtual seconds.
	Start float64
	// Imbalance is the interval's realized load imbalance.
	Imbalance float64
	// Migrations is the number of nodes that changed engines entering this
	// interval.
	Migrations int
	// Flows is the number of flows injected during this interval.
	Flows int
	// Assignment is the node→engine assignment the interval ran under.
	Assignment []int
	// CrossEngineBytes is the interval's engine-to-engine traffic volume
	// (zero when the run had no telemetry plane, i.e. NetFlowRemap without
	// CollectTelemetry).
	CrossEngineBytes int64
	// Timeline is the interval's per-measurement-window imbalance and
	// cross-engine-traffic history (times relative to the interval start);
	// nil without a telemetry plane.
	Timeline []telemetry.TrafficPoint
}

// DynamicResult reports a dynamically remapped emulation.
type DynamicResult struct {
	Segments []DynamicSegment
	// Imbalance is the load imbalance of the total per-engine loads across
	// the whole run.
	Imbalance float64
	// MeanSegmentImbalance averages the per-interval imbalances (the
	// quantity remapping actually optimizes — it tracks load shifts).
	MeanSegmentImbalance float64
	// AppTime and NetTime are summed over intervals, including migration
	// stalls in AppTime.
	AppTime float64
	NetTime float64
	// Migrations is the total node-engine changes.
	Migrations int
	// CrossEngineBytes totals the engine-to-engine traffic over all
	// intervals (zero without a telemetry plane).
	CrossEngineBytes int64
}

// Timeline concatenates the segments' per-window traffic histories into one
// absolute-time curve — the per-window imbalance / cross-engine-traffic
// timeline the experiment reports render.
func (r *DynamicResult) Timeline() []telemetry.TrafficPoint {
	var out []telemetry.TrafficPoint
	for _, s := range r.Segments {
		for _, p := range s.Timeline {
			p.Time += s.Start
			out = append(out, p)
		}
	}
	return out
}

// DefaultMigrationCost is the modeled stall per migrated node: shipping a
// router's state (routing table, queues) across 100 Mb/s Ethernet. Shared
// with crash recovery (emu.DefaultMigrationCost) so both remapping paths
// price migrations identically.
const DefaultMigrationCost = emu.DefaultMigrationCost

// RunDynamic emulates the scenario in intervals of the given width,
// remapping between intervals from each interval's NetFlow profile.
// migrationCost is the AppTime stall charged per migrated node
// (DefaultMigrationCost when <= 0). Cancellation of ctx is observed at
// window barriers within each segment.
func (sc *Scenario) RunDynamic(ctx context.Context, interval, migrationCost float64) (*DynamicResult, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("core: dynamic remapping needs a positive interval")
	}
	if migrationCost <= 0 {
		migrationCost = DefaultMigrationCost
	}
	w, err := sc.Workload()
	if err != nil {
		return nil, err
	}
	duration := w.Duration
	if duration <= 0 {
		return nil, fmt.Errorf("core: dynamic remapping needs a workload with a duration")
	}

	in, err := sc.mappingInput()
	if err != nil {
		return nil, err
	}
	assignment, err := mapping.TopMap(in)
	if err != nil {
		return nil, fmt.Errorf("core: dynamic initial partition: %w", err)
	}
	routes, err := sc.Routes()
	if err != nil {
		return nil, err
	}

	// The remap feed: measured telemetry by default, the NetFlow side-channel
	// under NetFlowRemap. One collector serves all segments (re-sized per
	// segment), so a live mount watches the current interval.
	tel := sc.newTelemetry()
	if tel == nil && !sc.NetFlowRemap {
		tel = telemetry.New()
	}

	res := &DynamicResult{}
	engineTotals := make([]float64, sc.Engines)
	incomingMigrations := 0
	for start := 0.0; start < duration; start += interval {
		end := start + interval
		if end >= duration {
			// Applications may emit trailing flows slightly past the
			// nominal duration; the last interval absorbs them.
			end = math.Inf(1)
		}
		seg := sliceWorkload(w, start, end)
		if math.IsInf(end, 1) {
			seg.Duration = duration - start
		}
		opts := sc.runOptions(ctx)
		if tel != nil {
			opts = append(opts, emu.WithTelemetry(tel))
		}
		segResult, err := emu.Run(emu.Config{
			Network:    sc.Network,
			Routes:     routes,
			Assignment: assignment,
			NumEngines: sc.Engines,
			Workload:   seg,
			Cost:       sc.Cost,
			Profile:    sc.NetFlowRemap,
			Transport:  sc.Transport,
			Sequential: sc.Sequential,
		}, opts...)
		if err != nil {
			return nil, fmt.Errorf("core: dynamic segment at %gs: %w", start, err)
		}
		segOut := DynamicSegment{
			Start:      start,
			Imbalance:  segResult.Imbalance,
			Migrations: incomingMigrations,
			Flows:      len(seg.Flows),
			Assignment: append([]int(nil), assignment...),
		}
		if segResult.Telemetry != nil {
			segOut.CrossEngineBytes = segResult.Telemetry.CrossEngineBytes
			segOut.Timeline = segResult.Telemetry.Timeline
			res.CrossEngineBytes += segResult.Telemetry.CrossEngineBytes
		}
		res.Segments = append(res.Segments, segOut)
		res.AppTime += segResult.AppTime + float64(incomingMigrations)*migrationCost
		res.NetTime += segResult.NetTime
		res.Migrations += incomingMigrations
		for e, l := range segResult.EngineLoads {
			engineTotals[e] += l
		}

		// Remap for the next interval from this interval's measured traffic
		// — from scratch, or by refining the current assignment (fewer
		// migrations) when IncrementalRemap is set.
		incomingMigrations = 0
		if end < duration && len(seg.Flows) > 0 {
			in, err := sc.mappingInput()
			if err != nil {
				return nil, err
			}
			in.Summary = sc.segProfile(tel, segResult)
			if sc.IncrementalRemap {
				next, moved, err := mapping.ProfileImprove(in, assignment)
				if err != nil {
					return nil, fmt.Errorf("core: dynamic incremental remap at %gs: %w", end, err)
				}
				incomingMigrations = moved
				assignment = next
			} else {
				next, err := mapping.ProfileMap(in)
				if err != nil {
					return nil, fmt.Errorf("core: dynamic remap at %gs: %w", end, err)
				}
				for v := range next {
					if next[v] != assignment[v] {
						incomingMigrations++
					}
				}
				assignment = next
			}
		}
	}

	res.Imbalance = metrics.Imbalance(engineTotals)
	var sum float64
	active := 0
	for _, s := range res.Segments {
		if s.Flows > 0 {
			sum += s.Imbalance
			active++
		}
	}
	if active > 0 {
		res.MeanSegmentImbalance = sum / float64(active)
	}
	return res, nil
}

// segProfile picks the interval's remap feed: the NetFlow dump under
// NetFlowRemap, the telemetry plane's measured traffic otherwise. The two are
// numerically identical (see emu's TestTelemetryMatchesNetFlowProfile), so
// flipping the knob never changes the produced partitions.
func (sc *Scenario) segProfile(tel *telemetry.Collector, segResult *emu.Result) *netflow.Summary {
	if sc.NetFlowRemap {
		return segResult.NetFlow.Summarize()
	}
	return tel.ToProfile()
}

// sliceWorkload keeps the flows starting in [start, end), rebased so the
// segment emulation begins at virtual time 0.
func sliceWorkload(w traffic.Workload, start, end float64) traffic.Workload {
	out := traffic.Workload{Duration: end - start, AppHosts: w.AppHosts}
	for _, f := range w.Flows {
		if f.Start >= start && f.Start < end {
			f.Start -= start
			f.ID = len(out.Flows)
			out.Flows = append(out.Flows, f)
		}
	}
	return out
}
