package core

import (
	"context"
	"fmt"

	"repro/internal/dist"
	"repro/internal/emu"
	"repro/internal/mapping"
)

// Distributed execution — the deployment shape the paper actually ran on: a
// coordinator process drives worker processes over TCP, each worker hosting a
// share of the simulation engines. The scenario-level work (workload and
// topology generation, partitioning — including the PROFILE pre-run) stays on
// the coordinator; only the engine execution distributes. Results are
// byte-identical to Scenario.Run of the same scenario.

// RunDistributed executes one approach with the engines spread across the
// given worker connections. Worker loss degrades into the same
// RemapSurvivors-driven crash recovery as RunResilient: the survivors'
// engines re-emulate in-process with the lost worker's engines fail-stopped,
// and Result.Recovery reports the remap.
func (sc *Scenario) RunDistributed(ctx context.Context, a mapping.Approach, workers []dist.Conn, opt dist.Options) (*Outcome, error) {
	part, profRun, err := sc.Partition(ctx, a)
	if err != nil {
		return nil, err
	}
	w, err := sc.Workload()
	if err != nil {
		return nil, err
	}
	routes, err := sc.Routes()
	if err != nil {
		return nil, err
	}
	spec := &dist.RunSpec{
		Cfg: emu.Config{
			Network:      sc.Network,
			Routes:       routes,
			Assignment:   part,
			NumEngines:   sc.Engines,
			Workload:     w,
			Cost:         sc.Cost,
			EndTime:      sc.EndTime,
			Transport:    sc.Transport,
			EngineSpeeds: sc.EngineSpeeds,
			Sequential:   sc.Sequential,
			Faults:       sc.Faults,
		},
		Routing:   sc.routingOptions(),
		Telemetry: sc.newTelemetry(),
		Trace:     sc.Trace,
		Health:    sc.ClusterHealth,
		EmuOpts:   sc.runOptions(ctx),
		OnWorkerLoss: func(f emu.EngineFailure) ([]int, error) {
			var survivors []int
			for e, ok := range f.Alive {
				if ok {
					survivors = append(survivors, e)
				}
			}
			in, err := sc.mappingInput()
			if err != nil {
				return nil, err
			}
			next, _, err := mapping.RemapSurvivors(in, f.Assignment, survivors, f.Loads)
			return next, err
		},
	}
	res, err := dist.Run(ctx, spec, workers, opt)
	if err != nil {
		return nil, fmt.Errorf("core: distributed %s on %s: %w", a, sc.Name, err)
	}
	return &Outcome{Approach: a, Assignment: part, Result: res, ProfileRun: profRun}, nil
}
