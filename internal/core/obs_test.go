package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/mapping"
	"repro/internal/obs"
)

// TestScenarioCollectStats checks the observability plumbing through the
// pipeline: CollectStats attaches a RunStats whose totals agree with the
// kernel's own statistics.
func TestScenarioCollectStats(t *testing.T) {
	sc := campusScenario(false)
	sc.CollectStats = true
	o, err := sc.Run(context.Background(), mapping.Top)
	if err != nil {
		t.Fatal(err)
	}
	st := o.Obs()
	if st == nil {
		t.Fatal("CollectStats did not attach Outcome.Obs")
	}
	var kernelEvents int64
	for _, n := range o.Result.Kernel.Events {
		kernelEvents += n
	}
	if got := st.TotalEvents(); got != kernelEvents {
		t.Errorf("obs events = %d, kernel counted %d", got, kernelEvents)
	}
	if st.Windows != o.Result.Kernel.Windows {
		t.Errorf("obs windows = %d, kernel counted %d", st.Windows, o.Result.Kernel.Windows)
	}
}

// TestScenarioRecorderTraceDeterministic drives a JSONL trace through the
// whole pipeline twice (PROFILE: profiling pre-run + final run share the
// recorder) and requires byte-identical output.
func TestScenarioRecorderTraceDeterministic(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		tr := obs.NewTrace(&buf)
		sc := campusScenario(false)
		sc.Recorder = tr
		if _, err := sc.Run(context.Background(), mapping.Profile); err != nil {
			t.Fatal(err)
		}
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := emit(), emit()
	if a == "" {
		t.Fatal("empty trace")
	}
	if a != b {
		t.Fatal("identical PROFILE pipelines produced different traces")
	}
	// Two kernel runs feed one trace: the profiling pre-run and the final.
	if n := bytes.Count([]byte(a), []byte(`{"type":"run"`)); n != 2 {
		t.Errorf("trace contains %d run records, want 2 (profiling + final)", n)
	}
}

// TestScenarioRunCanceled checks ctx threading end to end: a canceled
// context aborts the pipeline with an error wrapping context.Canceled.
func TestScenarioRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := campusScenario(false).Run(ctx, mapping.Top); !errors.Is(err, context.Canceled) {
		t.Errorf("Run error = %v, want context.Canceled", err)
	}
	if _, err := campusScenario(false).RunDynamic(ctx, 10, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("RunDynamic error = %v, want context.Canceled", err)
	}
	if _, err := faultScenario().RunResilient(ctx, FaultOptions{Schedule: midRunCrash()}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunResilient error = %v, want context.Canceled", err)
	}
}

// TestResilientStatsMatchRecovery runs the full crash-recovery pipeline with
// stats collection and cross-checks the observability counters against the
// Recovery report.
func TestResilientStatsMatchRecovery(t *testing.T) {
	sc := faultScenario()
	sc.CollectStats = true
	out, err := sc.RunResilient(context.Background(), FaultOptions{Schedule: midRunCrash(), CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec := out.Recovery()
	st := out.Result.Obs
	if rec == nil || st == nil {
		t.Fatalf("missing recovery (%v) or stats (%v)", rec, st)
	}
	if rec.Failures != 1 {
		t.Fatalf("expected 1 failure, got %d", rec.Failures)
	}
	if st.Checkpoints != int64(rec.Checkpoints) || st.Crashes != 1 || st.Rollbacks != 1 {
		t.Errorf("obs checkpoints/crashes/rollbacks = %d/%d/%d, recovery checkpoints = %d",
			st.Checkpoints, st.Crashes, st.Rollbacks, rec.Checkpoints)
	}
	if got := st.TotalMigrations(); got != int64(rec.Migrations) {
		t.Errorf("obs migrations = %d, recovery says %d", got, rec.Migrations)
	}
	if st.ReplayedWindows <= 0 {
		t.Errorf("obs replayed windows = %d, want > 0 after a rollback", st.ReplayedWindows)
	}
}
