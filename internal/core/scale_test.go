package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/mapping"
	"repro/internal/netgraph"
	"repro/internal/topogen"
	"repro/internal/traffic"
)

// TestMemoryScalableRoutingEndToEnd is the tentpole acceptance test: a
// 10⁵-router topology builds, partitions (TOP), and emulates end to end
// through core with the automatic routing policy — which must have selected
// the lazy oracle and stayed far below the flat table's 12·n² bytes
// (~120 GB at this size; the whole point of the redesign).
func TestMemoryScalableRoutingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and partitions a 10⁵-router topology")
	}
	nw, err := topogen.ScaleFree(topogen.ScaleFreeConfig{
		Routers: 100_000, Hosts: 200, LinksPerNewRouter: 2, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scenario{Name: "scale-100k", Network: nw, Engines: 8, PartSeed: 7}

	// A light workload between spread hosts: the lazy oracle only pays for
	// the rows the flows actually touch.
	hosts := SpreadHosts(nw, 40)
	w := traffic.Workload{Duration: 5, AppHosts: hosts}
	for i := 0; i < 20; i++ {
		w.Flows = append(w.Flows, traffic.Flow{
			ID: i, Src: hosts[i], Dst: hosts[(i+17)%len(hosts)],
			Start: 0.1 * float64(i), Bytes: 1 << 20, Tag: "scale",
		})
	}
	sc.SetWorkload(w)

	o, err := sc.Run(context.Background(), mapping.Top)
	if err != nil {
		t.Fatal(err)
	}
	if o.Result.AppTime <= 0 {
		t.Fatalf("emulation did no work: %+v", o.Result)
	}

	routes, err := sc.Routes()
	if err != nil {
		t.Fatal(err)
	}
	s := routes.Stats()
	if s.Backend != "lazy" {
		t.Fatalf("auto policy picked %q at 10⁵ nodes, want lazy", s.Backend)
	}
	n := int64(nw.NumNodes())
	flatBytes := 12 * n * n
	if got := routes.MemoryBytes(); got >= flatBytes/100 {
		t.Fatalf("routing holds %d bytes, not sub-quadratic (flat would be %d)", got, flatBytes)
	}
	if s.Misses == 0 {
		t.Fatal("lazy oracle computed no rows — flows were not routed through it")
	}
	if sc.Network.RoutingBuilds() != 0 {
		t.Fatalf("a dense table was built %d times on the 10⁵ topology", sc.Network.RoutingBuilds())
	}
}

// TestLazyBackendMatchesFlatEndToEnd runs the identical Campus scenario under
// the flat table and the lazy oracle: every result the emulator reports must
// be identical, because lazy rows come from the same Dijkstra builder.
func TestLazyBackendMatchesFlatEndToEnd(t *testing.T) {
	run := func(o netgraph.RoutingOptions) *Outcome {
		sc := campusScenario(false)
		sc.Routing = o
		out, err := sc.Run(context.Background(), mapping.Profile)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	flat := run(netgraph.RoutingOptions{Backend: netgraph.Flat})
	lazy := run(netgraph.RoutingOptions{Backend: netgraph.Lazy, LazyRows: 16})

	if !reflect.DeepEqual(flat.Assignment, lazy.Assignment) {
		t.Fatal("flat and lazy produced different partitions")
	}
	fr, lr := flat.Result, lazy.Result
	if fr.AppTime != lr.AppTime || fr.NetTime != lr.NetTime || fr.Imbalance != lr.Imbalance {
		t.Fatalf("headline metrics differ: flat {%g %g %g}, lazy {%g %g %g}",
			fr.AppTime, fr.NetTime, fr.Imbalance, lr.AppTime, lr.NetTime, lr.Imbalance)
	}
	if !reflect.DeepEqual(fr.EngineLoads, lr.EngineLoads) {
		t.Fatal("per-engine loads differ between flat and lazy routing")
	}
	if !reflect.DeepEqual(fr.FlowFCTs, lr.FlowFCTs) {
		t.Fatal("flow completion times differ between flat and lazy routing")
	}
}

// TestScenarioConfigureWithRouting covers the functional option path into the
// scenario and the -routing override semantics: an explicit backend wins over
// the legacy HierarchicalRouting fold.
func TestScenarioConfigureWithRouting(t *testing.T) {
	sc := campusScenario(false).Configure(WithRouting(netgraph.RoutingOptions{Backend: netgraph.Lazy, LazyRows: 8}))
	r, err := sc.Routes()
	if err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Backend != "lazy" || s.Capacity != 8 {
		t.Fatalf("WithRouting not applied: %+v", s)
	}

	// Legacy fold: HierarchicalRouting with automatic options selects Hier.
	sc2 := campusScenario(false)
	sc2.HierarchicalRouting = true
	if got := sc2.routingOptions().Backend; got != netgraph.Hier {
		t.Fatalf("HierarchicalRouting folded to %v, want Hier", got)
	}
	// But an explicit backend wins.
	sc2.Routing.Backend = netgraph.Flat
	if got := sc2.routingOptions().Backend; got != netgraph.Flat {
		t.Fatalf("explicit backend overridden: %v", got)
	}

	// Invalid options surface as ErrRoutingConfig through the scenario.
	sc3 := campusScenario(false)
	sc3.Routing = netgraph.RoutingOptions{Backend: netgraph.Lazy, LazyRows: -5}
	if _, err := sc3.Routes(); err == nil {
		t.Fatal("invalid routing options must fail the run")
	}
}
