package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/emu"
	"repro/internal/faults"
	"repro/internal/mapping"
)

// Elastic distributed execution: the run starts on the initial worker set
// and the membership changes underneath it — joiners are admitted from
// opt.Joins, drainers leave gracefully, and dead workers fail-stop into the
// crash-recovery replay. Scenario.Engines is the engine capacity; the
// initial workers activate the first len(workers)×EnginesPerWorker engines
// and the TOP partition is computed over exactly that active set.

// RunElastic executes the scenario's workload under the TOP partition with
// elastic membership. The repartitioning policy at every membership change
// is mapping.RemapOnto — the same balance-vs-migration tradeoff the crash
// path uses, generalized to grow and shrink. The returned MembershipLog
// replays the run in-process (see dist.RunElastic).
func (sc *Scenario) RunElastic(ctx context.Context, workers []dist.Conn, opt dist.ElasticOptions) (*Outcome, *dist.MembershipLog, error) {
	q := opt.EnginesPerWorker
	if q <= 0 {
		q = 1
	}
	k0 := len(workers) * q
	if k0 <= 0 || k0 > sc.Engines {
		return nil, nil, fmt.Errorf("core: %d initial workers × %d engines exceeds capacity %d",
			len(workers), q, sc.Engines)
	}
	in, err := sc.mappingInput()
	if err != nil {
		return nil, nil, err
	}
	in.K = k0
	part, err := mapping.TopMap(in)
	if err != nil {
		return nil, nil, err
	}
	w, err := sc.Workload()
	if err != nil {
		return nil, nil, err
	}
	routes, err := sc.Routes()
	if err != nil {
		return nil, nil, err
	}
	spec := &dist.RunSpec{
		Cfg: emu.Config{
			Network:      sc.Network,
			Routes:       routes,
			Assignment:   part,
			NumEngines:   sc.Engines,
			Workload:     w,
			Cost:         sc.Cost,
			EndTime:      sc.EndTime,
			Transport:    sc.Transport,
			EngineSpeeds: sc.EngineSpeeds,
			Sequential:   sc.Sequential,
			Faults:       sc.Faults,
		},
		Routing:      sc.routingOptions(),
		Telemetry:    sc.newTelemetry(),
		Trace:        sc.Trace,
		Health:       sc.ClusterHealth,
		EmuOpts:      sc.runOptions(ctx),
		OnWorkerLoss: sc.lossRemap(),
	}
	if opt.OnResize == nil {
		opt.OnResize = func(ev emu.ResizeEvent) ([]int, error) {
			in, err := sc.mappingInput()
			if err != nil {
				return nil, err
			}
			next, _, err := mapping.RemapOnto(in, ev.Previous, ev.Engines, ev.Loads)
			return next, err
		}
	}
	res, log, err := dist.RunElastic(ctx, spec, workers, opt)
	if err != nil {
		return nil, nil, fmt.Errorf("core: elastic run on %s: %w", sc.Name, err)
	}
	return &Outcome{Approach: mapping.Top, Assignment: part, Result: res}, log, nil
}

// lossRemap is the crash-recovery repartitioning policy shared by the live
// elastic run and its replay: survivors are the engines actually hosting
// nodes (the active membership) minus the dead ones — never-activated
// capacity engines have no worker to run them.
func (sc *Scenario) lossRemap() func(emu.EngineFailure) ([]int, error) {
	return func(f emu.EngineFailure) ([]int, error) {
		active := make(map[int]bool, len(f.Assignment))
		for _, e := range f.Assignment {
			active[e] = true
		}
		var survivors []int
		for e := range active {
			if f.Alive[e] {
				survivors = append(survivors, e)
			}
		}
		sort.Ints(survivors)
		in, err := sc.mappingInput()
		if err != nil {
			return nil, err
		}
		next, _, err := mapping.RemapOnto(in, f.Assignment, survivors, f.Loads)
		return next, err
	}
}

// ReplayElastic re-runs an elastic distributed run in-process from its
// membership log: the applied resizes replay through Config.Elastic and the
// recorded worker losses replay as engine fail-stops under the same
// repartitioning policy the live run used. checkpointEvery must match the
// live run's cadence (it positions the rollback checkpoints for the loss
// replay). This is the equivalence oracle the tests diff against, and an
// offline reproduction tool.
func (sc *Scenario) ReplayElastic(ctx context.Context, assignment []int, log *dist.MembershipLog, checkpointEvery float64) (*emu.Result, error) {
	cfg, err := sc.ElasticReplayConfig(assignment, log)
	if err != nil {
		return nil, err
	}
	if len(log.Losses) > 0 {
		// Keep the scenario's straggler/degradation schedule alongside the
		// replayed fail-stops — it shapes the cost model the live run paid.
		sched := &faults.Schedule{Crashes: append([]faults.Crash(nil), log.Losses...)}
		if sc.Faults != nil {
			sched.Stragglers = append(sched.Stragglers, sc.Faults.Stragglers...)
			sched.Degradations = append(sched.Degradations, sc.Faults.Degradations...)
		}
		cfg.Faults = sched
		cfg.OnCrash = sc.lossRemap()
		cfg.CheckpointEvery = checkpointEvery
	}
	opts := sc.runOptions(ctx)
	if tel := sc.newTelemetry(); tel != nil {
		opts = append(opts, emu.WithTelemetry(tel))
	}
	return emu.Run(cfg, opts...)
}

// ElasticReplayConfig builds the in-process configuration that reproduces an
// elastic distributed run from its membership log — the equivalence oracle
// tests diff against, and a user's offline replay tool.
func (sc *Scenario) ElasticReplayConfig(assignment []int, log *dist.MembershipLog) (emu.Config, error) {
	w, err := sc.Workload()
	if err != nil {
		return emu.Config{}, err
	}
	routes, err := sc.Routes()
	if err != nil {
		return emu.Config{}, err
	}
	cfg := emu.Config{
		Network:      sc.Network,
		Routes:       routes,
		Assignment:   assignment,
		NumEngines:   sc.Engines,
		Workload:     w,
		Cost:         sc.Cost,
		EndTime:      sc.EndTime,
		Transport:    sc.Transport,
		EngineSpeeds: sc.EngineSpeeds,
		Sequential:   sc.Sequential,
		Faults:       sc.Faults,
	}
	for _, r := range log.Resizes {
		cfg.Elastic = append(cfg.Elastic, emu.Resize{At: r.At, Engines: r.Engines, Assignment: r.Assignment})
	}
	return cfg, nil
}
