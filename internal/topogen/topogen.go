// Package topogen generates the three experiment topologies of the paper's
// Table 1 — a university Campus section, the TeraGrid (Figure 3), and
// BRITE-style Internet-like router topologies — plus the larger Brite
// configuration of Table 2.
//
// All generators are deterministic for a given seed.
package topogen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/netgraph"
)

// Common link speeds (bits per second).
const (
	Mbps = 1e6
	Gbps = 1e9

	ms = 1e-3 // seconds
	us = 1e-6
)

// Spec summarizes a generated topology the way Table 1 does.
type Spec struct {
	Name    string
	Routers int
	Hosts   int
	// Engines is the number of simulation-engine nodes the paper assigns to
	// this topology.
	Engines int
}

// Table1 returns the paper's Table 1 rows: the three experiment topologies
// and their simulation-engine counts.
func Table1() []Spec {
	return []Spec{
		{Name: "Campus", Routers: 20, Hosts: 40, Engines: 3},
		{Name: "TeraGrid", Routers: 27, Hosts: 150, Engines: 5},
		{Name: "Brite", Routers: 160, Hosts: 132, Engines: 8},
	}
}

// Table2Spec is the larger Brite configuration of §4.2.3 / Table 2.
func Table2Spec() Spec {
	return Spec{Name: "Brite-large", Routers: 200, Hosts: 364, Engines: 20}
}

// Campus generates a section of a university campus network: 20 routers and
// 40 hosts (the Campus row of Table 1). Real campus sections are
// heterogeneous, so the departments are deliberately uneven: a 2-router
// gigabit core, four departments of different sizes (6/5/4/3 routers and
// 16/12/8/4 hosts) hanging off it, and a mix of 100 Mb/s and aging 10 Mb/s
// access links. The heterogeneity matters for the evaluation: link bandwidth
// is a poor proxy for actual traffic here, which is precisely the regime
// where the TOP approach struggles (§3.1 expects TOP to work only for
// "well-engineered networks with evenly distributed traffic").
func Campus() *netgraph.Network {
	nw := netgraph.New("Campus")
	const as = 1

	coreA := nw.AddRouter("core-0", as)
	coreB := nw.AddRouter("core-1", as)
	nw.AddLink(coreA, coreB, 1*Gbps, 0.5*ms)

	depts := []struct {
		edges int // edge routers under the department's distribution router
		hosts int
		core  int
	}{
		{5, 16, 0},
		{4, 12, 0},
		{3, 8, 1},
		{2, 4, 1},
	}
	cores := []int{coreA, coreB}

	host := 0
	for d, dept := range depts {
		dist := nw.AddRouter(fmt.Sprintf("dept%d-dist", d), as)
		nw.AddLink(cores[dept.core], dist, 100*Mbps, 1*ms)
		edges := make([]int, dept.edges)
		for e := range edges {
			edges[e] = nw.AddRouter(fmt.Sprintf("dept%d-edge%d", d, e), as)
			nw.AddLink(dist, edges[e], 100*Mbps, 1*ms)
		}
		for h := 0; h < dept.hosts; h++ {
			id := nw.AddHost(fmt.Sprintf("h%d", host), as)
			host++
			// Hosts pile unevenly onto the lower-numbered edge routers
			// (h%3 ranges over at most 3 of the 2-5 edge routers), and
			// every third access link is legacy 10 Mb/s.
			attach := edges[h%3%len(edges)]
			speed := 100 * Mbps
			if h%3 == 2 {
				speed = 10 * Mbps
			}
			nw.AddLink(id, attach, speed, 0.5*ms)
		}
	}
	return nw
}

// teraGridSite describes one TeraGrid site from Figure 3.
type teraGridSite struct {
	name    string
	routers int
	hosts   int
}

// TeraGrid generates the 2003 TeraGrid per Figure 3: five sites joined by a
// 40 Gb/s backbone through two core hub routers; each site has a border
// router and a few internal cluster routers serving its hosts. Totals match
// Table 1: 27 routers, 150 hosts.
func TeraGrid() *netgraph.Network {
	nw := netgraph.New("TeraGrid")
	sites := []teraGridSite{
		{"SDSC", 5, 40},
		{"NCSA", 5, 40},
		{"ANL", 5, 25},
		{"CIT", 5, 20},
		{"PSC", 5, 25},
	}

	// Two backbone hubs (Los Angeles and Chicago in the real TeraGrid).
	hubLA := nw.AddRouter("hub-LA", 0)
	hubCHI := nw.AddRouter("hub-CHI", 0)
	nw.SetSite(hubLA, "backbone")
	nw.SetSite(hubCHI, "backbone")
	nw.AddLink(hubLA, hubCHI, 40*Gbps, 10*ms)

	hubFor := map[string]int{
		"SDSC": hubLA, "CIT": hubLA,
		"NCSA": hubCHI, "ANL": hubCHI, "PSC": hubCHI,
	}

	host := 0
	for asn, s := range sites {
		border := nw.AddRouter(s.name+"-border", asn+1)
		nw.SetSite(border, s.name)
		nw.AddLink(border, hubFor[s.name], 40*Gbps, 3*ms)

		internal := make([]int, s.routers-1)
		for i := range internal {
			internal[i] = nw.AddRouter(fmt.Sprintf("%s-r%d", s.name, i), asn+1)
			nw.SetSite(internal[i], s.name)
			nw.AddLink(border, internal[i], 10*Gbps, 0.5*ms)
		}
		// Chain the internal routers so each site has some interior
		// structure (cluster interconnect spine).
		for i := 1; i < len(internal); i++ {
			nw.AddLink(internal[i-1], internal[i], 10*Gbps, 0.5*ms)
		}
		for h := 0; h < s.hosts; h++ {
			id := nw.AddHost(fmt.Sprintf("%s-h%d", s.name, host), asn+1)
			nw.SetSite(id, s.name)
			host++
			nw.AddLink(id, internal[h%len(internal)], 1*Gbps, 0.5*ms)
		}
	}
	return nw
}

// BriteConfig parameterizes the BRITE-like generator.
type BriteConfig struct {
	// Routers is the router count (Table 1 uses 160, Table 2 uses 200).
	Routers int
	// Hosts is the host count (132 / 364).
	Hosts int
	// LinksPerNewRouter is the Barabási–Albert incremental attachment
	// degree m; BRITE's default is 2.
	LinksPerNewRouter int
	// Seed drives all random choices.
	Seed int64
}

// Brite generates an Internet-like router-level topology following BRITE's
// Barabási–Albert mode: routers are placed on a unit plane and join the
// network one at a time, connecting m links to existing routers chosen with
// probability proportional to their current degree. Link latencies derive
// from plane distance; bandwidths are drawn from typical 2003 transit tiers.
// Hosts attach to uniformly random routers on fast-Ethernet access links.
// All routers share one AS, matching §4.2.3 ("all the routers are created in
// a single AS"). It errors when the configuration asks for fewer than 2
// routers — user input, not an internal invariant.
func Brite(cfg BriteConfig) (*netgraph.Network, error) {
	if cfg.Routers < 2 {
		return nil, fmt.Errorf("topogen: Brite needs at least 2 routers, got %d", cfg.Routers)
	}
	if cfg.LinksPerNewRouter < 1 {
		cfg.LinksPerNewRouter = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nw := netgraph.New(fmt.Sprintf("Brite-%dr%dh", cfg.Routers, cfg.Hosts))
	const as = 1

	// Router placement on the unit square; latency ∝ distance (speed of
	// light in fiber over a continental scale: the unit square spans ~20ms).
	x := make([]float64, cfg.Routers)
	y := make([]float64, cfg.Routers)
	deg := make([]int, cfg.Routers)
	var totalDeg int

	routers := make([]int, cfg.Routers)
	for i := 0; i < cfg.Routers; i++ {
		routers[i] = nw.AddRouter(fmt.Sprintf("r%d", i), as)
		x[i], y[i] = rng.Float64(), rng.Float64()
	}

	latency := func(i, j int) float64 {
		d := math.Hypot(x[i]-x[j], y[i]-y[j])
		l := d * 20 * ms
		if l < 0.5*ms {
			l = 0.5 * ms
		}
		return l
	}
	bandwidth := func() float64 {
		// 2003 transit tiers: OC-3 (155 Mb/s), OC-12 (622 Mb/s),
		// OC-48 (2.5 Gb/s) — heavier tail on the slower tiers.
		switch r := rng.Float64(); {
		case r < 0.5:
			return 155 * Mbps
		case r < 0.85:
			return 622 * Mbps
		default:
			return 2.5 * Gbps
		}
	}

	// Seed clique of m+1 routers.
	seedN := cfg.LinksPerNewRouter + 1
	if seedN > cfg.Routers {
		seedN = cfg.Routers
	}
	for i := 0; i < seedN; i++ {
		for j := i + 1; j < seedN; j++ {
			nw.AddLink(routers[i], routers[j], bandwidth(), latency(i, j))
			deg[i]++
			deg[j]++
			totalDeg += 2
		}
	}

	// Incremental preferential attachment.
	for i := seedN; i < cfg.Routers; i++ {
		m := cfg.LinksPerNewRouter
		if m > i {
			m = i
		}
		chosen := make(map[int]bool, m)
		for len(chosen) < m {
			t := pickPreferential(rng, deg[:i], totalDeg)
			if chosen[t] {
				// Resample; dense early graphs make collisions common.
				t = rng.Intn(i)
				if chosen[t] {
					continue
				}
			}
			chosen[t] = true
			nw.AddLink(routers[i], routers[t], bandwidth(), latency(i, t))
			deg[i]++
			deg[t]++
			totalDeg += 2
		}
	}

	// Hosts on uniformly random routers.
	for h := 0; h < cfg.Hosts; h++ {
		id := nw.AddHost(fmt.Sprintf("h%d", h), as)
		r := routers[rng.Intn(cfg.Routers)]
		nw.AddLink(id, r, 100*Mbps, 0.5*ms)
	}
	return nw, nil
}

// pickPreferential samples an index from deg with probability proportional
// to degree (uniform fallback if all degrees are zero).
func pickPreferential(rng *rand.Rand, deg []int, totalDeg int) int {
	if totalDeg <= 0 {
		return rng.Intn(len(deg))
	}
	// totalDeg counts the whole graph; restrict to the prefix sum.
	var prefixTotal int
	for _, d := range deg {
		prefixTotal += d
	}
	if prefixTotal <= 0 {
		return rng.Intn(len(deg))
	}
	t := rng.Intn(prefixTotal)
	for i, d := range deg {
		t -= d
		if t < 0 {
			return i
		}
	}
	return len(deg) - 1
}

// ByName builds one of the paper's topologies by Table 1 name ("Campus",
// "TeraGrid", "Brite") or the Table 2 configuration ("Brite-large").
// The seed only affects the Brite variants.
func ByName(name string, seed int64) (*netgraph.Network, error) {
	switch name {
	case "Campus":
		return Campus(), nil
	case "TeraGrid":
		return TeraGrid(), nil
	case "Brite":
		return Brite(BriteConfig{Routers: 160, Hosts: 132, LinksPerNewRouter: 2, Seed: seed})
	case "Brite-large":
		return Brite(BriteConfig{Routers: 200, Hosts: 364, LinksPerNewRouter: 2, Seed: seed})
	default:
		return nil, fmt.Errorf("topogen: unknown topology %q", name)
	}
}
