package topogen

import (
	"testing"
)

func TestScaleFreeShape(t *testing.T) {
	nw, err := ScaleFree(ScaleFreeConfig{Routers: 500, Hosts: 100, LinksPerNewRouter: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumRouters() != 500 || nw.NumHosts() != 100 {
		t.Fatalf("got %d routers, %d hosts", nw.NumRouters(), nw.NumHosts())
	}
	// m+1 seed clique + m links per later router + one per host.
	wantLinks := 3 + 2*(500-3) + 100
	if len(nw.Links) != wantLinks {
		t.Fatalf("got %d links, want %d", len(nw.Links), wantLinks)
	}
	for _, l := range nw.Links {
		if l.Bandwidth <= 0 || l.Latency <= 0 {
			t.Fatalf("link (%d,%d) has non-positive bandwidth %g or latency %g",
				l.A, l.B, l.Bandwidth, l.Latency)
		}
	}
}

// TestScaleFreeConnected checks every node reaches node 0 — preferential
// attachment always links new routers into the existing component and hosts
// hang off routers, so the graph must be one component.
func TestScaleFreeConnected(t *testing.T) {
	nw, err := ScaleFree(ScaleFreeConfig{Routers: 300, Hosts: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := nw.NumNodes()
	adj := make([][]int, n)
	for _, l := range nw.Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				queue = append(queue, u)
			}
		}
	}
	if count != n {
		t.Fatalf("reached %d of %d nodes", count, n)
	}
}

func TestScaleFreeDeterministic(t *testing.T) {
	a, err := ScaleFree(ScaleFreeConfig{Routers: 200, Hosts: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaleFree(ScaleFreeConfig{Routers: 200, Hosts: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Links) != len(b.Links) {
		t.Fatalf("link counts differ: %d vs %d", len(a.Links), len(b.Links))
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, a.Links[i], b.Links[i])
		}
	}
}

func TestScaleFreeRejectsTinyConfig(t *testing.T) {
	if _, err := ScaleFree(ScaleFreeConfig{Routers: 1}); err == nil {
		t.Fatal("1-router config must error")
	}
}
