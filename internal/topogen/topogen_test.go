package topogen

import (
	"testing"

	"repro/internal/netgraph"
)

func mustBrite(t *testing.T, cfg BriteConfig) *netgraph.Network {
	t.Helper()
	nw, err := Brite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestTable1Specs(t *testing.T) {
	specs := Table1()
	if len(specs) != 3 {
		t.Fatalf("Table1 rows = %d, want 3", len(specs))
	}
	want := []Spec{
		{"Campus", 20, 40, 3},
		{"TeraGrid", 27, 150, 5},
		{"Brite", 160, 132, 8},
	}
	for i, s := range specs {
		if s != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, s, want[i])
		}
	}
}

func TestCampusMatchesTable1(t *testing.T) {
	nw := Campus()
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if nw.NumRouters() != 20 {
		t.Errorf("Campus routers = %d, want 20", nw.NumRouters())
	}
	if nw.NumHosts() != 40 {
		t.Errorf("Campus hosts = %d, want 40", nw.NumHosts())
	}
}

func TestTeraGridMatchesTable1(t *testing.T) {
	nw := TeraGrid()
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if nw.NumRouters() != 27 {
		t.Errorf("TeraGrid routers = %d, want 27", nw.NumRouters())
	}
	if nw.NumHosts() != 150 {
		t.Errorf("TeraGrid hosts = %d, want 150", nw.NumHosts())
	}
	// Five sites plus the backbone hubs.
	sites := map[string]int{}
	for _, n := range nw.Nodes {
		if n.Site != "" && n.Site != "backbone" {
			sites[n.Site]++
		}
	}
	if len(sites) != 5 {
		t.Errorf("TeraGrid sites = %v, want 5", sites)
	}
	// Figure 3: every site connects to the backbone at 40 Gb/s.
	for _, l := range nw.Links {
		a, b := nw.Nodes[l.A], nw.Nodes[l.B]
		backbone := a.Site == "backbone" || b.Site == "backbone"
		if backbone && l.Bandwidth < 40*Gbps {
			t.Errorf("backbone link %d bandwidth = %v, want >= 40 Gb/s", l.ID, l.Bandwidth)
		}
	}
}

func TestBriteMatchesTable1(t *testing.T) {
	nw := mustBrite(t, BriteConfig{Routers: 160, Hosts: 132, LinksPerNewRouter: 2, Seed: 1})
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if nw.NumRouters() != 160 {
		t.Errorf("Brite routers = %d, want 160", nw.NumRouters())
	}
	if nw.NumHosts() != 132 {
		t.Errorf("Brite hosts = %d, want 132", nw.NumHosts())
	}
	// Single AS (§4.2.3).
	for _, n := range nw.Nodes {
		if n.AS != 1 {
			t.Fatalf("node %d in AS %d, want 1", n.ID, n.AS)
		}
	}
}

func TestBriteDeterministic(t *testing.T) {
	a := mustBrite(t, BriteConfig{Routers: 50, Hosts: 30, Seed: 7})
	b := mustBrite(t, BriteConfig{Routers: 50, Hosts: 30, Seed: 7})
	if len(a.Links) != len(b.Links) {
		t.Fatal("same seed, different link counts")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("same seed, different link %d", i)
		}
	}
	c := mustBrite(t, BriteConfig{Routers: 50, Hosts: 30, Seed: 8})
	same := len(a.Links) == len(c.Links)
	if same {
		identical := true
		for i := range a.Links {
			if a.Links[i] != c.Links[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical topologies")
		}
	}
}

func TestBritePreferentialAttachmentSkew(t *testing.T) {
	// BA graphs have a hub structure: max degree should be well above the
	// mean degree.
	nw := mustBrite(t, BriteConfig{Routers: 200, Hosts: 0, LinksPerNewRouter: 2, Seed: 3})
	maxDeg, sumDeg := 0, 0
	for _, r := range nw.Routers() {
		d := len(nw.IncidentLinks(r))
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sumDeg) / 200
	if float64(maxDeg) < 3*mean {
		t.Errorf("max degree %d vs mean %.1f: no preferential-attachment skew", maxDeg, mean)
	}
}

func TestBriteLarge(t *testing.T) {
	spec := Table2Spec()
	nw := mustBrite(t, BriteConfig{Routers: spec.Routers, Hosts: spec.Hosts, LinksPerNewRouter: 2, Seed: 11})
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if nw.NumRouters() != 200 || nw.NumHosts() != 364 {
		t.Errorf("Brite-large = %dr/%dh, want 200/364", nw.NumRouters(), nw.NumHosts())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Campus", "TeraGrid", "Brite", "Brite-large"} {
		nw, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := nw.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestBriteErrorsOnTinyConfig(t *testing.T) {
	if _, err := Brite(BriteConfig{Routers: 1}); err == nil {
		t.Error("Brite with 1 router did not error")
	}
}

func TestAllTopologiesRoutable(t *testing.T) {
	for _, name := range []string{"Campus", "TeraGrid", "Brite"} {
		nw, err := ByName(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		rt := nw.BuildRoutingTable()
		hosts := nw.Hosts()
		// Every host pair must be routable.
		for i := 0; i < len(hosts); i += 7 {
			for j := 0; j < len(hosts); j += 11 {
				if nw.Route(rt, hosts[i], hosts[j]) == nil {
					t.Fatalf("%s: no route %d -> %d", name, hosts[i], hosts[j])
				}
			}
		}
	}
}

func TestBriteIsSmallWorld(t *testing.T) {
	// Barabási–Albert graphs have logarithmic diameters and hub-dominated
	// degree distributions: for 200 routers, diameter well under 12 and a
	// hub with degree >= 10.
	nw := mustBrite(t, BriteConfig{Routers: 200, Hosts: 0, LinksPerNewRouter: 2, Seed: 5})
	s := nw.ComputeStats()
	if s.Diameter < 3 || s.Diameter > 12 {
		t.Errorf("BA diameter = %d, want small-world range", s.Diameter)
	}
	if s.MaxDegree < 10 {
		t.Errorf("BA max degree = %d, want hub >= 10", s.MaxDegree)
	}
	if s.MeanDegree < 3.5 || s.MeanDegree > 4.5 {
		t.Errorf("BA mean degree = %.2f, want ~4 (m=2)", s.MeanDegree)
	}
}

func TestCampusStats(t *testing.T) {
	s := Campus().ComputeStats()
	// Two-level tree off a 2-router core: diameter ~6, no isolated routers.
	if s.Diameter < 3 || s.Diameter > 8 {
		t.Errorf("Campus diameter = %d", s.Diameter)
	}
	if s.MinDegree < 1 {
		t.Errorf("Campus has an isolated router: %+v", s)
	}
}
