package topogen

import (
	"fmt"
	"math/rand"

	"repro/internal/netgraph"
)

// ScaleFreeConfig parameterizes the linear-time scale-free generator.
type ScaleFreeConfig struct {
	// Routers is the router count.
	Routers int
	// Hosts is the host count (hosts attach to uniformly random routers).
	Hosts int
	// LinksPerNewRouter is the Barabási–Albert attachment degree m
	// (default 2, like Brite).
	LinksPerNewRouter int
	// Seed drives all random choices.
	Seed int64
}

// ScaleFree generates a Barabási–Albert router topology in O(n·m) time — the
// scaling companion to Brite, whose degree-prefix sampling is O(n) per pick
// and quadratic overall. Preferential attachment is implemented with the
// repeated-endpoints trick: every link appends both endpoints to a flat
// list, so a uniform draw from the list IS a degree-proportional draw.
// Latencies are drawn from the same continental range Brite's plane distance
// produces ([0.5ms, 20ms]) and bandwidths from the same 2003 transit tiers,
// but without the O(n) coordinate bookkeeping per link. All routers share
// one AS, so routing falls to the auto-clustered hierarchical or lazy
// oracles at scale.
func ScaleFree(cfg ScaleFreeConfig) (*netgraph.Network, error) {
	if cfg.Routers < 2 {
		return nil, fmt.Errorf("topogen: ScaleFree needs at least 2 routers, got %d", cfg.Routers)
	}
	if cfg.LinksPerNewRouter < 1 {
		cfg.LinksPerNewRouter = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nw := netgraph.New(fmt.Sprintf("ScaleFree-%dr%dh", cfg.Routers, cfg.Hosts))
	const as = 1

	latency := func() float64 {
		return 0.5*ms + rng.Float64()*19.5*ms
	}
	bandwidth := func() float64 {
		switch r := rng.Float64(); {
		case r < 0.5:
			return 155 * Mbps
		case r < 0.85:
			return 622 * Mbps
		default:
			return 2.5 * Gbps
		}
	}

	routers := make([]int, cfg.Routers)
	for i := range routers {
		routers[i] = nw.AddRouter(fmt.Sprintf("r%d", i), as)
	}

	// endpoints holds every link endpoint once; uniform sampling from it is
	// degree-proportional sampling.
	m := cfg.LinksPerNewRouter
	endpoints := make([]int, 0, 2*m*cfg.Routers)
	addLink := func(i, j int) {
		nw.AddLink(routers[i], routers[j], bandwidth(), latency())
		endpoints = append(endpoints, i, j)
	}

	// Seed clique of m+1 routers.
	seedN := m + 1
	if seedN > cfg.Routers {
		seedN = cfg.Routers
	}
	for i := 0; i < seedN; i++ {
		for j := i + 1; j < seedN; j++ {
			addLink(i, j)
		}
	}

	// Incremental attachment: each new router draws m distinct targets from
	// the endpoint list (degree-proportional), falling back to a uniform
	// draw after repeated collisions so dense early graphs cannot stall.
	chosen := make(map[int]bool, m)
	for i := seedN; i < cfg.Routers; i++ {
		mi := m
		if mi > i {
			mi = i
		}
		clear(chosen)
		// Sample from the endpoint list as it stood before router i started
		// attaching, so i can never draw itself into a self-loop.
		limit := len(endpoints)
		for len(chosen) < mi {
			t := endpoints[rng.Intn(limit)]
			if chosen[t] {
				t = rng.Intn(i)
				if chosen[t] {
					continue
				}
			}
			chosen[t] = true
			addLink(i, t)
		}
	}

	for h := 0; h < cfg.Hosts; h++ {
		id := nw.AddHost(fmt.Sprintf("h%d", h), as)
		nw.AddLink(id, routers[rng.Intn(cfg.Routers)], 100*Mbps, 0.5*ms)
	}
	return nw, nil
}
