package dist

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"repro/internal/emu"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Type: MsgHello, Payload: Hello{Version: Version}.Encode()},
		{Type: MsgBye},
		{Type: MsgEvents, Payload: []byte{}},
		{Type: MsgError, Payload: TextMsg{Text: "boom"}.Encode()},
		{Type: MsgWindow, Payload: bytes.Repeat([]byte{0xab}, 4096)},
	}
	var buf bytes.Buffer
	for _, f := range cases {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write %s: %v", f.Type, err)
		}
	}
	for _, want := range cases {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", want.Type, err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %s did not round-trip (got %s, %d bytes)", want.Type, got.Type, len(got.Payload))
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("clean stream end should read as EOF, got %v", err)
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], MaxFrame+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "MaxFrame") {
		t.Fatalf("oversized length prefix must be rejected before allocation, got %v", err)
	}
}

func TestReadFrameRejectsEmptyFrame(t *testing.T) {
	_, err := ReadFrame(bytes.NewReader(make([]byte, 4)))
	if err == nil {
		t.Fatal("zero-length frame must be rejected")
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: MsgVote, Payload: Vote{Has: true, Time: 1.5}.Encode()}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d of %d bytes must error", cut, len(full))
		}
	}
}

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	// Don't allocate 64 MB: a fake slice header would be UB, so use a real
	// allocation but only once, at exactly the limit boundary.
	big := make([]byte, MaxFrame) // payload+1 > MaxFrame
	err := WriteFrame(io.Discard, Frame{Type: MsgState, Payload: big})
	if err == nil {
		t.Fatal("payload at MaxFrame (with type byte overflowing) must be rejected")
	}
}

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must never
// panic or over-allocate, only return a frame or an error.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, Frame{Type: MsgHello, Payload: Hello{Version: 1}.Encode()})
	f.Add(seed.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed frame must re-encode to a readable frame.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("re-encode of parsed frame failed: %v", err)
		}
		back, err := ReadFrame(&buf)
		if err != nil || back.Type != fr.Type || !bytes.Equal(back.Payload, fr.Payload) {
			t.Fatalf("parsed frame did not round-trip: %v", err)
		}
	})
}

// FuzzDecodePayloads drives every message decoder with arbitrary payloads:
// the decoders must return errors, never panic, on malformed input.
func FuzzDecodePayloads(f *testing.F) {
	f.Add(Hello{Version: 1}.Encode())
	f.Add(Vote{Has: true, Time: 3.25}.Encode())
	f.Add(Window{Start: 1, End: 2}.Encode())
	f.Add(EncodeEvents(nil))
	f.Add(ExportMsg{At: 2.5}.Encode())
	f.Add(InstallAck{Lookahead: 0.005}.Encode())
	f.Add(EncodeElasticExport(&emu.ElasticExport{Engines: []int{1}, FCTs: []float64{-1, 0.5}}))
	f.Add(EncodeElasticInstall(&emu.ElasticInstall{At: 2, Lookahead: 0.01, Engines: []int{0, 1}}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		DecodeHello(data)
		DecodeAssign(data)
		DecodeReady(data)
		DecodeEvents(data)
		DecodeVote(data)
		DecodeWindow(data)
		DecodeWindowDone(data)
		DecodeCheckpoint(data)
		DecodeCheckpointAck(data)
		DecodeState(data)
		DecodeText(data)
		DecodeSpec(data)
		DecodeExportMsg(data)
		DecodeElasticExport(data)
		DecodeElasticInstall(data)
		DecodeInstallAck(data)
	})
}
