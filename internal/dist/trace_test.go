package dist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// tracedInProcess runs the scenario in-process and returns the canonical
// trace projection.
func tracedInProcess(t *testing.T, topology string) []byte {
	t.Helper()
	sc := scenario(t, topology)
	tl := obs.NewTimeline()
	sc.Trace = tl
	if _, err := sc.Run(context.Background(), mapping.Top); err != nil {
		t.Fatalf("in-process traced run: %v", err)
	}
	return tl.CanonicalJSON()
}

// tracedLoopback runs the scenario over loopback workers and returns the
// canonical projection of the coordinator's merged timeline.
func tracedLoopback(t *testing.T, topology string, workers int) []byte {
	t.Helper()
	ctx := context.Background()
	conns, drain := startLoopbackWorkers(ctx, workers)
	sc := scenario(t, topology)
	tl := obs.NewTimeline()
	sc.Trace = tl
	if _, err := sc.RunDistributed(ctx, mapping.Top, conns, dist.Options{}); err != nil {
		t.Fatalf("distributed traced run: %v", err)
	}
	for i, werr := range drain() {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	return tl.CanonicalJSON()
}

// TestDistributedTraceMatchesInProcess is the tracing determinism contract:
// the canonical projection of the merged cluster timeline — virtual-time
// bounds and modeled busy per compute span — is byte-identical whether the
// scenario runs in one process or spread over workers, for any worker count.
func TestDistributedTraceMatchesInProcess(t *testing.T) {
	cases := []struct {
		topology string
		workers  int
	}{
		{"Campus", 2},
		{"Campus", 3}, // one engine per worker
		{"TeraGrid", 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s-%dw", tc.topology, tc.workers), func(t *testing.T) {
			t.Parallel()
			want := tracedInProcess(t, tc.topology)
			if len(want) == 0 {
				t.Fatal("empty canonical trace proves nothing")
			}
			got := tracedLoopback(t, tc.topology, tc.workers)
			if !bytes.Equal(want, got) {
				t.Fatalf("distributed trace diverges from in-process (%d vs %d bytes):\nin-process: %.400s\ndistributed: %.400s",
					len(want), len(got), want, got)
			}
		})
	}
}

// TestDistributedTraceTCPMatchesLoopback: the transports must also be
// interchangeable for the trace plane, not just the result path.
func TestDistributedTraceTCPMatchesLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test")
	}
	const workers = 2
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	l, err := dist.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	werrs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() { werrs <- dist.DialAndServe(ctx, l.Addr().String(), dist.WorkerOptions{}) }()
	}
	conns := make([]dist.Conn, workers)
	for i := range conns {
		c, err := dist.Accept(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	sc := scenario(t, "Campus")
	tl := obs.NewTimeline()
	sc.Trace = tl
	if _, err := sc.RunDistributed(ctx, mapping.Top, conns, dist.Options{}); err != nil {
		t.Fatalf("distributed over TCP: %v", err)
	}
	for i := 0; i < workers; i++ {
		if werr := <-werrs; werr != nil {
			t.Fatalf("tcp worker %d: %v", i, werr)
		}
	}
	if !bytes.Equal(tl.CanonicalJSON(), tracedLoopback(t, "Campus", workers)) {
		t.Fatal("TCP and loopback transports produced different canonical traces")
	}
}

// shareFromMetrics extracts massf_worker_critical_path_share{worker="N"}
// from a Prometheus text exposition.
func shareFromMetrics(t *testing.T, body string, worker int) float64 {
	t.Helper()
	prefix := fmt.Sprintf(`massf_worker_critical_path_share{worker="%d"} `, worker)
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, prefix), 64)
			if err != nil {
				t.Fatalf("unparseable share line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no %s in /metrics:\n%s", prefix, body)
	return 0
}

// TestElasticStragglerTraceAndHealth is the end-to-end acceptance check: a
// 3-worker elastic run with a 12x straggler schedule on worker 1's engine
// must (a) produce a Perfetto-loadable trace whose barrier-wait spans show
// the other workers gated on it, (b) attribute the majority of the critical
// path to worker 1 in the timeline, and (c) surface that attribution on the
// /metrics and /healthz cluster-health endpoints.
func TestElasticStragglerTraceAndHealth(t *testing.T) {
	ctx := context.Background()
	const workers = 3 // Campus has 3 engines: one per slot, slot 1 = engine 1

	conns := make([]dist.Conn, workers)
	ws := make([]*elasticWorker, workers)
	for i := range conns {
		c, s := dist.Loopback()
		conns[i] = c
		ws[i] = startElasticWorker(ctx, s)
	}

	sc := scenario(t, "Campus")
	sc.Faults = &faults.Schedule{Stragglers: []faults.Straggler{
		{Engine: 1, From: 0, To: 1e9, Factor: 12},
	}}
	tl := obs.NewTimeline()
	sc.Trace = tl
	health := telemetry.NewClusterHealth()
	sc.ClusterHealth = health

	o, _, err := sc.RunElastic(ctx, conns, dist.ElasticOptions{
		Options: dist.Options{CheckpointEvery: elasticCkpt},
	})
	if err != nil {
		t.Fatalf("elastic straggler run: %v", err)
	}
	for i, w := range ws {
		w.wait(t, fmt.Sprintf("worker %d", i))
	}
	if o.Result.Kernel.TotalCharges() == 0 {
		t.Fatal("empty run proves nothing")
	}

	// (b) Timeline attribution: worker 1 holds the majority of the critical
	// path and the others wait for it at barriers.
	var slowShare float64
	for _, h := range tl.Health() {
		if h.Worker == 1 {
			slowShare = h.Share
			if h.GatedWindows == 0 {
				t.Error("straggler worker gated no windows")
			}
		}
	}
	if slowShare < 0.5 {
		t.Errorf("straggler critical-path share %.2f < 0.5", slowShare)
	}
	gatedByOther := false
	for _, s := range tl.Spans() {
		if s.Kind == obs.SpanBarrier && s.Worker != 1 && s.Busy > 0 {
			gatedByOther = true
			break
		}
	}
	if !gatedByOther {
		t.Error("no barrier-wait spans show workers gated on the straggler")
	}

	// (a) The trace export is valid trace_event JSON with events on worker
	// 1's track.
	var buf bytes.Buffer
	if err := tl.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	var computeOnSlow, barriers int
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch {
		case ev.Name == "compute" && ev.Pid == 1:
			computeOnSlow++
		case ev.Name == "barrier-wait":
			barriers++
		}
	}
	if computeOnSlow == 0 || barriers == 0 {
		t.Errorf("trace export lacks the straggler story: %d compute events on worker 1, %d barrier-waits",
			computeOnSlow, barriers)
	}

	// (c) Cluster-health endpoints carry the same attribution.
	mux := http.NewServeMux()
	telemetry.MountCluster(nil, health)(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := shareFromMetrics(t, rec.Body.String(), 1); got < 0.5 {
		t.Errorf("/metrics critical-path share for worker 1 = %g, want >= 0.5", got)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var hz struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
		Windows int64  `json:"windows"`
		Detail  []struct {
			Worker int     `json:"worker"`
			Gated  int64   `json:"gated_windows"`
			Share  float64 `json:"critical_path_share"`
		} `json:"worker_detail"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatalf("/healthz is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	if hz.Status != "ok" || hz.Workers != workers || hz.Windows == 0 {
		t.Errorf("/healthz summary = %+v, want ok/%d workers/nonzero windows", hz, workers)
	}
	found := false
	for _, d := range hz.Detail {
		if d.Worker == 1 {
			found = true
			if d.Share < 0.5 || d.Gated == 0 {
				t.Errorf("/healthz worker 1 detail = %+v, want majority share and gated windows", d)
			}
		}
	}
	if !found {
		t.Error("/healthz has no row for the straggler worker")
	}
}

// TestElasticChurnStats: the membership churn of an elastic run — a join and
// a drain at the first checkpoint barrier — lands in an external
// obs.RunStats recorder attached through the coordinator's observation
// plane, matching the membership record the result carries.
func TestElasticChurnStats(t *testing.T) {
	ctx := context.Background()

	conns := make([]dist.Conn, 2)
	ws := make([]*elasticWorker, 2)
	for i := range conns {
		c, s := dist.Loopback()
		conns[i] = c
		ws[i] = startElasticWorker(ctx, s)
	}
	jc, js := dist.Loopback()
	joiner := startElasticWorker(ctx, js)
	joins := make(chan dist.Conn, 1)
	joins <- jc
	close(ws[0].drain)

	stats := obs.NewRunStats()
	sc := scenario(t, "Campus")
	sc.Recorder = stats
	o, _, err := sc.RunElastic(ctx, conns, dist.ElasticOptions{
		Options: dist.Options{CheckpointEvery: elasticCkpt},
		Joins:   joins,
	})
	if err != nil {
		t.Fatalf("elastic churn run: %v", err)
	}
	ws[0].wait(t, "drained worker")
	ws[1].wait(t, "worker 1")
	joiner.wait(t, "joiner")

	m := o.Result.Membership
	if m == nil || len(m.Resizes) != 1 {
		t.Fatalf("expected one membership resize, got %+v", m)
	}
	// The joiner occupied slot 2 (engine 2), the drainer left slot 0.
	if got := sum(stats.Joins); got != 1 || len(stats.Joins) <= 2 || stats.Joins[2] != 1 {
		t.Errorf("RunStats.Joins = %v (sum %d), want exactly engine 2 joining", stats.Joins, got)
	}
	if got := sum(stats.Drains); got != 1 || stats.Drains[0] != 1 {
		t.Errorf("RunStats.Drains = %v (sum %d), want exactly engine 0 draining", stats.Drains, got)
	}
	if got := sum(stats.Kills); got != 0 {
		t.Errorf("clean churn run recorded %d kills: %v", got, stats.Kills)
	}
}

func sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
