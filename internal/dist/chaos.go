package dist

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Chaos is a deterministic fault-injecting Conn wrapper for robustness
// testing: a seeded stream of drop / duplicate / delay / reorder decisions,
// plus an optional one-sided partition after a fixed number of sends. All
// decisions come from one seeded source under a mutex and no goroutines are
// spawned, so a test run with a given seed misbehaves identically every
// time. Dropped and mangled frames surface to the protocol as timeouts or
// unexpected-frame errors — the properties under test are that the run
// either converges to the canonical result (loss recovery) or returns a
// typed error, never hangs.
type ChaosConfig struct {
	// Seed drives every decision; runs with equal seeds inject identically.
	Seed int64
	// DropProb silently discards a sent frame.
	DropProb float64
	// DupProb sends a frame twice.
	DupProb float64
	// DelayProb sleeps MaxDelay×U[0,1) before a send (blocking the sender —
	// the protocol is lockstep, so a blocked send models a slow link).
	DelayProb float64
	// MaxDelay bounds an injected delay (default 10ms when DelayProb > 0).
	MaxDelay time.Duration
	// ReorderProb holds a frame back and emits it after the next one.
	ReorderProb float64
	// PartitionAfter, when > 0, drops every send after that many successful
	// ones — a one-sided partition: the peer's frames still arrive, ours
	// vanish.
	PartitionAfter int
}

type chaosConn struct {
	inner Conn
	cfg   ChaosConfig

	mu    sync.Mutex
	rng   *rand.Rand
	sent  int
	held  *Frame // reorder buffer: emitted after the next send
}

// NewChaosConn wraps a Conn with deterministic fault injection on its send
// side. Wrap one side (or both, with different seeds) of a Loopback or TCP
// pair.
func NewChaosConn(inner Conn, cfg ChaosConfig) Conn {
	if cfg.DelayProb > 0 && cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	return &chaosConn{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (c *chaosConn) Send(f Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()

	if c.cfg.PartitionAfter > 0 && c.sent >= c.cfg.PartitionAfter {
		return nil // one-sided partition: swallow silently
	}
	if c.cfg.DelayProb > 0 && c.rng.Float64() < c.cfg.DelayProb {
		time.Sleep(time.Duration(c.rng.Float64() * float64(c.cfg.MaxDelay)))
	}
	if c.cfg.DropProb > 0 && c.rng.Float64() < c.cfg.DropProb {
		c.sent++
		return nil
	}
	if c.held != nil {
		// A held frame jumps the queue decision: emit the new frame first,
		// then the held one — a two-frame reorder.
		held := *c.held
		c.held = nil
		if err := c.inner.Send(f); err != nil {
			return err
		}
		c.sent++
		return c.inner.Send(held)
	}
	if c.cfg.ReorderProb > 0 && c.rng.Float64() < c.cfg.ReorderProb {
		cp := f
		cp.Payload = append([]byte(nil), f.Payload...)
		c.held = &cp
		c.sent++
		return nil
	}
	if err := c.inner.Send(f); err != nil {
		return err
	}
	c.sent++
	if c.cfg.DupProb > 0 && c.rng.Float64() < c.cfg.DupProb {
		return c.inner.Send(f)
	}
	return nil
}

func (c *chaosConn) Recv(timeout time.Duration) (Frame, error) { return c.inner.Recv(timeout) }
func (c *chaosConn) Close() error                              { return c.inner.Close() }
func (c *chaosConn) Label() string {
	return fmt.Sprintf("chaos(seed=%d) %s", c.cfg.Seed, c.inner.Label())
}
