package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/des"
	"repro/internal/emu"
	"repro/internal/faults"
	"repro/internal/netgraph"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// RunSpec is everything the coordinator needs to drive one distributed run.
type RunSpec struct {
	// Cfg is the scenario; it is normalized in place before shipping.
	// Straggler/degradation schedules in Cfg.Faults ship with the spec;
	// crash schedules are rejected (EncodeSpec), and OnCrash must be nil —
	// worker-loss recovery supplies its own remapper via OnWorkerLoss.
	Cfg emu.Config
	// Routing tells workers which route-oracle backend to rebuild.
	Routing netgraph.RoutingOptions
	// Telemetry, when non-nil, is the coordinator-side collector the workers'
	// traffic-plane shares merge into (it feeds /metrics and ToProfile
	// exactly as in-process).
	Telemetry *telemetry.Collector
	// EmuOpts carries recorders/stats options for the coordinator's
	// observation plane, as for emu.Run.
	EmuOpts []emu.Option
	// Trace, when non-nil, turns on distributed tracing: workers measure and
	// ship wall-clock spans, and the coordinator merges them with its
	// deterministic modeled spans into this timeline.
	Trace *obs.Timeline
	// Health, when non-nil, receives the live cluster health signal — worker
	// count, per-worker gated windows and critical-path share, window lag,
	// heartbeat RTTs — for the /metrics and /healthz mounts.
	Health *telemetry.ClusterHealth
	// OnWorkerLoss computes the recovery assignment when a worker is lost:
	// the run degrades to the in-process crash-recovery path with the lost
	// worker's engines fail-stopped, and this hook (typically the same
	// RemapSurvivors policy used for injected faults) remaps their nodes
	// onto survivors. When nil, worker loss is fatal.
	OnWorkerLoss func(f emu.EngineFailure) ([]int, error)
}

// Options tunes the coordinator's protocol timing.
type Options struct {
	// HandshakeTimeout bounds HELLO/READY waits per worker (default 30 s).
	HandshakeTimeout time.Duration
	// StepTimeout bounds every in-run worker response — votes, window
	// reports, checkpoint acks, final states (default 60 s). A worker
	// silent past it is treated as lost.
	StepTimeout time.Duration
	// CheckpointEvery is the virtual-time checkpoint cadence (default
	// emu.DefaultCheckpointEvery). Checkpoints give workers a consistent
	// cut; the v1 recovery path replays from time zero in-process, so the
	// cadence here only bounds worker-side snapshot staleness.
	CheckpointEvery float64
	// Logf, when set, receives one line per protocol phase.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 30 * time.Second
	}
	if o.StepTimeout <= 0 {
		o.StepTimeout = 60 * time.Second
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = emu.DefaultCheckpointEvery
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// ErrWorkerLost marks a run that lost a worker (transport failure, protocol
// violation, or heartbeat silence). errors.Is(err, ErrWorkerLost) holds on
// every loss-shaped error the coordinator returns.
var ErrWorkerLost = errors.New("worker lost")

// ErrWorkerFault marks a worker-reported simulation error (an ERROR frame: a
// poisoned run, a malformed event). It is deterministic — a fallback replay
// would hit it again — so the coordinator aborts with it instead of
// degrading.
var ErrWorkerFault = errors.New("worker fault")

// workerLost marks a worker conn failure; it triggers the degradation path
// rather than failing the run outright. at is the virtual time the loss maps
// to (stamped by run as the error propagates out).
type workerLost struct {
	worker int
	err    error
	at     float64
}

func (w *workerLost) Error() string {
	return fmt.Sprintf("dist: worker %d lost: %v", w.worker, w.err)
}
func (w *workerLost) Unwrap() error          { return w.err }
func (w *workerLost) Is(target error) bool   { return target == ErrWorkerLost }

// Run drives one distributed run over the given worker connections. Engines
// are dealt round-robin (worker w gets engines w, w+W, ...). On worker loss
// the surviving workers are aborted and the scenario re-runs in-process with
// the lost worker's engines fail-stopped at the loss time, flowing through
// the standard checkpoint/rollback/remap recovery — the run completes
// (Result.Recovery reports it) instead of hanging.
//
// The returned Result is byte-identical to emu.Run of the same scenario
// (modulo Kernel.WallTime and the wall-clock parts of Obs — see ResultJSON).
func Run(ctx context.Context, spec *RunSpec, workers []Conn, opt Options) (*emu.Result, error) {
	opt.defaults()
	if len(workers) == 0 {
		return nil, fmt.Errorf("dist: no workers")
	}
	if spec.Cfg.OnCrash != nil {
		return nil, fmt.Errorf("dist: set OnWorkerLoss, not Cfg.OnCrash (crash hooks do not ship)")
	}
	if err := emu.NormalizeConfig(&spec.Cfg); err != nil {
		return nil, err
	}
	if len(workers) > spec.Cfg.NumEngines {
		return nil, fmt.Errorf("dist: %d workers for %d engines (every worker needs at least one)",
			len(workers), spec.Cfg.NumEngines)
	}

	res, err := run(ctx, spec, workers, &opt)
	if err == nil {
		return res, nil
	}
	lost, ok := err.(*workerLost)
	if !ok {
		abortAll(workers, err.Error())
		return nil, err
	}
	abortAll(workers, lost.Error())
	if spec.OnWorkerLoss == nil {
		return nil, fmt.Errorf("%w (no OnWorkerLoss recovery configured)", lost)
	}
	opt.logf("dist: %v; degrading to in-process recovery run", lost)
	return fallback(spec, lost, len(workers), &opt)
}

func run(ctx context.Context, spec *RunSpec, workers []Conn, opt *Options) (res *emu.Result, err error) {
	// Stamp worker-loss errors with the virtual time the loss maps to: the
	// middle of the window in flight (a conservative kernel can only detect
	// a silent peer at the following barrier, exactly as the fault-injection
	// path models it).
	virtT, virtL := 0.0, 0.0
	defer func() {
		if l, ok := err.(*workerLost); ok {
			l.at = virtT + virtL/2
		}
	}()
	cfg := spec.Cfg // normalized by Run
	W := len(workers)
	n := cfg.NumEngines

	blob, err := EncodeSpec(&Spec{Cfg: cfg, Routing: spec.Routing,
		Telemetry: spec.Telemetry != nil, Tracing: spec.Trace != nil})
	if err != nil {
		return nil, err
	}
	hash := SpecHash(blob)

	opts := append([]emu.Option(nil), spec.EmuOpts...)
	if spec.Telemetry != nil {
		opts = append(opts, emu.WithTelemetry(spec.Telemetry))
	}
	if spec.Trace != nil {
		opts = append(opts, emu.WithTrace(spec.Trace))
	}
	if ctx != nil {
		opts = append(opts, emu.WithContext(ctx))
	}
	merge, err := emu.NewDistMerge(cfg, opts...)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	// Round-robin engine assignment, and the reverse map for event routing.
	engines := make([][]int, W)
	ownerOf := make([]int, n)
	for e := 0; e < n; e++ {
		w := e % W
		engines[w] = append(engines[w], e)
		ownerOf[e] = w
	}
	tl := merge.Trace()
	if tl != nil {
		for w := range engines {
			tl.Assign(engines[w], w)
		}
	}
	merge.NoteClusterSize(n)
	if spec.Health != nil {
		spec.Health.SetWorkers(W)
	}
	// In-run receives absorb worker SPANS frames into the timeline; the
	// worker slot stamps here (it is implied by the connection on the wire).
	hooks := recvHooks{}
	if tl != nil {
		hooks.onSpans = func(w int, spans []obs.Span) {
			for i := range spans {
				spans[i].Worker = w
			}
			tl.AddWall(spans)
		}
	}
	recv := func(conn Conn, w int) (Frame, error) {
		return recvHooked(conn, w, opt.StepTimeout, nil, hooks)
	}

	// Handshake every worker.
	for w, conn := range workers {
		f, err := recvFrom(conn, w, opt.HandshakeTimeout)
		if err != nil {
			return nil, err
		}
		if f.Type != MsgHello {
			return nil, &workerLost{worker: w, err: fmt.Errorf("expected HELLO, got %s", f.Type)}
		}
		h, err := DecodeHello(f.Payload)
		if err != nil {
			return nil, &workerLost{worker: w, err: err}
		}
		if h.Version != Version {
			return nil, fmt.Errorf("dist: worker %d speaks protocol %d, this build speaks %d", w, h.Version, Version)
		}
		as := Assign{Version: Version, WorkerID: w, Workers: W, Engines: engines[w], Hash: hash, Spec: blob}
		if err := sendTo(conn, w, Frame{Type: MsgAssign, Payload: as.Encode()}); err != nil {
			return nil, err
		}
	}
	for w, conn := range workers {
		f, err := recvFrom(conn, w, opt.HandshakeTimeout)
		if err != nil {
			return nil, err
		}
		if f.Type != MsgReady {
			return nil, &workerLost{worker: w, err: fmt.Errorf("expected READY, got %s", f.Type)}
		}
		r, err := DecodeReady(f.Payload)
		if err != nil {
			return nil, &workerLost{worker: w, err: err}
		}
		if r.Hash != hash {
			return nil, fmt.Errorf("dist: worker %d rebuilt a different scenario (spec hash mismatch)", w)
		}
		if math.Float64bits(r.Lookahead) != math.Float64bits(merge.Lookahead()) {
			return nil, fmt.Errorf("dist: worker %d derived lookahead %g, coordinator %g — builds disagree",
				w, r.Lookahead, merge.Lookahead())
		}
	}
	opt.logf("dist: %d workers ready, %d engines, lookahead %g", W, n, merge.Lookahead())

	// The window loop — a faithful serialization of des.(*Kernel).Run: merged
	// events go out, votes come back, the global window is picked on the same
	// grid with the same skip accounting, the window executes everywhere, and
	// the barrier merges outboxes in the same deterministic order.
	L := merge.Lookahead()
	virtL = L
	endTime := merge.EndTime()
	outbox := []emu.WireEvent(nil) // globally sorted, from the last barrier
	T := 0.0
	first := true
	nextCkpt := opt.CheckpointEvery
	perWorker := make([][]emu.WireEvent, W)
	reports := make([]*emu.WindowReport, W)
	for {
		if err := merge.Canceled(); err != nil {
			return nil, fmt.Errorf("dist: run canceled: %w", err)
		}
		// Deliver the previous barrier's events (each worker gets the
		// subsequence destined to its engines, in global merge order — the
		// per-LP sequence streams come out identical to in-process) and
		// collect votes.
		for w := range perWorker {
			perWorker[w] = perWorker[w][:0]
		}
		for _, ev := range outbox {
			w := ownerOf[ev.Dst]
			perWorker[w] = append(perWorker[w], ev)
		}
		for w, conn := range workers {
			if err := sendTo(conn, w, Frame{Type: MsgEvents, Payload: EncodeEvents(perWorker[w])}); err != nil {
				return nil, err
			}
		}
		minT, has := 0.0, false
		for w, conn := range workers {
			f, err := recv(conn, w)
			if err != nil {
				return nil, err
			}
			if f.Type != MsgVote {
				return nil, &workerLost{worker: w, err: fmt.Errorf("expected VOTE, got %s", f.Type)}
			}
			v, err := DecodeVote(f.Payload)
			if err != nil {
				return nil, &workerLost{worker: w, err: err}
			}
			if v.Has && (!has || v.Time < minT) {
				minT, has = v.Time, true
			}
		}
		if !has {
			break
		}
		if endTime > 0 && minT >= endTime {
			break
		}
		if first {
			T = des.WindowFloor(minT, L)
			first = false
		}
		if minT >= T+L {
			nt := des.WindowFloor(minT, L)
			merge.Skip(nt - T)
			T = nt
		}
		end := T + L

		for w, conn := range workers {
			if err := sendTo(conn, w, Frame{Type: MsgWindow, Payload: Window{Start: T, End: end}.Encode()}); err != nil {
				return nil, err
			}
		}
		outbox = outbox[:0]
		for w, conn := range workers {
			f, err := recv(conn, w)
			if err != nil {
				return nil, err
			}
			if f.Type != MsgWindowDone {
				return nil, &workerLost{worker: w, err: fmt.Errorf("expected WINDOW_DONE, got %s", f.Type)}
			}
			rep, err := DecodeWindowDone(f.Payload)
			if err != nil {
				return nil, &workerLost{worker: w, err: err}
			}
			reports[w] = rep
			outbox = append(outbox, rep.Outbox...)
		}
		emu.SortWire(outbox)
		if err := merge.CommitWindow(T, end, reports); err != nil {
			return nil, err
		}
		if spec.Health != nil && tl != nil {
			for _, ws := range tl.DrainWindowStats() {
				spec.Health.ObserveWindow(ws.Worker, ws.Lag)
			}
			spec.Health.SetAttribution(tl.Health())
		}
		virtT = T
		if end >= nextCkpt {
			for w, conn := range workers {
				if err := sendTo(conn, w, Frame{Type: MsgCheckpoint, Payload: CheckpointMsg{At: end}.Encode()}); err != nil {
					return nil, err
				}
			}
			for w, conn := range workers {
				f, err := recv(conn, w)
				if err != nil {
					return nil, err
				}
				if f.Type != MsgCheckpointAck {
					return nil, &workerLost{worker: w, err: fmt.Errorf("expected CHECKPOINT_ACK, got %s", f.Type)}
				}
			}
			for nextCkpt <= end {
				nextCkpt += opt.CheckpointEvery
			}
		}
		T = end
	}

	// Finish: collect final states, release workers, assemble the Result.
	states := make([]*emu.DistState, W)
	for w, conn := range workers {
		if err := sendTo(conn, w, Frame{Type: MsgFinish}); err != nil {
			return nil, err
		}
	}
	for w, conn := range workers {
		f, err := recv(conn, w)
		if err != nil {
			return nil, err
		}
		if f.Type != MsgState {
			return nil, &workerLost{worker: w, err: fmt.Errorf("expected STATE, got %s", f.Type)}
		}
		st, err := DecodeState(f.Payload)
		if err != nil {
			return nil, &workerLost{worker: w, err: err}
		}
		states[w] = st
	}
	for w, conn := range workers {
		if err := sendTo(conn, w, Frame{Type: MsgBye}); err != nil {
			return nil, err
		}
	}
	opt.logf("dist: run complete, merging %d final states", W)
	return merge.Finalize(states, time.Since(start))
}

// fallback re-runs the scenario in-process with the lost worker's engines
// fail-stopped at the loss time, letting the standard checkpoint/rollback/
// remap machinery absorb the loss deterministically.
func fallback(spec *RunSpec, lost *workerLost, W int, opt *Options) (*emu.Result, error) {
	cfg := spec.Cfg
	at := lost.at
	if at <= 0 {
		// Loss before the first window (handshake, spec shipping): any
		// positive instant is detected at the first barrier.
		at = math.SmallestNonzeroFloat64
	}
	sched := &faults.Schedule{}
	if cfg.Faults != nil {
		// Keep any straggler/degradation schedule the run was started with —
		// it is part of the scenario's cost model, and dropping it would make
		// the replay diverge from a loss-free run.
		sched.Stragglers = append(sched.Stragglers, cfg.Faults.Stragglers...)
		sched.Degradations = append(sched.Degradations, cfg.Faults.Degradations...)
	}
	for e := lost.worker; e < cfg.NumEngines; e += W {
		sched.Crashes = append(sched.Crashes, faults.Crash{Engine: e, At: at})
	}
	cfg.Faults = sched
	cfg.OnCrash = spec.OnWorkerLoss
	cfg.CheckpointEvery = opt.CheckpointEvery
	opts := append([]emu.Option(nil), spec.EmuOpts...)
	if spec.Telemetry != nil {
		opts = append(opts, emu.WithTelemetry(spec.Telemetry))
	}
	if spec.Trace != nil {
		// The replay re-executes every window from zero in-process; the
		// partial distributed timeline would double-count them.
		spec.Trace.Reset()
		opts = append(opts, emu.WithTrace(spec.Trace))
	}
	return emu.Run(cfg, opts...)
}

func abortAll(workers []Conn, reason string) {
	for _, c := range workers {
		_ = c.Send(Frame{Type: MsgAbort, Payload: TextMsg{Text: reason}.Encode()})
		_ = c.Close()
	}
}

func sendTo(conn Conn, w int, f Frame) error {
	if err := conn.Send(f); err != nil {
		return &workerLost{worker: w, err: err}
	}
	return nil
}

// recvFrom reads one frame from a worker, converting transport failures into
// workerLost. A worker-reported ERROR frame becomes a fatal ErrWorkerFault —
// it is deterministic, so degrading to a replay would only hit it again.
// Liveness pongs and drain requests may interleave with any response and are
// absorbed here (the plain coordinator ignores drain requests; the elastic
// one flags them via onDrain).
func recvFrom(conn Conn, w int, timeout time.Duration) (Frame, error) {
	return recvFromHB(conn, w, timeout, nil, nil)
}

// heartbeat configures liveness probing during coordinator waits: every
// interval without a frame, a PING goes out; misses consecutive unanswered
// intervals declare the worker lost without waiting out the full timeout.
type heartbeat struct {
	interval time.Duration
	misses   int
}

func recvFromHB(conn Conn, w int, timeout time.Duration, hb *heartbeat, onDrain func(int)) (Frame, error) {
	return recvHooked(conn, w, timeout, hb, recvHooks{onDrain: onDrain})
}

// recvHooks routes the out-of-band frames a coordinator wait may absorb:
// drain requests, worker trace spans, and measured PING→PONG round trips.
// Nil hooks drop the corresponding signal (spans still decode, so protocol
// corruption surfaces even when tracing output is unused).
type recvHooks struct {
	onDrain func(w int)
	onSpans func(w int, spans []obs.Span)
	onRTT   func(w int, rtt time.Duration)
}

func recvHooked(conn Conn, w int, timeout time.Duration, hb *heartbeat, hooks recvHooks) (Frame, error) {
	deadline := time.Now().Add(timeout)
	missed := 0
	var lastPing time.Time
	for {
		slice := time.Until(deadline)
		if slice <= 0 {
			return Frame{}, &workerLost{worker: w, err: fmt.Errorf("no response within %v", timeout)}
		}
		if hb != nil && hb.interval > 0 && slice > hb.interval {
			slice = hb.interval
		}
		f, err := conn.Recv(slice)
		if err != nil {
			if isTimeout(err) && time.Now().Before(deadline) {
				if hb == nil || hb.interval <= 0 {
					continue
				}
				missed++
				if missed >= hb.misses {
					return Frame{}, &workerLost{worker: w,
						err: fmt.Errorf("no heartbeat in %d×%v", missed, hb.interval)}
				}
				lastPing = time.Now()
				if err := conn.Send(Frame{Type: MsgPing}); err != nil {
					return Frame{}, &workerLost{worker: w, err: err}
				}
				continue
			}
			return Frame{}, &workerLost{worker: w, err: err}
		}
		switch f.Type {
		case MsgPong:
			missed = 0
			// A pong not answering our ping (a reordered or duplicated frame
			// under chaos transports) carries no timing signal.
			if hooks.onRTT != nil && !lastPing.IsZero() {
				hooks.onRTT(w, time.Since(lastPing))
				lastPing = time.Time{}
			}
			continue
		case MsgSpans:
			missed = 0
			spans, err := DecodeSpans(f.Payload)
			if err != nil {
				return Frame{}, &workerLost{worker: w, err: err}
			}
			if hooks.onSpans != nil {
				hooks.onSpans(w, spans)
			}
			continue
		case MsgDrain:
			missed = 0
			if hooks.onDrain != nil {
				hooks.onDrain(w)
			}
			continue
		case MsgError:
			m, _ := DecodeText(f.Payload)
			return Frame{}, fmt.Errorf("dist: worker %d aborted the run: %w: %s", w, ErrWorkerFault, m.Text)
		}
		return f, nil
	}
}
