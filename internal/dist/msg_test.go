package dist

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/emu"
	"repro/internal/metrics"
	"repro/internal/netgraph"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

func testSpec(t *testing.T) *Spec {
	t.Helper()
	nw := netgraph.New("wire-test")
	r0 := nw.AddRouter("r0", 1)
	r1 := nw.AddRouter("r1", 2)
	h0 := nw.AddHost("h0", 1)
	h1 := nw.AddHost("h1", 2)
	nw.SetSite(h0, "siteA")
	nw.AddLink(r0, r1, 1e9, 0.005)
	nw.AddLink(h0, r0, 1e8, 0.001)
	nw.AddLink(h1, r1, 1e8, 0.001)
	s := &Spec{
		Cfg: emu.Config{
			Network: nw,
			Workload: traffic.Workload{
				Flows: []traffic.Flow{
					{ID: 0, Src: h0, Dst: h1, Start: 0.25, Bytes: 1 << 20, Tag: "http"},
					{ID: 1, Src: h1, Dst: h0, Start: 0.5, Bytes: 4096, Tag: "app"},
				},
				AppHosts: []int{h0, h1},
				Duration: 10,
			},
			Assignment: []int{0, 1, 0, 1},
			NumEngines: 2,
		},
	}
	if err := emu.NormalizeConfig(&s.Cfg); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return s
}

func TestSpecRoundTrip(t *testing.T) {
	s := testSpec(t)
	s.Routing = netgraph.RoutingOptions{Backend: netgraph.Lazy, LazyRows: 3}
	s.Telemetry = true
	blob, err := EncodeSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSpec(blob)
	if err != nil {
		t.Fatal(err)
	}
	// The worker-side fidelity check: re-encoding the rebuilt spec must give
	// the identical blob (and hence the identical hash).
	reblob, err := EncodeSpec(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, reblob) {
		t.Fatal("rebuilt spec does not re-encode to the shipped blob")
	}
	if SpecHash(blob) != SpecHash(reblob) {
		t.Fatal("hash mismatch")
	}
	if got.Cfg.Network.NumNodes() != 4 || len(got.Cfg.Network.Links) != 3 {
		t.Fatalf("topology did not survive: %d nodes, %d links",
			got.Cfg.Network.NumNodes(), len(got.Cfg.Network.Links))
	}
	if got.Cfg.Network.Nodes[2].Site != "siteA" {
		t.Fatal("node site lost")
	}
	if !reflect.DeepEqual(got.Cfg.Workload.Flows, s.Cfg.Workload.Flows) {
		t.Fatal("workload flows did not survive")
	}
	if !reflect.DeepEqual(got.Cfg.Assignment, s.Cfg.Assignment) {
		t.Fatal("assignment did not survive")
	}
	if !got.Telemetry || got.Routing != s.Routing {
		t.Fatal("flags did not survive")
	}
	if got.Cfg.Routes == nil || got.Cfg.Routes.Stats().Backend != "lazy" {
		t.Fatalf("decoded spec did not resolve the lazy oracle: %+v", got.Cfg.Routes)
	}
}

func TestSpecRejectsFaultsAndHooks(t *testing.T) {
	s := testSpec(t)
	s.Cfg.OnCrash = func(emu.EngineFailure) ([]int, error) { return nil, nil }
	if _, err := EncodeSpec(s); err == nil {
		t.Fatal("OnCrash must not ship")
	}
}

func TestSpecTruncationNeverPanics(t *testing.T) {
	s := testSpec(t)
	blob, err := EncodeSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut++ {
		if _, err := DecodeSpec(blob[:cut]); err == nil {
			t.Fatalf("truncated spec (%d of %d bytes) decoded without error", cut, len(blob))
		}
	}
	// Trailing garbage is an error too.
	if _, err := DecodeSpec(append(append([]byte(nil), blob...), 0x00)); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
}

func TestEventsRoundTripExactFloats(t *testing.T) {
	evs := []emu.WireEvent{
		{Time: 0.1 + 0.2, Dst: 1, Src: 0, SrcIdx: 7, Kind: emu.WireChunk, Flow: 3, Hop: 2, Packets: 11, Bytes: 1500},
		{Time: math.Nextafter(1, 2), Dst: 0, Src: 2, SrcIdx: 0, Kind: emu.WireTCPRound, Flow: 1, Window: 4, Offset: 1 << 30},
		{Time: 5, Dst: 2, Src: 1, SrcIdx: 3, Kind: emu.WireFlowStart, Flow: 0},
	}
	got, err := DecodeEvents(EncodeEvents(evs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("events did not round-trip exactly:\n got %+v\nwant %+v", got, evs)
	}
}

func TestWindowDoneRoundTripWithTelemetry(t *testing.T) {
	h := telemetry.NewRunHistogram()
	h.Observe(0.001)
	h.Observe(2.5)
	h.Observe(math.NaN()) // NaNCount must survive the wire
	p := &telemetry.Partial{
		Engines:       []int{1},
		MatrixBytes:   []int64{10, 20, 30},
		MatrixPackets: []int64{1, 2, 3},
		HasSlow:       true,
		LinkTxBytes:   []int64{5, 6},
		LinkTxPackets: []int64{1, 1},
		LinkRxPackets: []int64{2, 2},
		NodePackets:   []int64{9, 8, 7},
		SeriesLoads:   [][]float64{{1.5, 0, 2.5}, {0, 0.25, 0}},
		QueueDelay:    []*metrics.Histogram{h},
		FCT:           []*metrics.Histogram{telemetry.NewRunHistogram()},
		FlowsDone:     []int64{4},
		Drops:         []int64{0},
	}
	r := &emu.WindowReport{
		Events:    []int64{3, 0, 5},
		Charges:   []int64{2, 0, 4},
		Remote:    []int64{1, 0, 0},
		Queue:     []int64{0, 0, 2},
		Outbox:    []emu.WireEvent{{Time: 1.25, Dst: 2, Src: 0, SrcIdx: 1, Kind: emu.WireFlowStart, Flow: 9}},
		Telemetry: p,
	}
	got, err := DecodeWindowDone(EncodeWindowDone(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, r.Events) || !reflect.DeepEqual(got.Outbox, r.Outbox) {
		t.Fatal("window counters/outbox did not round-trip")
	}
	gp := got.Telemetry
	if gp == nil || !gp.HasSlow {
		t.Fatal("telemetry partial lost")
	}
	if !reflect.DeepEqual(gp.SeriesLoads, p.SeriesLoads) {
		t.Fatal("series loads did not round-trip")
	}
	gh := gp.QueueDelay[0]
	if gh.Count != h.Count || gh.Sum != h.Sum || gh.NaNCount != 1 {
		t.Fatalf("histogram did not round-trip: count=%d sum=%g nan=%d", gh.Count, gh.Sum, gh.NaNCount)
	}
	if !reflect.DeepEqual(gh.Counts, h.Counts) {
		t.Fatal("histogram buckets did not round-trip")
	}
}

func testInstall() *emu.ElasticInstall {
	h := telemetry.NewRunHistogram()
	h.Observe(0.25)
	return &emu.ElasticInstall{
		At:          4,
		Lookahead:   0.005,
		Engines:     []int{0, 2},
		Assignment:  []int{0, 2, 0, 2},
		Windows:     17,
		SkippedTime: 1.5,
		Events:      []int64{3, 0, 9},
		Charges:     []int64{2, 0, 8},
		RemoteSends: []int64{1, 0, 0},
		Pending: []emu.WireEvent{
			{Time: 4.25, Dst: 2, Src: 0, SrcIdx: 1, Kind: emu.WireChunk, Flow: 1, Hop: 1, Packets: 3, Bytes: 4500},
		},
		BusyUntil: []float64{0, math.Nextafter(4, 5), 0, 0, 3.5, 0},
		LinkBytes: []int64{10, 0, 30, 0, 50, 0},
		Drops:     []int64{0, 0, 1, 0, 0, 0},
		Delivered: []int64{100, 0},
		FCTs:      []float64{0.5, -1},
		Telemetry: &telemetry.Partial{
			Engines:       []int{0, 2},
			MatrixBytes:   []int64{1, 2, 3},
			MatrixPackets: []int64{4, 5, 6},
			HasSlow:       true,
			LinkTxBytes:   []int64{7, 8, 9, 10, 11, 12},
			LinkTxPackets: []int64{1, 1, 1, 1, 1, 1},
			LinkRxPackets: []int64{2, 2, 2, 2, 2, 2},
			NodePackets:   []int64{3, 4, 5, 6},
			SeriesLoads:   [][]float64{{0.5, 0, 1.5}},
			QueueDelay:    []*metrics.Histogram{h},
			FCT:           []*metrics.Histogram{telemetry.NewRunHistogram()},
			FlowsDone:     []int64{1},
			Drops:         []int64{0},
		},
	}
}

func TestElasticInstallRoundTrip(t *testing.T) {
	in := testInstall()
	got, err := DecodeElasticInstall(EncodeElasticInstall(in))
	if err != nil {
		t.Fatal(err)
	}
	gt, it := got.Telemetry, in.Telemetry
	got.Telemetry, in.Telemetry = nil, nil
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("install did not round-trip:\n got %+v\nwant %+v", got, in)
	}
	if gt == nil || !reflect.DeepEqual(gt.MatrixBytes, it.MatrixBytes) ||
		gt.QueueDelay[0].Count != it.QueueDelay[0].Count {
		t.Fatal("install telemetry did not round-trip")
	}
}

func TestElasticExportRoundTrip(t *testing.T) {
	x := &emu.ElasticExport{
		Engines:   []int{1},
		Events:    []emu.WireEvent{{Time: 2.5, Dst: 0, Src: 1, SrcIdx: 2, Kind: emu.WireTCPRound, Flow: 7, Window: 2, Offset: 4096}},
		BusyUntil: []float64{0, 1.25},
		LinkBytes: []int64{0, 99},
		Drops:     []int64{0, 1},
		Delivered: []int64{0, 3},
		FCTs:      []float64{-1, math.Nextafter(1, 2)},
	}
	got, err := DecodeElasticExport(EncodeElasticExport(x))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, x) {
		t.Fatalf("export did not round-trip:\n got %+v\nwant %+v", got, x)
	}
}

// TestElasticInstallTruncationNeverPanics sweeps every prefix of an INSTALL
// payload — the largest, deepest-nested elastic message — through its
// decoder: every truncation must be an error, never a panic or a partial
// success, so a mid-handshake connection cut surfaces as a decode error
// instead of corrupt state.
func TestElasticInstallTruncationNeverPanics(t *testing.T) {
	blob := EncodeElasticInstall(testInstall())
	for cut := 0; cut < len(blob); cut++ {
		if _, err := DecodeElasticInstall(blob[:cut]); err == nil {
			t.Fatalf("truncated install (%d of %d bytes) decoded without error", cut, len(blob))
		}
	}
	if _, err := DecodeElasticInstall(append(append([]byte(nil), blob...), 0xff)); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := &emu.DistState{
		Engines:     []int{0, 2},
		Events:      []int64{10, 0, 30},
		Charges:     []int64{9, 0, 29},
		RemoteSends: []int64{1, 0, 2},
		LinkBytes:   []int64{100, 200, 300, 400},
		Drops:       []int64{0, 1, 0, 0},
		FCTs:        []float64{0.5, -1, math.Nextafter(2, 3)},
	}
	got, err := DecodeState(EncodeState(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("state did not round-trip:\n got %+v\nwant %+v", got, s)
	}
}
