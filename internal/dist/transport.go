package dist

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Conn is one coordinator↔worker channel. Implementations must be safe for
// one sender and one receiver goroutine (not for concurrent Sends).
type Conn interface {
	// Send writes one frame, bounded by the transport's write deadline.
	Send(f Frame) error
	// Recv reads one frame, waiting at most timeout (<= 0 means no bound).
	Recv(timeout time.Duration) (Frame, error)
	// Close tears the channel down; pending Sends/Recvs fail.
	Close() error
	// Label names the peer for error messages ("tcp 10.0.0.7:9000", "loopback").
	Label() string
}

// ---- TCP ----

// writeTimeout bounds every frame write; a peer that stops draining its
// socket surfaces as an error here instead of wedging the run.
const writeTimeout = 30 * time.Second

type tcpConn struct {
	c     net.Conn
	label string
}

// NewTCPConn wraps an established TCP connection (either side).
func NewTCPConn(c net.Conn) Conn {
	if t, ok := c.(*net.TCPConn); ok {
		// Frames are small and latency-sensitive at barriers.
		t.SetNoDelay(true)
	}
	return &tcpConn{c: c, label: "tcp " + c.RemoteAddr().String()}
}

func (t *tcpConn) Send(f Frame) error {
	if err := t.c.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil {
		return err
	}
	if err := WriteFrame(t.c, f); err != nil {
		return fmt.Errorf("%s: send %s: %w", t.label, f.Type, err)
	}
	return nil
}

func (t *tcpConn) Recv(timeout time.Duration) (Frame, error) {
	var dl time.Time
	if timeout > 0 {
		dl = time.Now().Add(timeout)
	}
	if err := t.c.SetReadDeadline(dl); err != nil {
		return Frame{}, err
	}
	f, err := ReadFrame(t.c)
	if err != nil {
		return Frame{}, fmt.Errorf("%s: recv: %w", t.label, err)
	}
	return f, nil
}

func (t *tcpConn) Close() error  { return t.c.Close() }
func (t *tcpConn) Label() string { return t.label }

// Dial connects to a coordinator or worker address with jittered exponential
// backoff, so the two processes need not be started in a fixed order and a
// fleet of workers does not retry in lockstep. It retries until the context
// expires; the final wait is capped at the context deadline, so an address
// nobody ever listens on returns ctx.Err() promptly at the deadline.
func Dial(ctx context.Context, addr string) (Conn, error) {
	var d net.Dialer
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := 50 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return NewTCPConn(c), nil
		}
		// Full jitter over [backoff/2, backoff): desynchronizes a worker
		// fleet without ever collapsing the wait to zero.
		wait := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)))
		if dl, ok := ctx.Deadline(); ok {
			if until := time.Until(dl); until < wait {
				wait = until
			}
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("dist: dial %s: %w (last error: %v)", addr, ctx.Err(), err)
		case <-time.After(wait):
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// Listen opens a TCP listener for incoming peers.
func Listen(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	return l, nil
}

// Accept waits for one peer connection, bounded by the context.
func Accept(ctx context.Context, l net.Listener) (Conn, error) {
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	select {
	case <-ctx.Done():
		l.Close()
		return nil, fmt.Errorf("dist: accept: %w", ctx.Err())
	case r := <-ch:
		if r.err != nil {
			return nil, fmt.Errorf("dist: accept: %w", r.err)
		}
		return NewTCPConn(r.c), nil
	}
}

// ---- Loopback ----

// timeoutError mirrors net timeouts so callers can distinguish "nothing yet"
// from "peer gone" uniformly across transports.
type timeoutError struct{ msg string }

func (e timeoutError) Error() string { return e.msg }
func (e timeoutError) Timeout() bool { return true }

type loopConn struct {
	out  chan<- Frame
	in   <-chan Frame
	done chan struct{}
	once sync.Once
	peer *loopConn
}

// Loopback returns a connected in-process pair for socketless tests. Frames
// cross by value; closing either end fails both.
func Loopback() (Conn, Conn) {
	ab := make(chan Frame, 16)
	ba := make(chan Frame, 16)
	a := &loopConn{out: ab, in: ba, done: make(chan struct{})}
	b := &loopConn{out: ba, in: ab, done: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (l *loopConn) Send(f Frame) error {
	// Copy the payload: callers may reuse their encode buffers.
	if len(f.Payload) > 0 {
		f.Payload = append([]byte(nil), f.Payload...)
	}
	select {
	case l.out <- f:
		return nil
	case <-l.done:
		return fmt.Errorf("loopback: send %s: closed", f.Type)
	case <-l.peer.done:
		return fmt.Errorf("loopback: send %s: peer closed", f.Type)
	}
}

func (l *loopConn) Recv(timeout time.Duration) (Frame, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case f := <-l.in:
		return f, nil
	case <-timer:
		return Frame{}, timeoutError{msg: fmt.Sprintf("loopback: recv timeout after %v", timeout)}
	case <-l.done:
		return Frame{}, fmt.Errorf("loopback: recv: closed")
	case <-l.peer.done:
		// Drain anything the peer sent before closing.
		select {
		case f := <-l.in:
			return f, nil
		default:
		}
		return Frame{}, fmt.Errorf("loopback: recv: peer closed")
	}
}

func (l *loopConn) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *loopConn) Label() string { return "loopback" }
