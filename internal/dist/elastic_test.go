package dist_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/mapping"
)

// elasticWorker is one in-process worker with a drain trigger.
type elasticWorker struct {
	drain chan struct{}
	errc  chan error
}

func startElasticWorker(ctx context.Context, s dist.Conn) *elasticWorker {
	w := &elasticWorker{drain: make(chan struct{}), errc: make(chan error, 1)}
	go func() { w.errc <- dist.Serve(ctx, s, dist.WorkerOptions{Drain: w.drain}) }()
	return w
}

func (w *elasticWorker) wait(t *testing.T, name string) {
	t.Helper()
	select {
	case err := <-w.errc:
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	case <-time.After(time.Minute):
		t.Fatalf("%s did not exit", name)
	}
}

// elasticCkpt is the checkpoint cadence every elastic test runs with: small
// enough that a 10-second scenario crosses several membership barriers.
const elasticCkpt = 2.0

// TestElasticJoinDrainMatchesReplay: start 2 workers, join a third mid-run,
// drain the first — and require the distributed result to be byte-identical
// to the in-process replay of the recorded membership log. The join is
// preloaded and the drain is requested before the run starts, so both changes
// deterministically land at the first checkpoint barrier: the active engine
// set genuinely changes (slots {0,1} → {1,2}).
func TestElasticJoinDrainMatchesReplay(t *testing.T) {
	for _, topology := range []string{"Campus", "TeraGrid"} {
		topology := topology
		t.Run(topology, func(t *testing.T) {
			t.Parallel()
			ctx := context.Background()

			conns := make([]dist.Conn, 2)
			workers := make([]*elasticWorker, 2)
			for i := range conns {
				c, s := dist.Loopback()
				conns[i] = c
				workers[i] = startElasticWorker(ctx, s)
			}
			jc, js := dist.Loopback()
			joiner := startElasticWorker(ctx, js)
			joins := make(chan dist.Conn, 1)
			joins <- jc
			close(workers[0].drain)

			sc := scenario(t, topology)
			o, mlog, err := sc.RunElastic(ctx, conns, dist.ElasticOptions{
				Options: dist.Options{CheckpointEvery: elasticCkpt},
				Joins:   joins,
			})
			if err != nil {
				t.Fatalf("elastic run: %v", err)
			}
			workers[0].wait(t, "drained worker")
			workers[1].wait(t, "worker 1")
			joiner.wait(t, "joiner")

			if len(mlog.Losses) != 0 {
				t.Fatalf("clean join/drain run recorded losses: %v", mlog.Losses)
			}
			if len(mlog.Resizes) != 1 {
				t.Fatalf("join+drain at the first barrier must be one resize, got %d: %+v",
					len(mlog.Resizes), mlog.Resizes)
			}
			rz := mlog.Resizes[0]
			if !reflect.DeepEqual(rz.Engines, []int{1, 2}) {
				t.Fatalf("post-resize active set must be engines {1,2}, got %v", rz.Engines)
			}
			m := o.Result.Membership
			if m == nil || len(m.Resizes) != 1 {
				t.Fatalf("result must carry the membership record, got %+v", m)
			}
			if o.Result.Kernel.TotalCharges() == 0 {
				t.Fatal("empty run proves nothing")
			}

			ref, err := scenario(t, topology).ReplayElastic(ctx, o.Assignment, mlog, elasticCkpt)
			if err != nil {
				t.Fatalf("in-process replay: %v", err)
			}
			want, got := canonical(t, ref), canonical(t, o.Result)
			if !bytes.Equal(want, got) {
				t.Fatalf("elastic distributed result diverges from in-process replay (%d vs %d bytes):\nreplay: %.600s\ndistributed: %.600s",
					len(want), len(got), want, got)
			}
		})
	}
}

// dieAtConn cuts the coordinator→worker link at the first window starting at
// or after a virtual time — a worker killed mid-run, timed against the
// emulation clock so it deterministically lands after the first membership
// barrier.
type dieAtConn struct {
	dist.Conn
	at float64
}

func (d *dieAtConn) Send(f dist.Frame) error {
	if f.Type == dist.MsgWindow {
		if w, err := dist.DecodeWindow(f.Payload); err == nil && w.Start >= d.at {
			return errInjectedLink
		}
	}
	return d.Conn.Send(f)
}

// TestElasticJoinKillMatchesReplay: start 2 workers, join a third at the
// first checkpoint barrier, then kill a worker at t≈3 — the run must degrade
// through the recovery replay and still match the in-process replay of its
// own membership log byte for byte.
func TestElasticJoinKillMatchesReplay(t *testing.T) {
	for _, topology := range []string{"Campus", "TeraGrid"} {
		topology := topology
		t.Run(topology, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()

			conns := make([]dist.Conn, 2)
			for i := range conns {
				c, s := dist.Loopback()
				conns[i] = c
				startElasticWorker(ctx, s)
			}
			conns[1] = &dieAtConn{Conn: conns[1], at: 3}
			jc, js := dist.Loopback()
			startElasticWorker(ctx, js)
			joins := make(chan dist.Conn, 1)
			joins <- jc

			sc := scenario(t, topology)
			o, mlog, err := sc.RunElastic(ctx, conns, dist.ElasticOptions{
				Options: dist.Options{CheckpointEvery: elasticCkpt},
				Joins:   joins,
			})
			if err != nil {
				t.Fatalf("worker loss must degrade, not fail: %v", err)
			}
			if len(mlog.Resizes) == 0 {
				t.Fatal("the join never applied: kill at t=3 should follow the t=2 barrier")
			}
			if len(mlog.Losses) == 0 {
				t.Fatal("the kill was never recorded")
			}
			for _, l := range mlog.Losses {
				if l.At <= mlog.Resizes[len(mlog.Resizes)-1].At {
					t.Fatalf("recorded loss at t=%g precedes the last resize at t=%g",
						l.At, mlog.Resizes[len(mlog.Resizes)-1].At)
				}
			}
			if o.Result.Recovery == nil {
				t.Fatal("degraded run must report Recovery")
			}
			for v, e := range o.Result.FinalAssignment {
				for _, dead := range o.Result.Recovery.DeadEngines {
					if e == dead {
						t.Fatalf("node %d still assigned to dead engine %d", v, e)
					}
				}
			}

			ref, err := scenario(t, topology).ReplayElastic(ctx, o.Assignment, mlog, elasticCkpt)
			if err != nil {
				t.Fatalf("in-process replay: %v", err)
			}
			want, got := canonical(t, ref), canonical(t, o.Result)
			if !bytes.Equal(want, got) {
				t.Fatalf("degraded elastic result diverges from its replay (%d vs %d bytes):\nreplay: %.600s\ndistributed: %.600s",
					len(want), len(got), want, got)
			}
		})
	}
}

// TestElasticTCPMatchesLoopback runs the full elastic sequence — 2 workers,
// join 1, drain 1 — over real TCP sockets; the transports must be
// interchangeable down to the byte.
func TestElasticTCPMatchesLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	l, err := dist.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	drain0 := make(chan struct{})
	close(drain0) // worker 0 drains from the start, released at the first barrier
	werrs := make(chan error, 3)
	go func() {
		werrs <- dist.DialAndServe(ctx, l.Addr().String(), dist.WorkerOptions{Drain: drain0})
	}()
	go func() { werrs <- dist.DialAndServe(ctx, l.Addr().String(), dist.WorkerOptions{}) }()
	conns := make([]dist.Conn, 2)
	for i := range conns {
		c, err := dist.Accept(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	// The two dials race for slots 0 and 1, so WHICH slot drains is not
	// deterministic — the replay oracle doesn't care: it reproduces whatever
	// the membership log recorded.
	jc, js := dist.Loopback()
	startElasticWorker(ctx, js)
	joins := make(chan dist.Conn, 1)
	joins <- jc

	sc := scenario(t, "Campus")
	o, mlog, err := sc.RunElastic(ctx, conns, dist.ElasticOptions{
		Options: dist.Options{CheckpointEvery: elasticCkpt},
		Joins:   joins,
	})
	if err != nil {
		t.Fatalf("elastic over TCP: %v", err)
	}
	if len(mlog.Resizes) == 0 {
		t.Fatal("no membership change applied over TCP")
	}
	ref, err := scenario(t, "Campus").ReplayElastic(ctx, o.Assignment, mlog, elasticCkpt)
	if err != nil {
		t.Fatalf("in-process replay: %v", err)
	}
	if !bytes.Equal(canonical(t, ref), canonical(t, o.Result)) {
		t.Fatal("TCP elastic result diverges from its in-process replay")
	}
}

// TestChaosConvergesOrTypedError is the fault-injection matrix: with a
// deterministic chaos transport mangling every worker→coordinator send (drop,
// duplicate, delay, reorder), the run must — within its deadline — either
// converge to the same physical outcome as a clean run (losses recovered by
// replay) or fail with a typed, attributable error. Never a hang, never a
// silently wrong result.
func TestChaosConvergesOrTypedError(t *testing.T) {
	clean, err := scenario(t, "Campus").Run(context.Background(), mapping.Top)
	if err != nil {
		t.Fatalf("clean reference: %v", err)
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			conns := make([]dist.Conn, 2)
			for i := range conns {
				c, s := dist.Loopback()
				conns[i] = c
				chaotic := dist.NewChaosConn(s, dist.ChaosConfig{
					Seed:        seed*100 + int64(i),
					DropProb:    0.01,
					DupProb:     0.01,
					ReorderProb: 0.01,
					DelayProb:   0.05,
					MaxDelay:    time.Millisecond,
				})
				go dist.Serve(ctx, chaotic, dist.WorkerOptions{})
			}
			sc := scenario(t, "Campus")
			o, mlog, err := sc.RunElastic(ctx, conns, dist.ElasticOptions{
				Options: dist.Options{
					CheckpointEvery:  elasticCkpt,
					StepTimeout:      10 * time.Second,
					HandshakeTimeout: 10 * time.Second,
				},
				HeartbeatInterval: 100 * time.Millisecond,
			})
			if err != nil {
				if !errors.Is(err, dist.ErrWorkerLost) && !errors.Is(err, dist.ErrWorkerFault) &&
					!errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("chaos must surface as a typed error, got: %v", err)
				}
				t.Logf("typed failure under chaos (acceptable): %v", err)
				return
			}
			// Converged: the physical outcome must match the clean run exactly,
			// whether or not the protocol had to degrade to the recovery replay.
			if !reflect.DeepEqual(o.Result.FlowFCTs, clean.Result.FlowFCTs) {
				t.Fatalf("chaos run converged to a DIFFERENT physical outcome (losses: %d)", len(mlog.Losses))
			}
			if len(mlog.Losses) > 0 && o.Result.Recovery == nil {
				t.Fatal("recorded losses without a recovery report")
			}
			t.Logf("converged under chaos: %d losses, %d resizes", len(mlog.Losses), len(mlog.Resizes))
		})
	}
}
