package dist

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/des"
	"repro/internal/emu"
	"repro/internal/faults"
	"repro/internal/obs"
)

// Elastic membership: the coordinator admits workers joining a running
// emulation, releases workers asking to drain, and fail-stops workers that
// go silent — all without giving up the byte-identical-results guarantee.
// Engines never move between workers; the kernel's engine count is the
// capacity, and worker slot s owns the fixed block of EnginesPerWorker
// engines starting at s*EnginesPerWorker. A join activates a block, a drain
// deactivates one, and every membership change repartitions the virtual
// nodes over the new active set at a checkpoint-cadence barrier via the
// EXPORT/INSTALL protocol (see emu.DistMerge.Resize). The applied changes
// are returned as a MembershipLog whose replay through emu.Config.Elastic
// reproduces the run in-process, bit for bit.

// ElasticOptions tunes an elastic coordinator run.
type ElasticOptions struct {
	Options
	// Joins delivers connections of workers asking to join mid-run. They are
	// handshaken as they arrive and installed at the next checkpoint-cadence
	// barrier. Nil means no joins.
	Joins <-chan Conn
	// HeartbeatInterval probes silent workers with PING during every
	// coordinator wait; HeartbeatMisses consecutive unanswered intervals
	// declare the worker lost without waiting out the full StepTimeout.
	// <= 0 disables probing (losses then surface at StepTimeout).
	HeartbeatInterval time.Duration
	// HeartbeatMisses is the consecutive-miss threshold (default 3).
	HeartbeatMisses int
	// EnginesPerWorker is the engine block size per worker slot (default 1).
	// NumEngines must be a multiple of it.
	EnginesPerWorker int
	// OnResize computes the post-change node→engine assignment for every
	// membership change. Required.
	OnResize func(ev emu.ResizeEvent) ([]int, error)
}

// MembershipLog records what the elastic run actually did: the applied
// membership changes, and — when the run degraded — the engine fail-stops
// the lost worker mapped to. Replaying Resizes through emu.Config.Elastic
// (plus Losses through faults.Schedule) reproduces the run in-process.
type MembershipLog struct {
	Resizes []emu.AppliedResize
	Losses  []faults.Crash
}

// emember is one live worker of an elastic run.
type emember struct {
	conn     Conn
	slot     int
	engines  []int
	draining bool
}

type elasticState struct {
	spec     *RunSpec
	opt      *ElasticOptions
	q        int
	maxSlots int
	log      *MembershipLog
	merge    *emu.DistMerge

	members []*emember // active, in admission order
	pending []*emember // handshaken joiners awaiting the next barrier
	bySlot  []*emember

	lastResizeAt float64
	curL         float64
}

func (s *elasticState) block(slot int) []int {
	b := make([]int, s.q)
	for i := range b {
		b[i] = slot*s.q + i
	}
	return b
}

// RunElastic drives one distributed run with elastic membership. workers are
// the initial members (slot w for worker w); opt.Joins feeds mid-run
// joiners; workers leave gracefully via DRAIN or abruptly by dying — an
// abrupt loss degrades to the in-process recovery replay exactly as Run
// does, with the membership changes applied so far replayed first.
//
// The returned Result is byte-identical to emu.Run of the same scenario
// with Config.Elastic set to the returned MembershipLog.Resizes.
func RunElastic(ctx context.Context, spec *RunSpec, workers []Conn, opt ElasticOptions) (*emu.Result, *MembershipLog, error) {
	opt.Options.defaults()
	if opt.HeartbeatMisses <= 0 {
		opt.HeartbeatMisses = 3
	}
	if opt.EnginesPerWorker <= 0 {
		opt.EnginesPerWorker = 1
	}
	if opt.OnResize == nil {
		return nil, nil, fmt.Errorf("dist: elastic run needs an OnResize policy")
	}
	if len(workers) == 0 {
		return nil, nil, fmt.Errorf("dist: no workers")
	}
	if spec.Cfg.OnCrash != nil {
		return nil, nil, fmt.Errorf("dist: set OnWorkerLoss, not Cfg.OnCrash (crash hooks do not ship)")
	}
	if err := emu.NormalizeConfig(&spec.Cfg); err != nil {
		return nil, nil, err
	}
	q := opt.EnginesPerWorker
	n := spec.Cfg.NumEngines
	if n%q != 0 {
		return nil, nil, fmt.Errorf("dist: %d engines not divisible into blocks of %d", n, q)
	}
	maxSlots := n / q
	if len(workers) > maxSlots {
		return nil, nil, fmt.Errorf("dist: %d workers for %d slots of %d engines", len(workers), maxSlots, q)
	}
	for v, eng := range spec.Cfg.Assignment {
		if eng >= len(workers)*q {
			return nil, nil, fmt.Errorf("dist: node %d assigned to engine %d outside the initial %d-worker membership",
				v, eng, len(workers))
		}
	}

	s := &elasticState{
		spec: spec, opt: &opt, q: q, maxSlots: maxSlots,
		log:    &MembershipLog{},
		bySlot: make([]*emember, maxSlots),
	}
	res, err := s.run(ctx, workers)
	if err == nil {
		return res, s.log, nil
	}
	s.abort(err.Error())
	lost, ok := err.(*workerLost)
	if !ok {
		return nil, nil, err
	}
	if spec.OnWorkerLoss == nil {
		return nil, nil, fmt.Errorf("%w (no OnWorkerLoss recovery configured)", lost)
	}
	if s.merge != nil {
		// The kill reaches external recorders before the replay starts; the
		// replay's own emulation never sees the silent worker.
		misses := 1.0
		if opt.HeartbeatInterval > 0 {
			misses = float64(opt.HeartbeatMisses)
		}
		s.merge.RecordEvent(obs.Event{Kind: obs.EventHeartbeatMiss, Time: lost.at,
			LP: lost.worker * s.q, Value: misses})
	}
	opt.logf("dist: %v; degrading to in-process recovery replay", lost)
	res, err = s.fallback(lost)
	if err != nil {
		return nil, nil, err
	}
	return res, s.log, nil
}

func (s *elasticState) abort(reason string) {
	for _, m := range s.members {
		_ = m.conn.Send(Frame{Type: MsgAbort, Payload: TextMsg{Text: reason}.Encode()})
		_ = m.conn.Close()
	}
	for _, m := range s.pending {
		_ = m.conn.Send(Frame{Type: MsgAbort, Payload: TextMsg{Text: reason}.Encode()})
		_ = m.conn.Close()
	}
	s.members, s.pending = nil, nil
}

func (s *elasticState) run(ctx context.Context, initial []Conn) (res *emu.Result, err error) {
	opt := s.opt
	// Stamp worker-loss errors with the virtual time the loss maps to, as in
	// the static coordinator.
	virtT, virtL := 0.0, 0.0
	defer func() {
		if l, ok := err.(*workerLost); ok {
			l.at = virtT + virtL/2
		}
	}()
	cfg := s.spec.Cfg // normalized by RunElastic

	blob, err := EncodeSpec(&Spec{Cfg: cfg, Routing: s.spec.Routing,
		Telemetry: s.spec.Telemetry != nil, Tracing: s.spec.Trace != nil})
	if err != nil {
		return nil, err
	}
	hash := SpecHash(blob)

	opts := append([]emu.Option(nil), s.spec.EmuOpts...)
	if s.spec.Telemetry != nil {
		opts = append(opts, emu.WithTelemetry(s.spec.Telemetry))
	}
	if s.spec.Trace != nil {
		opts = append(opts, emu.WithTrace(s.spec.Trace))
	}
	if ctx != nil {
		opts = append(opts, emu.WithContext(ctx))
	}
	merge, err := emu.NewDistMerge(cfg, opts...)
	if err != nil {
		return nil, err
	}
	s.merge = merge
	// Only the initial workers' engine blocks are live; the rest of the
	// capacity activates as joiners install.
	var liveEngines []int
	for w := range initial {
		liveEngines = append(liveEngines, s.block(w)...)
	}
	merge.Activate(liveEngines)
	start := time.Now()
	initialL := merge.Lookahead()

	// Slot → engine-block ownership is fixed for the whole run, so the
	// timeline's worker map can cover every slot up front — joiners included.
	tl := merge.Trace()
	if tl != nil {
		for slot := 0; slot < s.maxSlots; slot++ {
			tl.Assign(s.block(slot), slot)
		}
	}
	if s.spec.Health != nil {
		s.spec.Health.SetWorkers(len(initial))
	}

	var hb *heartbeat
	if opt.HeartbeatInterval > 0 {
		hb = &heartbeat{interval: opt.HeartbeatInterval, misses: opt.HeartbeatMisses}
	}
	// A DRAIN can land at any point — even mid-handshake, before the member
	// exists. earlyDrain parks those so the request is never lost.
	earlyDrain := make(map[int]bool)
	onDrain := func(slot int) {
		if m := s.bySlot[slot]; m != nil {
			if !m.draining {
				m.draining = true
				opt.logf("dist: worker slot %d requested drain", slot)
			}
			return
		}
		earlyDrain[slot] = true
	}
	admit := func(m *emember) {
		s.bySlot[m.slot] = m
		if earlyDrain[m.slot] {
			delete(earlyDrain, m.slot)
			m.draining = true
			opt.logf("dist: worker slot %d requested drain", m.slot)
		}
	}
	// Every coordinator wait may absorb drain requests, worker trace spans
	// (stamped with the sender's slot) and heartbeat round trips.
	hooks := recvHooks{onDrain: onDrain}
	if tl != nil {
		hooks.onSpans = func(w int, spans []obs.Span) {
			for i := range spans {
				spans[i].Worker = w
			}
			tl.AddWall(spans)
		}
	}
	if health := s.spec.Health; health != nil {
		hooks.onRTT = func(w int, rtt time.Duration) { health.ObserveRTT(w, rtt) }
	}
	recv := func(m *emember, timeout time.Duration) (Frame, error) {
		return recvHooked(m.conn, m.slot, timeout, hb, hooks)
	}

	// handshake admits one worker onto a slot. Every worker — initial or
	// joiner — receives the same original spec; a joiner's engines are
	// inactive under the original assignment, so it seeds nothing and waits
	// for its INSTALL.
	handshake := func(conn Conn, slot int) (*emember, error) {
		f, err := recvFromHB(conn, slot, opt.HandshakeTimeout, nil, onDrain)
		if err != nil {
			return nil, err
		}
		if f.Type != MsgHello {
			return nil, &workerLost{worker: slot, err: fmt.Errorf("expected HELLO, got %s", f.Type)}
		}
		h, err := DecodeHello(f.Payload)
		if err != nil {
			return nil, &workerLost{worker: slot, err: err}
		}
		if h.Version != Version {
			return nil, fmt.Errorf("dist: worker slot %d speaks protocol %d, this build speaks %d", slot, h.Version, Version)
		}
		m := &emember{conn: conn, slot: slot, engines: s.block(slot)}
		as := Assign{Version: Version, WorkerID: slot, Workers: s.maxSlots, Engines: m.engines, Hash: hash, Spec: blob}
		if err := sendTo(conn, slot, Frame{Type: MsgAssign, Payload: as.Encode()}); err != nil {
			return nil, err
		}
		f, err = recvFromHB(conn, slot, opt.HandshakeTimeout, nil, onDrain)
		if err != nil {
			return nil, err
		}
		if f.Type != MsgReady {
			return nil, &workerLost{worker: slot, err: fmt.Errorf("expected READY, got %s", f.Type)}
		}
		r, err := DecodeReady(f.Payload)
		if err != nil {
			return nil, &workerLost{worker: slot, err: err}
		}
		if r.Hash != hash {
			return nil, fmt.Errorf("dist: worker slot %d rebuilt a different scenario (spec hash mismatch)", slot)
		}
		if math.Float64bits(r.Lookahead) != math.Float64bits(initialL) {
			return nil, fmt.Errorf("dist: worker slot %d derived lookahead %g, coordinator %g — builds disagree",
				slot, r.Lookahead, initialL)
		}
		return m, nil
	}

	for w, conn := range initial {
		m, err := handshake(conn, w)
		if err != nil {
			return nil, err
		}
		s.members = append(s.members, m)
		admit(m)
	}
	opt.logf("dist: %d workers ready, %d engine slots of %d, lookahead %g",
		len(s.members), s.maxSlots, s.q, initialL)

	// admitJoins handshakes joiners as they arrive; a joiner that fails its
	// handshake (or arrives with no free slot) is rejected without touching
	// the run.
	admitJoins := func() {
		if opt.Joins == nil {
			return
		}
		for {
			select {
			case conn, ok := <-opt.Joins:
				if !ok {
					opt.Joins = nil
					return
				}
				slot := -1
				for i := 0; i < s.maxSlots; i++ {
					if s.bySlot[i] == nil {
						slot = i
						break
					}
				}
				if slot < 0 {
					opt.logf("dist: rejecting joiner: no free engine slot")
					_ = conn.Send(Frame{Type: MsgAbort, Payload: TextMsg{Text: "no free engine slot"}.Encode()})
					_ = conn.Close()
					continue
				}
				m, err := handshake(conn, slot)
				if err != nil {
					opt.logf("dist: rejecting joiner for slot %d: %v", slot, err)
					_ = conn.Send(Frame{Type: MsgAbort, Payload: TextMsg{Text: err.Error()}.Encode()})
					_ = conn.Close()
					continue
				}
				opt.logf("dist: joiner admitted on slot %d (engines %v), installing at next barrier", slot, m.engines)
				s.pending = append(s.pending, m)
				admit(m)
			default:
				return
			}
		}
	}

	// The window loop, as in the static coordinator, with one addition: at a
	// checkpoint-cadence barrier with pending joins or drains, the held
	// outbox is delivered, every member's state is exported, the nodes are
	// repartitioned over the new membership, and execution resumes on a
	// fresh window grid — exactly the sequence the in-process elastic path
	// performs at that barrier.
	L := initialL
	s.curL, virtL = L, L
	endTime := merge.EndTime()
	outbox := []emu.WireEvent(nil)
	T := 0.0
	first := true
	nextCkpt := opt.CheckpointEvery

	deliver := func() error {
		per := make(map[int][]emu.WireEvent, len(s.members))
		for _, ev := range outbox {
			slot := int(ev.Dst) / s.q
			m := s.bySlot[slot]
			if m == nil {
				return fmt.Errorf("dist: event for engine %d routed to empty slot %d", ev.Dst, slot)
			}
			per[slot] = append(per[slot], ev)
		}
		for _, m := range s.members {
			if err := sendTo(m.conn, m.slot, Frame{Type: MsgEvents, Payload: EncodeEvents(per[m.slot])}); err != nil {
				return err
			}
		}
		outbox = outbox[:0]
		return nil
	}

	for {
		if err := merge.Canceled(); err != nil {
			return nil, fmt.Errorf("dist: run canceled: %w", err)
		}
		admitJoins()
		if err := deliver(); err != nil {
			return nil, err
		}
		minT, has := 0.0, false
		for _, m := range s.members {
			f, err := recv(m, opt.StepTimeout)
			if err != nil {
				return nil, err
			}
			if f.Type != MsgVote {
				return nil, &workerLost{worker: m.slot, err: fmt.Errorf("expected VOTE, got %s", f.Type)}
			}
			v, err := DecodeVote(f.Payload)
			if err != nil {
				return nil, &workerLost{worker: m.slot, err: err}
			}
			if v.Has && (!has || v.Time < minT) {
				minT, has = v.Time, true
			}
		}
		if !has {
			break
		}
		if endTime > 0 && minT >= endTime {
			break
		}
		if first {
			T = des.WindowFloor(minT, L)
			first = false
		}
		if minT >= T+L {
			nt := des.WindowFloor(minT, L)
			merge.Skip(nt - T)
			T = nt
		}
		end := T + L

		for _, m := range s.members {
			if err := sendTo(m.conn, m.slot, Frame{Type: MsgWindow, Payload: Window{Start: T, End: end}.Encode()}); err != nil {
				return nil, err
			}
		}
		reports := make([]*emu.WindowReport, 0, len(s.members))
		for _, m := range s.members {
			f, err := recv(m, opt.StepTimeout)
			if err != nil {
				return nil, err
			}
			if f.Type != MsgWindowDone {
				return nil, &workerLost{worker: m.slot, err: fmt.Errorf("expected WINDOW_DONE, got %s", f.Type)}
			}
			rep, err := DecodeWindowDone(f.Payload)
			if err != nil {
				return nil, &workerLost{worker: m.slot, err: err}
			}
			reports = append(reports, rep)
			outbox = append(outbox, rep.Outbox...)
		}
		emu.SortWire(outbox)
		if err := merge.CommitWindow(T, end, reports); err != nil {
			return nil, err
		}
		if s.spec.Health != nil && tl != nil {
			for _, ws := range tl.DrainWindowStats() {
				s.spec.Health.ObserveWindow(ws.Worker, ws.Lag)
			}
			s.spec.Health.SetAttribution(tl.Health())
		}
		virtT = T

		if end >= nextCkpt {
			admitJoins() // a join raced the window: fold it into this barrier
			changing := len(s.pending) > 0
			for _, m := range s.members {
				if m.draining {
					changing = true
				}
			}
			if changing {
				newL, err := s.resizeBarrier(merge, end, recv, deliver)
				if err != nil {
					return nil, err
				}
				L = newL
				s.curL, virtL = L, L
				first = true
			} else {
				for _, m := range s.members {
					if err := sendTo(m.conn, m.slot, Frame{Type: MsgCheckpoint, Payload: CheckpointMsg{At: end}.Encode()}); err != nil {
						return nil, err
					}
				}
				for _, m := range s.members {
					f, err := recv(m, opt.StepTimeout)
					if err != nil {
						return nil, err
					}
					if f.Type != MsgCheckpointAck {
						return nil, &workerLost{worker: m.slot, err: fmt.Errorf("expected CHECKPOINT_ACK, got %s", f.Type)}
					}
				}
			}
			for nextCkpt <= end {
				nextCkpt += opt.CheckpointEvery
			}
		}
		T = end
	}

	// Finish: final states from the members, BYE everyone (members and any
	// joiners still waiting for a barrier that never came).
	states := make([]*emu.DistState, 0, len(s.members))
	for _, m := range s.members {
		if err := sendTo(m.conn, m.slot, Frame{Type: MsgFinish}); err != nil {
			return nil, err
		}
	}
	for _, m := range s.members {
		f, err := recv(m, opt.StepTimeout)
		if err != nil {
			return nil, err
		}
		if f.Type != MsgState {
			return nil, &workerLost{worker: m.slot, err: fmt.Errorf("expected STATE, got %s", f.Type)}
		}
		st, err := DecodeState(f.Payload)
		if err != nil {
			return nil, &workerLost{worker: m.slot, err: err}
		}
		states = append(states, st)
	}
	for _, m := range append(append([]*emember(nil), s.members...), s.pending...) {
		if err := sendTo(m.conn, m.slot, Frame{Type: MsgBye}); err != nil {
			return nil, err
		}
	}
	opt.logf("dist: elastic run complete, merging %d final states", len(states))
	return merge.Finalize(states, time.Since(start))
}

// resizeBarrier applies the pending membership change at barrier time end:
// held events are delivered to their current owners (so exports capture the
// post-merge state, as the in-process checkpoint does), every member's state
// is exported, the new assignment is computed and installed, drained members
// are released, and joiners become members. Returns the new window width.
func (s *elasticState) resizeBarrier(merge *emu.DistMerge, end float64,
	recv func(*emember, time.Duration) (Frame, error), deliver func() error) (float64, error) {
	opt := s.opt

	// The held outbox goes to the OLD owners first; the vote replies are
	// meaningless mid-resize and are discarded.
	if err := deliver(); err != nil {
		return 0, err
	}
	for _, m := range s.members {
		f, err := recv(m, opt.StepTimeout)
		if err != nil {
			return 0, err
		}
		if f.Type != MsgVote {
			return 0, &workerLost{worker: m.slot, err: fmt.Errorf("expected VOTE, got %s", f.Type)}
		}
	}

	// Export every current member, draining ones included — their state
	// must land somewhere before they leave.
	for _, m := range s.members {
		if err := sendTo(m.conn, m.slot, Frame{Type: MsgExport, Payload: ExportMsg{At: end}.Encode()}); err != nil {
			return 0, err
		}
	}
	exports := make([]*emu.ElasticExport, 0, len(s.members))
	for _, m := range s.members {
		f, err := recv(m, opt.StepTimeout)
		if err != nil {
			return 0, err
		}
		if f.Type != MsgExport {
			return 0, &workerLost{worker: m.slot, err: fmt.Errorf("expected EXPORT, got %s", f.Type)}
		}
		ex, err := DecodeElasticExport(f.Payload)
		if err != nil {
			return 0, &workerLost{worker: m.slot, err: err}
		}
		exports = append(exports, ex)
	}

	// The new membership: continuing members keep their admission order,
	// joiners append after them.
	var continuing, leaving []*emember
	for _, m := range s.members {
		if m.draining {
			leaving = append(leaving, m)
		} else {
			continuing = append(continuing, m)
		}
	}
	continuing = append(continuing, s.pending...)
	if len(continuing) == 0 {
		return 0, fmt.Errorf("dist: every worker drained — no membership left at t=%g", end)
	}
	var engines []int
	groups := make([][]int, len(continuing))
	for i, m := range continuing {
		engines = append(engines, m.engines...)
		groups[i] = m.engines
	}
	sort.Ints(engines)

	assignment, err := opt.OnResize(emu.ResizeEvent{
		At:       end,
		Engines:  append([]int(nil), engines...),
		Previous: merge.Assignment(),
		Loads:    merge.Loads(),
	})
	if err != nil {
		return 0, fmt.Errorf("dist: resize policy at t=%g: %w", end, err)
	}
	installs, newL, err := merge.Resize(end, exports, engines, assignment, groups)
	if err != nil {
		return 0, err
	}

	for i, m := range continuing {
		if err := sendTo(m.conn, m.slot, Frame{Type: MsgInstall, Payload: EncodeElasticInstall(installs[i])}); err != nil {
			return 0, err
		}
	}
	for _, m := range continuing {
		f, err := recv(m, opt.StepTimeout)
		if err != nil {
			return 0, err
		}
		if f.Type != MsgInstallAck {
			return 0, &workerLost{worker: m.slot, err: fmt.Errorf("expected INSTALL_ACK, got %s", f.Type)}
		}
		ack, err := DecodeInstallAck(f.Payload)
		if err != nil {
			return 0, &workerLost{worker: m.slot, err: err}
		}
		if math.Float64bits(ack.Lookahead) != math.Float64bits(newL) {
			return 0, fmt.Errorf("dist: worker slot %d acked lookahead %g, coordinator computed %g — builds disagree",
				m.slot, ack.Lookahead, newL)
		}
	}

	// Release the drained members; their state now lives on the continuing
	// ones. A send failure here is harmless — they are already out.
	for _, m := range leaving {
		_ = m.conn.Send(Frame{Type: MsgBye})
		_ = m.conn.Close()
		s.bySlot[m.slot] = nil
	}

	// Churn accounting: each joiner and leaver is recorded against the first
	// engine of its block, mirroring the in-process elastic event stream.
	for _, m := range s.pending {
		merge.RecordEvent(obs.Event{Kind: obs.EventJoin, Time: end, LP: m.engines[0], Value: 1})
	}
	for _, m := range leaving {
		merge.RecordEvent(obs.Event{Kind: obs.EventDrain, Time: end, LP: m.engines[0], Value: 1})
	}
	if s.spec.Health != nil {
		s.spec.Health.SetWorkers(len(continuing))
	}

	s.members = continuing
	s.pending = nil
	s.lastResizeAt = end
	s.log.Resizes = merge.AppliedResizes()
	opt.logf("dist: membership now %d workers (%d engines) at t=%g, lookahead %g",
		len(s.members), len(engines), end, newL)
	return newL, nil
}

// fallback replays the scenario in-process: the membership changes applied
// so far re-apply through Config.Elastic, and the lost worker's engines
// fail-stop just after the last of them, flowing through the standard
// checkpoint/rollback/remap recovery.
func (s *elasticState) fallback(lost *workerLost) (*emu.Result, error) {
	cfg := s.spec.Cfg
	at := lost.at
	if at <= s.lastResizeAt {
		// The loss raced a membership barrier: the crash must land after the
		// resize it cannot undo.
		at = s.lastResizeAt + s.curL/4
	}
	if at <= 0 {
		at = math.SmallestNonzeroFloat64
	}
	sched := &faults.Schedule{}
	if cfg.Faults != nil {
		// Straggler/degradation schedules are part of the scenario's cost
		// model; the replay must keep them or diverge from a loss-free run.
		sched.Stragglers = append(sched.Stragglers, cfg.Faults.Stragglers...)
		sched.Degradations = append(sched.Degradations, cfg.Faults.Degradations...)
	}
	for _, e := range s.block(lost.worker) {
		sched.Crashes = append(sched.Crashes, faults.Crash{Engine: e, At: at})
	}
	s.log.Losses = append(s.log.Losses, sched.Crashes...)
	cfg.Faults = sched
	cfg.OnCrash = s.spec.OnWorkerLoss
	cfg.CheckpointEvery = s.opt.CheckpointEvery
	if len(s.log.Resizes) > 0 {
		cfg.Elastic = make([]emu.Resize, len(s.log.Resizes))
		for i, r := range s.log.Resizes {
			cfg.Elastic[i] = emu.Resize{At: r.At, Engines: r.Engines, Assignment: r.Assignment}
		}
	}
	opts := append([]emu.Option(nil), s.spec.EmuOpts...)
	if s.spec.Telemetry != nil {
		opts = append(opts, emu.WithTelemetry(s.spec.Telemetry))
	}
	if s.spec.Trace != nil {
		// The replay re-executes every window from zero in-process; the
		// partial distributed timeline would double-count them.
		s.spec.Trace.Reset()
		opts = append(opts, emu.WithTrace(s.spec.Trace))
	}
	return emu.Run(cfg, opts...)
}
