package dist

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary value codec for message payloads: little-endian, length-prefixed
// strings and slices, floats shipped as their exact IEEE-754 bits (the
// byte-identical-results guarantee forbids any text round-trip of floats).
// The reader never panics on malformed input — every accessor checks bounds
// and latches the first error, so a fuzzer-shaped frame decodes to an error,
// not a crash.

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)  { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}
func (e *encoder) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) i64s(xs []int64) {
	e.u32(uint32(len(xs)))
	for _, x := range xs {
		e.i64(x)
	}
}
func (e *encoder) ints(xs []int) {
	e.u32(uint32(len(xs)))
	for _, x := range xs {
		e.i64(int64(x))
	}
}
func (e *encoder) f64s(xs []float64) {
	e.u32(uint32(len(xs)))
	for _, x := range xs {
		e.f64(x)
	}
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("dist: truncated or malformed payload reading %s at offset %d", what, d.off)
	}
}

func (d *decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8(what string) uint8 {
	b := d.take(1, what)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32(what string) uint32 {
	b := d.take(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64(what string) uint64 {
	b := d.take(8, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i64(what string) int64   { return int64(d.u64(what)) }
func (d *decoder) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }

func (d *decoder) boolean(what string) bool { return d.u8(what) != 0 }

func (d *decoder) str(what string) string {
	n := int(d.u32(what))
	b := d.take(n, what)
	if b == nil {
		return ""
	}
	return string(b)
}

// count reads a slice length and sanity-bounds it against the bytes left, so
// a hostile length prefix cannot drive a huge allocation.
func (d *decoder) count(elemSize int, what string) int {
	n := int(d.u32(what))
	if d.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(d.buf)-d.off {
		d.fail(what)
		return 0
	}
	return n
}

func (d *decoder) i64s(what string) []int64 {
	n := d.count(8, what)
	if d.err != nil || n == 0 {
		return nil
	}
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = d.i64(what)
	}
	return xs
}

func (d *decoder) ints(what string) []int {
	n := d.count(8, what)
	if d.err != nil || n == 0 {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = int(d.i64(what))
	}
	return xs
}

func (d *decoder) f64s(what string) []float64 {
	n := d.count(8, what)
	if d.err != nil || n == 0 {
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.f64(what)
	}
	return xs
}

// finish returns the latched error, also flagging trailing garbage — a
// well-formed payload is consumed exactly.
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("dist: payload has %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}
