package dist

import (
	"repro/internal/emu"
)

// Elastic-membership payload codecs: EXPORT pulls a worker's complete
// barrier state, INSTALL reseats a continuing worker onto the repartitioned
// state, INSTALL_ACK closes the loop with the worker's derived lookahead.

// ExportMsg commands a barrier state export at virtual time At.
type ExportMsg struct{ At float64 }

func (m ExportMsg) Encode() []byte {
	var e encoder
	e.f64(m.At)
	return e.buf
}

func DecodeExportMsg(b []byte) (ExportMsg, error) {
	d := decoder{buf: b}
	m := ExportMsg{At: d.f64("export.at")}
	return m, d.finish()
}

// EncodeElasticExport/DecodeElasticExport carry the worker's reply to
// MsgExport.
func EncodeElasticExport(x *emu.ElasticExport) []byte {
	var e encoder
	e.ints(x.Engines)
	encodeWireEvents(&e, x.Events)
	e.f64s(x.BusyUntil)
	e.i64s(x.LinkBytes)
	e.i64s(x.Drops)
	e.i64s(x.Delivered)
	e.f64s(x.FCTs)
	encodePartial(&e, x.Telemetry)
	return e.buf
}

func DecodeElasticExport(b []byte) (*emu.ElasticExport, error) {
	d := decoder{buf: b}
	x := &emu.ElasticExport{
		Engines:   d.ints("export.engines"),
		Events:    decodeWireEvents(&d),
		BusyUntil: d.f64s("export.busyUntil"),
		LinkBytes: d.i64s("export.linkBytes"),
		Drops:     d.i64s("export.drops"),
		Delivered: d.i64s("export.delivered"),
		FCTs:      d.f64s("export.fcts"),
	}
	x.Telemetry = decodePartial(&d)
	return x, d.finish()
}

// EncodeElasticInstall/DecodeElasticInstall carry MsgInstall payloads.
func EncodeElasticInstall(in *emu.ElasticInstall) []byte {
	var e encoder
	e.f64(in.At)
	e.f64(in.Lookahead)
	e.ints(in.Engines)
	e.ints(in.Assignment)
	e.i64(in.Windows)
	e.f64(in.SkippedTime)
	e.i64s(in.Events)
	e.i64s(in.Charges)
	e.i64s(in.RemoteSends)
	encodeWireEvents(&e, in.Pending)
	e.f64s(in.BusyUntil)
	e.i64s(in.LinkBytes)
	e.i64s(in.Drops)
	e.i64s(in.Delivered)
	e.f64s(in.FCTs)
	encodePartial(&e, in.Telemetry)
	return e.buf
}

func DecodeElasticInstall(b []byte) (*emu.ElasticInstall, error) {
	d := decoder{buf: b}
	in := &emu.ElasticInstall{
		At:          d.f64("install.at"),
		Lookahead:   d.f64("install.lookahead"),
		Engines:     d.ints("install.engines"),
		Assignment:  d.ints("install.assignment"),
		Windows:     d.i64("install.windows"),
		SkippedTime: d.f64("install.skippedTime"),
		Events:      d.i64s("install.events"),
		Charges:     d.i64s("install.charges"),
		RemoteSends: d.i64s("install.remoteSends"),
		Pending:     decodeWireEvents(&d),
		BusyUntil:   d.f64s("install.busyUntil"),
		LinkBytes:   d.i64s("install.linkBytes"),
		Drops:       d.i64s("install.drops"),
		Delivered:   d.i64s("install.delivered"),
		FCTs:        d.f64s("install.fcts"),
	}
	in.Telemetry = decodePartial(&d)
	return in, d.finish()
}

// InstallAck confirms a reseat; Lookahead is the worker's independently
// derived post-resize window width, cross-checked bit-for-bit.
type InstallAck struct{ Lookahead float64 }

func (m InstallAck) Encode() []byte {
	var e encoder
	e.f64(m.Lookahead)
	return e.buf
}

func DecodeInstallAck(b []byte) (InstallAck, error) {
	d := decoder{buf: b}
	m := InstallAck{Lookahead: d.f64("installAck.lookahead")}
	return m, d.finish()
}
