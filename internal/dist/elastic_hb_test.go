package dist

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/emu"
)

// TestHeartbeatDetectsHungWorker: a worker that completes its handshake and
// then goes one-way silent — a hung process or half-open link: our frames
// reach it, its frames vanish — must be declared lost after roughly
// misses×interval, far sooner than the StepTimeout silence bound.
func TestHeartbeatDetectsHungWorker(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	conns := make([]Conn, 2)
	for i := range conns {
		c, s := Loopback()
		conns[i] = c
		if i == 1 {
			// Swallow every send after HELLO and READY: the worker still
			// receives (and even answers) our PINGs, but nothing it says —
			// PONGs included — ever arrives.
			s = NewChaosConn(s, ChaosConfig{PartitionAfter: 2})
		}
		go Serve(ctx, s, WorkerOptions{})
	}

	const (
		interval = 50 * time.Millisecond
		misses   = 3
	)
	spec := &RunSpec{Cfg: testSpec(t).Cfg}
	start := time.Now()
	_, _, err := RunElastic(ctx, spec, conns, ElasticOptions{
		Options:           Options{StepTimeout: 30 * time.Second},
		HeartbeatInterval: interval,
		HeartbeatMisses:   misses,
		OnResize: func(emu.ResizeEvent) ([]int, error) {
			return nil, errors.New("no membership change expected")
		},
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("a partitioned worker must fail the run (no OnWorkerLoss configured)")
	}
	if !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("want ErrWorkerLost, got %v", err)
	}
	if !strings.Contains(err.Error(), "heartbeat") {
		t.Fatalf("loss must be attributed to missed heartbeats, got %v", err)
	}
	// Detection latency: ~misses×interval (150ms) plus handshake and the windows
	// that ran before the partition bit. The point of the heartbeat is beating
	// the 30s StepTimeout by an order of magnitude.
	if elapsed > 10*time.Second {
		t.Fatalf("heartbeat detection took %v; must be far under the 30s StepTimeout", elapsed)
	}
}

// TestHeartbeatPongKeepsSlowWorkerAlive: a slow-but-alive worker answers
// PINGs, so probing must NOT declare it lost before the StepTimeout even when
// it takes many heartbeat intervals to produce its response.
func TestHeartbeatPongKeepsSlowWorkerAlive(t *testing.T) {
	c, s := Loopback()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			f, err := s.Recv(5 * time.Second)
			if err != nil {
				return
			}
			if f.Type == MsgPing {
				s.Send(Frame{Type: MsgPong})
			}
		}
	}()
	// The peer never sends the VOTE we wait for, but PONGs every PING: the
	// wait must run to the full timeout, not trip the miss threshold.
	start := time.Now()
	_, err := recvFromHB(c, 0, 500*time.Millisecond, &heartbeat{interval: 50 * time.Millisecond, misses: 3}, nil)
	elapsed := time.Since(start)
	c.Close()
	<-done
	if err == nil {
		t.Fatal("no frame ever arrived; the wait must eventually fail")
	}
	if strings.Contains(err.Error(), "heartbeat") {
		t.Fatalf("a PONGing worker must not be declared heartbeat-dead: %v", err)
	}
	if elapsed < 400*time.Millisecond {
		t.Fatalf("wait gave up after %v, before the 500ms response deadline", elapsed)
	}
}

// TestHeartbeatRTTHook: a PONG answering our PING delivers a round-trip
// measurement to the onRTT hook — the feed for the per-worker heartbeat RTT
// gauge — and the wait keeps running.
func TestHeartbeatRTTHook(t *testing.T) {
	c, s := Loopback()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			f, err := s.Recv(5 * time.Second)
			if err != nil {
				return
			}
			if f.Type == MsgPing {
				s.Send(Frame{Type: MsgPong})
			}
		}
	}()
	var rtts []time.Duration
	hooks := recvHooks{onRTT: func(w int, rtt time.Duration) {
		if w != 7 {
			t.Errorf("rtt reported for worker %d, want 7", w)
		}
		rtts = append(rtts, rtt)
	}}
	_, err := recvHooked(c, 7, 400*time.Millisecond,
		&heartbeat{interval: 50 * time.Millisecond, misses: 100}, hooks)
	c.Close()
	<-done
	if err == nil {
		t.Fatal("no frame ever arrived; the wait must eventually fail")
	}
	if len(rtts) == 0 {
		t.Fatal("PONGs answered PINGs but no RTT reached the hook")
	}
	for _, r := range rtts {
		if r <= 0 || r > time.Second {
			t.Errorf("implausible heartbeat rtt %v", r)
		}
	}
}
