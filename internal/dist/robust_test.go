package dist_test

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/emu"
	"repro/internal/mapping"
)

// TestDialNeverListeningReturnsCtxErr: an address nobody ever listens on must
// not retry forever — the backoff is capped at the context deadline and the
// dial returns the context's error promptly.
func TestDialNeverListeningReturnsCtxErr(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // the port is now dead: every dial gets refused

	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = dist.Dial(ctx, addr)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial of a dead address must fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	// "Promptly": the deadline was 400ms; anything past 2s means a retry
	// overshot the deadline instead of being capped by it.
	if elapsed > 2*time.Second {
		t.Fatalf("dial overshot its deadline: %v elapsed for a 400ms context", elapsed)
	}
}

// distSpec builds a minimal valid RunSpec for protocol-level tests that drive
// dist.Run directly with hand-crafted connections.
func distSpec(t *testing.T) *dist.RunSpec {
	t.Helper()
	sc := scenario(t, "Campus")
	part, _, err := sc.Partition(context.Background(), mapping.Top)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.Workload()
	if err != nil {
		t.Fatal(err)
	}
	routes, err := sc.Routes()
	if err != nil {
		t.Fatal(err)
	}
	return &dist.RunSpec{Cfg: emu.Config{
		Network:    sc.Network,
		Routes:     routes,
		Assignment: part,
		NumEngines: sc.Engines,
		Workload:   w,
	}}
}

// errorOnVoteConn makes the worker report a fatal application error in place
// of its first vote — the shape of a worker hitting a deterministic failure
// (bad alloc, assertion) rather than a transport fault.
type errorOnVoteConn struct {
	dist.Conn
	fired bool
}

func (c *errorOnVoteConn) Send(f dist.Frame) error {
	if f.Type == dist.MsgVote && !c.fired {
		c.fired = true
		return c.Conn.Send(dist.Frame{Type: dist.MsgError, Payload: dist.TextMsg{Text: "disk on fire"}.Encode()})
	}
	return c.Conn.Send(f)
}

// TestWorkerErrorFrameAbortsTyped: an ERROR frame is a deterministic worker
// fault — it would recur identically in a recovery replay, so the coordinator
// must abort the run with a typed error naming the worker, not degrade.
func TestWorkerErrorFrameAbortsTyped(t *testing.T) {
	errc := make(chan error, 1)
	go func() {
		ctx := context.Background()
		conns := make([]dist.Conn, 2)
		for i := range conns {
			c, s := dist.Loopback()
			if i == 1 {
				s = &errorOnVoteConn{Conn: s}
			}
			conns[i] = c
			go dist.Serve(ctx, s, dist.WorkerOptions{})
		}
		sc := scenario(t, "Campus")
		_, err := sc.RunDistributed(ctx, mapping.Top, conns, dist.Options{})
		errc <- err
	}()
	select {
	case <-time.After(time.Minute):
		t.Fatal("ERROR frame wedged the coordinator")
	case err := <-errc:
		if err == nil {
			t.Fatal("a worker ERROR must fail the run")
		}
		if !errors.Is(err, dist.ErrWorkerFault) {
			t.Fatalf("want ErrWorkerFault, got %v", err)
		}
		if errors.Is(err, dist.ErrWorkerLost) {
			t.Fatalf("a reported fault is not a lost worker: %v", err)
		}
		if !strings.Contains(err.Error(), "worker 1") || !strings.Contains(err.Error(), "disk on fire") {
			t.Fatalf("error must name the worker and carry its message, got %v", err)
		}
	}
}

// TestTruncatedHelloFailsHandshake: a connection that dies mid-HELLO delivers
// a partial payload; the coordinator must fail the handshake with a decode
// error — typed as a lost worker — instead of stalling.
func TestTruncatedHelloFailsHandshake(t *testing.T) {
	c, s := dist.Loopback()
	go func() {
		h := dist.Hello{Version: dist.Version}.Encode()
		s.Send(dist.Frame{Type: dist.MsgHello, Payload: h[:1]})
	}()
	errc := make(chan error, 1)
	go func() {
		_, err := dist.Run(context.Background(), distSpec(t), []dist.Conn{c}, dist.Options{})
		errc <- err
	}()
	select {
	case <-time.After(30 * time.Second):
		t.Fatal("truncated HELLO stalled the handshake")
	case err := <-errc:
		if err == nil {
			t.Fatal("truncated HELLO must fail the handshake")
		}
		if !errors.Is(err, dist.ErrWorkerLost) {
			t.Fatalf("want ErrWorkerLost, got %v", err)
		}
	}
}

// TestTruncatedAssignFailsWorker: the worker side of the same cut — a partial
// ASSIGN must surface as a prompt decode error from Serve, not a stall.
func TestTruncatedAssignFailsWorker(t *testing.T) {
	c, s := dist.Loopback()
	errc := make(chan error, 1)
	go func() { errc <- dist.Serve(context.Background(), s, dist.WorkerOptions{}) }()
	if f, err := c.Recv(10 * time.Second); err != nil || f.Type != dist.MsgHello {
		t.Fatalf("expected HELLO from worker, got %v %v", f.Type, err)
	}
	if err := c.Send(dist.Frame{Type: dist.MsgAssign, Payload: []byte{0x01, 0x02}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-time.After(10 * time.Second):
		t.Fatal("truncated ASSIGN stalled the worker")
	case err := <-errc:
		if err == nil {
			t.Fatal("truncated ASSIGN must fail the worker")
		}
	}
}

// TestPeerCloseMidHandshakeErrorsPromptly: the peer vanishing entirely
// mid-handshake must error out of Serve quickly — the close is a signal, not
// a silence to wait out.
func TestPeerCloseMidHandshakeErrorsPromptly(t *testing.T) {
	c, s := dist.Loopback()
	errc := make(chan error, 1)
	go func() { errc <- dist.Serve(context.Background(), s, dist.WorkerOptions{}) }()
	if f, err := c.Recv(10 * time.Second); err != nil || f.Type != dist.MsgHello {
		t.Fatalf("expected HELLO from worker, got %v %v", f.Type, err)
	}
	start := time.Now()
	c.Close()
	select {
	case <-time.After(10 * time.Second):
		t.Fatal("peer close stalled the worker")
	case err := <-errc:
		if err == nil {
			t.Fatal("peer close must fail the worker")
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("peer close took %v to surface", elapsed)
		}
	}
}
