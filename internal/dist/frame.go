// Package dist is the distributed engine runtime: a coordinator/worker
// protocol that runs each group of simulation engines as its own process,
// connected over TCP (or an in-process loopback for tests), while keeping
// results byte-identical to the in-process emu.Run path.
//
// The protocol is a straight serialization of the conservative kernel's
// window loop (§2.2.3 of the paper):
//
//	worker                         coordinator
//	HELLO          ──────────────▶
//	               ◀────────────── ASSIGN (scenario spec + engines + hash)
//	READY (hash)   ──────────────▶
//	loop:
//	               ◀────────────── EVENTS (barrier-merged events, may be empty)
//	VOTE (min t)   ──────────────▶
//	               ◀────────────── WINDOW [T, T+L)
//	WINDOW_DONE    ──────────────▶  (counters, outbox, telemetry share)
//	               ◀────────────── CHECKPOINT (at cadence) / FINISH / ABORT
//	STATE (final)  ──────────────▶
//	               ◀────────────── BYE
//
// Every frame is a uint32 length prefix followed by a one-byte message type
// and a binary payload; floats travel as raw IEEE-754 bits so no value is
// ever perturbed by a text round-trip.
package dist

import (
	"fmt"
	"io"

	"encoding/binary"
)

// Version is the protocol version; HELLO/ASSIGN carry it and any mismatch
// aborts the handshake. v3 added the SPANS frame, the spec's Tracing flag
// and the straggler/degradation schedule fields.
const Version = 3

// MaxFrame bounds a frame's payload (type byte included). It is sized for
// the largest legitimate message — a full telemetry slow-state partial on a
// large topology — while keeping a corrupt or hostile length prefix from
// driving an unbounded allocation.
const MaxFrame = 64 << 20

// MsgType identifies a frame's payload.
type MsgType uint8

const (
	// MsgHello opens a worker connection (payload: version).
	MsgHello MsgType = iota + 1
	// MsgAssign ships the scenario spec, the worker's engine set and the
	// spec hash.
	MsgAssign
	// MsgReady acknowledges ASSIGN with the worker's independently computed
	// spec hash and lookahead.
	MsgReady
	// MsgEvents delivers barrier-merged events and requests a vote.
	MsgEvents
	// MsgVote answers with the worker's earliest pending event time.
	MsgVote
	// MsgWindow commands execution of one window [start, end).
	MsgWindow
	// MsgWindowDone reports a window's counters, outbox and telemetry.
	MsgWindowDone
	// MsgCheckpoint commands a local snapshot at a barrier; MsgCheckpointAck
	// confirms it.
	MsgCheckpoint
	MsgCheckpointAck
	// MsgFinish ends the run; the worker answers with MsgState.
	MsgFinish
	MsgState
	// MsgError reports a worker-side run error (poisoned run, bad event).
	MsgError
	// MsgAbort tells a worker to stop immediately (coordinator shutdown,
	// peer loss, cancellation).
	MsgAbort
	// MsgBye releases the worker after a successful run (or after its state
	// has been exported at a drain barrier).
	MsgBye
	// MsgPing probes a silent worker's liveness; MsgPong answers it. Pongs
	// may interleave with protocol responses and are absorbed anywhere.
	MsgPing
	MsgPong
	// MsgDrain is a worker's unsolicited request to leave the run at the
	// next membership barrier; the coordinator absorbs it anywhere.
	MsgDrain
	// MsgExport pulls a worker's complete barrier state for a membership
	// change; the worker answers with its ElasticExport.
	MsgExport
	// MsgInstall reseats a continuing worker onto the post-resize state;
	// MsgInstallAck confirms with the worker's derived lookahead.
	MsgInstall
	MsgInstallAck
	// MsgSpans ships a worker's buffered wall-clock trace spans. Sent only
	// when tracing is on, immediately before the WINDOW_DONE or
	// CHECKPOINT_ACK it annotates; the coordinator absorbs it anywhere.
	MsgSpans
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "HELLO"
	case MsgAssign:
		return "ASSIGN"
	case MsgReady:
		return "READY"
	case MsgEvents:
		return "EVENTS"
	case MsgVote:
		return "VOTE"
	case MsgWindow:
		return "WINDOW"
	case MsgWindowDone:
		return "WINDOW_DONE"
	case MsgCheckpoint:
		return "CHECKPOINT"
	case MsgCheckpointAck:
		return "CHECKPOINT_ACK"
	case MsgFinish:
		return "FINISH"
	case MsgState:
		return "STATE"
	case MsgError:
		return "ERROR"
	case MsgAbort:
		return "ABORT"
	case MsgBye:
		return "BYE"
	case MsgPing:
		return "PING"
	case MsgPong:
		return "PONG"
	case MsgDrain:
		return "DRAIN"
	case MsgExport:
		return "EXPORT"
	case MsgInstall:
		return "INSTALL"
	case MsgInstallAck:
		return "INSTALL_ACK"
	case MsgSpans:
		return "SPANS"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Frame is one length-delimited protocol message.
type Frame struct {
	Type    MsgType
	Payload []byte
}

// WriteFrame writes one frame: uint32 little-endian length (type byte +
// payload), then the type byte, then the payload.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload)+1 > MaxFrame {
		return fmt.Errorf("dist: frame %s payload %d bytes exceeds MaxFrame %d", f.Type, len(f.Payload), MaxFrame)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(f.Payload)+1))
	hdr[4] = byte(f.Type)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, rejecting empty frames and length prefixes
// beyond MaxFrame before allocating anything.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return Frame{}, fmt.Errorf("dist: empty frame")
	}
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("dist: frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, fmt.Errorf("dist: truncated frame (%d of %d bytes): %w", 0, n, err)
	}
	return Frame{Type: MsgType(body[0]), Payload: body[1:]}, nil
}
