package dist

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/internal/telemetry"

	"repro/internal/emu"
	"repro/internal/obs"
)

// WorkerOptions tunes the worker side of the protocol.
type WorkerOptions struct {
	// IdleTimeout bounds each wait for a coordinator command; a coordinator
	// that goes silent longer than this fails the worker instead of wedging
	// it. <= 0 selects the default.
	IdleTimeout time.Duration
	// Drain, when it fires (or closes), asks the coordinator for a graceful
	// leave: the worker sends DRAIN once and keeps serving until the
	// coordinator exports its state at a membership barrier and releases it
	// with BYE. Distinct from cancellation, which abandons the run.
	Drain <-chan struct{}
	// Logf, when set, receives one line per protocol phase.
	Logf func(format string, args ...any)
}

// DefaultIdleTimeout is how long a worker waits for the next coordinator
// command before giving up.
const DefaultIdleTimeout = 2 * time.Minute

func (o *WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// DialAndServe connects to a coordinator (retrying with backoff until ctx
// expires, so start order does not matter) and serves one run.
func DialAndServe(ctx context.Context, addr string, opt WorkerOptions) error {
	conn, err := Dial(ctx, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return Serve(ctx, conn, opt)
}

// Serve runs the worker side of one run over an established connection. It
// returns nil after a clean BYE; any protocol, transport or simulation error
// is reported to the coordinator (best effort) and returned.
func Serve(ctx context.Context, conn Conn, opt WorkerOptions) error {
	if opt.IdleTimeout <= 0 {
		opt.IdleTimeout = DefaultIdleTimeout
	}
	err := serve(ctx, conn, &opt)
	if err != nil {
		// Best-effort: tell the coordinator why this worker is going away so
		// it can degrade immediately instead of waiting out a deadline.
		_ = conn.Send(Frame{Type: MsgError, Payload: TextMsg{Text: err.Error()}.Encode()})
	}
	return err
}

func serve(ctx context.Context, conn Conn, opt *WorkerOptions) error {
	if err := conn.Send(Frame{Type: MsgHello, Payload: Hello{Version: Version}.Encode()}); err != nil {
		return err
	}
	drained := false
	f, err := recvCmd(ctx, conn, opt, &drained)
	if err != nil {
		return err
	}
	if f.Type != MsgAssign {
		return fmt.Errorf("dist: worker expected ASSIGN, got %s", f.Type)
	}
	as, err := DecodeAssign(f.Payload)
	if err != nil {
		return err
	}
	if as.Version != Version {
		return fmt.Errorf("dist: coordinator speaks protocol %d, this build speaks %d", as.Version, Version)
	}
	spec, err := DecodeSpec(as.Spec)
	if err != nil {
		return err
	}
	// Re-encode the rebuilt scenario and hash it: this catches transport
	// corruption and — more importantly — any drift between the coordinator's
	// scenario and the one this process reconstructed, before a single event
	// runs on a wrong topology.
	reblob, err := EncodeSpec(spec)
	if err != nil {
		return fmt.Errorf("dist: re-encoding rebuilt spec: %w", err)
	}
	hash := SpecHash(reblob)
	if !bytes.Equal(reblob, as.Spec) || hash != as.Hash {
		return fmt.Errorf("dist: rebuilt scenario does not round-trip to the shipped spec (hash mismatch)")
	}
	var tel *telemetry.Collector
	if spec.Telemetry {
		tel = telemetry.New()
	}
	local, err := emu.NewDistLocal(spec.Cfg, as.Engines, tel)
	if err != nil {
		return err
	}
	// Tracing state: buffered wall-clock spans ship in a SPANS frame
	// immediately before the WINDOW_DONE or CHECKPOINT_ACK they annotate, so
	// the coordinator folds them into the matching window commit. lastT/
	// lastEnd anchor worker-level spans (wire, checkpoint, migrate) to the
	// most recent window's virtual bounds; windows is the local window count.
	var (
		spanBuf        []obs.Span
		windows        int64
		lastT, lastEnd float64
	)
	if spec.Tracing {
		local.EnableTiming()
	}
	sendSpans := func() error {
		if !spec.Tracing || len(spanBuf) == 0 {
			return nil
		}
		err := conn.Send(Frame{Type: MsgSpans, Payload: EncodeSpans(spanBuf)})
		spanBuf = spanBuf[:0]
		return err
	}
	opt.logf("dist: worker %d/%d ready, engines %v, lookahead %g",
		as.WorkerID, as.Workers, as.Engines, local.Lookahead())
	if err := conn.Send(Frame{Type: MsgReady, Payload: Ready{Hash: hash, Lookahead: local.Lookahead()}.Encode()}); err != nil {
		return err
	}

	for {
		f, err := recvCmd(ctx, conn, opt, &drained)
		if err != nil {
			return err
		}
		switch f.Type {
		case MsgEvents:
			t0 := time.Now()
			evs, err := DecodeEvents(f.Payload)
			if err != nil {
				return err
			}
			if err := local.Inject(evs); err != nil {
				return err
			}
			if spec.Tracing && len(evs) > 0 {
				spanBuf = append(spanBuf, obs.Span{
					Kind: obs.SpanWireRecv, Engine: -1, Window: windows,
					Start: lastT, End: lastEnd, Wall: time.Since(t0).Seconds(),
				})
			}
			t, has := local.Vote()
			if err := conn.Send(Frame{Type: MsgVote, Payload: Vote{Has: has, Time: t}.Encode()}); err != nil {
				return err
			}
		case MsgWindow:
			w, err := DecodeWindow(f.Payload)
			if err != nil {
				return err
			}
			rep, err := local.Step(w.Start, w.End)
			if err != nil {
				return err
			}
			if spec.Tracing {
				lastT, lastEnd = w.Start, w.End
				pre := len(spanBuf)
				spanBuf = local.AppendComputeSpans(spanBuf, w.Start, w.End)
				for i := pre; i < len(spanBuf); i++ {
					spanBuf[i].Window = windows
				}
				if err := sendSpans(); err != nil {
					return err
				}
			}
			t0 := time.Now()
			if err := conn.Send(Frame{Type: MsgWindowDone, Payload: EncodeWindowDone(rep)}); err != nil {
				return err
			}
			if spec.Tracing {
				// The send wall time ships with the NEXT batch — it cannot
				// precede the frame it measures.
				spanBuf = append(spanBuf, obs.Span{
					Kind: obs.SpanWireSend, Engine: -1, Window: windows,
					Start: w.Start, End: w.End, Wall: time.Since(t0).Seconds(),
				})
				windows++
			}
		case MsgCheckpoint:
			cp, err := DecodeCheckpoint(f.Payload)
			if err != nil {
				return err
			}
			t0 := time.Now()
			n := local.Checkpoint(cp.At)
			if spec.Tracing {
				spanBuf = append(spanBuf, obs.Span{
					Kind: obs.SpanCheckpoint, Engine: -1, Window: windows,
					Start: lastT, End: lastEnd, Wall: time.Since(t0).Seconds(),
				})
				if err := sendSpans(); err != nil {
					return err
				}
			}
			if err := conn.Send(Frame{Type: MsgCheckpointAck, Payload: CheckpointAck{Count: int64(n)}.Encode()}); err != nil {
				return err
			}
		case MsgExport:
			x, err := DecodeExportMsg(f.Payload)
			if err != nil {
				return err
			}
			ex, err := local.Export(x.At)
			if err != nil {
				return err
			}
			if err := conn.Send(Frame{Type: MsgExport, Payload: EncodeElasticExport(ex)}); err != nil {
				return err
			}
		case MsgInstall:
			in, err := DecodeElasticInstall(f.Payload)
			if err != nil {
				return err
			}
			t0 := time.Now()
			if err := local.Reseat(in); err != nil {
				return err
			}
			if spec.Tracing {
				// Ships with the next window's SPANS batch.
				spanBuf = append(spanBuf, obs.Span{
					Kind: obs.SpanMigrate, Engine: -1, Window: windows,
					Start: in.At, End: in.At, Wall: time.Since(t0).Seconds(),
				})
			}
			opt.logf("dist: worker %d reseated onto engines %v at t=%g", as.WorkerID, in.Engines, in.At)
			if err := conn.Send(Frame{Type: MsgInstallAck, Payload: InstallAck{Lookahead: in.Lookahead}.Encode()}); err != nil {
				return err
			}
		case MsgFinish:
			st := local.Final()
			if err := conn.Send(Frame{Type: MsgState, Payload: EncodeState(st)}); err != nil {
				return err
			}
			f, err := recvCmd(ctx, conn, opt, &drained)
			if err != nil {
				return err
			}
			if f.Type != MsgBye {
				return fmt.Errorf("dist: worker expected BYE, got %s", f.Type)
			}
			opt.logf("dist: worker %d done", as.WorkerID)
			return nil
		case MsgBye:
			// A drained worker is released at the membership barrier that
			// exported its state, without a FINISH round.
			opt.logf("dist: worker %d drained", as.WorkerID)
			return nil
		case MsgAbort:
			m, _ := DecodeText(f.Payload)
			return fmt.Errorf("dist: aborted by coordinator: %s", m.Text)
		default:
			return fmt.Errorf("dist: worker got unexpected %s", f.Type)
		}
	}
}

// recvCmd is Recv bounded by both the idle timeout and the context — a
// canceled context interrupts the wait at the next slice. Liveness pings are
// answered in place, and a pending drain request goes out between waits (the
// worker is the only writer on its side, so sending here cannot interleave
// with a response). drained latches so DRAIN is sent at most once.
func recvCmd(ctx context.Context, conn Conn, opt *WorkerOptions, drained *bool) (Frame, error) {
	deadline := time.Now().Add(opt.IdleTimeout)
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return Frame{}, fmt.Errorf("dist: canceled: %w", err)
			}
		}
		if opt.Drain != nil && !*drained {
			select {
			case <-opt.Drain:
				*drained = true
				opt.logf("dist: requesting drain")
				if err := conn.Send(Frame{Type: MsgDrain}); err != nil {
					return Frame{}, err
				}
			default:
			}
		}
		slice := time.Until(deadline)
		if slice <= 0 {
			return Frame{}, fmt.Errorf("dist: no command within %v", opt.IdleTimeout)
		}
		if slice > time.Second && (ctx != nil || (opt.Drain != nil && !*drained)) {
			slice = time.Second
		}
		f, err := conn.Recv(slice)
		if err == nil {
			if f.Type == MsgPing {
				if err := conn.Send(Frame{Type: MsgPong}); err != nil {
					return Frame{}, err
				}
				continue
			}
			return f, nil
		}
		if isTimeout(err) && time.Now().Before(deadline) {
			continue
		}
		return Frame{}, err
	}
}

func isTimeout(err error) bool {
	type timeouter interface{ Timeout() bool }
	for e := err; e != nil; {
		if t, ok := e.(timeouter); ok {
			return t.Timeout()
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}
