package dist

import (
	"encoding/json"
	"fmt"

	"repro/internal/emu"
)

// canonicalResult is the deterministic projection of an emu.Result used for
// in-process vs distributed equivalence checks. It carries every simulation
// output and excludes only what is legitimately nondeterministic between the
// two execution modes: wall-clock time (Kernel.WallTime, and the wall-clock
// Wait/Busy parts of Obs) and the distributed runtime's pre-merge queue-depth
// sampling (see DESIGN.md §11).
type canonicalResult struct {
	Windows         int64
	VirtualEnd      float64
	SkippedTime     float64
	Events          []int64
	Charges         []int64
	RemoteSends     []int64
	Lookahead       float64
	EngineLoads     []float64
	Imbalance       float64
	AppTime         float64
	NetTime         float64
	EngineBusy      []float64
	RemoteEvents    int64
	FlowFCTs        []float64
	DroppedPackets  int64
	LinkBytes       []int64
	FinalAssignment []int
	SeriesLoads     [][]float64
	Telemetry       json.RawMessage `json:",omitempty"`
	// Membership records elastic engine-set changes; equivalence between an
	// in-process elastic schedule and a live join/drain run covers the
	// membership log itself, not just the simulation outputs.
	Membership *emu.Membership `json:",omitempty"`
}

// ResultJSON renders a Result into canonical JSON: byte-identical across an
// in-process run and a distributed run of the same scenario. Floats are
// serialized by encoding/json from the exact binary values, so any ULP of
// divergence shows up as a diff.
func ResultJSON(r *emu.Result) ([]byte, error) {
	c := canonicalResult{
		Lookahead:       r.Lookahead,
		EngineLoads:     r.EngineLoads,
		Imbalance:       r.Imbalance,
		AppTime:         r.AppTime,
		NetTime:         r.NetTime,
		EngineBusy:      r.EngineBusy,
		RemoteEvents:    r.RemoteEvents,
		FlowFCTs:        r.FlowFCTs,
		DroppedPackets:  r.DroppedPackets,
		LinkBytes:       r.LinkBytes,
		FinalAssignment: r.FinalAssignment,
		Membership:      r.Membership,
	}
	if r.Kernel != nil {
		c.Windows = r.Kernel.Windows
		c.VirtualEnd = r.Kernel.VirtualEnd
		c.SkippedTime = r.Kernel.SkippedTime
		c.Events = r.Kernel.Events
		c.Charges = r.Kernel.Charges
		c.RemoteSends = r.Kernel.RemoteSends
	}
	if r.EngineSeries != nil {
		c.SeriesLoads = r.EngineSeries.Loads
	}
	if r.Telemetry != nil {
		b, err := json.Marshal(r.Telemetry)
		if err != nil {
			return nil, fmt.Errorf("dist: marshal telemetry: %w", err)
		}
		c.Telemetry = b
	}
	return json.MarshalIndent(&c, "", "  ")
}
