package dist

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/emu"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netgraph"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// Message payload codecs. Every message has an Encode producing a payload
// and a decode validating one; the scenario spec is special — it is encoded
// canonically (node and link insertion order preserved, floats as exact
// bits) so that sha256(spec) is a content hash both sides can compute
// independently: the worker re-encodes the scenario it rebuilt and compares
// hashes, catching both transport corruption and any reconstruction drift.

// Hello opens a worker connection.
type Hello struct {
	Version uint32
}

func (m Hello) Encode() []byte {
	var e encoder
	e.u32(m.Version)
	return e.buf
}

func DecodeHello(b []byte) (Hello, error) {
	d := decoder{buf: b}
	m := Hello{Version: d.u32("hello.version")}
	return m, d.finish()
}

// Assign ships the scenario and the worker's place in the run.
type Assign struct {
	Version  uint32
	WorkerID int
	Workers  int
	// Engines is the worker's engine set, ascending.
	Engines []int
	// Hash is sha256 over Spec.
	Hash [32]byte
	// Spec is the canonical scenario encoding (see EncodeSpec).
	Spec []byte
}

func (m Assign) Encode() []byte {
	var e encoder
	e.u32(m.Version)
	e.u32(uint32(m.WorkerID))
	e.u32(uint32(m.Workers))
	e.ints(m.Engines)
	e.buf = append(e.buf, m.Hash[:]...)
	e.u32(uint32(len(m.Spec)))
	e.buf = append(e.buf, m.Spec...)
	return e.buf
}

func DecodeAssign(b []byte) (Assign, error) {
	d := decoder{buf: b}
	m := Assign{
		Version:  d.u32("assign.version"),
		WorkerID: int(d.u32("assign.worker")),
		Workers:  int(d.u32("assign.workers")),
		Engines:  d.ints("assign.engines"),
	}
	copy(m.Hash[:], d.take(32, "assign.hash"))
	n := d.count(1, "assign.spec")
	m.Spec = append([]byte(nil), d.take(n, "assign.spec")...)
	return m, d.finish()
}

// Ready acknowledges an Assign.
type Ready struct {
	// Hash is the worker's independently recomputed spec hash.
	Hash [32]byte
	// Lookahead is the window width the worker derived — compared bit-for-
	// bit against the coordinator's.
	Lookahead float64
}

func (m Ready) Encode() []byte {
	var e encoder
	e.buf = append(e.buf, m.Hash[:]...)
	e.f64(m.Lookahead)
	return e.buf
}

func DecodeReady(b []byte) (Ready, error) {
	d := decoder{buf: b}
	var m Ready
	copy(m.Hash[:], d.take(32, "ready.hash"))
	m.Lookahead = d.f64("ready.lookahead")
	return m, d.finish()
}

// Vote is the worker's barrier vote.
type Vote struct {
	Has  bool
	Time float64
}

func (m Vote) Encode() []byte {
	var e encoder
	e.boolean(m.Has)
	e.f64(m.Time)
	return e.buf
}

func DecodeVote(b []byte) (Vote, error) {
	d := decoder{buf: b}
	m := Vote{Has: d.boolean("vote.has"), Time: d.f64("vote.time")}
	return m, d.finish()
}

// Window commands one window's execution.
type Window struct {
	Start, End float64
}

func (m Window) Encode() []byte {
	var e encoder
	e.f64(m.Start)
	e.f64(m.End)
	return e.buf
}

func DecodeWindow(b []byte) (Window, error) {
	d := decoder{buf: b}
	m := Window{Start: d.f64("window.start"), End: d.f64("window.end")}
	return m, d.finish()
}

// CheckpointMsg commands a barrier snapshot at virtual time At; the ack
// carries the worker's checkpoint count.
type CheckpointMsg struct{ At float64 }

func (m CheckpointMsg) Encode() []byte {
	var e encoder
	e.f64(m.At)
	return e.buf
}

func DecodeCheckpoint(b []byte) (CheckpointMsg, error) {
	d := decoder{buf: b}
	m := CheckpointMsg{At: d.f64("checkpoint.at")}
	return m, d.finish()
}

type CheckpointAck struct{ Count int64 }

func (m CheckpointAck) Encode() []byte {
	var e encoder
	e.i64(m.Count)
	return e.buf
}

func DecodeCheckpointAck(b []byte) (CheckpointAck, error) {
	d := decoder{buf: b}
	m := CheckpointAck{Count: d.i64("checkpointAck.count")}
	return m, d.finish()
}

// TextMsg carries MsgError and MsgAbort reasons.
type TextMsg struct{ Text string }

func (m TextMsg) Encode() []byte {
	var e encoder
	e.str(m.Text)
	return e.buf
}

func DecodeText(b []byte) (TextMsg, error) {
	d := decoder{buf: b}
	m := TextMsg{Text: d.str("text")}
	return m, d.finish()
}

// ---- Wire events ----

func encodeWireEvents(e *encoder, evs []emu.WireEvent) {
	e.u32(uint32(len(evs)))
	for _, w := range evs {
		e.f64(w.Time)
		e.u32(uint32(w.Dst))
		e.u32(uint32(w.Src))
		e.u32(uint32(w.SrcIdx))
		e.u8(w.Kind)
		e.u32(uint32(w.Flow))
		e.u32(uint32(w.Hop))
		e.u32(uint32(w.Window))
		e.i64(w.Packets)
		e.i64(w.Bytes)
		e.i64(w.Offset)
	}
}

const wireEventSize = 8 + 4*6 + 1 + 8*3

func decodeWireEvents(d *decoder) []emu.WireEvent {
	n := d.count(wireEventSize, "events.count")
	if d.err != nil || n == 0 {
		return nil
	}
	evs := make([]emu.WireEvent, n)
	for i := range evs {
		evs[i] = emu.WireEvent{
			Time:   d.f64("event.time"),
			Dst:    int32(d.u32("event.dst")),
			Src:    int32(d.u32("event.src")),
			SrcIdx: int32(d.u32("event.srcIdx")),
			Kind:   d.u8("event.kind"),
			Flow:   int32(d.u32("event.flow")),
			Hop:    int32(d.u32("event.hop")),
			Window: int32(d.u32("event.window")),
			Packets: d.i64("event.packets"),
			Bytes:   d.i64("event.bytes"),
			Offset:  d.i64("event.offset"),
		}
	}
	return evs
}

// EncodeEvents/DecodeEvents carry MsgEvents payloads.
func EncodeEvents(evs []emu.WireEvent) []byte {
	var e encoder
	encodeWireEvents(&e, evs)
	return e.buf
}

func DecodeEvents(b []byte) ([]emu.WireEvent, error) {
	d := decoder{buf: b}
	evs := decodeWireEvents(&d)
	return evs, d.finish()
}

// ---- Telemetry partials ----

func encodeHist(e *encoder, h *metrics.Histogram) {
	e.i64s(h.Counts)
	e.i64(h.Count)
	e.f64(h.Sum)
	e.i64(h.NaNCount)
}

func decodeHist(d *decoder) *metrics.Histogram {
	counts := d.i64s("hist.counts")
	h := telemetry.NewRunHistogram()
	if d.err == nil && len(counts) != len(h.Counts) {
		d.fail("hist.layout")
	}
	if d.err == nil {
		copy(h.Counts, counts)
	}
	h.Count = d.i64("hist.count")
	h.Sum = d.f64("hist.sum")
	h.NaNCount = d.i64("hist.nan")
	return h
}

func encodePartial(e *encoder, p *telemetry.Partial) {
	if p == nil {
		e.boolean(false)
		return
	}
	e.boolean(true)
	e.ints(p.Engines)
	e.i64s(p.MatrixBytes)
	e.i64s(p.MatrixPackets)
	e.boolean(p.HasSlow)
	if !p.HasSlow {
		return
	}
	e.i64s(p.LinkTxBytes)
	e.i64s(p.LinkTxPackets)
	e.i64s(p.LinkRxPackets)
	e.i64s(p.NodePackets)
	e.u32(uint32(len(p.SeriesLoads)))
	for _, row := range p.SeriesLoads {
		e.f64s(row)
	}
	e.u32(uint32(len(p.QueueDelay)))
	for i := range p.QueueDelay {
		encodeHist(e, p.QueueDelay[i])
		encodeHist(e, p.FCT[i])
	}
	e.i64s(p.FlowsDone)
	e.i64s(p.Drops)
}

func decodePartial(d *decoder) *telemetry.Partial {
	if !d.boolean("partial.present") {
		return nil
	}
	p := &telemetry.Partial{
		Engines:       d.ints("partial.engines"),
		MatrixBytes:   d.i64s("partial.matrixBytes"),
		MatrixPackets: d.i64s("partial.matrixPackets"),
		HasSlow:       d.boolean("partial.hasSlow"),
	}
	if !p.HasSlow {
		return p
	}
	p.LinkTxBytes = d.i64s("partial.linkTxBytes")
	p.LinkTxPackets = d.i64s("partial.linkTxPackets")
	p.LinkRxPackets = d.i64s("partial.linkRxPackets")
	p.NodePackets = d.i64s("partial.nodePackets")
	rows := d.count(4, "partial.seriesRows")
	p.SeriesLoads = make([][]float64, 0, rows)
	for i := 0; i < rows && d.err == nil; i++ {
		p.SeriesLoads = append(p.SeriesLoads, d.f64s("partial.seriesRow"))
	}
	nh := d.count(1, "partial.hists")
	for i := 0; i < nh && d.err == nil; i++ {
		p.QueueDelay = append(p.QueueDelay, decodeHist(d))
		p.FCT = append(p.FCT, decodeHist(d))
	}
	p.FlowsDone = d.i64s("partial.flowsDone")
	p.Drops = d.i64s("partial.drops")
	return p
}

// EncodeWindowDone/DecodeWindowDone carry MsgWindowDone payloads.
func EncodeWindowDone(r *emu.WindowReport) []byte {
	var e encoder
	e.i64s(r.Events)
	e.i64s(r.Charges)
	e.i64s(r.Remote)
	e.i64s(r.Queue)
	encodeWireEvents(&e, r.Outbox)
	encodePartial(&e, r.Telemetry)
	return e.buf
}

func DecodeWindowDone(b []byte) (*emu.WindowReport, error) {
	d := decoder{buf: b}
	r := &emu.WindowReport{
		Events:  d.i64s("windowDone.events"),
		Charges: d.i64s("windowDone.charges"),
		Remote:  d.i64s("windowDone.remote"),
		Queue:   d.i64s("windowDone.queue"),
		Outbox:  decodeWireEvents(&d),
	}
	r.Telemetry = decodePartial(&d)
	return r, d.finish()
}

// EncodeState/DecodeState carry MsgState payloads.
func EncodeState(s *emu.DistState) []byte {
	var e encoder
	e.ints(s.Engines)
	e.i64s(s.Events)
	e.i64s(s.Charges)
	e.i64s(s.RemoteSends)
	e.i64s(s.LinkBytes)
	e.i64s(s.Drops)
	e.f64s(s.FCTs)
	encodePartial(&e, s.Telemetry)
	return e.buf
}

// EncodeSpans/DecodeSpans carry MsgSpans payloads: a worker's buffered
// wall-clock trace spans. Busy never ships (the coordinator derives modeled
// busy from the merged counters itself) and Worker is implied by the sending
// connection; Window is the worker's local window count, which the
// coordinator ignores in favor of its own commit order.
func EncodeSpans(spans []obs.Span) []byte {
	var e encoder
	e.u32(uint32(len(spans)))
	for _, s := range spans {
		e.u8(uint8(s.Kind))
		e.i64(int64(s.Engine))
		e.i64(s.Window)
		e.f64(s.Start)
		e.f64(s.End)
		e.f64(s.Wall)
	}
	return e.buf
}

func DecodeSpans(b []byte) ([]obs.Span, error) {
	d := decoder{buf: b}
	n := d.count(41, "spans")
	out := make([]obs.Span, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, obs.Span{
			Kind:   obs.SpanKind(d.u8("span.kind")),
			Engine: int(d.i64("span.engine")),
			Window: d.i64("span.window"),
			Start:  d.f64("span.start"),
			End:    d.f64("span.end"),
			Wall:   d.f64("span.wall"),
		})
	}
	return out, d.finish()
}

func DecodeState(b []byte) (*emu.DistState, error) {
	d := decoder{buf: b}
	s := &emu.DistState{
		Engines:     d.ints("state.engines"),
		Events:      d.i64s("state.events"),
		Charges:     d.i64s("state.charges"),
		RemoteSends: d.i64s("state.remoteSends"),
		LinkBytes:   d.i64s("state.linkBytes"),
		Drops:       d.i64s("state.drops"),
		FCTs:        d.f64s("state.fcts"),
	}
	s.Telemetry = decodePartial(&d)
	return s, d.finish()
}

// ---- The scenario spec ----

// Spec is the self-contained scenario a worker rebuilds the emulation from:
// topology, workload, assignment and every numeric knob of the run, plus the
// routing mode and whether telemetry is collected. Functions (OnCrash) and
// crash schedules never ship — EncodeSpec rejects them; straggler and
// degradation schedules do ship (they parameterize the coordinator's cost
// model, and the worker needs them only to round-trip the spec hash).
type Spec struct {
	Cfg emu.Config
	// Routing selects the route-oracle backend the worker rebuilds. The raw
	// (un-normalized) options ship on the wire; both sides normalize against
	// the same node count, so coordinator and workers always resolve the
	// same backend.
	Routing netgraph.RoutingOptions
	// Telemetry tells the worker to run a collector so its share of the
	// traffic plane can be merged at each barrier.
	Telemetry bool
	// Tracing tells the worker to measure wall-clock spans (window compute,
	// wire, checkpoint, migrate) and ship them in SPANS frames.
	Tracing bool
}

// EncodeSpec canonically encodes a normalized config (emu.NormalizeConfig
// must have been applied). Node and link insertion order is preserved —
// routing tie-breaks depend on it.
func EncodeSpec(s *Spec) ([]byte, error) {
	cfg := &s.Cfg
	if cfg.Network == nil {
		return nil, fmt.Errorf("dist: spec needs a network")
	}
	if cfg.Faults.HasCrashes() || cfg.OnCrash != nil {
		return nil, fmt.Errorf("dist: crash schedules and crash hooks do not ship")
	}
	var e encoder
	e.u32(Version)
	nw := cfg.Network
	e.str(nw.Name)
	e.u32(uint32(len(nw.Nodes)))
	for _, n := range nw.Nodes {
		e.u8(uint8(n.Kind))
		e.str(n.Name)
		e.i64(int64(n.AS))
		e.str(n.Site)
	}
	e.u32(uint32(len(nw.Links)))
	for _, l := range nw.Links {
		e.i64(int64(l.A))
		e.i64(int64(l.B))
		e.f64(l.Bandwidth)
		e.f64(l.Latency)
	}
	w := &cfg.Workload
	e.u32(uint32(len(w.Flows)))
	for _, f := range w.Flows {
		e.i64(int64(f.ID))
		e.i64(int64(f.Src))
		e.i64(int64(f.Dst))
		e.f64(f.Start)
		e.i64(f.Bytes)
		e.str(f.Tag)
	}
	e.ints(w.AppHosts)
	e.f64(w.Duration)

	e.ints(cfg.Assignment)
	e.i64(int64(cfg.NumEngines))
	e.i64(cfg.ChunkBytes)
	e.i64(cfg.MTU)
	e.f64(cfg.Cost.PerEvent)
	e.f64(cfg.Cost.PerRemote)
	e.f64(cfg.Cost.PerWindow)
	e.f64(cfg.BucketWidth)
	e.f64(cfg.EndTime)
	e.i64(int64(cfg.Transport))
	e.f64s(cfg.EngineSpeeds)
	e.i64(cfg.BufferBytes)
	e.f64(cfg.MinLookahead)
	e.boolean(cfg.Sequential)
	e.f64(cfg.MigrationCost)
	e.u8(uint8(s.Routing.Backend))
	e.i64(int64(s.Routing.LazyRows))
	e.i64(int64(s.Routing.Clusters))
	e.boolean(s.Telemetry)
	e.boolean(s.Tracing)
	// Straggler/degradation schedule (crash-free, checked above). Workers
	// never apply it — the cost model runs on the coordinator — but it must
	// round-trip so the spec hash covers the whole scenario.
	var stragglers []faults.Straggler
	var degradations []faults.Degradation
	if cfg.Faults != nil {
		stragglers = cfg.Faults.Stragglers
		degradations = cfg.Faults.Degradations
	}
	e.u32(uint32(len(stragglers)))
	for _, st := range stragglers {
		e.i64(int64(st.Engine))
		e.f64(st.From)
		e.f64(st.To)
		e.f64(st.Factor)
	}
	e.u32(uint32(len(degradations)))
	for _, dg := range degradations {
		e.f64(dg.From)
		e.f64(dg.To)
		e.f64(dg.Factor)
	}
	return e.buf, nil
}

// SpecHash is the content hash both sides compute over the canonical spec
// encoding.
func SpecHash(blob []byte) [32]byte { return sha256.Sum256(blob) }

// DecodeSpec rebuilds the scenario. The returned config's Routes field is
// set to the oracle the spec's RoutingOptions select, resolved through the
// rebuilt network's shared routing cache.
func DecodeSpec(b []byte) (*Spec, error) {
	d := decoder{buf: b}
	if v := d.u32("spec.version"); d.err == nil && v != Version {
		return nil, fmt.Errorf("dist: spec version %d, this build speaks %d", v, Version)
	}
	nw := netgraph.New(d.str("spec.network.name"))
	nodes := d.count(6, "spec.nodes")
	for i := 0; i < nodes && d.err == nil; i++ {
		kind := d.u8("spec.node.kind")
		name := d.str("spec.node.name")
		as := int(d.i64("spec.node.as"))
		site := d.str("spec.node.site")
		var id int
		switch netgraph.NodeKind(kind) {
		case netgraph.Router:
			id = nw.AddRouter(name, as)
		case netgraph.Host:
			id = nw.AddHost(name, as)
		default:
			return nil, fmt.Errorf("dist: spec node %d has unknown kind %d", i, kind)
		}
		if site != "" {
			nw.SetSite(id, site)
		}
	}
	links := d.count(24, "spec.links")
	for i := 0; i < links && d.err == nil; i++ {
		a := int(d.i64("spec.link.a"))
		b2 := int(d.i64("spec.link.b"))
		bw := d.f64("spec.link.bw")
		lat := d.f64("spec.link.lat")
		if a < 0 || a >= nw.NumNodes() || b2 < 0 || b2 >= nw.NumNodes() {
			return nil, fmt.Errorf("dist: spec link %d endpoints (%d,%d) out of range", i, a, b2)
		}
		nw.AddLink(a, b2, bw, lat)
	}
	var wl traffic.Workload
	flows := d.count(40, "spec.flows")
	for i := 0; i < flows && d.err == nil; i++ {
		wl.Flows = append(wl.Flows, traffic.Flow{
			ID:    int(d.i64("spec.flow.id")),
			Src:   int(d.i64("spec.flow.src")),
			Dst:   int(d.i64("spec.flow.dst")),
			Start: d.f64("spec.flow.start"),
			Bytes: d.i64("spec.flow.bytes"),
			Tag:   d.str("spec.flow.tag"),
		})
	}
	wl.AppHosts = d.ints("spec.appHosts")
	wl.Duration = d.f64("spec.duration")

	s := &Spec{Cfg: emu.Config{Network: nw, Workload: wl}}
	cfg := &s.Cfg
	cfg.Assignment = d.ints("spec.assignment")
	cfg.NumEngines = int(d.i64("spec.numEngines"))
	cfg.ChunkBytes = d.i64("spec.chunkBytes")
	cfg.MTU = d.i64("spec.mtu")
	cfg.Cost.PerEvent = d.f64("spec.cost.perEvent")
	cfg.Cost.PerRemote = d.f64("spec.cost.perRemote")
	cfg.Cost.PerWindow = d.f64("spec.cost.perWindow")
	cfg.BucketWidth = d.f64("spec.bucketWidth")
	cfg.EndTime = d.f64("spec.endTime")
	cfg.Transport = emu.TransportMode(d.i64("spec.transport"))
	cfg.EngineSpeeds = d.f64s("spec.engineSpeeds")
	cfg.BufferBytes = d.i64("spec.bufferBytes")
	cfg.MinLookahead = d.f64("spec.minLookahead")
	cfg.Sequential = d.boolean("spec.sequential")
	cfg.MigrationCost = d.f64("spec.migrationCost")
	s.Routing.Backend = netgraph.Backend(d.u8("spec.routing.backend"))
	s.Routing.LazyRows = int(d.i64("spec.routing.lazyRows"))
	s.Routing.Clusters = int(d.i64("spec.routing.clusters"))
	s.Telemetry = d.boolean("spec.telemetry")
	s.Tracing = d.boolean("spec.tracing")
	nst := d.count(32, "spec.stragglers")
	var stragglers []faults.Straggler
	for i := 0; i < nst && d.err == nil; i++ {
		stragglers = append(stragglers, faults.Straggler{
			Engine: int(d.i64("spec.straggler.engine")),
			From:   d.f64("spec.straggler.from"),
			To:     d.f64("spec.straggler.to"),
			Factor: d.f64("spec.straggler.factor"),
		})
	}
	ndg := d.count(24, "spec.degradations")
	var degradations []faults.Degradation
	for i := 0; i < ndg && d.err == nil; i++ {
		degradations = append(degradations, faults.Degradation{
			From:   d.f64("spec.degradation.from"),
			To:     d.f64("spec.degradation.to"),
			Factor: d.f64("spec.degradation.factor"),
		})
	}
	if len(stragglers) > 0 || len(degradations) > 0 {
		cfg.Faults = &faults.Schedule{Stragglers: stragglers, Degradations: degradations}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	routes, err := nw.SharedRouting(s.Routing)
	if err != nil {
		return nil, fmt.Errorf("dist: spec routing: %w", err)
	}
	cfg.Routes = routes
	return s, nil
}
