package dist_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/mapping"
)

// scenario builds a fresh, fast scenario for one run. Every call returns an
// identically-parameterized scenario so in-process and distributed runs never
// share memoized state.
func scenario(t *testing.T, topology string) *core.Scenario {
	t.Helper()
	sc, err := experiments.ScenarioFor(experiments.Config{Duration: 10, Seed: 42}, topology, "ScaLapack")
	if err != nil {
		t.Fatalf("scenario %s: %v", topology, err)
	}
	sc.CollectTelemetry = true
	return sc
}

// startLoopbackWorkers spawns W in-process workers and returns the
// coordinator-side connections plus a drain function for the workers' exit
// errors.
func startLoopbackWorkers(ctx context.Context, w int) ([]dist.Conn, func() []error) {
	conns := make([]dist.Conn, w)
	errs := make(chan error, w)
	for i := 0; i < w; i++ {
		c, s := dist.Loopback()
		conns[i] = c
		go func() { errs <- dist.Serve(ctx, s, dist.WorkerOptions{}) }()
	}
	return conns, func() []error {
		out := make([]error, w)
		for i := range out {
			out[i] = <-errs
		}
		return out
	}
}

func runDistributed(t *testing.T, topology string, a mapping.Approach, workers int) *emu.Result {
	t.Helper()
	ctx := context.Background()
	conns, drain := startLoopbackWorkers(ctx, workers)
	sc := scenario(t, topology)
	o, err := sc.RunDistributed(ctx, a, conns, dist.Options{})
	if err != nil {
		t.Fatalf("distributed %s on %s: %v", a, topology, err)
	}
	for i, werr := range drain() {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	return o.Result
}

func canonical(t *testing.T, r *emu.Result) []byte {
	t.Helper()
	b, err := dist.ResultJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDistributedMatchesInProcess is the core fidelity guarantee: a run
// spread over worker processes must produce byte-identical results to the
// same scenario run in-process.
func TestDistributedMatchesInProcess(t *testing.T) {
	cases := []struct {
		topology string
		workers  int
	}{
		{"Campus", 2},
		{"Campus", 3}, // one engine per worker
		{"TeraGrid", 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s-%dw", tc.topology, tc.workers), func(t *testing.T) {
			t.Parallel()
			inproc, err := scenario(t, tc.topology).Run(context.Background(), mapping.Top)
			if err != nil {
				t.Fatalf("in-process: %v", err)
			}
			distRes := runDistributed(t, tc.topology, mapping.Top, tc.workers)
			want := canonical(t, inproc.Result)
			got := canonical(t, distRes)
			if !bytes.Equal(want, got) {
				t.Fatalf("distributed result diverges from in-process (canonical JSON, %d vs %d bytes):\nin-process: %.600s\ndistributed: %.600s",
					len(want), len(got), want, got)
			}
			if distRes.Kernel.TotalCharges() == 0 {
				t.Fatal("empty run proves nothing")
			}
		})
	}
}

// TestDistributedTCPMatchesLoopback runs the same scenario over real TCP
// sockets and over the in-process loopback transport; the transports must be
// interchangeable.
func TestDistributedTCPMatchesLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("socket test")
	}
	const workers = 2
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	l, err := dist.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	werrs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() { werrs <- dist.DialAndServe(ctx, l.Addr().String(), dist.WorkerOptions{}) }()
	}
	conns := make([]dist.Conn, workers)
	for i := range conns {
		c, err := dist.Accept(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	sc := scenario(t, "Campus")
	o, err := sc.RunDistributed(ctx, mapping.Top, conns, dist.Options{})
	if err != nil {
		t.Fatalf("distributed over TCP: %v", err)
	}
	for i := 0; i < workers; i++ {
		if werr := <-werrs; werr != nil {
			t.Fatalf("tcp worker %d: %v", i, werr)
		}
	}
	loopback := runDistributed(t, "Campus", mapping.Top, workers)
	if !bytes.Equal(canonical(t, o.Result), canonical(t, loopback)) {
		t.Fatal("TCP and loopback transports produced different results")
	}
}

// flakyConn injects a connection failure after the coordinator has commanded
// a number of windows — a worker process dying mid-run, as seen from the
// coordinator's side of the socket.
type flakyConn struct {
	dist.Conn
	windows   int
	failAfter int
}

var errInjectedLink = errors.New("injected link failure")

func (f *flakyConn) Send(fr dist.Frame) error {
	if fr.Type == dist.MsgWindow {
		f.windows++
		if f.windows > f.failAfter {
			return errInjectedLink
		}
	}
	return f.Conn.Send(fr)
}

// TestWorkerLossDegradesToRecovery kills a worker mid-run and requires the
// run to complete — deadline-bounded — through the crash-recovery remap path
// instead of hanging or failing.
func TestWorkerLossDegradesToRecovery(t *testing.T) {
	done := make(chan *core.Outcome, 1)
	fail := make(chan error, 1)
	go func() {
		ctx := context.Background()
		conns, _ := startLoopbackWorkers(ctx, 2)
		conns[1] = &flakyConn{Conn: conns[1], failAfter: 3}
		sc := scenario(t, "Campus")
		o, err := sc.RunDistributed(ctx, mapping.Top, conns, dist.Options{})
		if err != nil {
			fail <- err
			return
		}
		done <- o
	}()
	select {
	case err := <-fail:
		t.Fatalf("worker loss must degrade, not fail the run: %v", err)
	case <-time.After(2 * time.Minute):
		t.Fatal("worker loss wedged the run (deadline exceeded)")
	case o := <-done:
		rec := o.Result.Recovery
		if rec == nil {
			t.Fatal("degraded run must report Recovery")
		}
		if rec.Failures == 0 {
			t.Fatal("the lost worker's engines were never fail-stopped")
		}
		if o.Result.Kernel.TotalCharges() == 0 {
			t.Fatal("degraded run produced an empty result")
		}
		// The lost worker owned engines 1 (and 3, 5, ... if any); recovery
		// must have remapped onto survivors: final assignment avoids them.
		for v, e := range o.Result.FinalAssignment {
			for _, dead := range rec.DeadEngines {
				if e == dead {
					t.Fatalf("node %d still assigned to dead engine %d", v, e)
				}
			}
		}
	}
}

// TestCoordinatorRejectsBadShapes covers the cheap validation paths.
func TestCoordinatorRejectsBadShapes(t *testing.T) {
	if _, err := dist.Run(context.Background(), &dist.RunSpec{}, nil, dist.Options{}); err == nil {
		t.Fatal("no workers must be rejected")
	}
	sc := scenario(t, "Campus")
	part, _, err := sc.Partition(context.Background(), mapping.Top)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.Workload()
	if err != nil {
		t.Fatal(err)
	}
	cfg := emu.Config{
		Network: sc.Network, Assignment: part, NumEngines: sc.Engines, Workload: w,
	}
	// More workers than engines: someone would idle with zero engines.
	many := make([]dist.Conn, sc.Engines+1)
	for i := range many {
		c, s := dist.Loopback()
		many[i] = c
		_ = s
	}
	if _, err := dist.Run(context.Background(), &dist.RunSpec{Cfg: cfg}, many, dist.Options{}); err == nil {
		t.Fatal("more workers than engines must be rejected")
	}
	// Cfg.OnCrash must not be set on a distributed spec.
	cfg.OnCrash = func(emu.EngineFailure) ([]int, error) { return nil, nil }
	one := make([]dist.Conn, 1)
	one[0], _ = dist.Loopback()
	if _, err := dist.Run(context.Background(), &dist.RunSpec{Cfg: cfg}, one, dist.Options{}); err == nil {
		t.Fatal("Cfg.OnCrash must be rejected")
	}
}
