package obs

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func sampleWindow(i int64) Window {
	return Window{
		Index: i, Start: float64(i), End: float64(i) + 0.5,
		Events:  []int64{3, 1},
		Charges: []int64{30, 10},
		Remote:  []int64{2, 0},
		Queue:   []int64{5, 7},
		Wait:    []float64{0.001, 0},
	}
}

func TestTraceDeterministicBytes(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		tr := NewTrace(&buf)
		tr.RecordRun(RunMeta{LPs: 2, Lookahead: 1e-4})
		tr.RecordWindow(sampleWindow(0))
		tr.RecordEvent(Event{Kind: EventCheckpoint, Time: 10, LP: -1})
		tr.RecordWindow(sampleWindow(1))
		tr.RecordEvent(Event{Kind: EventMigration, Time: 10, LP: 1, Value: 4})
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Fatalf("trace not deterministic:\n%s\nvs\n%s", a, b)
	}
	want := `{"type":"run","lps":2,"lookahead":0.0001,"resumed":false}`
	if !strings.HasPrefix(a, want+"\n") {
		t.Errorf("run line = %q, want prefix %q", a[:len(want)], want)
	}
	if !strings.Contains(a, `"kind":"migration","t":10,"lp":1,"value":4`) {
		t.Errorf("migration event missing from trace:\n%s", a)
	}
	if strings.Contains(a, "Wait") || strings.Contains(a, "wait") {
		t.Errorf("trace must not serialize wall-clock wait:\n%s", a)
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	w.n -= len(p)
	return len(p), nil
}

func TestTraceDeferredWriteError(t *testing.T) {
	tr := NewTrace(&errWriter{n: 8})
	for i := int64(0); i < 1000; i++ {
		tr.RecordWindow(sampleWindow(i))
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("expected deferred write error")
	}
	if tr.Err() == nil {
		t.Fatal("Err() lost the write error")
	}
}

func TestRunStatsAccumulation(t *testing.T) {
	s := NewRunStats()
	s.RecordRun(RunMeta{LPs: 2, Lookahead: 1e-3})
	s.RecordWindow(sampleWindow(0))
	s.RecordWindow(sampleWindow(1))
	s.RecordEvent(Event{Kind: EventCheckpoint, Time: 1})
	s.RecordEvent(Event{Kind: EventCrash, Time: 2, LP: 1, Value: 1.7})
	s.RecordEvent(Event{Kind: EventRollback, Time: 1, LP: 1, Value: 3})
	s.RecordEvent(Event{Kind: EventMigration, Time: 1, LP: 0, Value: 5})
	s.RecordRun(RunMeta{LPs: 2, Lookahead: 1e-3, Resumed: true})
	s.RecordWindow(sampleWindow(1))

	if s.Segments != 2 {
		t.Errorf("Segments = %d, want 2", s.Segments)
	}
	if s.Windows != 3 {
		t.Errorf("Windows = %d, want 3", s.Windows)
	}
	if got := s.TotalEvents(); got != 12 {
		t.Errorf("TotalEvents = %d, want 12", got)
	}
	if got := s.TotalCharges(); got != 120 {
		t.Errorf("TotalCharges = %d, want 120", got)
	}
	if s.MaxQueue[1] != 7 {
		t.Errorf("MaxQueue[1] = %d, want 7", s.MaxQueue[1])
	}
	if s.Checkpoints != 1 || s.Crashes != 1 || s.Rollbacks != 1 {
		t.Errorf("lifecycle counts = %d/%d/%d, want 1/1/1", s.Checkpoints, s.Crashes, s.Rollbacks)
	}
	if s.ReplayedWindows != 3 {
		t.Errorf("ReplayedWindows = %d, want 3", s.ReplayedWindows)
	}
	if got := s.TotalMigrations(); got != 5 {
		t.Errorf("TotalMigrations = %d, want 5", got)
	}
	if w := s.TotalBarrierWait(); w <= 0 {
		t.Errorf("TotalBarrierWait = %g, want > 0", w)
	}
	if str := s.String(); !strings.Contains(str, "recovery:") {
		t.Errorf("String() missing recovery section: %q", str)
	}
}

func TestRunStatsConcurrentSnapshot(t *testing.T) {
	s := NewRunStats()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 200; i++ {
			s.RecordWindow(sampleWindow(i))
			s.RecordEvent(Event{Kind: EventCheckpoint, Time: float64(i)})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			snap := s.Snapshot()
			_ = snap.String()
			_ = s.TotalEvents()
		}
	}()
	wg.Wait()
	if s.Windows != 200 {
		t.Errorf("Windows = %d, want 200", s.Windows)
	}
}

func TestMulti(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils should be nil")
	}
	a, b := NewRunStats(), NewRunStats()
	if got := Multi(nil, a); got != Recorder(a) {
		t.Error("Multi with one non-nil should return it directly")
	}
	m := Multi(a, nil, b)
	m.RecordRun(RunMeta{LPs: 2})
	m.RecordWindow(sampleWindow(0))
	m.RecordEvent(Event{Kind: EventCheckpoint})
	if a.Windows != 1 || b.Windows != 1 || a.Checkpoints != 1 || b.Checkpoints != 1 {
		t.Error("Multi did not fan out to all recorders")
	}
}

func TestServeDebug(t *testing.T) {
	s := NewRunStats()
	s.RecordRun(RunMeta{LPs: 2, Lookahead: 1e-3})
	s.RecordWindow(sampleWindow(0))
	Publish("test-run", s)
	Publish("test-run", s) // re-publish must not panic

	srv, base, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "repro.runstats") ||
		!strings.Contains(body, "test-run") {
		t.Errorf("expvar output missing published stats:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index unexpected:\n%s", body)
	}
}

// BenchmarkTraceWindow measures the per-window cost of the JSONL tracer.
func BenchmarkTraceWindow(b *testing.B) {
	tr := NewTrace(io.Discard)
	w := sampleWindow(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Index = int64(i)
		tr.RecordWindow(w)
	}
	if err := tr.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunStatsWindow measures the per-window cost of the aggregator.
func BenchmarkRunStatsWindow(b *testing.B) {
	s := NewRunStats()
	w := sampleWindow(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Index = int64(i)
		s.RecordWindow(w)
	}
}

// BenchmarkMultiDispatch measures the fan-out overhead of a two-recorder
// chain.
func BenchmarkMultiDispatch(b *testing.B) {
	m := Multi(NewRunStats(), NewTrace(io.Discard))
	w := sampleWindow(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RecordWindow(w)
	}
}
