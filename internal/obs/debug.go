package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Debug endpoint: a small HTTP server exposing Go's runtime profiling
// (net/http/pprof) and process counters (expvar), plus any published
// RunStats. It uses its own mux rather than http.DefaultServeMux so
// importing this package never mutates global handlers.

var (
	publishMu  sync.Mutex
	published  = map[string]*RunStats{}
	registered bool
)

// Publish exposes the collector's live snapshot under the given expvar name
// (visible at /debug/vars). Re-publishing a name replaces the previous
// collector — unlike expvar.Publish, which panics on duplicates — so
// repeated runs can reuse one name.
func Publish(name string, s *RunStats) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if !registered {
		registered = true
		expvar.Publish("repro.runstats", expvar.Func(func() any {
			publishMu.Lock()
			defer publishMu.Unlock()
			out := make(map[string]*RunStats, len(published))
			for n, st := range published {
				out[n] = st.Snapshot()
			}
			return out
		}))
	}
	published[name] = s
}

// ServeDebug starts an HTTP server on addr (e.g. "localhost:6060") serving
// /debug/pprof/* and /debug/vars, and returns the server together with its
// resolved base URL. Additional subsystems mount their own handlers through
// mounts — each receives the server's mux before it starts serving (this is
// how telemetry.Mount adds /metrics and /trafficmatrix without obs importing
// it). The caller owns shutdown (srv.Shutdown for graceful drain, srv.Close
// to abort). Pass addr with port 0 to pick a free port.
func ServeDebug(addr string, mounts ...func(*http.ServeMux)) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: debug endpoint: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	for _, m := range mounts {
		if m != nil {
			m(mux)
		}
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, "http://" + ln.Addr().String(), nil
}
