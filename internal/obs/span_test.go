package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// commit is a test helper: one window of compute spans from (engine, busy)
// pairs, in ascending engine order as the observation plane guarantees.
func commit(t *Timeline, start, end float64, busy map[int]float64) WindowStat {
	var spans []Span
	for e := 0; ; e++ {
		if len(spans) == len(busy) {
			break
		}
		if b, ok := busy[e]; ok {
			spans = append(spans, Span{Kind: SpanCompute, Engine: e, Start: start, End: end, Busy: b})
		}
	}
	return t.CommitWindow(start, end, spans)
}

func TestTimelineAttributionAndBarriers(t *testing.T) {
	tl := NewTimeline()
	tl.Assign([]int{0, 1}, 0)
	tl.Assign([]int{2, 3}, 1)

	// Worker 1 (engine 2) gates the first window by 3s, worker 0 the second.
	st := commit(tl, 0, 1, map[int]float64{0: 2, 1: 1, 2: 5, 3: 4})
	if st.Worker != 1 || st.Busy != 5 || st.Lag != 3 {
		t.Fatalf("window 0 stat = %+v, want worker 1 busy 5 lag 3", st)
	}
	st = commit(tl, 1, 2, map[int]float64{0: 6, 2: 2})
	if st.Worker != 0 || st.Busy != 6 || st.Lag != 4 {
		t.Fatalf("window 1 stat = %+v, want worker 0 busy 6 lag 4", st)
	}

	var barriers []Span
	for _, s := range tl.Spans() {
		if s.Kind == SpanBarrier {
			barriers = append(barriers, s)
		}
	}
	if len(barriers) != 2 {
		t.Fatalf("got %d barrier spans, want 2 (one non-gating worker per window)", len(barriers))
	}
	if b := barriers[0]; b.Worker != 0 || b.Window != 0 || b.Busy != 3 {
		t.Errorf("window 0 barrier = %+v, want worker 0 waiting 3s", b)
	}
	if b := barriers[1]; b.Worker != 1 || b.Window != 1 || b.Busy != 4 {
		t.Errorf("window 1 barrier = %+v, want worker 1 waiting 4s", b)
	}

	h := tl.Health()
	if len(h) != 2 {
		t.Fatalf("health rows = %d, want 2", len(h))
	}
	if h[0].Worker != 0 || h[0].GatedWindows != 1 || h[0].CriticalPath != 6 {
		t.Errorf("worker 0 health = %+v", h[0])
	}
	if h[1].Worker != 1 || h[1].GatedWindows != 1 || h[1].CriticalPath != 5 {
		t.Errorf("worker 1 health = %+v", h[1])
	}
	if got := h[0].Share + h[1].Share; math.Abs(got-1) > 1e-12 {
		t.Errorf("shares sum to %g, want 1", got)
	}
	if math.Abs(h[0].Share-6.0/11) > 1e-12 {
		t.Errorf("worker 0 share = %g, want 6/11", h[0].Share)
	}
}

func TestTimelineTieGoesToLowerWorker(t *testing.T) {
	tl := NewTimeline()
	tl.Assign([]int{0}, 0)
	tl.Assign([]int{1}, 1)
	st := commit(tl, 0, 1, map[int]float64{0: 3, 1: 3})
	if st.Worker != 0 {
		t.Fatalf("tied window attributed to worker %d, want 0 (lower id)", st.Worker)
	}
	if st.Lag != 0 {
		t.Fatalf("tied window lag = %g, want 0", st.Lag)
	}
}

func TestTimelineUnassignedEnginesAreTheirOwnWorker(t *testing.T) {
	tl := NewTimeline()
	commit(tl, 0, 1, map[int]float64{0: 1, 1: 2})
	for _, s := range tl.Spans() {
		if s.Kind == SpanCompute && s.Worker != s.Engine {
			t.Fatalf("in-process span %+v: worker should equal engine", s)
		}
	}
	// Only gating workers get health rows; engine 1 gated the sole window.
	if h := tl.Health(); len(h) != 1 || h[0].Worker != 1 || h[0].GatedWindows != 1 {
		t.Fatalf("in-process health = %+v, want only engine 1 gating", h)
	}
}

func TestTimelineIdleWindow(t *testing.T) {
	tl := NewTimeline()
	st := tl.CommitWindow(0, 1, nil)
	if st.Worker != -1 || st.Busy != 0 || st.Lag != 0 {
		t.Fatalf("idle window stat = %+v, want worker -1", st)
	}
	if n := len(tl.Spans()); n != 0 {
		t.Fatalf("idle window produced %d spans", n)
	}
}

func TestTimelineWallFolding(t *testing.T) {
	tl := NewTimeline()
	tl.Assign([]int{0, 1}, 0)
	// A worker-measured compute wall time is held until the commit; a
	// checkpoint span appends directly.
	tl.AddWall([]Span{
		{Kind: SpanCompute, Worker: 0, Engine: 1, Start: 0, End: 1, Wall: 0.25},
		{Kind: SpanCheckpoint, Worker: 0, Engine: -1, Start: 1, End: 1, Wall: 0.5},
	})
	commit(tl, 0, 1, map[int]float64{0: 1, 1: 2})

	var compute1, ckpt *Span
	for _, s := range tl.Spans() {
		s := s
		switch {
		case s.Kind == SpanCompute && s.Engine == 1:
			compute1 = &s
		case s.Kind == SpanCheckpoint:
			ckpt = &s
		}
	}
	if compute1 == nil || compute1.Wall != 0.25 {
		t.Fatalf("compute span for engine 1 = %+v, want folded wall 0.25", compute1)
	}
	if ckpt == nil || ckpt.Wall != 0.5 {
		t.Fatalf("checkpoint span = %+v, want wall 0.5", ckpt)
	}
	// A stale pending wall (engine idle this window) must not leak into the
	// next window's span.
	tl.AddWall([]Span{{Kind: SpanCompute, Worker: 0, Engine: 0, Start: 1, End: 2, Wall: 9}})
	commit(tl, 1, 2, map[int]float64{1: 1})
	commit(tl, 2, 3, map[int]float64{0: 1})
	for _, s := range tl.Spans() {
		if s.Kind == SpanCompute && s.Window == 2 && s.Wall != 0 {
			t.Fatalf("stale wall leaked into window 2: %+v", s)
		}
	}
}

func TestTimelineCanonicalJSONIgnoresDeployment(t *testing.T) {
	build := func(assign bool) *Timeline {
		tl := NewTimeline()
		if assign {
			tl.Assign([]int{0, 1}, 0)
			tl.Assign([]int{2}, 1)
			// Wall measurements arrive only in the distributed shape.
			tl.AddWall([]Span{{Kind: SpanCompute, Engine: 2, Wall: 0.1}})
		}
		commit(tl, 0, 0.5, map[int]float64{0: 1, 1: 2, 2: 3})
		commit(tl, 0.5, 1, map[int]float64{1: 4, 2: 1})
		return tl
	}
	dist := build(true).CanonicalJSON()
	inproc := build(false).CanonicalJSON()
	if !bytes.Equal(dist, inproc) {
		t.Fatalf("canonical projection differs across deployment shapes:\n%s\nvs\n%s", dist, inproc)
	}
	if !bytes.Contains(dist, []byte(`{"window":0,"engine":0,"start":0,"end":0.5,"busy":1}`)) {
		t.Fatalf("canonical form missing expected line:\n%s", dist)
	}
}

func TestTimelineReset(t *testing.T) {
	tl := NewTimeline()
	tl.Assign([]int{0}, 7)
	commit(tl, 0, 1, map[int]float64{0: 1})
	tl.Reset()
	if tl.Windows() != 0 || len(tl.Spans()) != 0 || len(tl.Health()) != 0 || len(tl.DrainWindowStats()) != 0 {
		t.Fatal("reset left state behind")
	}
	// Assignments are gone too: engine 0 is its own worker again.
	commit(tl, 0, 1, map[int]float64{0: 1})
	if s := tl.Spans(); s[0].Worker != 0 {
		t.Fatalf("post-reset span worker = %d, want 0", s[0].Worker)
	}
}

func TestTimelineDrainWindowStats(t *testing.T) {
	tl := NewTimeline()
	commit(tl, 0, 1, map[int]float64{0: 1})
	commit(tl, 1, 2, map[int]float64{0: 1})
	if got := len(tl.DrainWindowStats()); got != 2 {
		t.Fatalf("first drain returned %d stats, want 2", got)
	}
	if got := len(tl.DrainWindowStats()); got != 0 {
		t.Fatalf("second drain returned %d stats, want 0", got)
	}
}

// traceDoc mirrors the Chrome trace_event schema subset the export uses.
type traceDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string  `json:"ph"`
		Name string  `json:"name"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Args map[string]any
	} `json:"traceEvents"`
}

func TestWriteTraceEventsIsValidTraceEventJSON(t *testing.T) {
	tl := NewTimeline()
	tl.Assign([]int{0, 1}, 0)
	tl.Assign([]int{2}, 1)
	tl.AddWall([]Span{{Kind: SpanWireRecv, Worker: 1, Engine: -1, Start: 0, End: 1, Wall: 0.002}})
	commit(tl, 0, 1, map[int]float64{0: 1, 1: 2, 2: 5})

	var buf bytes.Buffer
	if err := tl.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph+"/"+ev.Name]++
		if ev.Ph == "X" && ev.Name == "compute" && ev.Pid == 1 {
			if ev.Tid != 3 { // engine 2 renders on tid engine+1
				t.Errorf("worker 1 compute span on tid %d, want 3", ev.Tid)
			}
			if ev.Ts != 0 || ev.Dur != 5e6 {
				t.Errorf("compute span ts/dur = %g/%g, want 0/5e6 virtual µs", ev.Ts, ev.Dur)
			}
		}
	}
	if counts["M/process_name"] != 2 {
		t.Errorf("process_name metadata = %d, want 2 workers", counts["M/process_name"])
	}
	if counts["X/compute"] != 3 || counts["X/barrier-wait"] != 1 || counts["X/wire-recv"] != 1 {
		t.Errorf("event counts = %v, want 3 compute, 1 barrier-wait, 1 wire-recv", counts)
	}
}
