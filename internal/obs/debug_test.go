package obs

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeDebugEndpoints covers the built-in surface: expvar with published
// run stats, the pprof index, and 404s for unknown paths.
func TestServeDebugEndpoints(t *testing.T) {
	s := NewRunStats()
	s.RecordRun(RunMeta{LPs: 2, Lookahead: 1e-3})
	s.RecordWindow(sampleWindow(0))
	Publish("debug-test-run", s)

	srv, base, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if code, body := getBody(t, base+"/debug/vars"); code != http.StatusOK ||
		!strings.Contains(body, "repro.runstats") || !strings.Contains(body, "debug-test-run") {
		t.Errorf("expvar: status %d, body:\n%s", code, body)
	}
	if code, body := getBody(t, base+"/debug/pprof/"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d, body:\n%s", code, body)
	}
	if code, _ := getBody(t, base+"/no-such-endpoint"); code != http.StatusNotFound {
		t.Errorf("unknown path served status %d, want 404", code)
	}
}

// TestServeDebugMounts: extra subsystems (telemetry's /metrics and
// /trafficmatrix in production) hook the mux through the variadic mount
// functions; nil mounts are ignored.
func TestServeDebugMounts(t *testing.T) {
	srv, base, err := ServeDebug("127.0.0.1:0", nil, func(mux *http.ServeMux) {
		mux.HandleFunc("/mounted", func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "mounted-ok")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, body := getBody(t, base+"/mounted"); code != http.StatusOK || body != "mounted-ok" {
		t.Errorf("mounted handler: status %d body %q", code, body)
	}
	// The built-ins survive alongside mounts.
	if code, _ := getBody(t, base+"/debug/vars"); code != http.StatusOK {
		t.Errorf("expvar lost after mounting: status %d", code)
	}
}

// TestServeDebugGracefulShutdown: Shutdown drains an in-flight request to
// completion, and afterwards the listener no longer accepts connections.
func TestServeDebugGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	srv, base, err := ServeDebug("127.0.0.1:0", func(mux *http.ServeMux) {
		mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
			close(entered)
			<-release
			io.WriteString(w, "drained")
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var slowBody string
	var slowErr error
	go func() {
		defer wg.Done()
		resp, err := http.Get(base + "/slow")
		if err != nil {
			slowErr = err
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		slowBody, slowErr = string(b), err
	}()
	<-entered

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight handler, not kill it.
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned before the in-flight request finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	wg.Wait()
	if slowErr != nil || slowBody != "drained" {
		t.Fatalf("in-flight request not drained: body %q err %v", slowBody, slowErr)
	}
	if _, err := http.Get(base + "/debug/vars"); err == nil {
		t.Error("listener still accepting connections after Shutdown")
	}
}
