package obs

import (
	"fmt"
	"strings"
	"sync"
)

// RunStats aggregates a run's observability stream into per-LP totals — the
// summary attached to emu.Result (and through it core.Outcome). It is itself
// a Recorder, so it can ride any recorder chain.
//
// All counters include replayed work: a window re-executed after a crash
// rollback counts again, because the collector measures work actually
// performed, not logical progress. ReplayedWindows says how much of the total
// is replay.
//
// Methods lock internally: the kernel writes from its coordinating goroutine
// while the expvar debug endpoint may read a live run concurrently.
type RunStats struct {
	mu sync.Mutex

	// LPs is the number of logical processes (engines).
	LPs int
	// Segments counts kernel run segments (1 + successful rollback resumes).
	Segments int
	// Windows is the number of executed windows, including replays.
	Windows int64
	// Events, Charges and Remote are per-LP totals over all executed
	// windows (handler invocations, kernel-event load, cross-LP sends).
	Events, Charges, Remote []int64
	// MaxQueue is the maximum post-barrier pending-event queue length
	// observed per LP — peak channel occupancy.
	MaxQueue []int64
	// BarrierWait is the accumulated wall-clock barrier wait per LP in
	// seconds (zero under the sequential kernel). Nondeterministic.
	BarrierWait []float64
	// Checkpoints, Crashes and Rollbacks count recovery lifecycle events.
	Checkpoints, Crashes, Rollbacks int64
	// ReplayedWindows is the number of windows discarded by rollbacks and
	// therefore executed more than once.
	ReplayedWindows int64
	// MigratedNodes[lp] is the number of virtual nodes recovery moved onto
	// engine lp.
	MigratedNodes []int64

	// Gated[w] counts sync windows worker w's engines gated — held the
	// window's modeled critical path. In-process runs attribute per engine.
	Gated []int64
	// CriticalPath[w] is the modeled critical-path seconds attributed to
	// worker w; LagSeconds accumulates the per-window gap between the gating
	// worker and the runner-up. All deterministic (cost-model derived).
	CriticalPath []float64
	LagSeconds   float64

	// Joins, Drains and Kills count elastic membership churn per LP — the
	// first engine each joining/draining/killed worker (de)activates, as
	// carried by EventJoin/EventDrain/EventHeartbeatMiss.
	Joins, Drains, Kills []int64
	// Resizes counts applied membership changes; PeakEngines is the largest
	// active engine set observed across them.
	Resizes, PeakEngines int64
}

// NewRunStats returns an empty collector.
func NewRunStats() *RunStats { return &RunStats{} }

func (s *RunStats) grow(n int) {
	if n <= s.LPs {
		return
	}
	s.LPs = n
	s.Events = growInts(s.Events, n)
	s.Charges = growInts(s.Charges, n)
	s.Remote = growInts(s.Remote, n)
	s.MaxQueue = growInts(s.MaxQueue, n)
	s.MigratedNodes = growInts(s.MigratedNodes, n)
	s.Joins = growInts(s.Joins, n)
	s.Drains = growInts(s.Drains, n)
	s.Kills = growInts(s.Kills, n)
	for len(s.BarrierWait) < n {
		s.BarrierWait = append(s.BarrierWait, 0)
	}
}

// growWorkers sizes the worker-indexed attribution slices independently of
// the LP count — distributed runs have fewer workers than engines.
func (s *RunStats) growWorkers(n int) {
	s.Gated = growInts(s.Gated, n)
	for len(s.CriticalPath) < n {
		s.CriticalPath = append(s.CriticalPath, 0)
	}
}

func growInts(xs []int64, n int) []int64 {
	for len(xs) < n {
		xs = append(xs, 0)
	}
	return xs
}

// RecordRun implements Recorder.
func (s *RunStats) RecordRun(m RunMeta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grow(m.LPs)
	s.Segments++
}

// RecordWindow implements Recorder.
func (s *RunStats) RecordWindow(w Window) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grow(len(w.Events))
	s.Windows++
	for lp := range w.Events {
		s.Events[lp] += w.Events[lp]
		s.Charges[lp] += w.Charges[lp]
		s.Remote[lp] += w.Remote[lp]
		if w.Queue[lp] > s.MaxQueue[lp] {
			s.MaxQueue[lp] = w.Queue[lp]
		}
		s.BarrierWait[lp] += w.Wait[lp]
	}
}

// RecordEvent implements Recorder.
func (s *RunStats) RecordEvent(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch e.Kind {
	case EventCheckpoint:
		s.Checkpoints++
	case EventCrash:
		s.Crashes++
	case EventRollback:
		s.Rollbacks++
		s.ReplayedWindows += int64(e.Value)
	case EventMigration:
		if e.LP >= 0 {
			s.grow(e.LP + 1)
			s.MigratedNodes[e.LP] += int64(e.Value)
		}
	case EventResize:
		s.Resizes++
		if n := int64(e.Value); n > s.PeakEngines {
			s.PeakEngines = n
		}
	case EventJoin:
		if e.LP >= 0 {
			s.grow(e.LP + 1)
			s.Joins[e.LP]++
		}
	case EventDrain:
		if e.LP >= 0 {
			s.grow(e.LP + 1)
			s.Drains[e.LP]++
		}
	case EventHeartbeatMiss:
		if e.LP >= 0 {
			s.grow(e.LP + 1)
			s.Kills[e.LP]++
		}
	}
}

// RecordGated accounts one committed window's straggler attribution: the
// gating worker, its modeled critical-path seconds, and its lag over the
// runner-up. Called by the tracing layer, not the Recorder stream, so trace
// artifacts stay untouched.
func (s *RunStats) RecordGated(worker int, busy, lag float64) {
	if worker < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.growWorkers(worker + 1)
	s.Gated[worker]++
	s.CriticalPath[worker] += busy
	s.LagSeconds += lag
}

// NoteClusterSize records an observed active engine-set size so PeakEngines
// covers the initial membership, not just resizes.
func (s *RunStats) NoteClusterSize(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int64(n) > s.PeakEngines {
		s.PeakEngines = int64(n)
	}
}

// TotalEvents sums handler invocations over all LPs.
func (s *RunStats) TotalEvents() int64 { return sumLocked(s, s.Events) }

// TotalCharges sums the kernel-event load over all LPs.
func (s *RunStats) TotalCharges() int64 { return sumLocked(s, s.Charges) }

// TotalRemote sums cross-LP event messages over all LPs.
func (s *RunStats) TotalRemote() int64 { return sumLocked(s, s.Remote) }

// TotalMigrations sums recovery migrations over all engines.
func (s *RunStats) TotalMigrations() int64 { return sumLocked(s, s.MigratedNodes) }

func sumLocked(s *RunStats, xs []int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

// TotalBarrierWait sums the wall-clock barrier wait over all LPs, in
// seconds.
func (s *RunStats) TotalBarrierWait() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t float64
	for _, w := range s.BarrierWait {
		t += w
	}
	return t
}

// Snapshot returns a consistent copy safe to read while the run continues.
func (s *RunStats) Snapshot() *RunStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &RunStats{
		LPs:             s.LPs,
		Segments:        s.Segments,
		Windows:         s.Windows,
		Events:          append([]int64(nil), s.Events...),
		Charges:         append([]int64(nil), s.Charges...),
		Remote:          append([]int64(nil), s.Remote...),
		MaxQueue:        append([]int64(nil), s.MaxQueue...),
		BarrierWait:     append([]float64(nil), s.BarrierWait...),
		Checkpoints:     s.Checkpoints,
		Crashes:         s.Crashes,
		Rollbacks:       s.Rollbacks,
		ReplayedWindows: s.ReplayedWindows,
		MigratedNodes:   append([]int64(nil), s.MigratedNodes...),
		Gated:           append([]int64(nil), s.Gated...),
		CriticalPath:    append([]float64(nil), s.CriticalPath...),
		LagSeconds:      s.LagSeconds,
		Joins:           append([]int64(nil), s.Joins...),
		Drains:          append([]int64(nil), s.Drains...),
		Kills:           append([]int64(nil), s.Kills...),
		Resizes:         s.Resizes,
		PeakEngines:     s.PeakEngines,
	}
}

// String renders a compact human-readable summary.
func (s *RunStats) String() string {
	c := s.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "windows %d (replayed %d), events %d, kernel-events %d, remote %d",
		c.Windows, c.ReplayedWindows, sum(c.Events), sum(c.Charges), sum(c.Remote))
	if mq := maxOf(c.MaxQueue); mq > 0 {
		fmt.Fprintf(&b, ", max queue %d", mq)
	}
	if w := totalFloat(c.BarrierWait); w > 0 {
		fmt.Fprintf(&b, ", barrier wait %.3fs", w)
	}
	if c.Checkpoints > 0 || c.Crashes > 0 {
		fmt.Fprintf(&b, "; recovery: %d checkpoint(s), %d crash(es), %d rollback(s), %d node(s) migrated",
			c.Checkpoints, c.Crashes, c.Rollbacks, sum(c.MigratedNodes))
	}
	if total := totalFloat(c.CriticalPath); total > 0 {
		w, share := argmaxFloat(c.CriticalPath)
		fmt.Fprintf(&b, "; straggler: worker %d gated %d/%d window(s), %.0f%% critical path",
			w, c.Gated[w], sum(c.Gated), 100*share/total)
	}
	if c.Resizes > 0 || sum(c.Joins)+sum(c.Drains)+sum(c.Kills) > 0 {
		fmt.Fprintf(&b, "; elastic: %d join(s), %d drain(s), %d kill(s), %d resize(s), peak cluster %d engine(s)",
			sum(c.Joins), sum(c.Drains), sum(c.Kills), c.Resizes, c.PeakEngines)
	}
	return b.String()
}

func sum(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

func maxOf(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func argmaxFloat(xs []float64) (int, float64) {
	idx, best := 0, 0.0
	for i, x := range xs {
		if x > best {
			idx, best = i, x
		}
	}
	return idx, best
}

func totalFloat(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}
