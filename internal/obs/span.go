package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Distributed window tracing. A Span is one timed interval of the
// conservative-window protocol — an engine computing a window, a worker
// waiting at the barrier for the window's critical path, wire transfer,
// checkpointing, migration. Workers emit wall-clock spans; the coordinator
// merges them with the deterministic modeled-time spans it derives from the
// window counters into one virtual-time-aligned cluster Timeline, which
// renders as a Chrome trace_event file (Perfetto-loadable) and feeds the
// online straggler-attribution report.
//
// Determinism contract: a span's virtual fields (Kind, Engine, Window,
// Start, End) and its modeled Busy seconds derive purely from the merged
// per-window counters and the cost model, so they are byte-identical across
// in-process, loopback and TCP executions of the same scenario — exactly
// like the result path. Wall is measured wall-clock and Worker reflects the
// deployment shape; both are excluded from the canonical form (mirroring
// dist.ResultJSON's wall-clock exclusions).

// SpanKind classifies a Span.
type SpanKind uint8

const (
	// SpanCompute is one engine executing one window's events.
	SpanCompute SpanKind = iota
	// SpanBarrier is a worker idling at the window barrier for the gating
	// (critical-path) worker to finish.
	SpanBarrier
	// SpanWireSend is a worker encoding and sending its window report.
	SpanWireSend
	// SpanWireRecv is a worker decoding and injecting barrier events.
	SpanWireRecv
	// SpanCheckpoint is a worker snapshotting at a checkpoint barrier.
	SpanCheckpoint
	// SpanMigrate is a worker reseating state at a membership barrier.
	SpanMigrate
)

var spanKindNames = [...]string{
	SpanCompute:    "compute",
	SpanBarrier:    "barrier-wait",
	SpanWireSend:   "wire-send",
	SpanWireRecv:   "wire-recv",
	SpanCheckpoint: "checkpoint",
	SpanMigrate:    "migrate",
}

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return fmt.Sprintf("span(%d)", uint8(k))
}

// Span is one timed interval on the cluster timeline.
type Span struct {
	Kind SpanKind
	// Worker is the worker slot hosting the span (the Perfetto track). The
	// in-process run has no workers, so each engine is its own "worker".
	Worker int
	// Engine is the engine LP, or -1 for worker-level spans.
	Engine int
	// Window is the commit-order window index.
	Window int64
	// Start and End are the window's virtual-time bounds.
	Start, End float64
	// Busy is the modeled busy time in seconds (cost model × counters,
	// straggler factors included) — deterministic. Zero for wall-only kinds.
	Busy float64
	// Wall is measured wall-clock seconds — diagnostic, nondeterministic,
	// zero when unmeasured (e.g. in-process compute spans).
	Wall float64
}

// WorkerHealth is one worker's straggler-attribution summary.
type WorkerHealth struct {
	// Worker is the worker slot (or engine, in-process).
	Worker int
	// GatedWindows counts windows this worker's engines gated (held the
	// window critical path).
	GatedWindows int64
	// CriticalPath is the modeled seconds of critical path attributed to
	// this worker.
	CriticalPath float64
	// Share is CriticalPath over the run's total critical path (0..1).
	Share float64
}

// WindowStat is one committed window's attribution record.
type WindowStat struct {
	// Window is the commit-order index.
	Window int64
	// Worker gated the window (held its critical path); -1 when the window
	// had no active engine.
	Worker int
	// Busy is the gating worker's modeled busy seconds.
	Busy float64
	// Lag is the gap between the gating worker and the next-slowest worker's
	// modeled busy seconds (0 with fewer than two active workers).
	Lag float64
}

// Timeline is the merged cluster trace: deterministic modeled spans committed
// window by window by the observation plane, wall-clock spans merged in from
// worker SPANS frames, and the online straggler attribution both feed.
// Methods lock internally — the coordinator commits while a debug endpoint
// reads.
type Timeline struct {
	mu      sync.Mutex
	assign  map[int]int // engine -> worker; engines absent map to themselves
	spans   []Span
	windows int64

	// pendWall holds worker-measured compute wall times awaiting the next
	// CommitWindow, keyed by engine; other wall spans append directly.
	pendWall map[int]float64

	gated     map[int]int64
	crit      map[int]float64
	critTotal float64
	stats     []WindowStat // drained by DrainWindowStats

	// Per-commit scratch, reused so a window costs no allocations beyond the
	// amortized span append: busy[w] holds worker w's max engine busy for the
	// commit stamped in mark[w] (stamps start at 1, so zeroed slots are never
	// current), touched lists the workers active this commit.
	busy    []float64
	mark    []int64
	touched []int
}

// NewTimeline returns an empty cluster timeline.
func NewTimeline() *Timeline {
	return &Timeline{
		assign:   make(map[int]int),
		pendWall: make(map[int]float64),
		gated:    make(map[int]int64),
		crit:     make(map[int]float64),
	}
}

// Reset discards all spans, attribution and assignments — the recovery
// fallback replays a partial distributed run from time zero in-process, and
// the replay's timeline must not double-count the windows committed before
// the loss. Capacity is retained, so a reused timeline commits windows
// without re-paying the append growth.
func (t *Timeline) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	clear(t.assign)
	t.spans = t.spans[:0]
	t.windows = 0
	clear(t.pendWall)
	clear(t.gated)
	clear(t.crit)
	t.critTotal = 0
	t.stats = t.stats[:0]
	// Stamps restart at 1 after a reset; stale marks from the previous run
	// would collide with them.
	for i := range t.mark {
		t.mark[i] = 0
	}
}

// Reserve pre-sizes the span store for an expected total span count, so a
// caller that can bound the run's window count (duration over window width
// times engines) avoids the append-doubling copies on the commit path. Purely
// an optimization; under-estimates just fall back to growth.
func (t *Timeline) Reserve(nspans int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if nspans > cap(t.spans) {
		spans := make([]Span, len(t.spans), nspans)
		copy(spans, t.spans)
		t.spans = spans
	}
}

// Assign maps engines onto a worker slot for attribution and track layout.
// Unassigned engines are their own worker (the in-process shape).
func (t *Timeline) Assign(engines []int, worker int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range engines {
		t.assign[e] = worker
	}
}

func (t *Timeline) workerOf(engine int) int {
	if len(t.assign) == 0 { // in-process shape: skip the hash on the hot path
		return engine
	}
	if w, ok := t.assign[engine]; ok {
		return w
	}
	return engine
}

// AddWall merges worker-measured wall-clock spans. Compute spans are held
// and folded into the matching engine's span at the next CommitWindow; all
// other kinds append to the timeline directly (their virtual anchor is the
// window the worker measured them in).
func (t *Timeline) AddWall(spans []Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range spans {
		if s.Kind == SpanCompute {
			t.pendWall[s.Engine] = s.Wall
			continue
		}
		t.spans = append(t.spans, s)
	}
}

// CommitWindow appends one window's deterministic compute spans (Engine,
// Start, End and modeled Busy filled by the caller; Worker and Window are
// stamped here), folds in any pending wall measurements, derives the
// barrier-wait spans, and updates the straggler attribution. Spans must be
// in ascending engine order — the canonical order.
func (t *Timeline) CommitWindow(start, end float64, spans []Span) WindowStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := t.windows
	t.windows++
	stamp := t.windows // idx+1: never the zero value of a fresh mark slot

	// Per-worker busy is the max over its engines: engines on one worker
	// step concurrently, and the barrier is gated by the slowest. The batch
	// is appended in one grow, then stamped in place.
	touched := t.touched[:0]
	base := len(t.spans)
	t.spans = append(t.spans, spans...)
	for i := base; i < len(t.spans); i++ {
		s := &t.spans[i]
		s.Window = idx
		w := t.workerOf(s.Engine)
		s.Worker = w
		if len(t.pendWall) > 0 {
			if wall, ok := t.pendWall[s.Engine]; ok {
				s.Wall = wall
				delete(t.pendWall, s.Engine)
			}
		}
		if w >= len(t.busy) {
			busy := make([]float64, w+1)
			copy(busy, t.busy)
			t.busy = busy
			mark := make([]int64, w+1)
			copy(mark, t.mark)
			t.mark = mark
		}
		if t.mark[w] != stamp {
			t.mark[w] = stamp
			t.busy[w] = s.Busy
			touched = append(touched, w)
		} else if s.Busy > t.busy[w] {
			t.busy[w] = s.Busy
		}
	}
	t.touched = touched
	if len(t.pendWall) > 0 {
		// Any pending wall measurement without a matching span belongs to an
		// engine idle this window; drop it rather than mis-attributing later.
		for e := range t.pendWall {
			delete(t.pendWall, e)
		}
	}

	st := WindowStat{Window: idx, Worker: -1}
	if len(touched) > 0 {
		if len(touched) > 1 {
			sort.Ints(touched) // near-sorted already: spans arrive engine-ascending
		}
		critBusy, runnerUp := 0.0, 0.0
		for _, w := range touched {
			b := t.busy[w]
			if st.Worker < 0 || b > critBusy {
				if st.Worker >= 0 && critBusy > runnerUp {
					runnerUp = critBusy
				}
				st.Worker, critBusy = w, b
			} else if b > runnerUp {
				runnerUp = b
			}
		}
		st.Busy = critBusy
		if len(touched) > 1 {
			st.Lag = critBusy - runnerUp
		}
		for _, w := range touched {
			if w == st.Worker {
				continue
			}
			t.spans = append(t.spans, Span{
				Kind: SpanBarrier, Worker: w, Engine: -1, Window: idx,
				Start: start, End: end, Busy: critBusy - t.busy[w],
			})
		}
		t.gated[st.Worker]++
		t.crit[st.Worker] += critBusy
		t.critTotal += critBusy
	}
	t.stats = append(t.stats, st)
	return st
}

// Windows returns the number of committed windows.
func (t *Timeline) Windows() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.windows
}

// Spans returns a copy of the merged timeline.
func (t *Timeline) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Health returns the per-worker straggler attribution, sorted by worker.
func (t *Timeline) Health() []WorkerHealth {
	t.mu.Lock()
	defer t.mu.Unlock()
	workers := make([]int, 0, len(t.gated))
	for w := range t.gated {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	out := make([]WorkerHealth, len(workers))
	for i, w := range workers {
		h := WorkerHealth{Worker: w, GatedWindows: t.gated[w], CriticalPath: t.crit[w]}
		if t.critTotal > 0 {
			h.Share = t.crit[w] / t.critTotal
		}
		out[i] = h
	}
	return out
}

// DrainWindowStats returns the window attributions accumulated since the
// last drain — the coordinator's feed for the live health gauges.
func (t *Timeline) DrainWindowStats() []WindowStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.stats
	t.stats = nil
	return out
}

// CanonicalJSON renders the deterministic projection of the timeline: the
// compute spans' virtual-time and modeled fields only, in commit order. The
// worker track, barrier-wait derivation and every wall-clock measurement are
// excluded — they reflect the deployment shape, not the simulation — so the
// bytes are identical across in-process, loopback and TCP executions,
// mirroring dist.ResultJSON.
func (t *Timeline) CanonicalJSON() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b []byte
	for _, s := range t.spans {
		if s.Kind != SpanCompute {
			continue
		}
		b = append(b, `{"window":`...)
		b = strconv.AppendInt(b, s.Window, 10)
		b = append(b, `,"engine":`...)
		b = strconv.AppendInt(b, int64(s.Engine), 10)
		b = append(b, `,"start":`...)
		b = strconv.AppendFloat(b, s.Start, 'g', -1, 64)
		b = append(b, `,"end":`...)
		b = strconv.AppendFloat(b, s.End, 'g', -1, 64)
		b = append(b, `,"busy":`...)
		b = strconv.AppendFloat(b, s.Busy, 'g', -1, 64)
		b = append(b, "}\n"...)
	}
	return b
}

// WriteTraceEvents renders the timeline as Chrome trace_event JSON — load
// the file in Perfetto (ui.perfetto.dev) or chrome://tracing. One process
// per worker, one thread per engine (tid 0 carries worker-level spans). The
// time axis is virtual microseconds; compute and barrier-wait durations are
// modeled busy seconds, wire/checkpoint/migrate durations are measured wall
// seconds, and each event's args carry the window index and wall time.
func (t *Timeline) WriteTraceEvents(w io.Writer) error {
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()

	var b []byte
	b = append(b, `{"displayTimeUnit":"ms","traceEvents":[`...)
	first := true
	emit := func(line []byte) {
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, line...)
	}

	// Metadata: name each worker track and engine thread, sorted for
	// deterministic output.
	type track struct{ worker, engine int }
	seen := map[track]bool{}
	var tracks []track
	for _, s := range spans {
		tr := track{s.Worker, s.Engine}
		if !seen[tr] {
			seen[tr] = true
			tracks = append(tracks, tr)
		}
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].worker != tracks[j].worker {
			return tracks[i].worker < tracks[j].worker
		}
		return tracks[i].engine < tracks[j].engine
	})
	var line []byte
	lastWorker := -1
	for _, tr := range tracks {
		if tr.worker != lastWorker {
			lastWorker = tr.worker
			line = line[:0]
			line = append(line, `{"ph":"M","name":"process_name","pid":`...)
			line = strconv.AppendInt(line, int64(tr.worker), 10)
			line = append(line, `,"args":{"name":"worker `...)
			line = strconv.AppendInt(line, int64(tr.worker), 10)
			line = append(line, `"}}`...)
			emit(line)
		}
		line = line[:0]
		line = append(line, `{"ph":"M","name":"thread_name","pid":`...)
		line = strconv.AppendInt(line, int64(tr.worker), 10)
		line = append(line, `,"tid":`...)
		line = strconv.AppendInt(line, int64(tr.engine+1), 10)
		line = append(line, `,"args":{"name":"`...)
		if tr.engine < 0 {
			line = append(line, `worker`...)
		} else {
			line = append(line, `engine `...)
			line = strconv.AppendInt(line, int64(tr.engine), 10)
		}
		line = append(line, `"}}`...)
		emit(line)
	}

	const usec = 1e6
	for _, s := range spans {
		ts, dur := s.Start*usec, s.Busy*usec
		switch s.Kind {
		case SpanWireSend, SpanWireRecv, SpanCheckpoint, SpanMigrate:
			dur = s.Wall * usec
		}
		line = line[:0]
		line = append(line, `{"ph":"X","cat":"massf","name":"`...)
		line = append(line, s.Kind.String()...)
		line = append(line, `","pid":`...)
		line = strconv.AppendInt(line, int64(s.Worker), 10)
		line = append(line, `,"tid":`...)
		line = strconv.AppendInt(line, int64(s.Engine+1), 10)
		line = append(line, `,"ts":`...)
		line = appendTraceFloat(line, ts)
		line = append(line, `,"dur":`...)
		line = appendTraceFloat(line, dur)
		line = append(line, `,"args":{"window":`...)
		line = strconv.AppendInt(line, s.Window, 10)
		line = append(line, `,"wall_ms":`...)
		line = appendTraceFloat(line, s.Wall*1e3)
		line = append(line, `}}`...)
		emit(line)
	}
	b = append(b, `]}`...)
	_, err := w.Write(b)
	return err
}

// appendTraceFloat formats trace_event numbers: shortest round-trip form,
// never exponent notation with a bare leading dot (JSON-safe as 'g' output
// from AppendFloat already is).
func appendTraceFloat(b []byte, f float64) []byte {
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}
