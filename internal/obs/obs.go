// Package obs is the kernel-level observability layer: a recorder interface
// the DES kernel and the emulator call on every synchronization window and on
// every lifecycle event (checkpoint, crash, rollback, migration), plus the
// standard recorders — a deterministic JSONL tracer, an aggregating RunStats
// collector, and a pprof/expvar debug endpoint.
//
// The paper's own PROFILE approach is built on observing real load (§3.3,
// §4); this package generalizes that observation seam: the same per-LP
// per-window counters that explain where a run spends its time are the load
// signal a dynamic-balancing policy consumes.
//
// Design constraints:
//
//   - Zero cost when disabled. A nil Recorder must add no allocations and no
//     measurable work to the emulation hot path; all instrumentation sites
//     guard on the nil interface.
//   - Deterministic traces. Identical scenarios must produce byte-identical
//     JSONL traces, so every field a Trace serializes derives from virtual
//     time and event counts only. Wall-clock quantities (barrier wait) are
//     delivered to recorders but excluded from traces; they surface in the
//     aggregated RunStats instead.
//   - Single-goroutine delivery. The kernel invokes recorders only on the
//     coordinating goroutine at window barriers, so simple recorders need no
//     locking. RunStats locks anyway because the debug endpoint reads it
//     concurrently with a live run.
package obs

// RunMeta describes a kernel run segment, delivered once at the start of
// every Kernel.Run — including resumed segments after a checkpoint restore,
// which carry Resumed=true (a trace therefore shows crash recovery as a new
// run line mid-stream).
type RunMeta struct {
	// LPs is the number of logical processes (simulation-engine nodes).
	LPs int
	// Lookahead is the synchronization window width in virtual seconds.
	Lookahead float64
	// Resumed is true when the segment continues from a restored checkpoint.
	Resumed bool
}

// Window carries one executed window's per-LP counters, delivered after the
// barrier on the coordinating goroutine. The slices are owned by the kernel
// and reused between calls — recorders must copy what they retain.
type Window struct {
	// Index is the cumulative window number (continues across checkpoint
	// restores, so replayed windows repeat indices — deliberately: a trace
	// shows exactly which windows were re-executed).
	Index int64
	// Start and End bound the window in virtual time.
	Start, End float64
	// Events[lp] is the number of handler invocations on LP lp.
	Events []int64
	// Charges[lp] is the kernel-event (packet) load accrued on LP lp.
	Charges []int64
	// Remote[lp] counts cross-LP event messages LP lp sent this window —
	// the kernel's channel-message (null-message analogue) traffic.
	Remote []int64
	// Queue[lp] is LP lp's pending-event queue length after the barrier
	// merge — the channel occupancy entering the next window.
	Queue []int64
	// Wait[lp] is the wall-clock time in seconds LP lp spent idle at the
	// barrier waiting for the slowest LP (zero in sequential mode).
	// Nondeterministic: recorders producing reproducible artifacts must
	// ignore it.
	Wait []float64
}

// EventKind classifies lifecycle events.
type EventKind uint8

// Lifecycle event kinds emitted by the emulator's resilience layer.
const (
	// EventCheckpoint marks a barrier checkpoint. Time is the barrier.
	EventCheckpoint EventKind = iota
	// EventCrash marks a detected engine failure. LP is the dead engine,
	// Time the detection barrier, Value the virtual fail-stop time.
	EventCrash
	// EventRollback marks a recovery rollback. LP is the dead engine, Time
	// the checkpoint rolled back to, Value the number of windows discarded
	// (to be re-executed).
	EventRollback
	// EventMigration reports recovery migrations onto one engine. LP is the
	// destination engine, Time the checkpoint, Value the node count.
	EventMigration
	// EventResize marks an applied elastic membership change. Time is the
	// barrier it was applied at, LP is -1, Value the new engine-set size.
	EventResize
	// EventJoin marks a worker joining a distributed run. LP is the first
	// engine the joiner activates, Time the barrier it was admitted at.
	EventJoin
	// EventDrain marks a worker leaving a distributed run gracefully. LP is
	// the first engine the leaver deactivates, Time the hand-off barrier.
	EventDrain
	// EventHeartbeatMiss marks a liveness probe going unanswered. LP is the
	// silent worker's first engine, Value the consecutive miss count.
	EventHeartbeatMiss
)

var eventKindNames = [...]string{"checkpoint", "crash", "rollback", "migration",
	"resize", "join", "drain", "heartbeat-miss"}

// String names the kind as it appears in traces.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one discrete lifecycle record.
type Event struct {
	Kind EventKind
	// Time is the virtual time of the event.
	Time float64
	// LP is the engine concerned, -1 when not engine-specific.
	LP int
	// Value is kind-specific (see the EventKind constants).
	Value float64
}

// Recorder receives observability callbacks. Implementations are invoked on
// a single goroutine per run; Window slices are reused between calls.
type Recorder interface {
	// RecordRun announces a kernel run segment.
	RecordRun(m RunMeta)
	// RecordWindow delivers one executed window's counters.
	RecordWindow(w Window)
	// RecordEvent delivers one lifecycle event.
	RecordEvent(e Event)
}

// multi fans callbacks out to several recorders in order.
type multi []Recorder

func (m multi) RecordRun(meta RunMeta) {
	for _, r := range m {
		r.RecordRun(meta)
	}
}

func (m multi) RecordWindow(w Window) {
	for _, r := range m {
		r.RecordWindow(w)
	}
}

func (m multi) RecordEvent(e Event) {
	for _, r := range m {
		r.RecordEvent(e)
	}
}

// Multi combines recorders, skipping nils. It returns nil when none remain
// (so a fully-disabled chain keeps the zero-cost nil fast path), and the
// recorder itself when exactly one remains.
func Multi(rs ...Recorder) Recorder {
	var kept multi
	for _, r := range rs {
		if r != nil {
			kept = append(kept, r)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}
