package obs

import (
	"bufio"
	"io"
	"strconv"
)

// Trace writes a deterministic JSONL trace: one line per kernel run segment,
// executed window, and lifecycle event. Only virtual-time and counter fields
// are serialized — never wall-clock quantities — so two runs of the same
// scenario produce byte-identical traces even under the parallel kernel.
//
// Line schema (fields always present, in this order):
//
//	{"type":"run","lps":3,"lookahead":0.0001,"resumed":false}
//	{"type":"window","i":12,"start":1.2,"end":1.3,"events":[..],"charges":[..],"remote":[..],"queue":[..]}
//	{"type":"event","kind":"checkpoint","t":10,"lp":-1,"value":0}
//
// Trace buffers internally; call Flush (or Close) before reading the
// underlying writer, and check Err for deferred write errors.
type Trace struct {
	w   *bufio.Writer
	c   io.Closer // non-nil when the sink should be closed with the trace
	buf []byte
	err error
}

// NewTrace returns a Trace writing JSONL to w.
func NewTrace(w io.Writer) *Trace {
	return &Trace{w: bufio.NewWriter(w), buf: make([]byte, 0, 256)}
}

// NewTraceCloser is NewTrace for sinks the trace owns (e.g. an os.File):
// Close closes the sink after flushing.
func NewTraceCloser(w io.WriteCloser) *Trace {
	t := NewTrace(w)
	t.c = w
	return t
}

// RecordRun implements Recorder.
func (t *Trace) RecordRun(m RunMeta) {
	b := t.buf[:0]
	b = append(b, `{"type":"run","lps":`...)
	b = strconv.AppendInt(b, int64(m.LPs), 10)
	b = append(b, `,"lookahead":`...)
	b = appendFloat(b, m.Lookahead)
	b = append(b, `,"resumed":`...)
	b = strconv.AppendBool(b, m.Resumed)
	t.line(append(b, '}'))
}

// RecordWindow implements Recorder. The wall-clock Wait field is
// deliberately not serialized (nondeterministic).
func (t *Trace) RecordWindow(w Window) {
	b := t.buf[:0]
	b = append(b, `{"type":"window","i":`...)
	b = strconv.AppendInt(b, w.Index, 10)
	b = append(b, `,"start":`...)
	b = appendFloat(b, w.Start)
	b = append(b, `,"end":`...)
	b = appendFloat(b, w.End)
	b = appendInts(append(b, `,"events":`...), w.Events)
	b = appendInts(append(b, `,"charges":`...), w.Charges)
	b = appendInts(append(b, `,"remote":`...), w.Remote)
	b = appendInts(append(b, `,"queue":`...), w.Queue)
	t.line(append(b, '}'))
}

// RecordEvent implements Recorder.
func (t *Trace) RecordEvent(e Event) {
	b := t.buf[:0]
	b = append(b, `{"type":"event","kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","t":`...)
	b = appendFloat(b, e.Time)
	b = append(b, `,"lp":`...)
	b = strconv.AppendInt(b, int64(e.LP), 10)
	b = append(b, `,"value":`...)
	b = appendFloat(b, e.Value)
	t.line(append(b, '}'))
}

func (t *Trace) line(b []byte) {
	t.buf = b[:0] // keep the (possibly grown) buffer for reuse
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(append(b, '\n')); err != nil {
		t.err = err
	}
}

// Flush empties the internal buffer into the underlying writer.
func (t *Trace) Flush() error {
	if t.err != nil {
		return t.err
	}
	t.err = t.w.Flush()
	return t.err
}

// Close flushes and, when the trace owns its sink, closes it.
func (t *Trace) Close() error {
	err := t.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Err reports the first write error, if any.
func (t *Trace) Err() error { return t.err }

// appendFloat formats a float64 with the shortest round-trip representation
// — stable across runs and platforms for identical values.
func appendFloat(b []byte, f float64) []byte {
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

func appendInts(b []byte, xs []int64) []byte {
	b = append(b, '[')
	for i, x := range xs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, x, 10)
	}
	return append(b, ']')
}
