// Package traffic defines the workload representation shared by the
// background traffic generators and the foreground application models: a
// deterministic, timestamped list of flows injected into the virtual network.
//
// The paper's experiments combine an HTTP-style background load (its §4.1.4
// table: request_size, think time, clients per server, server number) with
// live foreground applications; both reduce to Flow lists here because MaSSF
// itself only ever processes packet references, not payload (§3.3).
package traffic

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/netgraph"
)

// Flow is one end-to-end transfer between two hosts.
type Flow struct {
	// ID is unique within a Workload.
	ID int
	// Src and Dst are host node IDs in the virtual network.
	Src, Dst int
	// Start is the injection time in virtual seconds.
	Start float64
	// Bytes is the transfer size.
	Bytes int64
	// Tag labels the flow's origin for NetFlow accounting and debugging,
	// e.g. "http", "scalapack", "gridnpb/HC.BT-0".
	Tag string
}

// Workload is a set of flows plus bookkeeping about where the foreground
// application attaches (its injection points, which the PLACE approach uses).
type Workload struct {
	Flows []Flow
	// AppHosts are the application's injection points (host node IDs); empty
	// for pure background workloads.
	AppHosts []int
	// Duration is the nominal virtual duration of the workload in seconds.
	Duration float64
}

// Merge combines workloads into one, renumbering flow IDs and keeping the
// union of app hosts and the max duration.
func Merge(ws ...Workload) Workload {
	var out Workload
	seen := make(map[int]bool)
	for _, w := range ws {
		for _, f := range w.Flows {
			f.ID = len(out.Flows)
			out.Flows = append(out.Flows, f)
		}
		for _, h := range w.AppHosts {
			if !seen[h] {
				seen[h] = true
				out.AppHosts = append(out.AppHosts, h)
			}
		}
		if w.Duration > out.Duration {
			out.Duration = w.Duration
		}
	}
	sort.Ints(out.AppHosts)
	return out
}

// SortByStart orders flows by start time (stable on ID), the order the
// emulator injects them.
func (w *Workload) SortByStart() {
	sort.SliceStable(w.Flows, func(i, j int) bool {
		if w.Flows[i].Start != w.Flows[j].Start {
			return w.Flows[i].Start < w.Flows[j].Start
		}
		return w.Flows[i].ID < w.Flows[j].ID
	})
}

// TotalBytes sums all flow sizes.
func (w *Workload) TotalBytes() int64 {
	var t int64
	for _, f := range w.Flows {
		t += f.Bytes
	}
	return t
}

// Validate checks flows reference host nodes of nw, sizes are positive, and
// start times are within [0, Duration] (with slack for flows that finish
// after the nominal end).
func (w *Workload) Validate(nw *netgraph.Network) error {
	for _, f := range w.Flows {
		for _, ep := range []int{f.Src, f.Dst} {
			if ep < 0 || ep >= nw.NumNodes() {
				return fmt.Errorf("traffic: flow %d endpoint %d out of range", f.ID, ep)
			}
			if nw.Nodes[ep].Kind != netgraph.Host {
				return fmt.Errorf("traffic: flow %d endpoint %d is not a host", f.ID, ep)
			}
		}
		if f.Src == f.Dst {
			return fmt.Errorf("traffic: flow %d has identical endpoints", f.ID)
		}
		if f.Bytes <= 0 {
			return fmt.Errorf("traffic: flow %d has non-positive size", f.ID)
		}
		if f.Start < 0 {
			return fmt.Errorf("traffic: flow %d starts at negative time", f.ID)
		}
	}
	return nil
}

// Background is a background traffic condition: it generates the actual
// workload and predicts its own average pair rates — the "gross
// characterization" the PLACE approach consumes (§3.2: "it is reasonable
// that all traffic generators can provide some prediction of their generated
// traffic load"). HTTPSpec, CBRSpec and OnOffSpec implement it.
type Background interface {
	Generate(nw *netgraph.Network) Workload
	Predict(nw *netgraph.Network) []PairRate
}

// PairRate is a predicted average traffic rate between two endpoints, the
// unit of PLACE's traffic estimation.
type PairRate struct {
	Src, Dst int
	// BytesPerSecond is the predicted average rate.
	BytesPerSecond float64
}

// HTTPSpec is the paper's background-traffic description (§4.1.4):
//
//	Traffic name        HTTP
//	request_size        200KByte
//	think time          12
//	client per server   10
//	server number       107
//
// Servers and clients are chosen randomly from the virtual network's hosts.
// Each client repeatedly requests RequestBytes from its server and then
// thinks for an exponentially distributed time with the given mean.
type HTTPSpec struct {
	Name string
	// RequestBytes is the response size per request (paper: 200 KB).
	RequestBytes int64
	// ThinkTime is the mean think time between a client's requests, seconds
	// (paper: 12).
	ThinkTime float64
	// ClientsPerServer (paper: 10).
	ClientsPerServer int
	// Servers is the number of server hosts (paper: 107). Capped at the
	// host count of the network.
	Servers int
	// Duration is how long clients keep requesting, virtual seconds.
	Duration float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultHTTP returns the paper's background traffic table scaled to a
// network: server count is min(servers, hosts/2) so clients remain distinct
// from servers where possible.
func DefaultHTTP(duration float64, seed int64) HTTPSpec {
	return HTTPSpec{
		Name:             "HTTP",
		RequestBytes:     200 << 10,
		ThinkTime:        12,
		ClientsPerServer: 10,
		Servers:          107,
		Duration:         duration,
		Seed:             seed,
	}
}

// pairing fixes which hosts serve and which clients talk to which server.
// It is deterministic for a spec and network, and shared by Generate (actual
// flows) and Predict (PLACE's estimate), so the prediction models the same
// endpoints the generator drives.
type pairing struct {
	server []int // server host IDs
	client [][]int
}

func (s HTTPSpec) pairs(nw *netgraph.Network) pairing {
	rng := rand.New(rand.NewSource(s.Seed))
	hosts := nw.Hosts()
	nServers := s.Servers
	if nServers > len(hosts)/2 {
		nServers = len(hosts) / 2
	}
	if nServers < 1 {
		nServers = 1
	}
	perm := rng.Perm(len(hosts))
	var p pairing
	p.server = make([]int, nServers)
	for i := 0; i < nServers; i++ {
		p.server[i] = hosts[perm[i]]
	}
	// Clients drawn from the remaining hosts (with reuse when scarce).
	rest := perm[nServers:]
	if len(rest) == 0 {
		rest = perm
	}
	p.client = make([][]int, nServers)
	for i := 0; i < nServers; i++ {
		cs := make([]int, s.ClientsPerServer)
		for j := range cs {
			cs[j] = hosts[rest[rng.Intn(len(rest))]]
			// A client must differ from its server.
			for cs[j] == p.server[i] {
				cs[j] = hosts[rest[rng.Intn(len(rest))]]
			}
		}
		p.client[i] = cs
	}
	return p
}

// Generate materializes the background workload: every client issues
// requests separated by exponential think times until Duration.
func (s HTTPSpec) Generate(nw *netgraph.Network) Workload {
	p := s.pairs(nw)
	rng := rand.New(rand.NewSource(s.Seed + 1))
	var w Workload
	w.Duration = s.Duration
	for si, srv := range p.server {
		for _, cl := range p.client[si] {
			// Stagger session starts uniformly over one think period.
			t := rng.Float64() * s.ThinkTime
			for t < s.Duration {
				w.Flows = append(w.Flows, Flow{
					ID:    len(w.Flows),
					Src:   srv, // response dominates: server -> client
					Dst:   cl,
					Start: t,
					Bytes: s.RequestBytes,
					Tag:   "http",
				})
				t += rng.ExpFloat64() * s.ThinkTime
			}
		}
	}
	w.SortByStart()
	for i := range w.Flows {
		w.Flows[i].ID = i
	}
	return w
}

// Predict returns the generator's own average-rate prediction per
// client-server pair — the "gross characterization" PLACE consumes (§3.2):
// each pair averages RequestBytes every ThinkTime seconds.
func (s HTTPSpec) Predict(nw *netgraph.Network) []PairRate {
	p := s.pairs(nw)
	rate := float64(s.RequestBytes) / s.ThinkTime
	var out []PairRate
	for si, srv := range p.server {
		for _, cl := range p.client[si] {
			out = append(out, PairRate{Src: srv, Dst: cl, BytesPerSecond: rate})
		}
	}
	return out
}
