package traffic

import (
	"math/rand"

	"repro/internal/netgraph"
)

// CBRSpec describes constant-bit-rate background flows — the second kind of
// background generator BRITE-style tooling provides (§4.1.3 adapts BRITE's
// background traffic support). A fixed set of endpoint pairs each sustains
// Rate bytes/s, shipped as one flow per Period.
//
// CBR traffic is the easiest case for the PLACE approach: its prediction is
// exact by construction.
type CBRSpec struct {
	Name string
	// Pairs is the number of endpoint pairs (chosen randomly from hosts).
	Pairs int
	// RateBytesPerSecond is each pair's sustained rate.
	RateBytesPerSecond float64
	// Period is the spacing between a pair's consecutive flows (seconds).
	Period float64
	// Duration of generation in virtual seconds.
	Duration float64
	// Seed fixes the endpoint choice and phase jitter.
	Seed int64
}

// DefaultCBR returns a moderate CBR condition: 50 pairs at 250 KB/s.
func DefaultCBR(duration float64, seed int64) CBRSpec {
	return CBRSpec{
		Name:               "CBR",
		Pairs:              50,
		RateBytesPerSecond: 250 << 10,
		Period:             1,
		Duration:           duration,
		Seed:               seed,
	}
}

// pairsOf fixes the endpoint pairs deterministically (shared by Generate and
// Predict, like HTTPSpec).
func (s CBRSpec) pairsOf(nw *netgraph.Network) [][2]int {
	rng := rand.New(rand.NewSource(s.Seed))
	hosts := nw.Hosts()
	if len(hosts) < 2 {
		return nil
	}
	out := make([][2]int, 0, s.Pairs)
	for i := 0; i < s.Pairs; i++ {
		a := hosts[rng.Intn(len(hosts))]
		b := hosts[rng.Intn(len(hosts))]
		for b == a {
			b = hosts[rng.Intn(len(hosts))]
		}
		out = append(out, [2]int{a, b})
	}
	return out
}

// Generate materializes the CBR workload: each pair sends
// Rate·Period bytes every Period, with a random phase per pair.
func (s CBRSpec) Generate(nw *netgraph.Network) Workload {
	period := s.Period
	if period <= 0 {
		period = 1
	}
	bytes := int64(s.RateBytesPerSecond * period)
	if bytes <= 0 {
		return Workload{Duration: s.Duration}
	}
	rng := rand.New(rand.NewSource(s.Seed + 1))
	var w Workload
	w.Duration = s.Duration
	for _, p := range s.pairsOf(nw) {
		t := rng.Float64() * period
		for t < s.Duration {
			w.Flows = append(w.Flows, Flow{
				ID: len(w.Flows), Src: p[0], Dst: p[1],
				Start: t, Bytes: bytes, Tag: "cbr",
			})
			t += period
		}
	}
	w.SortByStart()
	for i := range w.Flows {
		w.Flows[i].ID = i
	}
	return w
}

// Predict returns the exact average rates (CBR prediction is trivially
// perfect — the property that makes it a useful PLACE calibration case).
func (s CBRSpec) Predict(nw *netgraph.Network) []PairRate {
	var out []PairRate
	for _, p := range s.pairsOf(nw) {
		out = append(out, PairRate{Src: p[0], Dst: p[1], BytesPerSecond: s.RateBytesPerSecond})
	}
	return out
}

// OnOffSpec describes exponential on/off burst sources: each pair
// alternates between an active burst (mean BurstBytes shipped at once) and
// an idle gap with mean GapSeconds — bursty, hard-to-predict background, at
// the opposite end of the predictability spectrum from CBR.
type OnOffSpec struct {
	Name string
	// Pairs of endpoints.
	Pairs int
	// BurstBytes is the mean burst size.
	BurstBytes float64
	// GapSeconds is the mean idle gap between bursts.
	GapSeconds float64
	// Duration in virtual seconds.
	Duration float64
	// Seed fixes endpoints and the burst process.
	Seed int64
}

// DefaultOnOff returns a bursty condition: 30 pairs, 2 MB mean bursts, 8 s
// mean gaps.
func DefaultOnOff(duration float64, seed int64) OnOffSpec {
	return OnOffSpec{
		Name:       "OnOff",
		Pairs:      30,
		BurstBytes: 2 << 20,
		GapSeconds: 8,
		Duration:   duration,
		Seed:       seed,
	}
}

func (s OnOffSpec) pairsOf(nw *netgraph.Network) [][2]int {
	return CBRSpec{Pairs: s.Pairs, Seed: s.Seed}.pairsOf(nw)
}

// Generate materializes the on/off workload.
func (s OnOffSpec) Generate(nw *netgraph.Network) Workload {
	rng := rand.New(rand.NewSource(s.Seed + 1))
	var w Workload
	w.Duration = s.Duration
	for _, p := range s.pairsOf(nw) {
		t := rng.ExpFloat64() * s.GapSeconds
		for t < s.Duration {
			bytes := int64(rng.ExpFloat64() * s.BurstBytes)
			if bytes > 0 {
				w.Flows = append(w.Flows, Flow{
					ID: len(w.Flows), Src: p[0], Dst: p[1],
					Start: t, Bytes: bytes, Tag: "onoff",
				})
			}
			t += rng.ExpFloat64() * s.GapSeconds
		}
	}
	w.SortByStart()
	for i := range w.Flows {
		w.Flows[i].ID = i
	}
	return w
}

// Predict returns the average-rate model: BurstBytes every GapSeconds per
// pair. For genuinely bursty traffic the average hides the variance — the
// same limitation PLACE has with irregular applications.
func (s OnOffSpec) Predict(nw *netgraph.Network) []PairRate {
	rate := s.BurstBytes / s.GapSeconds
	var out []PairRate
	for _, p := range s.pairsOf(nw) {
		out = append(out, PairRate{Src: p[0], Dst: p[1], BytesPerSecond: rate})
	}
	return out
}
