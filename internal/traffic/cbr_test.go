package traffic

import (
	"math"
	"testing"

	"repro/internal/topogen"
)

func TestCBRGenerate(t *testing.T) {
	nw := topogen.Campus()
	spec := DefaultCBR(20, 1)
	w := spec.Generate(nw)
	if err := w.Validate(nw); err != nil {
		t.Fatal(err)
	}
	if len(w.Flows) == 0 {
		t.Fatal("no CBR flows")
	}
	// Every flow carries Rate*Period bytes.
	want := int64(spec.RateBytesPerSecond * spec.Period)
	for _, f := range w.Flows {
		if f.Bytes != want {
			t.Fatalf("flow bytes = %d, want %d", f.Bytes, want)
		}
		if f.Tag != "cbr" {
			t.Fatalf("tag = %q", f.Tag)
		}
	}
	// ~Pairs flows per period.
	perSecond := float64(len(w.Flows)) / spec.Duration
	if perSecond < 0.8*float64(spec.Pairs) || perSecond > 1.2*float64(spec.Pairs) {
		t.Errorf("flow rate %.1f/s, want ~%d/s", perSecond, spec.Pairs)
	}
}

func TestCBRPredictionExact(t *testing.T) {
	// CBR's prediction must match its generated volume almost exactly (the
	// phase jitter trims at most one period per pair).
	nw := topogen.TeraGrid()
	spec := DefaultCBR(30, 2)
	w := spec.Generate(nw)
	var predicted float64
	for _, p := range spec.Predict(nw) {
		predicted += p.BytesPerSecond * spec.Duration
	}
	gen := float64(w.TotalBytes())
	if math.Abs(predicted-gen) > 0.10*gen {
		t.Errorf("CBR predicted %.3g vs generated %.3g", predicted, gen)
	}
}

func TestCBRDeterministic(t *testing.T) {
	nw := topogen.Campus()
	a := DefaultCBR(10, 7).Generate(nw)
	b := DefaultCBR(10, 7).Generate(nw)
	if len(a.Flows) != len(b.Flows) {
		t.Fatal("nondeterministic")
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatal("nondeterministic flows")
		}
	}
}

func TestCBRDegenerate(t *testing.T) {
	nw := topogen.Campus()
	w := CBRSpec{Pairs: 3, RateBytesPerSecond: 0, Period: 1, Duration: 5, Seed: 1}.Generate(nw)
	if len(w.Flows) != 0 {
		t.Error("zero-rate CBR produced flows")
	}
	// Zero period defaults to 1s rather than looping forever.
	w2 := CBRSpec{Pairs: 1, RateBytesPerSecond: 100, Period: 0, Duration: 3, Seed: 1}.Generate(nw)
	if len(w2.Flows) == 0 || len(w2.Flows) > 4 {
		t.Errorf("period default wrong: %d flows", len(w2.Flows))
	}
}

func TestOnOffGenerate(t *testing.T) {
	nw := topogen.Campus()
	spec := DefaultOnOff(60, 3)
	w := spec.Generate(nw)
	if err := w.Validate(nw); err != nil {
		t.Fatal(err)
	}
	if len(w.Flows) == 0 {
		t.Fatal("no on/off flows")
	}
	// Burst sizes vary (exponential), unlike CBR.
	sizes := map[int64]bool{}
	for _, f := range w.Flows {
		sizes[f.Bytes] = true
	}
	if len(sizes) < len(w.Flows)/2 {
		t.Error("burst sizes suspiciously uniform")
	}
}

func TestOnOffBurstier(t *testing.T) {
	// On/off traffic must be burstier than CBR: higher coefficient of
	// variation of per-second volume.
	nw := topogen.Campus()
	cv := func(w Workload) float64 {
		bins := make(map[int]float64)
		for _, f := range w.Flows {
			bins[int(f.Start)] += float64(f.Bytes)
		}
		var xs []float64
		for _, v := range bins {
			xs = append(xs, v)
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		return math.Sqrt(ss/float64(len(xs))) / mean
	}
	cbr := DefaultCBR(60, 5).Generate(nw)
	onoff := DefaultOnOff(60, 5).Generate(nw)
	if cv(onoff) <= cv(cbr) {
		t.Errorf("on/off CV %.2f <= CBR CV %.2f", cv(onoff), cv(cbr))
	}
}

func TestOnOffPredictVolume(t *testing.T) {
	nw := topogen.TeraGrid()
	spec := DefaultOnOff(120, 4)
	w := spec.Generate(nw)
	var predicted float64
	for _, p := range spec.Predict(nw) {
		predicted += p.BytesPerSecond * spec.Duration
	}
	gen := float64(w.TotalBytes())
	// Average-rate prediction is right in expectation, loose per sample.
	if math.Abs(predicted-gen) > 0.5*gen {
		t.Errorf("on/off predicted %.3g vs generated %.3g (> 50%% off)", predicted, gen)
	}
}
