package traffic

import (
	"math"
	"testing"

	"repro/internal/topogen"
)

func TestMerge(t *testing.T) {
	a := Workload{
		Flows:    []Flow{{ID: 0, Src: 1, Dst: 2, Bytes: 10}},
		AppHosts: []int{1, 2},
		Duration: 5,
	}
	b := Workload{
		Flows:    []Flow{{ID: 0, Src: 3, Dst: 4, Bytes: 20}, {ID: 1, Src: 4, Dst: 3, Bytes: 30}},
		AppHosts: []int{2, 3},
		Duration: 9,
	}
	m := Merge(a, b)
	if len(m.Flows) != 3 {
		t.Fatalf("merged flows = %d, want 3", len(m.Flows))
	}
	for i, f := range m.Flows {
		if f.ID != i {
			t.Errorf("flow %d has ID %d (not renumbered)", i, f.ID)
		}
	}
	if m.Duration != 9 {
		t.Errorf("duration = %v, want 9", m.Duration)
	}
	if len(m.AppHosts) != 3 {
		t.Errorf("AppHosts = %v, want 3 unique", m.AppHosts)
	}
}

func TestSortByStart(t *testing.T) {
	w := Workload{Flows: []Flow{
		{ID: 0, Start: 5},
		{ID: 1, Start: 1},
		{ID: 2, Start: 3},
	}}
	w.SortByStart()
	if w.Flows[0].Start != 1 || w.Flows[1].Start != 3 || w.Flows[2].Start != 5 {
		t.Errorf("not sorted: %+v", w.Flows)
	}
}

func TestTotalBytes(t *testing.T) {
	w := Workload{Flows: []Flow{{Bytes: 10}, {Bytes: 32}}}
	if w.TotalBytes() != 42 {
		t.Errorf("TotalBytes = %d, want 42", w.TotalBytes())
	}
}

func TestValidate(t *testing.T) {
	nw := topogen.Campus()
	hosts := nw.Hosts()
	good := Workload{Flows: []Flow{{ID: 0, Src: hosts[0], Dst: hosts[1], Bytes: 100, Start: 0}}}
	if err := good.Validate(nw); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
	cases := []Flow{
		{Src: -1, Dst: hosts[0], Bytes: 1},                  // out of range
		{Src: 0, Dst: hosts[0], Bytes: 1},                   // node 0 is a router
		{Src: hosts[0], Dst: hosts[0], Bytes: 1},            // same endpoints
		{Src: hosts[0], Dst: hosts[1], Bytes: 0},            // empty flow
		{Src: hosts[0], Dst: hosts[1], Bytes: 1, Start: -1}, // negative time
	}
	for i, f := range cases {
		w := Workload{Flows: []Flow{f}}
		if err := w.Validate(nw); err == nil {
			t.Errorf("case %d accepted: %+v", i, f)
		}
	}
}

func TestHTTPGenerateDeterministic(t *testing.T) {
	nw := topogen.Campus()
	spec := DefaultHTTP(30, 42)
	a := spec.Generate(nw)
	b := spec.Generate(nw)
	if len(a.Flows) != len(b.Flows) {
		t.Fatalf("same seed, different flow counts: %d vs %d", len(a.Flows), len(b.Flows))
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("same seed, different flow %d", i)
		}
	}
	spec2 := spec
	spec2.Seed = 43
	c := spec2.Generate(nw)
	if len(a.Flows) == len(c.Flows) {
		same := true
		for i := range a.Flows {
			if a.Flows[i] != c.Flows[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical workloads")
		}
	}
}

func TestHTTPGenerateShape(t *testing.T) {
	nw := topogen.Campus()
	spec := DefaultHTTP(60, 7)
	w := spec.Generate(nw)
	if err := w.Validate(nw); err != nil {
		t.Fatal(err)
	}
	if len(w.Flows) == 0 {
		t.Fatal("no background flows generated")
	}
	for _, f := range w.Flows {
		if f.Bytes != spec.RequestBytes {
			t.Fatalf("flow size %d, want %d", f.Bytes, spec.RequestBytes)
		}
		if f.Start < 0 || f.Start >= spec.Duration {
			t.Fatalf("flow start %v outside [0,%v)", f.Start, spec.Duration)
		}
		if f.Tag != "http" {
			t.Fatalf("tag = %q", f.Tag)
		}
	}
	// Flow arrival rate should be near pairs/thinkTime. Campus has 40
	// hosts -> 20 servers x 10 clients = 200 pairs; rate 200/12 ≈ 16.7/s.
	rate := float64(len(w.Flows)) / spec.Duration
	if rate < 8 || rate > 34 {
		t.Errorf("flow rate = %.1f/s, want ~16.7/s", rate)
	}
	// Sorted by start.
	for i := 1; i < len(w.Flows); i++ {
		if w.Flows[i].Start < w.Flows[i-1].Start {
			t.Fatal("flows not sorted by start")
		}
	}
}

func TestHTTPPredictMatchesGeneratedVolume(t *testing.T) {
	// The prediction is the generator's own average-rate model: total
	// predicted volume must be within ~25% of actually generated volume for
	// a long enough run.
	nw := topogen.TeraGrid()
	spec := DefaultHTTP(120, 3)
	w := spec.Generate(nw)
	pred := spec.Predict(nw)
	var predBytes float64
	for _, p := range pred {
		predBytes += p.BytesPerSecond * spec.Duration
	}
	gen := float64(w.TotalBytes())
	if math.Abs(predBytes-gen) > 0.30*gen {
		t.Errorf("predicted %.3g bytes vs generated %.3g (> 30%% off)", predBytes, gen)
	}
}

func TestHTTPPredictEndpointsAreGenerated(t *testing.T) {
	// Every generated flow's endpoint pair must appear in the prediction.
	nw := topogen.Campus()
	spec := DefaultHTTP(20, 5)
	pred := spec.Predict(nw)
	pairs := make(map[[2]int]bool)
	for _, p := range pred {
		pairs[[2]int{p.Src, p.Dst}] = true
	}
	for _, f := range spec.Generate(nw).Flows {
		if !pairs[[2]int{f.Src, f.Dst}] {
			t.Fatalf("generated flow %d->%d not predicted", f.Src, f.Dst)
		}
	}
}

func TestHTTPServerCapSmallNetwork(t *testing.T) {
	// Campus has 40 hosts; 107 requested servers must cap at 20.
	nw := topogen.Campus()
	spec := DefaultHTTP(10, 1)
	pred := spec.Predict(nw)
	servers := make(map[int]bool)
	for _, p := range pred {
		servers[p.Src] = true
	}
	if len(servers) > 20 {
		t.Errorf("%d servers on a 40-host network, want <= 20", len(servers))
	}
}

func TestHTTPClientDiffersFromServer(t *testing.T) {
	nw := topogen.Campus()
	spec := DefaultHTTP(10, 9)
	for _, p := range spec.Predict(nw) {
		if p.Src == p.Dst {
			t.Fatal("client == server in prediction")
		}
	}
	for _, f := range spec.Generate(nw).Flows {
		if f.Src == f.Dst {
			t.Fatal("client == server in generated flow")
		}
	}
}
