package traffic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Workload trace files. MaSSF "records all network traffic trace of an
// emulation execution, and then replays it without real computation in the
// application" (§4.1.1) — a Workload is exactly that trace, and this file
// format persists it:
//
//	# comment
//	duration <seconds>
//	apphosts <id> <id> ...
//	flow <src> <dst> <start> <bytes> [tag]
//
// Tags must not contain whitespace (generated tags never do).

// WriteWorkload serializes w as a trace file.
func WriteWorkload(out io.Writer, w *Workload) error {
	bw := bufio.NewWriter(out)
	fmt.Fprintf(bw, "# workload trace: %d flows\n", len(w.Flows))
	fmt.Fprintf(bw, "duration %.17g\n", w.Duration)
	if len(w.AppHosts) > 0 {
		fmt.Fprint(bw, "apphosts")
		for _, h := range w.AppHosts {
			fmt.Fprintf(bw, " %d", h)
		}
		fmt.Fprintln(bw)
	}
	for _, f := range w.Flows {
		if strings.ContainsAny(f.Tag, " \t\n") {
			return fmt.Errorf("traffic: flow %d tag %q contains whitespace", f.ID, f.Tag)
		}
		if f.Tag == "" {
			fmt.Fprintf(bw, "flow %d %d %.17g %d\n", f.Src, f.Dst, f.Start, f.Bytes)
		} else {
			fmt.Fprintf(bw, "flow %d %d %.17g %d %s\n", f.Src, f.Dst, f.Start, f.Bytes, f.Tag)
		}
	}
	return bw.Flush()
}

// ReadWorkload parses a trace file written by WriteWorkload.
func ReadWorkload(in io.Reader) (Workload, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var w Workload
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "duration":
			if len(fields) != 2 {
				return w, fmt.Errorf("traffic: line %d: duration takes one value", lineNo)
			}
			d, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || d < 0 {
				return w, fmt.Errorf("traffic: line %d: bad duration %q", lineNo, fields[1])
			}
			w.Duration = d
		case "apphosts":
			for _, f := range fields[1:] {
				h, err := strconv.Atoi(f)
				if err != nil || h < 0 {
					return w, fmt.Errorf("traffic: line %d: bad app host %q", lineNo, f)
				}
				w.AppHosts = append(w.AppHosts, h)
			}
		case "flow":
			if len(fields) < 5 || len(fields) > 6 {
				return w, fmt.Errorf("traffic: line %d: flow <src> <dst> <start> <bytes> [tag]", lineNo)
			}
			var f Flow
			var err error
			if f.Src, err = strconv.Atoi(fields[1]); err != nil {
				return w, fmt.Errorf("traffic: line %d: bad src: %v", lineNo, err)
			}
			if f.Dst, err = strconv.Atoi(fields[2]); err != nil {
				return w, fmt.Errorf("traffic: line %d: bad dst: %v", lineNo, err)
			}
			if f.Start, err = strconv.ParseFloat(fields[3], 64); err != nil {
				return w, fmt.Errorf("traffic: line %d: bad start: %v", lineNo, err)
			}
			if f.Bytes, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
				return w, fmt.Errorf("traffic: line %d: bad bytes: %v", lineNo, err)
			}
			if len(fields) == 6 {
				f.Tag = fields[5]
			}
			f.ID = len(w.Flows)
			w.Flows = append(w.Flows, f)
		default:
			return w, fmt.Errorf("traffic: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return w, err
	}
	return w, nil
}
