package traffic

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/topogen"
)

func TestWorkloadTraceRoundTrip(t *testing.T) {
	nw := topogen.Campus()
	w := DefaultHTTP(15, 3).Generate(nw)
	w.AppHosts = []int{5, 9}
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, &w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != w.Duration {
		t.Errorf("duration %v -> %v", w.Duration, got.Duration)
	}
	if len(got.AppHosts) != 2 || got.AppHosts[0] != 5 || got.AppHosts[1] != 9 {
		t.Errorf("apphosts = %v", got.AppHosts)
	}
	if len(got.Flows) != len(w.Flows) {
		t.Fatalf("flows %d -> %d", len(w.Flows), len(got.Flows))
	}
	for i := range w.Flows {
		if got.Flows[i] != w.Flows[i] {
			t.Fatalf("flow %d changed: %+v -> %+v", i, w.Flows[i], got.Flows[i])
		}
	}
}

func TestWorkloadTraceTagless(t *testing.T) {
	w := Workload{
		Flows:    []Flow{{ID: 0, Src: 1, Dst: 2, Start: 0.5, Bytes: 99}},
		Duration: 1,
	}
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, &w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flows[0].Tag != "" {
		t.Errorf("tag = %q, want empty", got.Flows[0].Tag)
	}
}

func TestWriteWorkloadRejectsWhitespaceTag(t *testing.T) {
	w := Workload{Flows: []Flow{{Tag: "a b", Bytes: 1, Dst: 1}}}
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, &w); err == nil {
		t.Error("whitespace tag accepted")
	}
}

func TestReadWorkloadErrors(t *testing.T) {
	cases := []string{
		"duration\n",
		"duration x\n",
		"duration -1\n",
		"apphosts x\n",
		"flow 1 2 3\n",
		"flow a 2 0 1\n",
		"flow 1 b 0 1\n",
		"flow 1 2 c 1\n",
		"flow 1 2 0 d\n",
		"bogus\n",
	}
	for i, in := range cases {
		if _, err := ReadWorkload(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
	// Comments and blanks fine.
	w, err := ReadWorkload(strings.NewReader("# hi\n\nduration 5\nflow 1 2 0.25 100 x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if w.Duration != 5 || len(w.Flows) != 1 || w.Flows[0].Tag != "x" {
		t.Errorf("parsed %+v", w)
	}
}
