package partition

import "fmt"

// combineScale converts the normalized (fractional) combined weights back to
// the integer weights the partitioner uses. Large enough that ratios survive
// rounding, small enough that summed cuts stay far from overflow.
const combineScale = 1 << 20

// CombineObjectives implements the multi-objective weight combination the
// paper adopts from Schloegel, Karypis and Kumar (§2.3):
//
//  1. for each objective i, partition with that objective's edge weights
//     alone and record the achieved cut Cᵢ,
//  2. form the combined edge weight
//     w(e) = Σᵢ coef[i] · wᵢ(e)/Cᵢ
//     so each objective contributes in proportion to how close the combined
//     solution stays to that objective's own optimum.
//
// The returned weight set is scaled to integers; cuts holds each objective's
// single-objective cut (the normalization denominators). The caller applies
// Partition on g.WithWeights(combined) for the final answer — see
// MultiObjective for the one-call version.
//
// coef must have one non-negative entry per objective (they are normalized
// internally, so only ratios matter — the paper's default latency:traffic
// priority is 6:4).
func CombineObjectives(g *Graph, objs []EdgeWeightSet, coef []float64, k int, opts Options) (EdgeWeightSet, []int64, error) {
	if len(objs) == 0 {
		return nil, nil, fmt.Errorf("partition: CombineObjectives: no objectives")
	}
	if len(coef) != len(objs) {
		return nil, nil, fmt.Errorf("partition: CombineObjectives: %d coefficients for %d objectives", len(coef), len(objs))
	}
	var coefSum float64
	for i, c := range coef {
		if c < 0 {
			return nil, nil, fmt.Errorf("partition: CombineObjectives: coefficient %d is negative", i)
		}
		coefSum += c
	}
	if coefSum == 0 {
		return nil, nil, fmt.Errorf("partition: CombineObjectives: all coefficients are zero")
	}

	cuts := make([]int64, len(objs))
	for i, ws := range objs {
		gi := g.WithWeights(ws)
		part, err := Partition(gi, k, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("partition: CombineObjectives: objective %d: %w", i, err)
		}
		cuts[i] = EdgeCut(gi, part)
	}

	combined := NewEdgeWeightSet(g)
	for v := range g.Adj {
		for e := range g.Adj[v] {
			var w float64
			for i, ws := range objs {
				denom := float64(cuts[i])
				if denom <= 0 {
					// A zero single-objective cut means the objective is
					// trivially satisfiable; normalize by 1 so its weights
					// still participate.
					denom = 1
				}
				w += coef[i] / coefSum * float64(ws[v][e]) / denom
			}
			combined[v][e] = int64(w*combineScale + 0.5)
		}
	}
	return combined, cuts, nil
}

// MultiObjective runs the full §2.3 pipeline: single-objective partitions to
// obtain normalizers, weight combination, and a final partition under the
// combined weights. It returns the assignment together with the combined
// weight set (useful for reporting per-objective cuts of the final answer).
func MultiObjective(g *Graph, objs []EdgeWeightSet, coef []float64, k int, opts Options) ([]int, EdgeWeightSet, error) {
	combined, _, err := CombineObjectives(g, objs, coef, k, opts)
	if err != nil {
		return nil, nil, err
	}
	part, err := Partition(g.WithWeights(combined), k, opts)
	if err != nil {
		return nil, nil, err
	}
	return part, combined, nil
}
