package partition

import "testing"

func TestPartitionRBErrors(t *testing.T) {
	g := ringGraph(4, 1)
	if _, err := PartitionRB(g, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PartitionRB(g, 9, Options{}); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := PartitionRB(NewGraph(0, 1), 1, Options{}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestPartitionRBTrivial(t *testing.T) {
	g := ringGraph(6, 1)
	part, err := PartitionRB(g, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("k=1 produced nonzero part")
		}
	}
}

func TestPartitionRBPowerOfTwo(t *testing.T) {
	g := gridGraph(8, 8)
	part, err := PartitionRB(g, 4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, part, 4); err != nil {
		t.Fatal(err)
	}
	if cut := EdgeCut(g, part); cut > 30 {
		t.Errorf("RB 8x8 grid 4-way cut = %d, want <= 30", cut)
	}
	if b := Balance(g, part, 4)[0]; b > 1.12 {
		t.Errorf("RB balance = %v", b)
	}
}

func TestPartitionRBOddK(t *testing.T) {
	// k=3 and k=5 exercise the skewed-bisection path.
	for _, k := range []int{3, 5, 7} {
		g := randomGraph(120, 200, 1, int64(k))
		part, err := PartitionRB(g, k, Options{Seed: 3})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := Verify(g, part, k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if b := Balance(g, part, k)[0]; b > 1.30 {
			t.Errorf("k=%d RB balance = %v, want <= 1.30", k, b)
		}
	}
}

func TestPartitionRBComparableToKWay(t *testing.T) {
	// RB and k-way should land in the same quality class on a structured
	// graph (within 2x of each other's cut).
	g := gridGraph(12, 12)
	kw, err := Partition(g, 6, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := PartitionRB(g, 6, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ck, cr := EdgeCut(g, kw), EdgeCut(g, rb)
	if cr > 2*ck+4 {
		t.Errorf("RB cut %d far above k-way %d", cr, ck)
	}
}

func TestPartitionRBMultiConstraint(t *testing.T) {
	g := randomGraph(80, 120, 2, 9)
	part, err := PartitionRB(g, 4, Options{Seed: 5, Imbalance: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, part, 4); err != nil {
		t.Fatal(err)
	}
	for c, b := range Balance(g, part, 4) {
		if b > 1.35 {
			t.Errorf("constraint %d balance = %v", c, b)
		}
	}
}
