package partition

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadGraph parses a graph in the METIS ASCII format:
//
//	% comment lines start with a percent sign
//	<n> <m> [fmt [ncon]]
//	<vertex line> × n
//
// where fmt is up to three digits — 1: edges carry weights, 10: vertices
// carry ncon weights, 100: vertices carry sizes (accepted and ignored) — and
// each vertex line is
//
//	[size] [w_1 ... w_ncon] v_1 [ew_1] v_2 [ew_2] ...
//
// with 1-based neighbor indices. Unweighted edges and vertices default to
// weight 1.
func ReadGraph(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	line, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("partition: read graph header: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields) > 4 {
		return nil, fmt.Errorf("partition: malformed header %q", line)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("partition: bad vertex count %q", fields[0])
	}
	m, err := strconv.Atoi(fields[1])
	if err != nil || m < 0 {
		return nil, fmt.Errorf("partition: bad edge count %q", fields[1])
	}
	hasVSize, hasVWgt, hasEWgt := false, false, false
	ncon := 1
	if len(fields) >= 3 {
		code := fields[2]
		for len(code) < 3 {
			code = "0" + code
		}
		if len(code) != 3 || strings.Trim(code, "01") != "" {
			return nil, fmt.Errorf("partition: bad fmt code %q", fields[2])
		}
		hasVSize = code[0] == '1'
		hasVWgt = code[1] == '1'
		hasEWgt = code[2] == '1'
	}
	if len(fields) == 4 {
		ncon, err = strconv.Atoi(fields[3])
		if err != nil || ncon < 1 {
			return nil, fmt.Errorf("partition: bad ncon %q", fields[3])
		}
		hasVWgt = true
	}

	g := NewGraph(n, ncon)
	edgeHalves := 0
	for v := 0; v < n; v++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("partition: vertex %d: %w", v+1, err)
		}
		toks := strings.Fields(line)
		i := 0
		if hasVSize {
			if i >= len(toks) {
				return nil, fmt.Errorf("partition: vertex %d: missing size", v+1)
			}
			i++ // size accepted and ignored
		}
		if hasVWgt {
			if i+ncon > len(toks) {
				return nil, fmt.Errorf("partition: vertex %d: expected %d vertex weights", v+1, ncon)
			}
			for c := 0; c < ncon; c++ {
				w, err := strconv.ParseInt(toks[i], 10, 64)
				if err != nil || w < 0 {
					return nil, fmt.Errorf("partition: vertex %d: bad weight %q", v+1, toks[i])
				}
				g.VWgt[v][c] = w
				i++
			}
		}
		for i < len(toks) {
			u, err := strconv.Atoi(toks[i])
			if err != nil || u < 1 || u > n {
				return nil, fmt.Errorf("partition: vertex %d: bad neighbor %q", v+1, toks[i])
			}
			i++
			var w int64 = 1
			if hasEWgt {
				if i >= len(toks) {
					return nil, fmt.Errorf("partition: vertex %d: neighbor %d missing edge weight", v+1, u)
				}
				w, err = strconv.ParseInt(toks[i], 10, 64)
				if err != nil || w < 0 {
					return nil, fmt.Errorf("partition: vertex %d: bad edge weight %q", v+1, toks[i])
				}
				i++
			}
			edgeHalves++
			if u-1 == v {
				continue // self loop: drop, as METIS does
			}
			// The file stores each undirected edge twice; add once from the
			// lower-numbered side to avoid doubling weights.
			if v < u-1 {
				g.AddEdge(v, u-1, w)
			}
		}
	}
	if edgeHalves != 2*m {
		return nil, fmt.Errorf("partition: header declares %d edges, found %d half-edges", m, edgeHalves)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// WriteGraph emits g in the METIS format accepted by ReadGraph, always with
// both vertex and edge weights (fmt code 011).
func WriteGraph(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d 011 %d\n", g.NumVertices(), g.NumEdges(), g.Ncon); err != nil {
		return err
	}
	for v := range g.Adj {
		var sb strings.Builder
		for c, x := range g.VWgt[v] {
			if c > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(strconv.FormatInt(x, 10))
		}
		for _, e := range g.Adj[v] {
			sb.WriteByte(' ')
			sb.WriteString(strconv.Itoa(e.To + 1))
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatInt(e.Wgt, 10))
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePartition emits the assignment in METIS's partition-file format: one
// part id per line, vertex order.
func WritePartition(w io.Writer, part []int) error {
	bw := bufio.NewWriter(w)
	for _, p := range part {
		if _, err := fmt.Fprintln(bw, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPartition parses a METIS partition file produced by WritePartition.
func ReadPartition(r io.Reader) ([]int, error) {
	sc := bufio.NewScanner(r)
	var part []int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		p, err := strconv.Atoi(line)
		if err != nil || p < 0 {
			return nil, fmt.Errorf("partition: bad part id %q on line %d", line, len(part)+1)
		}
		part = append(part, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return part, nil
}
