package partition

import "testing"

// twoObjectiveFixture builds a 4-ring where the latency objective wants to
// cut edges {0-1, 2-3} and the bandwidth objective wants {1-2, 3-0}.
func twoObjectiveFixture() (*Graph, []EdgeWeightSet) {
	g := ringGraph(4, 1)
	lat := NewEdgeWeightSet(g)
	bw := NewEdgeWeightSet(g)
	// Minimizing cut: cheap edges get cut. Latency weights make 0-1 and 2-3
	// cheap; bandwidth weights make 1-2 and 3-0 cheap.
	lat.SetSymmetric(g, 0, 1, 1)
	lat.SetSymmetric(g, 1, 2, 10)
	lat.SetSymmetric(g, 2, 3, 1)
	lat.SetSymmetric(g, 3, 0, 10)
	bw.SetSymmetric(g, 0, 1, 10)
	bw.SetSymmetric(g, 1, 2, 1)
	bw.SetSymmetric(g, 2, 3, 10)
	bw.SetSymmetric(g, 3, 0, 1)
	return g, []EdgeWeightSet{lat, bw}
}

func TestCombineObjectivesErrors(t *testing.T) {
	g, objs := twoObjectiveFixture()
	if _, _, err := CombineObjectives(g, nil, nil, 2, Options{}); err == nil {
		t.Error("no objectives accepted")
	}
	if _, _, err := CombineObjectives(g, objs, []float64{1}, 2, Options{}); err == nil {
		t.Error("coefficient arity mismatch accepted")
	}
	if _, _, err := CombineObjectives(g, objs, []float64{-1, 2}, 2, Options{}); err == nil {
		t.Error("negative coefficient accepted")
	}
	if _, _, err := CombineObjectives(g, objs, []float64{0, 0}, 2, Options{}); err == nil {
		t.Error("all-zero coefficients accepted")
	}
}

func TestCombineObjectivesNormalizes(t *testing.T) {
	g, objs := twoObjectiveFixture()
	combined, cuts, err := CombineObjectives(g, objs, []float64{0.5, 0.5}, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 2 {
		t.Fatalf("got %d cuts, want 2", len(cuts))
	}
	// Each single-objective optimum cuts the two cheap edges: cut = 2.
	for i, c := range cuts {
		if c != 2 {
			t.Errorf("objective %d optimal cut = %d, want 2", i, c)
		}
	}
	// Combined weights on a symmetric instance: every edge has weight
	// 0.5*w_lat/2 + 0.5*w_bw/2 and by construction w_lat+w_bw = 11 for all
	// edges, so all combined weights must be equal.
	var first int64 = -1
	for v := range g.Adj {
		for i := range g.Adj[v] {
			if first == -1 {
				first = combined[v][i]
			} else if combined[v][i] != first {
				t.Fatalf("combined weights differ: %d vs %d", first, combined[v][i])
			}
		}
	}
}

func TestCombineObjectivesExtremePriorities(t *testing.T) {
	g, objs := twoObjectiveFixture()
	// Pure latency priority must reproduce the latency optimum: parts {0,3},{1,2}
	// or {1,0},{2,3} — i.e. edges 0-1 and 2-3 cut.
	part, _, err := MultiObjective(g, objs, []float64{1, 0}, 2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lat := g.WithWeights(objs[0])
	if cut := EdgeCut(lat, part); cut != 2 {
		t.Errorf("latency-priority cut under latency weights = %d, want 2", cut)
	}
	// Pure bandwidth priority must reproduce the bandwidth optimum.
	part, _, err = MultiObjective(g, objs, []float64{0, 1}, 2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bw := g.WithWeights(objs[1])
	if cut := EdgeCut(bw, part); cut != 2 {
		t.Errorf("bandwidth-priority cut under bandwidth weights = %d, want 2", cut)
	}
}

func TestMultiObjectiveTradeoffIsBounded(t *testing.T) {
	// On a larger random graph, a 6:4 combination should stay within a small
	// factor of both single-objective optima (the SKK "good multi-objective
	// partition" property).
	g := randomGraph(120, 200, 1, 8)
	lat := NewEdgeWeightSet(g)
	bw := NewEdgeWeightSet(g)
	for v := range g.Adj {
		for _, e := range g.Adj[v] {
			if v < e.To {
				lw := int64(1 + (v+e.To)%17)
				bwgt := int64(1 + (v*e.To)%23)
				lat.SetSymmetric(g, v, e.To, lw)
				bw.SetSymmetric(g, v, e.To, bwgt)
			}
		}
	}
	opts := Options{Seed: 17}
	k := 4

	latPart, err := Partition(g.WithWeights(lat), k, opts)
	if err != nil {
		t.Fatal(err)
	}
	cLat := CutWeightOf(g, lat, latPart)
	bwPart, err := Partition(g.WithWeights(bw), k, opts)
	if err != nil {
		t.Fatal(err)
	}
	cBw := CutWeightOf(g, bw, bwPart)

	part, _, err := MultiObjective(g, []EdgeWeightSet{lat, bw}, []float64{0.6, 0.4}, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, part, k); err != nil {
		t.Fatal(err)
	}
	gotLat := CutWeightOf(g, lat, part)
	gotBw := CutWeightOf(g, bw, part)
	if float64(gotLat) > 3.0*float64(cLat) {
		t.Errorf("combined partition latency cut %d vs optimum %d (> 3x)", gotLat, cLat)
	}
	if float64(gotBw) > 3.0*float64(cBw) {
		t.Errorf("combined partition bandwidth cut %d vs optimum %d (> 3x)", gotBw, cBw)
	}
}

func TestCombineObjectivesZeroCutObjective(t *testing.T) {
	// An objective whose weights are all zero yields a zero single-objective
	// cut; the combiner must not divide by zero.
	g := ringGraph(8, 1)
	zero := NewEdgeWeightSet(g)
	one := g.Weights()
	combined, cuts, err := CombineObjectives(g, []EdgeWeightSet{zero, one}, []float64{0.5, 0.5}, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cuts[0] != 0 {
		t.Errorf("zero objective cut = %d, want 0", cuts[0])
	}
	for v := range combined {
		for _, w := range combined[v] {
			if w < 0 {
				t.Fatal("negative combined weight")
			}
		}
	}
}
