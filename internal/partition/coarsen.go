package partition

import "math/rand"

// level holds one rung of the multilevel hierarchy: the coarse graph and the
// mapping from the finer graph's vertices to coarse vertices.
type level struct {
	graph *Graph
	// fineToCoarse[v] is the coarse vertex that fine vertex v collapsed into.
	fineToCoarse []int
}

// heavyEdgeMatch computes a matching of g by the heavy-edge heuristic:
// vertices are visited in random order and each unmatched vertex matches its
// unmatched neighbor reachable over the heaviest edge. maxW, when non-nil,
// caps the combined weight of a matched pair per constraint — without the
// cap, repeated coarsening can fuse hot vertices into coarse lumps heavier
// than a whole part's budget, making balanced initial partitions impossible.
// Returns match[v] = the partner of v, or v itself if unmatched.
func heavyEdgeMatch(g *Graph, rng *rand.Rand, maxW []int64) []int {
	n := g.NumVertices()
	match := make([]int, n)
	for v := range match {
		match[v] = -1
	}
	order := rng.Perm(n)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best := -1
		var bestW int64 = -1
		for _, e := range g.Adj[v] {
			if match[e.To] != -1 || e.Wgt <= bestW {
				continue
			}
			if exceedsCap(g, v, e.To, maxW) {
				continue
			}
			best, bestW = e.To, e.Wgt
		}
		if best == -1 {
			match[v] = v
		} else {
			match[v] = best
			match[best] = v
		}
	}
	return match
}

// exceedsCap reports whether merging u and v would exceed the per-constraint
// coarse-vertex weight cap.
func exceedsCap(g *Graph, u, v int, maxW []int64) bool {
	if maxW == nil {
		return false
	}
	for c, limit := range maxW {
		if limit > 0 && g.VWgt[u][c]+g.VWgt[v][c] > limit {
			return true
		}
	}
	return false
}

// coarsen collapses g along the given matching and returns the coarse level.
// Matched pairs become one coarse vertex whose weight vector is the sum of
// the pair's; parallel edges between coarse vertices are merged by summing
// weights; edges internal to a pair disappear.
func coarsen(g *Graph, match []int) level {
	n := g.NumVertices()
	fineToCoarse := make([]int, n)
	for v := range fineToCoarse {
		fineToCoarse[v] = -1
	}
	numCoarse := 0
	for v := 0; v < n; v++ {
		if fineToCoarse[v] != -1 {
			continue
		}
		fineToCoarse[v] = numCoarse
		if m := match[v]; m != v {
			fineToCoarse[m] = numCoarse
		}
		numCoarse++
	}

	cg := NewGraph(numCoarse, g.Ncon)
	for c := 0; c < numCoarse; c++ {
		for i := range cg.VWgt[c] {
			cg.VWgt[c][i] = 0
		}
	}
	for v := 0; v < n; v++ {
		cv := fineToCoarse[v]
		for c, w := range g.VWgt[v] {
			cg.VWgt[cv][c] += w
		}
	}

	// Merge adjacency. A scratch map per coarse vertex keeps this O(E).
	slot := make(map[int]int) // coarse neighbor -> index in cg.Adj[cv]
	for cv := 0; cv < numCoarse; cv++ {
		clear(slot)
		for v := 0; v < n; v++ {
			if fineToCoarse[v] != cv {
				continue
			}
			for _, e := range g.Adj[v] {
				cu := fineToCoarse[e.To]
				if cu == cv {
					continue // collapsed edge
				}
				if idx, ok := slot[cu]; ok {
					cg.Adj[cv][idx].Wgt += e.Wgt
				} else {
					slot[cu] = len(cg.Adj[cv])
					cg.Adj[cv] = append(cg.Adj[cv], Edge{To: cu, Wgt: e.Wgt})
				}
			}
		}
	}
	// The loop above is O(numCoarse * n); fine for the graph sizes here but
	// wasteful. Rebuild with a single pass instead when n is large.
	return level{graph: cg, fineToCoarse: fineToCoarse}
}

// coarsenFast is a single-pass variant of coarsen used for larger graphs.
func coarsenFast(g *Graph, match []int) level {
	n := g.NumVertices()
	fineToCoarse := make([]int, n)
	for v := range fineToCoarse {
		fineToCoarse[v] = -1
	}
	numCoarse := 0
	members := make([][2]int, 0, n) // coarse vertex -> up to two fine members
	for v := 0; v < n; v++ {
		if fineToCoarse[v] != -1 {
			continue
		}
		fineToCoarse[v] = numCoarse
		pair := [2]int{v, -1}
		if m := match[v]; m != v {
			fineToCoarse[m] = numCoarse
			pair[1] = m
		}
		members = append(members, pair)
		numCoarse++
	}

	cg := NewGraph(numCoarse, g.Ncon)
	slot := make(map[int]int)
	for cv := 0; cv < numCoarse; cv++ {
		for i := range cg.VWgt[cv] {
			cg.VWgt[cv][i] = 0
		}
		clear(slot)
		for _, v := range members[cv] {
			if v == -1 {
				continue
			}
			for c, w := range g.VWgt[v] {
				cg.VWgt[cv][c] += w
			}
			for _, e := range g.Adj[v] {
				cu := fineToCoarse[e.To]
				if cu == cv {
					continue
				}
				if idx, ok := slot[cu]; ok {
					cg.Adj[cv][idx].Wgt += e.Wgt
				} else {
					slot[cu] = len(cg.Adj[cv])
					cg.Adj[cv] = append(cg.Adj[cv], Edge{To: cu, Wgt: e.Wgt})
				}
			}
		}
	}
	return level{graph: cg, fineToCoarse: fineToCoarse}
}

// buildHierarchy coarsens g repeatedly until the coarse graph has at most
// coarseTo vertices or coarsening stops making progress (less than 8%
// shrinkage), returning the levels from finest to coarsest. levels[0].graph
// is the first coarse graph; the original g is not included.
func buildHierarchy(g *Graph, coarseTo int, rng *rand.Rand) []level {
	// Cap coarse-vertex weights at a few times the average weight of the
	// target coarse graph, so no coarse vertex approaches a part's budget.
	total := g.TotalVWgt()
	maxW := make([]int64, g.Ncon)
	for c, t := range total {
		maxW[c] = 4 * t / int64(coarseTo)
	}
	var levels []level
	cur := g
	for cur.NumVertices() > coarseTo {
		match := heavyEdgeMatch(cur, rng, maxW)
		lv := coarsenFast(cur, match)
		if lv.graph.NumVertices() > cur.NumVertices()*92/100 {
			// Matching has stalled (e.g. a star graph); stop coarsening.
			break
		}
		levels = append(levels, lv)
		cur = lv.graph
	}
	return levels
}
