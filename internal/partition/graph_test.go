package partition

import (
	"math/rand"
	"testing"
)

func TestNewGraphDefaults(t *testing.T) {
	g := NewGraph(4, 2)
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.Ncon != 2 {
		t.Fatalf("Ncon = %d, want 2", g.Ncon)
	}
	for v := 0; v < 4; v++ {
		for c := 0; c < 2; c++ {
			if g.VWgt[v][c] != 1 {
				t.Errorf("default VWgt[%d][%d] = %d, want 1", v, c, g.VWgt[v][c])
			}
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewGraphNconFloor(t *testing.T) {
	g := NewGraph(1, 0)
	if g.Ncon != 1 {
		t.Errorf("Ncon = %d, want floor of 1", g.Ncon)
	}
}

func TestAddEdgeSymmetricAndMerging(t *testing.T) {
	g := NewGraph(3, 1)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 0, 3) // merges into the existing undirected edge
	w, ok := g.EdgeWeight(0, 1)
	if !ok || w != 8 {
		t.Errorf("EdgeWeight(0,1) = %d,%v, want 8,true", w, ok)
	}
	w, ok = g.EdgeWeight(1, 0)
	if !ok || w != 8 {
		t.Errorf("EdgeWeight(1,0) = %d,%v, want 8,true", w, ok)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAddEdgeSelfLoopIgnored(t *testing.T) {
	g := NewGraph(2, 1)
	g.AddEdge(1, 1, 9)
	if g.NumEdges() != 0 {
		t.Errorf("self loop was stored")
	}
}

func TestEdgeWeightMissing(t *testing.T) {
	g := NewGraph(2, 1)
	if _, ok := g.EdgeWeight(0, 1); ok {
		t.Error("EdgeWeight reported a nonexistent edge")
	}
}

func TestSetVWgtAndTotals(t *testing.T) {
	g := NewGraph(2, 2)
	g.SetVWgt(0, 3, 4)
	g.SetVWgt(1, 1, 6)
	tot := g.TotalVWgt()
	if tot[0] != 4 || tot[1] != 10 {
		t.Errorf("TotalVWgt = %v, want [4 10]", tot)
	}
}

func TestSetVWgtPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetVWgt with wrong arity did not panic")
		}
	}()
	g := NewGraph(1, 2)
	g.SetVWgt(0, 1)
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := NewGraph(2, 1)
	g.Adj[0] = append(g.Adj[0], Edge{To: 1, Wgt: 2}) // no reverse edge
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted an asymmetric graph")
	}
}

func TestValidateCatchesWeightMismatch(t *testing.T) {
	g := NewGraph(2, 1)
	g.Adj[0] = append(g.Adj[0], Edge{To: 1, Wgt: 2})
	g.Adj[1] = append(g.Adj[1], Edge{To: 0, Wgt: 3})
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted mismatched reverse weights")
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	g := NewGraph(2, 1)
	g.Adj[0] = append(g.Adj[0], Edge{To: 5, Wgt: 1})
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted out-of-range neighbor")
	}
}

func TestValidateCatchesNegativeVertexWeight(t *testing.T) {
	g := NewGraph(1, 1)
	g.VWgt[0][0] = -1
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a negative vertex weight")
	}
}

func TestClone(t *testing.T) {
	g := ringGraph(5, 1)
	cp := g.Clone()
	cp.AddEdge(0, 2, 7)
	cp.VWgt[0][0] = 99
	if _, ok := g.EdgeWeight(0, 2); ok {
		t.Error("Clone shares adjacency with original")
	}
	if g.VWgt[0][0] == 99 {
		t.Error("Clone shares vertex weights with original")
	}
}

func TestEdgeWeightSetRoundTrip(t *testing.T) {
	g := ringGraph(4, 1)
	ws := NewEdgeWeightSet(g)
	ws.SetSymmetric(g, 0, 1, 10)
	ws.AddSymmetric(g, 0, 1, 5)
	g2 := g.WithWeights(ws)
	w, _ := g2.EdgeWeight(0, 1)
	if w != 15 {
		t.Errorf("weight after WithWeights = %d, want 15", w)
	}
	w, _ = g2.EdgeWeight(1, 0)
	if w != 15 {
		t.Errorf("reverse weight after WithWeights = %d, want 15", w)
	}
	// Untouched edges become zero.
	w, _ = g2.EdgeWeight(1, 2)
	if w != 0 {
		t.Errorf("untouched edge weight = %d, want 0", w)
	}
	if err := g2.Validate(); err != nil {
		t.Errorf("Validate after WithWeights: %v", err)
	}
}

func TestEdgeWeightSetMissingEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetSymmetric on a missing edge did not panic")
		}
	}()
	g := ringGraph(4, 1)
	ws := NewEdgeWeightSet(g)
	ws.SetSymmetric(g, 0, 2, 1)
}

func TestWeightsExtraction(t *testing.T) {
	g := ringGraph(3, 1)
	ws := g.Weights()
	for v := range g.Adj {
		for i, e := range g.Adj[v] {
			if ws[v][i] != e.Wgt {
				t.Fatalf("Weights()[%d][%d] = %d, want %d", v, i, ws[v][i], e.Wgt)
			}
		}
	}
}

// ringGraph builds a cycle of n vertices with unit weights and ncon
// constraints — a convenient fixture with a known optimal cut (2 per split).
func ringGraph(n, ncon int) *Graph {
	g := NewGraph(n, ncon)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n, 1)
	}
	return g
}

// gridGraph builds an r×c grid with unit edge weights.
func gridGraph(r, c int) *Graph {
	g := NewGraph(r*c, 1)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
		}
	}
	return g
}

// randomGraph builds a connected random graph: a spanning ring plus extra
// random edges, with random weights.
func randomGraph(n, extra int, ncon int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n, ncon)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n, int64(1+rng.Intn(9)))
		for c := 0; c < ncon; c++ {
			g.VWgt[v][c] = int64(1 + rng.Intn(5))
		}
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, int64(1+rng.Intn(9)))
		}
	}
	return g
}

func TestCoarsenVariantsAgree(t *testing.T) {
	g := randomGraph(60, 90, 2, 7)
	rng := rand.New(rand.NewSource(1))
	match := heavyEdgeMatch(g, rng, nil)
	a := coarsen(g, match)
	b := coarsenFast(g, match)
	if a.graph.NumVertices() != b.graph.NumVertices() {
		t.Fatalf("variant vertex counts differ: %d vs %d", a.graph.NumVertices(), b.graph.NumVertices())
	}
	for v := range a.fineToCoarse {
		if a.fineToCoarse[v] != b.fineToCoarse[v] {
			t.Fatalf("fineToCoarse differs at %d", v)
		}
	}
	// Same total vertex weight and same edge weight between any coarse pair.
	at, bt := a.graph.TotalVWgt(), b.graph.TotalVWgt()
	for c := range at {
		if at[c] != bt[c] {
			t.Fatalf("coarse totals differ on constraint %d", c)
		}
	}
	for u := 0; u < a.graph.NumVertices(); u++ {
		for _, e := range a.graph.Adj[u] {
			w, ok := b.graph.EdgeWeight(u, e.To)
			if !ok || w != e.Wgt {
				t.Fatalf("edge %d-%d: coarsen %d vs coarsenFast %d (ok=%v)", u, e.To, e.Wgt, w, ok)
			}
		}
	}
	if err := b.graph.Validate(); err != nil {
		t.Errorf("coarse graph invalid: %v", err)
	}
}

func TestHeavyEdgeMatchIsMatching(t *testing.T) {
	g := randomGraph(80, 120, 1, 3)
	rng := rand.New(rand.NewSource(2))
	match := heavyEdgeMatch(g, rng, nil)
	for v, m := range match {
		if m == -1 {
			t.Fatalf("vertex %d left unprocessed", v)
		}
		if match[m] != v {
			t.Fatalf("matching not symmetric: match[%d]=%d, match[%d]=%d", v, m, m, match[m])
		}
		if m != v {
			// Matched pairs must be adjacent.
			if _, ok := g.EdgeWeight(v, m); !ok {
				t.Fatalf("matched pair %d-%d not adjacent", v, m)
			}
		}
	}
}

func TestBuildHierarchyShrinks(t *testing.T) {
	g := randomGraph(500, 800, 1, 11)
	rng := rand.New(rand.NewSource(5))
	levels := buildHierarchy(g, 60, rng)
	if len(levels) == 0 {
		t.Fatal("no coarsening happened on a 500-vertex graph")
	}
	prev := g.NumVertices()
	for i, lv := range levels {
		n := lv.graph.NumVertices()
		if n >= prev {
			t.Fatalf("level %d did not shrink: %d -> %d", i, prev, n)
		}
		// Total vertex weight is invariant under coarsening.
		if lv.graph.TotalVWgt()[0] != g.TotalVWgt()[0] {
			t.Fatalf("level %d changed total vertex weight", i)
		}
		prev = n
	}
	if last := levels[len(levels)-1].graph.NumVertices(); last > 100 {
		t.Errorf("coarsest graph still has %d vertices", last)
	}
}
