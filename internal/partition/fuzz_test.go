package partition

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadGraph: the METIS parser must never panic, and accepted graphs must
// validate and round-trip.
func FuzzReadGraph(f *testing.F) {
	f.Add("5 6\n2 3\n1 3 4\n1 2 5\n2 5\n3 4\n")
	f.Add("3 2 011 2\n5 7 2 9\n1 3 1 9 3 4\n2 2 2 4\n")
	f.Add("0 0\n")
	f.Add("1 0 10\n3\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadGraph(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			t.Fatalf("serialize: %v", err)
		}
		back, err := ReadGraph(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed shape")
		}
	})
}
