package partition

import "math/rand"

// partWeights returns the per-part, per-constraint weight sums of the
// assignment.
func partWeights(g *Graph, part []int, k int) [][]int64 {
	w := make([][]int64, k)
	for p := range w {
		w[p] = make([]int64, g.Ncon)
	}
	for v, p := range part {
		for c, x := range g.VWgt[v] {
			w[p][c] += x
		}
	}
	return w
}

// partSizes returns the vertex count of each part.
func partSizes(part []int, k int) []int {
	s := make([]int, k)
	for _, p := range part {
		s[p]++
	}
	return s
}

// uniformFractions returns frac unchanged when it already holds k positive
// entries summing to ~1, or the uniform 1/k vector otherwise. Target
// fractions are how heterogeneous engine capacities reach the partitioner
// (METIS's tpwgts): part p may hold frac[p] of every constraint's total.
func uniformFractions(k int, frac []float64) []float64 {
	if len(frac) == k {
		ok := true
		var sum float64
		for _, f := range frac {
			if f <= 0 {
				ok = false
				break
			}
			sum += f
		}
		if ok && sum > 0.99 && sum < 1.01 {
			return frac
		}
	}
	out := make([]float64, k)
	for p := range out {
		out[p] = 1 / float64(k)
	}
	return out
}

// allowedCeiling returns, per part and constraint, the maximum weight part p
// may hold under tolerance tol and target fractions frac:
// (1+tol)·total[c]·frac[p]. A constraint whose total is 0 gets an unbounded
// ceiling.
func allowedCeiling(g *Graph, k int, tol float64, frac []float64) [][]float64 {
	total := g.TotalVWgt()
	ceil := make([][]float64, k)
	for p := range ceil {
		ceil[p] = make([]float64, g.Ncon)
		for c, t := range total {
			if t == 0 {
				ceil[p][c] = 1e308
				continue
			}
			ceil[p][c] = (1 + tol) * float64(t) * frac[p]
		}
	}
	return ceil
}

// moveFits reports whether moving vertex v into part dst keeps every
// constraint of dst at or below its ceiling.
func moveFits(g *Graph, w [][]int64, v, dst int, ceil [][]float64) bool {
	for c, x := range g.VWgt[v] {
		if float64(w[dst][c]+x) > ceil[dst][c] {
			return false
		}
	}
	return true
}

// applyMove moves v from its current part to dst, updating part and weights.
func applyMove(g *Graph, part []int, w [][]int64, sizes []int, v, dst int) {
	src := part[v]
	for c, x := range g.VWgt[v] {
		w[src][c] -= x
		w[dst][c] += x
	}
	sizes[src]--
	sizes[dst]++
	part[v] = dst
}

// connectivity computes, for vertex v, the total edge weight from v into each
// part it touches, reusing the provided scratch map.
func connectivity(g *Graph, part []int, v int, conn map[int]int64) {
	clear(conn)
	for _, e := range g.Adj[v] {
		conn[part[e.To]] += e.Wgt
	}
}

// refine performs up to passes rounds of greedy boundary refinement on the
// assignment: each pass visits vertices in random order and moves a vertex to
// the adjacent part with the highest positive cut gain, provided the move
// keeps the destination under the balance ceiling and does not empty the
// source part. Zero-gain moves are taken when they strictly reduce the
// heaviest constraint load of the source part (they improve balance for
// free). Refinement stops early on a pass with no moves.
func refine(g *Graph, part []int, k int, tol float64, passes int, frac []float64, rng *rand.Rand) {
	frac = uniformFractions(k, frac)
	w := partWeights(g, part, k)
	sizes := partSizes(part, k)
	ceil := allowedCeiling(g, k, tol, frac)
	conn := make(map[int]int64, k)

	for pass := 0; pass < passes; pass++ {
		moved := 0
		for _, v := range rng.Perm(g.NumVertices()) {
			src := part[v]
			if sizes[src] <= 1 {
				continue // never empty a part
			}
			connectivity(g, part, v, conn)
			internal := conn[src]
			bestDst, bestGain := -1, int64(0)
			bestBalance := false
			// Iterate parts in index order (not map order) so results are
			// deterministic for a fixed seed.
			for dst := 0; dst < k; dst++ {
				ext, touches := conn[dst]
				if dst == src || !touches {
					continue
				}
				gain := ext - internal
				if gain < 0 {
					continue
				}
				if !moveFits(g, w, v, dst, ceil) {
					continue
				}
				if gain > bestGain {
					bestDst, bestGain, bestBalance = dst, gain, false
					continue
				}
				if gain == 0 && bestDst == -1 && balanceImproves(g, w, v, src, dst, frac) {
					// Zero-gain candidate: only worthwhile if it improves
					// balance (source heavier than destination on some
					// constraint the vertex contributes to).
					bestDst, bestBalance = dst, true
				}
			}
			if bestDst != -1 && (bestGain > 0 || bestBalance) {
				applyMove(g, part, w, sizes, v, bestDst)
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// balanceImproves reports whether moving v from src to dst strictly reduces
// the pairwise relative imbalance between the two parts (weights compared
// relative to each part's target fraction).
func balanceImproves(g *Graph, w [][]int64, v, src, dst int, frac []float64) bool {
	for c, x := range g.VWgt[v] {
		if x == 0 {
			continue
		}
		if float64(w[src][c])/frac[src] > float64(w[dst][c]+x)/frac[dst] {
			return true
		}
	}
	return false
}

// rebalance restores balance feasibility after refinement or projection by
// alternating two phases until neither makes progress. The push phase moves
// the least-cut-damage vertex out of any part exceeding its ceiling into the
// lightest part that can take it. The fill phase pulls the cheapest vertex
// into any part below its floor (1-tol)·avg — a ceiling alone cannot prevent
// one starving part while all the others hug the ceiling. All loops are
// bounded so hopeless instances (e.g. one giant vertex) terminate.
func rebalance(g *Graph, part []int, k int, tol float64, frac []float64) {
	frac = uniformFractions(k, frac)
	st := &rebalanceState{
		g:     g,
		part:  part,
		k:     k,
		tol:   tol,
		frac:  frac,
		w:     partWeights(g, part, k),
		sizes: partSizes(part, k),
		ceil:  allowedCeiling(g, k, tol, frac),
		conn:  make(map[int]int64, k),
		total: g.TotalVWgt(),
	}
	maxMoves := 4 * g.NumVertices()
	for round := 0; round < 4; round++ {
		pushed := st.pushPhase(maxMoves)
		filled := st.fillPhase(maxMoves)
		if pushed+filled == 0 {
			return
		}
	}
}

type rebalanceState struct {
	g     *Graph
	part  []int
	k     int
	tol   float64
	frac  []float64
	w     [][]int64
	sizes []int
	ceil  [][]float64
	conn  map[int]int64
	total []int64
}

// pushPhase sheds weight from over-ceiling parts; returns moves made.
func (st *rebalanceState) pushPhase(maxMoves int) int {
	g, part, k, w, sizes, ceil, conn := st.g, st.part, st.k, st.w, st.sizes, st.ceil, st.conn
	// forcedMoves caps how often a vertex may be moved by the forced
	// fallback, preventing a hot vertex from ping-ponging between the two
	// heaviest parts until the move budget is gone.
	forcedMoves := make(map[int]int)
	moves := 0
	stuck := false
	for move := 0; move < maxMoves && !stuck; move++ {
		over, overC := mostOverweight(g, w, ceil)
		if over == -1 {
			break
		}
		// Candidate vertices of the overweight part, best (least cut damage
		// per unit of weight shed) first.
		bestV, bestDst := -1, -1
		var bestCost float64
		for v, p := range part {
			if p != over || sizes[over] <= 1 {
				continue
			}
			if g.VWgt[v][overC] == 0 {
				continue // moving it would not help the violated constraint
			}
			connectivity(g, part, v, conn)
			internal := conn[over]
			for dst := 0; dst < k; dst++ {
				if dst == over {
					continue
				}
				if !fitsAfterMove(g, w, v, dst, ceil, overC) {
					continue
				}
				cost := float64(internal-conn[dst]) / float64(g.VWgt[v][overC])
				if bestV == -1 || cost < bestCost {
					bestV, bestDst, bestCost = v, dst, cost
				}
			}
		}
		if bestV == -1 {
			// No ceiling-respecting move exists. Force progress: shed the
			// least-damaging vertex to the part lightest on the violated
			// constraint, ignoring other ceilings (the next iterations can
			// repair them). Without this fallback, multi-constraint
			// instances wedge far from balance.
			dst := lightestPart(w, over, overC, st.frac)
			if dst == -1 {
				stuck = true
				break
			}
			for v, p := range part {
				if p != over || sizes[over] <= 1 || g.VWgt[v][overC] == 0 {
					continue
				}
				if forcedMoves[v] >= 2 {
					continue
				}
				connectivity(g, part, v, conn)
				cost := float64(conn[over]-conn[dst]) / float64(g.VWgt[v][overC])
				if bestV == -1 || cost < bestCost {
					bestV, bestDst, bestCost = v, dst, cost
				}
			}
			if bestV == -1 {
				stuck = true // truly stuck (single movable vertex, etc.)
				break
			}
			forcedMoves[bestV]++
		}
		if bestV != -1 {
			applyMove(g, part, w, sizes, bestV, bestDst)
			moves++
		}
	}
	return moves
}

// fillPhase pulls weight into under-floor parts; returns moves made.
func (st *rebalanceState) fillPhase(maxMoves int) int {
	g, part, k, w, sizes, conn, total := st.g, st.part, st.k, st.w, st.sizes, st.conn, st.total
	forcedMoves := make(map[int]int)
	moves := 0
	for move := 0; move < maxMoves; move++ {
		starve, starveC := mostUnderweight(g, w, k, st.tol, total, st.frac)
		if starve == -1 {
			return moves
		}
		donor := heaviestPart(w, starve, starveC, st.frac)
		if donor == -1 || sizes[donor] <= 1 {
			return moves
		}
		floor := (1 - st.tol) * float64(total[starveC]) * st.frac[donor]
		headroom := st.ceil[starve][starveC] - float64(w[starve][starveC])
		bestV := -1
		var bestCost float64
		for v, p := range part {
			if p != donor || g.VWgt[v][starveC] == 0 || forcedMoves[v] >= 2 {
				continue
			}
			// The donor must not fall below the floor itself, and the
			// incoming vertex must not blow the receiver's own ceiling.
			if float64(w[donor][starveC]-g.VWgt[v][starveC]) < floor {
				continue
			}
			if float64(g.VWgt[v][starveC]) > headroom {
				continue
			}
			connectivity(g, part, v, conn)
			cost := float64(conn[donor]-conn[starve]) / float64(g.VWgt[v][starveC])
			if bestV == -1 || cost < bestCost {
				bestV, bestCost = v, cost
			}
		}
		if bestV == -1 {
			return moves
		}
		forcedMoves[bestV]++
		applyMove(g, part, w, sizes, bestV, starve)
		moves++
	}
	return moves
}

// mostUnderweight returns the part and constraint with the largest relative
// shortfall below the floor (1-tol)·total·frac[p], or (-1, -1) if none.
func mostUnderweight(g *Graph, w [][]int64, k int, tol float64, total []int64, frac []float64) (int, int) {
	bestP, bestC := -1, -1
	var worst float64 = 1
	for p := range w {
		for c, x := range w[p] {
			if total[c] == 0 {
				continue
			}
			floor := (1 - tol) * float64(total[c]) * frac[p]
			if floor <= 0 {
				continue
			}
			r := float64(x) / floor
			if r < worst {
				worst, bestP, bestC = r, p, c
			}
		}
	}
	return bestP, bestC
}

// heaviestPart returns the part (other than exclude) with the largest weight
// on constraint c relative to its target fraction, or -1 when k == 1.
func heaviestPart(w [][]int64, exclude, c int, frac []float64) int {
	best := -1
	for p := range w {
		if p == exclude {
			continue
		}
		if best == -1 || float64(w[p][c])/frac[p] > float64(w[best][c])/frac[best] {
			best = p
		}
	}
	return best
}

// fitsAfterMove is like moveFits but tolerates the destination exceeding the
// ceiling on constraints other than the violated one by a small margin; this
// lets rebalance make progress on the constraint that matters most.
func fitsAfterMove(g *Graph, w [][]int64, v, dst int, ceil [][]float64, violated int) bool {
	for c, x := range g.VWgt[v] {
		limit := ceil[dst][c]
		if c != violated {
			limit *= 1.10
		}
		if float64(w[dst][c]+x) > limit {
			return false
		}
	}
	return true
}

// lightestPart returns the part (other than exclude) with the smallest
// weight on constraint c relative to its target fraction, or -1 when k == 1.
func lightestPart(w [][]int64, exclude, c int, frac []float64) int {
	best := -1
	for p := range w {
		if p == exclude {
			continue
		}
		if best == -1 || float64(w[p][c])/frac[p] < float64(w[best][c])/frac[best] {
			best = p
		}
	}
	return best
}

// mostOverweight returns the part and constraint with the largest relative
// ceiling violation, or (-1, -1) if everything is within bounds.
func mostOverweight(g *Graph, w [][]int64, ceil [][]float64) (int, int) {
	bestP, bestC := -1, -1
	var worst float64 = 1
	for p := range w {
		for c, x := range w[p] {
			if ceil[p][c] <= 0 {
				continue
			}
			r := float64(x) / ceil[p][c]
			if r > worst {
				worst, bestP, bestC = r, p, c
			}
		}
	}
	return bestP, bestC
}
