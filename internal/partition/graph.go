// Package partition implements a multilevel k-way graph partitioner in the
// style of METIS, which the paper uses to solve the network mapping problem.
//
// The partitioner supports:
//
//   - weighted vertices with multiple balance constraints per vertex
//     (multi-constraint partitioning, used by the PROFILE approach to balance
//     the load of several emulation stages at once),
//   - weighted edges with the usual minimize-edge-cut objective,
//   - the multi-objective edge-weight combination of Schloegel, Karypis and
//     Kumar that the paper applies in §2.3 to trade off the latency and
//     bandwidth objectives (see CombineObjectives).
//
// The pipeline is the classic three phases: coarsening by heavy-edge
// matching, initial partitioning by greedy graph growing, and uncoarsening
// with boundary Fiduccia–Mattheyses-style refinement.
package partition

import (
	"errors"
	"fmt"
)

// Edge is one half of an undirected edge: the neighbor index and the edge
// weight. Every undirected edge {u,v} appears both in Adj[u] and Adj[v] with
// equal weights.
type Edge struct {
	To  int
	Wgt int64
}

// Graph is an undirected graph with vector vertex weights and scalar edge
// weights. The zero value is an empty graph; use NewGraph or a Builder to
// construct one.
type Graph struct {
	// Ncon is the number of balance constraints, i.e. the length of every
	// vertex-weight vector. At least 1.
	Ncon int
	// VWgt[v] is the weight vector of vertex v; len(VWgt[v]) == Ncon.
	VWgt [][]int64
	// Adj[v] lists the edges incident to v.
	Adj [][]Edge
}

// NewGraph returns a graph with n vertices, ncon constraints (minimum 1), no
// edges, and all vertex weights 1.
func NewGraph(n, ncon int) *Graph {
	if ncon < 1 {
		ncon = 1
	}
	g := &Graph{
		Ncon: ncon,
		VWgt: make([][]int64, n),
		Adj:  make([][]Edge, n),
	}
	for v := range g.VWgt {
		w := make([]int64, ncon)
		for c := range w {
			w[c] = 1
		}
		g.VWgt[v] = w
	}
	return g
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.VWgt) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.Adj {
		total += len(a)
	}
	return total / 2
}

// AddEdge adds the undirected edge {u,v} with weight w. Self loops are
// ignored (they cannot be cut so they never affect a partition). If the edge
// already exists its weight is increased by w, keeping the multigraph
// collapsed.
func (g *Graph) AddEdge(u, v int, w int64) {
	if u == v {
		return
	}
	g.addHalf(u, v, w)
	g.addHalf(v, u, w)
}

func (g *Graph) addHalf(u, v int, w int64) {
	for i := range g.Adj[u] {
		if g.Adj[u][i].To == v {
			g.Adj[u][i].Wgt += w
			return
		}
	}
	g.Adj[u] = append(g.Adj[u], Edge{To: v, Wgt: w})
}

// EdgeWeight returns the weight of edge {u,v} and whether it exists.
func (g *Graph) EdgeWeight(u, v int) (int64, bool) {
	for _, e := range g.Adj[u] {
		if e.To == v {
			return e.Wgt, true
		}
	}
	return 0, false
}

// SetVWgt sets the weight vector of vertex v. The vector length must equal
// Ncon.
func (g *Graph) SetVWgt(v int, w ...int64) {
	if len(w) != g.Ncon {
		panic(fmt.Sprintf("partition: SetVWgt got %d weights, graph has %d constraints", len(w), g.Ncon))
	}
	copy(g.VWgt[v], w)
}

// TotalVWgt returns the per-constraint sum of all vertex weights.
func (g *Graph) TotalVWgt() []int64 {
	tot := make([]int64, g.Ncon)
	for _, w := range g.VWgt {
		for c, x := range w {
			tot[c] += x
		}
	}
	return tot
}

// Validate checks structural invariants: symmetric adjacency with matching
// weights, in-range neighbor indices, no self loops, positive constraint
// count, consistent weight-vector lengths, and non-negative weights.
func (g *Graph) Validate() error {
	if g.Ncon < 1 {
		return errors.New("partition: Ncon < 1")
	}
	if len(g.VWgt) != len(g.Adj) {
		return fmt.Errorf("partition: %d weight vectors vs %d adjacency lists", len(g.VWgt), len(g.Adj))
	}
	n := len(g.Adj)
	for v, w := range g.VWgt {
		if len(w) != g.Ncon {
			return fmt.Errorf("partition: vertex %d has %d weights, want %d", v, len(w), g.Ncon)
		}
		for c, x := range w {
			if x < 0 {
				return fmt.Errorf("partition: vertex %d constraint %d has negative weight %d", v, c, x)
			}
		}
	}
	for u, adj := range g.Adj {
		seen := make(map[int]bool, len(adj))
		for _, e := range adj {
			if e.To < 0 || e.To >= n {
				return fmt.Errorf("partition: vertex %d has out-of-range neighbor %d", u, e.To)
			}
			if e.To == u {
				return fmt.Errorf("partition: vertex %d has a self loop", u)
			}
			if seen[e.To] {
				return fmt.Errorf("partition: duplicate edge %d-%d", u, e.To)
			}
			seen[e.To] = true
			if e.Wgt < 0 {
				return fmt.Errorf("partition: edge %d-%d has negative weight %d", u, e.To, e.Wgt)
			}
			back, ok := g.EdgeWeight(e.To, u)
			if !ok {
				return fmt.Errorf("partition: edge %d-%d has no reverse edge", u, e.To)
			}
			if back != e.Wgt {
				return fmt.Errorf("partition: edge %d-%d weight %d != reverse weight %d", u, e.To, e.Wgt, back)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	cp := &Graph{
		Ncon: g.Ncon,
		VWgt: make([][]int64, len(g.VWgt)),
		Adj:  make([][]Edge, len(g.Adj)),
	}
	for v, w := range g.VWgt {
		cp.VWgt[v] = append([]int64(nil), w...)
	}
	for v, a := range g.Adj {
		cp.Adj[v] = append([]Edge(nil), a...)
	}
	return cp
}

// EdgeWeightSet holds an alternative weight for every adjacency slot of a
// graph: Set[u][i] is the weight for edge g.Adj[u][i]. It is the vehicle for
// expressing multiple edge-weight objectives over a single graph structure.
type EdgeWeightSet [][]int64

// NewEdgeWeightSet allocates a weight set shaped like g's adjacency, all
// weights zero.
func NewEdgeWeightSet(g *Graph) EdgeWeightSet {
	s := make(EdgeWeightSet, len(g.Adj))
	for v, a := range g.Adj {
		s[v] = make([]int64, len(a))
	}
	return s
}

// SetSymmetric sets the weight of edge {u,v} in the set (both directions).
// It panics if the edge does not exist in g.
func (s EdgeWeightSet) SetSymmetric(g *Graph, u, v int, w int64) {
	if !s.setHalf(g, u, v, w) || !s.setHalf(g, v, u, w) {
		panic(fmt.Sprintf("partition: EdgeWeightSet.SetSymmetric: edge %d-%d not in graph", u, v))
	}
}

func (s EdgeWeightSet) setHalf(g *Graph, u, v int, w int64) bool {
	for i, e := range g.Adj[u] {
		if e.To == v {
			s[u][i] = w
			return true
		}
	}
	return false
}

// AddSymmetric adds w to the weight of edge {u,v} in the set (both
// directions). It panics if the edge does not exist in g.
func (s EdgeWeightSet) AddSymmetric(g *Graph, u, v int, w int64) {
	if !s.addHalf(g, u, v, w) || !s.addHalf(g, v, u, w) {
		panic(fmt.Sprintf("partition: EdgeWeightSet.AddSymmetric: edge %d-%d not in graph", u, v))
	}
}

func (s EdgeWeightSet) addHalf(g *Graph, u, v int, w int64) bool {
	for i, e := range g.Adj[u] {
		if e.To == v {
			s[u][i] += w
			return true
		}
	}
	return false
}

// Weights extracts the current edge weights of g as an EdgeWeightSet.
func (g *Graph) Weights() EdgeWeightSet {
	s := make(EdgeWeightSet, len(g.Adj))
	for v, a := range g.Adj {
		row := make([]int64, len(a))
		for i, e := range a {
			row[i] = e.Wgt
		}
		s[v] = row
	}
	return s
}

// WithWeights returns a copy of g whose edge weights are replaced by s.
// The shape of s must match g's adjacency.
func (g *Graph) WithWeights(s EdgeWeightSet) *Graph {
	cp := g.Clone()
	if len(s) != len(cp.Adj) {
		panic("partition: WithWeights: weight set shape mismatch")
	}
	for v := range cp.Adj {
		if len(s[v]) != len(cp.Adj[v]) {
			panic("partition: WithWeights: weight set shape mismatch")
		}
		for i := range cp.Adj[v] {
			cp.Adj[v][i].Wgt = s[v][i]
		}
	}
	return cp
}
