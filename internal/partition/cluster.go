package partition

import (
	"math/rand"
	"sort"
)

// Cluster groups g's vertices into at most k clusters and returns a label
// per vertex in [0, clusters). It reuses the multilevel partitioner's first
// phase: repeated heavy-edge-match coarsening, which only ever merges
// vertices across an edge — so every cluster is internally connected (on a
// connected graph) and heavy (strong-affinity) edges collapse first. When
// matching stalls above k (star-like graphs), the remaining coarse vertices
// are merged greedily, lightest first, into their most strongly connected
// neighbor.
//
// Coarse-vertex weights are capped at 4·total/k per constraint, keeping the
// clusters roughly balanced — the property that makes two-level routing's
// Σ cluster² memory close to its n²/k minimum.
//
// Deterministic for a given (g, k, seed).
func Cluster(g *Graph, k int, seed int64) []int {
	n := g.NumVertices()
	labels := make([]int, n)
	for v := range labels {
		labels[v] = v
	}
	if k < 1 {
		k = 1
	}
	if n <= k {
		return labels
	}
	rng := rand.New(rand.NewSource(seed))
	total := g.TotalVWgt()
	maxW := make([]int64, g.Ncon)
	for c, t := range total {
		maxW[c] = 4 * t / int64(k)
	}
	cur := g
	for cur.NumVertices() > k {
		match := heavyEdgeMatch(cur, rng, maxW)
		lv := coarsenFast(cur, match)
		if lv.graph.NumVertices() >= cur.NumVertices() {
			break // no progress at all
		}
		for v := range labels {
			labels[v] = lv.fineToCoarse[labels[v]]
		}
		stalled := lv.graph.NumVertices() > cur.NumVertices()*92/100
		cur = lv.graph
		if stalled {
			break
		}
	}
	merged := mergeDown(cur, k)
	// Compose, then compact to a dense [0, clusters) range in root order.
	compact := make(map[int]int)
	for v := range labels {
		root := merged[labels[v]]
		if _, ok := compact[root]; !ok {
			compact[root] = 0
		}
	}
	roots := make([]int, 0, len(compact))
	for root := range compact {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	for i, root := range roots {
		compact[root] = i
	}
	for v := range labels {
		labels[v] = compact[merged[labels[v]]]
	}
	return labels
}

// mergeDown reduces g's vertices to at most k groups by greedy merging,
// returning a root label per vertex. Identity when g is already small
// enough.
func mergeDown(g *Graph, k int) []int {
	c := g.NumVertices()
	root := make([]int, c)
	for v := range root {
		root[v] = v
	}
	if c <= k {
		return root
	}
	var find func(int) int
	find = func(v int) int {
		if root[v] != v {
			root[v] = find(root[v])
		}
		return root[v]
	}
	weight := make([]int64, c)
	for v := 0; v < c; v++ {
		if g.Ncon > 0 {
			weight[v] = g.VWgt[v][0]
		} else {
			weight[v] = 1
		}
	}
	alive := c
	conn := make(map[int]int64)
	for alive > k {
		// Lightest live root.
		s := -1
		for v := 0; v < c; v++ {
			if find(v) == v && (s == -1 || weight[v] < weight[s] || (weight[v] == weight[s] && v < s)) {
				s = v
			}
		}
		// Its most strongly connected neighboring root.
		clear(conn)
		for v := 0; v < c; v++ {
			rv := find(v)
			for _, e := range g.Adj[v] {
				ru := find(e.To)
				if rv == ru {
					continue
				}
				if rv == s {
					conn[ru] += e.Wgt
				} else if ru == s {
					conn[rv] += e.Wgt
				}
			}
		}
		t := -1
		var tw int64 = -1
		for u, w := range conn {
			if w > tw || (w == tw && (t == -1 || u < t)) {
				t, tw = u, w
			}
		}
		if t == -1 {
			// s is isolated (disconnected graph): fold it into the lightest
			// other root so the cluster count still lands at k.
			for v := 0; v < c; v++ {
				if v != s && find(v) == v && (t == -1 || weight[v] < weight[t] || (weight[v] == weight[t] && v < t)) {
					t = v
				}
			}
			if t == -1 {
				break
			}
		}
		root[s] = t
		weight[t] += weight[s]
		alive--
	}
	for v := range root {
		root[v] = find(v)
	}
	return root
}
