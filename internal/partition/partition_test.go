package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartitionErrors(t *testing.T) {
	g := ringGraph(4, 1)
	if _, err := Partition(g, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Partition(g, 5, Options{}); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := Partition(NewGraph(0, 1), 1, Options{}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestPartitionTrivial(t *testing.T) {
	g := ringGraph(6, 1)
	part, err := Partition(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("k=1 produced nonzero part")
		}
	}
	part, err = Partition(g, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, part, 6); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRingOptimal(t *testing.T) {
	// A 16-cycle split in 2 has optimal cut 2; the partitioner should find it.
	g := ringGraph(16, 1)
	part, err := Partition(g, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, part, 2); err != nil {
		t.Fatal(err)
	}
	if cut := EdgeCut(g, part); cut != 2 {
		t.Errorf("ring cut = %d, want 2", cut)
	}
	if b := Balance(g, part, 2)[0]; b > 1.05+1e-9 {
		t.Errorf("ring balance = %v, want <= 1.05", b)
	}
}

func TestPartitionGridQuality(t *testing.T) {
	// 8x8 grid into 4 parts: optimal cut is 16 (two straight bisections);
	// accept anything within 1.75x of optimal.
	g := gridGraph(8, 8)
	part, err := Partition(g, 4, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, part, 4); err != nil {
		t.Fatal(err)
	}
	cut := EdgeCut(g, part)
	if cut > 28 {
		t.Errorf("8x8 grid 4-way cut = %d, want <= 28", cut)
	}
	if b := Balance(g, part, 4)[0]; b > 1.05+1e-9 {
		t.Errorf("grid balance = %v, want <= 1.05", b)
	}
}

func TestPartitionTwoCliquesBridge(t *testing.T) {
	// Two 10-cliques joined by a single light edge: the bridge must be cut.
	g := NewGraph(20, 1)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			g.AddEdge(i, j, 10)
			g.AddEdge(10+i, 10+j, 10)
		}
	}
	g.AddEdge(0, 10, 1)
	part, err := Partition(g, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cut := EdgeCut(g, part); cut != 1 {
		t.Errorf("bridge cut = %d, want 1", cut)
	}
	if part[0] == part[10] {
		t.Error("cliques not separated")
	}
	for i := 1; i < 10; i++ {
		if part[i] != part[0] || part[10+i] != part[10] {
			t.Fatal("clique split internally")
		}
	}
}

func TestPartitionRespectsHeavyEdges(t *testing.T) {
	// A path a-b-c-d with weights 1, 100, 1: bisection must cut a light edge.
	g := NewGraph(4, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 100)
	g.AddEdge(2, 3, 1)
	part, err := Partition(g, 2, Options{Seed: 1, Imbalance: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if part[1] != part[2] {
		t.Error("heavy edge 1-2 was cut")
	}
}

func TestPartitionBalanceLargerGraphs(t *testing.T) {
	for _, tc := range []struct {
		n, extra, k int
		seed        int64
	}{
		{100, 150, 3, 1},
		{200, 300, 5, 2},
		{400, 700, 8, 3},
		{352, 500, 20, 4}, // the Table-2 scale: ~200 routers + hosts on 20 engines
	} {
		g := randomGraph(tc.n, tc.extra, 1, tc.seed)
		part, err := Partition(g, tc.k, Options{Seed: tc.seed})
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if err := Verify(g, part, tc.k); err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if b := Balance(g, part, tc.k)[0]; b > 1.15 {
			t.Errorf("n=%d k=%d balance = %v, want <= 1.15", tc.n, tc.k, b)
		}
	}
}

func TestPartitionDeterminism(t *testing.T) {
	g := randomGraph(150, 250, 2, 9)
	a, err := Partition(g, 6, Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, 6, Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestPartitionMultiConstraint(t *testing.T) {
	// Two constraints with anti-correlated weights: vertices heavy on
	// constraint 0 are light on constraint 1 and vice versa. Both must
	// balance simultaneously.
	g := randomGraph(120, 200, 2, 5)
	for v := 0; v < 120; v++ {
		if v%2 == 0 {
			g.SetVWgt(v, 10, 1)
		} else {
			g.SetVWgt(v, 1, 10)
		}
	}
	part, err := Partition(g, 4, Options{Seed: 6, Imbalance: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	bal := Balance(g, part, 4)
	for c, b := range bal {
		if b > 1.25 {
			t.Errorf("constraint %d balance = %v, want <= 1.25", c, b)
		}
	}
}

func TestPartitionZeroTotalConstraint(t *testing.T) {
	// A constraint that is zero everywhere must not wedge the partitioner.
	g := ringGraph(24, 2)
	for v := 0; v < 24; v++ {
		g.SetVWgt(v, 1, 0)
	}
	part, err := Partition(g, 3, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, part, 3); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDisconnectedGraph(t *testing.T) {
	// Two disjoint rings; partitioner must still produce a valid balanced
	// 2-way split (ideally cut 0).
	g := NewGraph(20, 1)
	for v := 0; v < 10; v++ {
		g.AddEdge(v, (v+1)%10, 1)
		g.AddEdge(10+v, 10+(v+1)%10, 1)
	}
	part, err := Partition(g, 2, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, part, 2); err != nil {
		t.Fatal(err)
	}
	if cut := EdgeCut(g, part); cut > 2 {
		t.Errorf("disconnected cut = %d, want <= 2", cut)
	}
}

func TestPartitionPropertyValidAssignment(t *testing.T) {
	// Property: for random graphs and k, Partition always returns a complete
	// assignment with every part nonempty and balance within a loose bound.
	f := func(seed int64, kRaw uint8, nRaw uint8) bool {
		n := 20 + int(nRaw)%180
		k := 2 + int(kRaw)%7
		g := randomGraph(n, n, 1, seed)
		part, err := Partition(g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		if Verify(g, part, k) != nil {
			return false
		}
		return Balance(g, part, k)[0] <= 1.6
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(123))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEdgeCutMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(30, 40, 1, seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5f))
		part := make([]int, 30)
		for v := range part {
			part[v] = rng.Intn(3)
		}
		var want int64
		for u := range g.Adj {
			for _, e := range g.Adj[u] {
				if part[u] != part[e.To] {
					want += e.Wgt
				}
			}
		}
		want /= 2
		return EdgeCut(g, part) == want
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(321))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestVerifyRejects(t *testing.T) {
	g := ringGraph(4, 1)
	if err := Verify(g, []int{0, 1}, 2); err == nil {
		t.Error("short assignment accepted")
	}
	if err := Verify(g, []int{0, 1, 2, 0}, 2); err == nil {
		t.Error("out-of-range part accepted")
	}
	if err := Verify(g, []int{0, 0, 0, 0}, 2); err == nil {
		t.Error("empty part accepted")
	}
	if err := Verify(g, []int{0, 0, 1, 1}, 2); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
}

func TestBalanceReporting(t *testing.T) {
	g := NewGraph(4, 1)
	g.SetVWgt(0, 3)
	g.SetVWgt(1, 1)
	g.SetVWgt(2, 1)
	g.SetVWgt(3, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	part := []int{0, 0, 1, 1}
	// total 6, avg 3; part0 weighs 4 -> balance 4/3.
	b := Balance(g, part, 2)[0]
	if b < 1.33 || b > 1.34 {
		t.Errorf("balance = %v, want ~1.333", b)
	}
}

func TestCutWeightOf(t *testing.T) {
	g := ringGraph(4, 1)
	ws := NewEdgeWeightSet(g)
	ws.SetSymmetric(g, 0, 1, 7)
	ws.SetSymmetric(g, 2, 3, 2)
	part := []int{0, 1, 1, 0} // cuts edges 0-1, 1-2(w0), 2-3, 3-0(w0)
	if got := CutWeightOf(g, ws, part); got != 9 {
		t.Errorf("CutWeightOf = %d, want 9", got)
	}
}

func TestPartitionStressManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := randomGraph(250, 400, 1, 99)
	for seed := int64(0); seed < 10; seed++ {
		part, err := Partition(g, 7, Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Verify(g, part, 7); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestPartitionFractions(t *testing.T) {
	// Target 50/25/25: part 0 should end up with about half the weight.
	g := randomGraph(120, 200, 1, 21)
	frac := []float64{0.5, 0.25, 0.25}
	part, err := Partition(g, 3, Options{Seed: 2, PartFractions: frac})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, part, 3); err != nil {
		t.Fatal(err)
	}
	w := PartWeights(g, part, 3)
	total := g.TotalVWgt()[0]
	for p, f := range frac {
		share := float64(w[p][0]) / float64(total)
		if share < f*0.80 || share > f*1.20 {
			t.Errorf("part %d share = %.2f, want ~%.2f", p, share, f)
		}
	}
}

func TestPartitionFractionsInvalidIgnored(t *testing.T) {
	// Wrong length or non-normalized fractions fall back to uniform.
	g := randomGraph(60, 90, 1, 22)
	for _, frac := range [][]float64{
		{0.5, 0.5},      // wrong length for k=3
		{0.9, 0.9, 0.9}, // doesn't sum to 1
		{1.0, 0.0, 0.0}, // zero entries
	} {
		part, err := Partition(g, 3, Options{Seed: 1, PartFractions: frac})
		if err != nil {
			t.Fatal(err)
		}
		if b := Balance(g, part, 3)[0]; b > 1.25 {
			t.Errorf("fallback-to-uniform balance = %v for frac %v", b, frac)
		}
	}
}

func TestImproveWithFractions(t *testing.T) {
	g := randomGraph(100, 150, 1, 23)
	frac := []float64{0.6, 0.2, 0.2}
	part, err := Partition(g, 3, Options{Seed: 3, PartFractions: frac})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Improve(g, part, 3, Options{Seed: 4, PartFractions: frac}); err != nil {
		t.Fatal(err)
	}
	w := PartWeights(g, part, 3)
	total := g.TotalVWgt()[0]
	if share := float64(w[0][0]) / float64(total); share < 0.45 {
		t.Errorf("part 0 share after Improve = %.2f, want ~0.6", share)
	}
}
