package partition_test

import (
	"fmt"

	"repro/internal/partition"
)

// Example partitions a small weighted graph into two balanced halves.
func Example() {
	// Two triangles joined by one light edge.
	g := partition.NewGraph(6, 1)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 5)
	g.AddEdge(0, 2, 5)
	g.AddEdge(3, 4, 5)
	g.AddEdge(4, 5, 5)
	g.AddEdge(3, 5, 5)
	g.AddEdge(2, 3, 1) // the bridge

	part, err := partition.Partition(g, 2, partition.Options{Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("cut:", partition.EdgeCut(g, part))
	fmt.Println("separated:", part[0] != part[5])
	// Output:
	// cut: 1
	// separated: true
}

// ExampleCombineObjectives demonstrates the paper's §2.3 multi-objective
// normalization: two edge-weight objectives are scaled by their own optimal
// cuts before being mixed with the 6:4 priority.
func ExampleCombineObjectives() {
	g := partition.NewGraph(4, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)

	latency := g.Weights()   // objective one: uniform
	bandwidth := g.Weights() // objective two: uniform too, for the demo

	_, cuts, err := partition.CombineObjectives(
		g,
		[]partition.EdgeWeightSet{latency, bandwidth},
		[]float64{0.6, 0.4},
		2, partition.Options{Seed: 1},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("single-objective cuts:", cuts)
	// Output:
	// single-objective cuts: [2 2]
}
