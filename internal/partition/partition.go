package partition

import (
	"errors"
	"fmt"
	"math/rand"
)

// Options controls the multilevel partitioner. The zero value selects
// sensible defaults for every field.
type Options struct {
	// Seed drives all randomized choices (matching order, growing seeds,
	// refinement visit order). Identical inputs and seeds give identical
	// partitions.
	Seed int64
	// Imbalance is the tolerated per-constraint load imbalance ε: every part
	// may weigh at most (1+ε)·total/k on every constraint. Default 0.05.
	Imbalance float64
	// CoarsenTo stops coarsening once the graph has at most this many
	// vertices. Default max(20·k, 120).
	CoarsenTo int
	// Restarts is the number of random initial partitions tried on the
	// coarsest graph. Default 8.
	Restarts int
	// RefinePasses bounds the refinement passes per level. Default 10.
	RefinePasses int
	// Strategy selects the algorithm: KWay (default) or RecursiveBisection.
	Strategy Strategy
	// PartFractions optionally sets heterogeneous target part weights
	// (METIS's tpwgts): part p should receive PartFractions[p] of every
	// constraint's total. len must equal k and entries sum to 1; nil means
	// uniform. Used to map onto simulation engines of unequal speed — the
	// capability the paper's §5 notes MaSSF lacked. Ignored by
	// RecursiveBisection.
	PartFractions []float64
}

func (o Options) withDefaults(k int) Options {
	if o.Imbalance <= 0 {
		o.Imbalance = 0.05
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 20 * k
		if o.CoarsenTo < 120 {
			o.CoarsenTo = 120
		}
	}
	if o.Restarts <= 0 {
		o.Restarts = 8
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 10
	}
	return o
}

// Partition splits g into k parts, minimizing the weight of cut edges while
// keeping every balance constraint within Options.Imbalance of perfect. It
// returns part[v] ∈ [0,k) for every vertex.
//
// Errors: k < 1, or k > number of vertices (a part would necessarily be
// empty).
func Partition(g *Graph, k int, opts Options) ([]int, error) {
	if opts.Strategy == RecursiveBisection && k > 2 {
		return PartitionRB(g, k, opts)
	}
	n := g.NumVertices()
	switch {
	case k < 1:
		return nil, fmt.Errorf("partition: k = %d, must be >= 1", k)
	case k > n:
		return nil, fmt.Errorf("partition: k = %d exceeds vertex count %d", k, n)
	case n == 0:
		return nil, errors.New("partition: empty graph")
	case k == 1:
		return make([]int, n), nil
	case k == n:
		part := make([]int, n)
		for v := range part {
			part[v] = v
		}
		return part, nil
	}

	opts = opts.withDefaults(k)
	rng := rand.New(rand.NewSource(opts.Seed))
	frac := uniformFractions(k, opts.PartFractions)

	// Phase 1: coarsen.
	levels := buildHierarchy(g, opts.CoarsenTo, rng)
	coarsest := g
	if len(levels) > 0 {
		coarsest = levels[len(levels)-1].graph
	}

	// Phase 2: initial partition on the coarsest graph, best of Restarts.
	part := initialPartition(coarsest, k, opts, rng)

	// Phase 3: uncoarsen, refining at every level.
	for i := len(levels) - 1; i >= 0; i-- {
		finer := g
		if i > 0 {
			finer = levels[i-1].graph
		}
		part = project(part, levels[i].fineToCoarse, finer.NumVertices())
		refine(finer, part, k, opts.Imbalance, opts.RefinePasses, frac, rng)
		rebalance(finer, part, k, opts.Imbalance, frac)
	}
	if len(levels) == 0 {
		refine(g, part, k, opts.Imbalance, opts.RefinePasses, frac, rng)
		rebalance(g, part, k, opts.Imbalance, frac)
	}
	// Final polish: anneal the balance ceiling downward. Refinement parks
	// just under whatever ceiling it is given, so a single tolerance leaves
	// the result at (1+ε) rather than near-perfect balance; tightening in
	// steps (ending at METIS's k-way default of 3%) converges close to even
	// without wedging the way a tight ceiling from the start does.
	target := opts.Imbalance
	if target > 0.03 {
		target = 0.03
	}
	for _, eps := range []float64{opts.Imbalance, (opts.Imbalance + target) / 2, target} {
		if eps > opts.Imbalance {
			continue
		}
		rebalance(g, part, k, eps, frac)
		refine(g, part, k, eps, opts.RefinePasses, frac, rng)
	}
	rebalance(g, part, k, target, frac)
	ensureNonEmpty(g, part, k)
	return part, nil
}

// initialPartition tries Restarts greedy growings of the coarsest graph and
// keeps the best result: feasible (within balance) partitions are preferred,
// then lower edge cut, then lower max-norm imbalance.
func initialPartition(g *Graph, k int, opts Options, rng *rand.Rand) []int {
	var best []int
	var bestCut int64
	var bestNorm float64
	bestFeasible := false

	frac := uniformFractions(k, opts.PartFractions)
	for r := 0; r < opts.Restarts; r++ {
		part := greedyGrow(g, k, frac, rng)
		refine(g, part, k, opts.Imbalance, opts.RefinePasses, frac, rng)
		rebalance(g, part, k, opts.Imbalance, frac)
		cut := EdgeCut(g, part)
		norm := maxNorm(g, part, k, frac)
		feasible := norm <= 1+opts.Imbalance+1e-9
		better := false
		switch {
		case best == nil:
			better = true
		case feasible && !bestFeasible:
			better = true
		case feasible == bestFeasible && cut < bestCut:
			better = true
		case feasible == bestFeasible && cut == bestCut && norm < bestNorm:
			better = true
		}
		if better {
			best = append(best[:0:0], part...)
			bestCut, bestNorm, bestFeasible = cut, norm, feasible
		}
	}
	return best
}

// project maps a coarse partition back to the finer graph.
func project(coarsePart []int, fineToCoarse []int, fineN int) []int {
	part := make([]int, fineN)
	for v := 0; v < fineN; v++ {
		part[v] = coarsePart[fineToCoarse[v]]
	}
	return part
}

// ensureNonEmpty guarantees every part owns at least one vertex by donating
// the least-connected vertex of the largest part to each empty part. This is
// a rare fallback (refinement never empties parts) but projection from a
// pathological coarse partition could.
func ensureNonEmpty(g *Graph, part []int, k int) {
	sizes := partSizes(part, k)
	for p := 0; p < k; p++ {
		if sizes[p] > 0 {
			continue
		}
		// Donate from the largest part.
		donor := 0
		for q := 1; q < k; q++ {
			if sizes[q] > sizes[donor] {
				donor = q
			}
		}
		bestV := -1
		var bestExt int64
		for v, q := range part {
			if q != donor {
				continue
			}
			var internal int64
			for _, e := range g.Adj[v] {
				if part[e.To] == donor {
					internal += e.Wgt
				}
			}
			if bestV == -1 || internal < bestExt {
				bestV, bestExt = v, internal
			}
		}
		if bestV >= 0 {
			part[bestV] = p
			sizes[donor]--
			sizes[p]++
		}
	}
}

// maxNorm returns the worst per-constraint ratio of actual part weight to
// its target total·frac[p]. 1.0 means perfect balance.
func maxNorm(g *Graph, part []int, k int, frac []float64) float64 {
	w := partWeights(g, part, k)
	total := g.TotalVWgt()
	worst := 0.0
	for c, t := range total {
		if t == 0 {
			continue
		}
		for p := range w {
			r := float64(w[p][c]) / (float64(t) * frac[p])
			if r > worst {
				worst = r
			}
		}
	}
	return worst
}
