package partition

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadGraphUnweighted(t *testing.T) {
	// The METIS manual's example style: 5 vertices, 6 edges, no weights.
	in := `% a comment
5 6
2 3
1 3 4
1 2 5
2 5
3 4
`
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || g.NumEdges() != 6 {
		t.Fatalf("got %d vertices %d edges, want 5/6", g.NumVertices(), g.NumEdges())
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 1 {
		t.Errorf("edge 0-1 = %d,%v, want 1,true", w, ok)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReadGraphWeighted(t *testing.T) {
	in := `3 2 011 2
5 7 2 9
1 3 1 9 3 4
2 2 2 4
`
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Ncon != 2 {
		t.Fatalf("Ncon = %d, want 2", g.Ncon)
	}
	if g.VWgt[0][0] != 5 || g.VWgt[0][1] != 7 {
		t.Errorf("VWgt[0] = %v, want [5 7]", g.VWgt[0])
	}
	if w, _ := g.EdgeWeight(0, 1); w != 9 {
		t.Errorf("edge 0-1 weight = %d, want 9", w)
	}
	if w, _ := g.EdgeWeight(1, 2); w != 4 {
		t.Errorf("edge 1-2 weight = %d, want 4", w)
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"badHeader", "a b\n"},
		{"tooManyFields", "1 0 0 1 9\n"},
		{"badFmt", "2 1 019\n1 2\n2 1\n"},
		{"badNcon", "1 0 011 0\n1\n"},
		{"neighborRange", "2 1\n3\n1\n"},
		{"missingEdgeWeight", "2 1 001\n2\n1 5\n"},
		{"edgeCountMismatch", "3 5\n2\n1 3\n2\n"},
		{"truncated", "3 2\n2\n"},
		{"negativeVWgt", "1 0 010\n-3\n"},
	}
	for _, c := range cases {
		if _, err := ReadGraph(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g := randomGraph(40, 60, 2, 13)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
			g.NumVertices(), g.NumEdges(), g2.NumVertices(), g2.NumEdges())
	}
	for v := range g.VWgt {
		for c := range g.VWgt[v] {
			if g.VWgt[v][c] != g2.VWgt[v][c] {
				t.Fatalf("vertex weight changed at %d/%d", v, c)
			}
		}
	}
	for u := range g.Adj {
		for _, e := range g.Adj[u] {
			w, ok := g2.EdgeWeight(u, e.To)
			if !ok || w != e.Wgt {
				t.Fatalf("edge %d-%d changed: %d -> %d (ok=%v)", u, e.To, e.Wgt, w, ok)
			}
		}
	}
}

func TestPartitionFileRoundTrip(t *testing.T) {
	part := []int{0, 2, 1, 1, 0}
	var buf bytes.Buffer
	if err := WritePartition(&buf, part); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPartition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(part) {
		t.Fatalf("length %d, want %d", len(got), len(part))
	}
	for i := range part {
		if got[i] != part[i] {
			t.Fatalf("part[%d] = %d, want %d", i, got[i], part[i])
		}
	}
}

func TestReadPartitionErrors(t *testing.T) {
	if _, err := ReadPartition(strings.NewReader("0\nx\n")); err == nil {
		t.Error("bad part id accepted")
	}
	if _, err := ReadPartition(strings.NewReader("-1\n")); err == nil {
		t.Error("negative part id accepted")
	}
}

func TestReadGraphSelfLoopDropped(t *testing.T) {
	// Vertex 1 lists itself; loop must be dropped silently (half-edge count
	// still includes it, so the header says 2 edges -> 4 halves: 1-1 twice
	// would be 2 halves... use explicit instance below).
	in := "2 2\n1 1 2\n1\n"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1 (self loop dropped)", g.NumEdges())
	}
}
