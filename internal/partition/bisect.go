package partition

import (
	"fmt"
	"math/rand"
)

// Strategy selects the partitioning algorithm.
type Strategy int

const (
	// KWay is the default: direct multilevel k-way partitioning.
	KWay Strategy = iota
	// RecursiveBisection splits the graph in two (with weight targets
	// proportional to the part counts on each side), then recurses — the
	// classic METIS pmetis approach. Often slightly better cuts for small
	// k, slower for large k.
	RecursiveBisection
)

// PartitionRB partitions g into k parts by recursive bisection.
func PartitionRB(g *Graph, k int, opts Options) ([]int, error) {
	n := g.NumVertices()
	switch {
	case k < 1:
		return nil, fmt.Errorf("partition: k = %d, must be >= 1", k)
	case k > n:
		return nil, fmt.Errorf("partition: k = %d exceeds vertex count %d", k, n)
	case n == 0:
		return nil, fmt.Errorf("partition: empty graph")
	}
	opts = opts.withDefaults(k)

	part := make([]int, n)
	vertices := make([]int, n)
	for v := range vertices {
		vertices[v] = v
	}
	if err := bisectInto(g, vertices, part, 0, k, opts); err != nil {
		return nil, err
	}
	// A final k-way polish over the whole assignment knits the bisection
	// boundaries together.
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5bd1e995))
	refine(g, part, k, opts.Imbalance, opts.RefinePasses, nil, rng)
	rebalance(g, part, k, opts.Imbalance, nil)
	ensureNonEmpty(g, part, k)
	return part, nil
}

// bisectInto assigns parts [base, base+k) to the given vertex subset.
func bisectInto(g *Graph, vertices []int, part []int, base, k int, opts Options) error {
	if k == 1 {
		for _, v := range vertices {
			part[v] = base
		}
		return nil
	}
	kLeft := k / 2
	kRight := k - kLeft

	// Build the induced subgraph.
	sub, toSub := induce(g, vertices)

	// Bisect with weight targets kLeft:kRight. Encode by scaling: partition
	// into 2 with the constraint-vector trick — replicate vertices? Simpler:
	// use Partition with k=2 on a graph whose total is split evenly only
	// when kLeft == kRight; for odd splits, pad the lighter side's target by
	// adjusting the tolerance asymmetrically. We approximate by running a
	// 2-way partition and then shifting weight until the side ratios match
	// kLeft:kRight within tolerance.
	bisectOpts := opts
	bisectOpts.Strategy = KWay // the 2-way base case is direct multilevel
	sp, err := Partition(sub, 2, bisectOpts)
	if err != nil {
		return err
	}
	if kLeft != kRight {
		skewBisection(sub, sp, kLeft, kRight, opts)
	}

	var left, right []int
	for i, v := range vertices {
		if sp[toSub[i]] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	if len(left) < kLeft || len(right) < kRight {
		// Degenerate bisection: fall back to an arbitrary feasible split.
		all := append(append([]int(nil), left...), right...)
		left = all[:len(all)*kLeft/k]
		right = all[len(all)*kLeft/k:]
	}
	subOpts := opts
	subOpts.Seed = opts.Seed*2 + 1
	if err := bisectInto(g, left, part, base, kLeft, subOpts); err != nil {
		return err
	}
	subOpts.Seed = opts.Seed*2 + 2
	return bisectInto(g, right, part, base+kLeft, kRight, subOpts)
}

// induce builds the subgraph of g on the given vertices. Returns the
// subgraph and the identity position mapping (toSub[i] = i, kept for
// clarity at call sites).
func induce(g *Graph, vertices []int) (*Graph, []int) {
	pos := make(map[int]int, len(vertices))
	for i, v := range vertices {
		pos[v] = i
	}
	sub := NewGraph(len(vertices), g.Ncon)
	toSub := make([]int, len(vertices))
	for i, v := range vertices {
		toSub[i] = i
		copy(sub.VWgt[i], g.VWgt[v])
		for _, e := range g.Adj[v] {
			if j, ok := pos[e.To]; ok && v < e.To {
				sub.AddEdge(i, j, e.Wgt)
			}
		}
	}
	return sub, toSub
}

// skewBisection shifts boundary vertices from side 0 to side 1 (or back)
// until the weight ratio approximates kLeft:kRight.
func skewBisection(sub *Graph, sp []int, kLeft, kRight int, opts Options) {
	total := sub.TotalVWgt()[0]
	targetLeft := float64(total) * float64(kLeft) / float64(kLeft+kRight)
	for iter := 0; iter < sub.NumVertices(); iter++ {
		var leftW int64
		counts := [2]int{}
		for v, p := range sp {
			counts[p]++
			if p == 0 {
				leftW += sub.VWgt[v][0]
			}
		}
		diff := float64(leftW) - targetLeft
		tol := (opts.Imbalance + 0.02) * targetLeft
		if diff > -tol && diff < tol {
			return
		}
		from, to := 0, 1
		if diff < 0 {
			from, to = 1, 0
		}
		if counts[from] <= 1 {
			return
		}
		// Move the boundary vertex with the least cut damage.
		bestV := -1
		var bestCost int64
		for v, p := range sp {
			if p != from || sub.VWgt[v][0] == 0 {
				continue
			}
			var internal, external int64
			for _, e := range sub.Adj[v] {
				if sp[e.To] == from {
					internal += e.Wgt
				} else {
					external += e.Wgt
				}
			}
			cost := internal - external
			if bestV == -1 || cost < bestCost {
				bestV, bestCost = v, cost
			}
		}
		if bestV == -1 {
			return
		}
		sp[bestV] = to
	}
}
