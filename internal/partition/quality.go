package partition

import "fmt"

// EdgeCut returns the total weight of edges whose endpoints lie in different
// parts.
func EdgeCut(g *Graph, part []int) int64 {
	var cut int64
	for u, adj := range g.Adj {
		for _, e := range adj {
			if u < e.To && part[u] != part[e.To] {
				cut += e.Wgt
			}
		}
	}
	return cut
}

// CutEdges returns the number of distinct undirected edges crossing the
// partition (unweighted count).
func CutEdges(g *Graph, part []int) int {
	count := 0
	for u, adj := range g.Adj {
		for _, e := range adj {
			if u < e.To && part[u] != part[e.To] {
				count++
			}
		}
	}
	return count
}

// CutWeightOf returns the cut of the partition measured under an alternative
// edge-weight set (e.g. one objective of a multi-objective problem).
func CutWeightOf(g *Graph, ws EdgeWeightSet, part []int) int64 {
	var cut int64
	for u, adj := range g.Adj {
		for i, e := range adj {
			if u < e.To && part[u] != part[e.To] {
				cut += ws[u][i]
			}
		}
	}
	return cut
}

// Balance returns, for each constraint, max over parts of
// partWeight/(total/k) — the max-norm balance ratio; 1.0 is perfect.
// Constraints with zero total weight report 1.0.
func Balance(g *Graph, part []int, k int) []float64 {
	w := partWeights(g, part, k)
	total := g.TotalVWgt()
	out := make([]float64, g.Ncon)
	for c, t := range total {
		if t == 0 {
			out[c] = 1
			continue
		}
		avg := float64(t) / float64(k)
		worst := 0.0
		for p := range w {
			r := float64(w[p][c]) / avg
			if r > worst {
				worst = r
			}
		}
		out[c] = worst
	}
	return out
}

// PartWeights exposes the per-part per-constraint weights of an assignment.
func PartWeights(g *Graph, part []int, k int) [][]int64 {
	return partWeights(g, part, k)
}

// Verify checks that part is a structurally valid k-way assignment of g:
// correct length, all values in [0,k), and no empty part. It returns a
// non-nil error describing the first violation.
func Verify(g *Graph, part []int, k int) error {
	if len(part) != g.NumVertices() {
		return fmt.Errorf("partition: verify: assignment has %d entries for %d vertices", len(part), g.NumVertices())
	}
	seen := make([]bool, k)
	for v, p := range part {
		if p < 0 || p >= k {
			return fmt.Errorf("partition: verify: vertex %d assigned to part %d, want [0,%d)", v, p, k)
		}
		seen[p] = true
	}
	for p, ok := range seen {
		if !ok {
			return fmt.Errorf("partition: verify: part %d is empty", p)
		}
	}
	return nil
}
