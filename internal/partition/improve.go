package partition

import (
	"fmt"
	"math/rand"
)

// Improve refines an existing assignment in place: boundary refinement plus
// balance repair under the given options, without rebuilding the partition
// from scratch. It is the primitive behind incremental remapping — when
// weights shift between emulation intervals, improving the previous
// assignment moves far fewer vertices than repartitioning, which matters
// when every moved vertex costs a migration.
//
// Returns the number of vertices whose part changed.
func Improve(g *Graph, part []int, k int, opts Options) (int, error) {
	if err := Verify(g, part, k); err != nil {
		return 0, fmt.Errorf("partition: Improve: %w", err)
	}
	opts = opts.withDefaults(k)
	rng := rand.New(rand.NewSource(opts.Seed))

	before := append([]int(nil), part...)
	frac := uniformFractions(k, opts.PartFractions)

	// Same polish schedule as Partition's final phase: refine, then anneal
	// the balance ceiling down to the 3% target.
	refine(g, part, k, opts.Imbalance, opts.RefinePasses, frac, rng)
	target := opts.Imbalance
	if target > 0.03 {
		target = 0.03
	}
	for _, eps := range []float64{opts.Imbalance, (opts.Imbalance + target) / 2, target} {
		if eps > opts.Imbalance {
			continue
		}
		rebalance(g, part, k, eps, frac)
		refine(g, part, k, eps, opts.RefinePasses, frac, rng)
	}
	rebalance(g, part, k, target, frac)
	ensureNonEmpty(g, part, k)

	moved := 0
	for v := range part {
		if part[v] != before[v] {
			moved++
		}
	}
	return moved, nil
}
