package partition

import (
	"math/rand"
	"reflect"
	"testing"
)

// gameTestGraph builds a seeded random graph with skewed vertex loads — the
// shape of a measured traffic profile.
func gameTestGraph(n, degree int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n, 1)
	for v := 0; v < n; v++ {
		g.VWgt[v][0] = 1 + int64(rng.Intn(50))
	}
	for v := 0; v < n; v++ {
		for d := 0; d < degree; d++ {
			u := rng.Intn(n)
			if u != v {
				g.AddEdge(v, u, 1+int64(rng.Intn(100)))
			}
		}
	}
	return g
}

func roundRobin(n, k int) []int {
	part := make([]int, n)
	for v := range part {
		part[v] = v % k
	}
	return part
}

func TestGameImproveConvergesAndPayoffMonotone(t *testing.T) {
	g := gameTestGraph(120, 4, 7)
	part := roundRobin(120, 4)
	moved, stats, err := GameImprove(g, part, 4, GameOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatalf("did not converge in %d rounds", stats.Rounds)
	}
	if len(stats.Payoffs) != stats.Rounds+1 {
		t.Fatalf("payoffs has %d entries for %d rounds", len(stats.Payoffs), stats.Rounds)
	}
	for i := 1; i < len(stats.Payoffs); i++ {
		if stats.Payoffs[i] > stats.Payoffs[i-1]+1e-9 {
			t.Fatalf("payoff increased at round %d: %g -> %g", i, stats.Payoffs[i-1], stats.Payoffs[i])
		}
	}
	if moved == 0 || stats.MovesTaken == 0 {
		t.Fatal("expected the game to improve a round-robin start")
	}
	if moved > stats.MovesTaken {
		t.Fatalf("moved %d vertices with only %d accepted moves", moved, stats.MovesTaken)
	}
	if err := Verify(g, part, 4); err != nil {
		t.Fatal(err)
	}
}

func TestGameImproveExactPotential(t *testing.T) {
	// The recorded payoff must equal the potential recomputed from scratch on
	// the final assignment — the state bookkeeping is incrementally exact.
	g := gameTestGraph(80, 3, 11)
	part := roundRobin(80, 3)
	orig := append([]int(nil), part...)
	// Explicit weights: the replayed gameState below sees these options
	// verbatim, without GameImprove's defaulting.
	opts := GameOptions{Seed: 1, LoadWeight: 1, TrafficWeight: 1, MigrationCost: 0.05}
	_, stats, err := GameImprove(g, part, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := &gameState{g: g, part: orig, k: 3, opts: opts}
	st.init()
	// Replay the final assignment onto a fresh state.
	for v, p := range part {
		if st.part[v] != p {
			st.move(v, p)
		}
	}
	got := stats.Payoffs[len(stats.Payoffs)-1]
	want := st.potential()
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("recorded final payoff %g, recomputed potential %g", got, want)
	}
}

func TestGameImproveDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, 42} {
		g := gameTestGraph(100, 4, 5)
		a := roundRobin(100, 5)
		b := roundRobin(100, 5)
		movedA, statsA, err := GameImprove(g, a, 5, GameOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		movedB, statsB, err := GameImprove(g, b, 5, GameOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two identical runs diverged", seed)
		}
		if movedA != movedB || !reflect.DeepEqual(statsA, statsB) {
			t.Fatalf("seed %d: stats diverged: %+v vs %+v", seed, statsA, statsB)
		}
	}
}

func TestGameImproveSeededTieBreaks(t *testing.T) {
	// A symmetric star: the center is indifferent among the leaves' parts.
	// Different seeds may pick different (equally good) fixed points, but one
	// seed always picks the same.
	g := NewGraph(5, 1)
	for v := 1; v < 5; v++ {
		g.AddEdge(0, v, 10)
	}
	base := []int{0, 0, 1, 2, 3}
	run := func(seed int64) []int {
		part := append([]int(nil), base...)
		if _, _, err := GameImprove(g, part, 4, GameOptions{Seed: seed}); err != nil {
			t.Fatal(err)
		}
		return part
	}
	if !reflect.DeepEqual(run(9), run(9)) {
		t.Fatal("same seed produced different tie-break outcomes")
	}
}

func TestGameImproveNeverEmptiesAPart(t *testing.T) {
	// One heavy hub everything talks to: traffic pulls all vertices toward
	// the hub's part, but the last member of each part must stay put.
	g := NewGraph(12, 1)
	for v := 1; v < 12; v++ {
		g.AddEdge(0, v, 1000)
	}
	part := roundRobin(12, 4)
	if _, _, err := GameImprove(g, part, 4, GameOptions{Seed: 2, LoadWeight: 1e-6}); err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, part, 4); err != nil {
		t.Fatalf("game emptied a part: %v", err)
	}
}

func TestGameImproveMigrationCostSticky(t *testing.T) {
	g := gameTestGraph(100, 4, 13)
	free := roundRobin(100, 4)
	movedFree, _, err := GameImprove(g, free, 4, GameOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pricey := roundRobin(100, 4)
	movedPricey, _, err := GameImprove(g, pricey, 4, GameOptions{Seed: 1, MigrationCost: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if movedPricey != 0 {
		t.Fatalf("prohibitive migration cost still moved %d vertices", movedPricey)
	}
	if movedFree == 0 {
		t.Fatal("free migrations moved nothing — test graph too easy")
	}
}

func TestGameImproveRoundCap(t *testing.T) {
	g := gameTestGraph(150, 5, 17)
	part := roundRobin(150, 4)
	_, stats, err := GameImprove(g, part, 4, GameOptions{MaxRounds: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 1 {
		t.Fatalf("rounds = %d with MaxRounds 1", stats.Rounds)
	}
	if stats.Converged {
		t.Fatal("a single round should not certify a fixed point on this instance")
	}
}

func TestGameImproveTrivialAndInvalid(t *testing.T) {
	g := gameTestGraph(10, 2, 1)
	one := make([]int, 10)
	moved, stats, err := GameImprove(g, one, 1, GameOptions{})
	if err != nil || moved != 0 || !stats.Converged {
		t.Fatalf("k=1: moved %d, converged %v, err %v", moved, stats.Converged, err)
	}
	if _, _, err := GameImprove(g, []int{0, 1}, 2, GameOptions{}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, _, err := GameImprove(g, one, 2, GameOptions{}); err == nil {
		t.Fatal("empty part accepted")
	}
	if _, _, err := GameImprove(g, roundRobin(10, 2), 2, GameOptions{LoadWeight: -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}
