package partition

import (
	"math/rand"
	"testing"
)

func TestImproveValidatesInput(t *testing.T) {
	g := ringGraph(8, 1)
	if _, err := Improve(g, []int{0, 0, 0, 0}, 2, Options{}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := Improve(g, []int{0, 0, 0, 0, 0, 0, 0, 0}, 2, Options{}); err == nil {
		t.Error("empty part accepted")
	}
}

func TestImproveReducesCut(t *testing.T) {
	// Start from a deliberately awful striped assignment of a ring. A
	// perfectly balanced bad partition under a tight ceiling is a fixed
	// point of greedy refinement (every move overfills the destination), so
	// give the refiner working headroom with a loose tolerance.
	g := ringGraph(32, 1)
	part := make([]int, 32)
	for v := range part {
		part[v] = v % 2
	}
	startCut := EdgeCut(g, part)
	moved, err := Improve(g, part, 2, Options{Seed: 1, Imbalance: 0.30})
	if err != nil {
		t.Fatal(err)
	}
	endCut := EdgeCut(g, part)
	if endCut >= startCut {
		t.Errorf("cut did not improve: %d -> %d", startCut, endCut)
	}
	if moved == 0 {
		t.Error("no vertices moved from a terrible start")
	}
	if err := Verify(g, part, 2); err != nil {
		t.Fatal(err)
	}
}

func TestImproveRestoresBalance(t *testing.T) {
	// A heavily skewed start: 90% of vertices in part 0.
	g := randomGraph(100, 150, 1, 4)
	part := make([]int, 100)
	for v := 90; v < 100; v++ {
		part[v] = 1 + v%3
	}
	if _, err := Improve(g, part, 4, Options{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if b := Balance(g, part, 4)[0]; b > 1.20 {
		t.Errorf("balance after Improve = %v, want <= 1.20", b)
	}
}

func TestImproveIsNearNoOpOnGoodPartition(t *testing.T) {
	// Improving an already good partition should move few vertices — the
	// property incremental remapping relies on.
	g := randomGraph(150, 250, 1, 7)
	part, err := Partition(g, 4, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	moved, err := Improve(g, part, 4, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if moved > 150/4 {
		t.Errorf("good partition moved %d vertices, want few", moved)
	}
}

func TestImproveFewerMovesThanRepartition(t *testing.T) {
	// After a mild weight shift, Improve must move fewer vertices than a
	// from-scratch repartition differs from the old assignment.
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(200, 350, 1, 9)
	old, err := Partition(g, 5, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Shift 15% of vertex weights.
	g2 := g.Clone()
	for v := 0; v < 200; v++ {
		if rng.Intn(100) < 15 {
			g2.VWgt[v][0] = g2.VWgt[v][0]*3 + 1
		}
	}
	incr := append([]int(nil), old...)
	movedIncr, err := Improve(g2, incr, 5, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Partition(g2, 5, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	movedFresh := 0
	for v := range fresh {
		if fresh[v] != old[v] {
			movedFresh++
		}
	}
	if movedIncr >= movedFresh {
		t.Errorf("incremental moved %d, repartition would move %d", movedIncr, movedFresh)
	}
	// And the incremental result must still be reasonably balanced.
	if b := Balance(g2, incr, 5)[0]; b > 1.25 {
		t.Errorf("incremental balance = %v", b)
	}
}
