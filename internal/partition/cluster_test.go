package partition

import (
	"math/rand"
	"testing"
)

// clusterTestGraph builds a connected random graph with unit vertex weights.
func clusterTestGraph(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n, 1)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v), 1+int64(rng.Intn(5)))
	}
	for e := 0; e < 2*n; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddEdge(a, b, 1+int64(rng.Intn(5)))
		}
	}
	return g
}

func TestClusterLabelShape(t *testing.T) {
	for _, k := range []int{2, 5, 16} {
		g := clusterTestGraph(200, 7)
		labels := Cluster(g, k, 1)
		if len(labels) != 200 {
			t.Fatalf("k=%d: %d labels for 200 vertices", k, len(labels))
		}
		max := 0
		seen := map[int]bool{}
		for v, l := range labels {
			if l < 0 {
				t.Fatalf("k=%d: vertex %d has negative label %d", k, v, l)
			}
			if l > max {
				max = l
			}
			seen[l] = true
		}
		if len(seen) > k {
			t.Fatalf("k=%d: %d clusters produced", k, len(seen))
		}
		if len(seen) < 2 {
			t.Fatalf("k=%d: everything collapsed into %d cluster(s)", k, len(seen))
		}
		// Dense labels: [0, clusters).
		if max != len(seen)-1 {
			t.Fatalf("k=%d: labels not dense (max %d over %d clusters)", k, max, len(seen))
		}
	}
}

// TestClusterInternallyConnected: coarsening only merges across edges, so on
// a connected graph every cluster's induced subgraph is connected.
func TestClusterInternallyConnected(t *testing.T) {
	g := clusterTestGraph(300, 3)
	labels := Cluster(g, 12, 1)
	n := g.NumVertices()
	// BFS within each cluster.
	clusterOf := map[int][]int{}
	for v, l := range labels {
		clusterOf[l] = append(clusterOf[l], v)
	}
	for l, members := range clusterOf {
		seen := map[int]bool{members[0]: true}
		queue := []int{members[0]}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range g.Adj[v] {
				if labels[e.To] == l && !seen[e.To] {
					seen[e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
		if len(seen) != len(members) {
			t.Fatalf("cluster %d: %d of %d members reachable internally (n=%d)", l, len(seen), len(members), n)
		}
	}
}

func TestClusterDeterministic(t *testing.T) {
	a := Cluster(clusterTestGraph(150, 9), 8, 1)
	b := Cluster(clusterTestGraph(150, 9), 8, 1)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("labels differ at vertex %d: %d vs %d", v, a[v], b[v])
		}
	}
}

func TestClusterSmallGraphIdentity(t *testing.T) {
	g := clusterTestGraph(5, 1)
	labels := Cluster(g, 8, 1)
	for v, l := range labels {
		if l != v {
			t.Fatalf("n <= k must return identity labels, got labels[%d] = %d", v, l)
		}
	}
}

// TestClusterRoughBalance: the coarsening weight cap keeps cluster sizes from
// collapsing into one giant cluster plus dust.
func TestClusterRoughBalance(t *testing.T) {
	g := clusterTestGraph(400, 5)
	k := 10
	labels := Cluster(g, k, 1)
	sizes := map[int]int{}
	for _, l := range labels {
		sizes[l]++
	}
	for l, s := range sizes {
		if s > 400*8/k {
			t.Fatalf("cluster %d holds %d of 400 vertices — cap failed", l, s)
		}
	}
}
