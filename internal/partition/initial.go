package partition

import "math/rand"

// greedyGrow computes an initial k-way partition of g by greedy graph
// growing: parts 0..k-2 are grown one at a time from a random seed vertex,
// always absorbing the unassigned vertex with the strongest connection to the
// growing part, until the part reaches its weight target; the leftovers form
// part k-1. The result is feasible in assignment (every vertex gets a part)
// but may be slightly unbalanced; callers refine it.
func greedyGrow(g *Graph, k int, frac []float64, rng *rand.Rand) []int {
	frac = uniformFractions(k, frac)
	n := g.NumVertices()
	part := make([]int, n)
	for v := range part {
		part[v] = -1
	}
	total := g.TotalVWgt()

	unassigned := n
	for p := 0; p < k-1 && unassigned > 0; p++ {
		// Part p's weight target under its capacity fraction.
		target := make([]float64, g.Ncon)
		for c, t := range total {
			target[c] = float64(t) * frac[p]
		}
		// Reserve room: never grow a part so large that the remaining parts
		// cannot each receive at least one vertex.
		maxVertices := unassigned - (k - 1 - p)
		if maxVertices < 1 {
			maxVertices = 1
		}
		grown := growOnePart(g, part, p, target, maxVertices, rng)
		unassigned -= grown
	}
	for v := range part {
		if part[v] == -1 {
			part[v] = k - 1
		}
	}
	return part
}

// growOnePart grows part p from a random unassigned seed until any balance
// constraint reaches its target or maxVertices vertices have been absorbed.
// Returns the number of vertices assigned.
func growOnePart(g *Graph, part []int, p int, target []float64, maxVertices int, rng *rand.Rand) int {
	n := g.NumVertices()
	seed := -1
	// Pick a random unassigned seed.
	start := rng.Intn(n)
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if part[v] == -1 {
			seed = v
			break
		}
	}
	if seed == -1 {
		return 0
	}

	wgt := make([]float64, g.Ncon)
	gain := make(map[int]int64) // unassigned frontier vertex -> connectivity to part p
	assign := func(v int) {
		part[v] = p
		for c, w := range g.VWgt[v] {
			wgt[c] += float64(w)
		}
		delete(gain, v)
		for _, e := range g.Adj[v] {
			if part[e.To] == -1 {
				gain[e.To] += e.Wgt
			}
		}
	}
	reachedTarget := func() bool {
		for c := range wgt {
			if target[c] > 0 && wgt[c] >= target[c] {
				return true
			}
		}
		return false
	}

	assign(seed)
	count := 1
	for count < maxVertices && !reachedTarget() {
		// Absorb the frontier vertex with maximal connectivity; if the
		// frontier is empty (disconnected graph), jump to a random
		// unassigned vertex.
		best, bestW := -1, int64(-1)
		for v, w := range gain {
			if w > bestW || (w == bestW && v < best) {
				best, bestW = v, w
			}
		}
		if best == -1 {
			start := rng.Intn(n)
			for i := 0; i < n; i++ {
				v := (start + i) % n
				if part[v] == -1 {
					best = v
					break
				}
			}
			if best == -1 {
				break
			}
		}
		assign(best)
		count++
	}
	return count
}
