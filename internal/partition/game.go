package partition

import (
	"fmt"
	"math/rand"
)

// Game-theoretic iterative repartitioning (Kurve, Kesidis et al. style).
//
// Each vertex is a selfish player whose strategy is the part (engine) it
// lives on. A player's cost is what the emulation actually charges it for:
//
//	cost_v(e) = LoadWeight    · l_v · load_e(with v on e)
//	          + TrafficWeight · (incident_v − vec_v[e])
//	          + MigrationCost · [e ≠ origin_v]
//
// where l_v is v's normalized computational load, load_e the normalized load
// of part e, vec_v[e] the normalized traffic v exchanges with neighbors on
// part e (so incident_v − vec_v[e] is v's share of the cross-part traffic),
// and origin_v the part v occupied when the game began. This game is an
// exact potential game with potential
//
//	Φ = LoadWeight · ½ Σ_e load_e² + TrafficWeight · cut + MigrationCost · |moved|
//
// — every unilateral move changes Φ by exactly the mover's cost change — so
// best-response dynamics monotonically decrease Φ and reach a Nash-style
// fixed point (no player can improve by more than Epsilon) in finitely many
// moves. GameImprove plays rounds of best responses in fixed vertex-ID order
// with seeded tie-breaks, making the trajectory deterministic for a given
// (graph, assignment, options) triple.
//
// Moves are evaluated incrementally: deciding a player's best response is
// O(k) on top of O(deg) bookkeeping per accepted move, never a re-partition.

// DefaultGameRounds caps the best-response rounds when GameOptions.MaxRounds
// is unset. Potential games converge without a cap, but the cap bounds the
// remapping latency of an adversarial interval.
const DefaultGameRounds = 64

// GameOptions tunes GameImprove. The zero value plays load and traffic with
// equal weight, free migrations, and the default round cap.
type GameOptions struct {
	// MaxRounds caps best-response rounds (DefaultGameRounds when <= 0).
	MaxRounds int
	// LoadWeight and TrafficWeight scale the two normalized objectives
	// (both default to 1 when zero; negative values are rejected).
	LoadWeight    float64
	TrafficWeight float64
	// MigrationCost is the price, in the same normalized units, a player
	// pays for ending the game away from its original part. Zero makes
	// migrations free; larger values make the fixed point stickier.
	MigrationCost float64
	// Epsilon is the minimum cost improvement worth moving for (1e-12 when
	// <= 0). It guarantees termination: Φ is bounded below and every move
	// decreases it by more than Epsilon.
	Epsilon float64
	// Seed drives the tie-break choice among exactly equal best responses.
	Seed int64
}

// GameStats reports a GameImprove run's convergence trajectory.
type GameStats struct {
	// Rounds is the number of best-response rounds played, including the
	// final quiescent round that proved the fixed point.
	Rounds int
	// MovesEvaluated counts candidate (player, part) costs computed;
	// MovesTaken counts accepted moves (a player may move more than once).
	MovesEvaluated int
	MovesTaken     int
	// Converged is true when a round passed with no player moving (a
	// Nash-style Epsilon-fixed point), false when MaxRounds hit first.
	Converged bool
	// Payoffs is the potential Φ before the first round and after each
	// round — non-increasing by construction.
	Payoffs []float64
}

// GameImprove refines part in place by best-response dynamics on g (whose
// edge weights are the traffic objective). It returns the number of vertices
// that ended on a different part than they started on, plus the convergence
// stats. The assignment stays structurally valid throughout: a player never
// abandons a part it is the last member of.
func GameImprove(g *Graph, part []int, k int, opts GameOptions) (int, *GameStats, error) {
	if err := Verify(g, part, k); err != nil {
		return 0, nil, fmt.Errorf("partition: game: %w", err)
	}
	if opts.LoadWeight < 0 || opts.TrafficWeight < 0 || opts.MigrationCost < 0 {
		return 0, nil, fmt.Errorf("partition: game: negative weights (load %g, traffic %g, migration %g)",
			opts.LoadWeight, opts.TrafficWeight, opts.MigrationCost)
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = DefaultGameRounds
	}
	if opts.LoadWeight == 0 {
		opts.LoadWeight = 1
	}
	if opts.TrafficWeight == 0 {
		opts.TrafficWeight = 1
	}
	if opts.Epsilon <= 0 {
		opts.Epsilon = 1e-12
	}

	n := g.NumVertices()
	st := &gameState{g: g, part: part, k: k, opts: opts}
	st.init()
	stats := &GameStats{Payoffs: []float64{st.potential()}}
	if k == 1 || n == 0 {
		stats.Converged = true
		return 0, stats, nil
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	for round := 0; round < opts.MaxRounds; round++ {
		stats.Rounds = round + 1
		moves := 0
		for v := 0; v < n; v++ {
			cur := part[v]
			if st.partCount[cur] <= 1 {
				continue // v is its part's last member; moving would empty it
			}
			curCost := st.cost(v, cur)
			best, bestCost := cur, curCost
			ties := 1
			for e := 0; e < k; e++ {
				if e == cur {
					continue
				}
				stats.MovesEvaluated++
				c := st.cost(v, e)
				if c < bestCost {
					best, bestCost, ties = e, c, 1
				} else if c == bestCost && best != cur {
					// Exactly tied best responses: seeded uniform choice,
					// so symmetric instances still resolve deterministically
					// for a given seed.
					ties++
					if rng.Intn(ties) == 0 {
						best = e
					}
				}
			}
			if best != cur && bestCost < curCost-opts.Epsilon {
				st.move(v, best)
				moves++
				stats.MovesTaken++
			}
		}
		stats.Payoffs = append(stats.Payoffs, st.potential())
		if moves == 0 {
			stats.Converged = true
			break
		}
	}

	moved := 0
	for v, p := range part {
		if p != st.orig[v] {
			moved++
		}
	}
	return moved, stats, nil
}

// gameState is the incrementally maintained view the payoff reads: per-part
// loads and member counts, and per-vertex per-part incident-traffic vectors.
// All quantities are pre-normalized (loads sum to k, traffic sums to 1) so
// the three objectives are commensurable regardless of topology scale.
type gameState struct {
	g    *Graph
	part []int
	k    int
	opts GameOptions

	orig      []int     // assignment at game start (migration baseline)
	nodeLoad  []float64 // normalized vertex loads (constraint 0)
	load      []float64 // per-part normalized load
	partCount []int
	vec       []float64 // [v*k+e]: normalized traffic v exchanges with part e
	incident  []float64 // per-vertex total incident traffic (Σ_e vec[v][e])
	scaleT    float64   // traffic normalization, cached for potential()
}

func (st *gameState) init() {
	g, k := st.g, st.k
	n := g.NumVertices()
	st.orig = append([]int(nil), st.part...)

	st.nodeLoad = make([]float64, n)
	var totalLoad float64
	for v := range g.VWgt {
		st.nodeLoad[v] = float64(g.VWgt[v][0])
		totalLoad += st.nodeLoad[v]
	}
	if totalLoad > 0 {
		scale := float64(k) / totalLoad
		for v := range st.nodeLoad {
			st.nodeLoad[v] *= scale
		}
	}

	var totalTraffic float64
	for v := range g.Adj {
		for _, e := range g.Adj[v] {
			totalTraffic += float64(e.Wgt)
		}
	}
	totalTraffic /= 2
	if totalTraffic > 0 {
		st.scaleT = 1 / totalTraffic
	}

	st.load = make([]float64, k)
	st.partCount = make([]int, k)
	for v, p := range st.part {
		st.load[p] += st.nodeLoad[v]
		st.partCount[p]++
	}
	st.vec = make([]float64, n*k)
	st.incident = make([]float64, n)
	for v := range g.Adj {
		for _, e := range g.Adj[v] {
			w := float64(e.Wgt) * st.scaleT
			st.vec[v*k+st.part[e.To]] += w
			st.incident[v] += w
		}
	}
}

// cost is player v's cost for sitting on part e, evaluated against the
// current state of everyone else — the O(k) incremental evaluation.
func (st *gameState) cost(v, e int) float64 {
	l := st.load[e]
	if e != st.part[v] {
		l += st.nodeLoad[v]
	}
	c := st.opts.LoadWeight * st.nodeLoad[v] * l
	c += st.opts.TrafficWeight * (st.incident[v] - st.vec[v*st.k+e])
	if e != st.orig[v] {
		c += st.opts.MigrationCost
	}
	return c
}

// move applies v's accepted best response: O(deg(v)) bookkeeping.
func (st *gameState) move(v, to int) {
	from := st.part[v]
	st.load[from] -= st.nodeLoad[v]
	st.load[to] += st.nodeLoad[v]
	st.partCount[from]--
	st.partCount[to]++
	for _, e := range st.g.Adj[v] {
		w := float64(e.Wgt) * st.scaleT
		st.vec[e.To*st.k+from] -= w
		st.vec[e.To*st.k+to] += w
	}
	st.part[v] = to
}

// potential is the exact potential Φ the per-round payoff trajectory
// records; recomputed O(E) once per round, never per move.
func (st *gameState) potential() float64 {
	var p float64
	for _, l := range st.load {
		p += 0.5 * st.opts.LoadWeight * l * l
	}
	var cut float64
	for u := range st.g.Adj {
		for _, e := range st.g.Adj[u] {
			if u < e.To && st.part[u] != st.part[e.To] {
				cut += float64(e.Wgt) * st.scaleT
			}
		}
	}
	p += st.opts.TrafficWeight * cut
	for v, pt := range st.part {
		if pt != st.orig[v] {
			p += st.opts.MigrationCost
		}
	}
	return p
}
