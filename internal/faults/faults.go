// Package faults defines deterministic fault schedules for the distributed
// emulator. A real 24-node MaSSF cluster does not stay perfect for the length
// of a run: engine nodes crash, fall behind (straggle), and the cluster
// interconnect degrades. A Schedule describes such incidents against virtual
// time so that a run — and its recovery — is exactly reproducible:
//
//   - Crash: a simulation-engine node fail-stops at virtual time At. The
//     kernel detects the death at the next window barrier; the emulator rolls
//     back to its last barrier checkpoint, remaps the dead engine's virtual
//     nodes across the survivors, and replays the lost window(s).
//   - Straggler: an engine processes kernel events Factor× slower over
//     [From, To) — a background daemon, thermal throttling, a noisy neighbor.
//   - Degradation: the cluster network's per-remote-event cost rises Factor×
//     over [From, To) — congestion or a flapping switch between engines.
//
// The package is pure data and queries; the DES kernel (internal/des) supplies
// the checkpoint/rollback mechanics and the emulator (internal/emu) applies
// the cost multipliers and drives recovery.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Crash fail-stops engine Engine at virtual time At.
type Crash struct {
	Engine int
	At     float64
}

// Straggler slows engine Engine by Factor (>= 1 multiplies its per-event
// processing cost) over the virtual-time interval [From, To).
type Straggler struct {
	Engine   int
	From, To float64
	Factor   float64
}

// Degradation raises the cluster network's per-remote-event cost by Factor
// (>= 1) over the virtual-time interval [From, To). It applies to every
// engine pair — the paper's cluster shares one switched Ethernet.
type Degradation struct {
	From, To float64
	Factor   float64
}

// Schedule is a deterministic set of faults injected into one run.
type Schedule struct {
	Crashes      []Crash
	Stragglers   []Straggler
	Degradations []Degradation
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool {
	return s == nil || (len(s.Crashes) == 0 && len(s.Stragglers) == 0 && len(s.Degradations) == 0)
}

// HasCrashes reports whether any engine fail-stops.
func (s *Schedule) HasCrashes() bool { return s != nil && len(s.Crashes) > 0 }

// Validate checks the schedule against an engine count: indices in range,
// positive times, factors >= 1, no engine crashing twice, and at least one
// engine surviving every crash.
func (s *Schedule) Validate(numEngines int) error {
	if s == nil {
		return nil
	}
	if len(s.Crashes) >= numEngines && len(s.Crashes) > 0 {
		return fmt.Errorf("faults: %d crashes leave no survivor among %d engines", len(s.Crashes), numEngines)
	}
	seen := make(map[int]bool)
	for _, c := range s.Crashes {
		if c.Engine < 0 || c.Engine >= numEngines {
			return fmt.Errorf("faults: crash engine %d out of range [0,%d)", c.Engine, numEngines)
		}
		if c.At <= 0 {
			return fmt.Errorf("faults: crash of engine %d at non-positive time %g", c.Engine, c.At)
		}
		if seen[c.Engine] {
			return fmt.Errorf("faults: engine %d crashes twice", c.Engine)
		}
		seen[c.Engine] = true
	}
	for _, st := range s.Stragglers {
		if st.Engine < 0 || st.Engine >= numEngines {
			return fmt.Errorf("faults: straggler engine %d out of range [0,%d)", st.Engine, numEngines)
		}
		if st.From < 0 || st.To <= st.From {
			return fmt.Errorf("faults: straggler on engine %d has empty interval [%g,%g)", st.Engine, st.From, st.To)
		}
		if st.Factor < 1 {
			return fmt.Errorf("faults: straggler factor %g on engine %d, must be >= 1", st.Factor, st.Engine)
		}
	}
	for _, d := range s.Degradations {
		if d.From < 0 || d.To <= d.From {
			return fmt.Errorf("faults: degradation has empty interval [%g,%g)", d.From, d.To)
		}
		if d.Factor < 1 {
			return fmt.Errorf("faults: degradation factor %g, must be >= 1", d.Factor)
		}
	}
	return nil
}

// sortedCrashes returns the crashes ordered by (At, Engine) — the
// deterministic detection order.
func (s *Schedule) sortedCrashes() []Crash {
	out := append([]Crash(nil), s.Crashes...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Engine < out[j].Engine
	})
	return out
}

// NextCrash returns the earliest crash with At <= before whose index is not
// yet marked in handled, along with that index (into the order Crashes are
// stored). Callers mark the index handled once they have recovered from it.
func (s *Schedule) NextCrash(before float64, handled []bool) (int, Crash, bool) {
	if s == nil {
		return 0, Crash{}, false
	}
	best := -1
	for i, c := range s.Crashes {
		if i < len(handled) && handled[i] {
			continue
		}
		if c.At > before {
			continue
		}
		if best < 0 || c.At < s.Crashes[best].At ||
			(c.At == s.Crashes[best].At && c.Engine < s.Crashes[best].Engine) {
			best = i
		}
	}
	if best < 0 {
		return 0, Crash{}, false
	}
	return best, s.Crashes[best], true
}

// SlowdownAt returns the combined straggler cost multiplier for engine at
// virtual time t (1 when unaffected). Overlapping stragglers compound.
func (s *Schedule) SlowdownAt(engine int, t float64) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, st := range s.Stragglers {
		if st.Engine == engine && t >= st.From && t < st.To {
			f *= st.Factor
		}
	}
	return f
}

// RemoteFactorAt returns the cluster-network cost multiplier at virtual time
// t (1 when unaffected). Overlapping degradations compound.
func (s *Schedule) RemoteFactorAt(t float64) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, d := range s.Degradations {
		if t >= d.From && t < d.To {
			f *= d.Factor
		}
	}
	return f
}

// String renders the schedule in the same syntax Parse accepts.
func (s *Schedule) String() string {
	if s.Empty() {
		return "none"
	}
	var parts []string
	for _, c := range s.sortedCrashes() {
		parts = append(parts, fmt.Sprintf("crash:%d@%g", c.Engine, c.At))
	}
	for _, st := range s.Stragglers {
		parts = append(parts, fmt.Sprintf("slow:%d@%g-%gx%g", st.Engine, st.From, st.To, st.Factor))
	}
	for _, d := range s.Degradations {
		parts = append(parts, fmt.Sprintf("degrade@%g-%gx%g", d.From, d.To, d.Factor))
	}
	return strings.Join(parts, " ")
}

// Parse builds a schedule from textual fault specs, one fault per entry:
//
//	crash:E@T        engine E fail-stops at virtual time T
//	slow:E@T1-T2xF   engine E runs F× slower over [T1,T2)
//	degrade@T1-T2xF  cluster-network cost rises F× over [T1,T2)
//
// Example: Parse([]string{"crash:2@30", "slow:0@10-20x2.5"}).
func Parse(specs []string) (*Schedule, error) {
	s := &Schedule{}
	for _, spec := range specs {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		switch {
		case strings.HasPrefix(spec, "crash:"):
			body := strings.TrimPrefix(spec, "crash:")
			engine, rest, ok := strings.Cut(body, "@")
			if !ok {
				return nil, fmt.Errorf("faults: %q: want crash:E@T", spec)
			}
			e, err := strconv.Atoi(engine)
			if err != nil {
				return nil, fmt.Errorf("faults: %q: bad engine: %v", spec, err)
			}
			at, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: %q: bad time: %v", spec, err)
			}
			s.Crashes = append(s.Crashes, Crash{Engine: e, At: at})
		case strings.HasPrefix(spec, "slow:"):
			body := strings.TrimPrefix(spec, "slow:")
			engine, rest, ok := strings.Cut(body, "@")
			if !ok {
				return nil, fmt.Errorf("faults: %q: want slow:E@T1-T2xF", spec)
			}
			e, err := strconv.Atoi(engine)
			if err != nil {
				return nil, fmt.Errorf("faults: %q: bad engine: %v", spec, err)
			}
			from, to, factor, err := parseWindowFactor(rest)
			if err != nil {
				return nil, fmt.Errorf("faults: %q: %v", spec, err)
			}
			s.Stragglers = append(s.Stragglers, Straggler{Engine: e, From: from, To: to, Factor: factor})
		case strings.HasPrefix(spec, "degrade@"):
			from, to, factor, err := parseWindowFactor(strings.TrimPrefix(spec, "degrade@"))
			if err != nil {
				return nil, fmt.Errorf("faults: %q: %v", spec, err)
			}
			s.Degradations = append(s.Degradations, Degradation{From: from, To: to, Factor: factor})
		default:
			return nil, fmt.Errorf("faults: %q: unknown fault kind (want crash:, slow:, degrade@)", spec)
		}
	}
	return s, nil
}

// parseWindowFactor parses "T1-T2xF".
func parseWindowFactor(s string) (from, to, factor float64, err error) {
	window, factorStr, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, 0, fmt.Errorf("want T1-T2xF")
	}
	fromStr, toStr, ok := strings.Cut(window, "-")
	if !ok {
		return 0, 0, 0, fmt.Errorf("want T1-T2xF")
	}
	if from, err = strconv.ParseFloat(fromStr, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad interval start: %v", err)
	}
	if to, err = strconv.ParseFloat(toStr, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad interval end: %v", err)
	}
	if factor, err = strconv.ParseFloat(factorStr, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("bad factor: %v", err)
	}
	return from, to, factor, nil
}
