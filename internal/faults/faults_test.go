package faults

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	s, err := Parse([]string{"crash:2@30", "slow:0@10-20x2.5", "degrade@5-50x3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Crashes) != 1 || s.Crashes[0] != (Crash{Engine: 2, At: 30}) {
		t.Errorf("crashes = %+v", s.Crashes)
	}
	if len(s.Stragglers) != 1 || s.Stragglers[0] != (Straggler{Engine: 0, From: 10, To: 20, Factor: 2.5}) {
		t.Errorf("stragglers = %+v", s.Stragglers)
	}
	if len(s.Degradations) != 1 || s.Degradations[0] != (Degradation{From: 5, To: 50, Factor: 3}) {
		t.Errorf("degradations = %+v", s.Degradations)
	}
	if got := s.String(); got != "crash:2@30 slow:0@10-20x2.5 degrade@5-50x3" {
		t.Errorf("String() = %q", got)
	}
	if err := s.Validate(4); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"boom:1@2", "crash:x@3", "crash:1@y", "crash:1", "slow:0@10x2",
		"slow:0@10-20", "degrade@1-2", "degrade@a-2x3",
	} {
		if _, err := Parse([]string{spec}); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestParseSkipsBlanks(t *testing.T) {
	s, err := Parse([]string{"", "  ", "crash:0@1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Crashes) != 1 {
		t.Errorf("crashes = %+v", s.Crashes)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		k    int
		want string
	}{
		{"engine range", Schedule{Crashes: []Crash{{Engine: 4, At: 1}}}, 4, "out of range"},
		{"non-positive time", Schedule{Crashes: []Crash{{Engine: 0, At: 0}}}, 2, "non-positive"},
		{"double crash", Schedule{Crashes: []Crash{{Engine: 0, At: 1}, {Engine: 0, At: 2}}}, 4, "twice"},
		{"no survivor", Schedule{Crashes: []Crash{{Engine: 0, At: 1}, {Engine: 1, At: 2}}}, 2, "no survivor"},
		{"straggler interval", Schedule{Stragglers: []Straggler{{Engine: 0, From: 5, To: 5, Factor: 2}}}, 2, "empty interval"},
		{"straggler factor", Schedule{Stragglers: []Straggler{{Engine: 0, From: 0, To: 5, Factor: 0.5}}}, 2, "must be >= 1"},
		{"degradation interval", Schedule{Degradations: []Degradation{{From: 3, To: 2, Factor: 2}}}, 2, "empty interval"},
		{"degradation factor", Schedule{Degradations: []Degradation{{From: 0, To: 2, Factor: 0}}}, 2, "must be >= 1"},
	}
	for _, c := range cases {
		err := c.s.Validate(c.k)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate = %v, want containing %q", c.name, err, c.want)
		}
	}
	var nilSched *Schedule
	if err := nilSched.Validate(3); err != nil {
		t.Errorf("nil schedule rejected: %v", err)
	}
	if !nilSched.Empty() {
		t.Error("nil schedule not empty")
	}
}

func TestNextCrashOrderAndHandling(t *testing.T) {
	s := &Schedule{Crashes: []Crash{{Engine: 3, At: 20}, {Engine: 1, At: 10}, {Engine: 0, At: 10}}}
	handled := make([]bool, 3)

	idx, c, ok := s.NextCrash(50, handled)
	if !ok || c.Engine != 0 || c.At != 10 {
		t.Fatalf("first crash = %+v ok=%v, want engine 0 @ 10", c, ok)
	}
	handled[idx] = true
	idx, c, ok = s.NextCrash(50, handled)
	if !ok || c.Engine != 1 || c.At != 10 {
		t.Fatalf("second crash = %+v ok=%v, want engine 1 @ 10", c, ok)
	}
	handled[idx] = true
	if _, _, ok := s.NextCrash(15, handled); ok {
		t.Error("crash at 20 detected before its time")
	}
	idx, c, ok = s.NextCrash(20, handled)
	if !ok || c.Engine != 3 {
		t.Fatalf("third crash = %+v ok=%v", c, ok)
	}
	handled[idx] = true
	if _, _, ok := s.NextCrash(1e9, handled); ok {
		t.Error("handled crash re-detected")
	}
}

func TestFactors(t *testing.T) {
	s := &Schedule{
		Stragglers: []Straggler{
			{Engine: 1, From: 10, To: 20, Factor: 2},
			{Engine: 1, From: 15, To: 25, Factor: 3},
		},
		Degradations: []Degradation{{From: 5, To: 10, Factor: 4}},
	}
	if got := s.SlowdownAt(1, 5); got != 1 {
		t.Errorf("SlowdownAt(1,5) = %g, want 1", got)
	}
	if got := s.SlowdownAt(1, 12); got != 2 {
		t.Errorf("SlowdownAt(1,12) = %g, want 2", got)
	}
	if got := s.SlowdownAt(1, 17); got != 6 {
		t.Errorf("SlowdownAt(1,17) = %g, want 6 (compounded)", got)
	}
	if got := s.SlowdownAt(0, 17); got != 1 {
		t.Errorf("SlowdownAt(0,17) = %g, want 1 (other engine)", got)
	}
	if got := s.SlowdownAt(1, 20); got != 3 {
		t.Errorf("SlowdownAt(1,20) = %g, want 3 (half-open interval)", got)
	}
	if got := s.RemoteFactorAt(7); got != 4 {
		t.Errorf("RemoteFactorAt(7) = %g, want 4", got)
	}
	if got := s.RemoteFactorAt(10); got != 1 {
		t.Errorf("RemoteFactorAt(10) = %g, want 1", got)
	}
	var nilSched *Schedule
	if nilSched.SlowdownAt(0, 1) != 1 || nilSched.RemoteFactorAt(1) != 1 {
		t.Error("nil schedule factors != 1")
	}
}
