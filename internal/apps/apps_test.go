package apps

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/topogen"
	"repro/internal/traffic"
)

func appHosts(n int) []int {
	nw := topogen.TeraGrid()
	return nw.Hosts()[:n]
}

func mustGen(t *testing.T, a App, hosts []int, seed int64) traffic.Workload {
	t.Helper()
	w, err := a.Generate(hosts, seed)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestScaLapackDefaults(t *testing.T) {
	s := DefaultScaLapack()
	if s.Hosts() != 10 {
		t.Errorf("Hosts = %d, want 10", s.Hosts())
	}
	if s.Name() != "ScaLapack" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.N != 3000 || s.NB != 100 || s.Duration != 600 {
		t.Errorf("defaults = %+v, want paper config", s)
	}
}

func TestScaLapackGenerate(t *testing.T) {
	s := DefaultScaLapack()
	hosts := appHosts(10)
	w := mustGen(t, s, hosts, 1)
	if len(w.Flows) == 0 {
		t.Fatal("no flows")
	}
	if w.Duration != 600 {
		t.Errorf("duration = %v", w.Duration)
	}
	if len(w.AppHosts) != 10 {
		t.Errorf("AppHosts = %v", w.AppHosts)
	}
	if err := w.Validate(topogen.TeraGrid()); err != nil {
		t.Fatal(err)
	}
	// 30 iterations; each emits row broadcasts (2 rows x 4 dsts) and column
	// broadcasts (5 cols x 1 dst) = 13 flows -> 390 total.
	if len(w.Flows) != 390 {
		t.Errorf("flows = %d, want 390", len(w.Flows))
	}
	for _, f := range w.Flows {
		if f.Tag != "scalapack" {
			t.Fatalf("tag = %q", f.Tag)
		}
		if f.Start < 0 || f.Start > 600 {
			t.Fatalf("start %v out of range", f.Start)
		}
	}
}

func TestScaLapackTrafficIsEven(t *testing.T) {
	// The paper relies on ScaLapack's traffic being evenly distributed
	// across processes (that is why PLACE predicts it well). Per-host bytes
	// sent+received should have low normalized deviation.
	s := DefaultScaLapack()
	hosts := appHosts(10)
	w := mustGen(t, s, hosts, 2)
	byHost := make(map[int]float64)
	for _, f := range w.Flows {
		byHost[f.Src] += float64(f.Bytes)
		byHost[f.Dst] += float64(f.Bytes)
	}
	var loads []float64
	for _, h := range hosts {
		loads = append(loads, byHost[h])
	}
	if imb := metrics.Imbalance(loads); imb > 0.35 {
		t.Errorf("ScaLapack per-host traffic imbalance = %.2f, want <= 0.35 (regular app)", imb)
	}
}

func TestScaLapackShrinkingPanels(t *testing.T) {
	// Later iterations factor smaller trailing matrices: early flows must be
	// larger than late flows.
	s := DefaultScaLapack()
	w := mustGen(t, s, appHosts(10), 3)
	early, late := w.Flows[0].Bytes, w.Flows[len(w.Flows)-1].Bytes
	if early <= late {
		t.Errorf("panel sizes do not shrink: first %d, last %d", early, late)
	}
}

func TestScaLapackDeterminism(t *testing.T) {
	s := DefaultScaLapack()
	hosts := appHosts(10)
	a := mustGen(t, s, hosts, 5)
	b := mustGen(t, s, hosts, 5)
	if len(a.Flows) != len(b.Flows) {
		t.Fatal("nondeterministic flow count")
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatal("nondeterministic flows")
		}
	}
}

func TestGenerateErrorsOnWrongHostCount(t *testing.T) {
	if _, err := DefaultScaLapack().Generate(appHosts(3), 1); err == nil {
		t.Error("ScaLapack: wrong host count did not error")
	}
	if _, err := DefaultGridNPB().Generate(appHosts(3), 1); err == nil {
		t.Error("GridNPB: wrong host count did not error")
	}
}

func TestGridNPBDefaults(t *testing.T) {
	g := DefaultGridNPB()
	if g.Hosts() != 10 || g.Name() != "GridNPB" {
		t.Errorf("defaults wrong: %+v", g)
	}
}

func TestGridNPBGenerate(t *testing.T) {
	g := DefaultGridNPB()
	hosts := appHosts(10)
	w := mustGen(t, g, hosts, 1)
	if len(w.Flows) == 0 {
		t.Fatal("no flows")
	}
	if err := w.Validate(topogen.TeraGrid()); err != nil {
		t.Fatal(err)
	}
	if w.Duration != 900 {
		t.Errorf("duration = %v, want 900", w.Duration)
	}
	tags := map[string]bool{}
	for _, f := range w.Flows {
		tags[f.Tag[:10]] = true
		if f.Start < 0 {
			t.Fatal("negative start")
		}
	}
	// All three workflow graphs must contribute flows.
	for _, prefix := range []string{"gridnpb/HC", "gridnpb/VP", "gridnpb/MB"} {
		found := false
		for _, f := range w.Flows {
			if len(f.Tag) >= len(prefix) && f.Tag[:len(prefix)] == prefix {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no flows from %s", prefix)
		}
	}
	_ = tags
}

func TestGridNPBTrafficIsIrregular(t *testing.T) {
	// The paper's premise: GridNPB traffic is irregular across hosts —
	// substantially more imbalanced than ScaLapack's.
	hosts := appHosts(10)
	gw := mustGen(t, DefaultGridNPB(), hosts, 2)
	sw := mustGen(t, DefaultScaLapack(), hosts, 2)
	loadOf := func(w traffic.Workload) []float64 {
		byHost := make(map[int]float64)
		for _, f := range w.Flows {
			byHost[f.Src] += float64(f.Bytes)
			byHost[f.Dst] += float64(f.Bytes)
		}
		var loads []float64
		for _, h := range hosts {
			loads = append(loads, byHost[h])
		}
		return loads
	}
	gi := metrics.Imbalance(loadOf(gw))
	si := metrics.Imbalance(loadOf(sw))
	if gi <= si {
		t.Errorf("GridNPB imbalance %.3f <= ScaLapack %.3f; should be more irregular", gi, si)
	}
}

func TestGridNPBBursty(t *testing.T) {
	// Traffic should be concentrated in bursts: a large fraction of bytes
	// lands in a small fraction of 10-second bins.
	g := DefaultGridNPB()
	w := mustGen(t, g, appHosts(10), 4)
	bins := make(map[int]float64)
	var total float64
	for _, f := range w.Flows {
		bins[int(f.Start/10)] += float64(f.Bytes)
		total += float64(f.Bytes)
	}
	var vals []float64
	for _, v := range bins {
		vals = append(vals, v)
	}
	// Top bin should hold well above the uniform share.
	top := metrics.Max(vals)
	uniform := total / float64(int(g.Duration/10))
	if top < 2*uniform {
		t.Errorf("top bin %.3g < 2x uniform share %.3g: not bursty", top, uniform)
	}
}

func TestGridNPBDeterminism(t *testing.T) {
	hosts := appHosts(10)
	a := mustGen(t, DefaultGridNPB(), hosts, 7)
	b := mustGen(t, DefaultGridNPB(), hosts, 7)
	if len(a.Flows) != len(b.Flows) {
		t.Fatal("nondeterministic flow count")
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatal("nondeterministic flows")
		}
	}
}

func TestGraphShapes(t *testing.T) {
	hc := hcGraph()
	if len(hc) != 9 {
		t.Errorf("HC tasks = %d, want 9", len(hc))
	}
	// Strict chain: every task except the last has exactly one successor.
	for i, task := range hc[:len(hc)-1] {
		if len(task.succ) != 1 || task.succ[0] != i+1 {
			t.Errorf("HC task %d successors = %v", i, task.succ)
		}
	}
	if len(hc[len(hc)-1].succ) != 0 {
		t.Error("HC last task has successors")
	}

	vp := vpGraph()
	if len(vp) != 9 {
		t.Errorf("VP tasks = %d, want 9", len(vp))
	}
	mb := mbGraph()
	if len(mb) != 9 {
		t.Errorf("MB tasks = %d, want 9", len(mb))
	}
	// MB fan-out: first-layer task 0 feeds all of layer 1.
	if len(mb[0].succ) != 3 {
		t.Errorf("MB task 0 successors = %v, want 3 (fan-out)", mb[0].succ)
	}
}

func TestCriticalPath(t *testing.T) {
	hc := hcGraph()
	// HC chain: 3x(BT 9 + SP 7 + LU 8) = 72.
	if cp := criticalPath(hc); math.Abs(cp-72) > 1e-9 {
		t.Errorf("HC critical path = %v, want 72", cp)
	}
	// Empty/loop-free guard.
	if cp := criticalPath([]gridTask{{kind: "BT"}}); cp != 9 {
		t.Errorf("single-task critical path = %v, want 9", cp)
	}
}

func TestAppInterfaceCompliance(t *testing.T) {
	var _ App = ScaLapack{}
	var _ App = GridNPB{}
}

func TestScaLapackScaleBytes(t *testing.T) {
	hosts := appHosts(10)
	base := ScaLapack{N: 1000, NB: 100, PRows: 2, PCols: 5, Duration: 60}
	scaled := base
	scaled.ScaleBytes = 4
	wb := mustGen(t, base, hosts, 1)
	ws := mustGen(t, scaled, hosts, 1)
	if ws.TotalBytes() < 3*wb.TotalBytes() || ws.TotalBytes() > 5*wb.TotalBytes() {
		t.Errorf("ScaleBytes=4: %d vs base %d", ws.TotalBytes(), wb.TotalBytes())
	}
	if len(ws.Flows) != len(wb.Flows) {
		t.Error("ScaleBytes changed flow structure")
	}
}

func TestScaLapackCustomGrid(t *testing.T) {
	s := ScaLapack{N: 800, NB: 200, PRows: 3, PCols: 4, Duration: 30}
	if s.Hosts() != 12 {
		t.Fatalf("Hosts = %d, want 12", s.Hosts())
	}
	nw := topogen.TeraGrid()
	hosts := nw.Hosts()[:12]
	w := mustGen(t, s, hosts, 1)
	if err := w.Validate(nw); err != nil {
		t.Fatal(err)
	}
	// 4 iterations; per iter: rows 3x3 + cols 4x2 = 17 flows.
	if len(w.Flows) != 4*17 {
		t.Errorf("flows = %d, want %d", len(w.Flows), 4*17)
	}
}

func TestGridNPBScaleBytes(t *testing.T) {
	hosts := appHosts(10)
	base := GridNPB{NumHosts: 10, Duration: 60, ScaleBytes: 1}
	big := GridNPB{NumHosts: 10, Duration: 60, ScaleBytes: 3}
	wb := mustGen(t, base, hosts, 2)
	ws := mustGen(t, big, hosts, 2)
	if ws.TotalBytes() < 2*wb.TotalBytes() {
		t.Errorf("ScaleBytes=3 volume %d vs base %d", ws.TotalBytes(), wb.TotalBytes())
	}
}

func TestGridNPBDefaultsApplied(t *testing.T) {
	// Zero-value Duration/ScaleBytes fall back inside Generate.
	g := GridNPB{NumHosts: 10}
	w := mustGen(t, g, appHosts(10), 1)
	if w.Duration != 900 {
		t.Errorf("default duration = %v, want 900", w.Duration)
	}
	if len(w.Flows) == 0 {
		t.Error("no flows with defaults")
	}
}
