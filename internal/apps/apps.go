// Package apps models the paper's two foreground Grid applications as
// deterministic traffic generators: ScaLapack (a regular, evenly
// communicating MPI linear-algebra solve) and GridNPB 3.0 (irregular,
// bursty workflow graphs — Helical Chain, Visualization Pipeline, and Mixed
// Bag, all class S).
//
// The emulator only ever sees packet references, so an application is fully
// characterized here by when it injects which flows between which hosts. The
// two models are deliberately at the opposite ends the paper exploits:
// ScaLapack's traffic is predictable from placement alone (so PLACE ≈
// PROFILE), while GridNPB's is not (so PROFILE wins big) — see §4.2.1.
package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/traffic"
)

// App generates a foreground workload over a fixed set of application hosts.
type App interface {
	// Name identifies the application ("ScaLapack", "GridNPB").
	Name() string
	// Hosts is the number of injection points the application needs.
	Hosts() int
	// Generate emits the application's flows over the given hosts. The
	// returned workload's AppHosts equals hosts and Duration is the
	// application's virtual runtime. It errors when the host slice does not
	// match Hosts() — a configuration mistake, not an internal invariant.
	Generate(hosts []int, seed int64) (traffic.Workload, error)
}

// ---- ScaLapack ----

// ScaLapack models the paper's foreground solver: a 3000×3000 matrix solve
// on 10 nodes over MPICH-G (§4.1.4), running ~10 virtual minutes. The
// communication skeleton is right-looking block LU on a PRows×PCols process
// grid: each iteration broadcasts the current panel along its process row
// and the update multiplier along its process column. Traffic is regular and
// near-uniform across processes — the property that makes placement-based
// prediction accurate for it.
type ScaLapack struct {
	// N is the matrix dimension (default 3000).
	N int
	// NB is the blocking factor (default 100), giving N/NB iterations.
	NB int
	// PRows×PCols is the process grid (default 2×5 = 10 processes).
	PRows, PCols int
	// Duration is the virtual runtime in seconds (default 600, "about 10
	// minutes on our emulation platform").
	Duration float64
	// ScaleBytes multiplies transfer sizes (default 1). Raising it models
	// denser communication phases (e.g. including update-phase traffic)
	// without changing the iteration structure — useful when an experiment
	// compresses the 10-minute run into a shorter virtual window.
	ScaleBytes float64
}

// DefaultScaLapack returns the paper's configuration.
func DefaultScaLapack() ScaLapack {
	return ScaLapack{N: 3000, NB: 100, PRows: 2, PCols: 5, Duration: 600}
}

// Name implements App.
func (s ScaLapack) Name() string { return "ScaLapack" }

// Hosts implements App.
func (s ScaLapack) Hosts() int { return s.PRows * s.PCols }

// Generate implements App. The seed only jitters intra-iteration send times
// slightly; the communication structure is fixed by the algorithm.
func (s ScaLapack) Generate(hosts []int, seed int64) (traffic.Workload, error) {
	if len(hosts) != s.Hosts() {
		return traffic.Workload{}, fmt.Errorf("apps: ScaLapack needs %d hosts, got %d", s.Hosts(), len(hosts))
	}
	rng := rand.New(rand.NewSource(seed))
	grid := func(r, c int) int { return hosts[r*s.PCols+c] }
	scale := s.ScaleBytes
	if scale <= 0 {
		scale = 1
	}

	iters := s.N / s.NB
	if iters < 1 {
		iters = 1
	}
	iterSpan := s.Duration / float64(iters)

	var w traffic.Workload
	w.AppHosts = append([]int(nil), hosts...)
	w.Duration = s.Duration
	emit := func(src, dst int, t float64, bytes int64, tag string) {
		if src == dst || bytes <= 0 {
			return
		}
		w.Flows = append(w.Flows, traffic.Flow{
			ID: len(w.Flows), Src: src, Dst: dst, Start: t, Bytes: bytes, Tag: tag,
		})
	}

	for k := 0; k < iters; k++ {
		t := float64(k) * iterSpan
		remaining := s.N - k*s.NB
		if remaining <= 0 {
			break
		}
		// Panel is (remaining × NB) doubles; update row is (NB × remaining).
		panelBytes := int64(float64(remaining) * float64(s.NB) * 8 * scale)
		ownerCol := k % s.PCols
		ownerRow := k % s.PRows

		// Row broadcast: the panel-owning column sends the factored panel
		// to every other column, per process row (ring-pipelined in real
		// ScaLapack; the traffic volume is what matters here).
		for r := 0; r < s.PRows; r++ {
			src := grid(r, ownerCol)
			for c := 0; c < s.PCols; c++ {
				if c == ownerCol {
					continue
				}
				jitter := rng.Float64() * 0.05 * iterSpan
				emit(src, grid(r, c), t+jitter, panelBytes/int64(s.PRows), "scalapack")
			}
		}
		// Column broadcast: the pivot row distributes the update block down
		// each process column.
		for c := 0; c < s.PCols; c++ {
			src := grid(ownerRow, c)
			for r := 0; r < s.PRows; r++ {
				if r == ownerRow {
					continue
				}
				jitter := 0.3*iterSpan + rng.Float64()*0.05*iterSpan
				emit(src, grid(r, c), t+jitter, panelBytes/int64(s.PCols), "scalapack")
			}
		}
	}
	w.SortByStart()
	for i := range w.Flows {
		w.Flows[i].ID = i
	}
	return w, nil
}

// ---- GridNPB ----

// gridTask is one node of a GridNPB data-flow graph.
type gridTask struct {
	// name like "HC.BT-0".
	name string
	// benchmark kind ("BT", "SP", "LU", "MG", "FT") — sets compute time and
	// output size.
	kind string
	// succ are indices of downstream tasks receiving this task's output.
	succ []int
}

// GridNPB models the paper's second foreground application: the NAS Grid
// Benchmarks in workflow style (§4.1.4) — the combination of Helical Chain
// (HC), Visualization Pipeline (VP) and Mixed Bag (MB), class S, running
// ~15 virtual minutes. Tasks are placed round-robin on the application
// hosts; each task computes (network-silent) and then bursts its output to
// its successors. The resulting traffic is bursty and concentrated on a few
// host pairs, which is exactly what defeats PLACE's uniform all-pairs
// estimate.
type GridNPB struct {
	// NumHosts is the number of injection points (default 10, matching the
	// paper's platform).
	NumHosts int
	// Duration is the virtual runtime in seconds (default 900, "about 15
	// minutes").
	Duration float64
	// ScaleBytes multiplies transfer sizes (class S data scaled up so the
	// emulated network sees appreciable load; default 1).
	ScaleBytes float64
}

// DefaultGridNPB returns the paper's configuration.
func DefaultGridNPB() GridNPB {
	return GridNPB{NumHosts: 10, Duration: 900, ScaleBytes: 1}
}

// Name implements App.
func (g GridNPB) Name() string { return "GridNPB" }

// Hosts implements App.
func (g GridNPB) Hosts() int {
	if g.NumHosts <= 0 {
		return 10
	}
	return g.NumHosts
}

// taskKinds gives per-benchmark compute durations (relative units) and
// output sizes (bytes, class-S scaled up to exercise the network: GridNPB
// forwards whole solution arrays between tasks).
var taskKinds = map[string]struct {
	compute float64
	output  int64
}{
	"BT": {compute: 9, output: 8 << 20},
	"SP": {compute: 7, output: 6 << 20},
	"LU": {compute: 8, output: 6 << 20},
	"MG": {compute: 3, output: 12 << 20},
	"FT": {compute: 4, output: 16 << 20},
}

// hcGraph builds Helical Chain: BT→SP→LU repeated three times, a strict
// chain.
func hcGraph() []gridTask {
	kinds := []string{"BT", "SP", "LU", "BT", "SP", "LU", "BT", "SP", "LU"}
	tasks := make([]gridTask, len(kinds))
	for i, k := range kinds {
		tasks[i] = gridTask{name: fmt.Sprintf("HC.%s-%d", k, i), kind: k}
		if i > 0 {
			tasks[i-1].succ = []int{i}
		}
	}
	return tasks
}

// vpGraph builds Visualization Pipeline: three stages (BT flow solver, MG
// smoother, FT visualization) pipelined three deep.
func vpGraph() []gridTask {
	var tasks []gridTask
	id := func(stage, depth int) int { return depth*3 + stage }
	for depth := 0; depth < 3; depth++ {
		for stage, k := range []string{"BT", "MG", "FT"} {
			t := gridTask{name: fmt.Sprintf("VP.%s-%d", k, depth), kind: k}
			tasks = append(tasks, t)
			_ = stage
		}
	}
	for depth := 0; depth < 3; depth++ {
		for stage := 0; stage < 3; stage++ {
			i := id(stage, depth)
			if stage < 2 {
				tasks[i].succ = append(tasks[i].succ, id(stage+1, depth))
			}
			if depth < 2 {
				// The same stage of the next pipeline wave depends on this
				// wave's instance (pipelining).
				tasks[i].succ = append(tasks[i].succ, id(stage, depth+1))
			}
		}
	}
	return tasks
}

// mbGraph builds Mixed Bag: three layers (LU, MG, FT) with fan-out between
// layers — the most irregular of the three.
func mbGraph() []gridTask {
	var tasks []gridTask
	layerKind := []string{"LU", "MG", "FT"}
	width := 3
	id := func(layer, i int) int { return layer*width + i }
	for layer := 0; layer < 3; layer++ {
		for i := 0; i < width; i++ {
			tasks = append(tasks, gridTask{
				name: fmt.Sprintf("MB.%s-%d", layerKind[layer], i),
				kind: layerKind[layer],
			})
		}
	}
	for layer := 0; layer < 2; layer++ {
		for i := 0; i < width; i++ {
			// Fan out to self-index and all later indices of the next layer
			// (triangular dependency pattern, as in the NGB spec).
			for j := i; j < width; j++ {
				tasks[id(layer, i)].succ = append(tasks[id(layer, i)].succ, id(layer+1, j))
			}
		}
	}
	return tasks
}

// Generate implements App: schedules HC, VP and MB concurrently, placing
// tasks on hosts round-robin per graph with a seeded offset, simulating
// compute time between communication bursts.
func (g GridNPB) Generate(hosts []int, seed int64) (traffic.Workload, error) {
	if len(hosts) != g.Hosts() {
		return traffic.Workload{}, fmt.Errorf("apps: GridNPB needs %d hosts, got %d", g.Hosts(), len(hosts))
	}
	rng := rand.New(rand.NewSource(seed))
	duration := g.Duration
	if duration <= 0 {
		duration = 900
	}
	scale := g.ScaleBytes
	if scale <= 0 {
		scale = 1
	}

	var w traffic.Workload
	w.AppHosts = append([]int(nil), hosts...)
	w.Duration = duration

	graphs := [][]gridTask{hcGraph(), vpGraph(), mbGraph()}
	// Each graph repeats until the duration is filled; compute times are
	// scaled so one full pass of the longest chain fits in roughly a third
	// of the duration.
	for gi, tasks := range graphs {
		offset := rng.Intn(len(hosts))
		place := func(ti int) int { return hosts[(ti+offset)%len(hosts)] }

		// Critical-path length in compute units for time scaling.
		unit := duration / 3 / criticalPath(tasks)

		start := rng.Float64() * 0.1 * duration
		for start < duration {
			finish := scheduleGraph(&w, tasks, place, start, unit, scale, rng, gi)
			if finish <= start {
				break
			}
			// Idle gap between repetitions (workflow restart).
			start = finish + (0.3+0.4*rng.Float64())*unit
		}
	}
	w.SortByStart()
	for i := range w.Flows {
		w.Flows[i].ID = i
	}
	return w, nil
}

// scheduleGraph runs one pass of a task graph starting at t0, appending
// transfer flows, and returns the completion time of the last task.
func scheduleGraph(w *traffic.Workload, tasks []gridTask, place func(int) int, t0, unit, scale float64, rng *rand.Rand, graphID int) float64 {
	ready := make([]float64, len(tasks))
	for i := range ready {
		ready[i] = t0
	}
	var finishMax float64
	for i, task := range tasks {
		k := taskKinds[task.kind]
		compute := k.compute * unit * (0.85 + 0.3*rng.Float64())
		finish := ready[i] + compute
		if finish > finishMax {
			finishMax = finish
		}
		bytes := int64(float64(k.output) * scale)
		src := place(i)
		for _, s := range task.succ {
			dst := place(s)
			if src != dst && bytes > 0 {
				w.Flows = append(w.Flows, traffic.Flow{
					ID:    len(w.Flows),
					Src:   src,
					Dst:   dst,
					Start: finish,
					Bytes: bytes,
					Tag:   fmt.Sprintf("gridnpb/%s", task.name),
				})
			}
			// Successor can't start before this output lands; transfer time
			// is approximated as part of the successor's ready lag.
			arr := finish + 0.2*unit
			if arr > ready[s] {
				ready[s] = arr
			}
		}
		_ = graphID
	}
	return finishMax
}

// criticalPath returns the longest compute path through the task graph in
// compute units.
func criticalPath(tasks []gridTask) float64 {
	memo := make([]float64, len(tasks))
	for i := range memo {
		memo[i] = -1
	}
	var dfs func(i int) float64
	dfs = func(i int) float64 {
		if memo[i] >= 0 {
			return memo[i]
		}
		best := 0.0
		for _, s := range tasks[i].succ {
			if d := dfs(s); d > best {
				best = d
			}
		}
		memo[i] = taskKinds[tasks[i].kind].compute + best
		return memo[i]
	}
	worst := 0.0
	for i := range tasks {
		if d := dfs(i); d > worst {
			worst = d
		}
	}
	if worst <= 0 {
		return 1
	}
	return worst
}
