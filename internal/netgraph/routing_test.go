package netgraph

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// tieHeavyNetwork builds a connected network where most links share the same
// latency, so Dijkstra faces many equal-cost paths — the setting where a
// divergent tie-break between backends would show up immediately.
func tieHeavyNetwork(n int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	nw := New("ties")
	for i := 0; i < n; i++ {
		nw.AddRouter("r", 1)
		if i > 0 {
			nw.AddLink(i, rng.Intn(i), 1e9, 1e-3)
		}
	}
	for e := 0; e < 2*n; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			nw.AddLink(a, b, 1e9, 1e-3)
		}
	}
	return nw
}

// TestLazyMatchesFlatAllPairs is the equivalence matrix on tie-heavy random
// networks: every (src, dst) next hop and distance must be byte-identical
// between the flat table and the lazy oracle, including after evictions force
// rows to be recomputed.
func TestLazyMatchesFlatAllPairs(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		n := 60
		nw := tieHeavyNetwork(n, seed)
		flat := nw.BuildRoutingTable()
		lazy, err := NewLazyRouting(nw, 8) // far below n: evictions guaranteed
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if f, l := flat.NextLink(src, dst), lazy.NextLink(src, dst); f != l {
					t.Fatalf("seed %d: NextLink(%d,%d) flat %d, lazy %d", seed, src, dst, f, l)
				}
				fd, ld := flat.Distance(src, dst), lazy.Distance(src, dst)
				if fd != ld && !(math.IsInf(fd, 1) && math.IsInf(ld, 1)) {
					t.Fatalf("seed %d: Distance(%d,%d) flat %g, lazy %g", seed, src, dst, fd, ld)
				}
			}
		}
		// Re-query ascending after the LRU has churned: recomputed rows must
		// still match.
		for src := 0; src < n; src++ {
			if f, l := flat.NextLink(src, 0), lazy.NextLink(src, 0); f != l {
				t.Fatalf("seed %d: recomputed NextLink(%d,0) flat %d, lazy %d", seed, src, f, l)
			}
		}
		if s := lazy.Stats(); s.Evictions == 0 || s.Sources > s.Capacity {
			t.Fatalf("seed %d: expected eviction churn within capacity, got %+v", seed, s)
		}
	}
}

func TestLazyLRUStats(t *testing.T) {
	nw := tieHeavyNetwork(20, 3)
	lazy, err := NewLazyRouting(nw, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 5 distinct sources through a 4-row cache: 5 misses, 1 eviction.
	for src := 0; src < 5; src++ {
		lazy.NextLink(src, 10)
	}
	// Sources 1..4 are resident: all hits.
	for src := 1; src < 5; src++ {
		lazy.NextLink(src, 11)
	}
	s := lazy.Stats()
	if s.Misses != 5 || s.Evictions != 1 || s.Hits != 4 {
		t.Fatalf("stats = %+v, want 5 misses / 1 eviction / 4 hits", s)
	}
	if s.Sources != 4 || s.Capacity != 4 {
		t.Fatalf("stats = %+v, want 4 of 4 rows resident", s)
	}
	if s.Backend != "lazy" {
		t.Fatalf("backend = %q", s.Backend)
	}
	// Source 0 was evicted (least recently used): touching it recomputes.
	lazy.NextLink(0, 3)
	if s := lazy.Stats(); s.Misses != 6 || s.Evictions != 2 {
		t.Fatalf("after LRU re-touch: %+v, want 6 misses / 2 evictions", s)
	}
}

// TestLazyHitPathAllocFree gates the prepare-time hot path: once a source row
// is cached, queries against it must not allocate.
func TestLazyHitPathAllocFree(t *testing.T) {
	nw := tieHeavyNetwork(40, 5)
	lazy, err := NewLazyRouting(nw, 8)
	if err != nil {
		t.Fatal(err)
	}
	lazy.NextLink(3, 17) // warm the row
	allocs := testing.AllocsPerRun(200, func() {
		lazy.NextLink(3, 21)
		lazy.Distance(3, 9)
	})
	if allocs != 0 {
		t.Fatalf("lazy hit path allocates %.1f objects per query, want 0", allocs)
	}
}

// TestLazyConcurrentQueries drives the oracle from many goroutines (run under
// -race in CI); every answer is checked against the flat table.
func TestLazyConcurrentQueries(t *testing.T) {
	n := 40
	nw := tieHeavyNetwork(n, 9)
	flat := nw.BuildRoutingTable()
	lazy, err := NewLazyRouting(nw, 6)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 300; i++ {
				src, dst := rng.Intn(n), rng.Intn(n)
				if f, l := flat.NextLink(src, dst), lazy.NextLink(src, dst); f != l {
					select {
					case errc <- errors.New("concurrent lazy answer diverged from flat"):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestLazySelfPurgesOnMutation is the invalidation regression: a lazy oracle
// held across an AddLink must serve routes of the new topology, not its
// cached rows.
func TestLazySelfPurgesOnMutation(t *testing.T) {
	nw := New("purge")
	for i := 0; i < 4; i++ {
		nw.AddRouter("r", 1)
	}
	// Line 0-1-2-3.
	nw.AddLink(0, 1, 1e9, 1e-3)
	nw.AddLink(1, 2, 1e9, 1e-3)
	nw.AddLink(2, 3, 1e9, 1e-3)
	lazy, err := NewLazyRouting(nw, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d := lazy.Distance(0, 3); d != 3e-3 {
		t.Fatalf("line distance %g, want 3ms", d)
	}
	// A direct shortcut invalidates the cached row.
	short := nw.AddLink(0, 3, 1e9, 1e-4)
	if d := lazy.Distance(0, 3); d != 1e-4 {
		t.Fatalf("post-mutation distance %g, want 0.1ms (stale row served)", d)
	}
	if got := lazy.NextLink(0, 3); got != short {
		t.Fatalf("post-mutation next link %d, want shortcut %d", got, short)
	}
}

// TestSharedRoutingDropsAllBackendsOnMutation checks the generation cache
// across every backend: AddLink must invalidate flat, lazy, and hierarchical
// entries alike.
func TestSharedRoutingDropsAllBackendsOnMutation(t *testing.T) {
	nw := tieHeavyNetwork(30, 11)
	opts := []RoutingOptions{
		{Backend: Flat},
		{Backend: Lazy, LazyRows: 4},
		{Backend: Hier, Clusters: 3},
	}
	before := make([]Routing, len(opts))
	for i, o := range opts {
		r, err := nw.SharedRouting(o)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = r
		// Memoized: the same options return the identical oracle.
		again, err := nw.SharedRouting(o)
		if err != nil {
			t.Fatal(err)
		}
		if again != r {
			t.Fatalf("%s: SharedRouting did not memoize", o.Backend)
		}
	}
	nw.AddLink(0, 29, 1e9, 1e-6)
	for i, o := range opts {
		r, err := nw.SharedRouting(o)
		if err != nil {
			t.Fatal(err)
		}
		if r == before[i] {
			t.Fatalf("%s: SharedRouting served a stale oracle after AddLink", o.Backend)
		}
	}
}

// TestClusteredRoutingProperties checks the auto-clustered two-level tables on
// single-AS random networks: every pair routes loop-free to its destination,
// never beats the true shortest path, and stays within a bounded inflation of
// it.
func TestClusteredRoutingProperties(t *testing.T) {
	for _, seed := range []int64{2, 13} {
		n := 80
		nw := tieHeavyNetwork(n, seed)
		flat := nw.BuildRoutingTable()
		hier, err := nw.BuildClusteredRouting(DefaultClusters(n))
		if err != nil {
			t.Fatal(err)
		}
		var sumFlat, sumHier float64
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				path := nw.Route(hier, src, dst)
				if path == nil || path[0] != src || path[len(path)-1] != dst {
					t.Fatalf("seed %d: clustered route %d->%d broken: %v", seed, src, dst, path)
				}
				if len(path) > n {
					t.Fatalf("seed %d: clustered route %d->%d has a loop (%d hops)", seed, src, dst, len(path))
				}
				fd, hd := flat.Distance(src, dst), hier.Distance(src, dst)
				if hd < fd-1e-12 {
					t.Fatalf("seed %d: clustered distance %g beats shortest path %g for %d->%d", seed, hd, fd, src, dst)
				}
				sumFlat += fd
				sumHier += hd
			}
		}
		if sumHier > 2.5*sumFlat {
			t.Fatalf("seed %d: clustered path inflation %.2fx exceeds the 2.5x bound", seed, sumHier/sumFlat)
		}
	}
}

func TestClusteredRoutingDeterministic(t *testing.T) {
	nw := tieHeavyNetwork(50, 21)
	a, err := nw.BuildClusteredRouting(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.BuildClusteredRouting(5)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 50; src++ {
		for dst := 0; dst < 50; dst++ {
			if a.NextLink(src, dst) != b.NextLink(src, dst) {
				t.Fatalf("clustered build not deterministic at (%d,%d)", src, dst)
			}
		}
	}
	if a.Clusters() < 2 || a.Clusters() > 5 {
		t.Fatalf("got %d clusters, want 2..5", a.Clusters())
	}
	if s := a.Stats(); s.Backend != "hier-cluster" {
		t.Fatalf("backend = %q, want hier-cluster", s.Backend)
	}
}

func TestParseBackend(t *testing.T) {
	for name, want := range map[string]Backend{"auto": Auto, "flat": Flat, "lazy": Lazy, "hier": Hier} {
		got, err := ParseBackend(name)
		if err != nil || got != want {
			t.Fatalf("ParseBackend(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseBackend("quantum"); !errors.Is(err, ErrRoutingConfig) {
		t.Fatalf("unknown backend error = %v, want ErrRoutingConfig", err)
	}
}

func TestRoutingOptionsValidate(t *testing.T) {
	bad := []RoutingOptions{
		{LazyRows: -1},
		{Clusters: -2},
		{Clusters: 1},
		{Backend: Backend(99)},
	}
	for _, o := range bad {
		if err := o.Validate(); !errors.Is(err, ErrRoutingConfig) {
			t.Fatalf("Validate(%+v) = %v, want ErrRoutingConfig", o, err)
		}
	}
	nw := tieHeavyNetwork(10, 1)
	for _, o := range bad {
		if _, err := nw.BuildRouting(o); !errors.Is(err, ErrRoutingConfig) {
			t.Fatalf("BuildRouting(%+v) = %v, want ErrRoutingConfig", o, err)
		}
		if _, err := nw.SharedRouting(o); !errors.Is(err, ErrRoutingConfig) {
			t.Fatalf("SharedRouting(%+v) = %v, want ErrRoutingConfig", o, err)
		}
	}
	if _, err := NewLazyRouting(nw, -1); !errors.Is(err, ErrRoutingConfig) {
		t.Fatalf("NewLazyRouting(-1) = %v, want ErrRoutingConfig", err)
	}
	if _, err := nw.BuildClusteredRouting(1); !errors.Is(err, ErrRoutingConfig) {
		t.Fatalf("BuildClusteredRouting(1) = %v, want ErrRoutingConfig", err)
	}
}

// TestAutoPolicy checks the size cutover and that equivalent options share one
// shared-cache entry.
func TestAutoPolicy(t *testing.T) {
	small := tieHeavyNetwork(30, 17)
	r, err := small.SharedRouting(RoutingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Backend != "flat" {
		t.Fatalf("auto on %d nodes picked %q, want flat", 30, s.Backend)
	}
	// Auto and explicit Flat normalize to the same cache key.
	rf, err := small.SharedRouting(RoutingOptions{Backend: Flat})
	if err != nil {
		t.Fatal(err)
	}
	if rf != r {
		t.Fatal("Auto and Flat built separate oracles on a small network")
	}

	if o := (RoutingOptions{}).normalized(AutoFlatMaxNodes + 1); o.Backend != Lazy {
		t.Fatalf("auto above the flat ceiling picked %v, want Lazy", o.Backend)
	}
	if o := (RoutingOptions{}).normalized(AutoFlatMaxNodes); o.Backend != Flat {
		t.Fatalf("auto at the flat ceiling picked %v, want Flat", o.Backend)
	}
}

func TestDefaultSizing(t *testing.T) {
	if r := DefaultLazyRows(100_000); r < MinLazyRows || r > MaxLazyRows {
		t.Fatalf("DefaultLazyRows(1e5) = %d, outside [%d,%d]", r, MinLazyRows, MaxLazyRows)
	}
	if r := DefaultLazyRows(100); r != 100 {
		t.Fatalf("DefaultLazyRows(100) = %d, want clamped to n", r)
	}
	if c := DefaultClusters(100_000); c < 2 {
		t.Fatalf("DefaultClusters(1e5) = %d", c)
	}
	// The auto cluster count keeps two-level memory sub-quadratic: for 1e5
	// nodes the model 12·(n²/C + C²) must be far below the 12·n² flat cost.
	n := float64(100_000)
	c := float64(DefaultClusters(100_000))
	model := 12 * (n*n/c + c*c)
	if flat := 12 * n * n; model > flat/50 {
		t.Fatalf("two-level memory model %.3g is not ≪ flat %.3g", model, flat)
	}
}
