package netgraph

import (
	"strings"
	"testing"
)

func TestComputeStatsLine(t *testing.T) {
	nw := lineNetwork() // h0 - r0 - r1 - r2 - h1
	s := nw.ComputeStats()
	if s.Nodes != 5 || s.Routers != 3 || s.Hosts != 2 || s.Links != 4 {
		t.Fatalf("counts wrong: %+v", s)
	}
	// Router chain r0-r1-r2: degrees 1,2,1; diameter 2; mean path (1+2+1)*2/6...
	// ordered pairs: (r0,r1)=1 (r0,r2)=2 (r1,r2)=1 and symmetric -> mean = 8/6.
	if s.MinDegree != 1 || s.MaxDegree != 2 {
		t.Errorf("degrees: %+v", s)
	}
	if s.Diameter != 2 {
		t.Errorf("diameter = %d, want 2", s.Diameter)
	}
	if s.MeanPathLength < 1.32 || s.MeanPathLength > 1.34 {
		t.Errorf("mean path = %v, want ~1.333", s.MeanPathLength)
	}
	if s.MinLatency != 0.001 || s.MaxLatency != 0.003 {
		t.Errorf("latency bounds: %+v", s)
	}
	if !strings.Contains(s.String(), "diameter=2") {
		t.Error("String() incomplete")
	}
}

func TestComputeStatsDisconnectedRouters(t *testing.T) {
	nw := New("d")
	nw.AddRouter("a", 1)
	nw.AddRouter("b", 1)
	s := nw.ComputeStats()
	if s.Diameter != -1 || s.MeanPathLength != -1 {
		t.Errorf("disconnected stats: %+v", s)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := New("e").ComputeStats()
	if s.Nodes != 0 || s.Diameter != -1 {
		t.Errorf("empty stats: %+v", s)
	}
}
