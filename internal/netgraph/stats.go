package netgraph

import (
	"fmt"
	"math"
	"strings"
)

// Stats summarizes a topology's structure — the quantities one checks when
// validating that a generated network is Internet-like (BRITE's goal) or
// matches a real network's shape.
type Stats struct {
	Nodes, Routers, Hosts, Links int
	// MinDegree/MaxDegree/MeanDegree describe the router-level degree
	// distribution (hosts excluded: their degree is 1 by construction).
	MinDegree, MaxDegree int
	MeanDegree           float64
	// Diameter is the maximum hop count between any two routers;
	// MeanPathLength the average hop count over all router pairs.
	// Both are -1 for disconnected router graphs.
	Diameter       int
	MeanPathLength float64
	// TotalBandwidth sums all link capacities (bits/s); MinLatency and
	// MaxLatency bound the link propagation delays.
	TotalBandwidth         float64
	MinLatency, MaxLatency float64
}

// ComputeStats derives Stats via BFS over the router-level subgraph.
func (nw *Network) ComputeStats() Stats {
	s := Stats{
		Nodes:   nw.NumNodes(),
		Routers: nw.NumRouters(),
		Hosts:   nw.NumHosts(),
		Links:   len(nw.Links),
	}
	routers := nw.Routers()
	if len(nw.Links) > 0 {
		s.MinLatency = math.Inf(1)
	}
	for _, l := range nw.Links {
		s.TotalBandwidth += l.Bandwidth
		if l.Latency < s.MinLatency {
			s.MinLatency = l.Latency
		}
		if l.Latency > s.MaxLatency {
			s.MaxLatency = l.Latency
		}
	}

	// Router-level degrees (router-router links only).
	isRouter := make([]bool, nw.NumNodes())
	for _, r := range routers {
		isRouter[r] = true
	}
	if len(routers) > 0 {
		s.MinDegree = math.MaxInt
		totalDeg := 0
		for _, r := range routers {
			deg := 0
			for _, nb := range nw.Neighbors(r) {
				if isRouter[nb] {
					deg++
				}
			}
			totalDeg += deg
			if deg < s.MinDegree {
				s.MinDegree = deg
			}
			if deg > s.MaxDegree {
				s.MaxDegree = deg
			}
		}
		s.MeanDegree = float64(totalDeg) / float64(len(routers))
	}

	// BFS all-pairs hop counts over routers.
	s.Diameter, s.MeanPathLength = -1, -1
	if len(routers) > 1 {
		pos := make(map[int]int, len(routers))
		for i, r := range routers {
			pos[r] = i
		}
		diameter := 0
		var sum float64
		pairs := 0
		connected := true
		for _, src := range routers {
			dist := make([]int, len(routers))
			for i := range dist {
				dist[i] = -1
			}
			dist[pos[src]] = 0
			queue := []int{src}
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for _, nb := range nw.Neighbors(v) {
					if !isRouter[nb] {
						continue
					}
					if dist[pos[nb]] == -1 {
						dist[pos[nb]] = dist[pos[v]] + 1
						queue = append(queue, nb)
					}
				}
			}
			for i, d := range dist {
				if routers[i] == src {
					continue
				}
				if d == -1 {
					connected = false
					continue
				}
				if d > diameter {
					diameter = d
				}
				sum += float64(d)
				pairs++
			}
		}
		if connected && pairs > 0 {
			s.Diameter = diameter
			s.MeanPathLength = sum / float64(pairs)
		}
	}
	return s
}

// String renders the stats as a short report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d (routers=%d hosts=%d) links=%d\n", s.Nodes, s.Routers, s.Hosts, s.Links)
	fmt.Fprintf(&b, "router degree: min=%d max=%d mean=%.2f\n", s.MinDegree, s.MaxDegree, s.MeanDegree)
	fmt.Fprintf(&b, "router graph: diameter=%d mean-path=%.2f hops\n", s.Diameter, s.MeanPathLength)
	fmt.Fprintf(&b, "links: total-bw=%.3g bps latency=[%.3g, %.3g] s\n", s.TotalBandwidth, s.MinLatency, s.MaxLatency)
	return b.String()
}
