package netgraph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomNetwork builds a connected multi-AS topology with deliberately
// repeated latency values, so equal-distance ties (the case the deterministic
// tie-break exists for) actually occur.
func randomASNetwork(t *testing.T, routers, hosts, ases int, seed int64) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nw := New(fmt.Sprintf("rand-%d", seed))
	latencies := []float64{1e-3, 2e-3, 5e-3, 1e-3, 2e-3} // repeats force ties
	for r := 0; r < routers; r++ {
		id := nw.AddRouter(fmt.Sprintf("r%d", r), r%ases)
		if id > 0 {
			// Spanning chain keeps the network connected.
			nw.AddLink(id, rng.Intn(id), 1e9, latencies[rng.Intn(len(latencies))])
		}
	}
	for extra := 0; extra < routers; extra++ {
		a, b := rng.Intn(routers), rng.Intn(routers)
		if a != b {
			nw.AddLink(a, b, 1e9, latencies[rng.Intn(len(latencies))])
		}
	}
	for h := 0; h < hosts; h++ {
		r := rng.Intn(routers)
		id := nw.AddHost(fmt.Sprintf("h%d", h), nw.Nodes[r].AS)
		nw.AddLink(id, r, 100e6, 0.1e-3)
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("random network invalid: %v", err)
	}
	return nw
}

// TestBuildRoutingTableParallelMatchesSequential asserts the tentpole
// invariant: the fanned-out build is byte-identical to the sequential one —
// same next-hop links, same distances — for every worker count.
func TestBuildRoutingTableParallelMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		nw := randomASNetwork(t, 40, 30, 4, seed)
		seq := nw.BuildRoutingTableParallel(1)
		for _, workers := range []int{2, 3, 8, 64} {
			par := nw.BuildRoutingTableParallel(workers)
			if !reflect.DeepEqual(seq.nextLink, par.nextLink) {
				t.Fatalf("seed %d workers %d: nextLink differs from sequential build", seed, workers)
			}
			if !reflect.DeepEqual(seq.dist, par.dist) {
				t.Fatalf("seed %d workers %d: dist differs from sequential build", seed, workers)
			}
		}
	}
}

// TestBuildHierarchicalRoutingParallelMatchesSequential does the same for the
// two-level build's per-AS fan-out.
func TestBuildHierarchicalRoutingParallelMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		nw := randomASNetwork(t, 36, 24, 6, seed)
		seq := nw.BuildHierarchicalRoutingParallel(1)
		for _, workers := range []int{2, 5, 16} {
			par := nw.BuildHierarchicalRoutingParallel(workers)
			if !reflect.DeepEqual(seq.intra, par.intra) {
				t.Fatalf("seed %d workers %d: intra tables differ from sequential build", seed, workers)
			}
			if !reflect.DeepEqual(seq.nextAS, par.nextAS) || !reflect.DeepEqual(seq.gateway, par.gateway) {
				t.Fatalf("seed %d workers %d: AS-level tables differ from sequential build", seed, workers)
			}
		}
	}
}

// TestDijkstraScratchAllocFree is the allocs/op guard on the new inner loop:
// with the scratch warmed up, a full single-source Dijkstra allocates
// nothing — the property that makes the all-pairs build allocation-lean.
func TestDijkstraScratchAllocFree(t *testing.T) {
	nw := randomASNetwork(t, 50, 40, 4, 7)
	n := nw.NumNodes()
	rt := &RoutingTable{n: n, nextLink: make([]int32, n*n), dist: make([]float64, n*n)}
	s := newDijkstraScratch(n)
	src := 0
	allocs := testing.AllocsPerRun(20, func() {
		base := src * n
		nw.dijkstraRow(src, rt.nextLink[base:base+n], rt.dist[base:base+n], s)
		src = (src + 1) % n
	})
	if allocs != 0 {
		t.Errorf("dijkstra allocates %.1f objects per source with a warm scratch, want 0", allocs)
	}
}

// TestScratchHeapOrdering sanity-checks the hand-rolled 4-ary heap against
// the (dist, node) total order on adversarial push patterns.
func TestScratchHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := newDijkstraScratch(8)
	for round := 0; round < 50; round++ {
		s.reset(8)
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			// Few distinct distances: plenty of ties broken by node.
			s.push(pqItem{node: rng.Intn(10), dist: float64(rng.Intn(4))})
		}
		prev := s.pop()
		for len(s.heap) > 0 {
			cur := s.pop()
			if pqLess(cur, prev) {
				t.Fatalf("heap popped %v after %v (out of order)", cur, prev)
			}
			prev = cur
		}
	}
}

// TestSharedRoutingTableMemoized checks the shared cache: repeated calls
// return the same table without rebuilding, and topology mutations
// invalidate it.
func TestSharedRoutingTableMemoized(t *testing.T) {
	nw := randomASNetwork(t, 10, 5, 2, 3)
	if nw.RoutingBuilds() != 0 {
		t.Fatalf("fresh network reports %d builds", nw.RoutingBuilds())
	}
	a := nw.SharedRoutingTable()
	b := nw.SharedRoutingTable()
	if a != b {
		t.Error("SharedRoutingTable rebuilt instead of memoizing")
	}
	if got := nw.RoutingBuilds(); got != 1 {
		t.Errorf("RoutingBuilds = %d after two shared lookups, want 1", got)
	}
	// A topology mutation invalidates the cache.
	lid := nw.AddLink(0, nw.NumNodes()-1, 1e9, 0.5e-3)
	c := nw.SharedRoutingTable()
	if c == a {
		t.Error("SharedRoutingTable served a stale table after AddLink")
	}
	if got := nw.RoutingBuilds(); got != 2 {
		t.Errorf("RoutingBuilds = %d after invalidation, want 2", got)
	}
	_ = lid
}
