// Package netgraph models the virtual network that the emulator studies: the
// routers, hosts, and links of the target topology, together with static
// shortest-path routing and an ICMP-style route discovery (the emulated
// traceroute the PLACE approach relies on).
//
// It corresponds to MaSSF's network description layer: "hosts and routers are
// viewed as graph nodes and network links are taken as graph edges" (§2.1).
package netgraph

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// NodeKind distinguishes packet-forwarding routers from traffic-terminating
// hosts.
type NodeKind int

const (
	// Router forwards traffic and keeps a routing table.
	Router NodeKind = iota
	// Host originates and sinks traffic; it has exactly one access link in
	// well-formed topologies (not enforced).
	Host
)

func (k NodeKind) String() string {
	switch k {
	case Router:
		return "router"
	case Host:
		return "host"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one virtual network entity.
type Node struct {
	ID   int
	Kind NodeKind
	// Name is a human-readable label ("sdsc-core-1", "campus-h17").
	Name string
	// AS is the autonomous-system number the node belongs to. Routing table
	// memory grows with the AS router count (the paper's m = 10 + x²).
	AS int
	// Site is an optional placement label (e.g. the TeraGrid site).
	Site string
}

// Link is an undirected network link with capacity and propagation delay.
type Link struct {
	ID int
	// A and B are the endpoints' node IDs.
	A, B int
	// Bandwidth in bits per second.
	Bandwidth float64
	// Latency is the one-way propagation delay in seconds.
	Latency float64
}

// Other returns the endpoint of l that is not node n (panics if n is not an
// endpoint).
func (l Link) Other(n int) int {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	panic(fmt.Sprintf("netgraph: node %d is not an endpoint of link %d", n, l.ID))
}

// Network is the virtual topology.
type Network struct {
	Name  string
	Nodes []Node
	Links []Link
	// adj[n] lists link IDs incident to node n.
	adj [][]int

	// Shared routing cache (SharedRouting / SharedRoutingTable): memoized
	// oracles keyed by normalized RoutingOptions, invalidated by topology
	// mutations via gen. gen is atomic so long-lived oracles (LazyRouting)
	// can cheaply detect staleness on every query without taking mu. builds
	// counts every full routing construction (flat or hierarchical) for the
	// tests asserting that pipelines reuse one table instead of rebuilding
	// O(n²) state.
	mu     sync.Mutex
	gen    atomic.Int64
	shared map[RoutingOptions]sharedEntry
	builds atomic.Int64
}

// New returns an empty network with the given name.
func New(name string) *Network {
	return &Network{Name: name}
}

// AddRouter appends a router node and returns its ID.
func (nw *Network) AddRouter(name string, as int) int {
	return nw.addNode(Node{Kind: Router, Name: name, AS: as})
}

// AddHost appends a host node and returns its ID.
func (nw *Network) AddHost(name string, as int) int {
	return nw.addNode(Node{Kind: Host, Name: name, AS: as})
}

func (nw *Network) addNode(n Node) int {
	n.ID = len(nw.Nodes)
	nw.Nodes = append(nw.Nodes, n)
	nw.adj = append(nw.adj, nil)
	nw.invalidateRouting()
	return n.ID
}

// invalidateRouting marks any cached routing stale after a topology
// mutation: SharedRouting drops every memoized backend (flat, lazy,
// hierarchical) on the next lookup, and live LazyRouting oracles purge their
// cached rows on the next query.
func (nw *Network) invalidateRouting() {
	nw.gen.Add(1)
}

// SetSite labels node n with a site.
func (nw *Network) SetSite(n int, site string) { nw.Nodes[n].Site = site }

// AddLink connects nodes a and b with the given bandwidth (bits/s) and
// one-way latency (seconds), returning the link ID.
func (nw *Network) AddLink(a, b int, bandwidth, latency float64) int {
	l := Link{ID: len(nw.Links), A: a, B: b, Bandwidth: bandwidth, Latency: latency}
	nw.Links = append(nw.Links, l)
	nw.adj[a] = append(nw.adj[a], l.ID)
	nw.adj[b] = append(nw.adj[b], l.ID)
	nw.invalidateRouting()
	return l.ID
}

// NumNodes returns the node count.
func (nw *Network) NumNodes() int { return len(nw.Nodes) }

// NumRouters returns the number of router nodes.
func (nw *Network) NumRouters() int { return nw.countKind(Router) }

// NumHosts returns the number of host nodes.
func (nw *Network) NumHosts() int { return nw.countKind(Host) }

func (nw *Network) countKind(k NodeKind) int {
	c := 0
	for _, n := range nw.Nodes {
		if n.Kind == k {
			c++
		}
	}
	return c
}

// IncidentLinks returns the IDs of links touching node n.
func (nw *Network) IncidentLinks(n int) []int { return nw.adj[n] }

// Neighbors returns the node IDs adjacent to n.
func (nw *Network) Neighbors(n int) []int {
	out := make([]int, 0, len(nw.adj[n]))
	for _, lid := range nw.adj[n] {
		out = append(out, nw.Links[lid].Other(n))
	}
	return out
}

// LinkBetween returns the lowest-latency link directly connecting a and b,
// or -1 if none exists.
func (nw *Network) LinkBetween(a, b int) int {
	best := -1
	for _, lid := range nw.adj[a] {
		if nw.Links[lid].Other(a) == b {
			if best == -1 || nw.Links[lid].Latency < nw.Links[best].Latency {
				best = lid
			}
		}
	}
	return best
}

// TotalBandwidth returns the sum of link bandwidths in and out of node n —
// the TOP approach's vertex weight ("each virtual node is weighted with the
// total bandwidth in and out of it", §3.1).
func (nw *Network) TotalBandwidth(n int) float64 {
	var sum float64
	for _, lid := range nw.adj[n] {
		sum += nw.Links[lid].Bandwidth
	}
	return sum
}

// ASRouterCount returns the number of routers in each AS, keyed by AS number.
func (nw *Network) ASRouterCount() map[int]int {
	out := make(map[int]int)
	for _, n := range nw.Nodes {
		if n.Kind == Router {
			out[n.AS]++
		}
	}
	return out
}

// MemoryWeight returns the paper's memory-requirement estimate for node n:
// routers pay m = 10 + x² where x is the router count of their AS (routing
// table size is O(n²) per AS, §2.2.2 and §5); hosts pay the constant 10.
func (nw *Network) MemoryWeight(n int, asRouters map[int]int) int64 {
	if nw.Nodes[n].Kind != Router {
		return 10
	}
	x := int64(asRouters[nw.Nodes[n].AS])
	return 10 + x*x
}

// Hosts returns the IDs of all host nodes in ID order.
func (nw *Network) Hosts() []int {
	var out []int
	for _, n := range nw.Nodes {
		if n.Kind == Host {
			out = append(out, n.ID)
		}
	}
	return out
}

// Routers returns the IDs of all router nodes in ID order.
func (nw *Network) Routers() []int {
	var out []int
	for _, n := range nw.Nodes {
		if n.Kind == Router {
			out = append(out, n.ID)
		}
	}
	return out
}

// AccessRouter returns the first router reachable from host h (its attachment
// point), or -1 if h has no router neighbor.
func (nw *Network) AccessRouter(h int) int {
	for _, nb := range nw.Neighbors(h) {
		if nw.Nodes[nb].Kind == Router {
			return nb
		}
	}
	return -1
}

// Validate checks topology invariants: link endpoints in range and distinct,
// positive bandwidth, non-negative latency, every host attached by at least
// one link, and the network connected (if non-empty).
func (nw *Network) Validate() error {
	n := len(nw.Nodes)
	for _, l := range nw.Links {
		if l.A < 0 || l.A >= n || l.B < 0 || l.B >= n {
			return fmt.Errorf("netgraph: link %d endpoint out of range", l.ID)
		}
		if l.A == l.B {
			return fmt.Errorf("netgraph: link %d is a self loop on node %d", l.ID, l.A)
		}
		if l.Bandwidth <= 0 {
			return fmt.Errorf("netgraph: link %d has non-positive bandwidth", l.ID)
		}
		if l.Latency < 0 {
			return fmt.Errorf("netgraph: link %d has negative latency", l.ID)
		}
	}
	for _, node := range nw.Nodes {
		if node.Kind == Host && len(nw.adj[node.ID]) == 0 {
			return fmt.Errorf("netgraph: host %d (%s) has no access link", node.ID, node.Name)
		}
	}
	if n > 0 && !nw.connected() {
		return fmt.Errorf("netgraph: network %q is not connected", nw.Name)
	}
	return nil
}

func (nw *Network) connected() bool {
	n := len(nw.Nodes)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range nw.Neighbors(v) {
			if !seen[nb] {
				seen[nb] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	return count == n
}

// ---- Shortest-path routing ----

// RoutingTable holds, for every ordered pair of nodes, the next-hop link on
// the latency-shortest path. It is the O(n²) structure whose memory footprint
// motivates the paper's memory constraint.
type RoutingTable struct {
	n int
	// nextLink[src*n+dst] is the link ID of the first hop from src toward
	// dst, or -1 when src == dst or dst is unreachable.
	nextLink []int32
	// dist[src*n+dst] is the total path latency in seconds.
	dist []float64
}

// BuildRoutingTable runs Dijkstra from every node over link latencies and
// materializes the full next-hop table, fanning sources out over GOMAXPROCS
// workers. Ties are broken deterministically by link ID, and each source
// writes only its own table row, so the result is byte-identical to the
// sequential build regardless of worker count.
func (nw *Network) BuildRoutingTable() *RoutingTable {
	return nw.BuildRoutingTableParallel(0)
}

// BuildRoutingTableParallel is BuildRoutingTable with an explicit worker
// count: non-positive means GOMAXPROCS, 1 is the exact sequential build the
// equivalence tests compare against.
func (nw *Network) BuildRoutingTableParallel(workers int) *RoutingTable {
	nw.builds.Add(1)
	n := len(nw.Nodes)
	rt := &RoutingTable{
		n:        n,
		nextLink: make([]int32, n*n),
		dist:     make([]float64, n*n),
	}
	w := parallel.Workers(workers, n)
	scratches := make([]*dijkstraScratch, w)
	parallel.ForEachWorker(n, w, func(worker, src int) {
		s := scratches[worker]
		if s == nil {
			s = newDijkstraScratch(n)
			scratches[worker] = s
		}
		base := src * n
		nw.dijkstraRow(src, rt.nextLink[base:base+n], rt.dist[base:base+n], s)
	})
	return rt
}

// SharedRoutingTable returns the network's memoized flat routing table,
// building it on first use and after any topology mutation. It is the
// flat-specific entry of the SharedRouting cache, kept for callers that need
// the dense table itself; size-agnostic code should use SharedRouting or
// AutoRouting, which stay sub-quadratic on large topologies. Safe for
// concurrent use; do not mutate the topology while runs are in flight.
func (nw *Network) SharedRoutingTable() *RoutingTable {
	r, err := nw.SharedRouting(RoutingOptions{Backend: Flat})
	if err != nil {
		// Flat options always validate and the dense build cannot fail.
		panic(fmt.Sprintf("netgraph: SharedRoutingTable: %v", err))
	}
	return r.(*RoutingTable)
}

// RoutingBuilds reports how many full routing constructions (flat or
// hierarchical) this network has performed — the counter the "built exactly
// once per scenario" regression tests watch.
func (nw *Network) RoutingBuilds() int64 { return nw.builds.Load() }

// pqItem is one priority-queue entry: a node (an index local to the graph
// being searched) at a tentative distance.
type pqItem struct {
	node int
	dist float64
}

// pqLess orders the Dijkstra frontier by (distance, node) — the same total
// order the original container/heap implementation used, which makes the pop
// sequence (and therefore the built table) independent of heap layout.
func pqLess(a, b pqItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.node < b.node
}

// dijkstraScratch is the reusable per-worker state of one Dijkstra
// execution: visited flags, the first-hop-link column being built, and the
// frontier heap's backing array. Reusing it across sources removes every
// per-source allocation from the all-pairs build — the same zero-alloc
// treatment the des kernel's event heap got, where container/heap's
// any-typed interface was boxing two allocations onto every push/pop.
type dijkstraScratch struct {
	done      []bool
	firstLink []int32
	heap      []pqItem
}

func newDijkstraScratch(n int) *dijkstraScratch {
	return &dijkstraScratch{
		done:      make([]bool, n),
		firstLink: make([]int32, n),
		heap:      make([]pqItem, 0, n),
	}
}

// reset prepares the scratch for a search over n nodes, growing the buffers
// when the previous search was smaller.
func (s *dijkstraScratch) reset(n int) {
	if cap(s.done) < n {
		s.done = make([]bool, n)
		s.firstLink = make([]int32, n)
	}
	s.done = s.done[:n]
	s.firstLink = s.firstLink[:n]
	for i := range s.done {
		s.done[i] = false
	}
	for i := range s.firstLink {
		s.firstLink[i] = -1
	}
	s.heap = s.heap[:0]
}

// push adds an item to the 4-ary min-heap. A 4-ary layout halves the tree
// depth of the binary heap and keeps each sift's children in one cache line,
// which is where the Dijkstra inner loop spends its time.
func (s *dijkstraScratch) push(it pqItem) {
	s.heap = append(s.heap, it)
	q := s.heap
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !pqLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

// pop removes and returns the minimum item.
func (s *dijkstraScratch) pop() pqItem {
	q := s.heap
	it := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	s.heap = q
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		min := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if pqLess(q[c], q[min]) {
				min = c
			}
		}
		if !pqLess(q[min], q[i]) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return it
}

// dijkstraRow computes one source's next-hop and distance row into the
// caller's slices (each of length n). It is the single row builder the flat
// all-pairs table and the lazy oracle share, which is what makes their rows
// byte-identical: same heap, same deterministic first-hop-link tie-break.
func (nw *Network) dijkstraRow(src int, next []int32, dist []float64, s *dijkstraScratch) {
	n := len(nw.Nodes)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	s.reset(n)
	firstLink, done := s.firstLink, s.done
	dist[src] = 0
	s.push(pqItem{node: src})
	for len(s.heap) > 0 {
		v := s.pop().node
		if done[v] {
			continue
		}
		done[v] = true
		for _, lid := range nw.adj[v] {
			l := &nw.Links[lid]
			u := l.Other(v)
			nd := dist[v] + l.Latency
			first := firstLink[v]
			if v == src {
				first = int32(lid)
			}
			// Strictly better, or equal with a deterministic tie-break on
			// the first-hop link ID.
			if nd < dist[u] || (nd == dist[u] && !done[u] && firstLink[u] > first) {
				dist[u] = nd
				firstLink[u] = first
				s.push(pqItem{node: u, dist: nd})
			}
		}
	}
	copy(next, firstLink)
	next[src] = -1
}

// NextLink returns the first-hop link from src toward dst, or -1.
func (rt *RoutingTable) NextLink(src, dst int) int {
	return int(rt.nextLink[src*rt.n+dst])
}

// Distance returns the total latency of the routed path from src to dst
// (+Inf if unreachable, 0 if src == dst).
func (rt *RoutingTable) Distance(src, dst int) float64 {
	if src == dst {
		return 0
	}
	return rt.dist[src*rt.n+dst]
}

// Route returns the node path from src to dst, inclusive of both endpoints,
// following the routing table; nil if unreachable.
func (nw *Network) Route(rt Routing, src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	path := []int{src}
	cur := src
	for cur != dst {
		lid := rt.NextLink(cur, dst)
		if lid < 0 {
			return nil
		}
		cur = nw.Links[lid].Other(cur)
		path = append(path, cur)
		if len(path) > len(nw.Nodes)+1 {
			// Defensive: a corrupt table would loop forever.
			return nil
		}
	}
	return path
}

// RoutePath walks the routing oracle once and returns both the node path
// (inclusive of both endpoints) and the link IDs between consecutive hops —
// the fused equivalent of Route followed by RouteLinks at half the oracle
// walks, for callers (like the emulator's flow setup) that need both views.
// Returns (nil, nil) if dst is unreachable.
func (nw *Network) RoutePath(rt Routing, src, dst int) (path, links []int) {
	if src == dst {
		return []int{src}, nil
	}
	path = append(path, src)
	cur := src
	for cur != dst {
		lid := rt.NextLink(cur, dst)
		if lid < 0 {
			return nil, nil
		}
		links = append(links, lid)
		cur = nw.Links[lid].Other(cur)
		path = append(path, cur)
		if len(path) > len(nw.Nodes)+1 {
			// Defensive: a corrupt table would loop forever.
			return nil, nil
		}
	}
	return path, links
}

// RouteLinks returns the link-ID path from src to dst; nil if unreachable or
// src == dst.
func (nw *Network) RouteLinks(rt Routing, src, dst int) []int {
	if src == dst {
		return nil
	}
	var links []int
	cur := src
	for cur != dst {
		lid := rt.NextLink(cur, dst)
		if lid < 0 {
			return nil
		}
		links = append(links, lid)
		cur = nw.Links[lid].Other(cur)
		if len(links) > len(nw.Links)+1 {
			return nil
		}
	}
	return links
}

// Hop is one line of a Traceroute result.
type Hop struct {
	Node int
	// RTT is the round-trip time to this hop in seconds (twice the one-way
	// accumulated latency, as a real traceroute would observe).
	RTT float64
}

// Traceroute emulates the ICMP-based route discovery the paper implements
// inside MaSSF for the PLACE approach (§3.2): it reports every hop on the
// routed path from src to dst with cumulative round-trip times. Returns nil
// if dst is unreachable.
func (nw *Network) Traceroute(rt Routing, src, dst int) []Hop {
	path := nw.Route(rt, src, dst)
	if path == nil {
		return nil
	}
	hops := make([]Hop, 0, len(path)-1)
	var oneWay float64
	for i := 1; i < len(path); i++ {
		lid := nw.LinkBetween(path[i-1], path[i])
		if lid >= 0 {
			oneWay += nw.Links[lid].Latency
		}
		hops = append(hops, Hop{Node: path[i], RTT: 2 * oneWay})
	}
	return hops
}
