package netgraph

import (
	"fmt"
	"sync"
)

// LazyRouting is the on-demand route oracle: instead of materializing the
// O(n²) all-pairs table it computes single-source Dijkstra rows the first
// time a source is queried and keeps the most recently used rows in a
// bounded LRU. Memory is O(capacity·n); a scenario that touches s distinct
// sources (emu.prepare resolves every flow route up front, so s is the
// number of distinct flow endpoints) pays min(s, capacity) rows.
//
// Rows come from the same dijkstraRow builder as the flat table, so answers
// are byte-identical to RoutingTable for every (src, dst) pair. The oracle
// watches its network's topology generation: a mutation (AddLink, AddRouter,
// AddHost) purges all cached rows on the next query, so a held reference can
// never serve stale routes.
//
// Safe for concurrent use; queries serialize on one mutex (hits are
// allocation-free, so the critical section is a map lookup plus two pointer
// swaps).
type LazyRouting struct {
	nw      *Network
	capRows int

	mu         sync.Mutex
	gen        int64
	n          int // row length the cache was (re)built for
	rows       map[int]*lazyRow
	head, tail *lazyRow // LRU list, most recent at head
	free       *lazyRow // recycled rows (singly linked via next)
	scratch    *dijkstraScratch

	hits, misses, evictions int64
}

// lazyRow is one cached per-source row plus its LRU links.
type lazyRow struct {
	src        int
	nextLink   []int32
	dist       []float64
	prev, next *lazyRow
}

// NewLazyRouting returns a lazy oracle over nw holding at most rows cached
// source rows; rows = 0 selects the automatic byte-budgeted capacity
// (DefaultLazyRows) and a negative value is rejected with ErrRoutingConfig.
func NewLazyRouting(nw *Network, rows int) (*LazyRouting, error) {
	if rows < 0 {
		return nil, fmt.Errorf("%w: lazy LRU size %d, must be >= 0 (0 = automatic)", ErrRoutingConfig, rows)
	}
	n := len(nw.Nodes)
	if rows == 0 {
		rows = DefaultLazyRows(n)
	}
	return &LazyRouting{
		nw:      nw,
		capRows: rows,
		gen:     nw.gen.Load(),
		n:       n,
		rows:    make(map[int]*lazyRow, rows),
		scratch: newDijkstraScratch(n),
	}, nil
}

// row returns the cached (or freshly computed) row for src. Caller holds mu.
func (l *LazyRouting) row(src int) *lazyRow {
	if g := l.nw.gen.Load(); g != l.gen {
		l.purge()
		l.gen = g
	}
	if r := l.rows[src]; r != nil {
		l.hits++
		l.moveToFront(r)
		return r
	}
	l.misses++
	r := l.free
	if r != nil {
		l.free = r.next
		r.next = nil
	} else {
		r = &lazyRow{nextLink: make([]int32, l.n), dist: make([]float64, l.n)}
	}
	r.src = src
	l.nw.dijkstraRow(src, r.nextLink, r.dist, l.scratch)
	l.rows[src] = r
	l.pushFront(r)
	if len(l.rows) > l.capRows {
		l.evict()
	}
	return r
}

// purge drops every cached row after a topology mutation. Row buffers are
// recycled only while the node count is unchanged; a grown topology needs
// longer rows.
func (l *LazyRouting) purge() {
	n := len(l.nw.Nodes)
	recycle := n == l.n
	for r := l.head; r != nil; {
		nx := r.next
		if recycle {
			r.prev, r.next = nil, l.free
			l.free = r
		}
		r = nx
	}
	if !recycle {
		l.n = n
		l.free = nil
		l.scratch = newDijkstraScratch(n)
	}
	l.head, l.tail = nil, nil
	clear(l.rows)
}

// evict removes the least recently used row into the freelist.
func (l *LazyRouting) evict() {
	t := l.tail
	if t == nil {
		return
	}
	l.evictions++
	delete(l.rows, t.src)
	l.tail = t.prev
	if l.tail != nil {
		l.tail.next = nil
	} else {
		l.head = nil
	}
	t.prev, t.next = nil, l.free
	l.free = t
}

func (l *LazyRouting) pushFront(r *lazyRow) {
	r.prev, r.next = nil, l.head
	if l.head != nil {
		l.head.prev = r
	}
	l.head = r
	if l.tail == nil {
		l.tail = r
	}
}

func (l *LazyRouting) moveToFront(r *lazyRow) {
	if l.head == r {
		return
	}
	if r.prev != nil {
		r.prev.next = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	}
	if l.tail == r {
		l.tail = r.prev
	}
	r.prev, r.next = nil, l.head
	if l.head != nil {
		l.head.prev = r
	}
	l.head = r
}

// NextLink implements Routing.
func (l *LazyRouting) NextLink(src, dst int) int {
	l.mu.Lock()
	v := l.row(src).nextLink[dst]
	l.mu.Unlock()
	return int(v)
}

// Distance implements Routing.
func (l *LazyRouting) Distance(src, dst int) float64 {
	if src == dst {
		return 0
	}
	l.mu.Lock()
	d := l.row(src).dist[dst]
	l.mu.Unlock()
	return d
}

// MemoryBytes implements Routing: 12 bytes per cached (src, dst) entry, the
// same per-entry cost as the flat table over only the cached rows.
func (l *LazyRouting) MemoryBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.memoryBytesLocked()
}

func (l *LazyRouting) memoryBytesLocked() int64 {
	rowBytes := int64(l.n) * 12
	cached := int64(len(l.rows))
	// Free rows keep their backing arrays; count them too, plus the scratch.
	for r := l.free; r != nil; r = r.next {
		cached++
	}
	return cached*rowBytes + int64(l.n)*(1+4) // scratch done + firstLink
}

// Stats implements Routing.
func (l *LazyRouting) Stats() RoutingStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return RoutingStats{
		Backend:     "lazy",
		MemoryBytes: l.memoryBytesLocked(),
		Sources:     len(l.rows),
		Capacity:    l.capRows,
		Hits:        l.hits,
		Misses:      l.misses,
		Evictions:   l.evictions,
	}
}
