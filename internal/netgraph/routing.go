package netgraph

import (
	"errors"
	"fmt"
	"math"
)

// Routing is the route-oracle contract the emulator, the mapping approaches,
// and the route discovery consume. Implementations answer next-hop and
// distance queries and account for their own memory, so callers can choose a
// backend by footprint instead of hard-coding the O(n²) flat table:
//
//   - RoutingTable: flat all-pairs next hops, O(n²) memory, O(1) queries.
//   - LazyRouting: per-source Dijkstra rows computed on demand behind a
//     bounded LRU — O(cachedRows·n) memory.
//   - HierarchicalTable: two-level per-AS (or auto-clustered) compressed
//     tables — O(Σ cluster² + clusters²) memory with bounded path inflation.
//
// All implementations are safe for concurrent queries after construction.
type Routing interface {
	// NextLink returns the first-hop link from src toward dst, or -1 when
	// src == dst or dst is unreachable.
	NextLink(src, dst int) int
	// Distance returns the total latency of the routed path (+Inf if
	// unreachable, 0 for src == dst).
	Distance(src, dst int) float64
	// MemoryBytes reports the oracle's current table footprint in bytes
	// (backing arrays only, not Go object headers). For LazyRouting it
	// changes as rows are cached and evicted.
	MemoryBytes() int64
	// Stats returns a point-in-time accounting snapshot.
	Stats() RoutingStats
}

var (
	_ Routing = (*RoutingTable)(nil)
	_ Routing = (*HierarchicalTable)(nil)
	_ Routing = (*LazyRouting)(nil)
)

// ErrRoutingConfig reports an infeasible routing configuration — a negative
// LRU size, a cluster count below 2, an unknown backend name. Callers test
// with errors.Is.
var ErrRoutingConfig = errors.New("netgraph: bad routing config")

// Backend selects a Routing implementation.
type Backend int

const (
	// Auto picks by topology size: Flat up to AutoFlatMaxNodes nodes, Lazy
	// beyond — small runs keep exact O(1) lookups, large ones stay
	// sub-quadratic without configuration.
	Auto Backend = iota
	// Flat is the dense all-pairs RoutingTable.
	Flat
	// Lazy is the on-demand per-source-row oracle (LazyRouting).
	Lazy
	// Hier is the two-level compressed table: per-AS when the topology has
	// at least two ASes, auto-clustered via graph coarsening otherwise.
	Hier
)

func (b Backend) String() string {
	switch b {
	case Auto:
		return "auto"
	case Flat:
		return "flat"
	case Lazy:
		return "lazy"
	case Hier:
		return "hier"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend parses a backend name ("auto", "flat", "lazy", "hier") — the
// cmd/massf -routing flag values. Unknown names wrap ErrRoutingConfig.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "auto":
		return Auto, nil
	case "flat":
		return Flat, nil
	case "lazy":
		return Lazy, nil
	case "hier":
		return Hier, nil
	default:
		return Auto, fmt.Errorf("%w: unknown routing backend %q (want auto|flat|lazy|hier)", ErrRoutingConfig, s)
	}
}

// AutoFlatMaxNodes is the largest topology the Auto backend still serves
// with the flat table. Beyond it the flat table's 12·n² bytes pass ~50 MB
// and Auto switches to the lazy oracle. All of the paper's topologies
// (Table 1 and Table 2, ≤ 564 nodes) stay flat.
const AutoFlatMaxNodes = 2048

// DefaultLazyBytes is the lazy oracle's default row-cache budget; the
// automatic row capacity is DefaultLazyBytes / (12·n), clamped to
// [MinLazyRows, MaxLazyRows].
const DefaultLazyBytes = 256 << 20

// MinLazyRows and MaxLazyRows bound the automatic lazy row capacity.
const (
	MinLazyRows = 64
	MaxLazyRows = 4096
)

// RoutingOptions selects and parameterizes a routing backend. The zero value
// is the automatic policy. Options are comparable — Network.SharedRouting
// keys its cache on the normalized value.
type RoutingOptions struct {
	// Backend selects the implementation; Auto (the zero value) picks by
	// topology size.
	Backend Backend
	// LazyRows caps the lazy oracle's LRU row cache. 0 means automatic
	// (byte-budgeted, see DefaultLazyBytes); negative is rejected with
	// ErrRoutingConfig. Ignored by other backends.
	LazyRows int
	// Clusters is the two-level table's cluster count when the topology has
	// no usable AS labels (or to force clustered routing over per-AS). 0
	// means automatic: per-AS tables when ≥ 2 ASes exist, else
	// DefaultClusters(n). 1 or negative is rejected with ErrRoutingConfig.
	// Ignored by other backends.
	Clusters int
}

// Validate checks the options without resolving automatic values.
func (o RoutingOptions) Validate() error {
	if o.Backend < Auto || o.Backend > Hier {
		return fmt.Errorf("%w: unknown backend %d", ErrRoutingConfig, int(o.Backend))
	}
	if o.LazyRows < 0 {
		return fmt.Errorf("%w: LazyRows = %d, must be >= 0 (0 = automatic)", ErrRoutingConfig, o.LazyRows)
	}
	if o.Clusters < 0 || o.Clusters == 1 {
		return fmt.Errorf("%w: Clusters = %d, must be >= 2 (0 = automatic)", ErrRoutingConfig, o.Clusters)
	}
	return nil
}

// normalized resolves the automatic backend for an n-node topology and zeroes
// fields the chosen backend ignores, so equivalent specs share one cache
// entry (Auto on a small network and explicit Flat are the same key).
func (o RoutingOptions) normalized(n int) RoutingOptions {
	if o.Backend == Auto {
		if n <= AutoFlatMaxNodes {
			o.Backend = Flat
		} else {
			o.Backend = Lazy
		}
	}
	switch o.Backend {
	case Flat:
		o.LazyRows, o.Clusters = 0, 0
	case Lazy:
		o.Clusters = 0
		if o.LazyRows == 0 {
			o.LazyRows = DefaultLazyRows(n)
		}
	case Hier:
		o.LazyRows = 0
	}
	return o
}

// DefaultLazyRows returns the automatic lazy row capacity for an n-node
// topology: the DefaultLazyBytes budget divided by one row's 12·n bytes,
// clamped to [MinLazyRows, MaxLazyRows] and never above n.
func DefaultLazyRows(n int) int {
	if n <= 0 {
		return MinLazyRows
	}
	rows := DefaultLazyBytes / (12 * n)
	if rows < MinLazyRows {
		rows = MinLazyRows
	}
	if rows > MaxLazyRows {
		rows = MaxLazyRows
	}
	if rows > n {
		rows = n
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// DefaultClusters returns the automatic cluster count for an n-node topology
// without AS labels: C ≈ (n²/2)^(1/3), which minimizes the two-level memory
// model 12·(n²/C + C²) — O(n^(4/3)) total bytes.
func DefaultClusters(n int) int {
	c := int(math.Cbrt(float64(n) * float64(n) / 2))
	if c < 2 {
		c = 2
	}
	if c > n {
		c = n
	}
	return c
}

// RoutingStats is a point-in-time accounting snapshot of a route oracle.
type RoutingStats struct {
	// Backend names the implementation: "flat", "lazy", "hier-as",
	// "hier-cluster".
	Backend string
	// MemoryBytes mirrors Routing.MemoryBytes at snapshot time.
	MemoryBytes int64
	// Sources is the number of materialized per-source rows (flat: n; lazy:
	// currently cached rows; hierarchical: n — every node can answer).
	Sources int
	// Capacity is the lazy oracle's row-cache bound (flat/hierarchical
	// report their full source count).
	Capacity int
	// Hits, Misses, Evictions count lazy row-cache events; zero for the
	// precomputed backends.
	Hits, Misses, Evictions int64
}

// BuildRouting constructs a fresh route oracle for the given options,
// resolving the automatic policy against the network's size and labels. Most
// callers want the memoizing SharedRouting instead.
func (nw *Network) BuildRouting(o RoutingOptions) (Routing, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return nw.buildRouting(o.normalized(len(nw.Nodes)))
}

// buildRouting dispatches on already-normalized options.
func (nw *Network) buildRouting(o RoutingOptions) (Routing, error) {
	switch o.Backend {
	case Flat:
		return nw.BuildRoutingTable(), nil
	case Lazy:
		return NewLazyRouting(nw, o.LazyRows)
	case Hier:
		if o.Clusters == 0 && nw.multiAS() {
			return nw.BuildHierarchicalRouting(), nil
		}
		k := o.Clusters
		if k == 0 {
			k = DefaultClusters(len(nw.Nodes))
		}
		return nw.BuildClusteredRouting(k)
	default:
		return nil, fmt.Errorf("%w: unknown backend %d", ErrRoutingConfig, int(o.Backend))
	}
}

// multiAS reports whether the topology carries at least two distinct AS
// labels — the signal that per-AS hierarchical routing is meaningful.
func (nw *Network) multiAS() bool {
	if len(nw.Nodes) == 0 {
		return false
	}
	first := nw.Nodes[0].AS
	for _, n := range nw.Nodes[1:] {
		if n.AS != first {
			return true
		}
	}
	return false
}

// sharedEntry is one memoized oracle with the topology generation it was
// built against.
type sharedEntry struct {
	gen int64
	r   Routing
}

// SharedRouting returns the network's memoized oracle for the given options,
// building it on first use and after any topology mutation (AddLink /
// AddRouter / AddHost bump the generation, which drops every cached backend —
// flat, lazy, and hierarchical alike). Equivalent option values (e.g. Auto on
// a small network and explicit Flat) share one entry. Safe for concurrent
// use; do not mutate the topology while runs are in flight.
func (nw *Network) SharedRouting(o RoutingOptions) (Routing, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	key := o.normalized(len(nw.Nodes))
	nw.mu.Lock()
	defer nw.mu.Unlock()
	gen := nw.gen.Load()
	if e, ok := nw.shared[key]; ok && e.gen == gen {
		return e.r, nil
	}
	r, err := nw.buildRouting(key)
	if err != nil {
		return nil, err
	}
	if nw.shared == nil {
		nw.shared = make(map[RoutingOptions]sharedEntry)
	}
	nw.shared[key] = sharedEntry{gen: gen, r: r}
	return r, nil
}

// AutoRouting returns the shared oracle under the automatic policy — the
// fallback every nil-Routes code path (emu.Run, the ICMP discovery, the
// mapping approaches) uses, so even a bare pipeline on a 10⁵-node topology
// never materializes the O(n²) flat table.
func (nw *Network) AutoRouting() Routing {
	r, err := nw.SharedRouting(RoutingOptions{})
	if err != nil {
		// The zero options always validate and Auto resolves to Flat or
		// Lazy, neither of which can fail to build.
		panic(fmt.Sprintf("netgraph: AutoRouting: %v", err))
	}
	return r
}

// MemoryBytes implements Routing: the flat table's dense footprint,
// 12 bytes (one int32 next hop + one float64 distance) per ordered pair.
func (rt *RoutingTable) MemoryBytes() int64 {
	return int64(len(rt.nextLink))*4 + int64(len(rt.dist))*8
}

// Stats implements Routing.
func (rt *RoutingTable) Stats() RoutingStats {
	return RoutingStats{
		Backend:     "flat",
		MemoryBytes: rt.MemoryBytes(),
		Sources:     rt.n,
		Capacity:    rt.n,
	}
}
