package netgraph_test

// Cross-backend equivalence on the paper's experiment topologies: the lazy
// oracle must answer byte-identically to the flat table for every ordered
// pair (same dijkstraRow builder, same tie-breaks), and the clustered
// two-level tables must stay loop-free and never beat the true shortest path.

import (
	"math"
	"testing"

	"repro/internal/netgraph"
)

func TestLazyMatchesFlatOnPaperTopologies(t *testing.T) {
	for _, name := range []string{"Campus", "TeraGrid", "Brite", "Brite-large"} {
		t.Run(name, func(t *testing.T) {
			nw := paperTopology(t, name)
			n := nw.NumNodes()
			flat := nw.BuildRoutingTable()
			lazy, err := netgraph.NewLazyRouting(nw, 32)
			if err != nil {
				t.Fatal(err)
			}
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if f, l := flat.NextLink(src, dst), lazy.NextLink(src, dst); f != l {
						t.Fatalf("NextLink(%d,%d): flat %d, lazy %d", src, dst, f, l)
					}
					fd, ld := flat.Distance(src, dst), lazy.Distance(src, dst)
					if fd != ld && !(math.IsInf(fd, 1) && math.IsInf(ld, 1)) {
						t.Fatalf("Distance(%d,%d): flat %g, lazy %g", src, dst, fd, ld)
					}
				}
			}
		})
	}
}

func TestClusteredRoutingOnPaperTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("all-pairs walks on the full topologies")
	}
	// Brite is single-AS, the case the auto-clustered tables exist for;
	// Campus exercises the nearly-tree shape.
	for _, name := range []string{"Campus", "Brite"} {
		t.Run(name, func(t *testing.T) {
			nw := paperTopology(t, name)
			n := nw.NumNodes()
			flat := nw.BuildRoutingTable()
			hier, err := nw.BuildClusteredRouting(netgraph.DefaultClusters(n))
			if err != nil {
				t.Fatal(err)
			}
			if hier.MemoryBytes() >= flat.MemoryBytes() {
				t.Fatalf("clustered table (%d B) not smaller than flat (%d B)",
					hier.MemoryBytes(), flat.MemoryBytes())
			}
			for src := 0; src < n; src++ {
				for dst := 0; dst < n; dst++ {
					if src == dst {
						continue
					}
					path := nw.Route(hier, src, dst)
					if path == nil || len(path) > n {
						t.Fatalf("clustered route %d->%d broken or looping: %d hops", src, dst, len(path))
					}
					if hier.Distance(src, dst) < flat.Distance(src, dst)-1e-12 {
						t.Fatalf("clustered distance beats shortest path for %d->%d", src, dst)
					}
				}
			}
		})
	}
}
