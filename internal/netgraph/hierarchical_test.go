package netgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoASNetwork builds two triangle ASes joined by two border links of
// different latency:
//
//	AS1: 0-1-2 (triangle)     AS2: 3-4-5 (triangle)
//	border: 1-3 (5ms), 2-4 (1ms)
func twoASNetwork() *Network {
	nw := New("two-as")
	for i := 0; i < 3; i++ {
		nw.AddRouter("a", 1)
	}
	for i := 0; i < 3; i++ {
		nw.AddRouter("b", 2)
	}
	nw.AddLink(0, 1, 1e9, 1e-3)
	nw.AddLink(1, 2, 1e9, 1e-3)
	nw.AddLink(0, 2, 1e9, 1e-3)
	nw.AddLink(3, 4, 1e9, 1e-3)
	nw.AddLink(4, 5, 1e9, 1e-3)
	nw.AddLink(3, 5, 1e9, 1e-3)
	nw.AddLink(1, 3, 1e9, 5e-3) // slow border
	nw.AddLink(2, 4, 1e9, 1e-3) // fast border
	return nw
}

func TestHierarchicalIntraAS(t *testing.T) {
	nw := twoASNetwork()
	h := nw.BuildHierarchicalRouting()
	// Within AS1, routing equals flat shortest path.
	flat := nw.BuildRoutingTable()
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if math.Abs(h.Distance(src, dst)-flat.Distance(src, dst)) > 1e-12 {
				t.Errorf("intra distance %d->%d: %v vs flat %v", src, dst,
					h.Distance(src, dst), flat.Distance(src, dst))
			}
		}
	}
}

func TestHierarchicalCrossAS(t *testing.T) {
	nw := twoASNetwork()
	h := nw.BuildHierarchicalRouting()
	// Gateway selection: the AS pair's min-latency border link (2-4).
	path := nw.Route(h, 0, 5)
	if path == nil {
		t.Fatal("no hierarchical route 0 -> 5")
	}
	// Path must cross via node 2 then 4 (the fast border link).
	crossedFast := false
	for i := 1; i < len(path); i++ {
		if (path[i-1] == 2 && path[i] == 4) || (path[i-1] == 4 && path[i] == 2) {
			crossedFast = true
		}
		if (path[i-1] == 1 && path[i] == 3) || (path[i-1] == 3 && path[i] == 1) {
			t.Errorf("route used the slow border link: %v", path)
		}
	}
	if !crossedFast {
		t.Errorf("route did not use the fast border link: %v", path)
	}
	if path[0] != 0 || path[len(path)-1] != 5 {
		t.Errorf("path endpoints wrong: %v", path)
	}
}

func TestHierarchicalAllPairsReachable(t *testing.T) {
	nw := twoASNetwork()
	h := nw.BuildHierarchicalRouting()
	for src := 0; src < 6; src++ {
		for dst := 0; dst < 6; dst++ {
			if src == dst {
				if h.Distance(src, dst) != 0 {
					t.Errorf("self distance %d nonzero", src)
				}
				continue
			}
			if nw.Route(h, src, dst) == nil {
				t.Errorf("no route %d -> %d", src, dst)
			}
			if math.IsInf(h.Distance(src, dst), 1) {
				t.Errorf("infinite distance %d -> %d", src, dst)
			}
		}
	}
}

func TestHierarchicalAtLeastFlatDistance(t *testing.T) {
	// Hierarchical routes can only be as good as flat shortest paths.
	nw := twoASNetwork()
	h := nw.BuildHierarchicalRouting()
	flat := nw.BuildRoutingTable()
	for src := 0; src < 6; src++ {
		for dst := 0; dst < 6; dst++ {
			if h.Distance(src, dst) < flat.Distance(src, dst)-1e-12 {
				t.Errorf("hierarchical %d->%d shorter than flat: %v < %v",
					src, dst, h.Distance(src, dst), flat.Distance(src, dst))
			}
		}
	}
}

func TestHierarchicalMultiHopAS(t *testing.T) {
	// Three ASes in a chain: AS1 - AS2 - AS3; routing 1->3 must transit 2.
	nw := New("chain-as")
	a := nw.AddRouter("a", 1)
	b := nw.AddRouter("b", 2)
	c := nw.AddRouter("c", 3)
	nw.AddLink(a, b, 1e9, 1e-3)
	nw.AddLink(b, c, 1e9, 1e-3)
	h := nw.BuildHierarchicalRouting()
	path := nw.Route(h, a, c)
	if len(path) != 3 || path[1] != b {
		t.Errorf("path = %v, want transit through AS2", path)
	}
	if math.Abs(h.Distance(a, c)-2e-3) > 1e-12 {
		t.Errorf("distance = %v, want 2ms", h.Distance(a, c))
	}
}

func TestHierarchicalTableEntries(t *testing.T) {
	nw := twoASNetwork()
	h := nw.BuildHierarchicalRouting()
	// Each node: 3 AS members + 1 foreign AS = 4 entries, far below the
	// flat table's 6.
	if got := h.TableEntries(0); got != 4 {
		t.Errorf("TableEntries = %d, want 4", got)
	}
}

func TestHierarchicalOnTeraGridShape(t *testing.T) {
	// TeraGrid has 6 ASes (backbone + 5 sites); all host pairs must route,
	// and cross-site routes must pass through border routers.
	nw := teraGridForTest(t)
	h := nw.BuildHierarchicalRouting()
	hosts := nw.Hosts()
	for i := 0; i < len(hosts); i += 17 {
		for j := 5; j < len(hosts); j += 23 {
			src, dst := hosts[i], hosts[j]
			if src == dst {
				continue
			}
			path := nw.Route(h, src, dst)
			if path == nil {
				t.Fatalf("no hierarchical route %d -> %d", src, dst)
			}
		}
	}
}

// teraGridForTest avoids an import cycle with topogen by building a tiny
// multi-AS stand-in with the same structure class.
func teraGridForTest(t *testing.T) *Network {
	t.Helper()
	nw := New("mini-teragrid")
	hubA := nw.AddRouter("hubA", 0)
	hubB := nw.AddRouter("hubB", 0)
	nw.AddLink(hubA, hubB, 40e9, 10e-3)
	for site := 1; site <= 3; site++ {
		border := nw.AddRouter("border", site)
		hub := hubA
		if site%2 == 0 {
			hub = hubB
		}
		nw.AddLink(border, hub, 40e9, 3e-3)
		prev := border
		for r := 0; r < 2; r++ {
			rt := nw.AddRouter("r", site)
			nw.AddLink(prev, rt, 10e9, 0.5e-3)
			prev = rt
			for hcount := 0; hcount < 3; hcount++ {
				hn := nw.AddHost("h", site)
				nw.AddLink(hn, rt, 1e9, 0.5e-3)
			}
		}
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	return nw
}

// randomMultiAS builds a connected random network whose nodes are spread
// over several ASes, with every AS internally connected.
func randomMultiAS(numAS, perAS int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	nw := New("multi-as")
	for a := 1; a <= numAS; a++ {
		base := nw.NumNodes()
		for i := 0; i < perAS; i++ {
			nw.AddRouter("r", a)
			if i > 0 {
				nw.AddLink(base+i, base+rng.Intn(i), 1e9, float64(1+rng.Intn(5))*1e-3)
			}
		}
		// One border link back to the previous AS plus a random shortcut.
		if a > 1 {
			prevBase := base - perAS
			nw.AddLink(base+rng.Intn(perAS), prevBase+rng.Intn(perAS), 1e9, float64(2+rng.Intn(8))*1e-3)
			if rng.Intn(2) == 0 {
				other := rng.Intn(base)
				nw.AddLink(base+rng.Intn(perAS), other, 1e9, float64(2+rng.Intn(8))*1e-3)
			}
		}
	}
	return nw
}

// TestPropertyHierarchicalRandomNetworks: on arbitrary multi-AS networks,
// hierarchical routing must reach every destination with a loop-free path
// whose latency is >= the flat shortest path.
func TestPropertyHierarchicalRandomNetworks(t *testing.T) {
	f := func(seed int64) bool {
		nw := randomMultiAS(4, 6, seed)
		if err := nw.Validate(); err != nil {
			return true // disconnected instance: skip
		}
		h := nw.BuildHierarchicalRouting()
		flat := nw.BuildRoutingTable()
		n := nw.NumNodes()
		rng := rand.New(rand.NewSource(seed ^ 0x1234))
		for trial := 0; trial < 12; trial++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			path := nw.Route(h, src, dst)
			if src == dst {
				if len(path) != 1 {
					return false
				}
				continue
			}
			if path == nil {
				return false
			}
			// Simple (loop-free) and endpoints correct.
			seen := map[int]bool{}
			for _, v := range path {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
			if path[0] != src || path[len(path)-1] != dst {
				return false
			}
			if h.Distance(src, dst) < flat.Distance(src, dst)-1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(55))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
