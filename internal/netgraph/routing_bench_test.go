package netgraph_test

// Benchmarks for the parallel precomputation pipeline's hot layer: all-pairs
// routing-table construction on the paper's topologies. Each benchmark
// reports serial (workers=1, the seed's execution shape) against parallel
// (workers=GOMAXPROCS) so the speedup and the allocs/op reduction are
// measured in one run; BENCH_routing.json records the committed baseline.
//
// BenchmarkRoutingTableBrite runs the Table 2 configuration (200 routers /
// 364 hosts) — the scalability case whose precompute cost §4.2.3 is about.

import (
	"reflect"
	"testing"

	"repro/internal/netgraph"
	"repro/internal/topogen"
)

func paperTopology(tb testing.TB, name string) *netgraph.Network {
	tb.Helper()
	nw, err := topogen.ByName(name, 42)
	if err != nil {
		tb.Fatal(err)
	}
	return nw
}

// TestParallelRoutingMatchesSequentialOnPaperTopologies is the satellite
// regression: flat and hierarchical tables built with the parallel fan-out
// are byte-identical to the sequential build on every experiment topology.
func TestParallelRoutingMatchesSequentialOnPaperTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("all-pairs builds on the full topologies")
	}
	for _, name := range []string{"Campus", "TeraGrid", "Brite", "Brite-large"} {
		t.Run(name, func(t *testing.T) {
			nw := paperTopology(t, name)
			seqFlat := nw.BuildRoutingTableParallel(1)
			seqHier := nw.BuildHierarchicalRoutingParallel(1)
			for _, workers := range []int{2, 4, 8} {
				if par := nw.BuildRoutingTableParallel(workers); !reflect.DeepEqual(seqFlat, par) {
					t.Fatalf("%s: flat table with %d workers differs from sequential", name, workers)
				}
				if par := nw.BuildHierarchicalRoutingParallel(workers); !reflect.DeepEqual(seqHier, par) {
					t.Fatalf("%s: hierarchical table with %d workers differs from sequential", name, workers)
				}
			}
		})
	}
}

func benchRoutingTable(b *testing.B, topology string) {
	nw := paperTopology(b, topology)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = nw.BuildRoutingTableParallel(1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = nw.BuildRoutingTableParallel(0)
		}
	})
}

func BenchmarkRoutingTableCampus(b *testing.B)   { benchRoutingTable(b, "Campus") }
func BenchmarkRoutingTableTeraGrid(b *testing.B) { benchRoutingTable(b, "TeraGrid") }

// BenchmarkRoutingTableBrite measures the Table 2 Brite network
// (200 routers / 364 hosts) — the acceptance case: parallel must be >= 2x
// serial at GOMAXPROCS >= 4.
func BenchmarkRoutingTableBrite(b *testing.B) { benchRoutingTable(b, "Brite-large") }

// BenchmarkHierarchicalRoutingBrite covers the two-level build's per-AS
// fan-out on the same large network.
func BenchmarkHierarchicalRoutingBrite(b *testing.B) {
	nw := paperTopology(b, "Brite-large")
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = nw.BuildHierarchicalRoutingParallel(1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = nw.BuildHierarchicalRoutingParallel(0)
		}
	})
}
