package netgraph

import (
	"math"
	"sort"

	"repro/internal/parallel"
)

// Routing is the routing interface the emulator and the mapping approaches
// consume: a next-hop oracle plus path metrics. RoutingTable (flat
// shortest-path) and HierarchicalTable (two-level, per-AS) both implement
// it.
type Routing interface {
	// NextLink returns the first-hop link from src toward dst, or -1 when
	// src == dst or dst is unreachable.
	NextLink(src, dst int) int
	// Distance returns the total latency of the routed path (+Inf if
	// unreachable, 0 for src == dst).
	Distance(src, dst int) float64
}

var (
	_ Routing = (*RoutingTable)(nil)
	_ Routing = (*HierarchicalTable)(nil)
)

// HierarchicalTable routes in two levels, the way MaSSF's AS-structured
// networks do (and the reason the paper's router memory model is
// m = 10 + x² with x the AS router count, §2.2.2):
//
//   - within an AS, nodes follow latency-shortest paths computed over the
//     AS's own subgraph only — each node's table is O(per-AS nodes²), not
//     O(network²);
//   - across ASes, an AS-level shortest-path table picks the next AS and the
//     border link into it; inside the current AS, traffic steers to that
//     border link's local endpoint.
//
// Routes are loop-free (the AS-level path strictly progresses and intra-AS
// shortest paths toward a fixed gateway are consistent) but can be longer
// than flat shortest paths — exactly the inflation hierarchical routing
// trades for table size.
type HierarchicalTable struct {
	nw *Network
	// asOf[n] is the AS of node n.
	asOf []int
	// asIDs is the sorted list of distinct AS numbers; asIdx maps AS -> index.
	asIDs []int
	asIdx map[int]int
	// intra[a] holds the intra-AS routing for AS index a: next-hop link and
	// distance between the AS's member nodes (indexed by member position).
	intra []intraTable
	// member[a] lists node IDs of AS index a; memberIdx[n] is n's position
	// within its AS.
	member    [][]int
	memberIdx []int
	// nextAS[a*len(asIDs)+b] is the next AS index on the path a -> b, -1 if
	// unreachable or a == b.
	nextAS []int
	// gateway[a*len(asIDs)+b] is the border link used to leave AS index a
	// toward (neighboring, next) AS index b.
	gateway []int32
}

type intraTable struct {
	nextLink []int32
	dist     []float64
}

// BuildHierarchicalRouting constructs the two-level table, computing the
// per-AS intra tables concurrently (GOMAXPROCS workers). Nodes keep their
// Node.AS assignment; every AS subgraph should be internally connected for
// full reachability (nodes that cannot reach their AS border are simply
// unreachable from outside, mirroring a real misconfigured AS).
func (nw *Network) BuildHierarchicalRouting() *HierarchicalTable {
	return nw.BuildHierarchicalRoutingParallel(0)
}

// BuildHierarchicalRoutingParallel is BuildHierarchicalRouting with an
// explicit worker count for the per-AS fan-out: non-positive means
// GOMAXPROCS, 1 the exact sequential build. Each AS writes only its own
// intra-table slot, so the result is identical regardless of worker count.
func (nw *Network) BuildHierarchicalRoutingParallel(workers int) *HierarchicalTable {
	nw.builds.Add(1)
	n := len(nw.Nodes)
	h := &HierarchicalTable{
		nw:        nw,
		asOf:      make([]int, n),
		asIdx:     make(map[int]int),
		memberIdx: make([]int, n),
	}
	seen := map[int]bool{}
	for _, node := range nw.Nodes {
		h.asOf[node.ID] = node.AS
		if !seen[node.AS] {
			seen[node.AS] = true
			h.asIDs = append(h.asIDs, node.AS)
		}
	}
	sort.Ints(h.asIDs)
	for i, as := range h.asIDs {
		h.asIdx[as] = i
	}
	numAS := len(h.asIDs)
	h.member = make([][]int, numAS)
	for _, node := range nw.Nodes {
		a := h.asIdx[node.AS]
		h.memberIdx[node.ID] = len(h.member[a])
		h.member[a] = append(h.member[a], node.ID)
	}

	// Intra-AS shortest paths per AS subgraph, one independent Dijkstra
	// sweep per AS; each worker reuses one scratch across its ASes.
	h.intra = make([]intraTable, numAS)
	w := parallel.Workers(workers, numAS)
	scratches := make([]*dijkstraScratch, w)
	parallel.ForEachWorker(numAS, w, func(worker, a int) {
		s := scratches[worker]
		if s == nil {
			s = newDijkstraScratch(len(h.member[a]))
			scratches[worker] = s
		}
		h.intra[a] = nw.intraDijkstraAll(h, a, s)
	})

	// AS-level graph: min-latency border link per AS pair.
	type asEdge struct {
		latency float64
		link    int32
	}
	border := make(map[[2]int]asEdge)
	for _, l := range nw.Links {
		a, b := h.asIdx[h.asOf[l.A]], h.asIdx[h.asOf[l.B]]
		if a == b {
			continue
		}
		for _, key := range [][2]int{{a, b}, {b, a}} {
			cur, ok := border[key]
			if !ok || l.Latency < cur.latency || (l.Latency == cur.latency && int32(l.ID) < cur.link) {
				border[key] = asEdge{latency: l.Latency, link: int32(l.ID)}
			}
		}
	}

	// AS-level all-pairs shortest paths (Floyd–Warshall on the small AS
	// graph), tracking the first AS hop.
	const inf = math.MaxFloat64
	dist := make([]float64, numAS*numAS)
	next := make([]int, numAS*numAS)
	for i := range dist {
		dist[i] = inf
		next[i] = -1
	}
	for a := 0; a < numAS; a++ {
		dist[a*numAS+a] = 0
	}
	for key, e := range border {
		a, b := key[0], key[1]
		if e.latency < dist[a*numAS+b] {
			dist[a*numAS+b] = e.latency
			next[a*numAS+b] = b
		}
	}
	for k := 0; k < numAS; k++ {
		for i := 0; i < numAS; i++ {
			ik := dist[i*numAS+k]
			if ik == inf {
				continue
			}
			for j := 0; j < numAS; j++ {
				if kj := dist[k*numAS+j]; kj != inf && ik+kj < dist[i*numAS+j] {
					dist[i*numAS+j] = ik + kj
					next[i*numAS+j] = next[i*numAS+k]
				}
			}
		}
	}
	h.nextAS = next
	h.gateway = make([]int32, numAS*numAS)
	for i := range h.gateway {
		h.gateway[i] = -1
	}
	for key, e := range border {
		h.gateway[key[0]*numAS+key[1]] = e.link
	}
	return h
}

// intraDijkstraAll computes all-pairs next-hop routing within one AS
// subgraph, reusing the caller's scratch across the AS's sources.
func (nw *Network) intraDijkstraAll(h *HierarchicalTable, a int, s *dijkstraScratch) intraTable {
	members := h.member[a]
	m := len(members)
	t := intraTable{
		nextLink: make([]int32, m*m),
		dist:     make([]float64, m*m),
	}
	for i := range t.nextLink {
		t.nextLink[i] = -1
		t.dist[i] = math.Inf(1)
	}
	for si := range members {
		dist := t.dist[si*m : si*m+m]
		s.reset(m)
		first, done := s.firstLink, s.done
		dist[si] = 0
		s.push(pqItem{node: si})
		for len(s.heap) > 0 {
			vi := s.pop().node
			if done[vi] {
				continue
			}
			done[vi] = true
			v := members[vi]
			for _, lid := range nw.adj[v] {
				l := &nw.Links[lid]
				u := l.Other(v)
				if h.asIdx[h.asOf[u]] != a {
					continue // border link: not part of the intra table
				}
				ui := h.memberIdx[u]
				nd := dist[vi] + l.Latency
				f := first[vi]
				if vi == si {
					f = int32(lid)
				}
				if nd < dist[ui] || (nd == dist[ui] && !done[ui] && first[ui] > f) {
					dist[ui] = nd
					first[ui] = f
					s.push(pqItem{node: ui, dist: nd})
				}
			}
		}
		copy(t.nextLink[si*m:si*m+m], first)
		t.nextLink[si*m+si] = -1
	}
	return t
}

// NextLink implements Routing.
func (h *HierarchicalTable) NextLink(src, dst int) int {
	if src == dst {
		return -1
	}
	a := h.asIdx[h.asOf[src]]
	b := h.asIdx[h.asOf[dst]]
	if a == b {
		m := len(h.member[a])
		return int(h.intra[a].nextLink[h.memberIdx[src]*m+h.memberIdx[dst]])
	}
	numAS := len(h.asIDs)
	na := h.nextAS[a*numAS+b]
	if na < 0 {
		return -1
	}
	gw := h.gateway[a*numAS+na]
	if gw < 0 {
		return -1
	}
	l := h.nw.Links[gw]
	// The gateway link's endpoint inside this AS.
	exit := l.A
	if h.asIdx[h.asOf[exit]] != a {
		exit = l.B
	}
	if exit == src {
		return int(gw)
	}
	m := len(h.member[a])
	return int(h.intra[a].nextLink[h.memberIdx[src]*m+h.memberIdx[exit]])
}

// Distance implements Routing by walking the hierarchical path.
func (h *HierarchicalTable) Distance(src, dst int) float64 {
	if src == dst {
		return 0
	}
	var total float64
	cur := src
	for steps := 0; steps <= len(h.nw.Nodes)+len(h.asIDs); steps++ {
		if cur == dst {
			return total
		}
		lid := h.NextLink(cur, dst)
		if lid < 0 {
			return math.Inf(1)
		}
		total += h.nw.Links[lid].Latency
		cur = h.nw.Links[lid].Other(cur)
	}
	return math.Inf(1) // defensive: should be unreachable
}

// TableEntries returns the number of routing-table entries node n must hold
// under hierarchical routing: per-AS all-pairs entries plus one entry per
// foreign AS — the quantity the paper's 10 + x² memory weight models.
func (h *HierarchicalTable) TableEntries(n int) int {
	a := h.asIdx[h.asOf[n]]
	return len(h.member[a]) + (len(h.asIDs) - 1)
}
