package netgraph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
	"repro/internal/partition"
)

// HierarchicalTable routes in two levels, the way MaSSF's AS-structured
// networks do (and the reason the paper's router memory model is
// m = 10 + x² with x the AS router count, §2.2.2):
//
//   - within a group (an AS, or an auto-generated cluster), nodes follow
//     latency-shortest paths computed over the group's own subgraph only —
//     each node's table is O(per-group nodes²), not O(network²);
//   - across groups, a group-level shortest-path table picks the next group
//     and the border link into it; inside the current group, traffic steers
//     to that border link's local endpoint.
//
// Total memory is O(Σ group² + groups²) — with balanced auto-clustering at
// C ≈ (n²/2)^(1/3) groups that is O(n^(4/3)), sub-quadratic. Routes are
// loop-free (the group-level path strictly progresses and intra-group
// shortest paths toward a fixed gateway are consistent) but can be longer
// than flat shortest paths — exactly the inflation hierarchical routing
// trades for table size.
type HierarchicalTable struct {
	nw *Network
	// kind labels the grouping for Stats: "hier-as" or "hier-cluster".
	kind string
	// asOf[n] is the group label of node n (the AS number for per-AS tables,
	// a cluster id for auto-clustered ones).
	asOf []int
	// asIDs is the sorted list of distinct labels; asIdx maps label -> index.
	asIDs []int
	asIdx map[int]int
	// intra[a] holds the intra-group routing for group index a: next-hop link
	// and distance between the group's member nodes (indexed by member
	// position).
	intra []intraTable
	// member[a] lists node IDs of group index a; memberIdx[n] is n's position
	// within its group.
	member    [][]int
	memberIdx []int
	// nextAS[a*len(asIDs)+b] is the next group index on the path a -> b, -1
	// if unreachable or a == b.
	nextAS []int
	// gateway[a*len(asIDs)+b] is the border link used to leave group index a
	// toward (neighboring, next) group index b.
	gateway []int32
}

type intraTable struct {
	nextLink []int32
	dist     []float64
}

// BuildHierarchicalRouting constructs the two-level table over the nodes'
// Node.AS labels, computing the per-AS intra tables concurrently (GOMAXPROCS
// workers). Every AS subgraph should be internally connected for full
// reachability (nodes that cannot reach their AS border are simply
// unreachable from outside, mirroring a real misconfigured AS).
func (nw *Network) BuildHierarchicalRouting() *HierarchicalTable {
	return nw.BuildHierarchicalRoutingParallel(0)
}

// BuildHierarchicalRoutingParallel is BuildHierarchicalRouting with an
// explicit worker count for the per-AS fan-out: non-positive means
// GOMAXPROCS, 1 the exact sequential build. Each AS writes only its own
// intra-table slot, so the result is identical regardless of worker count.
func (nw *Network) BuildHierarchicalRoutingParallel(workers int) *HierarchicalTable {
	labels := make([]int, len(nw.Nodes))
	for _, node := range nw.Nodes {
		labels[node.ID] = node.AS
	}
	return nw.buildTwoLevel(labels, workers, "hier-as")
}

// BuildClusteredRouting constructs the two-level table for a topology
// without (usable) AS labels: nodes are grouped into at most clusters
// internally-connected clusters by the multilevel partitioner's heavy-edge
// coarsening over link proximity (low latency = strong affinity), and the
// two-level machinery runs over those labels. Cluster counts below 2 are
// rejected with ErrRoutingConfig. The clustering is deterministic for a
// given topology.
func (nw *Network) BuildClusteredRouting(clusters int) (*HierarchicalTable, error) {
	return nw.BuildClusteredRoutingParallel(clusters, 0)
}

// BuildClusteredRoutingParallel is BuildClusteredRouting with an explicit
// worker count for the per-cluster fan-out.
func (nw *Network) BuildClusteredRoutingParallel(clusters, workers int) (*HierarchicalTable, error) {
	if clusters < 2 {
		return nil, fmt.Errorf("%w: cluster count %d, must be >= 2", ErrRoutingConfig, clusters)
	}
	return nw.buildTwoLevel(nw.clusterLabels(clusters), workers, "hier-cluster"), nil
}

// clusterLabels groups the nodes into at most k clusters by coarsening the
// proximity graph: edge weight ∝ 1/latency, so low-latency neighborhoods
// collapse together first — the same heavy-edge heuristic the partitioner's
// first phase uses, which guarantees internally-connected clusters.
func (nw *Network) clusterLabels(k int) []int {
	g := partition.NewGraph(len(nw.Nodes), 1)
	for _, l := range nw.Links {
		lat := l.Latency
		if lat < 1e-6 {
			lat = 1e-6
		}
		w := int64(1e-2 / lat)
		if w < 1 {
			w = 1
		}
		if w > 1e6 {
			w = 1e6
		}
		g.AddEdge(l.A, l.B, w)
	}
	// Fixed seed: the clustering is part of the deterministic routing build
	// (distributed workers must reproduce the coordinator's table exactly).
	return partition.Cluster(g, k, 1)
}

// buildTwoLevel builds the two-level table over arbitrary group labels
// (labels[n] is node n's group).
func (nw *Network) buildTwoLevel(labels []int, workers int, kind string) *HierarchicalTable {
	nw.builds.Add(1)
	n := len(nw.Nodes)
	h := &HierarchicalTable{
		nw:        nw,
		kind:      kind,
		asOf:      labels,
		asIdx:     make(map[int]int),
		memberIdx: make([]int, n),
	}
	seen := map[int]bool{}
	for _, node := range nw.Nodes {
		if !seen[labels[node.ID]] {
			seen[labels[node.ID]] = true
			h.asIDs = append(h.asIDs, labels[node.ID])
		}
	}
	sort.Ints(h.asIDs)
	for i, as := range h.asIDs {
		h.asIdx[as] = i
	}
	numAS := len(h.asIDs)
	h.member = make([][]int, numAS)
	for _, node := range nw.Nodes {
		a := h.asIdx[labels[node.ID]]
		h.memberIdx[node.ID] = len(h.member[a])
		h.member[a] = append(h.member[a], node.ID)
	}

	// Intra-group shortest paths per subgraph, one independent Dijkstra
	// sweep per group; each worker reuses one scratch across its groups.
	h.intra = make([]intraTable, numAS)
	w := parallel.Workers(workers, numAS)
	scratches := make([]*dijkstraScratch, w)
	parallel.ForEachWorker(numAS, w, func(worker, a int) {
		s := scratches[worker]
		if s == nil {
			s = newDijkstraScratch(len(h.member[a]))
			scratches[worker] = s
		}
		h.intra[a] = nw.intraDijkstraAll(h, a, s)
	})

	// Group-level graph: min-latency border link per group pair.
	type asEdge struct {
		latency float64
		link    int32
	}
	border := make(map[[2]int]asEdge)
	for _, l := range nw.Links {
		a, b := h.asIdx[h.asOf[l.A]], h.asIdx[h.asOf[l.B]]
		if a == b {
			continue
		}
		for _, key := range [][2]int{{a, b}, {b, a}} {
			cur, ok := border[key]
			if !ok || l.Latency < cur.latency || (l.Latency == cur.latency && int32(l.ID) < cur.link) {
				border[key] = asEdge{latency: l.Latency, link: int32(l.ID)}
			}
		}
	}

	// Group-level all-pairs shortest paths, tracking the first group hop.
	// One Dijkstra per source group over the border graph — O(C·E_C·log C)
	// instead of Floyd–Warshall's O(C³), which matters once auto-clustering
	// pushes C into the thousands.
	type interEdge struct {
		to  int
		lat float64
	}
	adj := make([][]interEdge, numAS)
	keys := make([][2]int, 0, len(border))
	for key := range border {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		adj[key[0]] = append(adj[key[0]], interEdge{to: key[1], lat: border[key].latency})
	}
	next := make([]int, numAS*numAS)
	for i := range next {
		next[i] = -1
	}
	s := newDijkstraScratch(numAS)
	dist := make([]float64, numAS)
	for a := 0; a < numAS; a++ {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		s.reset(numAS)
		firstHop, done := s.firstLink, s.done
		dist[a] = 0
		s.push(pqItem{node: a})
		for len(s.heap) > 0 {
			v := s.pop().node
			if done[v] {
				continue
			}
			done[v] = true
			for _, e := range adj[v] {
				nd := dist[v] + e.lat
				f := firstHop[v]
				if v == a {
					f = int32(e.to)
				}
				// Deterministic tie-break on the first next-group index.
				if nd < dist[e.to] || (nd == dist[e.to] && !done[e.to] && firstHop[e.to] > f) {
					dist[e.to] = nd
					firstHop[e.to] = f
					s.push(pqItem{node: e.to, dist: nd})
				}
			}
		}
		row := next[a*numAS : a*numAS+numAS]
		for b := 0; b < numAS; b++ {
			if b != a {
				row[b] = int(firstHop[b])
			}
		}
	}
	h.nextAS = next
	h.gateway = make([]int32, numAS*numAS)
	for i := range h.gateway {
		h.gateway[i] = -1
	}
	for key, e := range border {
		h.gateway[key[0]*numAS+key[1]] = e.link
	}
	return h
}

// intraDijkstraAll computes all-pairs next-hop routing within one group
// subgraph, reusing the caller's scratch across the group's sources.
func (nw *Network) intraDijkstraAll(h *HierarchicalTable, a int, s *dijkstraScratch) intraTable {
	members := h.member[a]
	m := len(members)
	t := intraTable{
		nextLink: make([]int32, m*m),
		dist:     make([]float64, m*m),
	}
	for i := range t.nextLink {
		t.nextLink[i] = -1
		t.dist[i] = math.Inf(1)
	}
	for si := range members {
		dist := t.dist[si*m : si*m+m]
		s.reset(m)
		first, done := s.firstLink, s.done
		dist[si] = 0
		s.push(pqItem{node: si})
		for len(s.heap) > 0 {
			vi := s.pop().node
			if done[vi] {
				continue
			}
			done[vi] = true
			v := members[vi]
			for _, lid := range nw.adj[v] {
				l := &nw.Links[lid]
				u := l.Other(v)
				if h.asIdx[h.asOf[u]] != a {
					continue // border link: not part of the intra table
				}
				ui := h.memberIdx[u]
				nd := dist[vi] + l.Latency
				f := first[vi]
				if vi == si {
					f = int32(lid)
				}
				if nd < dist[ui] || (nd == dist[ui] && !done[ui] && first[ui] > f) {
					dist[ui] = nd
					first[ui] = f
					s.push(pqItem{node: ui, dist: nd})
				}
			}
		}
		copy(t.nextLink[si*m:si*m+m], first)
		t.nextLink[si*m+si] = -1
	}
	return t
}

// NextLink implements Routing.
func (h *HierarchicalTable) NextLink(src, dst int) int {
	if src == dst {
		return -1
	}
	a := h.asIdx[h.asOf[src]]
	b := h.asIdx[h.asOf[dst]]
	if a == b {
		m := len(h.member[a])
		return int(h.intra[a].nextLink[h.memberIdx[src]*m+h.memberIdx[dst]])
	}
	numAS := len(h.asIDs)
	na := h.nextAS[a*numAS+b]
	if na < 0 {
		return -1
	}
	gw := h.gateway[a*numAS+na]
	if gw < 0 {
		return -1
	}
	l := h.nw.Links[gw]
	// The gateway link's endpoint inside this group.
	exit := l.A
	if h.asIdx[h.asOf[exit]] != a {
		exit = l.B
	}
	if exit == src {
		return int(gw)
	}
	m := len(h.member[a])
	return int(h.intra[a].nextLink[h.memberIdx[src]*m+h.memberIdx[exit]])
}

// Distance implements Routing by walking the hierarchical path.
func (h *HierarchicalTable) Distance(src, dst int) float64 {
	if src == dst {
		return 0
	}
	var total float64
	cur := src
	for steps := 0; steps <= len(h.nw.Nodes)+len(h.asIDs); steps++ {
		if cur == dst {
			return total
		}
		lid := h.NextLink(cur, dst)
		if lid < 0 {
			return math.Inf(1)
		}
		total += h.nw.Links[lid].Latency
		cur = h.nw.Links[lid].Other(cur)
	}
	return math.Inf(1) // defensive: should be unreachable
}

// MemoryBytes implements Routing: the per-group intra tables (12 bytes per
// intra pair) plus the group-level next-group and gateway matrices.
func (h *HierarchicalTable) MemoryBytes() int64 {
	var b int64
	for _, t := range h.intra {
		b += int64(len(t.nextLink))*4 + int64(len(t.dist))*8
	}
	b += int64(len(h.nextAS)) * 8
	b += int64(len(h.gateway)) * 4
	b += int64(len(h.asOf))*8 + int64(len(h.memberIdx))*8
	for _, m := range h.member {
		b += int64(len(m)) * 8
	}
	return b
}

// Stats implements Routing.
func (h *HierarchicalTable) Stats() RoutingStats {
	n := len(h.asOf)
	return RoutingStats{
		Backend:     h.kind,
		MemoryBytes: h.MemoryBytes(),
		Sources:     n,
		Capacity:    n,
	}
}

// Clusters returns the number of groups (ASes or auto-generated clusters)
// the table routes between.
func (h *HierarchicalTable) Clusters() int { return len(h.asIDs) }

// TableEntries returns the number of routing-table entries node n must hold
// under hierarchical routing: per-group all-pairs entries plus one entry per
// foreign group — the quantity the paper's 10 + x² memory weight models.
func (h *HierarchicalTable) TableEntries(n int) int {
	a := h.asIdx[h.asOf[n]]
	return len(h.member[a]) + (len(h.asIDs) - 1)
}
