package netgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// lineNetwork builds h0 - r0 - r1 - r2 - h1 with distinct latencies.
func lineNetwork() *Network {
	nw := New("line")
	h0 := nw.AddHost("h0", 1)
	r0 := nw.AddRouter("r0", 1)
	r1 := nw.AddRouter("r1", 1)
	r2 := nw.AddRouter("r2", 1)
	h1 := nw.AddHost("h1", 1)
	nw.AddLink(h0, r0, 100e6, 0.001)
	nw.AddLink(r0, r1, 1e9, 0.002)
	nw.AddLink(r1, r2, 1e9, 0.003)
	nw.AddLink(r2, h1, 100e6, 0.001)
	return nw
}

func TestCounts(t *testing.T) {
	nw := lineNetwork()
	if nw.NumNodes() != 5 || nw.NumRouters() != 3 || nw.NumHosts() != 2 {
		t.Fatalf("counts = %d/%d/%d, want 5/3/2", nw.NumNodes(), nw.NumRouters(), nw.NumHosts())
	}
	if len(nw.Hosts()) != 2 || len(nw.Routers()) != 3 {
		t.Fatal("Hosts/Routers listing wrong")
	}
}

func TestLinkOther(t *testing.T) {
	l := Link{ID: 0, A: 3, B: 7}
	if l.Other(3) != 7 || l.Other(7) != 3 {
		t.Fatal("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint did not panic")
		}
	}()
	l.Other(5)
}

func TestNeighborsAndLinkBetween(t *testing.T) {
	nw := lineNetwork()
	nb := nw.Neighbors(1) // r0: h0 and r1
	if len(nb) != 2 {
		t.Fatalf("r0 neighbors = %v", nb)
	}
	if lid := nw.LinkBetween(1, 2); lid != 1 {
		t.Errorf("LinkBetween(r0,r1) = %d, want 1", lid)
	}
	if lid := nw.LinkBetween(0, 4); lid != -1 {
		t.Errorf("LinkBetween(h0,h1) = %d, want -1", lid)
	}
}

func TestLinkBetweenPicksLowestLatency(t *testing.T) {
	nw := New("par")
	a := nw.AddRouter("a", 1)
	b := nw.AddRouter("b", 1)
	nw.AddLink(a, b, 1e9, 0.010)
	fast := nw.AddLink(a, b, 1e9, 0.001)
	if got := nw.LinkBetween(a, b); got != fast {
		t.Errorf("LinkBetween = %d, want %d (lower latency)", got, fast)
	}
}

func TestTotalBandwidth(t *testing.T) {
	nw := lineNetwork()
	// r1 touches two 1Gb/s links.
	if got := nw.TotalBandwidth(2); got != 2e9 {
		t.Errorf("TotalBandwidth(r1) = %v, want 2e9", got)
	}
}

func TestMemoryWeight(t *testing.T) {
	nw := lineNetwork()
	asr := nw.ASRouterCount()
	if asr[1] != 3 {
		t.Fatalf("AS 1 router count = %d, want 3", asr[1])
	}
	// Router: 10 + 3² = 19; host: 10.
	if got := nw.MemoryWeight(1, asr); got != 19 {
		t.Errorf("router MemoryWeight = %d, want 19", got)
	}
	if got := nw.MemoryWeight(0, asr); got != 10 {
		t.Errorf("host MemoryWeight = %d, want 10", got)
	}
}

func TestAccessRouter(t *testing.T) {
	nw := lineNetwork()
	if got := nw.AccessRouter(0); got != 1 {
		t.Errorf("AccessRouter(h0) = %d, want 1", got)
	}
	if got := nw.AccessRouter(4); got != 3 {
		t.Errorf("AccessRouter(h1) = %d, want 3", got)
	}
}

func TestValidate(t *testing.T) {
	nw := lineNetwork()
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	// Disconnected: add an isolated router.
	nw2 := lineNetwork()
	nw2.AddRouter("lonely", 1)
	if err := nw2.Validate(); err == nil {
		t.Error("disconnected network accepted")
	}
	// Host without access link.
	nw3 := New("x")
	nw3.AddHost("h", 1)
	if err := nw3.Validate(); err == nil {
		t.Error("unattached host accepted")
	}
	// Bad bandwidth.
	nw4 := New("y")
	a := nw4.AddRouter("a", 1)
	b := nw4.AddRouter("b", 1)
	nw4.AddLink(a, b, 0, 0.001)
	if err := nw4.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	// Self loop.
	nw5 := New("z")
	c := nw5.AddRouter("c", 1)
	nw5.Links = append(nw5.Links, Link{ID: 0, A: c, B: c, Bandwidth: 1, Latency: 0})
	if err := nw5.Validate(); err == nil {
		t.Error("self loop accepted")
	}
}

func TestRoutingLine(t *testing.T) {
	nw := lineNetwork()
	rt := nw.BuildRoutingTable()
	path := nw.Route(rt, 0, 4)
	want := []int{0, 1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if d := rt.Distance(0, 4); math.Abs(d-0.007) > 1e-12 {
		t.Errorf("distance = %v, want 0.007", d)
	}
	if d := rt.Distance(2, 2); d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
	links := nw.RouteLinks(rt, 0, 4)
	if len(links) != 4 {
		t.Fatalf("RouteLinks = %v, want 4 links", links)
	}
	if nw.RouteLinks(rt, 2, 2) != nil {
		t.Error("RouteLinks self not nil")
	}
}

func TestRoutingPrefersLowLatency(t *testing.T) {
	// Triangle where the direct a-b link is slower than a-c-b.
	nw := New("tri")
	a := nw.AddRouter("a", 1)
	b := nw.AddRouter("b", 1)
	c := nw.AddRouter("c", 1)
	nw.AddLink(a, b, 1e9, 0.010)
	nw.AddLink(a, c, 1e9, 0.002)
	nw.AddLink(c, b, 1e9, 0.002)
	rt := nw.BuildRoutingTable()
	path := nw.Route(rt, a, b)
	if len(path) != 3 || path[1] != c {
		t.Errorf("path = %v, want detour through c", path)
	}
	if d := rt.Distance(a, b); math.Abs(d-0.004) > 1e-12 {
		t.Errorf("distance = %v, want 0.004", d)
	}
}

func TestRoutingUnreachable(t *testing.T) {
	nw := New("u")
	a := nw.AddRouter("a", 1)
	b := nw.AddRouter("b", 1)
	_ = b
	rt := nw.BuildRoutingTable()
	if nw.Route(rt, a, b) != nil {
		t.Error("route across disconnected components")
	}
	if rt.NextLink(a, b) != -1 {
		t.Error("NextLink should be -1")
	}
	if !math.IsInf(rt.Distance(a, b), 1) {
		t.Error("distance should be +Inf")
	}
	if nw.Traceroute(rt, a, b) != nil {
		t.Error("traceroute across disconnected components")
	}
}

func TestTraceroute(t *testing.T) {
	nw := lineNetwork()
	rt := nw.BuildRoutingTable()
	hops := nw.Traceroute(rt, 0, 4)
	if len(hops) != 4 {
		t.Fatalf("hops = %v, want 4", hops)
	}
	if hops[0].Node != 1 || hops[3].Node != 4 {
		t.Errorf("hop nodes = %v", hops)
	}
	// RTT accumulates: last hop RTT = 2 * 0.007.
	if math.Abs(hops[3].RTT-0.014) > 1e-12 {
		t.Errorf("final RTT = %v, want 0.014", hops[3].RTT)
	}
	// RTTs are non-decreasing.
	for i := 1; i < len(hops); i++ {
		if hops[i].RTT < hops[i-1].RTT {
			t.Error("RTT decreased along path")
		}
	}
}

// randomNetwork builds a connected random network for property tests.
func randomNetwork(n int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	nw := New("rand")
	for i := 0; i < n; i++ {
		nw.AddRouter("r", 1)
		if i > 0 {
			nw.AddLink(i, rng.Intn(i), 1e9, float64(1+rng.Intn(10))*1e-3)
		}
	}
	for i := 0; i < n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			nw.AddLink(a, b, 1e9, float64(1+rng.Intn(10))*1e-3)
		}
	}
	return nw
}

func TestRoutingProperties(t *testing.T) {
	f := func(seed int64) bool {
		nw := randomNetwork(30, seed)
		rt := nw.BuildRoutingTable()
		rng := rand.New(rand.NewSource(seed ^ 0x77))
		for trial := 0; trial < 10; trial++ {
			src, dst := rng.Intn(30), rng.Intn(30)
			path := nw.Route(rt, src, dst)
			if path == nil {
				return false // connected by construction
			}
			if path[0] != src || path[len(path)-1] != dst {
				return false
			}
			// Consecutive nodes adjacent; total latency equals Distance.
			var total float64
			for i := 1; i < len(path); i++ {
				lid := nw.LinkBetween(path[i-1], path[i])
				if lid < 0 {
					return false
				}
				total += nw.Links[lid].Latency
			}
			if math.Abs(total-rt.Distance(src, dst)) > 1e-9 {
				return false
			}
			// No repeated nodes (simple path).
			seen := map[int]bool{}
			for _, v := range path {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRoutingSymmetricDistance(t *testing.T) {
	// Undirected links: distance must be symmetric.
	nw := randomNetwork(25, 42)
	rt := nw.BuildRoutingTable()
	for a := 0; a < 25; a++ {
		for b := 0; b < 25; b++ {
			if math.Abs(rt.Distance(a, b)-rt.Distance(b, a)) > 1e-9 {
				t.Fatalf("asymmetric distance %d<->%d", a, b)
			}
		}
	}
}

func TestNodeKindString(t *testing.T) {
	if Router.String() != "router" || Host.String() != "host" {
		t.Error("NodeKind.String wrong")
	}
	if NodeKind(9).String() == "" {
		t.Error("unknown kind string empty")
	}
}
