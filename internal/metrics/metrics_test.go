package metrics

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev(nil) = %v, want 0", got)
	}
	if got := StdDev([]float64{3, 3, 3}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("StdDev(constant) = %v, want 0", got)
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is exactly 2.
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{10, 10, 10}); got != 0 {
		t.Errorf("balanced imbalance = %v, want 0", got)
	}
	if got := Imbalance([]float64{0, 0, 0}); got != 0 {
		t.Errorf("zero-load imbalance = %v, want 0", got)
	}
	// {0, 2}: mean 1, stddev 1 -> imbalance 1.
	if got := Imbalance([]float64{0, 2}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("imbalance = %v, want 1", got)
	}
}

func TestImbalanceScaleInvariant(t *testing.T) {
	f := func(raw []float64, scale float64) bool {
		if len(raw) < 2 {
			return true
		}
		scale = math.Abs(scale)
		if scale < 1e-6 || scale > 1e6 || math.IsNaN(scale) || math.IsInf(scale, 0) {
			return true
		}
		loads := make([]float64, len(raw))
		var total float64
		for i, v := range raw {
			loads[i] = math.Abs(math.Mod(v, 1000))
			if math.IsNaN(loads[i]) {
				return true
			}
			total += loads[i]
		}
		if total == 0 {
			return true
		}
		scaled := make([]float64, len(loads))
		for i, v := range loads {
			scaled[i] = v * scale
		}
		return almostEqual(Imbalance(loads), Imbalance(scaled), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxOverMean(t *testing.T) {
	if got := MaxOverMean([]float64{1, 1, 1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("MaxOverMean balanced = %v, want 1", got)
	}
	if got := MaxOverMean([]float64{0, 0}); got != 0 {
		t.Errorf("MaxOverMean zero = %v, want 0", got)
	}
	if got := MaxOverMean([]float64{3, 1}); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("MaxOverMean = %v, want 1.5", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Sum(xs); got != 11 {
		t.Errorf("Sum = %v, want 11", got)
	}
	if Max(nil) != 0 || Min(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty-slice Max/Min/Sum should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %v, want 5", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("p25 = %v, want 2", got)
	}
	// Percentile must not mutate input.
	ys := []float64{5, 1, 3}
	Percentile(ys, 50)
	if ys[0] != 5 || ys[1] != 1 || ys[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestSeriesAddAndTotals(t *testing.T) {
	s := NewSeries(2.0, 3, 5)
	if s.Nodes() != 3 || s.Buckets() != 5 {
		t.Fatalf("shape = %dx%d, want 5x3", s.Buckets(), s.Nodes())
	}
	s.Add(0.5, 0, 10) // bucket 0
	s.Add(3.9, 1, 5)  // bucket 1
	s.Add(9.99, 2, 7) // bucket 4
	s.Add(-1, 0, 1)   // clamped to bucket 0
	s.Add(100, 2, 2)  // clamped to bucket 4
	if s.Loads[0][0] != 11 {
		t.Errorf("bucket0 node0 = %v, want 11", s.Loads[0][0])
	}
	if s.Loads[1][1] != 5 {
		t.Errorf("bucket1 node1 = %v, want 5", s.Loads[1][1])
	}
	if s.Loads[4][2] != 9 {
		t.Errorf("bucket4 node2 = %v, want 9", s.Loads[4][2])
	}
	tot := s.TotalPerNode()
	if tot[0] != 11 || tot[1] != 5 || tot[2] != 9 {
		t.Errorf("TotalPerNode = %v", tot)
	}
	per := s.TotalPerBucket()
	if per[0] != 11 || per[1] != 5 || per[4] != 9 {
		t.Errorf("TotalPerBucket = %v", per)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries(1.0, 0, 0)
	s.Add(1, 0, 5) // must not panic
	if s.Nodes() != 0 || s.Buckets() != 0 {
		t.Error("empty series shape wrong")
	}
	if len(s.ImbalancePerBucket()) != 0 {
		t.Error("empty series imbalance not empty")
	}
}

func TestSeriesImbalancePerBucket(t *testing.T) {
	s := NewSeries(1.0, 2, 2)
	s.Loads[0] = []float64{1, 1} // balanced
	s.Loads[1] = []float64{0, 2} // imbalance 1
	got := s.ImbalancePerBucket()
	if !almostEqual(got[0], 0, 1e-12) || !almostEqual(got[1], 1, 1e-12) {
		t.Errorf("ImbalancePerBucket = %v, want [0 1]", got)
	}
}

func TestSeriesSmooth(t *testing.T) {
	s := NewSeries(1.0, 1, 5)
	for b := range s.Loads {
		s.Loads[b][0] = float64(b) // 0,1,2,3,4
	}
	sm := s.Smooth(3)
	// Interior points: centered average of 3.
	if !almostEqual(sm.Loads[2][0], 2, 1e-12) {
		t.Errorf("smoothed mid = %v, want 2", sm.Loads[2][0])
	}
	// Edges: truncated window (0,1)/2 = 0.5.
	if !almostEqual(sm.Loads[0][0], 0.5, 1e-12) {
		t.Errorf("smoothed edge = %v, want 0.5", sm.Loads[0][0])
	}
	// Even window is promoted to odd; window<1 behaves as 1 (identity).
	id := s.Smooth(0)
	for b := range id.Loads {
		if id.Loads[b][0] != s.Loads[b][0] {
			t.Errorf("window-0 smooth changed bucket %d", b)
		}
	}
}

func TestSeriesSmoothPreservesTotalApproximately(t *testing.T) {
	// Smoothing is a moving average: per-node totals drift only at edges.
	s := NewSeries(1.0, 2, 30)
	for b := range s.Loads {
		s.Loads[b][0] = float64(b % 7)
		s.Loads[b][1] = float64((b * 3) % 5)
	}
	sm := s.Smooth(5)
	for n := 0; n < 2; n++ {
		a, b := s.TotalPerNode()[n], sm.TotalPerNode()[n]
		if math.Abs(a-b) > 0.25*a {
			t.Errorf("node %d smoothing drifted: %v -> %v", n, a, b)
		}
	}
}

func TestDominatingNode(t *testing.T) {
	s := NewSeries(1.0, 3, 3)
	s.Loads[0] = []float64{5, 1, 1}
	s.Loads[1] = []float64{1, 5, 1}
	s.Loads[2] = []float64{2, 2, 2} // tie -> lowest index
	got := s.DominatingNode()
	want := []int{0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("DominatingNode[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 50); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Improvement = %v, want 0.5", got)
	}
	if got := Improvement(0, 50); got != 0 {
		t.Errorf("Improvement from 0 = %v, want 0", got)
	}
	if got := Improvement(50, 100); !almostEqual(got, -1, 1e-12) {
		t.Errorf("negative Improvement = %v, want -1", got)
	}
}

func TestSeriesString(t *testing.T) {
	s := NewSeries(2.0, 2, 1)
	s.Loads[0] = []float64{1, 2}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

func TestImbalanceSubset(t *testing.T) {
	loads := []float64{10, 10, 0}
	// Full set: the dead third engine drags imbalance up.
	if got := ImbalanceSubset(loads, nil); got != Imbalance(loads) {
		t.Errorf("nil keep = %v, want Imbalance %v", got, Imbalance(loads))
	}
	// Alive subset {0,1} is perfectly balanced.
	if got := ImbalanceSubset(loads, []bool{true, true, false}); got != 0 {
		t.Errorf("alive-subset imbalance = %v, want 0", got)
	}
	// Single survivor: zero by definition.
	if got := ImbalanceSubset(loads, []bool{false, false, true}); got != 0 {
		t.Errorf("single-survivor imbalance = %v, want 0", got)
	}
	// Short keep slice: out-of-range loads excluded.
	if got := ImbalanceSubset(loads, []bool{true}); got != 0 {
		t.Errorf("short keep = %v, want 0", got)
	}
}

func TestSeriesClone(t *testing.T) {
	s := NewSeries(2, 3, 4)
	s.Add(1, 0, 5)
	s.Add(3, 2, 7)
	c := s.Clone()
	if c.BucketWidth != 2 || c.Nodes() != 3 || c.Buckets() != 4 {
		t.Fatalf("clone shape wrong: %+v", c)
	}
	c.Add(1, 0, 100)
	if s.Loads[0][0] != 5 {
		t.Error("clone shares backing storage with original")
	}
	if c.Loads[0][0] != 105 || c.Loads[1][2] != 7 {
		t.Errorf("clone values wrong: %v", c.Loads)
	}
	var nilS *Series
	if nilS.Clone() != nil {
		t.Error("nil Clone not nil")
	}
}

func TestSeriesCloneInto(t *testing.T) {
	s := NewSeries(2, 3, 4)
	s.Add(1, 0, 5)
	s.Add(3, 2, 7)

	got := s.CloneInto(nil)
	if !reflect.DeepEqual(got, s.Clone()) {
		t.Fatalf("CloneInto(nil) = %+v, want %+v", got, s.Clone())
	}

	// Reuse: a matching-shape destination keeps its row storage.
	rows := make([]*float64, len(got.Loads))
	for i := range got.Loads {
		rows[i] = &got.Loads[i][0]
	}
	s.Add(5, 1, 9)
	got = s.CloneInto(got)
	if !reflect.DeepEqual(got, s.Clone()) {
		t.Fatalf("reused CloneInto = %+v, want %+v", got, s.Clone())
	}
	for i := range got.Loads {
		if &got.Loads[i][0] != rows[i] {
			t.Fatalf("row %d was reallocated despite matching shape", i)
		}
	}

	// Mis-shaped destination grows.
	small := NewSeries(1, 1, 1)
	got = s.CloneInto(small)
	if !reflect.DeepEqual(got, s.Clone()) {
		t.Fatalf("grown CloneInto = %+v, want %+v", got, s.Clone())
	}

	var nilS *Series
	if nilS.CloneInto(nil) != nil {
		t.Error("nil CloneInto not nil")
	}
}
