package metrics

import (
	"fmt"
	"math"
)

// Histogram is a streaming fixed-log-bucket histogram: bucket i covers the
// value range [Lo·g^i, Lo·g^(i+1)) for a constant growth factor g, values
// below Lo clamp into bucket 0 and values at or above the top bound clamp
// into the last bucket. The layout is decided once at construction, so
// Observe never allocates and never rebalances — the property the telemetry
// hot path depends on (one histogram per engine, merged at barriers).
//
// Quantiles are estimated by walking the cumulative counts and interpolating
// inside the target bucket (geometrically, matching the log bucket shape;
// linearly from zero inside bucket 0, which holds the sub-Lo values).
type Histogram struct {
	// Lo is the lower bound of bucket 0 (values below it clamp in).
	Lo float64
	// Growth is the per-bucket growth factor g (> 1).
	Growth float64
	// Counts[i] is the number of observations in bucket i.
	Counts []int64
	// Count and Sum aggregate all observations (including clamped ones, at
	// their true values). NaN observations are excluded from both.
	Count int64
	Sum   float64
	// NaNCount counts NaN observations. They belong to no bucket — filing
	// them into bucket 0 would skew the low quantiles, and adding them to Sum
	// would poison the mean — so they are quarantined here and surfaced as
	// their own series in the Prometheus exposition.
	NaNCount int64

	invLogG float64
}

// NewLogHistogram builds a histogram covering [lo, hi) with bucketsPerDecade
// log buckets per factor of 10. lo must be positive and hi > lo;
// bucketsPerDecade defaults to 5 when <= 0 (a ~58% bucket growth).
func NewLogHistogram(lo, hi float64, bucketsPerDecade int) (*Histogram, error) {
	if lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("metrics: histogram needs 0 < lo < hi, got [%g, %g)", lo, hi)
	}
	if bucketsPerDecade <= 0 {
		bucketsPerDecade = 5
	}
	g := math.Pow(10, 1/float64(bucketsPerDecade))
	n := int(math.Ceil(math.Log10(hi/lo) * float64(bucketsPerDecade)))
	if n < 1 {
		n = 1
	}
	return &Histogram{
		Lo:      lo,
		Growth:  g,
		Counts:  make([]int64, n),
		invLogG: 1 / math.Log(g),
	}, nil
}

// MustLogHistogram is NewLogHistogram for statically correct parameters.
func MustLogHistogram(lo, hi float64, bucketsPerDecade int) *Histogram {
	h, err := NewLogHistogram(lo, hi, bucketsPerDecade)
	if err != nil {
		panic(err)
	}
	return h
}

// bucketOf returns the bucket index for v, clamping out-of-range values.
// NaN never reaches here (Observe diverts it to NaNCount).
func (h *Histogram) bucketOf(v float64) int {
	if v < h.Lo {
		return 0
	}
	b := int(math.Log(v/h.Lo) * h.invLogG)
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	return b
}

// Observe records one value. It never allocates. NaN values are counted in
// NaNCount and touch neither the buckets nor Count/Sum.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		h.NaNCount++
		return
	}
	h.Counts[h.bucketOf(v)]++
	h.Count++
	h.Sum += v
}

// NumBuckets returns the number of buckets.
func (h *Histogram) NumBuckets() int { return len(h.Counts) }

// UpperBound returns the exclusive upper bound of bucket i.
func (h *Histogram) UpperBound(i int) float64 {
	return h.Lo * math.Pow(h.Growth, float64(i+1))
}

// lowerBound returns the inclusive lower bound of bucket i; bucket 0 also
// holds all clamped sub-Lo values, so its effective lower bound is 0.
func (h *Histogram) lowerBound(i int) float64 {
	if i == 0 {
		return 0
	}
	return h.Lo * math.Pow(h.Growth, float64(i))
}

// Mean returns the mean of all observations, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the p-th percentile (0 <= p <= 100) from the bucket
// counts. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + c
		if float64(next) >= rank {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			lo, hi := h.lowerBound(i), h.UpperBound(i)
			if i == 0 {
				// Bucket 0 holds [0, Lo·g): interpolate linearly from zero.
				return hi * frac
			}
			// Log buckets: geometric interpolation matches the bucket shape.
			return lo * math.Pow(hi/lo, frac)
		}
		cum = next
	}
	return h.UpperBound(len(h.Counts) - 1)
}

// Merge adds o's observations into h. The histograms must share a layout.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if o.Lo != h.Lo || o.Growth != h.Growth || len(o.Counts) != len(h.Counts) {
		return fmt.Errorf("metrics: merging incompatible histograms ([%g,g=%g,%d] vs [%g,g=%g,%d])",
			h.Lo, h.Growth, len(h.Counts), o.Lo, o.Growth, len(o.Counts))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Count += o.Count
	h.Sum += o.Sum
	h.NaNCount += o.NaNCount
	return nil
}

// CloneHistogram returns a deep copy (nil-safe).
func (h *Histogram) CloneHistogram() *Histogram {
	if h == nil {
		return nil
	}
	cp := *h
	cp.Counts = append([]int64(nil), h.Counts...)
	return &cp
}

// ResetHistogram zeroes all counts, keeping the layout (and allocations).
func (h *Histogram) ResetHistogram() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.Count = 0
	h.Sum = 0
	h.NaNCount = 0
}
