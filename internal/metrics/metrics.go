// Package metrics provides the summary statistics used throughout the
// emulation study: load imbalance (the paper's normalized standard deviation
// of per-engine kernel event rates), time series of bucketed loads, and the
// small statistical helpers the experiment drivers share.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Imbalance is the paper's load-imbalance metric: the standard deviation of
// the per-engine loads normalized by their mean ("normalized standard
// deviation of {k}", §4.1.1). A perfectly balanced emulation scores 0.
// If the total load is zero the imbalance is defined as 0.
func Imbalance(loads []float64) float64 {
	m := Mean(loads)
	if m == 0 {
		return 0
	}
	return StdDev(loads) / m
}

// ImbalanceSubset returns Imbalance over only the loads whose keep flag is
// set — the post-recovery view of a cluster, where dead engines must not
// drag the mean down. A nil keep considers every load.
func ImbalanceSubset(loads []float64, keep []bool) float64 {
	if keep == nil {
		return Imbalance(loads)
	}
	kept := make([]float64, 0, len(loads))
	for i, l := range loads {
		if i < len(keep) && keep[i] {
			kept = append(kept, l)
		}
	}
	return Imbalance(kept)
}

// MaxOverMean is an auxiliary imbalance measure: max(load)/mean(load).
// It bounds the slowdown of a barrier-synchronized execution and is used by
// the ablation benches. Returns 1 for perfectly balanced loads, 0 when the
// total load is zero.
func MaxOverMean(loads []float64) float64 {
	m := Mean(loads)
	if m == 0 {
		return 0
	}
	mx := loads[0]
	for _, x := range loads[1:] {
		if x > mx {
			mx = x
		}
	}
	return mx / m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mx := xs[0]
	for _, x := range xs[1:] {
		if x > mx {
			mx = x
		}
	}
	return mx
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mn := xs[0]
	for _, x := range xs[1:] {
		if x < mn {
			mn = x
		}
	}
	return mn
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	pos := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Series is a time series of per-node loads over fixed-width buckets: one row
// per bucket, one column per node. It backs Figure 2 (load variation over the
// lifetime of an emulation) and Figure 8 (fine-grained imbalance).
type Series struct {
	// BucketWidth is the virtual-time width of each bucket in seconds.
	BucketWidth float64
	// Loads[b][n] is the load of node n during bucket b.
	Loads [][]float64
}

// NewSeries creates a Series with the given bucket width, node count, and
// number of buckets, all loads zero.
func NewSeries(bucketWidth float64, nodes, buckets int) *Series {
	s := &Series{BucketWidth: bucketWidth, Loads: make([][]float64, buckets)}
	for i := range s.Loads {
		s.Loads[i] = make([]float64, nodes)
	}
	return s
}

// Clone returns a deep copy of the series — the basis of checkpointing the
// emulator's bucketed load accounting.
func (s *Series) Clone() *Series {
	if s == nil {
		return nil
	}
	out := &Series{BucketWidth: s.BucketWidth, Loads: make([][]float64, len(s.Loads))}
	for i, row := range s.Loads {
		out.Loads[i] = append([]float64(nil), row...)
	}
	return out
}

// CloneInto deep-copies s into dst, reusing dst's row storage when the
// shapes match — the allocation-free path of the dynamic remapping loop,
// which re-exports a same-shaped series every interval. Returns the
// destination (freshly allocated when dst is nil or mis-shaped); dst may not
// alias s.
func (s *Series) CloneInto(dst *Series) *Series {
	if s == nil {
		return nil
	}
	if dst == nil {
		dst = &Series{}
	}
	dst.BucketWidth = s.BucketWidth
	if cap(dst.Loads) < len(s.Loads) {
		dst.Loads = make([][]float64, len(s.Loads))
	} else {
		dst.Loads = dst.Loads[:len(s.Loads)]
	}
	for i, row := range s.Loads {
		if cap(dst.Loads[i]) < len(row) {
			dst.Loads[i] = make([]float64, len(row))
		} else {
			dst.Loads[i] = dst.Loads[i][:len(row)]
		}
		copy(dst.Loads[i], row)
	}
	return dst
}

// Nodes returns the number of nodes (columns) in the series.
func (s *Series) Nodes() int {
	if len(s.Loads) == 0 {
		return 0
	}
	return len(s.Loads[0])
}

// Buckets returns the number of buckets (rows) in the series.
func (s *Series) Buckets() int { return len(s.Loads) }

// Add accumulates load into the bucket containing virtual time t for node n.
// Out-of-range times are clamped to the first/last bucket so tail events are
// not lost.
func (s *Series) Add(t float64, n int, load float64) {
	if len(s.Loads) == 0 {
		return
	}
	b := int(t / s.BucketWidth)
	if b < 0 {
		b = 0
	}
	if b >= len(s.Loads) {
		b = len(s.Loads) - 1
	}
	s.Loads[b][n] += load
}

// ImbalancePerBucket returns the Imbalance of each bucket's loads — the
// fine-grained imbalance curve of Figure 8.
func (s *Series) ImbalancePerBucket() []float64 {
	out := make([]float64, len(s.Loads))
	for i, row := range s.Loads {
		out[i] = Imbalance(row)
	}
	return out
}

// TotalPerNode returns the per-node load summed over all buckets.
func (s *Series) TotalPerNode() []float64 {
	out := make([]float64, s.Nodes())
	for _, row := range s.Loads {
		for n, v := range row {
			out[n] += v
		}
	}
	return out
}

// TotalPerBucket returns the all-node load of each bucket.
func (s *Series) TotalPerBucket() []float64 {
	out := make([]float64, len(s.Loads))
	for i, row := range s.Loads {
		out[i] = Sum(row)
	}
	return out
}

// Smooth returns a new Series in which each node's load curve has been
// replaced by a centered moving average over window buckets (window is
// rounded up to the next odd number). Smoothing is the first step of the
// paper's §3.3 clustering algorithm.
func (s *Series) Smooth(window int) *Series {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := NewSeries(s.BucketWidth, s.Nodes(), s.Buckets())
	for b := range s.Loads {
		lo := b - half
		if lo < 0 {
			lo = 0
		}
		hi := b + half
		if hi > len(s.Loads)-1 {
			hi = len(s.Loads) - 1
		}
		span := float64(hi - lo + 1)
		for n := 0; n < s.Nodes(); n++ {
			var sum float64
			for i := lo; i <= hi; i++ {
				sum += s.Loads[i][n]
			}
			out.Loads[b][n] = sum / span
		}
	}
	return out
}

// DominatingNode returns, for each bucket, the index of the node with the
// maximal load (ties broken toward the lower index). The paper's clustering
// algorithm splits the emulation timeline where the dominating node changes.
func (s *Series) DominatingNode() []int {
	out := make([]int, len(s.Loads))
	for b, row := range s.Loads {
		best := 0
		for n := 1; n < len(row); n++ {
			if row[n] > row[best] {
				best = n
			}
		}
		out[b] = best
	}
	return out
}

// String renders a compact table of the series, mainly for debugging and the
// experiment drivers' verbose mode.
func (s *Series) String() string {
	out := ""
	for b, row := range s.Loads {
		out += fmt.Sprintf("[%6.1fs]", float64(b)*s.BucketWidth)
		for _, v := range row {
			out += fmt.Sprintf(" %10.1f", v)
		}
		out += "\n"
	}
	return out
}

// Improvement returns the relative improvement of b over a: (a-b)/a.
// It is the quantity behind claims like "PROFILE improves load balance by
// 50% to 66%". Returns 0 when a is 0.
func Improvement(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a
}
