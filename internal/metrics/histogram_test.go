package metrics

import (
	"math"
	"testing"
)

func TestNewLogHistogramValidation(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi float64
		bpd    int
		ok     bool
	}{
		{"valid", 1e-6, 10, 5, true},
		{"default-bpd", 1e-3, 1, 0, true},
		{"zero-lo", 0, 10, 5, false},
		{"negative-lo", -1, 10, 5, false},
		{"hi-below-lo", 1, 0.5, 5, false},
		{"hi-equals-lo", 1, 1, 5, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := NewLogHistogram(tc.lo, tc.hi, tc.bpd)
			if (err == nil) != tc.ok {
				t.Fatalf("NewLogHistogram(%g, %g, %d) err = %v, want ok=%v",
					tc.lo, tc.hi, tc.bpd, err, tc.ok)
			}
			if tc.ok && h.NumBuckets() < 1 {
				t.Errorf("no buckets")
			}
		})
	}
}

func TestHistogramBucketing(t *testing.T) {
	// [1e-6, 1) at 5 buckets/decade -> 30 buckets, growth 10^(1/5).
	h := MustLogHistogram(1e-6, 1, 5)
	if got := h.NumBuckets(); got != 30 {
		t.Fatalf("buckets = %d, want 30", got)
	}
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0},          // clamped below Lo
		{-5, 0},         // negative clamps too
		{1e-6, 0},       // exactly Lo
		{1.5e-6, 0},     // g = 10^(1/5) ~= 1.585: 1.5e-6 < Lo*g stays in bucket 0
		{1.6e-6, 1},     // just past the first boundary
		{9.9e-1, 29},    // just under the top
		{1, 29},         // at hi: clamps into the last bucket
		{1e9, 29},       // far above clamps
		{math.NaN(), 0}, // NaN clamps to bucket 0
		{2.51e-6, 1},    // Lo*g^2 = 2.512e-6: just below the boundary
	}
	for _, tc := range cases {
		if got := h.bucketOf(tc.v); got != tc.bucket {
			t.Errorf("bucketOf(%g) = %d, want %d", tc.v, got, tc.bucket)
		}
	}
	// Every bucket's own lower bound must map back into that bucket (modulo
	// floating-point rounding at the exact boundary, tested via midpoint).
	for i := 0; i < h.NumBuckets(); i++ {
		mid := math.Sqrt(h.lowerBound(i+0) * h.UpperBound(i))
		if i == 0 {
			mid = h.Lo * math.Sqrt(h.Growth)
		}
		if got := h.bucketOf(mid); got != i {
			t.Errorf("midpoint of bucket %d maps to %d", i, got)
		}
	}
}

func TestHistogramCountSumMean(t *testing.T) {
	h := MustLogHistogram(1e-3, 10, 5)
	vals := []float64{0.001, 0.01, 0.1, 1, 5}
	var want float64
	for _, v := range vals {
		h.Observe(v)
		want += v
	}
	if h.Count != int64(len(vals)) {
		t.Errorf("Count = %d, want %d", h.Count, len(vals))
	}
	if math.Abs(h.Sum-want) > 1e-12 {
		t.Errorf("Sum = %g, want %g", h.Sum, want)
	}
	if math.Abs(h.Mean()-want/float64(len(vals))) > 1e-12 {
		t.Errorf("Mean = %g", h.Mean())
	}
	if (&Histogram{Counts: make([]int64, 1)}).Mean() != 0 {
		t.Error("empty Mean != 0")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := MustLogHistogram(1e-3, 100, 10)
	// 100 observations of 1.0: every quantile must land inside 1.0's bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1.0)
	}
	b := h.bucketOf(1.0)
	lo, hi := h.lowerBound(b), h.UpperBound(b)
	for _, p := range []float64{0, 25, 50, 75, 99, 100} {
		q := h.Quantile(p)
		if q < lo || q > hi {
			t.Errorf("Quantile(%g) = %g outside observed bucket [%g, %g)", p, q, lo, hi)
		}
	}
}

func TestHistogramQuantileTableDriven(t *testing.T) {
	cases := []struct {
		name   string
		obs    []float64
		p      float64
		within [2]float64 // acceptable interval (bucket resolution)
	}{
		{"empty", nil, 50, [2]float64{0, 0}},
		{"single-low", []float64{0.002}, 50, [2]float64{0, 0.004}},
		{"median-of-two-decades", []float64{0.01, 0.01, 0.01, 10, 10, 10}, 50, [2]float64{0.005, 0.02}},
		{"p99-tail", append(repeat(0.01, 99), 50), 99.5, [2]float64{25, 100}},
		{"zeros-clamp", []float64{0, 0, 0, 0}, 90, [2]float64{0, 0.0016}},
		{"clamped-p-above-100", []float64{1}, 150, [2]float64{0.5, 2}},
		{"clamped-p-below-0", []float64{1}, -10, [2]float64{0, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := MustLogHistogram(1e-3, 100, 5)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			q := h.Quantile(tc.p)
			if q < tc.within[0] || q > tc.within[1] {
				t.Errorf("Quantile(%g) = %g, want within [%g, %g]", tc.p, q, tc.within[0], tc.within[1])
			}
		})
	}
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestHistogramMerge(t *testing.T) {
	a := MustLogHistogram(1e-3, 10, 5)
	b := MustLogHistogram(1e-3, 10, 5)
	for i := 0; i < 10; i++ {
		a.Observe(0.01)
		b.Observe(1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count != 20 {
		t.Errorf("merged Count = %d, want 20", a.Count)
	}
	if math.Abs(a.Sum-10*0.01-10*1) > 1e-9 {
		t.Errorf("merged Sum = %g", a.Sum)
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge errored: %v", err)
	}
	incompatible := MustLogHistogram(1e-6, 10, 5)
	if err := a.Merge(incompatible); err == nil {
		t.Error("incompatible merge accepted")
	}
}

func TestHistogramCloneAndReset(t *testing.T) {
	h := MustLogHistogram(1e-3, 10, 5)
	h.Observe(0.5)
	cp := h.CloneHistogram()
	h.Observe(0.5)
	if cp.Count != 1 || h.Count != 2 {
		t.Errorf("clone not independent: clone=%d orig=%d", cp.Count, h.Count)
	}
	var nilH *Histogram
	if nilH.CloneHistogram() != nil {
		t.Error("nil clone not nil")
	}
	h.ResetHistogram()
	if h.Count != 0 || h.Sum != 0 {
		t.Errorf("reset left Count=%d Sum=%g", h.Count, h.Sum)
	}
	for i, c := range h.Counts {
		if c != 0 {
			t.Errorf("reset left bucket %d = %d", i, c)
		}
	}
}

func TestHistogramObserveNoAlloc(t *testing.T) {
	h := MustLogHistogram(1e-6, 10, 5)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i) * 1e-4)
		}
	})
	if allocs > 0 {
		t.Errorf("Observe allocated %.1f times per run, want 0", allocs)
	}
}

func TestHistogramNaNQuarantine(t *testing.T) {
	h := MustLogHistogram(1e-3, 10, 5)
	h.Observe(0.5)
	h.Observe(math.NaN())
	h.Observe(math.NaN())
	if h.NaNCount != 2 {
		t.Fatalf("NaNCount = %d, want 2", h.NaNCount)
	}
	// NaN observations touch neither the buckets nor Count/Sum: the mean and
	// quantiles stay those of the real observations instead of silently
	// poisoning (Sum would become NaN) or skewing low (bucket-0 filing).
	var bucketed int64
	for _, c := range h.Counts {
		bucketed += c
	}
	if bucketed != 1 || h.Count != 1 {
		t.Fatalf("NaN leaked into buckets: bucketed=%d count=%d", bucketed, h.Count)
	}
	if math.IsNaN(h.Sum) || h.Mean() != 0.5 {
		t.Fatalf("NaN poisoned the aggregates: sum=%g mean=%g", h.Sum, h.Mean())
	}
	if q := h.Quantile(99); math.IsNaN(q) {
		t.Fatal("NaN poisoned the quantiles")
	}
}

func TestHistogramNaNCountMergeCloneReset(t *testing.T) {
	h := MustLogHistogram(1e-3, 10, 5)
	h.Observe(math.NaN())
	o := MustLogHistogram(1e-3, 10, 5)
	o.Observe(math.NaN())
	o.Observe(math.NaN())
	o.Observe(1)
	if err := h.Merge(o); err != nil {
		t.Fatal(err)
	}
	if h.NaNCount != 3 || h.Count != 1 {
		t.Fatalf("merge: nan=%d count=%d, want 3/1", h.NaNCount, h.Count)
	}
	cp := h.CloneHistogram()
	if cp.NaNCount != 3 {
		t.Fatalf("clone dropped NaNCount: %d", cp.NaNCount)
	}
	h.ResetHistogram()
	if h.NaNCount != 0 {
		t.Fatalf("reset kept NaNCount: %d", h.NaNCount)
	}
	if cp.NaNCount != 3 {
		t.Fatal("reset of the original mutated the clone")
	}
}
