// Package netdesc reads and writes a textual network description — the role
// of MaSSF's DML network description file (§2.2.1: "this information is
// stored in the network description file and can be easily translated to a
// vertex and adjacent edge graph").
//
// The format is line oriented:
//
//	# comment
//	network <name>
//	router <name> [as=<n>] [site=<label>]
//	host   <name> [as=<n>] [site=<label>]
//	link   <nameA> <nameB> bw=<rate> lat=<delay>
//
// Rates accept bps, Kbps, Mbps, Gbps suffixes; delays accept s, ms, us.
// Node names must be unique; links refer to nodes by name.
package netdesc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/netgraph"
)

// Read parses a network description.
func Read(r io.Reader) (*netgraph.Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	nw := netgraph.New("")
	byName := make(map[string]int)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "network":
			if len(fields) != 2 {
				return nil, fmt.Errorf("netdesc: line %d: network takes one name", lineNo)
			}
			nw.Name = fields[1]
		case "router", "host":
			if len(fields) < 2 {
				return nil, fmt.Errorf("netdesc: line %d: %s needs a name", lineNo, fields[0])
			}
			name := fields[1]
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("netdesc: line %d: duplicate node %q", lineNo, name)
			}
			as := 1
			site := ""
			for _, opt := range fields[2:] {
				k, v, ok := strings.Cut(opt, "=")
				if !ok {
					return nil, fmt.Errorf("netdesc: line %d: malformed option %q", lineNo, opt)
				}
				switch k {
				case "as":
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("netdesc: line %d: bad as=%q", lineNo, v)
					}
					as = n
				case "site":
					site = v
				default:
					return nil, fmt.Errorf("netdesc: line %d: unknown option %q", lineNo, k)
				}
			}
			var id int
			if fields[0] == "router" {
				id = nw.AddRouter(name, as)
			} else {
				id = nw.AddHost(name, as)
			}
			if site != "" {
				nw.SetSite(id, site)
			}
			byName[name] = id
		case "link":
			if len(fields) != 5 {
				return nil, fmt.Errorf("netdesc: line %d: link <a> <b> bw=<rate> lat=<delay>", lineNo)
			}
			a, ok := byName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("netdesc: line %d: unknown node %q", lineNo, fields[1])
			}
			b, ok := byName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("netdesc: line %d: unknown node %q", lineNo, fields[2])
			}
			var bw, lat float64 = -1, -1
			for _, opt := range fields[3:] {
				k, v, ok := strings.Cut(opt, "=")
				if !ok {
					return nil, fmt.Errorf("netdesc: line %d: malformed option %q", lineNo, opt)
				}
				var err error
				switch k {
				case "bw":
					bw, err = ParseRate(v)
				case "lat":
					lat, err = ParseDelay(v)
				default:
					err = fmt.Errorf("unknown option %q", k)
				}
				if err != nil {
					return nil, fmt.Errorf("netdesc: line %d: %v", lineNo, err)
				}
			}
			if bw <= 0 || lat < 0 {
				return nil, fmt.Errorf("netdesc: line %d: link needs bw= and lat=", lineNo)
			}
			nw.AddLink(a, b, bw, lat)
		default:
			return nil, fmt.Errorf("netdesc: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	return nw, nil
}

// Write serializes nw in the format Read accepts. Node names must be unique
// (they are, for all generated topologies).
func Write(w io.Writer, nw *netgraph.Network) error {
	bw := bufio.NewWriter(w)
	if nw.Name != "" {
		fmt.Fprintf(bw, "network %s\n", nw.Name)
	}
	for _, n := range nw.Nodes {
		kind := "router"
		if n.Kind == netgraph.Host {
			kind = "host"
		}
		fmt.Fprintf(bw, "%s %s as=%d", kind, n.Name, n.AS)
		if n.Site != "" {
			fmt.Fprintf(bw, " site=%s", n.Site)
		}
		fmt.Fprintln(bw)
	}
	for _, l := range nw.Links {
		fmt.Fprintf(bw, "link %s %s bw=%s lat=%s\n",
			nw.Nodes[l.A].Name, nw.Nodes[l.B].Name,
			FormatRate(l.Bandwidth), FormatDelay(l.Latency))
	}
	return bw.Flush()
}

// ParseRate parses "100Mbps", "2.5Gbps", "64Kbps", "1500bps" into bits/s.
func ParseRate(s string) (float64, error) {
	mult := 1.0
	num := s
	switch {
	case strings.HasSuffix(s, "Gbps"):
		mult, num = 1e9, strings.TrimSuffix(s, "Gbps")
	case strings.HasSuffix(s, "Mbps"):
		mult, num = 1e6, strings.TrimSuffix(s, "Mbps")
	case strings.HasSuffix(s, "Kbps"):
		mult, num = 1e3, strings.TrimSuffix(s, "Kbps")
	case strings.HasSuffix(s, "bps"):
		num = strings.TrimSuffix(s, "bps")
	default:
		return 0, fmt.Errorf("rate %q needs a bps/Kbps/Mbps/Gbps suffix", s)
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	return v * mult, nil
}

// ParseDelay parses "0.5ms", "10us", "1s" into seconds.
func ParseDelay(s string) (float64, error) {
	mult := 1.0
	num := s
	switch {
	case strings.HasSuffix(s, "ms"):
		mult, num = 1e-3, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "us"):
		mult, num = 1e-6, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "s"):
		num = strings.TrimSuffix(s, "s")
	default:
		return 0, fmt.Errorf("delay %q needs an s/ms/us suffix", s)
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad delay %q", s)
	}
	return v * mult, nil
}

// FormatRate renders bits/s with the largest exact unit.
func FormatRate(bps float64) string {
	switch {
	case bps >= 1e9 && bps == float64(int64(bps/1e9))*1e9:
		return fmt.Sprintf("%gGbps", bps/1e9)
	case bps >= 1e6 && bps == float64(int64(bps/1e6))*1e6:
		return fmt.Sprintf("%gMbps", bps/1e6)
	case bps >= 1e3 && bps == float64(int64(bps/1e3))*1e3:
		return fmt.Sprintf("%gKbps", bps/1e3)
	default:
		return fmt.Sprintf("%gbps", bps)
	}
}

// FormatDelay renders seconds with a unit that keeps precision readable.
func FormatDelay(sec float64) string {
	switch {
	case sec == 0:
		return "0s"
	case sec < 1e-3:
		return fmt.Sprintf("%gus", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%gms", sec*1e3)
	default:
		return fmt.Sprintf("%gs", sec)
	}
}
