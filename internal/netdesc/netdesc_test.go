package netdesc

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/topogen"
)

func TestReadBasic(t *testing.T) {
	in := `# tiny example
network demo
router r0 as=1
router r1 as=2 site=west
host h0 as=1
link h0 r0 bw=100Mbps lat=0.5ms
link r0 r1 bw=2.5Gbps lat=10ms
`
	nw, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Name != "demo" {
		t.Errorf("name = %q", nw.Name)
	}
	if nw.NumRouters() != 2 || nw.NumHosts() != 1 {
		t.Errorf("nodes = %dr/%dh", nw.NumRouters(), nw.NumHosts())
	}
	if nw.Nodes[1].Site != "west" || nw.Nodes[1].AS != 2 {
		t.Errorf("node attrs = %+v", nw.Nodes[1])
	}
	if len(nw.Links) != 2 {
		t.Fatalf("links = %d", len(nw.Links))
	}
	if nw.Links[0].Bandwidth != 100e6 || math.Abs(nw.Links[0].Latency-0.5e-3) > 1e-12 {
		t.Errorf("link0 = %+v", nw.Links[0])
	}
	if nw.Links[1].Bandwidth != 2.5e9 {
		t.Errorf("link1 bw = %v", nw.Links[1].Bandwidth)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"dupNode", "router a\nrouter a\nlink a a bw=1bps lat=0s\n"},
		{"unknownNode", "router a\nlink a b bw=1bps lat=0s\n"},
		{"badDirective", "frobnicate x\n"},
		{"badOption", "router a color=red\n"},
		{"badAS", "router a as=x\n"},
		{"linkArity", "router a\nrouter b\nlink a b\n"},
		{"badRate", "router a\nrouter b\nlink a b bw=fast lat=1ms\n"},
		{"badDelay", "router a\nrouter b\nlink a b bw=1Mbps lat=soon\n"},
		{"missingBw", "router a\nrouter b\nlink a b lat=1ms lat=2ms\n"},
		{"networkArity", "network a b\n"},
		{"hostNoName", "host\n"},
		{"malformedOpt", "router a as\n"},
		{"linkBadOpt", "router a\nrouter b\nlink a b bw=1Mbps foo=1\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestReadValidates(t *testing.T) {
	// Host without a link fails network validation.
	if _, err := Read(strings.NewReader("host lonely\n")); err == nil {
		t.Error("unattached host accepted")
	}
}

func TestRoundTripGeneratedTopologies(t *testing.T) {
	for _, name := range []string{"Campus", "TeraGrid", "Brite"} {
		nw, err := topogen.ByName(name, 5)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, nw); err != nil {
			t.Fatal(err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.NumNodes() != nw.NumNodes() || len(got.Links) != len(nw.Links) {
			t.Fatalf("%s: shape changed: %d/%d -> %d/%d", name,
				nw.NumNodes(), len(nw.Links), got.NumNodes(), len(got.Links))
		}
		for i, n := range nw.Nodes {
			g := got.Nodes[i]
			if g.Kind != n.Kind || g.Name != n.Name || g.AS != n.AS || g.Site != n.Site {
				t.Fatalf("%s: node %d changed: %+v -> %+v", name, i, n, g)
			}
		}
		for i, l := range nw.Links {
			g := got.Links[i]
			if g.A != l.A || g.B != l.B {
				t.Fatalf("%s: link %d endpoints changed", name, i)
			}
			if math.Abs(g.Bandwidth-l.Bandwidth) > 1e-6*l.Bandwidth {
				t.Fatalf("%s: link %d bandwidth %v -> %v", name, i, l.Bandwidth, g.Bandwidth)
			}
			if math.Abs(g.Latency-l.Latency) > 1e-9 {
				t.Fatalf("%s: link %d latency %v -> %v", name, i, l.Latency, g.Latency)
			}
		}
	}
}

func TestParseRate(t *testing.T) {
	cases := map[string]float64{
		"100Mbps": 100e6,
		"2.5Gbps": 2.5e9,
		"64Kbps":  64e3,
		"1500bps": 1500,
	}
	for in, want := range cases {
		got, err := ParseRate(in)
		if err != nil || math.Abs(got-want) > 1e-9 {
			t.Errorf("ParseRate(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"100", "Mbps", "-1Mbps", "0bps"} {
		if _, err := ParseRate(bad); err == nil {
			t.Errorf("ParseRate(%q) accepted", bad)
		}
	}
}

func TestParseDelay(t *testing.T) {
	cases := map[string]float64{
		"0.5ms": 0.5e-3,
		"10us":  10e-6,
		"1s":    1,
		"0s":    0,
	}
	for in, want := range cases {
		got, err := ParseDelay(in)
		if err != nil || math.Abs(got-want) > 1e-15 {
			t.Errorf("ParseDelay(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"5", "ms", "-1ms"} {
		if _, err := ParseDelay(bad); err == nil {
			t.Errorf("ParseDelay(%q) accepted", bad)
		}
	}
}

func TestFormatters(t *testing.T) {
	if FormatRate(2.5e9) != "2500Mbps" { // exact in Mbps, not in Gbps
		t.Errorf("FormatRate(2.5e9) = %q", FormatRate(2.5e9))
	}
	if FormatRate(100e6) != "100Mbps" {
		t.Errorf("FormatRate(100e6) = %q", FormatRate(100e6))
	}
	if FormatRate(40e9) != "40Gbps" {
		t.Errorf("FormatRate(40e9) = %q", FormatRate(40e9))
	}
	if FormatDelay(0.5e-3) != "500us" { // sub-millisecond renders in us
		t.Errorf("FormatDelay = %q", FormatDelay(0.5e-3))
	}
	if FormatDelay(3e-3) != "3ms" {
		t.Errorf("FormatDelay(3ms) = %q", FormatDelay(3e-3))
	}
	if FormatDelay(10e-6) != "10us" {
		t.Errorf("FormatDelay = %q", FormatDelay(10e-6))
	}
	if FormatDelay(0) != "0s" {
		t.Errorf("FormatDelay(0) = %q", FormatDelay(0))
	}
	// Round trips through parse.
	for _, v := range []float64{1e3, 64e3, 1.5e6, 2.5e9} {
		s := FormatRate(v)
		got, err := ParseRate(s)
		if err != nil || math.Abs(got-v) > 1e-9 {
			t.Errorf("rate round trip %v -> %q -> %v (%v)", v, s, got, err)
		}
	}
}
