package netdesc

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the network-description parser with arbitrary input:
// it must never panic, and anything it accepts must re-serialize and parse
// back to the same shape.
func FuzzRead(f *testing.F) {
	f.Add("network demo\nrouter r0 as=1\nhost h0\nlink h0 r0 bw=100Mbps lat=0.5ms\n")
	f.Add("# comment only\n")
	f.Add("router a\nrouter b\nlink a b bw=1Gbps lat=1ms\nlink a b bw=1Gbps lat=2ms\n")
	f.Add("host x as=99 site=y\n")
	f.Add("link a b bw= lat=\n")
	f.Fuzz(func(t *testing.T, in string) {
		nw, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, nw); err != nil {
			t.Fatalf("accepted network failed to serialize: %v", err)
		}
		// Names containing whitespace would break the format; generated
		// names never do, but fuzz input can — skip those.
		for _, n := range nw.Nodes {
			if strings.ContainsAny(n.Name, " \t") || strings.ContainsAny(n.Site, " \t") {
				return
			}
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v\nserialized:\n%s", err, buf.String())
		}
		if back.NumNodes() != nw.NumNodes() || len(back.Links) != len(nw.Links) {
			t.Fatalf("round trip changed shape")
		}
	})
}
