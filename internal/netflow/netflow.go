// Package netflow implements the Cisco-NetFlow-like traffic accounting the
// paper builds into every emulated router (§3.3): per-router flow records
// with packet counts, durations and byte volumes, dump-file serialization,
// and the aggregation queries the PROFILE mapping consumes — per-link and
// per-node traffic totals plus bucketed per-node load series.
//
// As in MaSSF, bandwidth is measured in packets rather than bytes, "since
// the real load in the emulator depends on the number of packets it
// processes".
package netflow

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// Record is one (router, flow) accounting entry.
type Record struct {
	// Node is the router/host that observed the flow.
	Node int
	// FlowID identifies the flow within the workload.
	FlowID int
	// Src and Dst are the flow's endpoints.
	Src, Dst int
	// InLink is the link the traffic arrived on (-1 at the source host).
	InLink int
	// Packets and Bytes observed at this node for this flow.
	Packets int64
	Bytes   int64
	// First and Last are the observation window in virtual seconds.
	First, Last float64
}

// Collector accumulates flow records during an emulation run. One collector
// services all engines; records are keyed by (node, flow, inlink) and nodes
// are owned by exactly one engine, so updates are data-race-free by
// construction.
type Collector struct {
	// BucketWidth is the granularity of the per-node load series (the
	// "granularity of the NetFlow" tuning knob; default 2s, matching the
	// paper's fine-grained measurement interval).
	BucketWidth float64
	// perNode[n] maps flow key to the record index in records[n].
	perNode []map[flowKey]int
	records [][]Record
	// series is the bucketed per-node kernel-event load.
	series *metrics.Series
}

type flowKey struct {
	flow   int
	inLink int
}

// NewCollector creates a collector for numNodes nodes covering duration
// seconds at the given bucket width.
func NewCollector(numNodes int, duration, bucketWidth float64) *Collector {
	if bucketWidth <= 0 {
		bucketWidth = 2
	}
	buckets := int(duration/bucketWidth) + 1
	if buckets < 1 {
		buckets = 1
	}
	c := &Collector{
		BucketWidth: bucketWidth,
		perNode:     make([]map[flowKey]int, numNodes),
		records:     make([][]Record, numNodes),
		series:      metrics.NewSeries(bucketWidth, numNodes, buckets),
	}
	for n := range c.perNode {
		c.perNode[n] = make(map[flowKey]int)
	}
	return c
}

// Observe accounts packets of a flow passing through node at time t having
// arrived over inLink (-1 at the flow source).
func (c *Collector) Observe(node, flowID, src, dst, inLink int, packets, bytes int64, t float64) {
	key := flowKey{flow: flowID, inLink: inLink}
	idx, ok := c.perNode[node][key]
	if !ok {
		idx = len(c.records[node])
		c.records[node] = append(c.records[node], Record{
			Node: node, FlowID: flowID, Src: src, Dst: dst, InLink: inLink,
			First: t, Last: t,
		})
		c.perNode[node][key] = idx
	}
	r := &c.records[node][idx]
	r.Packets += packets
	r.Bytes += bytes
	if t < r.First {
		r.First = t
	}
	if t > r.Last {
		r.Last = t
	}
	c.series.Add(t, node, float64(packets))
}

// Clone returns a deep copy of the collector. The emulator checkpoints its
// profiling state with it so a crash recovery can roll accounting back to
// the last barrier without double-counting replayed windows.
func (c *Collector) Clone() *Collector {
	if c == nil {
		return nil
	}
	cp := &Collector{
		BucketWidth: c.BucketWidth,
		perNode:     make([]map[flowKey]int, len(c.perNode)),
		records:     make([][]Record, len(c.records)),
		series:      c.series.Clone(),
	}
	for n := range c.perNode {
		m := make(map[flowKey]int, len(c.perNode[n]))
		for k, v := range c.perNode[n] {
			m[k] = v
		}
		cp.perNode[n] = m
		cp.records[n] = append([]Record(nil), c.records[n]...)
	}
	return cp
}

// Records returns all accumulated records in deterministic order (node, then
// insertion order).
func (c *Collector) Records() []Record {
	var out []Record
	for n := range c.records {
		out = append(out, c.records[n]...)
	}
	return out
}

// Series returns the bucketed per-node kernel-event load collected so far.
func (c *Collector) Series() *metrics.Series { return c.series }

// Summary is the aggregated view of a profiling run that the PROFILE mapping
// consumes.
type Summary struct {
	// LinkPackets[l] is the total packets carried by link l (both
	// directions).
	LinkPackets map[int]int64
	// NodePackets[n] is the total kernel-event load (packets processed) of
	// node n.
	NodePackets []int64
	// NodeSeries is the bucketed per-node load.
	NodeSeries *metrics.Series
}

// Summarize aggregates the collector into per-link and per-node totals.
func (c *Collector) Summarize() *Summary {
	s := &Summary{
		LinkPackets: make(map[int]int64),
		NodePackets: make([]int64, len(c.records)),
		NodeSeries:  c.series,
	}
	for n := range c.records {
		for _, r := range c.records[n] {
			s.NodePackets[n] += r.Packets
			if r.InLink >= 0 {
				s.LinkPackets[r.InLink] += r.Packets
			}
		}
	}
	return s
}

// ---- Dump-file serialization ----
//
// The dump format is one record per line:
//
//	node flow src dst inlink packets bytes first last
//
// matching the paper's description of per-router local dump files that are
// parsed offline to compute aggregated traffic.

// WriteDump serializes records to w.
func WriteDump(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# node flow src dst inlink packets bytes first last"); err != nil {
		return err
	}
	for _, r := range records {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %d %d %d %.17g %.17g\n",
			r.Node, r.FlowID, r.Src, r.Dst, r.InLink, r.Packets, r.Bytes, r.First, r.Last); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDump parses a dump produced by WriteDump.
func ReadDump(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var out []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 9 {
			return nil, fmt.Errorf("netflow: line %d: %d fields, want 9", lineNo, len(f))
		}
		var rec Record
		var err error
		ints := []*int{&rec.Node, &rec.FlowID, &rec.Src, &rec.Dst, &rec.InLink}
		for i, p := range ints {
			*p, err = strconv.Atoi(f[i])
			if err != nil {
				return nil, fmt.Errorf("netflow: line %d field %d: %v", lineNo, i+1, err)
			}
		}
		if rec.Packets, err = strconv.ParseInt(f[5], 10, 64); err != nil {
			return nil, fmt.Errorf("netflow: line %d packets: %v", lineNo, err)
		}
		if rec.Bytes, err = strconv.ParseInt(f[6], 10, 64); err != nil {
			return nil, fmt.Errorf("netflow: line %d bytes: %v", lineNo, err)
		}
		if rec.First, err = strconv.ParseFloat(f[7], 64); err != nil {
			return nil, fmt.Errorf("netflow: line %d first: %v", lineNo, err)
		}
		if rec.Last, err = strconv.ParseFloat(f[8], 64); err != nil {
			return nil, fmt.Errorf("netflow: line %d last: %v", lineNo, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SummarizeRecords aggregates parsed dump records (the offline path: parse
// dump files, then compute aggregated traffic). numNodes must cover every
// node ID in records; the series is rebuilt by spreading each record's
// packets uniformly over its [First, Last] span at the given bucket width —
// the granularity information a NetFlow dump retains.
func SummarizeRecords(records []Record, numNodes int, duration, bucketWidth float64) *Summary {
	if bucketWidth <= 0 {
		bucketWidth = 2
	}
	buckets := int(duration/bucketWidth) + 1
	if buckets < 1 {
		buckets = 1
	}
	s := &Summary{
		LinkPackets: make(map[int]int64),
		NodePackets: make([]int64, numNodes),
		NodeSeries:  metrics.NewSeries(bucketWidth, numNodes, buckets),
	}
	for _, r := range records {
		if r.Node < 0 || r.Node >= numNodes {
			continue
		}
		s.NodePackets[r.Node] += r.Packets
		if r.InLink >= 0 {
			s.LinkPackets[r.InLink] += r.Packets
		}
		span := r.Last - r.First
		if span <= 0 {
			s.NodeSeries.Add(r.First, r.Node, float64(r.Packets))
			continue
		}
		// Spread uniformly across the buckets the record covers.
		startB := int(r.First / bucketWidth)
		endB := int(r.Last / bucketWidth)
		if startB < 0 {
			startB = 0
		}
		if endB >= buckets {
			endB = buckets - 1
		}
		n := endB - startB + 1
		per := float64(r.Packets) / float64(n)
		for b := startB; b <= endB; b++ {
			s.NodeSeries.Add((float64(b)+0.5)*bucketWidth, r.Node, per)
		}
	}
	return s
}

// TopLinks returns the n busiest links by packet count, descending
// (deterministic tie-break on link ID).
func (s *Summary) TopLinks(n int) []int {
	type lp struct {
		link    int
		packets int64
	}
	all := make([]lp, 0, len(s.LinkPackets))
	for l, p := range s.LinkPackets {
		all = append(all, lp{l, p})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].packets != all[j].packets {
			return all[i].packets > all[j].packets
		}
		return all[i].link < all[j].link
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].link
	}
	return out
}
