package netflow

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadDump: the NetFlow dump parser must never panic; accepted records
// must round-trip through WriteDump.
func FuzzReadDump(f *testing.F) {
	f.Add("# header\n0 1 2 3 4 5 6 7.5 8.5\n")
	f.Add("0 0 0 0 -1 10 15000 0 0\n")
	f.Add("\n\n# only comments\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ReadDump(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDump(&buf, recs); err != nil {
			t.Fatalf("serialize: %v", err)
		}
		back, err := ReadDump(&buf)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip changed record count")
		}
		for i := range recs {
			if back[i] != recs[i] {
				t.Fatalf("record %d changed: %+v -> %+v", i, recs[i], back[i])
			}
		}
	})
}
