package netflow

import (
	"bytes"
	"strings"
	"testing"
)

func TestCollectorAggregation(t *testing.T) {
	c := NewCollector(5, 100, 2)
	// Flow 0 passes through nodes 1 (from link -1, source) and 2 (link 7).
	c.Observe(1, 0, 1, 4, -1, 10, 15000, 1.0)
	c.Observe(2, 0, 1, 4, 7, 10, 15000, 1.5)
	c.Observe(2, 0, 1, 4, 7, 5, 7500, 3.5) // same flow again, later
	// Flow 1 through node 2 on link 9.
	c.Observe(2, 1, 3, 4, 9, 20, 30000, 2.0)

	recs := c.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3 (merged per node+flow+inlink)", len(recs))
	}
	s := c.Summarize()
	if s.NodePackets[1] != 10 || s.NodePackets[2] != 35 {
		t.Errorf("NodePackets = %v", s.NodePackets)
	}
	if s.LinkPackets[7] != 15 || s.LinkPackets[9] != 20 {
		t.Errorf("LinkPackets = %v", s.LinkPackets)
	}
	if _, ok := s.LinkPackets[-1]; ok {
		t.Error("source observations must not count as link traffic")
	}
	// Record merging tracked first/last.
	for _, r := range recs {
		if r.Node == 2 && r.FlowID == 0 {
			if r.First != 1.5 || r.Last != 3.5 {
				t.Errorf("first/last = %v/%v, want 1.5/3.5", r.First, r.Last)
			}
			if r.Packets != 15 {
				t.Errorf("merged packets = %d, want 15", r.Packets)
			}
		}
	}
	// Series bucketed at 2s: node 2 has 10 packets in bucket 0 (t=1.5),
	// 20 in bucket 1 (t=2.0), 5 in bucket 1 (t=3.5).
	if c.Series().Loads[0][2] != 10 {
		t.Errorf("series[0][2] = %v, want 10", c.Series().Loads[0][2])
	}
	if c.Series().Loads[1][2] != 25 {
		t.Errorf("series[1][2] = %v, want 25", c.Series().Loads[1][2])
	}
}

func TestDumpRoundTrip(t *testing.T) {
	c := NewCollector(4, 50, 2)
	c.Observe(0, 0, 0, 3, -1, 7, 10500, 0.5)
	c.Observe(1, 0, 0, 3, 2, 7, 10500, 0.7)
	c.Observe(2, 1, 2, 3, 4, 9, 13500, 1.2)
	recs := c.Records()

	var buf bytes.Buffer
	if err := WriteDump(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip records = %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d changed: %+v -> %+v", i, recs[i], got[i])
		}
	}
}

func TestReadDumpErrors(t *testing.T) {
	cases := []string{
		"1 2 3\n",             // wrong field count
		"a 0 0 0 0 0 0 0 0\n", // bad int
		"0 0 0 0 0 x 0 0 0\n", // bad packets
		"0 0 0 0 0 0 y 0 0\n", // bad bytes
		"0 0 0 0 0 0 0 z 0\n", // bad first
		"0 0 0 0 0 0 0 0 w\n", // bad last
	}
	for i, in := range cases {
		if _, err := ReadDump(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Comments and blank lines are fine.
	recs, err := ReadDump(strings.NewReader("# header\n\n0 1 2 3 4 5 6 7.5 8.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Packets != 5 || recs[0].First != 7.5 {
		t.Errorf("parsed %+v", recs)
	}
}

func TestSummarizeRecords(t *testing.T) {
	recs := []Record{
		{Node: 0, FlowID: 0, InLink: -1, Packets: 10, First: 0, Last: 0},
		{Node: 1, FlowID: 0, InLink: 3, Packets: 10, First: 2, Last: 6},
		{Node: 2, FlowID: 1, InLink: 4, Packets: 8, First: 5, Last: 5},
	}
	s := SummarizeRecords(recs, 3, 10, 2)
	if s.NodePackets[0] != 10 || s.NodePackets[1] != 10 || s.NodePackets[2] != 8 {
		t.Errorf("NodePackets = %v", s.NodePackets)
	}
	if s.LinkPackets[3] != 10 || s.LinkPackets[4] != 8 {
		t.Errorf("LinkPackets = %v", s.LinkPackets)
	}
	// Record spanning [2,6] spreads 10 packets over buckets 1..3.
	total := 0.0
	for b := 1; b <= 3; b++ {
		total += s.NodeSeries.Loads[b][1]
	}
	if total < 9.9 || total > 10.1 {
		t.Errorf("spread packets = %v, want 10", total)
	}
	// Out-of-range node IDs are skipped, not a panic.
	s2 := SummarizeRecords([]Record{{Node: 99, Packets: 5}}, 3, 10, 2)
	if s2.NodePackets[0] != 0 {
		t.Error("out-of-range record affected totals")
	}
}

func TestTopLinks(t *testing.T) {
	s := &Summary{LinkPackets: map[int]int64{1: 100, 2: 300, 3: 200, 4: 300}}
	top := s.TopLinks(3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	// 300-packet links first (tie broken by ID), then 200.
	if top[0] != 2 || top[1] != 4 || top[2] != 3 {
		t.Errorf("top = %v, want [2 4 3]", top)
	}
	if got := s.TopLinks(99); len(got) != 4 {
		t.Errorf("TopLinks(99) = %v, want all 4", got)
	}
}

func TestCollectorDefaultBucketWidth(t *testing.T) {
	c := NewCollector(1, 10, 0)
	if c.BucketWidth != 2 {
		t.Errorf("default bucket width = %v, want 2", c.BucketWidth)
	}
}
