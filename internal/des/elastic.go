package des

import "fmt"

// Checkpoint export/import — the kernel face of elastic membership. A
// coordinator reseating workers onto a changed engine set pulls every pending
// event out of a barrier checkpoint (Export), routes each to its new owner,
// and rebuilds a synthetic checkpoint per worker (BuildCheckpoint) that
// Restore replays exactly as it would the original: events are emitted in the
// same LP-major captured order Restore pushes them, so per-LP sequence
// numbers — and therefore every later tie-break — come out identical to a
// restore of the original checkpoint under the same remap.

// Export returns the checkpoint's pending events as barrier-transfer records,
// LP-major in each LP's captured (Time, seq) order — precisely the order
// Restore would push them. Dst is the owning LP at capture; Src/SrcIdx are
// zeroed (a checkpointed event's merge key has already been consumed).
func (cp *Checkpoint) Export() []Sent {
	out := make([]Sent, 0, cp.PendingEvents())
	for lp, evs := range cp.events {
		for _, ev := range evs {
			out = append(out, Sent{Time: ev.Time, Dst: lp, Data: ev.Data})
		}
	}
	return out
}

// BuildCheckpoint assembles a synthetic checkpoint at virtual time at from
// barrier-transfer records. Events append to their Dst queue in the given
// order WITHOUT re-sorting: the caller's order is the restore push order, so
// a coordinator that walks an exported checkpoint in capture order and
// filters per new owner reproduces, per LP, the exact sequence numbering an
// in-process Restore of the original checkpoint would produce.
func BuildCheckpoint(at float64, numLPs int, stats Stats, events []Sent) (*Checkpoint, error) {
	cp := &Checkpoint{Time: at, events: make([][]Event, numLPs)}
	for _, sv := range events {
		if sv.Dst < 0 || sv.Dst >= numLPs {
			return nil, fmt.Errorf("des: checkpoint event at t=%g for invalid LP %d of %d", sv.Time, sv.Dst, numLPs)
		}
		cp.events[sv.Dst] = append(cp.events[sv.Dst], Event{Time: sv.Time, LP: sv.Dst, Data: sv.Data})
	}
	cp.stats = stats
	cp.stats.Events = append([]int64(nil), stats.Events...)
	cp.stats.Charges = append([]int64(nil), stats.Charges...)
	cp.stats.RemoteSends = append([]int64(nil), stats.RemoteSends...)
	if len(cp.stats.Events) != numLPs || len(cp.stats.Charges) != numLPs || len(cp.stats.RemoteSends) != numLPs {
		return nil, fmt.Errorf("des: checkpoint stats cover %d LPs, want %d", len(cp.stats.Events), numLPs)
	}
	return cp, nil
}
