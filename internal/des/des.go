// Package des implements the conservative parallel discrete-event simulation
// kernel underneath the emulator — the role MaSSF's SSF kernel plays in the
// paper.
//
// The kernel runs one logical process (LP) per simulation-engine node.
// Execution is window-synchronized: all LPs process their local events up to
// a common horizon T+L, where the lookahead L is the minimum latency of any
// link crossing the partition, then exchange the events destined for other
// LPs at a barrier. Because every cross-LP event is delayed by at least L,
// events received at the barrier are always timestamped at or beyond the next
// window, so no LP ever sees an event in its past (the classic synchronous
// conservative protocol).
//
// This is exactly why the paper's first partitioning objective — maximize the
// link latency cut by the partition — matters: a larger lookahead means wider
// windows, fewer barriers, and more concurrency (§2.2.3).
//
// LPs run on real goroutines, so wall-clock benchmarks exercise true
// parallelism, while deterministic per-window statistics feed the engine cost
// model that reproduces the paper's emulation-time metrics.
//
// Hot-path layout. Pending events live in structure-of-arrays heaps (parallel
// time/seq/payload slices), so heap sifts compare raw float64/int64 arrays
// without chasing payload pointers. Cross-LP sends accumulate in pooled
// per-destination batches — the in-process mirror of the dist protocol's
// per-window framing — and are re-sequenced at the barrier with a reused
// merge scratch, so the steady-state barrier allocates nothing. See
// DESIGN.md §14 for the layout and the determinism argument.
package des

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Event is a timestamped message destined for an LP.
type Event struct {
	// Time is the virtual time at which the event fires (seconds).
	Time float64
	// LP is the destination logical process.
	LP int
	// Data is the opaque payload interpreted by the Handler.
	Data any

	// seq orders simultaneous events deterministically. Locally scheduled
	// events get the destination LP's next sequence number; events arriving
	// over the barrier are re-sequenced in a deterministic merge order.
	seq int64
}

// Handler processes one event on behalf of LP lp at virtual time t. It may
// schedule further events — local or remote — through the Scheduler, and
// should call Scheduler.Charge to account the kernel-event load the event
// represents (the emulator charges one kernel event per packet, §4.1.1).
type Handler func(lp int, t float64, data any, s *Scheduler)

// WindowObserver is called once per executed window, after the barrier, on a
// single goroutine. charges[lp] is the kernel-event load LP lp accrued during
// [start,end); remote[lp] is the number of events it sent to other LPs.
//
// Both slices are recycled buffers: the kernel overwrites them in place at
// the next barrier. An observer must fully consume (or copy) them before
// returning and must not retain a reference — holding one past the return is
// a data race in parallel runs, not just stale data. TestObserverBuffersAreRecycled
// enforces this contract under the race detector.
type WindowObserver func(start, end float64, charges, remote []int64)

// Config configures a Kernel.
type Config struct {
	// NumLPs is the number of logical processes (simulation-engine nodes).
	NumLPs int
	// Lookahead is the synchronization window width L in virtual seconds.
	// It must be positive; cross-LP events must be scheduled at least L in
	// the future.
	Lookahead float64
	// Handler processes events. Required.
	Handler Handler
	// Observer, if non-nil, receives per-window load statistics.
	Observer WindowObserver
	// Recorder, if non-nil, receives the kernel's observability stream: a
	// RunMeta per Run (segment), a Window record per executed window with
	// per-LP counters (handler invocations, charges, remote sends, queue
	// occupancy, barrier wait), delivered on the coordinating goroutine
	// after the barrier. A nil Recorder costs nothing: the instrumentation
	// sites are guarded and allocate only when recording.
	Recorder obs.Recorder
	// OnBarrier, if non-nil, is called after each window's barrier — after
	// handler errors are checked, outboxes merged, and the Observer has run —
	// on the coordinating goroutine. No handler executes concurrently, so the
	// hook may safely take a Checkpoint. Returning a non-nil error stops the
	// run: Run returns that error together with the statistics accumulated so
	// far (including the window just completed), which is how an engine crash
	// (LPFailure) surfaces without corrupting state.
	OnBarrier func(windowStart, windowEnd float64) error
	// EndTime, if positive, stops the run once the next event would fire at
	// or beyond this virtual time.
	EndTime float64
	// Sequential forces single-goroutine execution (useful to isolate
	// determinism bugs; results must be identical either way).
	Sequential bool
	// ForceParallel makes Run use the persistent-worker path even on a
	// single-CPU machine, where the kernel otherwise degrades to the
	// sequential loop — a test knob so the worker machinery stays exercised
	// (including under the race detector) regardless of the host. Ignored
	// when Sequential is set.
	ForceParallel bool
	// ReferenceBarrier switches the barrier to the pre-batching merge: tag
	// every cross-LP event individually and sort the whole window globally by
	// (time, source LP, send order) before insertion. It is a testing oracle —
	// slower, allocates per barrier — kept so regression tests can prove the
	// default per-destination merge is byte-identical to the historical order.
	ReferenceBarrier bool
}

// Stats summarizes a completed run.
type Stats struct {
	// VirtualEnd is the virtual time of the last executed window's end.
	VirtualEnd float64
	// Windows is the number of executed (non-empty) windows, i.e. barriers.
	Windows int64
	// SkippedTime is the idle virtual time jumped over between busy windows.
	SkippedTime float64
	// Events is the number of handler invocations per LP.
	Events []int64
	// Charges is the accumulated kernel-event load per LP (via Charge).
	Charges []int64
	// RemoteSends is the number of cross-LP events sent per LP.
	RemoteSends []int64
	// WallTime is the real time the run took.
	WallTime time.Duration
}

// TotalCharges sums the per-LP kernel-event loads.
func (s *Stats) TotalCharges() int64 {
	var t int64
	for _, c := range s.Charges {
		t += c
	}
	return t
}

// batch collects one window's sends from one source LP to one destination LP
// in structure-of-arrays form — the in-process counterpart of the dist
// protocol's per-window event frames. Batches are sync.Pool-recycled: a
// scheduler takes one on the first send to a destination, the barrier (or
// Stepper.Step) consumes and releases it, and the backing arrays are reused
// window after window, so the steady-state send path allocates nothing.
type batch struct {
	// Dst is the destination LP, Src the sending LP.
	Dst, Src int
	// Times[i] is the i-th event's firing time; SrcIdx[i] its send order
	// within the source LP's window (the barrier merge tiebreak); Datas[i]
	// its payload.
	Times  []float64
	SrcIdx []int32
	Datas  []any
}

var batchPool = sync.Pool{New: func() any { return new(batch) }}

func getBatch(src, dst int) *batch {
	b := batchPool.Get().(*batch)
	b.Src, b.Dst = src, dst
	return b
}

// putBatch clears payload references (the queues own them now) and recycles
// the batch's backing arrays.
func putBatch(b *batch) {
	for i := range b.Datas {
		b.Datas[i] = nil
	}
	b.Times = b.Times[:0]
	b.SrcIdx = b.SrcIdx[:0]
	b.Datas = b.Datas[:0]
	batchPool.Put(b)
}

// Scheduler is the per-LP interface handlers use to schedule events and
// account load. It is only valid inside a Handler invocation.
type Scheduler struct {
	k         *Kernel
	lp        int
	now       float64
	windowEnd float64
	charges   int64
	remote    int64
	// batches holds this window's outgoing per-destination batches in
	// first-touch order; batchAt indexes them by destination LP. Both are
	// drained at the barrier.
	batches []*batch
	batchAt []*batch
	err     error
}

// Now returns the virtual time of the event being handled.
func (s *Scheduler) Now() float64 { return s.now }

// LP returns the logical process the current event executes on.
func (s *Scheduler) LP() int { return s.lp }

// Charge accounts n kernel events (packets) to the current LP in the current
// window.
func (s *Scheduler) Charge(n int64) { s.charges += n }

// Schedule enqueues an event for LP lp at virtual time t. Local events
// (lp == current) may be scheduled at any t >= Now(). Remote events must obey
// the lookahead: t >= current window end. Violations poison the run with an
// error rather than corrupting causality.
func (s *Scheduler) Schedule(lp int, t float64, data any) {
	if t < s.now {
		s.fail(fmt.Errorf("des: LP %d scheduled event in the past: t=%g < now=%g", s.lp, t, s.now))
		return
	}
	if lp == s.lp {
		s.k.pushLocal(lp, t, data)
		return
	}
	if lp < 0 || lp >= s.k.cfg.NumLPs {
		s.fail(fmt.Errorf("des: LP %d scheduled event for invalid LP %d", s.lp, lp))
		return
	}
	if t < s.windowEnd-1e-12 {
		s.fail(fmt.Errorf("des: LP %d violated lookahead: remote event at t=%g before window end %g", s.lp, t, s.windowEnd))
		return
	}
	b := s.batchAt[lp]
	if b == nil {
		b = getBatch(s.lp, lp)
		s.batchAt[lp] = b
		s.batches = append(s.batches, b)
	}
	b.Times = append(b.Times, t)
	b.SrcIdx = append(b.SrcIdx, int32(s.remote))
	b.Datas = append(b.Datas, data)
	s.remote++
}

func (s *Scheduler) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Fail poisons the run with err (first error wins): the current window stops
// processing further events on this LP and the kernel surfaces the error at
// the barrier. Handlers use it for unrecoverable payload or protocol errors —
// the same mechanism lookahead violations use — instead of panicking.
func (s *Scheduler) Fail(err error) { s.fail(err) }

// Kernel is the parallel event engine. Create with New, seed initial events
// with Schedule, then call Run once. After a Restore the kernel may be Run
// again, resuming from the restored checkpoint.
type Kernel struct {
	cfg    Config
	queues []eventHeap
	seqs   []int64

	// base carries statistics across Restore/Run cycles: a resumed Run
	// continues accumulating from the restored checkpoint's counters.
	base *Stats
	// runStats points at the live statistics during Run so Checkpoint can
	// snapshot them at a barrier.
	runStats *Stats
	ran      bool

	// Barrier merge scratch, reused across windows: batches bucketed by
	// destination, the list of destinations with traffic, and the
	// structure-of-arrays sort area. Zero steady-state allocations.
	perDst  [][]*batch
	dstList []int
	merge   mergeScratch

	// Recording scratch, allocated once per Run only when cfg.Recorder is
	// set: per-window per-LP counters reused across windows so the nil-
	// recorder path stays allocation-free and the recording path allocates
	// nothing per event.
	recording bool
	winEvents []int64
	winQueue  []int64
	winBusy   []float64
	winWait   []float64
}

// New validates cfg and returns a kernel ready for initial event injection.
func New(cfg Config) (*Kernel, error) {
	if cfg.NumLPs < 1 {
		return nil, fmt.Errorf("des: NumLPs = %d, must be >= 1", cfg.NumLPs)
	}
	if cfg.Lookahead <= 0 {
		return nil, fmt.Errorf("des: Lookahead = %g, must be > 0", cfg.Lookahead)
	}
	if cfg.Handler == nil {
		return nil, fmt.Errorf("des: Handler is required")
	}
	return &Kernel{
		cfg:    cfg,
		queues: make([]eventHeap, cfg.NumLPs),
		seqs:   make([]int64, cfg.NumLPs),
	}, nil
}

// Schedule inserts an initial event before Run (not safe during Run; use the
// Scheduler inside handlers there).
func (k *Kernel) Schedule(lp int, t float64, data any) error {
	if lp < 0 || lp >= k.cfg.NumLPs {
		return fmt.Errorf("des: initial event for invalid LP %d", lp)
	}
	if t < 0 {
		return fmt.Errorf("des: initial event at negative time %g", t)
	}
	k.pushLocal(lp, t, data)
	return nil
}

func (k *Kernel) pushLocal(lp int, t float64, data any) {
	seq := k.seqs[lp]
	k.seqs[lp]++
	k.queues[lp].push(t, seq, data)
}

// newScheduler builds an LP's scheduler with its per-destination batch index
// preallocated (one slot per possible destination).
func (k *Kernel) newScheduler(lp int) *Scheduler {
	return &Scheduler{k: k, lp: lp, batchAt: make([]*batch, k.cfg.NumLPs)}
}

// Run executes the simulation to completion (or EndTime) and returns
// statistics. It may be called once per New or Restore. When resuming from a
// checkpoint, the returned statistics continue from the checkpoint's counters
// (WallTime likewise accumulates across segments).
func (k *Kernel) Run() (*Stats, error) {
	if k.ran {
		return nil, fmt.Errorf("des: Run called again without Restore")
	}
	k.ran = true
	n := k.cfg.NumLPs
	L := k.cfg.Lookahead
	stats := &Stats{
		Events:      make([]int64, n),
		Charges:     make([]int64, n),
		RemoteSends: make([]int64, n),
	}
	baseWall := time.Duration(0)
	if k.base != nil {
		copy(stats.Events, k.base.Events)
		copy(stats.Charges, k.base.Charges)
		copy(stats.RemoteSends, k.base.RemoteSends)
		stats.Windows = k.base.Windows
		stats.SkippedTime = k.base.SkippedTime
		stats.VirtualEnd = k.base.VirtualEnd
		baseWall = k.base.WallTime
	}
	k.runStats = stats
	defer func() { k.runStats = nil }()
	start := time.Now()

	scheds := make([]*Scheduler, n)
	for lp := range scheds {
		scheds[lp] = k.newScheduler(lp)
	}
	winCharges := make([]int64, n)
	winRemote := make([]int64, n)

	rec := k.cfg.Recorder
	k.recording = rec != nil
	if k.recording {
		k.winEvents = make([]int64, n)
		k.winQueue = make([]int64, n)
		k.winBusy = make([]float64, n)
		k.winWait = make([]float64, n)
		rec.RecordRun(obs.RunMeta{LPs: n, Lookahead: L, Resumed: k.base != nil})
	}

	// Parallel runs use persistent per-LP workers instead of spawning n
	// goroutines every window: the coordinator publishes the window bounds,
	// kicks each worker through its channel, and collects n completions. The
	// channel send/receive pairs give the necessary happens-before edges for
	// the shared wEnd and the workers' writes into stats.
	//
	// On a single-CPU machine (or with one LP) the workers would only add
	// context switches, so the kernel degrades to the sequential window loop —
	// safe because parallel and sequential execution are byte-identical by
	// construction.
	parallel := !k.cfg.Sequential && n > 1 &&
		(runtime.GOMAXPROCS(0) > 1 || k.cfg.ForceParallel)
	var (
		wEnd    float64
		starts  []chan struct{}
		winDone chan struct{}
	)
	if parallel {
		starts = make([]chan struct{}, n)
		winDone = make(chan struct{}, n)
		for lp := 0; lp < n; lp++ {
			ch := make(chan struct{}, 1)
			starts[lp] = ch
			go func(lp int, ch chan struct{}) {
				for range ch {
					k.runWindow(lp, scheds[lp], wEnd, stats)
					winDone <- struct{}{}
				}
			}(lp, ch)
		}
		defer func() {
			for _, ch := range starts {
				close(ch)
			}
		}()
	}

	T := 0.0
	if t, ok := k.minNextTime(); ok {
		T = windowFloor(t, L)
	}

	for {
		next, ok := k.minNextTime()
		if !ok {
			break
		}
		if k.cfg.EndTime > 0 && next >= k.cfg.EndTime {
			break
		}
		// Jump over idle stretches, keeping the window grid aligned.
		if next >= T+L {
			nt := windowFloor(next, L)
			stats.SkippedTime += nt - T
			T = nt
		}
		windowEnd := T + L

		// Process the window on all LPs.
		var winStart time.Time
		if k.recording {
			winStart = time.Now()
		}
		if parallel {
			wEnd = windowEnd
			for _, ch := range starts {
				ch <- struct{}{}
			}
			for i := 0; i < n; i++ {
				<-winDone
			}
		} else {
			for lp := 0; lp < n; lp++ {
				k.runWindow(lp, scheds[lp], windowEnd, stats)
			}
		}

		// Barrier: check errors, merge outboxes deterministically, observe.
		for lp := 0; lp < n; lp++ {
			if err := scheds[lp].err; err != nil {
				return nil, err
			}
		}
		k.mergeOutboxes(scheds)
		if k.cfg.Observer != nil || k.recording {
			for lp := 0; lp < n; lp++ {
				winCharges[lp] = scheds[lp].charges
				winRemote[lp] = scheds[lp].remote
				scheds[lp].charges = 0
				scheds[lp].remote = 0
			}
			if k.cfg.Observer != nil {
				k.cfg.Observer(T, windowEnd, winCharges, winRemote)
			}
			if k.recording {
				// Barrier wait: the gap between an LP finishing its window
				// and the slowest LP releasing the barrier. Only meaningful
				// with real parallelism.
				windowWall := time.Since(winStart).Seconds()
				for lp := 0; lp < n; lp++ {
					k.winQueue[lp] = int64(k.queues[lp].Len())
					if k.cfg.Sequential {
						k.winWait[lp] = 0
					} else if w := windowWall - k.winBusy[lp]; w > 0 {
						k.winWait[lp] = w
					} else {
						k.winWait[lp] = 0
					}
				}
				rec.RecordWindow(obs.Window{
					Index: stats.Windows, Start: T, End: windowEnd,
					Events: k.winEvents, Charges: winCharges, Remote: winRemote,
					Queue: k.winQueue, Wait: k.winWait,
				})
			}
		} else {
			for lp := 0; lp < n; lp++ {
				scheds[lp].charges = 0
				scheds[lp].remote = 0
			}
		}
		stats.Windows++
		stats.VirtualEnd = windowEnd
		if k.cfg.OnBarrier != nil {
			if err := k.cfg.OnBarrier(T, windowEnd); err != nil {
				stats.WallTime = baseWall + time.Since(start)
				return stats, err
			}
		}
		T = windowEnd
	}

	stats.WallTime = baseWall + time.Since(start)
	return stats, nil
}

// runWindow drains one LP's queue up to windowEnd. Only this goroutine
// touches the LP's queue during the window; remote events go to the private
// per-destination batches.
func (k *Kernel) runWindow(lp int, s *Scheduler, windowEnd float64, stats *Stats) {
	var begin time.Time
	preEvents := stats.Events[lp]
	if k.recording {
		begin = time.Now()
	}
	s.windowEnd = windowEnd
	q := &k.queues[lp]
	// Accumulate in locals and write the shared per-LP stats slots once at
	// the end of the window: adjacent LPs' slots share cache lines, so
	// per-event writes would false-share under parallel execution.
	events := int64(0)
	preCharges := s.charges
	for q.Len() > 0 && q.times[0] < windowEnd {
		if k.cfg.EndTime > 0 && q.times[0] >= k.cfg.EndTime {
			break
		}
		t, data := q.pop()
		s.now = t
		events++
		k.cfg.Handler(lp, t, data, s)
		if s.err != nil {
			break
		}
	}
	stats.Events[lp] += events
	stats.Charges[lp] += s.charges - preCharges
	stats.RemoteSends[lp] += s.remote
	if k.recording {
		// Each LP goroutine writes only its own slot, so no synchronization
		// is needed on the shared scratch slices.
		k.winEvents[lp] = stats.Events[lp] - preEvents
		k.winBusy[lp] = time.Since(begin).Seconds()
	}
}

// mergeOutboxes distributes the window's cross-LP batches into destination
// queues. Sequence numbers are per destination LP, so the historical global
// (time, source LP, send order) insertion order can be applied one
// destination at a time: sorting each destination's incoming events by that
// same key is exactly the restriction of the global order to that
// destination, and destinations' queues are independent, so the per-LP seq
// assignment — and therefore every queue — is byte-identical to the
// reference merge (Config.ReferenceBarrier re-enables the historical global
// sort so tests can verify this).
func (k *Kernel) mergeOutboxes(scheds []*Scheduler) {
	if k.cfg.ReferenceBarrier {
		k.mergeOutboxesReference(scheds)
		return
	}
	if k.perDst == nil {
		k.perDst = make([][]*batch, k.cfg.NumLPs)
	}
	// Bucket batches by destination. Iterating sources in ascending LP order
	// keeps each bucket's batches pre-sorted by the source tiebreak.
	for _, s := range scheds {
		for _, b := range s.batches {
			if len(k.perDst[b.Dst]) == 0 {
				k.dstList = append(k.dstList, b.Dst)
			}
			k.perDst[b.Dst] = append(k.perDst[b.Dst], b)
			s.batchAt[b.Dst] = nil
		}
		s.batches = s.batches[:0]
	}
	if len(k.dstList) == 0 {
		return
	}
	sort.Ints(k.dstList)
	m := &k.merge
	for _, dst := range k.dstList {
		bs := k.perDst[dst]
		if len(bs) == 1 && len(bs[0].Times) == 1 {
			// Single incoming event: no ordering decision to make.
			k.pushLocal(dst, bs[0].Times[0], bs[0].Datas[0])
		} else {
			m.reset()
			for _, b := range bs {
				m.appendBatch(b)
			}
			if !m.sorted() {
				sort.Sort(m)
			}
			for i := range m.times {
				k.pushLocal(dst, m.times[i], m.datas[i])
			}
		}
		for _, b := range bs {
			putBatch(b)
		}
		k.perDst[dst] = k.perDst[dst][:0]
	}
	k.dstList = k.dstList[:0]
	m.clearRefs()
}

// mergeOutboxesReference is the pre-batching barrier: tag every event with
// (source, send order), sort the whole window globally by (time, source LP,
// send order), and insert in that one global sequence. Kept as the testing
// oracle the default per-destination merge is verified against.
func (k *Kernel) mergeOutboxesReference(scheds []*Scheduler) {
	type tagged struct {
		time   float64
		dst    int
		src    int
		srcIdx int32
		data   any
	}
	var all []tagged
	for _, s := range scheds {
		for _, b := range s.batches {
			for i := range b.Times {
				all = append(all, tagged{
					time: b.Times[i], dst: b.Dst, src: b.Src,
					srcIdx: b.SrcIdx[i], data: b.Datas[i],
				})
			}
			s.batchAt[b.Dst] = nil
			putBatch(b)
		}
		s.batches = s.batches[:0]
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.time != b.time {
			return a.time < b.time
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.srcIdx < b.srcIdx
	})
	for _, t := range all {
		k.pushLocal(t.dst, t.time, t.data)
	}
}

// mergeScratch is the reusable structure-of-arrays sort area for one
// destination's barrier merge, ordered by (time, source LP, send order).
type mergeScratch struct {
	times []float64
	srcs  []int32
	idxs  []int32
	datas []any
}

func (m *mergeScratch) Len() int { return len(m.times) }

func (m *mergeScratch) Less(i, j int) bool {
	if m.times[i] != m.times[j] {
		return m.times[i] < m.times[j]
	}
	if m.srcs[i] != m.srcs[j] {
		return m.srcs[i] < m.srcs[j]
	}
	return m.idxs[i] < m.idxs[j]
}

func (m *mergeScratch) Swap(i, j int) {
	m.times[i], m.times[j] = m.times[j], m.times[i]
	m.srcs[i], m.srcs[j] = m.srcs[j], m.srcs[i]
	m.idxs[i], m.idxs[j] = m.idxs[j], m.idxs[i]
	m.datas[i], m.datas[j] = m.datas[j], m.datas[i]
}

func (m *mergeScratch) reset() {
	m.times = m.times[:0]
	m.srcs = m.srcs[:0]
	m.idxs = m.idxs[:0]
	m.datas = m.datas[:0]
}

func (m *mergeScratch) appendBatch(b *batch) {
	src := int32(b.Src)
	for i := range b.Times {
		m.times = append(m.times, b.Times[i])
		m.srcs = append(m.srcs, src)
		m.idxs = append(m.idxs, b.SrcIdx[i])
		m.datas = append(m.datas, b.Datas[i])
	}
}

// sorted reports whether the scratch is already in merge order — the common
// case when one source feeds the destination with non-decreasing timestamps,
// letting the barrier skip the sort entirely.
func (m *mergeScratch) sorted() bool {
	for i := 1; i < len(m.times); i++ {
		if m.Less(i, i-1) {
			return false
		}
	}
	return true
}

// clearRefs drops payload references after a barrier (the destination queues
// own them now) without shrinking the backing arrays.
func (m *mergeScratch) clearRefs() {
	d := m.datas[:cap(m.datas)]
	for i := range d {
		d[i] = nil
	}
}

// minNextTime returns the earliest pending event time across all LPs.
func (k *Kernel) minNextTime() (float64, bool) {
	best := math.Inf(1)
	found := false
	for lp := range k.queues {
		if k.queues[lp].Len() > 0 {
			if t := k.queues[lp].times[0]; t < best {
				best = t
				found = true
			}
		}
	}
	return best, found
}

// windowFloor aligns t down to the window grid of width L.
func windowFloor(t, L float64) float64 {
	if t <= 0 {
		return 0
	}
	return math.Floor(t/L) * L
}

// eventHeap is a binary min-heap ordered by (time, seq) in structure-of-
// arrays layout: parallel time/seq/payload slices instead of a slice of
// Event structs. Sift comparisons touch only the flat float64/int64 arrays —
// no payload pointers are loaded until pop returns one — and the hand-rolled
// push/pop avoid container/heap's any-typed interface, which would box every
// event on both push and pop.
type eventHeap struct {
	times []float64
	seqs  []int64
	datas []any
	// Pad each heap header out to two cache lines: the kernel stores one
	// eventHeap per LP in a flat slice, and push/pop rewrite the slice
	// headers, so without padding adjacent LPs' headers would false-share
	// under parallel execution.
	_ [56]byte
}

func (h *eventHeap) Len() int { return len(h.times) }

func (h *eventHeap) less(i, j int) bool {
	if h.times[i] != h.times[j] {
		return h.times[i] < h.times[j]
	}
	return h.seqs[i] < h.seqs[j]
}

func (h *eventHeap) swap(i, j int) {
	h.times[i], h.times[j] = h.times[j], h.times[i]
	h.seqs[i], h.seqs[j] = h.seqs[j], h.seqs[i]
	h.datas[i], h.datas[j] = h.datas[j], h.datas[i]
}

func (h *eventHeap) push(t float64, seq int64, data any) {
	h.times = append(h.times, t)
	h.seqs = append(h.seqs, seq)
	h.datas = append(h.datas, data)
	i := h.Len() - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) pop() (float64, any) {
	t, data := h.times[0], h.datas[0]
	last := h.Len() - 1
	h.swap(0, last)
	h.datas[last] = nil // release the payload reference
	h.times, h.seqs, h.datas = h.times[:last], h.seqs[:last], h.datas[:last]
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		child := left
		if right := left + 1; right < last && h.less(right, left) {
			child = right
		}
		if !h.less(child, i) {
			break
		}
		h.swap(child, i)
		i = child
	}
	return t, data
}

// export copies the heap's contents out as Events for LP lp (heap order, not
// time order — checkpointing sorts afterwards).
func (h *eventHeap) export(lp int) []Event {
	evs := make([]Event, h.Len())
	for i := range evs {
		evs[i] = Event{Time: h.times[i], LP: lp, Data: h.datas[i], seq: h.seqs[i]}
	}
	return evs
}
