// Package des implements the conservative parallel discrete-event simulation
// kernel underneath the emulator — the role MaSSF's SSF kernel plays in the
// paper.
//
// The kernel runs one logical process (LP) per simulation-engine node.
// Execution is window-synchronized: all LPs process their local events up to
// a common horizon T+L, where the lookahead L is the minimum latency of any
// link crossing the partition, then exchange the events destined for other
// LPs at a barrier. Because every cross-LP event is delayed by at least L,
// events received at the barrier are always timestamped at or beyond the next
// window, so no LP ever sees an event in its past (the classic synchronous
// conservative protocol).
//
// This is exactly why the paper's first partitioning objective — maximize the
// link latency cut by the partition — matters: a larger lookahead means wider
// windows, fewer barriers, and more concurrency (§2.2.3).
//
// LPs run on real goroutines, so wall-clock benchmarks exercise true
// parallelism, while deterministic per-window statistics feed the engine cost
// model that reproduces the paper's emulation-time metrics.
package des

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Event is a timestamped message destined for an LP.
type Event struct {
	// Time is the virtual time at which the event fires (seconds).
	Time float64
	// LP is the destination logical process.
	LP int
	// Data is the opaque payload interpreted by the Handler.
	Data any

	// seq orders simultaneous events deterministically. Locally scheduled
	// events get the destination LP's next sequence number; events arriving
	// over the barrier are re-sequenced in a deterministic merge order.
	seq int64
}

// Handler processes one event on behalf of LP lp at virtual time t. It may
// schedule further events — local or remote — through the Scheduler, and
// should call Scheduler.Charge to account the kernel-event load the event
// represents (the emulator charges one kernel event per packet, §4.1.1).
type Handler func(lp int, t float64, data any, s *Scheduler)

// WindowObserver is called once per executed window, after the barrier, on a
// single goroutine. charges[lp] is the kernel-event load LP lp accrued during
// [start,end); remote[lp] is the number of events it sent to other LPs.
// The slices are reused between calls — copy them if retained.
type WindowObserver func(start, end float64, charges, remote []int64)

// Config configures a Kernel.
type Config struct {
	// NumLPs is the number of logical processes (simulation-engine nodes).
	NumLPs int
	// Lookahead is the synchronization window width L in virtual seconds.
	// It must be positive; cross-LP events must be scheduled at least L in
	// the future.
	Lookahead float64
	// Handler processes events. Required.
	Handler Handler
	// Observer, if non-nil, receives per-window load statistics.
	Observer WindowObserver
	// Recorder, if non-nil, receives the kernel's observability stream: a
	// RunMeta per Run (segment), a Window record per executed window with
	// per-LP counters (handler invocations, charges, remote sends, queue
	// occupancy, barrier wait), delivered on the coordinating goroutine
	// after the barrier. A nil Recorder costs nothing: the instrumentation
	// sites are guarded and allocate only when recording.
	Recorder obs.Recorder
	// OnBarrier, if non-nil, is called after each window's barrier — after
	// handler errors are checked, outboxes merged, and the Observer has run —
	// on the coordinating goroutine. No handler executes concurrently, so the
	// hook may safely take a Checkpoint. Returning a non-nil error stops the
	// run: Run returns that error together with the statistics accumulated so
	// far (including the window just completed), which is how an engine crash
	// (LPFailure) surfaces without corrupting state.
	OnBarrier func(windowStart, windowEnd float64) error
	// EndTime, if positive, stops the run once the next event would fire at
	// or beyond this virtual time.
	EndTime float64
	// Sequential forces single-goroutine execution (useful to isolate
	// determinism bugs; results must be identical either way).
	Sequential bool
}

// Stats summarizes a completed run.
type Stats struct {
	// VirtualEnd is the virtual time of the last executed window's end.
	VirtualEnd float64
	// Windows is the number of executed (non-empty) windows, i.e. barriers.
	Windows int64
	// SkippedTime is the idle virtual time jumped over between busy windows.
	SkippedTime float64
	// Events is the number of handler invocations per LP.
	Events []int64
	// Charges is the accumulated kernel-event load per LP (via Charge).
	Charges []int64
	// RemoteSends is the number of cross-LP events sent per LP.
	RemoteSends []int64
	// WallTime is the real time the run took.
	WallTime time.Duration
}

// TotalCharges sums the per-LP kernel-event loads.
func (s *Stats) TotalCharges() int64 {
	var t int64
	for _, c := range s.Charges {
		t += c
	}
	return t
}

// Scheduler is the per-LP interface handlers use to schedule events and
// account load. It is only valid inside a Handler invocation.
type Scheduler struct {
	k         *Kernel
	lp        int
	now       float64
	windowEnd float64
	charges   int64
	remote    int64
	outbox    []Event // events for other LPs, flushed at the barrier
	err       error
}

// Now returns the virtual time of the event being handled.
func (s *Scheduler) Now() float64 { return s.now }

// LP returns the logical process the current event executes on.
func (s *Scheduler) LP() int { return s.lp }

// Charge accounts n kernel events (packets) to the current LP in the current
// window.
func (s *Scheduler) Charge(n int64) { s.charges += n }

// Schedule enqueues an event for LP lp at virtual time t. Local events
// (lp == current) may be scheduled at any t >= Now(). Remote events must obey
// the lookahead: t >= current window end. Violations poison the run with an
// error rather than corrupting causality.
func (s *Scheduler) Schedule(lp int, t float64, data any) {
	if t < s.now {
		s.fail(fmt.Errorf("des: LP %d scheduled event in the past: t=%g < now=%g", s.lp, t, s.now))
		return
	}
	if lp == s.lp {
		s.k.pushLocal(lp, Event{Time: t, LP: lp, Data: data})
		return
	}
	if lp < 0 || lp >= s.k.cfg.NumLPs {
		s.fail(fmt.Errorf("des: LP %d scheduled event for invalid LP %d", s.lp, lp))
		return
	}
	if t < s.windowEnd-1e-12 {
		s.fail(fmt.Errorf("des: LP %d violated lookahead: remote event at t=%g before window end %g", s.lp, t, s.windowEnd))
		return
	}
	s.remote++
	s.outbox = append(s.outbox, Event{Time: t, LP: lp, Data: data})
}

func (s *Scheduler) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Fail poisons the run with err (first error wins): the current window stops
// processing further events on this LP and the kernel surfaces the error at
// the barrier. Handlers use it for unrecoverable payload or protocol errors —
// the same mechanism lookahead violations use — instead of panicking.
func (s *Scheduler) Fail(err error) { s.fail(err) }

// Kernel is the parallel event engine. Create with New, seed initial events
// with Schedule, then call Run once. After a Restore the kernel may be Run
// again, resuming from the restored checkpoint.
type Kernel struct {
	cfg    Config
	queues []eventHeap
	seqs   []int64

	// base carries statistics across Restore/Run cycles: a resumed Run
	// continues accumulating from the restored checkpoint's counters.
	base *Stats
	// runStats points at the live statistics during Run so Checkpoint can
	// snapshot them at a barrier.
	runStats *Stats
	ran      bool

	// Recording scratch, allocated once per Run only when cfg.Recorder is
	// set: per-window per-LP counters reused across windows so the nil-
	// recorder path stays allocation-free and the recording path allocates
	// nothing per event.
	recording bool
	winEvents []int64
	winQueue  []int64
	winBusy   []float64
	winWait   []float64
}

// New validates cfg and returns a kernel ready for initial event injection.
func New(cfg Config) (*Kernel, error) {
	if cfg.NumLPs < 1 {
		return nil, fmt.Errorf("des: NumLPs = %d, must be >= 1", cfg.NumLPs)
	}
	if cfg.Lookahead <= 0 {
		return nil, fmt.Errorf("des: Lookahead = %g, must be > 0", cfg.Lookahead)
	}
	if cfg.Handler == nil {
		return nil, fmt.Errorf("des: Handler is required")
	}
	return &Kernel{
		cfg:    cfg,
		queues: make([]eventHeap, cfg.NumLPs),
		seqs:   make([]int64, cfg.NumLPs),
	}, nil
}

// Schedule inserts an initial event before Run (not safe during Run; use the
// Scheduler inside handlers there).
func (k *Kernel) Schedule(lp int, t float64, data any) error {
	if lp < 0 || lp >= k.cfg.NumLPs {
		return fmt.Errorf("des: initial event for invalid LP %d", lp)
	}
	if t < 0 {
		return fmt.Errorf("des: initial event at negative time %g", t)
	}
	k.pushLocal(lp, Event{Time: t, LP: lp, Data: data})
	return nil
}

func (k *Kernel) pushLocal(lp int, ev Event) {
	ev.seq = k.seqs[lp]
	k.seqs[lp]++
	k.queues[lp].push(ev)
}

// Run executes the simulation to completion (or EndTime) and returns
// statistics. It may be called once per New or Restore. When resuming from a
// checkpoint, the returned statistics continue from the checkpoint's counters
// (WallTime likewise accumulates across segments).
func (k *Kernel) Run() (*Stats, error) {
	if k.ran {
		return nil, fmt.Errorf("des: Run called again without Restore")
	}
	k.ran = true
	n := k.cfg.NumLPs
	L := k.cfg.Lookahead
	stats := &Stats{
		Events:      make([]int64, n),
		Charges:     make([]int64, n),
		RemoteSends: make([]int64, n),
	}
	baseWall := time.Duration(0)
	if k.base != nil {
		copy(stats.Events, k.base.Events)
		copy(stats.Charges, k.base.Charges)
		copy(stats.RemoteSends, k.base.RemoteSends)
		stats.Windows = k.base.Windows
		stats.SkippedTime = k.base.SkippedTime
		stats.VirtualEnd = k.base.VirtualEnd
		baseWall = k.base.WallTime
	}
	k.runStats = stats
	defer func() { k.runStats = nil }()
	start := time.Now()

	scheds := make([]*Scheduler, n)
	for lp := range scheds {
		scheds[lp] = &Scheduler{k: k, lp: lp}
	}
	winCharges := make([]int64, n)
	winRemote := make([]int64, n)

	rec := k.cfg.Recorder
	k.recording = rec != nil
	if k.recording {
		k.winEvents = make([]int64, n)
		k.winQueue = make([]int64, n)
		k.winBusy = make([]float64, n)
		k.winWait = make([]float64, n)
		rec.RecordRun(obs.RunMeta{LPs: n, Lookahead: L, Resumed: k.base != nil})
	}

	T := 0.0
	if t, ok := k.minNextTime(); ok {
		T = windowFloor(t, L)
	}

	for {
		next, ok := k.minNextTime()
		if !ok {
			break
		}
		if k.cfg.EndTime > 0 && next >= k.cfg.EndTime {
			break
		}
		// Jump over idle stretches, keeping the window grid aligned.
		if next >= T+L {
			nt := windowFloor(next, L)
			stats.SkippedTime += nt - T
			T = nt
		}
		windowEnd := T + L

		// Process the window on all LPs.
		var winStart time.Time
		if k.recording {
			winStart = time.Now()
		}
		if k.cfg.Sequential {
			for lp := 0; lp < n; lp++ {
				k.runWindow(lp, scheds[lp], T, windowEnd, stats)
			}
		} else {
			var wg sync.WaitGroup
			for lp := 0; lp < n; lp++ {
				wg.Add(1)
				go func(lp int) {
					defer wg.Done()
					k.runWindow(lp, scheds[lp], T, windowEnd, stats)
				}(lp)
			}
			wg.Wait()
		}

		// Barrier: check errors, merge outboxes deterministically, observe.
		for lp := 0; lp < n; lp++ {
			if err := scheds[lp].err; err != nil {
				return nil, err
			}
		}
		k.mergeOutboxes(scheds)
		if k.cfg.Observer != nil || k.recording {
			for lp := 0; lp < n; lp++ {
				winCharges[lp] = scheds[lp].charges
				winRemote[lp] = scheds[lp].remote
				scheds[lp].charges = 0
				scheds[lp].remote = 0
			}
			if k.cfg.Observer != nil {
				k.cfg.Observer(T, windowEnd, winCharges, winRemote)
			}
			if k.recording {
				// Barrier wait: the gap between an LP finishing its window
				// and the slowest LP releasing the barrier. Only meaningful
				// with real parallelism.
				windowWall := time.Since(winStart).Seconds()
				for lp := 0; lp < n; lp++ {
					k.winQueue[lp] = int64(k.queues[lp].Len())
					if k.cfg.Sequential {
						k.winWait[lp] = 0
					} else if w := windowWall - k.winBusy[lp]; w > 0 {
						k.winWait[lp] = w
					} else {
						k.winWait[lp] = 0
					}
				}
				rec.RecordWindow(obs.Window{
					Index: stats.Windows, Start: T, End: windowEnd,
					Events: k.winEvents, Charges: winCharges, Remote: winRemote,
					Queue: k.winQueue, Wait: k.winWait,
				})
			}
		} else {
			for lp := 0; lp < n; lp++ {
				scheds[lp].charges = 0
				scheds[lp].remote = 0
			}
		}
		stats.Windows++
		stats.VirtualEnd = windowEnd
		if k.cfg.OnBarrier != nil {
			if err := k.cfg.OnBarrier(T, windowEnd); err != nil {
				stats.WallTime = baseWall + time.Since(start)
				return stats, err
			}
		}
		T = windowEnd
	}

	stats.WallTime = baseWall + time.Since(start)
	return stats, nil
}

// runWindow drains one LP's queue up to windowEnd. Only this goroutine
// touches the LP's queue during the window; remote events go to the private
// outbox.
func (k *Kernel) runWindow(lp int, s *Scheduler, T, windowEnd float64, stats *Stats) {
	var begin time.Time
	preEvents := stats.Events[lp]
	if k.recording {
		begin = time.Now()
	}
	s.windowEnd = windowEnd
	q := &k.queues[lp]
	for q.Len() > 0 && (*q)[0].Time < windowEnd {
		if k.cfg.EndTime > 0 && (*q)[0].Time >= k.cfg.EndTime {
			break
		}
		ev := q.pop()
		s.now = ev.Time
		stats.Events[lp]++
		preCharge := s.charges
		k.cfg.Handler(lp, ev.Time, ev.Data, s)
		stats.Charges[lp] += s.charges - preCharge
		if s.err != nil {
			break
		}
	}
	stats.RemoteSends[lp] += s.remote
	if k.recording {
		// Each LP goroutine writes only its own slot, so no synchronization
		// is needed on the shared scratch slices.
		k.winEvents[lp] = stats.Events[lp] - preEvents
		k.winBusy[lp] = time.Since(begin).Seconds()
	}
}

// mergeOutboxes distributes cross-LP events into destination queues in a
// deterministic order (time, then sending LP, then send order), assigning
// fresh local sequence numbers.
func (k *Kernel) mergeOutboxes(scheds []*Scheduler) {
	type tagged struct {
		ev     Event
		src    int
		srcIdx int
	}
	var all []tagged
	for src, s := range scheds {
		for i, ev := range s.outbox {
			all = append(all, tagged{ev: ev, src: src, srcIdx: i})
		}
		s.outbox = s.outbox[:0]
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.ev.Time != b.ev.Time {
			return a.ev.Time < b.ev.Time
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.srcIdx < b.srcIdx
	})
	for _, t := range all {
		k.pushLocal(t.ev.LP, t.ev)
	}
}

// minNextTime returns the earliest pending event time across all LPs.
func (k *Kernel) minNextTime() (float64, bool) {
	best := math.Inf(1)
	found := false
	for lp := range k.queues {
		if k.queues[lp].Len() > 0 {
			if t := k.queues[lp][0].Time; t < best {
				best = t
				found = true
			}
		}
	}
	return best, found
}

// windowFloor aligns t down to the window grid of width L.
func windowFloor(t, L float64) float64 {
	if t <= 0 {
		return 0
	}
	return math.Floor(t/L) * L
}

// eventHeap is a binary min-heap ordered by (Time, seq). The push/pop
// methods operate on Event values directly instead of going through
// container/heap, whose any-typed interface boxes every event on both push
// and pop — two heap allocations per simulation event on the hottest path in
// the kernel.
type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev Event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() Event {
	q := *h
	ev := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = Event{} // release the payload reference
	q = q[:last]
	*h = q
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		child := left
		if right := left + 1; right < last && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return ev
}
