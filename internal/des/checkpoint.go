package des

import (
	"fmt"
	"sort"
)

// LPFailure signals the fail-stop death of one logical process (a crashed
// simulation-engine node). An OnBarrier hook returns it (possibly wrapped) to
// stop the run at the barrier where the death is detected; callers recognize
// it with errors.As and recover through Checkpoint/Restore.
type LPFailure struct {
	// LP is the dead logical process.
	LP int
	// Time is the virtual time of the failure (at or before the barrier that
	// detected it — a conservative kernel only observes death at barriers).
	Time float64
}

func (f *LPFailure) Error() string {
	return fmt.Sprintf("des: LP %d failed at t=%g", f.LP, f.Time)
}

// Checkpoint is a consistent snapshot of the kernel taken at a window
// barrier: every pending event of every LP plus the cumulative run
// statistics. At a barrier no handler is executing and all cross-LP events
// have been merged into destination queues, so the queues alone are the
// complete simulation state the kernel owns.
type Checkpoint struct {
	// Time is the virtual time of the barrier the snapshot was taken at.
	Time float64
	// events[lp] holds LP lp's pending events ordered by (Time, seq).
	events [][]Event
	stats  Stats
}

// PendingEvents returns the total number of events captured in the snapshot.
func (cp *Checkpoint) PendingEvents() int {
	n := 0
	for _, q := range cp.events {
		n += len(q)
	}
	return n
}

// Stats returns a copy of the run statistics at the checkpoint.
func (cp *Checkpoint) Stats() Stats {
	s := cp.stats
	s.Events = append([]int64(nil), cp.stats.Events...)
	s.Charges = append([]int64(nil), cp.stats.Charges...)
	s.RemoteSends = append([]int64(nil), cp.stats.RemoteSends...)
	return s
}

// Checkpoint snapshots the kernel at virtual time at. It is only safe where
// no handler runs: before Run, or inside an OnBarrier hook (at = windowEnd).
func (k *Kernel) Checkpoint(at float64) *Checkpoint {
	n := k.cfg.NumLPs
	cp := &Checkpoint{Time: at, events: make([][]Event, n)}
	for lp := 0; lp < n; lp++ {
		evs := k.queues[lp].export(lp)
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].Time != evs[j].Time {
				return evs[i].Time < evs[j].Time
			}
			return evs[i].seq < evs[j].seq
		})
		cp.events[lp] = evs
	}
	src := k.runStats
	if src == nil {
		src = k.base
	}
	if src != nil {
		cp.stats = *src
		cp.stats.Events = append([]int64(nil), src.Events...)
		cp.stats.Charges = append([]int64(nil), src.Charges...)
		cp.stats.RemoteSends = append([]int64(nil), src.RemoteSends...)
	} else {
		cp.stats = Stats{
			Events:      make([]int64, n),
			Charges:     make([]int64, n),
			RemoteSends: make([]int64, n),
		}
	}
	return cp
}

// Restore reinstalls a checkpoint, discarding the kernel's current queues
// and statistics, and re-arms Run. Each pending event is offered to remap
// (nil keeps the original owner): the returned LP becomes the event's new
// owner — how a recovery moves a dead engine's events onto survivors — and
// returning ok=false drops the event. When lookahead > 0 it replaces the
// window width, since a changed assignment cuts a different set of links.
// Events are reinserted in a deterministic order (LP, then time, then
// original sequence), so a restored run replays identically.
func (k *Kernel) Restore(cp *Checkpoint, lookahead float64, remap func(Event) (int, bool)) error {
	n := k.cfg.NumLPs
	if len(cp.events) != n {
		return fmt.Errorf("des: checkpoint covers %d LPs, kernel has %d", len(cp.events), n)
	}
	if lookahead > 0 {
		k.cfg.Lookahead = lookahead
	}
	k.queues = make([]eventHeap, n)
	k.seqs = make([]int64, n)
	for lp := 0; lp < n; lp++ {
		for _, ev := range cp.events[lp] {
			nlp := ev.LP
			if remap != nil {
				var ok bool
				nlp, ok = remap(ev)
				if !ok {
					continue
				}
			}
			if nlp < 0 || nlp >= n {
				return fmt.Errorf("des: restore remapped event at t=%g to invalid LP %d", ev.Time, nlp)
			}
			k.pushLocal(nlp, ev.Time, ev.Data)
		}
	}
	base := cp.Stats()
	k.base = &base
	k.ran = false
	return nil
}
