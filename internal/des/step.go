package des

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"
)

// Externally driven window execution — the kernel face of the distributed
// runtime. A Stepper owns a subset of a kernel's LPs (the engines assigned to
// one worker process) and executes them window by window under an outside
// coordinator: the coordinator collects NextEventTime votes from every
// worker, picks the global window, calls Step on each, merges the outboxes in
// the same deterministic (time, source LP, send order) order Run uses, and
// hands each worker back its share through Inject. Because sequence numbers
// are per destination LP and every phase (initial seeding, in-window local
// pushes, barrier merge) replays in the same order as the in-process Run
// loop, a stepped execution is event-for-event identical to Run.

// Sent is a cross-LP event captured at a Stepper barrier, tagged with the
// merge key Run's barrier uses: sending LP and position in that LP's outbox.
type Sent struct {
	// Time is the event's virtual firing time.
	Time float64
	// Dst is the destination LP.
	Dst int
	// Data is the opaque payload.
	Data any
	// Src is the sending LP; SrcIdx its send order within the window.
	Src    int
	SrcIdx int
}

// StepResult reports one executed window. The slices are indexed by LP over
// the full kernel (non-local slots stay zero) and are reused across Step
// calls — copy them if retained.
type StepResult struct {
	// Events, Charges and Remote are this window's per-LP handler
	// invocations, kernel-event charges, and cross-LP sends.
	Events  []int64
	Charges []int64
	Remote  []int64
	// Queue is the post-window (pre-merge) pending-event count per LP.
	Queue []int64
	// Outbox holds the window's cross-LP events flattened from the kernel's
	// per-destination batches: grouped by (source LP, destination) in batch
	// first-touch order, unsorted. The coordinator merges outboxes from all
	// Steppers globally and must SortSent (or the wire equivalent) before
	// injecting.
	Outbox []Sent
	// Busy is the measured wall-clock seconds each local LP spent executing
	// the window. Nil unless EnableTiming was called — the tracing hot path
	// stays allocation- and syscall-free when tracing is off.
	Busy []float64
}

// Stepper drives a subset of a kernel's LPs one window at a time. Create
// with Kernel.Stepper, seed initial events through Kernel.Schedule first.
type Stepper struct {
	k       *Kernel
	local   []int
	isLocal []bool
	scheds  []*Scheduler // indexed by LP; nil for non-local LPs
	stats   *Stats
	res     StepResult
	// pre and done are per-Step scratch reused across windows (pre-window
	// event counts; worker completion signals).
	pre    []int64
	done   chan struct{}
	failed error
	timing bool
}

// EnableTiming turns on per-LP wall-clock measurement of window execution:
// after each Step, StepResult.Busy[lp] holds the seconds LP lp spent in
// runWindow. Off by default; the disabled path takes no clock readings and
// performs no extra allocations.
func (st *Stepper) EnableTiming() {
	if !st.timing {
		st.timing = true
		st.res.Busy = make([]float64, st.k.cfg.NumLPs)
	}
}

// Stepper claims the given LPs of the kernel for external window-by-window
// driving. The kernel must not have Run called on it; local must be a
// non-empty set of distinct valid LPs. Observer, Recorder and OnBarrier are
// ignored in stepped mode — the coordinator owns the barrier.
func (k *Kernel) Stepper(local []int) (*Stepper, error) {
	if k.ran {
		return nil, fmt.Errorf("des: Stepper on a kernel that already ran")
	}
	if len(local) == 0 {
		return nil, fmt.Errorf("des: Stepper needs at least one local LP")
	}
	n := k.cfg.NumLPs
	// A restored kernel (Restore installed a checkpoint base) resumes its
	// cumulative statistics, exactly as Run does — a reseated distributed
	// worker must report run totals, not post-migration deltas.
	stats := &Stats{
		Events:      make([]int64, n),
		Charges:     make([]int64, n),
		RemoteSends: make([]int64, n),
	}
	if k.base != nil {
		copy(stats.Events, k.base.Events)
		copy(stats.Charges, k.base.Charges)
		copy(stats.RemoteSends, k.base.RemoteSends)
		stats.Windows = k.base.Windows
		stats.SkippedTime = k.base.SkippedTime
		stats.VirtualEnd = k.base.VirtualEnd
	}
	st := &Stepper{
		k:       k,
		local:   append([]int(nil), local...),
		isLocal: make([]bool, n),
		scheds:  make([]*Scheduler, n),
		stats:   stats,
		res: StepResult{
			Events:  make([]int64, n),
			Charges: make([]int64, n),
			Remote:  make([]int64, n),
			Queue:   make([]int64, n),
		},
	}
	sort.Ints(st.local)
	for _, lp := range st.local {
		if lp < 0 || lp >= n {
			return nil, fmt.Errorf("des: Stepper local LP %d out of range [0,%d)", lp, n)
		}
		if st.isLocal[lp] {
			return nil, fmt.Errorf("des: Stepper local LP %d listed twice", lp)
		}
		st.isLocal[lp] = true
		st.scheds[lp] = k.newScheduler(lp)
	}
	st.pre = make([]int64, 0, len(st.local))
	st.done = make(chan struct{}, len(st.local))
	k.ran = true
	k.runStats = st.stats // lets Kernel.Checkpoint snapshot mid-stepping
	return st, nil
}

// NextEventTime returns the earliest pending event time across the local
// LPs — the Stepper's barrier vote. ok is false when all local queues are
// empty.
func (st *Stepper) NextEventTime() (float64, bool) {
	best := math.Inf(1)
	found := false
	for _, lp := range st.local {
		if q := &st.k.queues[lp]; q.Len() > 0 && q.times[0] < best {
			best = q.times[0]
			found = true
		}
	}
	return best, found
}

// Step executes one window [T, end) on every local LP — concurrently unless
// the kernel is Sequential — and returns the window's per-LP counters and
// outbox. A handler error poisons the Stepper: Step returns it now and on
// every later call.
func (st *Stepper) Step(T, end float64) (*StepResult, error) {
	if st.failed != nil {
		return nil, st.failed
	}
	k := st.k
	st.pre = st.pre[:0]
	for _, lp := range st.local {
		st.pre = append(st.pre, st.stats.Events[lp])
	}
	// Mirror Run's dispatch policy: goroutine-per-LP only when real
	// parallelism is available (results are identical either way).
	if k.cfg.Sequential || len(st.local) == 1 ||
		(runtime.GOMAXPROCS(0) == 1 && !k.cfg.ForceParallel) {
		for _, lp := range st.local {
			if st.timing {
				t0 := time.Now()
				k.runWindow(lp, st.scheds[lp], end, st.stats)
				st.res.Busy[lp] = time.Since(t0).Seconds()
			} else {
				k.runWindow(lp, st.scheds[lp], end, st.stats)
			}
		}
	} else {
		for _, lp := range st.local {
			go func(lp int) {
				if st.timing {
					t0 := time.Now()
					k.runWindow(lp, st.scheds[lp], end, st.stats)
					st.res.Busy[lp] = time.Since(t0).Seconds()
				} else {
					k.runWindow(lp, st.scheds[lp], end, st.stats)
				}
				st.done <- struct{}{}
			}(lp)
		}
		for range st.local {
			<-st.done
		}
	}
	for _, lp := range st.local {
		if err := st.scheds[lp].err; err != nil {
			st.failed = err
			return nil, err
		}
	}
	res := &st.res
	res.Outbox = res.Outbox[:0]
	for i, lp := range st.local {
		s := st.scheds[lp]
		res.Events[lp] = st.stats.Events[lp] - st.pre[i]
		res.Charges[lp] = s.charges
		res.Remote[lp] = s.remote
		res.Queue[lp] = int64(k.queues[lp].Len())
		s.charges = 0
		s.remote = 0
		// Flatten the window's per-destination batches. The raw order is
		// batch first-touch, not send order — consumers sort globally.
		for _, b := range s.batches {
			for j := range b.Times {
				res.Outbox = append(res.Outbox, Sent{
					Time: b.Times[j], Dst: b.Dst, Data: b.Datas[j],
					Src: lp, SrcIdx: int(b.SrcIdx[j]),
				})
			}
			s.batchAt[b.Dst] = nil
			putBatch(b)
		}
		s.batches = s.batches[:0]
	}
	st.stats.Windows++
	st.stats.VirtualEnd = end
	return res, nil
}

// Inject pushes barrier-merged events into local queues. The coordinator
// must pass them in the global merge order — (time, Src, SrcIdx) ascending —
// so sequence numbers are assigned exactly as Run's mergeOutboxes would.
func (st *Stepper) Inject(evs []Sent) error {
	for _, sv := range evs {
		if sv.Dst < 0 || sv.Dst >= st.k.cfg.NumLPs || !st.isLocal[sv.Dst] {
			return fmt.Errorf("des: injected event at t=%g for non-local LP %d", sv.Time, sv.Dst)
		}
		st.k.pushLocal(sv.Dst, sv.Time, sv.Data)
	}
	return nil
}

// Stats returns the Stepper's cumulative statistics (live; not a copy).
// VirtualEnd and Windows reflect the Steps executed locally; per-LP slices
// cover only local LPs.
func (st *Stepper) Stats() *Stats { return st.stats }

// SortSent orders barrier events in the deterministic global merge order the
// in-process barrier uses: time, then sending LP, then send order.
func SortSent(evs []Sent) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.SrcIdx < b.SrcIdx
	})
}

// WindowFloor aligns t down onto the window grid of width L — exported so a
// coordinator can replicate Run's idle-skip logic bit-for-bit.
func WindowFloor(t, L float64) float64 { return windowFloor(t, L) }
