package des

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// ---- Error paths: invalid scheduling poisons the run with an error ----

func TestRunErrorsOnLookaheadViolation(t *testing.T) {
	h := func(lp int, tm float64, data any, s *Scheduler) {
		// Remote event inside the current window: a lookahead violation.
		s.Schedule(1, tm+0.1, nil)
	}
	k, _ := New(Config{NumLPs: 2, Lookahead: 1, Handler: h, Sequential: true})
	k.Schedule(0, 0.2, nil)
	if _, err := k.Run(); err == nil {
		t.Fatal("lookahead violation did not error")
	} else if !strings.Contains(err.Error(), "lookahead") {
		t.Errorf("error %q does not mention lookahead", err)
	}
}

func TestRunErrorsOnInvalidTargetLP(t *testing.T) {
	h := func(lp int, tm float64, data any, s *Scheduler) {
		s.Schedule(99, tm+5, nil)
	}
	k, _ := New(Config{NumLPs: 2, Lookahead: 1, Handler: h, Sequential: true})
	k.Schedule(0, 0.2, nil)
	if _, err := k.Run(); err == nil {
		t.Fatal("invalid target LP did not error")
	} else if !strings.Contains(err.Error(), "invalid LP") {
		t.Errorf("error %q does not mention invalid LP", err)
	}
}

func TestRunErrorsOnPastEvent(t *testing.T) {
	h := func(lp int, tm float64, data any, s *Scheduler) {
		s.Schedule(lp, tm-0.5, nil)
	}
	k, _ := New(Config{NumLPs: 1, Lookahead: 1, Handler: h, Sequential: true})
	k.Schedule(0, 0.7, nil)
	if _, err := k.Run(); err == nil {
		t.Fatal("past-scheduled event did not error")
	} else if !strings.Contains(err.Error(), "past") {
		t.Errorf("error %q does not mention the past", err)
	}
}

func TestFirstErrorWinsPerLP(t *testing.T) {
	// One LP commits two violations in the same window; the run must report
	// the first (Scheduler.fail keeps the first error).
	h := func(lp int, tm float64, data any, s *Scheduler) {
		s.Schedule(lp, tm-1, nil)  // first: past event
		s.Schedule(42, tm+10, nil) // second: invalid LP
	}
	k, _ := New(Config{NumLPs: 1, Lookahead: 1, Handler: h, Sequential: true})
	k.Schedule(0, 0.5, nil)
	_, err := k.Run()
	if err == nil {
		t.Fatal("violations did not error")
	}
	if !strings.Contains(err.Error(), "past") {
		t.Errorf("got %q, want the first violation (past event)", err)
	}
}

func TestErrorStopsFurtherHandling(t *testing.T) {
	// After an LP poisons itself, its remaining events in the window are not
	// handled.
	var handled int
	h := func(lp int, tm float64, data any, s *Scheduler) {
		handled++
		s.Schedule(lp, tm-1, nil)
	}
	k, _ := New(Config{NumLPs: 1, Lookahead: 10, Handler: h, Sequential: true})
	k.Schedule(0, 0.1, nil)
	k.Schedule(0, 0.2, nil)
	k.Schedule(0, 0.3, nil)
	if _, err := k.Run(); err == nil {
		t.Fatal("want error")
	}
	if handled != 1 {
		t.Errorf("handled %d events after poisoning, want 1", handled)
	}
}

// ---- OnBarrier ----

func TestOnBarrierStopsRun(t *testing.T) {
	h := func(lp int, tm float64, data any, s *Scheduler) {
		s.Charge(1)
		if tm < 10 {
			s.Schedule(lp, tm+1, nil)
		}
	}
	stop := errors.New("stop here")
	var barriers int
	k, _ := New(Config{
		NumLPs: 1, Lookahead: 1, Handler: h, Sequential: true,
		OnBarrier: func(ws, we float64) error {
			barriers++
			if barriers == 3 {
				return stop
			}
			return nil
		},
	})
	k.Schedule(0, 0.5, nil)
	stats, err := k.Run()
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want the OnBarrier error", err)
	}
	if stats == nil {
		t.Fatal("stats-so-far not returned alongside the barrier error")
	}
	if stats.Windows != 3 {
		t.Errorf("Windows = %d, want 3 (stopped at third barrier)", stats.Windows)
	}
}

func TestLPFailureErrorsAs(t *testing.T) {
	h := func(lp int, tm float64, data any, s *Scheduler) {}
	k, _ := New(Config{
		NumLPs: 2, Lookahead: 1, Handler: h, Sequential: true,
		OnBarrier: func(ws, we float64) error {
			return fmt.Errorf("wrapped: %w", &LPFailure{LP: 1, Time: ws})
		},
	})
	k.Schedule(0, 0.5, nil)
	_, err := k.Run()
	var lpf *LPFailure
	if !errors.As(err, &lpf) {
		t.Fatalf("err = %v, want to unwrap to *LPFailure", err)
	}
	if lpf.LP != 1 {
		t.Errorf("LP = %d, want 1", lpf.LP)
	}
}

// ---- Checkpoint / Restore ----

// chain bounces an event between two LPs, charging one unit per hop.
func chainHandler(until float64) Handler {
	return func(lp int, tm float64, data any, s *Scheduler) {
		s.Charge(1)
		if tm >= until {
			return
		}
		s.Schedule(1-lp, tm+1, nil)
	}
}

func TestCheckpointRestoreReplaysIdentically(t *testing.T) {
	mk := func() *Kernel {
		k, err := New(Config{NumLPs: 2, Lookahead: 1, Handler: chainHandler(20), Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		k.Schedule(0, 0.5, nil)
		return k
	}

	// Reference: run to completion without interruption.
	ref, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: stop at a mid-run barrier, checkpoint, restore, resume.
	var cp *Checkpoint
	stop := errors.New("interrupt")
	k, _ := New(Config{NumLPs: 2, Lookahead: 1, Handler: chainHandler(20), Sequential: true})
	k.cfg.OnBarrier = func(ws, we float64) error {
		if we >= 8 && cp == nil {
			cp = k.Checkpoint(we)
			return stop
		}
		return nil
	}
	k.Schedule(0, 0.5, nil)
	if _, err := k.Run(); !errors.Is(err, stop) {
		t.Fatalf("err = %v, want interrupt", err)
	}
	if cp == nil || cp.PendingEvents() == 0 {
		t.Fatal("checkpoint empty")
	}
	k.cfg.OnBarrier = nil
	if err := k.Restore(cp, 0, nil); err != nil {
		t.Fatal(err)
	}
	got, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}

	if got.VirtualEnd != ref.VirtualEnd {
		t.Errorf("VirtualEnd = %g, want %g", got.VirtualEnd, ref.VirtualEnd)
	}
	for lp := 0; lp < 2; lp++ {
		if got.Events[lp] != ref.Events[lp] {
			t.Errorf("LP %d Events = %d, want %d", lp, got.Events[lp], ref.Events[lp])
		}
		if got.Charges[lp] != ref.Charges[lp] {
			t.Errorf("LP %d Charges = %d, want %d", lp, got.Charges[lp], ref.Charges[lp])
		}
	}
}

func TestRestoreRemapMovesEvents(t *testing.T) {
	// Checkpoint before Run, then remap every event onto LP 0 and verify LP 1
	// never executes.
	events := make([]int64, 2)
	h := func(lp int, tm float64, data any, s *Scheduler) { events[lp]++ }
	k, _ := New(Config{NumLPs: 2, Lookahead: 1, Handler: h, Sequential: true})
	k.Schedule(0, 0.5, nil)
	k.Schedule(1, 0.6, nil)
	cp := k.Checkpoint(0)
	if err := k.Restore(cp, 0, func(ev Event) (int, bool) { return 0, true }); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if events[0] != 2 || events[1] != 0 {
		t.Errorf("events = %v, want all on LP 0", events)
	}
}

func TestRestoreRemapDropsEvents(t *testing.T) {
	var handled int64
	h := func(lp int, tm float64, data any, s *Scheduler) { handled++ }
	k, _ := New(Config{NumLPs: 2, Lookahead: 1, Handler: h, Sequential: true})
	k.Schedule(0, 0.5, nil)
	k.Schedule(1, 0.6, nil)
	cp := k.Checkpoint(0)
	drop := func(ev Event) (int, bool) { return ev.LP, ev.LP == 0 }
	if err := k.Restore(cp, 0, drop); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if handled != 1 {
		t.Errorf("handled = %d, want 1 (LP 1's event dropped)", handled)
	}
}

func TestRestoreRejectsInvalidRemap(t *testing.T) {
	h := func(lp int, tm float64, data any, s *Scheduler) {}
	k, _ := New(Config{NumLPs: 2, Lookahead: 1, Handler: h})
	k.Schedule(0, 0.5, nil)
	cp := k.Checkpoint(0)
	if err := k.Restore(cp, 0, func(Event) (int, bool) { return 7, true }); err == nil {
		t.Error("out-of-range remap accepted")
	}
}

func TestRunTwiceWithoutRestoreErrors(t *testing.T) {
	h := func(lp int, tm float64, data any, s *Scheduler) {}
	k, _ := New(Config{NumLPs: 1, Lookahead: 1, Handler: h})
	k.Schedule(0, 0.5, nil)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err == nil {
		t.Error("second Run without Restore accepted")
	}
}

func TestRestoreChangesLookahead(t *testing.T) {
	// Restoring with a wider lookahead must widen the windows (fewer
	// barriers for the same span).
	mkRun := func(newL float64) int64 {
		h := func(lp int, tm float64, data any, s *Scheduler) {
			if tm < 10 {
				s.Schedule(lp, tm+0.5, nil)
			}
		}
		k, _ := New(Config{NumLPs: 1, Lookahead: 1, Handler: h, Sequential: true})
		k.Schedule(0, 0.25, nil)
		cp := k.Checkpoint(0)
		if err := k.Restore(cp, newL, nil); err != nil {
			panic(err)
		}
		stats, err := k.Run()
		if err != nil {
			panic(err)
		}
		return stats.Windows
	}
	narrow := mkRun(0) // keep L=1
	wide := mkRun(5)
	if wide >= narrow {
		t.Errorf("windows with L=5 (%d) not fewer than with L=1 (%d)", wide, narrow)
	}
}

func TestStatsContinueAcrossRestore(t *testing.T) {
	// A run resumed from a mid-run checkpoint reports cumulative statistics,
	// not just the tail segment's.
	var cp *Checkpoint
	stop := errors.New("interrupt")
	k, _ := New(Config{NumLPs: 2, Lookahead: 1, Handler: chainHandler(10), Sequential: true})
	k.cfg.OnBarrier = func(ws, we float64) error {
		if we >= 5 && cp == nil {
			cp = k.Checkpoint(we)
			return stop
		}
		return nil
	}
	k.Schedule(0, 0.5, nil)
	if _, err := k.Run(); !errors.Is(err, stop) {
		t.Fatal("expected interrupt")
	}
	cpEvents := cp.Stats().Events[0] + cp.Stats().Events[1]
	if cpEvents == 0 {
		t.Fatal("checkpoint recorded no events")
	}
	k.cfg.OnBarrier = nil
	if err := k.Restore(cp, 0, nil); err != nil {
		t.Fatal(err)
	}
	stats, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := stats.Events[0] + stats.Events[1]
	if total <= cpEvents {
		t.Errorf("cumulative events %d not beyond checkpoint's %d", total, cpEvents)
	}
	// The full chain handles one event per virtual second up to t=10 plus the
	// final bounce; an uninterrupted run gives the same total.
	ref, _ := New(Config{NumLPs: 2, Lookahead: 1, Handler: chainHandler(10), Sequential: true})
	ref.Schedule(0, 0.5, nil)
	rs, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := rs.Events[0] + rs.Events[1]; total != want {
		t.Errorf("cumulative events = %d, want %d", total, want)
	}
}
