package des

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCascade builds a deterministic pseudo-random event cascade driven by
// the payload value: each event spawns 0-2 follow-ups, local or remote,
// with times derived from the payload so sequential and parallel runs face
// identical workloads.
func randomCascade(t *testing.T, numLPs int, lookahead float64, seed int64, sequential bool) *Stats {
	t.Helper()
	h := func(lp int, tm float64, data any, s *Scheduler) {
		n := data.(int64)
		s.Charge(n%5 + 1)
		if n <= 0 {
			return
		}
		// Derive pseudo-random but deterministic choices from n.
		x := n*6364136223846793005 + 1442695040888963407
		spawn := int(uint64(x) % 3)
		for i := 0; i < spawn; i++ {
			y := x + int64(i)*997
			dst := int(uint64(y) % uint64(numLPs))
			child := n - 1 - int64(uint64(y)%3)
			if child < 0 {
				continue
			}
			if dst == lp {
				s.Schedule(lp, tm+lookahead/5, child)
			} else {
				s.Schedule(dst, tm+lookahead*(1+float64(uint64(y)%4)/4), child)
			}
		}
	}
	k, err := New(Config{NumLPs: numLPs, Lookahead: lookahead, Handler: h, Sequential: sequential})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 2*numLPs; i++ {
		k.Schedule(rng.Intn(numLPs), rng.Float64()*0.01, int64(8+rng.Intn(8)))
	}
	st, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPropertySequentialParallelEquivalence: for arbitrary cascades, the
// parallel barrier protocol must produce byte-identical statistics to
// sequential execution.
func TestPropertySequentialParallelEquivalence(t *testing.T) {
	f := func(seed int64, lpRaw uint8) bool {
		numLPs := 2 + int(lpRaw)%6
		seq := randomCascade(t, numLPs, 0.002, seed, true)
		par := randomCascade(t, numLPs, 0.002, seed, false)
		if seq.Windows != par.Windows || seq.SkippedTime != par.SkippedTime {
			return false
		}
		for lp := 0; lp < numLPs; lp++ {
			if seq.Events[lp] != par.Events[lp] ||
				seq.Charges[lp] != par.Charges[lp] ||
				seq.RemoteSends[lp] != par.RemoteSends[lp] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(77))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyConservation: every scheduled event is eventually executed —
// handler invocations equal initial events plus spawned events.
func TestPropertyConservation(t *testing.T) {
	var spawned, executed int64
	numLPs := 4
	L := 0.001
	h := func(lp int, tm float64, data any, s *Scheduler) {
		executed++
		n := data.(int)
		if n > 0 {
			spawned++
			s.Schedule((lp+1)%numLPs, tm+L, n-1)
		}
	}
	k, _ := New(Config{NumLPs: numLPs, Lookahead: L, Handler: h, Sequential: true})
	const initial = 10
	for i := 0; i < initial; i++ {
		k.Schedule(i%numLPs, float64(i)*0.0001, 20)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if executed != initial+spawned {
		t.Errorf("executed %d, want %d initial + %d spawned", executed, initial, spawned)
	}
}

// TestPropertyWindowMonotonicity: observer windows arrive in strictly
// increasing, non-overlapping time order.
func TestPropertyWindowMonotonicity(t *testing.T) {
	lastEnd := -1.0
	violations := 0
	obs := func(start, end float64, charges, remote []int64) {
		if start < lastEnd-1e-12 || end <= start {
			violations++
		}
		lastEnd = end
	}
	h := func(lp int, tm float64, data any, s *Scheduler) {
		n := data.(int)
		if n > 0 {
			// Mix of near and far future events to force window skips.
			gap := 0.0007
			if n%5 == 0 {
				gap = 0.5
			}
			s.Schedule((lp+1)%3, tm+gap, n-1)
		}
	}
	k, _ := New(Config{NumLPs: 3, Lookahead: 0.0007, Handler: h, Observer: obs})
	k.Schedule(0, 0, 200)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Errorf("%d window ordering violations", violations)
	}
}

// TestPropertyChargesNonNegativeAndBounded: charges accumulate exactly what
// handlers report.
func TestPropertyChargesNonNegativeAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		st := randomCascade(t, 3, 0.001, seed, false)
		var events, charges int64
		for lp := 0; lp < 3; lp++ {
			if st.Charges[lp] < 0 || st.Events[lp] < 0 {
				return false
			}
			events += st.Events[lp]
			charges += st.Charges[lp]
		}
		// Each event charges 1..5.
		return charges >= events && charges <= 5*events
	}
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
