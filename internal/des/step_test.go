package des

import (
	"errors"
	"math"
	"sort"
	"strings"
	"testing"
)

// pingPayload bounces between LPs 0 and 1 until time 5, charging one kernel
// event per hop — a minimal workload with real cross-LP traffic.
type pingPayload struct{ hops int }

func pingHandler(lp int, t float64, data any, s *Scheduler) {
	s.Charge(1)
	p := data.(pingPayload)
	if t >= 5 {
		return
	}
	s.Schedule(1-lp, t+1, pingPayload{hops: p.hops + 1})
}

func newPingKernel(t *testing.T) *Kernel {
	t.Helper()
	k, err := New(Config{NumLPs: 2, Lookahead: 1, Handler: pingHandler, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Schedule(0, 0.5, pingPayload{}); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestStepperValidatesLocals(t *testing.T) {
	cases := []struct {
		name  string
		local []int
	}{
		{"empty", nil},
		{"out-of-range", []int{2}},
		{"negative", []int{-1}},
		{"duplicate", []int{0, 0}},
	}
	for _, tc := range cases {
		k := newPingKernel(t)
		if _, err := k.Stepper(tc.local); err == nil {
			t.Errorf("%s local set must be rejected", tc.name)
		}
	}
	// A kernel that already ran cannot be stepped.
	k := newPingKernel(t)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Stepper([]int{0}); err == nil {
		t.Fatal("Stepper after Run must be rejected")
	}
	// And a stepped kernel cannot be stepped twice.
	k = newPingKernel(t)
	if _, err := k.Stepper([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Stepper([]int{0}); err == nil {
		t.Fatal("second Stepper on the same kernel must be rejected")
	}
}

// TestStepperMatchesRun drives the ping kernel with two steppers under a
// hand-rolled coordinator loop and compares every counter with Run.
func TestStepperMatchesRun(t *testing.T) {
	ref := newPingKernel(t)
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Two "workers": each holds its own kernel over the full LP space and
	// claims a disjoint local subset, seeding only events destined for its
	// own LPs — the distributed runtime's layout.
	const L = 1.0
	kA := newPingKernel(t) // seed lives on LP 0, local to worker A
	s0, err := kA.Stepper([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	kB, err := New(Config{NumLPs: 2, Lookahead: 1, Handler: pingHandler, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := kB.Stepper([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	steppers := []*Stepper{s0, s1}

	var totalEvents, totalCharges int64
	first := true
	var T float64
	for {
		minT, any := math.Inf(1), false
		for _, st := range steppers {
			if nt, ok := st.NextEventTime(); ok && nt < minT {
				minT, any = nt, true
			}
		}
		if !any {
			break
		}
		if first {
			T = WindowFloor(minT, L)
			first = false
		} else if minT >= T+L {
			T = WindowFloor(minT, L)
		}
		var outbox []Sent
		for _, st := range steppers {
			res, err := st.Step(T, T+L)
			if err != nil {
				t.Fatal(err)
			}
			for lp := range res.Events {
				totalEvents += res.Events[lp]
				totalCharges += res.Charges[lp]
			}
			outbox = append(outbox, res.Outbox...)
		}
		SortSent(outbox)
		for _, st := range steppers {
			var mine []Sent
			for _, sv := range outbox {
				if st.isLocal[sv.Dst] {
					mine = append(mine, sv)
				}
			}
			if err := st.Inject(mine); err != nil {
				t.Fatal(err)
			}
		}
		T += L
	}
	var wantEvents int64
	for _, e := range want.Events {
		wantEvents += e
	}
	if totalEvents != wantEvents || totalCharges != want.TotalCharges() {
		t.Fatalf("stepped execution diverges: events %d/%d charges %d/%d",
			totalEvents, wantEvents, totalCharges, want.TotalCharges())
	}
}

func TestStepperNextEventTime(t *testing.T) {
	k := newPingKernel(t)
	st, err := k.Stepper([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	nt, ok := st.NextEventTime()
	if !ok || nt != 0.5 {
		t.Fatalf("NextEventTime = %g,%v; want 0.5,true", nt, ok)
	}
	// Drain everything: the vote must turn empty.
	T := WindowFloor(0.5, 1)
	for i := 0; i < 32; i++ {
		res, err := st.Step(T, T+1)
		if err != nil {
			t.Fatal(err)
		}
		SortSent(res.Outbox)
		if err := st.Inject(res.Outbox); err != nil {
			t.Fatal(err)
		}
		if _, ok := st.NextEventTime(); !ok {
			return
		}
		T += 1
	}
	t.Fatal("ping workload never drained")
}

func TestStepperInjectRejectsNonLocal(t *testing.T) {
	k := newPingKernel(t)
	st, err := k.Stepper([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	for _, dst := range []int{1, -1, 2} {
		err := st.Inject([]Sent{{Time: 1, Dst: dst}})
		if err == nil {
			t.Errorf("inject for LP %d must be rejected (stepper owns only LP 0)", dst)
		}
	}
}

func TestStepperHandlerFailurePoisons(t *testing.T) {
	k, err := New(Config{NumLPs: 1, Lookahead: 1, Sequential: true,
		Handler: func(lp int, tt float64, data any, s *Scheduler) {
			s.Fail(errors.New("deliberate"))
		}})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Schedule(0, 0.5, nil); err != nil {
		t.Fatal(err)
	}
	st, err := k.Stepper([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Step(0, 1); err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Fatalf("handler failure must surface from Step, got %v", err)
	}
	// Poisoned: every later Step fails too.
	if _, err := st.Step(1, 2); err == nil {
		t.Fatal("poisoned stepper must keep failing")
	}
}

func TestSortSentGlobalMergeOrder(t *testing.T) {
	evs := []Sent{
		{Time: 2, Src: 0, SrcIdx: 0},
		{Time: 1, Src: 1, SrcIdx: 1},
		{Time: 1, Src: 1, SrcIdx: 0},
		{Time: 1, Src: 0, SrcIdx: 0},
	}
	SortSent(evs)
	if !sort.SliceIsSorted(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.SrcIdx < b.SrcIdx
	}) {
		t.Fatalf("not in merge order: %+v", evs)
	}
	if evs[0] != (Sent{Time: 1, Src: 0, SrcIdx: 0}) || evs[3].Time != 2 {
		t.Fatalf("unexpected order: %+v", evs)
	}
}

func TestWindowFloorGrid(t *testing.T) {
	cases := []struct{ t, L, want float64 }{
		{0, 1, 0},
		{0.5, 1, 0},
		{1, 1, 1},
		{2.75, 0.5, 2.5},
		{1e9 + 0.3, 1, 1e9},
	}
	for _, tc := range cases {
		if got := WindowFloor(tc.t, tc.L); got != tc.want {
			t.Errorf("WindowFloor(%g, %g) = %g, want %g", tc.t, tc.L, got, tc.want)
		}
	}
}
