package des

import (
	"testing"

	"repro/internal/obs"
)

// chainKernel builds a kernel where each LP processes a chain of events, one
// per tick, each event scheduling the next locally and charging one kernel
// event; every stride-th event also pings the neighbor LP.
func chainKernel(t testing.TB, numLPs int, events int, stride int, rec obs.Recorder, sequential bool) *Kernel {
	t.Helper()
	type tick struct{ n int }
	k, err := New(Config{
		NumLPs:     numLPs,
		Lookahead:  1,
		Sequential: sequential,
		Recorder:   rec,
		Handler: func(lp int, now float64, data any, s *Scheduler) {
			tk := data.(*tick)
			s.Charge(1)
			if tk.n <= 0 {
				return
			}
			s.Schedule(lp, now+1, &tick{n: tk.n - 1})
			if stride > 0 && tk.n%stride == 0 && numLPs > 1 {
				s.Schedule((lp+1)%numLPs, now+1, &tick{n: 0})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for lp := 0; lp < numLPs; lp++ {
		if err := k.Schedule(lp, 0, &tick{n: events}); err != nil {
			t.Fatal(err)
		}
	}
	return k
}

// TestRecorderWindowCounters checks the per-window stream against the
// kernel's own cumulative statistics.
func TestRecorderWindowCounters(t *testing.T) {
	for _, seq := range []bool{true, false} {
		stats := obs.NewRunStats()
		k := chainKernel(t, 3, 50, 10, stats, seq)
		st, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Segments != 1 {
			t.Errorf("seq=%v: segments = %d, want 1", seq, stats.Segments)
		}
		if stats.Windows != st.Windows {
			t.Errorf("seq=%v: recorded %d windows, kernel says %d", seq, stats.Windows, st.Windows)
		}
		for lp := 0; lp < 3; lp++ {
			if stats.Events[lp] != st.Events[lp] {
				t.Errorf("seq=%v: LP %d recorded events %d, kernel %d", seq, lp, stats.Events[lp], st.Events[lp])
			}
			if stats.Charges[lp] != st.Charges[lp] {
				t.Errorf("seq=%v: LP %d recorded charges %d, kernel %d", seq, lp, stats.Charges[lp], st.Charges[lp])
			}
			if stats.Remote[lp] != st.RemoteSends[lp] {
				t.Errorf("seq=%v: LP %d recorded remote %d, kernel %d", seq, lp, stats.Remote[lp], st.RemoteSends[lp])
			}
			if stats.MaxQueue[lp] < 1 {
				t.Errorf("seq=%v: LP %d max queue = %d, want >= 1", seq, lp, stats.MaxQueue[lp])
			}
		}
	}
}

// TestRecorderObserverCoexist verifies the Observer still sees per-window
// charges when a Recorder is also attached (the reset happens exactly once).
func TestRecorderObserverCoexist(t *testing.T) {
	stats := obs.NewRunStats()
	var observed int64
	type tick struct{ n int }
	k, err := New(Config{
		NumLPs: 2, Lookahead: 1, Sequential: true,
		Recorder: stats,
		Observer: func(start, end float64, charges, remote []int64) {
			for _, c := range charges {
				observed += c
			}
		},
		Handler: func(lp int, now float64, data any, s *Scheduler) {
			tk := data.(*tick)
			s.Charge(2)
			if tk.n > 0 {
				s.Schedule(lp, now+1, &tick{n: tk.n - 1})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for lp := 0; lp < 2; lp++ {
		if err := k.Schedule(lp, 0, &tick{n: 9}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := st.TotalCharges()
	if observed != want {
		t.Errorf("observer saw %d charges, kernel accumulated %d", observed, want)
	}
	if got := stats.TotalCharges(); got != want {
		t.Errorf("recorder saw %d charges, kernel accumulated %d", got, want)
	}
}

// TestNilRecorderZeroAllocsPerEvent is the acceptance gate for the no-op
// observability path: with Recorder nil, the kernel must not allocate per
// event. The chain workload keeps every queue at constant depth, so a run's
// allocations are fixed setup costs; per-event allocations would scale the
// total with the event count and trip the bound.
func TestNilRecorderZeroAllocsPerEvent(t *testing.T) {
	const events = 5000
	type tick struct{ n int }
	payloads := make([]*tick, 2) // pre-allocated, reused via pointer payloads
	handler := func(lp int, now float64, data any, s *Scheduler) {
		tk := data.(*tick)
		s.Charge(1)
		if tk.n > 0 {
			tk.n--
			s.Schedule(lp, now+1, tk)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		k, err := New(Config{NumLPs: 2, Lookahead: 1, Sequential: true, Handler: handler})
		if err != nil {
			t.Fatal(err)
		}
		for lp := 0; lp < 2; lp++ {
			payloads[lp] = &tick{n: events}
			if err := k.Schedule(lp, 0, payloads[lp]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
	})
	// 2 LPs x 5000 events with ~40 fixed setup allocations: anything per-
	// event would add thousands.
	if allocs > 100 {
		t.Errorf("nil-recorder run allocated %.0f times for %d events (> 100: not allocation-free per event)",
			allocs, 2*events)
	}
}

// BenchmarkKernelNopRecorder measures the kernel hot path with observability
// disabled — the baseline the recorder-enabled path is compared against.
func BenchmarkKernelNopRecorder(b *testing.B) {
	benchKernel(b, nil)
}

// BenchmarkKernelRunStats measures the same workload with the aggregating
// collector attached.
func BenchmarkKernelRunStats(b *testing.B) {
	benchKernel(b, obs.NewRunStats())
}

func benchKernel(b *testing.B, rec obs.Recorder) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := chainKernel(b, 4, 2000, 50, rec, false)
		if _, err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
