package des

import (
	"fmt"
	"reflect"
	"testing"
)

// crossTrafficHandler builds a handler that bounces events between LPs with
// heavy timestamp collisions: every event at time t on LP lp re-sends to two
// other LPs at exactly the next window boundary, so each barrier merges
// simultaneous events from multiple sources and the (time, src, srcIdx)
// tiebreak decides every insertion. The per-LP logs capture execution order.
func crossTrafficHandler(numLPs int, L float64, logs [][]string) Handler {
	return func(lp int, t float64, data any, s *Scheduler) {
		hop := data.(int)
		// Only this LP's goroutine appends to its own log slot.
		logs[lp] = append(logs[lp], fmt.Sprintf("t=%.3f hop=%d", t, hop))
		s.Charge(1)
		if hop == 0 {
			return
		}
		// Two remote fan-outs at the identical timestamp plus a local echo:
		// the remote pair lands simultaneously with other LPs' sends.
		next := s.windowEnd
		s.Schedule((lp+1)%numLPs, next, hop-1)
		s.Schedule((lp+2)%numLPs, next, hop-1)
		s.Schedule(lp, t+L/4, 0)
	}
}

// runCrossTraffic executes the collision-heavy scenario in one kernel mode
// and returns the per-LP execution logs plus final stats.
func runCrossTraffic(t *testing.T, numLPs int, sequential, forcePar, reference bool) ([][]string, *Stats) {
	t.Helper()
	const L = 0.01
	logs := make([][]string, numLPs)
	k, err := New(Config{
		NumLPs:           numLPs,
		Lookahead:        L,
		Handler:          crossTrafficHandler(numLPs, L, logs),
		Sequential:       sequential,
		ForceParallel:    forcePar,
		ReferenceBarrier: reference,
	})
	if err != nil {
		t.Fatal(err)
	}
	for lp := 0; lp < numLPs; lp++ {
		if err := k.Schedule(lp, 0.001*float64(lp+1), 6); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	return logs, stats
}

// TestBarrierMergeMatchesReference is the determinism oracle for the pooled
// per-destination barrier merge: under heavy timestamp collisions, the
// batched merge must execute event-for-event identically to the pre-batching
// global (time, source LP, send order) sort — sequentially, and on the
// persistent-worker parallel path (forced on, so single-CPU hosts and the
// race detector exercise it too).
func TestBarrierMergeMatchesReference(t *testing.T) {
	const numLPs = 5
	refLogs, refStats := runCrossTraffic(t, numLPs, true, false, true)
	modes := []struct {
		name                 string
		sequential, forcePar bool
	}{
		{"batched-sequential", true, false},
		{"batched-parallel", false, false},
		{"batched-parallel-forced", false, true},
		{"reference-parallel-forced", false, true},
	}
	for i, m := range modes {
		reference := i == len(modes)-1
		logs, stats := runCrossTraffic(t, numLPs, m.sequential, m.forcePar, reference)
		if !reflect.DeepEqual(logs, refLogs) {
			t.Errorf("%s: execution order diverged from the reference barrier", m.name)
		}
		if !reflect.DeepEqual(stats.Events, refStats.Events) ||
			!reflect.DeepEqual(stats.Charges, refStats.Charges) ||
			!reflect.DeepEqual(stats.RemoteSends, refStats.RemoteSends) ||
			stats.Windows != refStats.Windows {
			t.Errorf("%s: stats diverged from the reference barrier", m.name)
		}
	}
}

// TestObserverBuffersAreRecycled pins the WindowObserver buffer contract the
// doc comment promises: the charges/remote slices handed to the observer are
// the kernel's recycled per-window buffers — the same backing arrays every
// window — so an observer must consume them before returning and must not
// retain a reference. Runs meaningfully under -race with the forced parallel
// path: a retained reference mutated here would race with the next window's
// workers.
func TestObserverBuffersAreRecycled(t *testing.T) {
	const numLPs = 3
	const L = 0.01
	var (
		windows      int
		chargesArr   *int64
		remoteArr    *int64
		firstCharges []int64 // illustrative retained reference (read only at the end)
	)
	h := func(lp int, tm float64, data any, s *Scheduler) {
		s.Charge(int64(lp) + 1)
		if hop := data.(int); hop > 0 {
			s.Schedule((lp+1)%numLPs, s.windowEnd, hop-1)
		}
	}
	k, err := New(Config{
		NumLPs:        numLPs,
		Lookahead:     L,
		Handler:       h,
		ForceParallel: true,
		Observer: func(start, end float64, charges, remote []int64) {
			if windows == 0 {
				chargesArr, remoteArr = &charges[0], &remote[0]
				firstCharges = charges
			} else {
				if &charges[0] != chargesArr || &remote[0] != remoteArr {
					t.Error("observer buffers were reallocated; the recycled-buffer contract changed")
				}
			}
			windows++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for lp := 0; lp < numLPs; lp++ {
		if err := k.Schedule(lp, 0.001, 4); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if windows < 2 {
		t.Fatalf("scenario executed %d windows, need >= 2 to observe recycling", windows)
	}
	// The footgun the contract documents: a retained slice does not hold the
	// first window's values — it aliases the live buffer and now shows the
	// last window's.
	if firstCharges[0] != 1 { // LP 0 charges 1 per event; last window has one event on some LP
		t.Logf("retained slice now shows later-window data (expected): %v", firstCharges)
	}
}

// TestBatchPoolingNoSteadyStateAllocs verifies the pooled-batch barrier and
// SoA heaps reach a zero-allocation steady state: after a warm-up run, a
// second identical sequential run performs no per-event or per-barrier
// allocations beyond the fixed per-run setup.
func TestBatchPoolingNoSteadyStateAllocs(t *testing.T) {
	const numLPs = 4
	const L = 0.01
	// The handler fans out without logging, so every steady-state allocation
	// would come from the kernel itself (boxed payloads are pre-boxed ints).
	h := func(lp int, t float64, data any, s *Scheduler) {
		s.Charge(1)
		if hop := data.(int); hop > 0 {
			next := s.windowEnd
			s.Schedule((lp+1)%numLPs, next, hop-1)
			s.Schedule((lp+2)%numLPs, next, hop-1)
		}
	}
	build := func() *Kernel {
		k, err := New(Config{NumLPs: numLPs, Lookahead: L, Handler: h, Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		for lp := 0; lp < numLPs; lp++ {
			if err := k.Schedule(lp, 0.001*float64(lp+1), 8); err != nil {
				t.Fatal(err)
			}
		}
		return k
	}
	// Warm the pools and measure the fixed per-run cost.
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := build().Run(); err != nil {
			t.Fatal(err)
		}
	})
	// The scenario executes ~1000 events over dozens of windows. The remaining
	// allocations are per-run setup (kernel, queues, schedulers, stats) —
	// independent of event count; a per-event or per-barrier allocation would
	// multiply this figure far past the bound.
	const bound = 250
	if allocs > bound {
		t.Errorf("run allocated %.0f objects, want <= %d (per-event/per-barrier allocation crept back in)", allocs, bound)
	}
}
