package des

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestNewValidation(t *testing.T) {
	h := func(int, float64, any, *Scheduler) {}
	if _, err := New(Config{NumLPs: 0, Lookahead: 1, Handler: h}); err == nil {
		t.Error("NumLPs=0 accepted")
	}
	if _, err := New(Config{NumLPs: 1, Lookahead: 0, Handler: h}); err == nil {
		t.Error("Lookahead=0 accepted")
	}
	if _, err := New(Config{NumLPs: 1, Lookahead: 1}); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := New(Config{NumLPs: 1, Lookahead: 1, Handler: h}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestScheduleValidation(t *testing.T) {
	k, _ := New(Config{NumLPs: 2, Lookahead: 1, Handler: func(int, float64, any, *Scheduler) {}})
	if err := k.Schedule(5, 0, nil); err == nil {
		t.Error("invalid LP accepted")
	}
	if err := k.Schedule(0, -1, nil); err == nil {
		t.Error("negative time accepted")
	}
	if err := k.Schedule(1, 0.5, nil); err != nil {
		t.Errorf("valid initial event rejected: %v", err)
	}
}

// TestEventOrdering verifies events on one LP execute in timestamp order,
// including events scheduled mid-window.
func TestEventOrdering(t *testing.T) {
	var times []float64
	h := func(lp int, tm float64, data any, s *Scheduler) {
		times = append(times, tm)
		if data == "spawn" {
			// Schedule a local event inside the current window.
			s.Schedule(lp, tm+0.1, "child")
		}
	}
	k, _ := New(Config{NumLPs: 1, Lookahead: 10, Handler: h, Sequential: true})
	k.Schedule(0, 3.0, nil)
	k.Schedule(0, 1.0, "spawn")
	k.Schedule(0, 2.0, nil)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0, 1.1, 2.0, 3.0}
	if len(times) != len(want) {
		t.Fatalf("executed %v, want %v", times, want)
	}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-12 {
			t.Fatalf("executed %v, want %v", times, want)
		}
	}
}

// TestCausality is the core safety property: no handler ever observes time
// going backwards on its LP, in parallel mode, with cross-LP traffic.
func TestCausality(t *testing.T) {
	const numLPs = 4
	const L = 0.010
	lastTime := make([]float64, numLPs)
	var violations int64
	h := func(lp int, tm float64, data any, s *Scheduler) {
		if tm < lastTime[lp]-1e-12 {
			atomic.AddInt64(&violations, 1)
		}
		lastTime[lp] = tm
		s.Charge(1)
		hop := data.(int)
		if hop >= 0 && hop < 200 {
			// Ping-pong to the next LP, respecting lookahead.
			s.Schedule((lp+1)%numLPs, tm+L, hop+1)
			// And a non-spawning local follow-up inside the window.
			s.Schedule(lp, tm+L/7, -1)
		}
	}
	k, _ := New(Config{NumLPs: numLPs, Lookahead: L, Handler: h})
	for lp := 0; lp < numLPs; lp++ {
		k.Schedule(lp, 0.001*float64(lp+1), 0)
	}
	stats, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("%d causality violations", violations)
	}
	if stats.TotalCharges() == 0 {
		t.Error("no charges accounted")
	}
}

// TestLookaheadViolationDetected: a remote event inside the current window
// must poison the run.
func TestLookaheadViolationDetected(t *testing.T) {
	h := func(lp int, tm float64, data any, s *Scheduler) {
		if lp == 0 {
			s.Schedule(1, tm+1e-9, nil) // far below lookahead 1.0
		}
	}
	k, _ := New(Config{NumLPs: 2, Lookahead: 1, Handler: h})
	k.Schedule(0, 0, nil)
	if _, err := k.Run(); err == nil {
		t.Fatal("lookahead violation not detected")
	}
}

func TestPastEventDetected(t *testing.T) {
	h := func(lp int, tm float64, data any, s *Scheduler) {
		s.Schedule(lp, tm-1, nil)
	}
	k, _ := New(Config{NumLPs: 1, Lookahead: 1, Handler: h})
	k.Schedule(0, 5, nil)
	if _, err := k.Run(); err == nil {
		t.Fatal("past event not detected")
	}
}

func TestInvalidRemoteLPDetected(t *testing.T) {
	h := func(lp int, tm float64, data any, s *Scheduler) {
		s.Schedule(99, tm+10, nil)
	}
	k, _ := New(Config{NumLPs: 2, Lookahead: 1, Handler: h})
	k.Schedule(0, 0, nil)
	if _, err := k.Run(); err == nil {
		t.Fatal("invalid remote LP not detected")
	}
}

// TestDeterminismParallelVsSequential runs the same workload both ways and
// compares full stats: the parallel barrier protocol must not change results.
func TestDeterminismParallelVsSequential(t *testing.T) {
	build := func(sequential bool) *Stats {
		// A small deterministic multi-LP cascade.
		h := func(lp int, tm float64, data any, s *Scheduler) {
			n := data.(int)
			s.Charge(int64(n%7) + 1)
			if n < 500 {
				dst := (lp + n) % 5
				if dst == lp {
					s.Schedule(lp, tm+0.0003, n+1)
				} else {
					s.Schedule(dst, tm+0.002+0.0001*float64(n%5), n+1)
				}
			}
		}
		k, _ := New(Config{NumLPs: 5, Lookahead: 0.002, Handler: h, Sequential: sequential})
		for lp := 0; lp < 5; lp++ {
			k.Schedule(lp, 0.0001*float64(lp), lp)
		}
		st, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq := build(true)
	par := build(false)
	if seq.Windows != par.Windows {
		t.Errorf("windows: seq %d vs par %d", seq.Windows, par.Windows)
	}
	for lp := 0; lp < 5; lp++ {
		if seq.Events[lp] != par.Events[lp] {
			t.Errorf("LP %d events: seq %d vs par %d", lp, seq.Events[lp], par.Events[lp])
		}
		if seq.Charges[lp] != par.Charges[lp] {
			t.Errorf("LP %d charges: seq %d vs par %d", lp, seq.Charges[lp], par.Charges[lp])
		}
		if seq.RemoteSends[lp] != par.RemoteSends[lp] {
			t.Errorf("LP %d remote: seq %d vs par %d", lp, seq.RemoteSends[lp], par.RemoteSends[lp])
		}
	}
}

// TestWindowSkip: long idle gaps must be jumped, not iterated.
func TestWindowSkip(t *testing.T) {
	h := func(lp int, tm float64, data any, s *Scheduler) { s.Charge(1) }
	k, _ := New(Config{NumLPs: 1, Lookahead: 0.001, Handler: h})
	k.Schedule(0, 0, nil)
	k.Schedule(0, 100.0, nil) // 100k windows away
	stats, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Windows > 3 {
		t.Errorf("executed %d windows, want <= 3 (idle time must be skipped)", stats.Windows)
	}
	if stats.SkippedTime < 99 {
		t.Errorf("SkippedTime = %v, want ~100", stats.SkippedTime)
	}
}

func TestEndTime(t *testing.T) {
	var count int64
	h := func(lp int, tm float64, data any, s *Scheduler) {
		count++
		s.Schedule(lp, tm+1, nil)
	}
	k, _ := New(Config{NumLPs: 1, Lookahead: 0.5, Handler: h, EndTime: 10})
	k.Schedule(0, 0, nil)
	stats, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if count < 9 || count > 11 {
		t.Errorf("executed %d events, want ~10", count)
	}
	if stats.VirtualEnd > 10.5+1e-9 {
		t.Errorf("VirtualEnd = %v, want <= ~10.5", stats.VirtualEnd)
	}
}

// TestObserver checks per-window callbacks report loads that sum to totals.
func TestObserver(t *testing.T) {
	var obsWindows int64
	var obsCharges, obsRemote int64
	obs := func(start, end float64, charges, remote []int64) {
		obsWindows++
		if end <= start {
			t.Errorf("window [%v,%v) not positive", start, end)
		}
		for _, c := range charges {
			obsCharges += c
		}
		for _, r := range remote {
			obsRemote += r
		}
	}
	h := func(lp int, tm float64, data any, s *Scheduler) {
		n := data.(int)
		s.Charge(3)
		if n < 50 {
			s.Schedule(1-lp, tm+0.01, n+1)
		}
	}
	k, _ := New(Config{NumLPs: 2, Lookahead: 0.01, Handler: h, Observer: obs})
	k.Schedule(0, 0, 0)
	stats, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if obsWindows != stats.Windows {
		t.Errorf("observer saw %d windows, stats say %d", obsWindows, stats.Windows)
	}
	if obsCharges != stats.TotalCharges() {
		t.Errorf("observer charges %d, stats %d", obsCharges, stats.TotalCharges())
	}
	var totalRemote int64
	for _, r := range stats.RemoteSends {
		totalRemote += r
	}
	if obsRemote != totalRemote {
		t.Errorf("observer remote %d, stats %d", obsRemote, totalRemote)
	}
}

// TestSimultaneousEventsDeterministic: events at identical times execute in
// insertion order per LP.
func TestSimultaneousEventsDeterministic(t *testing.T) {
	var order []int
	h := func(lp int, tm float64, data any, s *Scheduler) {
		order = append(order, data.(int))
	}
	k, _ := New(Config{NumLPs: 1, Lookahead: 1, Handler: h, Sequential: true})
	for i := 0; i < 10; i++ {
		k.Schedule(0, 1.0, i)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v, want insertion order", order)
		}
	}
}

func TestEmptyRun(t *testing.T) {
	k, _ := New(Config{NumLPs: 2, Lookahead: 1, Handler: func(int, float64, any, *Scheduler) {}})
	stats, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Windows != 0 {
		t.Errorf("empty run executed %d windows", stats.Windows)
	}
}

// TestManyLPsParallelSmoke exercises the barrier with more LPs than cores.
func TestManyLPsParallelSmoke(t *testing.T) {
	const numLPs = 20
	h := func(lp int, tm float64, data any, s *Scheduler) {
		n := data.(int)
		s.Charge(1)
		if n < 100 {
			s.Schedule((lp+7)%numLPs, tm+0.005, n+1)
		}
	}
	k, _ := New(Config{NumLPs: numLPs, Lookahead: 0.005, Handler: h})
	for lp := 0; lp < numLPs; lp++ {
		k.Schedule(lp, 0, 0)
	}
	stats, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range stats.Events {
		total += e
	}
	if total != numLPs*101 {
		t.Errorf("total events = %d, want %d", total, numLPs*101)
	}
}
