package emu

import "errors"

// ErrBadConfig is wrapped (via %w) by every configuration-validation failure
// from Run, so callers can branch with errors.Is(err, emu.ErrBadConfig)
// instead of matching message text.
var ErrBadConfig = errors.New("emu: invalid configuration")
