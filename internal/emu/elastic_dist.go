package emu

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/netgraph"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// Distributed elastic membership: the coordinator's and worker's halves of a
// resize barrier. The sequence mirrors the in-process applyResize exactly —
// the barrier snapshot is the migration source and the new rollback fence —
// but the state lives spread across worker processes:
//
//	coordinator                                  workers
//	  (deliver held outbox to old owners)
//	  EXPORT ────────────────────────────────▶   DistLocal.Export
//	  ◀──────────── ElasticExport (events, slot arrays, telemetry)
//	  DistMerge.Resize: assemble, repartition,
//	  route pending events to new owners
//	  INSTALL (per member) ───────────────────▶  DistLocal.Reseat
//	  ◀──────────── ack (lookahead + next vote)
//
// Every array a worker exports is naturally masked by the single-writer
// ownership discipline (a worker's slots are the only nonzero ones), so
// exports ship raw state; installs are cut from the assembled global state
// and masked per the NEW ownership so the discipline holds after the resize.

// ElasticExport is one worker's complete barrier state, pulled at a resize
// (or drain) barrier with its engines quiesced.
type ElasticExport struct {
	// Engines is the worker's (old) engine set.
	Engines []int
	// Events is the worker's pending events in kernel-checkpoint order:
	// LP-major, per-LP in captured (time, seq) order. Dst is the old LP.
	Events []WireEvent
	// BusyUntil/LinkBytes/Drops are the flattened [2*link+dir] transmitter
	// slots (non-owned slots zero).
	BusyUntil []float64
	LinkBytes []int64
	Drops     []int64
	// Delivered/FCTs are the per-flow delivery state (non-owned flows 0/-1).
	Delivered []int64
	FCTs      []float64
	// Telemetry is the worker's full slow-cadence telemetry share; nil when
	// telemetry is disabled.
	Telemetry *telemetry.Partial
}

// ElasticInstall reseats one member onto the post-resize state.
type ElasticInstall struct {
	// At is the barrier time of the resize.
	At float64
	// Lookahead is the coordinator-computed post-resize window width; the
	// worker recomputes it from the assignment and cross-checks bit-for-bit.
	Lookahead float64
	// Engines is the member's new engine set.
	Engines []int
	// Assignment is the new global node→engine assignment.
	Assignment []int
	// Windows/SkippedTime and the per-engine counter arrays seed the
	// restored kernel's cumulative statistics (identical on every member, so
	// every worker reports run totals after the resize).
	Windows     int64
	SkippedTime float64
	Events      []int64
	Charges     []int64
	RemoteSends []int64
	// Pending is the member's share of the global pending events, Dst
	// rewritten to the new owning LP, in the global old-LP-major scan order
	// (the exact order an in-process Restore would push them).
	Pending []WireEvent
	// BusyUntil/LinkBytes/Drops/Delivered/FCTs are the global slot arrays
	// masked to the member's new ownership.
	BusyUntil []float64
	LinkBytes []int64
	Drops     []int64
	Delivered []int64
	FCTs      []float64
	// Telemetry is the member's masked slow-cadence share, cut from the
	// coordinator's just-assembled collector; nil when telemetry is disabled.
	Telemetry *telemetry.Partial
}

// wireOwner computes the engine owning a wire event under the current
// assignment — the distributed mirror of ownerOf, keyed on the same flow
// state so both paths route a migrated event identically.
func (e *emulation) wireOwner(w WireEvent) (int, error) {
	if w.Flow < 0 || int(w.Flow) >= len(e.flows) {
		return 0, fmt.Errorf("%w: pending event names flow %d of %d", ErrBadConfig, w.Flow, len(e.flows))
	}
	f := e.flows[w.Flow]
	switch w.Kind {
	case WireFlowStart, WireTCPRound:
		return e.assignment[f.src], nil
	case WireChunk:
		if w.Hop < 0 || int(w.Hop) >= len(f.path) {
			return 0, fmt.Errorf("%w: pending chunk at hop %d of a %d-hop path", ErrBadConfig, w.Hop, len(f.path))
		}
		return e.assignment[f.path[w.Hop]], nil
	}
	return 0, fmt.Errorf("%w: unknown pending event kind %d", ErrBadConfig, w.Kind)
}

// Export captures this worker's complete state at a quiesced barrier for a
// membership change (the worker stays runnable: a follow-up Reseat installs
// the post-resize state, or BYE releases a drained worker).
func (d *DistLocal) Export(at float64) (*ElasticExport, error) {
	e := d.e
	cp := d.kernel.Checkpoint(at)
	ex := &ElasticExport{
		Engines:   append([]int(nil), d.engines...),
		BusyUntil: make([]float64, 2*len(e.busyUntil)),
		LinkBytes: make([]int64, 2*len(e.linkBytes)),
		Drops:     make([]int64, 2*len(e.drops)),
		Delivered: append([]int64(nil), e.delivered...),
		FCTs:      append([]float64(nil), e.fcts...),
	}
	for _, s := range cp.Export() {
		w, err := e.encodeSent(s)
		if err != nil {
			return nil, err
		}
		ex.Events = append(ex.Events, w)
	}
	for l := range e.busyUntil {
		ex.BusyUntil[2*l], ex.BusyUntil[2*l+1] = e.busyUntil[l][0], e.busyUntil[l][1]
		ex.LinkBytes[2*l], ex.LinkBytes[2*l+1] = e.linkBytes[l][0], e.linkBytes[l][1]
		ex.Drops[2*l], ex.Drops[2*l+1] = e.drops[l][0], e.drops[l][1]
	}
	if e.tel != nil {
		ex.Telemetry = e.tel.ExportPartial(d.engines, true)
	}
	return ex, nil
}

// Reseat installs a post-resize state: the kernel restores from a synthetic
// checkpoint of the member's share of the pending events (preserving the
// in-process sequence numbering), the stepper is rebuilt over the new engine
// set, and every emulation slot array is overwritten with its masked share.
func (d *DistLocal) Reseat(in *ElasticInstall) error {
	e := d.e
	n := e.cfg.NumEngines
	if len(in.Assignment) != e.nw.NumNodes() {
		return fmt.Errorf("%w: reseat assignment covers %d nodes, network has %d",
			ErrBadConfig, len(in.Assignment), e.nw.NumNodes())
	}
	if len(in.Events) != n || len(in.Charges) != n || len(in.RemoteSends) != n {
		return fmt.Errorf("%w: reseat stats cover %d engines, want %d", ErrBadConfig, len(in.Events), n)
	}
	if len(in.BusyUntil) != 2*len(e.busyUntil) || len(in.LinkBytes) != 2*len(e.linkBytes) ||
		len(in.Drops) != 2*len(e.drops) {
		return fmt.Errorf("%w: reseat link arrays sized for %d links, want %d",
			ErrBadConfig, len(in.BusyUntil)/2, len(e.busyUntil))
	}
	if len(in.Delivered) != len(e.delivered) || len(in.FCTs) != len(e.fcts) {
		return fmt.Errorf("%w: reseat flow arrays cover %d flows, want %d",
			ErrBadConfig, len(in.Delivered), len(e.delivered))
	}

	// The worker independently derives the post-resize window width; any
	// disagreement with the coordinator means the builds diverged.
	newL := Lookahead(e.nw, in.Assignment, e.cfg.MinLookahead)
	if math.Float64bits(newL) != math.Float64bits(in.Lookahead) {
		return fmt.Errorf("%w: reseat lookahead %g, this worker derives %g — builds disagree",
			ErrBadConfig, in.Lookahead, newL)
	}

	sents := make([]des.Sent, 0, len(in.Pending))
	for _, w := range in.Pending {
		s, err := e.decodeWire(w)
		if err != nil {
			return err
		}
		sents = append(sents, s)
	}
	stats := des.Stats{
		Windows:     in.Windows,
		SkippedTime: in.SkippedTime,
		VirtualEnd:  in.At,
		Events:      in.Events,
		Charges:     in.Charges,
		RemoteSends: in.RemoteSends,
	}
	cp, err := des.BuildCheckpoint(in.At, n, stats, sents)
	if err != nil {
		return err
	}
	if err := d.kernel.Restore(cp, newL, nil); err != nil {
		return err
	}
	stepper, err := d.kernel.Stepper(in.Engines)
	if err != nil {
		return err
	}
	d.stepper = stepper

	e.assignment = append(e.assignment[:0], in.Assignment...)
	for l := range e.busyUntil {
		e.busyUntil[l] = [2]float64{in.BusyUntil[2*l], in.BusyUntil[2*l+1]}
		e.linkBytes[l] = [2]int64{in.LinkBytes[2*l], in.LinkBytes[2*l+1]}
		e.drops[l] = [2]int64{in.Drops[2*l], in.Drops[2*l+1]}
	}
	copy(e.delivered, in.Delivered)
	copy(e.fcts, in.FCTs)
	d.engines = append(d.engines[:0], in.Engines...)
	for i := range d.localSet {
		d.localSet[i] = false
	}
	for _, eng := range in.Engines {
		if eng < 0 || eng >= n {
			return fmt.Errorf("%w: reseat engine %d out of range [0,%d)", ErrBadConfig, eng, n)
		}
		d.localSet[eng] = true
	}
	if e.tel != nil {
		if err := e.tel.InstallPartials([]*telemetry.Partial{in.Telemetry}); err != nil {
			return err
		}
	}
	d.lastBucket = int(in.At / e.cfg.BucketWidth)
	return nil
}

// Assignment returns the coordinator's current node→engine assignment.
func (m *DistMerge) Assignment() []int { return append([]int(nil), m.e.assignment...) }

// Activate restricts the merge's active engine set to the given members. The
// elastic coordinator calls it once at startup: NumEngines is the capacity,
// and only the initial workers' engine blocks are live — the rest activate
// through Resize as workers join.
func (m *DistMerge) Activate(engines []int) {
	for i := range m.active {
		m.active[i] = false
	}
	live := 0
	for _, eng := range engines {
		if eng >= 0 && eng < len(m.active) {
			m.active[eng] = true
			live++
		}
	}
	// Peak-cluster accounting starts from the initial live membership;
	// resizes raise it through EventResize.
	m.NoteClusterSize(live)
}

// AppliedResizes returns the membership changes applied so far.
func (m *DistMerge) AppliedResizes() []AppliedResize {
	if m.e.membership == nil {
		return nil
	}
	return append([]AppliedResize(nil), m.e.membership.Resizes...)
}

// Loads returns the cumulative per-engine kernel-event charge — the load
// picture a repartitioning policy balances against.
func (m *DistMerge) Loads() []float64 {
	loads := make([]float64, len(m.stats.Charges))
	for i, c := range m.stats.Charges {
		loads[i] = float64(c)
	}
	return loads
}

// Resize applies a membership change at barrier time at: the workers'
// exports are assembled into the global barrier state, the assignment
// switches to the new engine set, pending events are routed to their new
// owners in the canonical old-LP-major order, and one install per member
// group is cut and masked. groups lists each continuing member's new engine
// set (an empty group yields a nil install — a drained member that gets BYE
// instead). The returned width is the post-resize kernel lookahead; the
// run's reported Lookahead (like in-process) stays the initial one.
func (m *DistMerge) Resize(at float64, exports []*ElasticExport, engines, assignment []int, groups [][]int) ([]*ElasticInstall, float64, error) {
	e := m.e
	n := e.cfg.NumEngines
	nlinks := len(e.nw.Links)

	// Exports must partition the old active engine set.
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	for xi, ex := range exports {
		if ex == nil {
			return nil, 0, fmt.Errorf("emu: missing resize export %d", xi)
		}
		if len(ex.BusyUntil) != 2*nlinks || len(ex.LinkBytes) != 2*nlinks || len(ex.Drops) != 2*nlinks {
			return nil, 0, fmt.Errorf("emu: resize export %d link arrays sized for %d links, want %d",
				xi, len(ex.BusyUntil)/2, nlinks)
		}
		if len(ex.Delivered) != len(e.delivered) || len(ex.FCTs) != len(e.fcts) {
			return nil, 0, fmt.Errorf("emu: resize export %d covers %d flows, want %d",
				xi, len(ex.Delivered), len(e.delivered))
		}
		for _, eng := range ex.Engines {
			if eng < 0 || eng >= n || owner[eng] >= 0 {
				return nil, 0, fmt.Errorf("emu: resize exports do not partition the engines (engine %d)", eng)
			}
			owner[eng] = xi
		}
	}
	for eng := 0; eng < n; eng++ {
		if m.active[eng] && owner[eng] < 0 {
			return nil, 0, fmt.Errorf("emu: no resize export covers active engine %d", eng)
		}
	}

	// The new membership: engines must be valid and exactly covered by the
	// member groups; the assignment must target only the new set.
	newActive := make([]bool, n)
	for _, eng := range engines {
		if eng < 0 || eng >= n || newActive[eng] {
			return nil, 0, fmt.Errorf("emu: resize engine set repeats or exceeds capacity (engine %d of %d)", eng, n)
		}
		newActive[eng] = true
	}
	if len(assignment) != e.nw.NumNodes() {
		return nil, 0, fmt.Errorf("emu: resize assignment covers %d nodes, network has %d",
			len(assignment), e.nw.NumNodes())
	}
	for v, eng := range assignment {
		if eng < 0 || eng >= n || !newActive[eng] {
			return nil, 0, fmt.Errorf("emu: resize assigned node %d to engine %d outside the new set", v, eng)
		}
	}
	groupOf := make([]int, n)
	for i := range groupOf {
		groupOf[i] = -1
	}
	for gi, g := range groups {
		for _, eng := range g {
			if eng < 0 || eng >= n || !newActive[eng] || groupOf[eng] >= 0 {
				return nil, 0, fmt.Errorf("emu: member groups do not partition the new engine set (engine %d)", eng)
			}
			groupOf[eng] = gi
		}
	}
	for _, eng := range engines {
		if groupOf[eng] < 0 {
			return nil, 0, fmt.Errorf("emu: new engine %d belongs to no member group", eng)
		}
	}

	// Assemble the global barrier state by old ownership. Counters could be
	// summed (non-owned slots are zero), but FCTs are -1-initialized
	// everywhere, so selection by owner is the uniform correct rule.
	busy := make([]float64, 2*nlinks)
	linkBytes := make([]int64, 2*nlinks)
	drops := make([]int64, 2*nlinks)
	for l, link := range e.nw.Links {
		for dir, end := 0, [2]int{link.A, link.B}; dir < 2; dir++ {
			xi := owner[e.assignment[end[dir]]]
			if xi < 0 {
				continue
			}
			busy[2*l+dir] = exports[xi].BusyUntil[2*l+dir]
			linkBytes[2*l+dir] = exports[xi].LinkBytes[2*l+dir]
			drops[2*l+dir] = exports[xi].Drops[2*l+dir]
		}
	}
	delivered := make([]int64, len(e.delivered))
	fcts := make([]float64, len(e.fcts))
	for i, f := range e.flows {
		xi := owner[e.assignment[f.dst]]
		if xi < 0 {
			fcts[i] = -1
			continue
		}
		delivered[i] = exports[xi].Delivered[i]
		fcts[i] = exports[xi].FCTs[i]
	}

	// Pending events per old LP, in each export's captured order.
	perLP := make([][]WireEvent, n)
	for _, ex := range exports {
		for _, w := range ex.Events {
			if w.Dst < 0 || int(w.Dst) >= n {
				return nil, 0, fmt.Errorf("emu: resize export holds an event for invalid LP %d", w.Dst)
			}
			perLP[w.Dst] = append(perLP[w.Dst], w)
		}
	}

	// Telemetry: the workers' exports together are the exact current global
	// state; installing them brings the coordinator's collector up to date
	// so the members' masked shares can be cut from it.
	if e.tel != nil {
		parts := make([]*telemetry.Partial, 0, len(exports))
		for _, ex := range exports {
			if ex.Telemetry != nil {
				parts = append(parts, ex.Telemetry)
			}
		}
		if err := e.tel.InstallPartials(parts); err != nil {
			return nil, 0, err
		}
	}

	// Membership bookkeeping before the assignment switches, in the same
	// order as the in-process path so recorded traces line up.
	migrations := 0
	migTo := make([]int64, n)
	for v, eng := range assignment {
		if eng != e.assignment[v] {
			migrations++
			migTo[eng]++
		}
	}
	e.recordEvent(obs.Event{Kind: obs.EventResize, Time: at, LP: -1, Value: float64(len(engines))})
	for eng, c := range migTo {
		if c > 0 {
			e.recordEvent(obs.Event{Kind: obs.EventMigration, Time: at, LP: eng, Value: float64(c)})
		}
	}
	if e.membership == nil {
		e.membership = &Membership{}
	}
	e.membership.Resizes = append(e.membership.Resizes, AppliedResize{
		At:         at,
		Engines:    append([]int(nil), engines...),
		Assignment: append([]int(nil), assignment...),
		Migrations: migrations,
	})
	e.membership.Stall += float64(migrations) * e.cfg.MigrationCost

	e.assignment = append(e.assignment[:0], assignment...)
	m.active = newActive
	newL := Lookahead(e.nw, e.assignment, e.cfg.MinLookahead)

	// Cut one install per member group.
	installs := make([]*ElasticInstall, len(groups))
	for gi, g := range groups {
		if len(g) == 0 {
			continue
		}
		in := &ElasticInstall{
			At:          at,
			Lookahead:   newL,
			Engines:     append([]int(nil), g...),
			Assignment:  append([]int(nil), assignment...),
			Windows:     m.stats.Windows,
			SkippedTime: m.stats.SkippedTime,
			Events:      append([]int64(nil), m.stats.Events...),
			Charges:     append([]int64(nil), m.stats.Charges...),
			RemoteSends: append([]int64(nil), m.stats.RemoteSends...),
			BusyUntil:   make([]float64, 2*nlinks),
			LinkBytes:   make([]int64, 2*nlinks),
			Drops:       make([]int64, 2*nlinks),
			Delivered:   make([]int64, len(delivered)),
			FCTs:        make([]float64, len(fcts)),
		}
		mine := make([]bool, n)
		for _, eng := range g {
			mine[eng] = true
		}
		for l, link := range e.nw.Links {
			for dir, end := 0, [2]int{link.A, link.B}; dir < 2; dir++ {
				if mine[e.assignment[end[dir]]] {
					in.BusyUntil[2*l+dir] = busy[2*l+dir]
					in.LinkBytes[2*l+dir] = linkBytes[2*l+dir]
					in.Drops[2*l+dir] = drops[2*l+dir]
				}
			}
		}
		for i, f := range e.flows {
			if mine[e.assignment[f.dst]] {
				in.Delivered[i] = delivered[i]
				in.FCTs[i] = fcts[i]
			} else {
				in.FCTs[i] = -1
			}
		}
		if e.tel != nil {
			p := e.tel.ExportPartial(g, true)
			maskPartialSlow(p, e.nw, e.assignment, mine)
			in.Telemetry = p
		}
		installs[gi] = in
	}

	// Route every pending event to its new owner, scanning old LPs in order
	// — exactly the push order an in-process Restore(cp, newL, ownerOf)
	// would produce, so per-LP sequence numbers come out identical.
	for lp := 0; lp < n; lp++ {
		for _, w := range perLP[lp] {
			eng, err := e.wireOwner(w)
			if err != nil {
				return nil, 0, err
			}
			gi := groupOf[eng]
			if gi < 0 || installs[gi] == nil {
				return nil, 0, fmt.Errorf("emu: pending event routed to engine %d with no member", eng)
			}
			w.Dst = int32(eng)
			installs[gi].Pending = append(installs[gi].Pending, w)
		}
	}
	return installs, newL, nil
}

// maskPartialSlow zeroes the slow-cadence slots of p not owned by the member
// engine set under the (post-resize) assignment: tx slots belong to the
// transmitting endpoint's engine, rx slots to the receiving endpoint's, node
// packet counters and load-series columns to the node's engine.
func maskPartialSlow(p *telemetry.Partial, nw *netgraph.Network, assignment []int, member []bool) {
	if p == nil || !p.HasSlow {
		return
	}
	for l, link := range nw.Links {
		a, b := member[assignment[link.A]], member[assignment[link.B]]
		if !a {
			p.LinkTxBytes[2*l] = 0
			p.LinkTxPackets[2*l] = 0
			p.LinkRxPackets[2*l+1] = 0
		}
		if !b {
			p.LinkTxBytes[2*l+1] = 0
			p.LinkTxPackets[2*l+1] = 0
			p.LinkRxPackets[2*l] = 0
		}
	}
	for v := range p.NodePackets {
		if !member[assignment[v]] {
			p.NodePackets[v] = 0
		}
	}
	for _, row := range p.SeriesLoads {
		for v := range row {
			if !member[assignment[v]] {
				row[v] = 0
			}
		}
	}
}
